// epi_trace: run a canned scenario on the machine model with full tracing
// and export the result -- the quickest way to get a Perfetto timeline out
// of the simulator without writing a bench.
//
// Usage: epi_trace <scenario> [options]
//
// Scenarios:
//   elink4           2x2 eLink write contention (Table II shape)
//   elink64          8x8 eLink write contention (Table III starvation)
//   dma              DMA point-to-point transfer (0,0) -> (0,3)
//   direct           CPU direct-write transfer (0,0) -> (0,3)
//   matmul-offchip   small off-chip paged matmul (4x4 group, 16x16 blocks)
//   stencil64        8x8 five-point stencil with boundary exchange
//
// Options:
//   --trace=FILE   Perfetto/Chrome JSON output (default epi_trace.json)
//   --csv=FILE     counter registry as CSV
//   --top=N        rows in the terminal summary tables (default 8)
//   --profile      print per-core cycle attribution
//   --window=S     simulated seconds for the elink scenarios (default 0.02)
//   --bytes=N      message size for dma/direct (default 2048)
//   --reps=N       repetitions for dma/direct (default 16)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "core/matmul.hpp"
#include "core/microbench.hpp"
#include "core/stencil.hpp"
#include "host/system.hpp"
#include "trace/export.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"
#include "util/table.hpp"

namespace {

using namespace epi;

struct Options {
  std::string scenario;
  std::string trace_path = "epi_trace.json";
  std::string csv_path;
  unsigned top = 8;
  bool profile = false;
  double window = 0.02;
  std::uint32_t bytes = 2048;
  unsigned reps = 16;
};

int usage() {
  std::fprintf(stderr,
               "usage: epi_trace <elink4|elink64|dma|direct|matmul-offchip|stencil64>\n"
               "                 [--trace=FILE] [--csv=FILE] [--top=N] [--profile]\n"
               "                 [--window=S] [--bytes=N] [--reps=N]\n");
  return 2;
}

bool value_of(std::string_view arg, std::string_view flag, std::string& out) {
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    out = std::string(arg.substr(flag.size() + 1));
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (value_of(arg, "--trace", v)) {
      opt.trace_path = v;
    } else if (value_of(arg, "--csv", v)) {
      opt.csv_path = v;
    } else if (value_of(arg, "--top", v)) {
      opt.top = static_cast<unsigned>(std::atoi(v.c_str()));
    } else if (value_of(arg, "--window", v)) {
      opt.window = std::atof(v.c_str());
    } else if (value_of(arg, "--bytes", v)) {
      opt.bytes = static_cast<std::uint32_t>(std::atoi(v.c_str()));
    } else if (value_of(arg, "--reps", v)) {
      opt.reps = static_cast<unsigned>(std::atoi(v.c_str()));
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (arg.substr(0, 2) == "--") {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage();
    } else if (opt.scenario.empty()) {
      opt.scenario = std::string(arg);
    } else {
      return usage();
    }
  }
  if (opt.scenario.empty()) return usage();

  host::System sys;
  trace::Tracer& tracer = sys.machine().enable_tracing();

  if (opt.scenario == "elink4") {
    core::measure_elink_contention(sys, 2, 2, opt.bytes, opt.window);
  } else if (opt.scenario == "elink64") {
    core::measure_elink_contention(sys, 8, 8, opt.bytes, opt.window);
  } else if (opt.scenario == "dma") {
    core::measure_dma(sys, {0, 0}, {0, 3}, opt.bytes, opt.reps);
  } else if (opt.scenario == "direct") {
    core::measure_direct_write(sys, {0, 0}, {0, 3}, opt.bytes, opt.reps);
  } else if (opt.scenario == "matmul-offchip") {
    core::run_matmul_offchip(sys, 128, 4, 16, core::Codegen::TunedAsm, 42, false);
  } else if (opt.scenario == "stencil64") {
    core::StencilConfig cfg;
    cfg.rows = 20;
    cfg.cols = 20;
    cfg.iters = 5;
    cfg.communicate = true;
    core::run_stencil_experiment(sys, 8, 8, cfg, 42, false);
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", opt.scenario.c_str());
    return usage();
  }

  const sim::Cycles end = sys.engine().now();
  trace::ProfileReport profile;
  const trace::ProfileReport* profile_ptr = nullptr;
  if (opt.profile) {
    profile = trace::attribute(tracer, 0, end);
    profile_ptr = &profile;
  }

  std::cout << "Scenario " << opt.scenario << ": " << end << " cycles simulated, "
            << tracer.events().size() << " trace events on " << tracer.tracks().size()
            << " tracks\n\n";
  trace::write_summary(std::cout, tracer, profile_ptr, opt.top);

  if (!opt.trace_path.empty()) {
    std::ofstream os(opt.trace_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", opt.trace_path.c_str());
      return 1;
    }
    trace::write_chrome_trace(os, tracer);
    std::cout << "\nWrote Perfetto trace to " << opt.trace_path
              << " (open at ui.perfetto.dev; ts is in cycles)\n";
  }
  if (!opt.csv_path.empty()) {
    std::ofstream os(opt.csv_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
      return 1;
    }
    trace::write_counters_csv(os, tracer.counters());
  }
  return 0;
}
