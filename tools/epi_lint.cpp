// epi_lint: command-line front end for the epi::lint static analyzer.
//
// Lints eCore assembly (.s files in the subset syntax of isa/assembler.hpp)
// and/or the built-in reconstructions of the paper's kernels, printing
// compiler-style "file:line: severity: message [pass]" diagnostics.
//
// Exit status: 0 clean, 1 findings reported, 2 usage or assembly error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/kernels.hpp"
#include "lint/lint.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: epi_lint [options] [kernel.s ...]\n"
        "\n"
        "Static checks on eCore ISA-subset assembly. With no inputs, lints\n"
        "the built-in paper kernels (same as --kernels).\n"
        "\n"
        "options:\n"
        "  --kernels         lint the built-in stencil and matmul kernels\n"
        "  --extent N        declared scratchpad data extent in bytes\n"
        "                    (default 32768; accepts 0x-prefixed hex)\n"
        "  --code OFF:SIZE   declare the program's code region, enabling\n"
        "                    store-into-code checks (both 0x-hex or decimal)\n"
        "  -h, --help        this text\n";
}

bool parse_u32(const std::string& s, std::uint32_t& out) {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(s, &pos, 0);
    if (pos != s.size() || v > 0xFFFFFFFFul) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// AssemblyError::what() begins with its own "line N: "; drop it, since we
/// print the location in file:line form already.
std::string assembly_message(const epi::isa::AssemblyError& e) {
  const std::string what = e.what();
  const std::string prefix = "line " + std::to_string(e.line) + ": ";
  return what.rfind(prefix, 0) == 0 ? what.substr(prefix.size()) : what;
}

/// Lint one assembled program; print findings; return their count.
std::size_t lint_one(const std::string& name, const epi::isa::Program& prog,
                     const epi::lint::LintOptions& opts) {
  const auto findings = epi::lint::lint_program(prog, opts);
  for (const auto& f : findings) {
    std::cout << f.format(name) << "\n";
  }
  return findings.size();
}

}  // namespace

int main(int argc, char** argv) {
  epi::lint::LintOptions opts;
  bool builtins = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--kernels") {
      builtins = true;
    } else if (arg == "--extent") {
      if (++i >= argc || !parse_u32(argv[i], opts.extent)) {
        std::cerr << "epi_lint: --extent needs a byte count\n";
        return 2;
      }
    } else if (arg == "--code") {
      std::uint32_t off = 0, size = 0;
      const std::string spec = ++i < argc ? argv[i] : "";
      const auto colon = spec.find(':');
      if (colon == std::string::npos || !parse_u32(spec.substr(0, colon), off) ||
          !parse_u32(spec.substr(colon + 1), size)) {
        std::cerr << "epi_lint: --code needs OFFSET:SIZE\n";
        return 2;
      }
      opts.code_region =
          epi::lint::Region{"code", epi::lint::RegionKind::Code, off, size};
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "epi_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) builtins = true;

  std::size_t total = 0;
  if (builtins) {
    // The paper's kernels at representative sizes: a 4-row-pair stencil
    // stripe (output after the 22-float x 10-row input block) and the full
    // 32-row matmul macro, with its documented A/B/C bank placement.
    const std::string stencil =
        epi::isa::generate_stencil_stripe(4, epi::util::StencilWeights{}, 880);
    const std::string matmul = epi::isa::generate_matmul_rows(32);
    epi::lint::LintOptions mm_opts = opts;
    if (!mm_opts.layout) {
      mm_opts.layout = epi::lint::ScratchpadLayout{};
      mm_opts.layout->add("A", epi::lint::RegionKind::Data, 0x0000, 0x1000)
          .add("B", epi::lint::RegionKind::Data, 0x1000, 0x1000)
          .add("C", epi::lint::RegionKind::Data, 0x2000, 0x1000);
    }
    try {
      total += lint_one("<builtin:stencil>", epi::isa::assemble(stencil), opts);
      total += lint_one("<builtin:matmul>", epi::isa::assemble(matmul), mm_opts);
    } catch (const epi::isa::AssemblyError& e) {
      std::cerr << "<builtin>:" << e.line << ": error: " << assembly_message(e)
                << "\n";
      return 2;
    }
  }

  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "epi_lint: cannot open '" << file << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      total += lint_one(file, epi::isa::assemble(text.str()), opts);
    } catch (const epi::isa::AssemblyError& e) {
      std::cout << file << ":" << e.line << ": error: " << assembly_message(e)
                << "\n";
      return 2;
    }
  }

  if (total == 0) {
    std::cout << "epi_lint: clean ("
              << (builtins ? files.size() + 2 : files.size()) << " program"
              << ((builtins ? files.size() + 2 : files.size()) == 1 ? "" : "s")
              << ")\n";
    return 0;
  }
  return 1;
}
