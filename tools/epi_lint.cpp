// epi_lint: command-line front end for the epi::lint static analyzers.
//
// Lints eCore assembly (.s files in the subset syntax of isa/assembler.hpp)
// and/or the built-in reconstructions of the paper's kernels, printing
// compiler-style "file:line: severity: message [pass]" diagnostics. With
// --workgroup=RxC the inputs are verified *as a group*: remote store/load
// targets are resolved through the flat address map, and the cross-core
// race/deadlock passes (wg-race, wg-flag-deadlock, wg-barrier-mismatch,
// ...) run on the whole workgroup, statically.
//
// Exit status: 0 clean or warnings only, 1 errors (or any finding under
// --Werror), 2 usage or assembly error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/kernels.hpp"
#include "lint/lint.hpp"
#include "lint/workgroup.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: epi_lint [options] [kernel.s ...]\n"
        "\n"
        "Static checks on eCore ISA-subset assembly. With no inputs, lints\n"
        "the built-in paper kernels (same as --kernels).\n"
        "\n"
        "options:\n"
        "  --kernels         lint the built-in stencil and matmul kernels\n"
        "  --workgroup RxC   verify the inputs as an RxC workgroup: one\n"
        "                    program replicates SPMD-style, else give\n"
        "                    exactly R*C programs in row-major order; with\n"
        "                    no inputs, each built-in kernel is verified\n"
        "                    replicated across the group\n"
        "  --origin R,C      mesh anchor of the workgroup's (0,0) core\n"
        "                    (default 0,0; the mesh is 8x8)\n"
        "  --extent N        declared scratchpad data extent in bytes\n"
        "                    (default 32768; accepts 0x-prefixed hex)\n"
        "  --code OFF:SIZE   declare the program's code region, enabling\n"
        "                    store-into-code checks (both 0x-hex or decimal)\n"
        "  --Werror          treat warnings as errors for the exit status\n"
        "  -h, --help        this text\n"
        "\n"
        "exit status:\n"
        "  0  no findings, or warnings only (without --Werror)\n"
        "  1  errors reported, or any finding with --Werror\n"
        "  2  usage error, unreadable input, or assembly error\n";
}

bool parse_u32(const std::string& s, std::uint32_t& out) {
  try {
    std::size_t pos = 0;
    const unsigned long v = std::stoul(s, &pos, 0);
    if (pos != s.size() || v > 0xFFFFFFFFul) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// "RxC" / "R,C" -> (R, C), both in 1..64.
bool parse_shape(const std::string& s, char sep, unsigned& r, unsigned& c) {
  const auto x = s.find(sep);
  std::uint32_t a = 0, b = 0;
  if (x == std::string::npos || !parse_u32(s.substr(0, x), a) ||
      !parse_u32(s.substr(x + 1), b) || a == 0 || b == 0 || a > 64 || b > 64) {
    return false;
  }
  r = a;
  c = b;
  return true;
}

/// AssemblyError::what() begins with its own "line N: "; drop it, since we
/// print the location in file:line form already.
std::string assembly_message(const epi::isa::AssemblyError& e) {
  const std::string what = e.what();
  const std::string prefix = "line " + std::to_string(e.line) + ": ";
  return what.rfind(prefix, 0) == 0 ? what.substr(prefix.size()) : what;
}

struct Totals {
  std::size_t errors = 0;
  std::size_t warnings = 0;
};

/// Lint one assembled program; print findings; tally them.
void lint_one(const std::string& name, const epi::isa::Program& prog,
              const epi::lint::LintOptions& opts, Totals& totals) {
  for (const auto& f : epi::lint::lint_program(prog, opts)) {
    std::cout << f.format(name) << "\n";
    (f.severity >= epi::lint::Severity::Error ? totals.errors : totals.warnings)++;
  }
}

/// Verify one named-source set as an RxC group; print findings; tally them.
void verify_group(
    unsigned rows, unsigned cols, epi::arch::CoreCoord origin,
    const std::vector<std::pair<std::string, std::string>>& sources,
    const epi::lint::LintOptions& per_core, Totals& totals) {
  auto spec = epi::lint::assemble_workgroup(rows, cols, sources, origin);
  spec.per_core = per_core;
  for (const auto& f : epi::lint::verify_workgroup(spec)) {
    std::cout << f.format() << "\n";
    (f.finding.severity >= epi::lint::Severity::Error ? totals.errors
                                                      : totals.warnings)++;
  }
}

}  // namespace

int main(int argc, char** argv) {
  epi::lint::LintOptions opts;
  bool builtins = false;
  bool werror = false;
  bool workgroup = false;
  unsigned wg_rows = 1, wg_cols = 1;
  epi::arch::CoreCoord origin{0, 0};
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--opt value" and "--opt=value".
    std::string inline_val;
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      inline_val = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    const auto value = [&]() -> std::string {
      if (!inline_val.empty()) return inline_val;
      return ++i < argc ? argv[i] : "";
    };
    if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--kernels") {
      builtins = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--workgroup") {
      if (!parse_shape(value(), 'x', wg_rows, wg_cols)) {
        std::cerr << "epi_lint: --workgroup needs RxC (e.g. 2x2)\n";
        return 2;
      }
      workgroup = true;
    } else if (arg == "--origin") {
      unsigned r = 0, c = 0;
      const std::string v = value();
      // origin may legitimately be 0, so parse by hand around parse_shape's
      // zero rejection.
      const auto comma = v.find(',');
      std::uint32_t a = 0, b = 0;
      if (comma == std::string::npos || !parse_u32(v.substr(0, comma), a) ||
          !parse_u32(v.substr(comma + 1), b) || a > 63 || b > 63) {
        std::cerr << "epi_lint: --origin needs R,C (e.g. 0,0)\n";
        return 2;
      }
      r = a;
      c = b;
      origin = {r, c};
    } else if (arg == "--extent") {
      if (!parse_u32(value(), opts.extent)) {
        std::cerr << "epi_lint: --extent needs a byte count\n";
        return 2;
      }
    } else if (arg == "--code") {
      std::uint32_t off = 0, size = 0;
      const std::string spec = value();
      const auto colon = spec.find(':');
      if (colon == std::string::npos || !parse_u32(spec.substr(0, colon), off) ||
          !parse_u32(spec.substr(colon + 1), size)) {
        std::cerr << "epi_lint: --code needs OFFSET:SIZE\n";
        return 2;
      }
      opts.code_region =
          epi::lint::Region{"code", epi::lint::RegionKind::Code, off, size};
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "epi_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) builtins = true;
  if (workgroup && !files.empty() && files.size() != 1 &&
      files.size() != std::size_t{wg_rows} * wg_cols) {
    std::cerr << "epi_lint: --workgroup=" << wg_rows << "x" << wg_cols
              << " needs 1 (replicated) or " << wg_rows * wg_cols
              << " programs, got " << files.size() << "\n";
    return 2;
  }

  // The paper's kernels at representative sizes: a 4-row-pair stencil
  // stripe (output after the 22-float x 10-row input block) and the full
  // 32-row matmul macro, with its documented A/B/C bank placement.
  epi::lint::LintOptions mm_opts = opts;
  if (!mm_opts.layout) {
    mm_opts.layout = epi::lint::ScratchpadLayout{};
    mm_opts.layout->add("A", epi::lint::RegionKind::Data, 0x0000, 0x1000)
        .add("B", epi::lint::RegionKind::Data, 0x1000, 0x1000)
        .add("C", epi::lint::RegionKind::Data, 0x2000, 0x1000);
  }

  Totals totals;
  if (builtins) {
    const std::string stencil =
        epi::isa::generate_stencil_stripe(4, epi::util::StencilWeights{}, 880);
    const std::string matmul = epi::isa::generate_matmul_rows(32);
    try {
      if (workgroup) {
        // Each built-in verified SPMD-replicated across the group.
        verify_group(wg_rows, wg_cols, origin, {{"<builtin:stencil>", stencil}},
                     opts, totals);
        verify_group(wg_rows, wg_cols, origin, {{"<builtin:matmul>", matmul}},
                     mm_opts, totals);
      } else {
        lint_one("<builtin:stencil>", epi::isa::assemble(stencil), opts, totals);
        lint_one("<builtin:matmul>", epi::isa::assemble(matmul), mm_opts, totals);
      }
    } catch (const epi::isa::AssemblyError& e) {
      std::cerr << "<builtin>:" << e.line << ": error: " << assembly_message(e)
                << "\n";
      return 2;
    } catch (const std::invalid_argument& e) {
      std::cerr << "epi_lint: " << e.what() << "\n";
      return 2;
    }
  }

  std::vector<std::pair<std::string, std::string>> sources;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "epi_lint: cannot open '" << file << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    sources.emplace_back(file, text.str());
  }
  // Assemble up front so a syntax error in any input is exit 2 either way.
  std::vector<epi::isa::Program> programs;
  for (const auto& [file, text] : sources) {
    try {
      programs.push_back(epi::isa::assemble(text));
    } catch (const epi::isa::AssemblyError& e) {
      std::cout << file << ":" << e.line << ": error: " << assembly_message(e)
                << "\n";
      return 2;
    }
  }
  if (workgroup && !sources.empty()) {
    try {
      verify_group(wg_rows, wg_cols, origin, sources, opts, totals);
    } catch (const std::invalid_argument& e) {
      std::cerr << "epi_lint: " << e.what() << "\n";
      return 2;
    }
  } else {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      lint_one(sources[i].first, programs[i], opts, totals);
    }
  }

  const std::size_t programs_seen =
      files.size() + (builtins ? 2 : 0);
  if (totals.errors == 0 && totals.warnings == 0) {
    std::cout << "epi_lint: clean (" << programs_seen << " program"
              << (programs_seen == 1 ? "" : "s") << ")\n";
    return 0;
  }
  if (totals.errors > 0 || werror) return 1;
  return 0;  // warnings only
}
