// epi-serve: replay a multi-tenant job workload against the simulated 8x8
// mesh and report what the scheduler did with it.
//
// With --spec=FILE the workload is read from a workload-spec text file (see
// src/sched/workload.hpp for the format); otherwise a seeded stream is
// generated, and --spec-out can save it for later byte-identical replays.
//
// Usage:
//   epi_serve [options]
//     --spec=FILE        replay a workload spec instead of generating one
//     --jobs=N           generated stream length            (default 60)
//     --seed=S           traffic seed                       (default 1)
//     --interarrival=C   mean cycles between arrivals       (default 30000)
//     --queue=N          admission queue capacity           (default 64)
//     --pipelines=F      fraction of generated requests drawn as multi-kernel
//                        pipelines (job graphs with tensor handoffs between
//                        stages; see src/sched/dag.hpp)       (default 0)
//     --spec-out=FILE    write the workload spec that was run
//     --report=FILE      write the run report to FILE as well as stdout
//     --log              print the scheduler's decision log
//     --trace=FILE       Perfetto trace of the whole serving run
//     --plan=FILE        arm a fault-injection plan (see src/fault/plan.hpp);
//                        the watchdog defaults on (400000 cycles) so silent
//                        stalls become FaultReports instead of deadlocks
//     --watchdog=C       per-job silence budget in cycles (0 disables)
//     --strict           exit non-zero if any job ends with a Failed verdict
//                        (default: failures are reported but tolerated --
//                        a degraded chip keeps serving)
//     --selftest         run the workload twice on fresh machines and fail
//                        unless reports and decision logs are byte-identical
//                        (also asserts >=3 workgroups were resident at once)
//     --lint=MODE        admission-time static verification of custom jobs:
//                        off (default), warn (log findings, admit anyway), or
//                        strict (reject jobs with error-severity findings
//                        before placement)
//     --asm=F1[,F2...]   serve the given eCore .s files as one custom job
//                        instead of a generated stream (1 file replicates
//                        SPMD-style; else give rows*cols files in row-major
//                        order)
//     --asm-shape=RxC    workgroup shape for --asm              (default 1x1)
//     --verify-selftest  admission-gate selftest: under --lint=strict the
//                        statically-racy fixtures (Listing-1/2 and the
//                        epi-shmem get-before-signal consumer) must be
//                        rejected with wg-race verdicts and their clean twins
//                        must complete, deterministically across two runs
//
// Cluster (multi-chip xMesh) mode -- each chip is one conservative-PDES
// domain with its own engine and scheduler, advanced in parallel windows:
//     --chips=RxC        serve an RxC chip grid instead of one chip; each
//                        chip gets its own seeded stream of --jobs jobs and
//                        a --remote-frac fraction is forwarded over the
//                        xMesh bridge to another chip's scheduler
//     --parallel=N       worker threads for the cluster run (default 1;
//                        reports are byte-identical for every N)
//     --remote-frac=F    fraction of each chip's stream homed off-chip
//                        (default 0.25)
//     --selftest         in cluster mode: rerun with 1, 2 and N workers and
//                        fail unless all reports are byte-identical
//     --plan=FILE        in cluster mode: a cluster fault plan (`chips RxC`
//                        grammar) -- chip-crash/chip-stall/xmesh/notice
//                        faults arm the failover stack (heartbeat watchdogs,
//                        quarantine, re-forwarding with idempotent dedup);
//                        chip-tagged machine faults go to that chip's
//                        injector. Recovery decisions land in the report.
//     --trace=FILE       in cluster mode: Perfetto trace with one process
//                        per chip (per-chip sched.cluster.chipN.* counters
//                        land on that chip's counter track)
//
// Generated streams mix matmul, stencil, DRAM-window offload, and the
// epi-shmem cannon/transpose PGAS workloads (see src/sched/workload.hpp).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "host/system.hpp"
#include "lint/wg_fixtures.hpp"
#include "sched/cluster.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace epi;

struct Options {
  std::string spec_path;
  unsigned jobs = 60;
  std::uint64_t seed = 1;
  sim::Cycles interarrival = 30'000;
  std::size_t queue = 64;
  std::string spec_out;
  std::string report_path;
  std::string trace_path;
  std::string plan_path;
  sim::Cycles watchdog = 0;
  bool watchdog_set = false;
  bool strict = false;
  bool print_log = false;
  bool selftest = false;
  sched::LintMode lint = sched::LintMode::Off;
  std::string asm_files;       // comma-separated .s paths for one custom job
  unsigned asm_rows = 1, asm_cols = 1;
  bool verify_selftest = false;
  unsigned chip_rows = 0, chip_cols = 0;  // 0 = single-chip mode
  unsigned parallel = 1;
  double remote_frac = 0.25;
  double pipelines = 0.0;
};

bool value_flag(std::string_view arg, std::string_view flag, std::string& out) {
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    out = std::string(arg.substr(flag.size() + 1));
    return true;
  }
  return false;
}

struct RunOutput {
  std::string report;
  std::vector<std::string> log;
  std::vector<std::string> fault_log;
  unsigned peak_resident = 0;
  unsigned unresolved = 0;
  unsigned failed = 0;
  std::vector<std::string> rejected;  // "job N: detail" per rejected job
};

RunOutput run_once(const std::vector<sched::JobSpec>& jobs, const Options& opt,
                   bool trace) {
  host::System sys;
  if (trace) sys.machine().enable_tracing();
  if (!opt.plan_path.empty()) {
    sys.machine().enable_faults(fault::load_file(opt.plan_path));
  }
  sched::SchedConfig cfg;
  cfg.queue_capacity = opt.queue;
  cfg.lint = opt.lint;
  // With a plan armed, silent stalls are expected: default the watchdog on
  // so they become FaultReports instead of an engine deadlock.
  cfg.watchdog_cycles =
      opt.watchdog_set ? opt.watchdog : (opt.plan_path.empty() ? 0 : 400'000);
  sched::Scheduler sc(sys, cfg);
  for (const auto& spec : jobs) sc.submit(spec);
  sc.run();

  RunOutput out;
  out.report = sched::render_report(sc);
  out.log = sc.event_log();
  for (const auto& r : sc.fault_log()) out.fault_log.push_back(fault::to_line(r));
  out.peak_resident = sc.peak_resident();
  for (const auto& rec : sc.records()) {
    if (rec.verdict == sched::Verdict::Pending) ++out.unresolved;
    if (rec.verdict == sched::Verdict::Failed) ++out.failed;
    if (rec.verdict == sched::Verdict::Rejected) {
      out.rejected.push_back("job " + std::to_string(rec.spec.id) + ": " +
                             rec.detail);
    }
  }
  if (trace && !opt.trace_path.empty()) {
    std::ofstream os(opt.trace_path, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write trace file: " + opt.trace_path);
    trace::write_chrome_trace(os, *sys.machine().tracer());
  }
  return out;
}

/// One custom job from comma-separated .s paths.
sched::JobSpec custom_job(const std::string& files, unsigned rows, unsigned cols) {
  sched::JobSpec s;
  s.kind = sched::JobKind::Custom;
  s.rows = rows;
  s.cols = cols;
  std::size_t start = 0;
  while (start <= files.size()) {
    const auto comma = files.find(',', start);
    const std::string path =
        files.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (!path.empty()) {
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open program: " + path);
      std::ostringstream text;
      text << in.rdbuf();
      s.programs.emplace_back(path, text.str());
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (s.programs.empty()) throw std::runtime_error("--asm names no programs");
  return s;
}

/// Admission-gate selftest: the statically-racy fixtures -- the Listing-1/2
/// read-without-wait and the epi-shmem get-before-signal consumer -- must be
/// rejected under strict lint with wg-race verdicts; their clean twins (the
/// same protocols with the flag wait) must be admitted and complete; and two
/// runs must be byte-identical. Returns the exit status.
int verify_selftest() {
  const auto job_of = [](const lint::fixtures::WgFixture& fx, std::uint32_t id) {
    sched::JobSpec s;
    s.id = id;
    s.kind = sched::JobKind::Custom;
    s.rows = fx.rows;
    s.cols = fx.cols;
    s.programs = fx.programs;
    return s;
  };
  const auto run = [&]() {
    host::System sys;
    sched::SchedConfig cfg;
    cfg.lint = sched::LintMode::Strict;
    sched::Scheduler sc(sys, cfg);
    sc.submit(job_of(lint::fixtures::listing12(/*racy=*/true), 1));
    sc.submit(job_of(lint::fixtures::listing12(/*racy=*/false), 2));
    sc.submit(job_of(lint::fixtures::shmem_put_signal(/*racy=*/true), 3));
    sc.submit(job_of(lint::fixtures::shmem_put_signal(/*racy=*/false), 4));
    sc.run();
    return std::make_pair(sc.records(), sc.event_log());
  };

  const auto [records, log] = run();
  bool ok = true;
  for (const std::size_t r : {std::size_t{0}, std::size_t{2}}) {
    const auto& racy = records[r];
    const auto& clean = records[r + 1];
    const char* what = r == 0 ? "listing12" : "shmem_put_signal";
    if (racy.verdict != sched::Verdict::Rejected) {
      std::fprintf(
          stderr,
          "verify-selftest: FAIL: racy %s job verdict is %s, want rejected\n",
          what, sched::to_string(racy.verdict));
      ok = false;
    } else if (racy.detail.find("wg-race") == std::string::npos) {
      std::fprintf(stderr,
                   "verify-selftest: FAIL: racy %s job's verdict names no "
                   "wg-race finding: %s\n",
                   what, racy.detail.c_str());
      ok = false;
    }
    if (clean.verdict != sched::Verdict::Completed) {
      std::fprintf(stderr,
                   "verify-selftest: FAIL: clean %s job verdict is %s (%s), "
                   "want completed\n",
                   what, sched::to_string(clean.verdict), clean.detail.c_str());
      ok = false;
    }
  }
  const auto [records2, log2] = run();
  if (log2 != log) {
    std::fprintf(stderr, "verify-selftest: FAIL: decision logs differ between "
                         "two identical runs\n");
    ok = false;
  }
  for (std::size_t i = 0; ok && i < records.size(); ++i) {
    if (records2[i].verdict != records[i].verdict ||
        records2[i].detail != records[i].detail) {
      std::fprintf(stderr, "verify-selftest: FAIL: verdicts differ between two "
                           "identical runs\n");
      ok = false;
    }
  }
  if (ok) {
    std::printf(
        "verify-selftest: PASS (racy listing12: %s; racy shmem_put_signal: "
        "%s)\n",
        records[0].detail.c_str(), records[2].detail.c_str());
  }
  return ok ? 0 : 1;
}

/// Cluster mode: serve an RxC chip grid through the parallel PDES executor.
/// The report is byte-identical for every worker count; --selftest proves it
/// by rerunning with other counts and comparing bytes.
int run_cluster(const Options& opt) {
  if (!opt.spec_path.empty() || !opt.asm_files.empty()) {
    std::fprintf(stderr,
                 "epi_serve: --spec/--asm are single-chip flags; cluster "
                 "mode generates its own per-chip streams\n");
    return 2;
  }
  sched::ClusterConfig cc;
  cc.chip_rows = opt.chip_rows;
  cc.chip_cols = opt.chip_cols;
  cc.traffic.jobs = opt.jobs;
  cc.traffic.seed = opt.seed;
  cc.traffic.mean_interarrival = opt.interarrival;
  cc.traffic.pipeline_frac = opt.pipelines;
  cc.sched.queue_capacity = opt.queue;
  cc.sched.lint = opt.lint;
  // In cluster mode --plan carries the cluster grammar (`chips RxC` plus
  // chip-scoped faults, see src/fault/plan.hpp); chip-tagged machine faults
  // arm the per-job watchdog by default, same as single-chip plans do.
  if (!opt.plan_path.empty()) cc.cluster_plan = fault::load_file(opt.plan_path);
  if (opt.watchdog_set) {
    cc.sched.watchdog_cycles = opt.watchdog;
  } else if (!opt.plan_path.empty()) {
    cc.sched.watchdog_cycles = 400'000;
  }
  cc.remote_frac = opt.remote_frac;
  cc.trace = !opt.trace_path.empty();

  const auto serve = [&cc, &opt](unsigned workers, double* wall_ms) {
    sched::ClusterScheduler cs(cc);
    const auto t0 = std::chrono::steady_clock::now();
    cs.run(workers);
    const auto t1 = std::chrono::steady_clock::now();
    if (wall_ms != nullptr) {
      *wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      // Only the measured (first) run exports the trace.
      if (cc.trace) {
        std::ofstream os(opt.trace_path, std::ios::binary | std::ios::trunc);
        if (!os) {
          throw std::runtime_error("cannot write trace file: " +
                                   opt.trace_path);
        }
        cs.write_trace(os);
      }
    }
    return cs.report();
  };

  std::cout << "serving a " << opt.chip_rows << "x" << opt.chip_cols
            << " chip grid: " << opt.jobs << " jobs/chip (seed " << opt.seed
            << "), remote-frac " << opt.remote_frac << ", --parallel="
            << opt.parallel << "\n\n";
  double wall = 0.0;
  const std::string report = serve(opt.parallel, &wall);
  std::cout << report;
  // Timing is narrative only -- never part of the report bytes.
  std::printf(
      "\nwall-clock: %.1f ms with %u worker thread(s) (%u hardware threads)\n",
      wall, opt.parallel, std::thread::hardware_concurrency());
  if (!opt.report_path.empty()) {
    std::ofstream os(opt.report_path, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write report: " + opt.report_path);
    os << report;
  }
  if (opt.selftest) {
    bool ok = true;
    for (const unsigned w : {1u, 2u}) {
      if (w == opt.parallel) continue;
      if (serve(w, nullptr) != report) {
        std::fprintf(stderr,
                     "epi_serve: FAIL: reports differ between --parallel=%u "
                     "and --parallel=%u\n",
                     opt.parallel, w);
        ok = false;
      }
    }
    std::cout << (ok ? "\nselftest: PASS (byte-identical cluster reports "
                       "across worker counts)\n"
                     : "\nselftest: FAIL\n");
    return ok ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string val;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (value_flag(arg, "--spec", opt.spec_path) ||
        value_flag(arg, "--spec-out", opt.spec_out) ||
        value_flag(arg, "--report", opt.report_path) ||
        value_flag(arg, "--trace", opt.trace_path) ||
        value_flag(arg, "--plan", opt.plan_path)) {
      continue;
    }
    if (value_flag(arg, "--watchdog", val)) {
      opt.watchdog = std::stoull(val);
      opt.watchdog_set = true;
      continue;
    }
    if (arg == "--strict") { opt.strict = true; continue; }
    if (value_flag(arg, "--jobs", val)) { opt.jobs = static_cast<unsigned>(std::stoul(val)); continue; }
    if (value_flag(arg, "--seed", val)) { opt.seed = std::stoull(val); continue; }
    if (value_flag(arg, "--interarrival", val)) { opt.interarrival = std::stoull(val); continue; }
    if (value_flag(arg, "--queue", val)) { opt.queue = std::stoul(val); continue; }
    if (arg == "--log") { opt.print_log = true; continue; }
    if (arg == "--selftest") { opt.selftest = true; continue; }
    if (arg == "--verify-selftest") { opt.verify_selftest = true; continue; }
    if (value_flag(arg, "--lint", val)) {
      if (val == "off") opt.lint = sched::LintMode::Off;
      else if (val == "warn") opt.lint = sched::LintMode::Warn;
      else if (val == "strict") opt.lint = sched::LintMode::Strict;
      else {
        std::fprintf(stderr, "epi_serve: --lint needs off|warn|strict\n");
        return 2;
      }
      continue;
    }
    if (value_flag(arg, "--chips", val)) {
      const auto x = val.find('x');
      try {
        if (x == std::string::npos) throw std::invalid_argument(val);
        opt.chip_rows = static_cast<unsigned>(std::stoul(val.substr(0, x)));
        opt.chip_cols = static_cast<unsigned>(std::stoul(val.substr(x + 1)));
      } catch (const std::exception&) {
        std::fprintf(stderr, "epi_serve: --chips needs RxC (e.g. 2x2)\n");
        return 2;
      }
      if (opt.chip_rows == 0 || opt.chip_cols == 0) {
        std::fprintf(stderr, "epi_serve: --chips needs a non-empty grid\n");
        return 2;
      }
      continue;
    }
    if (value_flag(arg, "--parallel", val)) {
      opt.parallel = static_cast<unsigned>(std::stoul(val));
      if (opt.parallel == 0) opt.parallel = 1;
      continue;
    }
    if (value_flag(arg, "--remote-frac", val)) {
      opt.remote_frac = std::stod(val);
      continue;
    }
    if (value_flag(arg, "--pipelines", val)) {
      opt.pipelines = std::stod(val);
      if (opt.pipelines < 0.0 || opt.pipelines > 1.0) {
        std::fprintf(stderr, "epi_serve: --pipelines needs a fraction in [0,1]\n");
        return 2;
      }
      continue;
    }
    if (value_flag(arg, "--asm", opt.asm_files)) continue;
    if (value_flag(arg, "--asm-shape", val)) {
      const auto x = val.find('x');
      try {
        if (x == std::string::npos) throw std::invalid_argument(val);
        opt.asm_rows = static_cast<unsigned>(std::stoul(val.substr(0, x)));
        opt.asm_cols = static_cast<unsigned>(std::stoul(val.substr(x + 1)));
      } catch (const std::exception&) {
        std::fprintf(stderr, "epi_serve: --asm-shape needs RxC (e.g. 2x2)\n");
        return 2;
      }
      if (opt.asm_rows == 0 || opt.asm_cols == 0 || opt.asm_rows > 8 ||
          opt.asm_cols > 8) {
        std::fprintf(stderr, "epi_serve: --asm-shape must fit the 8x8 mesh\n");
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "epi_serve: unknown argument '%s' (see the header of tools/epi_serve.cpp)\n",
                 std::string(arg).c_str());
    return 2;
  }

  if (opt.verify_selftest) {
    try {
      return verify_selftest();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "epi_serve: verify-selftest error: %s\n", e.what());
      return 1;
    }
  }

  if (opt.chip_rows != 0) {
    try {
      return run_cluster(opt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "epi_serve: error: %s\n", e.what());
      return 1;
    }
  }

  try {
    std::vector<sched::JobSpec> jobs;
    if (!opt.asm_files.empty()) {
      jobs.push_back(custom_job(opt.asm_files, opt.asm_rows, opt.asm_cols));
      std::cout << "serving " << jobs[0].programs.size()
                << " custom program(s) as a " << opt.asm_rows << "x"
                << opt.asm_cols << " workgroup (lint=" << to_string(opt.lint)
                << ")\n\n";
    } else if (!opt.spec_path.empty()) {
      jobs = sched::load_file(opt.spec_path);
      std::cout << "replaying " << jobs.size() << " jobs from " << opt.spec_path
                << "\n\n";
    } else {
      sched::TrafficConfig tc;
      tc.jobs = opt.jobs;
      tc.seed = opt.seed;
      tc.mean_interarrival = opt.interarrival;
      tc.pipeline_frac = opt.pipelines;
      jobs = sched::generate(tc);
      std::cout << "generated " << jobs.size() << " jobs (seed " << opt.seed
                << ", mean interarrival " << opt.interarrival << " cycles)\n\n";
    }
    if (!opt.spec_out.empty()) {
      std::ofstream os(opt.spec_out, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot write spec: " + opt.spec_out);
      os << sched::save(jobs);
    }

    const RunOutput first = run_once(jobs, opt, !opt.trace_path.empty());
    std::cout << first.report;
    if (!first.fault_log.empty()) {
      std::cout << "\n-- fault log --\n";
      for (const auto& line : first.fault_log) std::cout << line << "\n";
    }
    if (opt.print_log) {
      std::cout << "\n-- decision log --\n";
      for (const auto& line : first.log) std::cout << line << "\n";
    }
    if (!opt.report_path.empty()) {
      std::ofstream os(opt.report_path, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot write report: " + opt.report_path);
      os << first.report;
    }
    if (!opt.trace_path.empty()) {
      std::cout << "\nWrote Perfetto trace to " << opt.trace_path
                << " (open at ui.perfetto.dev; ts is in cycles)\n";
    }

    if (first.unresolved != 0) {
      std::fprintf(stderr, "epi_serve: FAIL: %u jobs left without a verdict\n",
                   first.unresolved);
      return 1;
    }
    if (!opt.asm_files.empty() && !first.rejected.empty()) {
      for (const auto& line : first.rejected) {
        std::fprintf(stderr, "epi_serve: rejected: %s\n", line.c_str());
      }
      return 1;
    }
    if (opt.strict && first.failed != 0) {
      std::fprintf(stderr, "epi_serve: --strict: %u jobs failed\n", first.failed);
      return 1;
    }

    if (opt.selftest) {
      const RunOutput second = run_once(jobs, opt, false);
      bool ok = true;
      if (second.report != first.report) {
        std::fprintf(stderr, "epi_serve: FAIL: reports differ between two "
                             "identical runs\n");
        ok = false;
      }
      if (second.log != first.log) {
        std::fprintf(stderr, "epi_serve: FAIL: decision logs differ between "
                             "two identical runs\n");
        ok = false;
      }
      if (second.fault_log != first.fault_log) {
        std::fprintf(stderr, "epi_serve: FAIL: fault logs differ between two "
                             "identical runs\n");
        ok = false;
      }
      if (first.peak_resident < 3) {
        std::fprintf(stderr,
                     "epi_serve: FAIL: expected >=3 concurrently resident "
                     "workgroups, saw %u\n",
                     first.peak_resident);
        ok = false;
      }
      std::cout << (ok ? "\nselftest: PASS (byte-identical reports and logs; "
                       : "\nselftest: FAIL (")
                << "peak resident groups " << first.peak_resident << ")\n";
      return ok ? 0 : 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "epi_serve: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
