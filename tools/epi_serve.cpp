// epi-serve: replay a multi-tenant job workload against the simulated 8x8
// mesh and report what the scheduler did with it.
//
// With --spec=FILE the workload is read from a workload-spec text file (see
// src/sched/workload.hpp for the format); otherwise a seeded stream is
// generated, and --spec-out can save it for later byte-identical replays.
//
// Usage:
//   epi_serve [options]
//     --spec=FILE        replay a workload spec instead of generating one
//     --jobs=N           generated stream length            (default 60)
//     --seed=S           traffic seed                       (default 1)
//     --interarrival=C   mean cycles between arrivals       (default 30000)
//     --queue=N          admission queue capacity           (default 64)
//     --spec-out=FILE    write the workload spec that was run
//     --report=FILE      write the run report to FILE as well as stdout
//     --log              print the scheduler's decision log
//     --trace=FILE       Perfetto trace of the whole serving run
//     --plan=FILE        arm a fault-injection plan (see src/fault/plan.hpp);
//                        the watchdog defaults on (400000 cycles) so silent
//                        stalls become FaultReports instead of deadlocks
//     --watchdog=C       per-job silence budget in cycles (0 disables)
//     --strict           exit non-zero if any job ends with a Failed verdict
//                        (default: failures are reported but tolerated --
//                        a degraded chip keeps serving)
//     --selftest         run the workload twice on fresh machines and fail
//                        unless reports and decision logs are byte-identical
//                        (also asserts >=3 workgroups were resident at once)

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "host/system.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace epi;

struct Options {
  std::string spec_path;
  unsigned jobs = 60;
  std::uint64_t seed = 1;
  sim::Cycles interarrival = 30'000;
  std::size_t queue = 64;
  std::string spec_out;
  std::string report_path;
  std::string trace_path;
  std::string plan_path;
  sim::Cycles watchdog = 0;
  bool watchdog_set = false;
  bool strict = false;
  bool print_log = false;
  bool selftest = false;
};

bool value_flag(std::string_view arg, std::string_view flag, std::string& out) {
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    out = std::string(arg.substr(flag.size() + 1));
    return true;
  }
  return false;
}

struct RunOutput {
  std::string report;
  std::vector<std::string> log;
  std::vector<std::string> fault_log;
  unsigned peak_resident = 0;
  unsigned unresolved = 0;
  unsigned failed = 0;
};

RunOutput run_once(const std::vector<sched::JobSpec>& jobs, const Options& opt,
                   bool trace) {
  host::System sys;
  if (trace) sys.machine().enable_tracing();
  if (!opt.plan_path.empty()) {
    sys.machine().enable_faults(fault::load_file(opt.plan_path));
  }
  sched::SchedConfig cfg;
  cfg.queue_capacity = opt.queue;
  // With a plan armed, silent stalls are expected: default the watchdog on
  // so they become FaultReports instead of an engine deadlock.
  cfg.watchdog_cycles =
      opt.watchdog_set ? opt.watchdog : (opt.plan_path.empty() ? 0 : 400'000);
  sched::Scheduler sc(sys, cfg);
  for (const auto& spec : jobs) sc.submit(spec);
  sc.run();

  RunOutput out;
  out.report = sched::render_report(sc);
  out.log = sc.event_log();
  for (const auto& r : sc.fault_log()) out.fault_log.push_back(fault::to_line(r));
  out.peak_resident = sc.peak_resident();
  for (const auto& rec : sc.records()) {
    if (rec.verdict == sched::Verdict::Pending) ++out.unresolved;
    if (rec.verdict == sched::Verdict::Failed) ++out.failed;
  }
  if (trace && !opt.trace_path.empty()) {
    std::ofstream os(opt.trace_path, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("cannot write trace file: " + opt.trace_path);
    trace::write_chrome_trace(os, *sys.machine().tracer());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string val;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (value_flag(arg, "--spec", opt.spec_path) ||
        value_flag(arg, "--spec-out", opt.spec_out) ||
        value_flag(arg, "--report", opt.report_path) ||
        value_flag(arg, "--trace", opt.trace_path) ||
        value_flag(arg, "--plan", opt.plan_path)) {
      continue;
    }
    if (value_flag(arg, "--watchdog", val)) {
      opt.watchdog = std::stoull(val);
      opt.watchdog_set = true;
      continue;
    }
    if (arg == "--strict") { opt.strict = true; continue; }
    if (value_flag(arg, "--jobs", val)) { opt.jobs = static_cast<unsigned>(std::stoul(val)); continue; }
    if (value_flag(arg, "--seed", val)) { opt.seed = std::stoull(val); continue; }
    if (value_flag(arg, "--interarrival", val)) { opt.interarrival = std::stoull(val); continue; }
    if (value_flag(arg, "--queue", val)) { opt.queue = std::stoul(val); continue; }
    if (arg == "--log") { opt.print_log = true; continue; }
    if (arg == "--selftest") { opt.selftest = true; continue; }
    std::fprintf(stderr, "epi_serve: unknown argument '%s' (see the header of tools/epi_serve.cpp)\n",
                 std::string(arg).c_str());
    return 2;
  }

  try {
    std::vector<sched::JobSpec> jobs;
    if (!opt.spec_path.empty()) {
      jobs = sched::load_file(opt.spec_path);
      std::cout << "replaying " << jobs.size() << " jobs from " << opt.spec_path
                << "\n\n";
    } else {
      sched::TrafficConfig tc;
      tc.jobs = opt.jobs;
      tc.seed = opt.seed;
      tc.mean_interarrival = opt.interarrival;
      jobs = sched::generate(tc);
      std::cout << "generated " << jobs.size() << " jobs (seed " << opt.seed
                << ", mean interarrival " << opt.interarrival << " cycles)\n\n";
    }
    if (!opt.spec_out.empty()) {
      std::ofstream os(opt.spec_out, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot write spec: " + opt.spec_out);
      os << sched::save(jobs);
    }

    const RunOutput first = run_once(jobs, opt, !opt.trace_path.empty());
    std::cout << first.report;
    if (!first.fault_log.empty()) {
      std::cout << "\n-- fault log --\n";
      for (const auto& line : first.fault_log) std::cout << line << "\n";
    }
    if (opt.print_log) {
      std::cout << "\n-- decision log --\n";
      for (const auto& line : first.log) std::cout << line << "\n";
    }
    if (!opt.report_path.empty()) {
      std::ofstream os(opt.report_path, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot write report: " + opt.report_path);
      os << first.report;
    }
    if (!opt.trace_path.empty()) {
      std::cout << "\nWrote Perfetto trace to " << opt.trace_path
                << " (open at ui.perfetto.dev; ts is in cycles)\n";
    }

    if (first.unresolved != 0) {
      std::fprintf(stderr, "epi_serve: FAIL: %u jobs left without a verdict\n",
                   first.unresolved);
      return 1;
    }
    if (opt.strict && first.failed != 0) {
      std::fprintf(stderr, "epi_serve: --strict: %u jobs failed\n", first.failed);
      return 1;
    }

    if (opt.selftest) {
      const RunOutput second = run_once(jobs, opt, false);
      bool ok = true;
      if (second.report != first.report) {
        std::fprintf(stderr, "epi_serve: FAIL: reports differ between two "
                             "identical runs\n");
        ok = false;
      }
      if (second.log != first.log) {
        std::fprintf(stderr, "epi_serve: FAIL: decision logs differ between "
                             "two identical runs\n");
        ok = false;
      }
      if (second.fault_log != first.fault_log) {
        std::fprintf(stderr, "epi_serve: FAIL: fault logs differ between two "
                             "identical runs\n");
        ok = false;
      }
      if (first.peak_resident < 3) {
        std::fprintf(stderr,
                     "epi_serve: FAIL: expected >=3 concurrently resident "
                     "workgroups, saw %u\n",
                     first.peak_resident);
        ok = false;
      }
      std::cout << (ok ? "\nselftest: PASS (byte-identical reports and logs; "
                       : "\nselftest: FAIL (")
                << "peak resident groups " << first.peak_resident << ")\n";
      return ok ? 0 : 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "epi_serve: error: %s\n", e.what());
    return 1;
  }
  return 0;
}
