// epi-fault: author, replay and self-check deterministic fault plans.
//
// A fault plan (src/fault/plan.hpp) is data: a list of scheduled hardware
// faults plus the seed that drives every random choice made while applying
// them. This tool generates seeded chaos plans, replays a serving workload
// under a plan, and carries the two self-checks the CI runs:
//
// Usage:
//   epi_fault gen [options]          generate a chaos plan (text to stdout)
//     --chaos-seed=S                 plan seed                    (default 1)
//     --kills=N --stalls=N           core faults                  (default 1/1)
//     --links=N                      directed mesh-link outages   (default 4)
//     --elink-outages=N              transient whole-eLink stalls (default 1)
//     --elink-flips=N --mem-flips=N  bit corruptions              (default 1/1)
//     --horizon=C                    faults land in [0, C)        (default 1000000)
//     --out=FILE                     write the plan to FILE
//     --chips=RxC                    emit a cluster plan (`chips RxC` header;
//                                    machine faults get chip= scopes)
//     --chip-crashes=N --chip-stalls=N   chip-scoped faults       (default 0/0)
//     --xmesh=N                      bridge-link outages (some flapping)
//     --notice-drops=N --notice-flips=N  completion-notice faults (default 0/0)
//
//   epi_fault run --plan=FILE [options]   serve a workload under the plan
//     --jobs=N --seed=S --interarrival=C  traffic (defaults 40 / 7 / 30000)
//     --watchdog=C                        silence budget (default 400000)
//     --log                               print decision + injection logs
//
//   epi_fault --selftest       plan round-trip, same-seed byte-identity,
//                              parser error reporting, and the empty-plan
//                              equivalence guarantee
//   epi_fault --chaos-smoke    seeded chaos serving run (core kill, link
//                              faults, eLink corruption): must complete,
//                              quarantine the dead core, validate surviving
//                              results, and replay byte-identically
//   epi_fault --chaos-smoke --chips=RxC
//                              cluster chaos smoke: an RxC chip grid served
//                              under chip crashes/stalls, bridge-link
//                              outages and notice faults; every job must
//                              reach a verdict (no wedged graphs), orphaned
//                              forwards must be re-homed, and the cluster
//                              report must be byte-identical across
//                              --parallel={1,2,4}
//
// Exit status: 0 on success / all checks pass, 1 otherwise.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "host/system.hpp"
#include "sched/cluster.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"

namespace {

using namespace epi;

bool value_flag(std::string_view arg, std::string_view flag, std::string& out) {
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    out = std::string(arg.substr(flag.size() + 1));
    return true;
  }
  return false;
}

struct ServeResult {
  std::string report;
  std::vector<std::string> decision_log;
  std::vector<std::string> fault_log;
  std::vector<std::string> injections;
  unsigned completed = 0, failed = 0, unresolved = 0;
  unsigned quarantined = 0;
};

/// One serving run of a generated workload, optionally under a fault plan.
/// `arm_empty` attaches an injector with an empty plan (for the equivalence
/// check); otherwise the injector is attached only when the plan has events.
ServeResult serve(const fault::FaultPlan& plan, bool arm, unsigned jobs,
                  std::uint64_t traffic_seed, sim::Cycles interarrival,
                  sim::Cycles watchdog) {
  host::System sys;
  if (arm) sys.machine().enable_faults(plan);

  sched::TrafficConfig tc;
  tc.jobs = jobs;
  tc.seed = traffic_seed;
  tc.mean_interarrival = interarrival;

  sched::SchedConfig cfg;
  cfg.watchdog_cycles = watchdog;
  sched::Scheduler sc(sys, cfg);
  for (auto& spec : sched::generate(tc)) sc.submit(std::move(spec));
  sc.run();

  ServeResult out;
  out.report = sched::render_report(sc);
  out.decision_log = sc.event_log();
  for (const auto& r : sc.fault_log()) out.fault_log.push_back(fault::to_line(r));
  if (auto* inj = sys.machine().faults()) out.injections = inj->injections();
  for (const auto& rec : sc.records()) {
    if (rec.verdict == sched::Verdict::Completed) ++out.completed;
    else if (rec.verdict == sched::Verdict::Failed) ++out.failed;
    else if (rec.verdict == sched::Verdict::Pending) ++out.unresolved;
  }
  out.quarantined = sc.allocator().quarantined_cores();
  return out;
}

int check(bool ok, const char* what, int& failures) {
  std::printf("%-58s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) ++failures;
  return failures;
}

/// Expect `parse` of `text` to throw a FaultError whose message starts with
/// "spec:<line>:".
bool parse_fails_at(const std::string& text, unsigned line) {
  std::istringstream in(text);
  try {
    (void)fault::parse(in, "spec");
    return false;
  } catch (const fault::FaultError& e) {
    const std::string want = "spec:" + std::to_string(line) + ":";
    return std::string_view(e.what()).substr(0, want.size()) == want;
  }
}

int selftest() {
  int failures = 0;

  // Same seed, same plan -- byte-identical text; a different seed moves the
  // random placements.
  fault::ChaosConfig cc;
  cc.seed = 7;
  cc.dims = {8, 8};
  cc.core_kills = 2;
  cc.core_stalls = 2;
  cc.link_faults = 6;
  cc.elink_outages = 2;
  cc.elink_flips = 2;
  cc.mem_flips = 2;
  const std::string a = fault::save(fault::generate(cc));
  const std::string b = fault::save(fault::generate(cc));
  check(a == b, "generate(): same seed is byte-identical", failures);
  cc.seed = 8;
  check(fault::save(fault::generate(cc)) != a, "generate(): seed moves the plan",
        failures);

  // Text round-trip: parse(save(p)) re-saves to the same bytes.
  std::istringstream in(a);
  const fault::FaultPlan back = fault::parse(in, "roundtrip");
  check(fault::save(back) == a, "save/parse round-trip", failures);

  // Parser rejects malformed input with file:line: messages.
  check(parse_fails_at("kill core=2,3\n", 1), "parse: kill without at= rejected",
        failures);
  check(parse_fails_at("seed 5\nfrob core=1,1 at=10\n", 2),
        "parse: unknown directive names its line", failures);
  check(parse_fails_at("link router=4 dir=east at=5 for=0\n", 1),
        "parse: router without row,col rejected", failures);
  check(parse_fails_at("mem-flip region=attic at=0 for=0 count=1\n", 1),
        "parse: bad region rejected", failures);
  check(parse_fails_at("seed banana\n", 1), "parse: non-numeric seed rejected",
        failures);

  // Cluster grammar: a generated cluster plan round-trips, and the parser
  // rejects the chip-scoped mistakes with file:line: diagnostics.
  fault::ChaosConfig cl;
  cl.seed = 5;
  cl.dims = {8, 8};
  cl.chip_rows = 2;
  cl.chip_cols = 2;
  cl.core_kills = 1;  // chip-tagged machine fault
  cl.chip_crashes = 1;
  cl.chip_stalls = 1;
  cl.xmesh_faults = 2;
  cl.notice_drops = 1;
  cl.notice_flips = 1;
  const std::string ct = fault::save(fault::generate(cl));
  std::istringstream cin2(ct);
  check(fault::save(fault::parse(cin2, "cluster")) == ct,
        "cluster plan: save/parse round-trip", failures);
  check(parse_fails_at("chips 2x2\n"
                       "chip-crash chip=0,0 at=10 id=3\n"
                       "chip-stall chip=0,1 at=20 for=50 id=3\n",
                       3),
        "parse: duplicate fault id rejected", failures);
  check(parse_fails_at("chips 2x2\nchip-crash chip=2,0 at=10\n", 2),
        "parse: out-of-range chip coordinate rejected", failures);
  check(parse_fails_at("chips 2x2\nxmesh from=0,1 to=3,3 at=5 for=100\n", 2),
        "parse: out-of-range xmesh endpoint rejected", failures);
  check(parse_fails_at("chips 2x2\nxmesh from=0,0 to=0,0 at=5 for=100\n", 2),
        "parse: xmesh self-link rejected", failures);
  check(parse_fails_at("chip-stall chip=0,0 at=5 for=100\n", 1),
        "parse: chip fault without a chips directive rejected", failures);
  check(parse_fails_at("seed 1\nchips 2x2\nchips 2x2\n", 3),
        "parse: duplicate chips directive rejected", failures);

  // Empty-plan equivalence: arming an injector with no events must leave a
  // serving run byte-identical to one with no injector at all.
  const fault::FaultPlan empty;
  const ServeResult bare = serve(empty, false, 24, 3, 30'000, 0);
  const ServeResult armed = serve(empty, true, 24, 3, 30'000, 0);
  check(bare.report == armed.report, "empty plan: reports byte-identical",
        failures);
  check(bare.decision_log == armed.decision_log,
        "empty plan: decision logs byte-identical", failures);
  check(armed.fault_log.empty() && armed.injections.empty(),
        "empty plan: nothing detected, nothing injected", failures);

  std::printf("\nselftest: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

int chaos_smoke() {
  int failures = 0;

  // A scripted plan exercising every detection path at once: one dead core,
  // a ~5% transient directed-link outage rate, and eLink write corruption.
  fault::ChaosConfig cc;
  cc.seed = 11;
  cc.dims = {8, 8};
  cc.horizon = 900'000;
  cc.core_kills = 1;
  cc.link_faults = 13;  // ~5% of the 256 directed links
  cc.transient_link_prob = 0.8;
  cc.elink_outages = 1;
  cc.elink_flips = 2;
  cc.mem_flips = 1;
  const fault::FaultPlan plan = fault::generate(cc);

  const ServeResult first = serve(plan, true, 40, 7, 30'000, 400'000);
  const ServeResult second = serve(plan, true, 40, 7, 30'000, 400'000);

  // The run must terminate with a verdict for every job: faults degrade the
  // mesh, they do not wedge the scheduler.
  check(first.unresolved == 0, "chaos: every job reached a verdict", failures);
  check(first.completed > 0, "chaos: serving continued under faults", failures);
  // The kill must have been noticed and its rectangle retired. (Completed
  // offload results are CRC/pattern-validated inside the scheduler when an
  // injector is armed, so `completed` jobs are bit-correct by construction.)
  check(first.quarantined >= 1, "chaos: dead core quarantined", failures);
  check(!first.fault_log.empty(), "chaos: faults were detected and reported",
        failures);
  // Determinism: the whole run -- report, decisions, detections, injections
  // -- replays byte-identically from (plan, workload seed).
  check(second.report == first.report, "chaos replay: report byte-identical",
        failures);
  check(second.decision_log == first.decision_log,
        "chaos replay: decision log byte-identical", failures);
  check(second.fault_log == first.fault_log,
        "chaos replay: fault log byte-identical", failures);
  check(second.injections == first.injections,
        "chaos replay: injection log byte-identical", failures);

  std::printf("\n-- fault log --\n");
  for (const auto& line : first.fault_log) std::printf("%s\n", line.c_str());
  std::printf("\nchaos-smoke: %s (completed %u, failed %u, quarantined %u)\n",
              failures == 0 ? "PASS" : "FAIL", first.completed, first.failed,
              first.quarantined);
  return failures == 0 ? 0 : 1;
}

/// Cluster chaos smoke: an RxC chip grid served under every chip-scoped
/// fault kind at once. The failover acceptance criteria in one binary: no
/// wedged jobs or graphs, orphaned forwards re-homed onto healthy chips,
/// and the full recovery transcript byte-identical across worker counts.
int cluster_chaos_smoke(unsigned rows, unsigned cols) {
  int failures = 0;

  fault::ChaosConfig cc;
  cc.seed = 11;
  cc.dims = {8, 8};
  cc.horizon = 900'000;
  cc.chip_rows = rows;
  cc.chip_cols = cols;
  cc.chip_crashes = 1;
  cc.chip_stalls = 1;
  cc.xmesh_faults = 2;
  cc.notice_drops = 2;
  cc.notice_flips = 1;
  const fault::FaultPlan plan = fault::generate(cc);

  sched::ClusterConfig conf;
  conf.chip_rows = rows;
  conf.chip_cols = cols;
  conf.traffic.jobs = 18;
  conf.traffic.seed = 7;
  conf.traffic.mean_interarrival = 40'000;
  conf.traffic.pipeline_frac = 0.3;  // graphs exercise DAG-aware recovery
  conf.remote_frac = 0.35;
  conf.sched.watchdog_cycles = 400'000;
  conf.cluster_plan = plan;

  struct Run {
    std::string report;
    sched::ClusterStats stats;
    unsigned unresolved = 0;
  };
  const auto serve_cluster = [&conf](unsigned workers) {
    sched::ClusterScheduler cs(conf);
    cs.run(workers);
    Run out;
    out.report = cs.report();
    out.stats = cs.stats();
    for (unsigned c = 0; c < cs.stats().chips; ++c) {
      for (const auto& rec : cs.chip_sched(c).records()) {
        if (rec.verdict == sched::Verdict::Pending) ++out.unresolved;
      }
    }
    return out;
  };

  const Run first = serve_cluster(4);
  check(first.unresolved == 0, "cluster chaos: no wedged jobs or graphs",
        failures);
  check(first.stats.dead_chips >= 1, "cluster chaos: a chip crashed mid-run",
        failures);
  check(first.stats.reforwarded > 0,
        "cluster chaos: orphaned forwards were re-homed", failures);
  check(first.stats.quarantines > 0,
        "cluster chaos: the sick chip was quarantined", failures);
  for (const unsigned w : {1u, 2u}) {
    const Run again = serve_cluster(w);
    check(again.report == first.report,
          w == 1 ? "cluster chaos: --parallel=1 replays the same bytes"
                 : "cluster chaos: --parallel=2 replays the same bytes",
          failures);
  }

  std::printf(
      "\ncluster-chaos-smoke: %s (dead=%u reforwarded=%llu quarantines=%llu "
      "abandoned=%llu dup_dropped=%llu crc_rejects=%llu)\n",
      failures == 0 ? "PASS" : "FAIL", first.stats.dead_chips,
      static_cast<unsigned long long>(first.stats.reforwarded),
      static_cast<unsigned long long>(first.stats.quarantines),
      static_cast<unsigned long long>(first.stats.abandoned),
      static_cast<unsigned long long>(first.stats.dup_dropped),
      static_cast<unsigned long long>(first.stats.crc_rejects));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string verb;
  std::string plan_path, out_path, val;
  fault::ChaosConfig cc;
  cc.dims = {8, 8};
  cc.core_kills = 1;
  cc.core_stalls = 1;
  cc.link_faults = 4;
  cc.elink_outages = 1;
  cc.elink_flips = 1;
  cc.mem_flips = 1;
  unsigned jobs = 40;
  std::uint64_t traffic_seed = 7;
  sim::Cycles interarrival = 30'000;
  sim::Cycles watchdog = 400'000;
  bool print_log = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "gen" || arg == "run") { verb = arg; continue; }
    if (arg == "--selftest") { verb = "selftest"; continue; }
    if (arg == "--chaos-smoke") { verb = "chaos-smoke"; continue; }
    if (arg == "--log") { print_log = true; continue; }
    if (value_flag(arg, "--plan", plan_path) || value_flag(arg, "--out", out_path))
      continue;
    if (value_flag(arg, "--chaos-seed", val)) { cc.seed = std::stoull(val); continue; }
    if (value_flag(arg, "--kills", val)) { cc.core_kills = std::stoul(val); continue; }
    if (value_flag(arg, "--stalls", val)) { cc.core_stalls = std::stoul(val); continue; }
    if (value_flag(arg, "--links", val)) { cc.link_faults = std::stoul(val); continue; }
    if (value_flag(arg, "--elink-outages", val)) { cc.elink_outages = std::stoul(val); continue; }
    if (value_flag(arg, "--elink-flips", val)) { cc.elink_flips = std::stoul(val); continue; }
    if (value_flag(arg, "--mem-flips", val)) { cc.mem_flips = std::stoul(val); continue; }
    if (value_flag(arg, "--chips", val)) {
      const auto x = val.find('x');
      if (x == std::string::npos) {
        std::fprintf(stderr, "epi_fault: --chips needs RxC (e.g. 2x2)\n");
        return 2;
      }
      cc.chip_rows = static_cast<unsigned>(std::stoul(val.substr(0, x)));
      cc.chip_cols = static_cast<unsigned>(std::stoul(val.substr(x + 1)));
      continue;
    }
    if (value_flag(arg, "--chip-crashes", val)) { cc.chip_crashes = std::stoul(val); continue; }
    if (value_flag(arg, "--chip-stalls", val)) { cc.chip_stalls = std::stoul(val); continue; }
    if (value_flag(arg, "--xmesh", val)) { cc.xmesh_faults = std::stoul(val); continue; }
    if (value_flag(arg, "--notice-drops", val)) { cc.notice_drops = std::stoul(val); continue; }
    if (value_flag(arg, "--notice-flips", val)) { cc.notice_flips = std::stoul(val); continue; }
    if (value_flag(arg, "--horizon", val)) { cc.horizon = std::stoull(val); continue; }
    if (value_flag(arg, "--jobs", val)) { jobs = static_cast<unsigned>(std::stoul(val)); continue; }
    if (value_flag(arg, "--seed", val)) { traffic_seed = std::stoull(val); continue; }
    if (value_flag(arg, "--interarrival", val)) { interarrival = std::stoull(val); continue; }
    if (value_flag(arg, "--watchdog", val)) { watchdog = std::stoull(val); continue; }
    std::fprintf(stderr, "epi_fault: unknown argument '%s' (see the header of tools/epi_fault.cpp)\n",
                 std::string(arg).c_str());
    return 2;
  }

  try {
    if (verb == "selftest") return selftest();
    if (verb == "chaos-smoke") {
      if (cc.chip_rows != 0 || cc.chip_cols != 0) {
        if (cc.chip_rows == 0 || cc.chip_cols == 0 ||
            cc.chip_rows * cc.chip_cols < 2) {
          std::fprintf(stderr,
                       "epi_fault: --chaos-smoke --chips needs a grid of at "
                       "least 2 chips\n");
          return 2;
        }
        return cluster_chaos_smoke(cc.chip_rows, cc.chip_cols);
      }
      return chaos_smoke();
    }
    if (verb == "gen") {
      const std::string text = fault::save(fault::generate(cc));
      if (out_path.empty()) {
        std::cout << text;
      } else {
        std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
        if (!os) throw std::runtime_error("cannot write plan: " + out_path);
        os << text;
        std::cout << "wrote " << out_path << "\n";
      }
      return 0;
    }
    if (verb == "run") {
      if (plan_path.empty()) {
        std::fprintf(stderr, "epi_fault run: --plan=FILE is required\n");
        return 2;
      }
      const fault::FaultPlan plan = fault::load_file(plan_path);
      const ServeResult r =
          serve(plan, true, jobs, traffic_seed, interarrival, watchdog);
      std::cout << r.report;
      if (!r.fault_log.empty()) {
        std::cout << "\n-- fault log --\n";
        for (const auto& line : r.fault_log) std::cout << line << "\n";
      }
      if (print_log) {
        std::cout << "\n-- injections --\n";
        for (const auto& line : r.injections) std::cout << line << "\n";
        std::cout << "\n-- decision log --\n";
        for (const auto& line : r.decision_log) std::cout << line << "\n";
      }
      return r.unresolved == 0 ? 0 : 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "epi_fault: error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "epi_fault: expected a verb: gen | run | --selftest | --chaos-smoke\n");
  return 2;
}
