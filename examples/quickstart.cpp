// Quickstart: the host/device programming model in one file.
//
// Mirrors the paper's section III "steps required to execute a program":
//   1. the host opens a workgroup (here 2x2 eCores),
//   2. loads a kernel onto each core,
//   3. signals them to start,
//   4. exchanges data through core-local memory,
//   5. reads results back when the cores signal completion.
//
// The kernel is a SAXPY-style vector update: each core processes its strip
// of y = a*x + y from its own 32 KB scratchpad, timing itself with an event
// timer exactly as the paper's Listing 1 does.

#include <cstdio>
#include <vector>

#include "host/system.hpp"
#include "util/reference.hpp"

using namespace epi;

namespace {

constexpr arch::Addr kX = 0x4000;   // input strip
constexpr arch::Addr kY = 0x5000;   // in/out strip
constexpr arch::Addr kOut = 0x6000; // elapsed cycles report
constexpr unsigned kPerCore = 1024;

sim::Op<void> saxpy_kernel(device::CoreCtx& ctx, float a) {
  auto x = ctx.local_array<float>(kX, kPerCore);
  auto y = ctx.local_array<float>(kY, kPerCore);
  auto out = ctx.local_array<std::uint32_t>(kOut, 1);

  auto& timer = ctx.ctimer(0);
  timer.set(machine::CTimer::kMax);
  timer.start();

  // One FMADD (2 flops) per element; loads/stores dual-issue.
  co_await ctx.compute(kPerCore);
  for (unsigned i = 0; i < kPerCore; ++i) y[i] = a * x[i] + y[i];

  out[0] = machine::CTimer::kMax - timer.get();
  timer.stop();
}

}  // namespace

int main() {
  host::System sys;  // an 8x8 Epiphany-IV by default
  auto wg = sys.open(0, 0, 2, 2);

  // Host prepares per-core strips.
  const float a = 2.5f;
  std::vector<float> x(kPerCore * wg.size());
  std::vector<float> y(kPerCore * wg.size());
  util::fill_random(x, 1);
  util::fill_random(y, 2);
  std::vector<float> expect(y);
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] = a * x[i] + expect[i];

  for (unsigned r = 0; r < 2; ++r) {
    for (unsigned c = 0; c < 2; ++c) {
      auto& ctx = wg.ctx(r, c);
      const std::size_t off = static_cast<std::size_t>(ctx.group_index()) * kPerCore;
      sys.write_array<float>(ctx.my_global(kX),
                             std::span<const float>(x.data() + off, kPerCore));
      sys.write_array<float>(ctx.my_global(kY),
                             std::span<const float>(y.data() + off, kPerCore));
    }
  }

  wg.load([a](device::CoreCtx& ctx) -> sim::Op<void> { return saxpy_kernel(ctx, a); });
  const sim::Cycles cycles = wg.run();

  // Host reads results and per-core timers back.
  std::vector<float> result(y.size());
  bool ok = true;
  std::printf("quickstart: 2x2 workgroup, %u floats per core\n", kPerCore);
  for (unsigned r = 0; r < 2; ++r) {
    for (unsigned c = 0; c < 2; ++c) {
      auto& ctx = wg.ctx(r, c);
      const std::size_t off = static_cast<std::size_t>(ctx.group_index()) * kPerCore;
      sys.read_array<float>(ctx.my_global(kY),
                            std::span<float>(result.data() + off, kPerCore));
      std::uint32_t core_cycles = 0;
      sys.read(ctx.my_global(kOut),
               std::as_writable_bytes(std::span<std::uint32_t, 1>(&core_cycles, 1)));
      std::printf("  core (%u,%u): %u cycles by its own ctimer\n", ctx.coord().row,
                  ctx.coord().col, core_cycles);
    }
  }
  ok = util::max_abs_diff(result, expect) == 0.0f;

  const double gflops = sys.gflops(2.0 * kPerCore * wg.size(), cycles);
  std::printf("device time: %llu cycles (%.2f us), %.3f GFLOPS across 4 cores\n",
              static_cast<unsigned long long>(cycles), sys.seconds(cycles) * 1e6, gflops);
  std::printf("verification vs host reference: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
