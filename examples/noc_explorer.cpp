// NoC explorer: interrogates the communication fabric the way section V of
// the paper does, printing a bandwidth/latency profile an application
// developer would use to choose transfer strategies:
//   * DMA vs direct-write crossover for this configuration,
//   * a distance map of direct-write latency from corner (0,0),
//   * per-core eLink shares under full contention.

#include <cstdio>

#include "core/microbench.hpp"

using namespace epi;

int main() {
  std::printf("noc_explorer: communication fabric profile (8x8 Epiphany-IV model)\n\n");

  std::printf("transfer strategy guide (adjacent cores):\n");
  std::printf("  %8s  %12s  %12s  %s\n", "bytes", "direct MB/s", "DMA MB/s", "use");
  for (std::uint32_t bytes = 16; bytes <= 4096; bytes *= 4) {
    host::System a, b;
    const auto direct = core::measure_direct_write(a, {0, 0}, {0, 1}, bytes, 32);
    const auto dma = core::measure_dma(b, {0, 0}, {0, 1}, bytes, 32);
    std::printf("  %8u  %12.1f  %12.1f  %s\n", bytes, direct.mb_per_s, dma.mb_per_s,
                dma.mb_per_s > direct.mb_per_s ? "DMA" : "CPU stores");
  }

  std::printf("\ndirect-write ns/word from core (0,0) (Table I style distance map):\n   ");
  for (unsigned c = 0; c < 8; ++c) std::printf("  col%-5u", c);
  std::printf("\n");
  for (unsigned r = 0; r < 8; ++r) {
    std::printf("  r%u", r);
    for (unsigned c = 0; c < 8; ++c) {
      if (r == 0 && c == 0) {
        std::printf("  %8s", "-");
        continue;
      }
      host::System sys;
      const auto m = core::measure_direct_write(sys, {0, 0}, {r, c}, 80, 20);
      const double flag = static_cast<double>(sys.timing().remote_store_issue_cycles);
      const double ns =
          (static_cast<double>(m.cycles) / 20 - flag) / 20 / sys.timing().clock_hz * 1e9;
      std::printf("  %8.2f", ns);
    }
    std::printf("\n");
  }

  std::printf("\neLink write share under full 64-core contention (5 ms window):\n");
  host::System sys;
  const auto res = core::measure_elink_contention(sys, 8, 8, 2048, 0.005);
  std::printf("  aggregate: %.1f MB/s (cap 150 MB/s)\n   ", res.total_mb_per_s);
  for (unsigned c = 0; c < 8; ++c) std::printf("  col%-4u", c);
  std::printf("\n");
  for (unsigned r = 0; r < 8; ++r) {
    std::printf("  r%u", r);
    for (unsigned c = 0; c < 8; ++c) {
      std::printf("  %6.3f", res.nodes[r * 8 + c].utilization);
    }
    std::printf("\n");
  }
  std::printf("\nlesson: stay on-chip; the single eLink is the wall.\n");
  return 0;
}
