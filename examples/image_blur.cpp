// Image processing on the mesh: the paper's introduction notes stencils
// "have similar characteristics to other applications such as image
// processing". This example runs a separable-equivalent 3x3 Gaussian blur
// (a full 9-point stencil, so it exercises the diagonal corner exchange)
// over a synthetic 160x160 image domain-decomposed across all 64 eCores,
// then verifies against the host reference.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/stencil.hpp"

using namespace epi;

namespace {

/// Synthetic test card: a bright disc, a dark square and a diagonal edge.
void paint_test_card(std::span<float> img, unsigned pitch, unsigned n) {
  for (unsigned y = 0; y < n; ++y) {
    for (unsigned x = 0; x < n; ++x) {
      float v = 0.2f;
      const float dx = static_cast<float>(x) - n * 0.3f;
      const float dy = static_cast<float>(y) - n * 0.35f;
      if (dx * dx + dy * dy < (n * 0.18f) * (n * 0.18f)) v = 1.0f;
      if (x > n * 0.55f && x < n * 0.85f && y > n * 0.55f && y < n * 0.85f) v = 0.0f;
      if (std::abs(static_cast<int>(x) - static_cast<int>(y)) < 2) v = 0.9f;
      img[(y + 1) * pitch + (x + 1)] = v;
    }
  }
}

void render(std::span<const float> img, unsigned pitch, unsigned n, const char* title) {
  static const char shades[] = " .:-=+*#%@";
  std::printf("%s\n", title);
  for (unsigned y = 1; y <= n; y += n / 24) {
    std::printf("  ");
    for (unsigned x = 1; x <= n; x += n / 48) {
      const float v = std::clamp(img[y * pitch + x], 0.0f, 0.999f);
      std::putchar(shades[static_cast<int>(v * 10.0f)]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  constexpr unsigned kN = 160;
  constexpr unsigned kPitch = kN + 2;
  std::vector<float> image(static_cast<std::size_t>(kPitch) * kPitch, 0.2f);
  paint_test_card(image, kPitch, kN);
  const std::vector<float> original(image);

  core::StencilConfig cfg;
  cfg.rows = kN / 8;
  cfg.cols = kN / 8;
  cfg.iters = 4;  // four blur passes
  cfg.shape = core::StencilShape::Nine;
  // 3x3 Gaussian kernel, 1/16 * [1 2 1; 2 4 2; 1 2 1].
  cfg.weights9 = {1 / 16.0f, 2 / 16.0f, 1 / 16.0f, 2 / 16.0f, 4 / 16.0f,
                  2 / 16.0f, 1 / 16.0f, 2 / 16.0f, 1 / 16.0f};

  std::printf("image_blur: 3x3 Gaussian x%u on a %ux%u image, 8x8 workgroup "
              "(%ux%u per core)\n\n",
              cfg.iters, kN, kN, cfg.rows, cfg.cols);
  render(original, kPitch, kN, "input:");

  host::System sys;
  const auto result = core::run_stencil(sys, 8, 8, cfg, image);
  std::printf("\n");
  render(image, kPitch, kN, "blurred:");

  // Host reference for verification.
  std::vector<float> ref(original);
  std::vector<float> tmp(ref);
  for (unsigned it = 0; it < cfg.iters; ++it) {
    util::stencil9_reference(ref, tmp, kPitch, kPitch,
                             std::span<const float, 9>(cfg.weights9));
    for (unsigned y = 1; y <= kN; ++y) {
      for (unsigned x = 1; x <= kN; ++x) ref[y * kPitch + x] = tmp[y * kPitch + x];
    }
  }
  const float err = util::max_abs_diff(image, ref);

  std::printf("\ndevice time: %.3f ms, %.1f GFLOPS (9-point: 18 flops/pixel/pass)\n",
              sys.seconds(result.cycles) * 1e3, result.gflops);
  std::printf("verification vs host reference: %s (max error %g)\n",
              err == 0.0f ? "PASS" : "FAIL", err);
  return err == 0.0f ? 0 : 1;
}
