// The offload programming model in action (the paper's section-IX call for
// "familiar programming models such as OpenCL"): a dot product computed as
// an element-wise multiply distributed over the 8x8 workgroup followed by
// a combining-tree reduction across the mesh -- no explicit kernels, flags
// or DMA descriptors in user code.

#include <cstdio>
#include <numeric>
#include <vector>

#include "offload/queue.hpp"
#include "sim/random.hpp"
#include "util/reference.hpp"

using namespace epi;

int main() {
  host::System sys;
  offload::Queue q(sys, 8, 8);

  constexpr std::size_t n = 50000;
  auto x = q.alloc(n);
  auto y = q.alloc(n);
  auto prod = q.alloc(n);

  std::vector<float> xs(n), ys(n);
  // Integer-valued data keeps float addition associative, so the device's
  // tree-order sum is comparable exactly.
  sim::Rng rng(41);
  for (auto& v : xs) v = static_cast<float>(rng.next_below(8));
  for (auto& v : ys) v = static_cast<float>(rng.next_below(8));
  q.write(x, xs);
  q.write(y, ys);

  std::printf("offload_dot: dot(x, y) over %zu elements on 64 cores\n\n", n);

  // Element-wise multiply: one FMADD-slot per element.
  const sim::Cycles t_map = q.parallel_for(
      n, 1.0,
      [](std::size_t, std::size_t count, std::span<std::span<float>> c) {
        for (std::size_t i = 0; i < count; ++i) c[2][i] = c[0][i] * c[1][i];
      },
      {&x, &y, &prod});

  sim::Cycles t_reduce = 0;
  const float dev = q.reduce(
      prod, n, 0.0f, [](float a, float b) { return a + b; }, 1.0, &t_reduce);

  const double host =
      std::inner_product(xs.begin(), xs.end(), ys.begin(), 0.0);

  std::printf("map phase:    %8llu cycles (%.2f us, %zu elems over 64 stripes)\n",
              static_cast<unsigned long long>(t_map), sys.seconds(t_map) * 1e6, n);
  std::printf("reduce phase: %8llu cycles (%.2f us, local folds + 6-level mesh tree)\n",
              static_cast<unsigned long long>(t_reduce), sys.seconds(t_reduce) * 1e6);
  std::printf("device dot:   %.1f\nhost dot:     %.1f\n", dev, host);
  const bool ok = dev == static_cast<float>(host);
  std::printf("verification: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
