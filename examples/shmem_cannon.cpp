// epi-shmem walkthrough: Cannon's blocked matrix multiply on a 4x4
// workgroup, written against the OpenSHMEM-style PGAS runtime.
//
// The PGAS model (Ross & Richie, arXiv:1604.04205): every PE owns an
// identically laid out symmetric heap in its 32 KB scratchpad, so one
// host-side allocation names a buffer on *all* sixteen cores at once.
// Cannon's algorithm then becomes the canonical one-sided program:
//   1. the host pre-skews A and B into the heap (fill_cannon_inputs),
//   2. each step every PE multiplies its local blocks, then rotates
//      A west and B north with put_with_signal -- payload DMA first,
//      4-byte flag strictly after -- and acquires its neighbours' blocks
//      with wait_signal_ge,
//   3. a dissemination barrier_all separates the steps.
// No PE ever issues a receive: the writes land directly in the peers'
// scratchpads through the flat coreid<<20 address map.
//
// The host validates the distributed product against a plain triple loop
// (inputs are small integers, so float accumulation is exact in any order)
// and prints the shmem.* counters the run produced.

#include <cstdio>
#include <memory>

#include "host/system.hpp"
#include "shmem/shmem.hpp"
#include "shmem/workloads.hpp"

using namespace epi;

int main() {
  host::System sys;  // an 8x8 Epiphany-IV by default
  auto wg = sys.open(0, 0, 4, 4);

  // One Group = one PGAS world: symmetric heap plus the shmem.* counters.
  // Kernels hold it by shared_ptr because the serving runtime moves
  // workgroups after load(); the example keeps the same discipline.
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());

  // 16x16 blocks on a 4x4 grid: a 64x64 distributed product, two passes
  // (iters accumulate, so C holds iters * A*B).
  const unsigned block = 16, iters = 2;
  const auto plan = shmem::plan_cannon(group->heap(), wg.info(), block, iters);
  const unsigned n = plan.p * plan.block;

  const std::uint32_t seed = 7;
  shmem::fill_cannon_inputs(sys.machine(), wg.info(), plan, seed);

  wg.load([group, plan](device::CoreCtx& ctx) -> sim::Op<void> {
    return shmem::cannon_kernel(ctx, group, plan);
  });
  wg.run();

  const std::string err =
      shmem::verify_cannon_output(sys.machine(), wg.info(), plan, seed);
  const auto& c = group->counters();
  std::printf("cannon %ux%u on %ux%u PEs (block %u, %u iters)\n", n, n, plan.p,
              plan.p, plan.block, plan.iters);
  std::printf("  cycles        : %llu\n",
              static_cast<unsigned long long>(sys.machine().engine().now()));
  std::printf("  shmem.puts    : %.0f\n", c.value("shmem.puts"));
  std::printf("  shmem.bytes   : %.0f\n", c.value("shmem.bytes"));
  std::printf("  barrier waits : %.0f\n", c.value("shmem.barrier_waits"));
  if (!err.empty()) {
    std::printf("FAILED: %s\n", err.c_str());
    return 1;
  }
  std::printf("verified against the host reference: OK\n");
  return 0;
}
