// Streaming a grid that cannot fit on the chip: the practical face of the
// temporal-blocking pipeline (paper section IX future work). A 960x960
// float grid (3.5 MB -- bigger than all 64 scratchpads combined) diffuses
// for 18 iterations while resident in shared DRAM, streamed through the
// 8x8 workgroup in overlapped supertiles with 9 updates per residency
// (depth constrained so the supertile interior divides across the 8x8 group).
// The result is verified bit-exactly against the host reference.

#include <cstdio>

#include "core/stencil_pipeline.hpp"

using namespace epi;

int main() {
  constexpr unsigned kN = 960;
  core::StencilPipelineConfig cfg;
  cfg.group = 8;
  cfg.depth = 9;
  cfg.iters = 18;
  cfg.tile_interior = 240 + 2 * cfg.depth - 2;  // S=240 -> 4x4 supertiles
  cfg.weights = {0.125f, 0.5f, 0.125f, 0.125f, 0.125f};

  std::printf("stream_large_grid: %ux%u floats (%.1f MB) through 2 MB of scratchpad\n",
              kN, kN, kN * kN * 4 / 1e6);
  std::printf("  supertile window %u^2, output %u^2, depth T=%u, %u iterations\n\n",
              cfg.tile_interior + 2, cfg.out_edge(), cfg.depth, cfg.iters);

  host::System sys;
  const auto r = core::run_stencil_pipeline(sys, kN, cfg, 2024, true);

  std::printf("device time:        %.2f ms\n", sys.seconds(r.cycles) * 1e3);
  std::printf("useful throughput:  %.2f GFLOPS (of 76.8 peak)\n", r.useful_gflops);
  std::printf("redundant compute:  %.1f%% extra on supertile overlap\n",
              100.0 * (r.redundancy - 1.0));
  std::printf("DRAM traffic:       %.1f MB read, %.1f MB written over the 150 MB/s eLink\n",
              r.dram_read_bytes / 1e6, r.dram_write_bytes / 1e6);
  std::printf("verification:       %s (bit-exact vs host reference)\n",
              r.verified ? "PASS" : "FAIL");
  return r.verified ? 0 : 1;
}
