// Matrix multiplication at all three of the paper's levels (section VII):
//   * a single-core 32x32 product,
//   * an on-chip 256x256 product (8x8 workgroup, Cannon rotation, the
//     split-buffer scheme for the 32x32 blocks),
//   * an off-chip 512x512 product paged from shared DRAM over the eLink.
// Every result is verified against a host reference.

#include <cstdio>

#include "core/matmul.hpp"

using namespace epi;

int main() {
  std::printf("matmul_app: the paper's three matmul levels, all verified\n\n");
  bool all_ok = true;

  {
    host::System sys;
    const auto r = core::run_matmul_single(sys, 32, 32, 32, core::Codegen::TunedAsm, 7, true);
    std::printf("level 1  single-core 32x32:   %6.2f GFLOPS (%4.1f%% of core peak)  %s\n",
                r.gflops, 100.0 * r.gflops / 1.2, r.verified ? "verified" : "MISMATCH");
    all_ok &= r.verified;
  }
  {
    host::System sys;
    const auto r = core::run_matmul_onchip(sys, 8, 32, core::Codegen::TunedAsm, 7, true);
    std::printf("level 2  on-chip 256x256:     %6.2f GFLOPS (%4.1f%% of chip peak)  %s\n",
                r.gflops, 100.0 * r.gflops / 76.8,
                r.verified ? "verified" : "MISMATCH");
    std::printf("         (compute fraction %.1f%%; operand rotation via the paper's\n"
                "          2 KB split-buffer scheme on both DMA channels)\n",
                100.0 * r.compute_fraction);
    all_ok &= r.verified;
  }
  {
    host::System sys;
    const auto r = core::run_matmul_offchip(sys, 512, 8, 32, core::Codegen::TunedAsm, 7, true);
    std::printf("level 3  off-chip 512x512:    %6.2f GFLOPS (%4.1f%% of chip peak)  %s\n",
                r.gflops, 100.0 * r.gflops / 76.8,
                r.verified ? "verified" : "MISMATCH");
    std::printf("         (%.1f%% of time in shared-memory paging at 150 MB/s, %.1f%% in\n"
                "          block products -- the eLink wall of Table VI)\n",
                100.0 * r.transfer_fraction, 100.0 * r.compute_fraction);
    all_ok &= r.verified;
  }

  std::printf("\n%s\n", all_ok ? "all levels verified against the host reference"
                               : "VERIFICATION FAILED");
  return all_ok ? 0 : 1;
}
