// Heat diffusion: the paper's motivating application (section VI) as a
// user would actually run it. A 160x160 plate with a hot west edge and
// cold east edge diffuses under the 5-point star stencil on the full 8x8
// workgroup, domain-decomposed 20x20 per core, halos exchanged by chained
// DMA every iteration. Prints an ASCII rendering of the temperature field
// and the achieved device GFLOPS.

#include <cstdio>
#include <vector>

#include "core/stencil.hpp"

using namespace epi;

namespace {

void render(std::span<const float> grid, unsigned rows, unsigned cols) {
  static const char shades[] = " .:-=+*#%@";
  for (unsigned i = 0; i < rows; i += rows / 20) {
    std::putchar(' ');
    for (unsigned j = 0; j < cols; j += cols / 40) {
      const float v = grid[i * cols + j];
      const int idx = std::min(9, std::max(0, static_cast<int>(v * 10.0f)));
      std::putchar(shades[idx]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  constexpr unsigned kGroup = 8;
  constexpr unsigned kPerCore = 20;
  constexpr unsigned kIters = 200;
  constexpr unsigned n = kGroup * kPerCore;  // 160x160 interior

  // Halo-inclusive plate: hot (1.0) west wall, cold (0.0) elsewhere.
  std::vector<float> plate((n + 2) * (n + 2), 0.0f);
  for (unsigned i = 0; i < n + 2; ++i) plate[i * (n + 2)] = 1.0f;

  core::StencilConfig cfg;
  cfg.rows = kPerCore;
  cfg.cols = kPerCore;
  cfg.iters = kIters;
  // Diffusion weights: an average over the cross (rho=0.125 per neighbour).
  cfg.weights = {0.125f, 0.5f, 0.125f, 0.125f, 0.125f};

  host::System sys;
  std::printf("heat_diffusion: %ux%u plate on an 8x8 workgroup (%ux%u per core), "
              "%u iterations\n\n",
              n, n, kPerCore, kPerCore, kIters);
  const auto result = core::run_stencil(sys, kGroup, kGroup, cfg, plate);

  render(plate, n + 2, n + 2);

  double mean = 0.0;
  float hottest_interior = 0.0f;
  for (unsigned i = 1; i <= n; ++i) {
    for (unsigned j = 1; j <= n; ++j) {
      const float v = plate[i * (n + 2) + j];
      mean += v;
      hottest_interior = std::max(hottest_interior, v);
    }
  }
  mean /= n * n;

  std::printf("\nmean interior temperature: %.4f, hottest interior cell: %.4f\n", mean,
              hottest_interior);
  std::printf("device time: %.3f ms, %.1f GFLOPS (%.1f%% of the 76.8 GFLOPS chip peak)\n",
              sys.seconds(result.cycles) * 1e3, result.gflops,
              100.0 * result.gflops / 76.8);
  std::printf("compute fraction: %.1f%% (rest is halo exchange + synchronisation)\n",
              100.0 * result.compute_fraction);
  return hottest_interior > 0.0f ? 0 : 1;
}
