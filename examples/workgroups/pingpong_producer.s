; Ping-pong, producer side (core 0,0 of a 1x2 workgroup).
;
; The paper's Listing-1 pattern done right: deposit the payload in the
; neighbour's scratchpad, *then* raise its flag, and wait for the ack
; before retiring. Verified race- and deadlock-free by
;   epi_lint --workgroup=1x2 pingpong_producer.s pingpong_consumer.s

mov r0, #0x80904000   ; payload word in core (0,1)
mov r1, #42
str r1, [r0, #0]

mov r2, #0x80905000   ; ready flag in core (0,1) -- written after the data
mov r3, #1
str r3, [r2, #0]

mov r4, #0x5100       ; our own ack word; the consumer releases it
wait r4, #1
halt
