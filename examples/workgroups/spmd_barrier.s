; SPMD phase program: every core runs this same source (replicate it with
; epi_lint --workgroup=2x2 spmd_barrier.s).
;
; Each core composes its own global window from COREID -- the
; placement-independent idiom from the paper's address-map discussion --
; writes a phase marker into its own scratchpad through that window, and
; joins the workgroup barrier so the phases retire together.

coreid r0
lsl r0, r0, #20       ; core_id << 20 = base of our 1 MB window
mov r1, #0x2000
add r0, r0, r1        ; &marker, spelled as a global address
mov r2, #1
str r2, [r0, #0]
bar
halt
