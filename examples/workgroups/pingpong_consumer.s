; Ping-pong, consumer side (core 0,1 of a 1x2 workgroup).
;
; Spin on the ready flag before touching the deposited word (the fix for
; the paper's Listing-2 read-after-remote-write race), then ack back into
; the producer's scratchpad so it may retire.

mov r2, #0x5000       ; ready flag, raised by the producer
wait r2, #1

mov r0, #0x4000       ; payload the producer deposited
ldr r1, [r0, #0]

mov r4, #0x80805100   ; ack word in core (0,0)
mov r5, #1
str r5, [r4, #0]
halt
