#include "lint/wg_fixtures.hpp"

namespace epi::lint::fixtures {

// Global-window constants for the default E64G401 map anchored at (0,0):
// core (0,0) = 0x80800000, core (0,1) = 0x80900000, core (4,0) = 0x90800000.

WorkgroupSpec to_spec(const WgFixture& fx) {
  WorkgroupSpec spec = assemble_workgroup(fx.rows, fx.cols, fx.programs);
  spec.host_preloaded = fx.host_preloaded;
  return spec;
}

WgFixture listing12(bool racy) {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  fx.programs.emplace_back("producer",
                           "; Listing-1 shape: push data into the neighbour,\n"
                           "; then raise its flag.\n"
                           "mov r0, #0x80904000   ; core (0,1) data word\n"
                           "mov r1, #42\n"
                           "str r1, [r0, #0]\n"
                           "mov r2, #0x80905000   ; core (0,1) flag word\n"
                           "mov r3, #1\n"
                           "str r3, [r2, #0]\n"
                           "halt\n");
  if (racy) {
    fx.programs.emplace_back("consumer",
                             "; Listing-2 defect: read the deposited word\n"
                             "; without waiting on the flag.\n"
                             "mov r0, #0x4000\n"
                             "ldr r1, [r0, #0]\n"
                             "halt\n");
  } else {
    fx.programs.emplace_back("consumer",
                             "; Idiomatic fix: spin on the flag first.\n"
                             "mov r2, #0x5000\n"
                             "wait r2, #1\n"
                             "mov r0, #0x4000\n"
                             "ldr r1, [r0, #0]\n"
                             "halt\n");
  }
  return fx;
}

WgFixture barrier_mismatch() {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  fx.programs.emplace_back("two-bars",
                           "bar\n"
                           "bar   ; nobody joins the second rendezvous\n"
                           "halt\n");
  fx.programs.emplace_back("one-bar",
                           "bar\n"
                           "halt\n");
  return fx;
}

WgFixture circular_wait() {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  fx.programs.emplace_back("left",
                           "mov r0, #0x6000\n"
                           "wait r0, #1          ; blocks until the peer releases\n"
                           "mov r1, #0x80906000  ; ...but the release is below\n"
                           "mov r2, #1\n"
                           "str r2, [r1, #0]\n"
                           "halt\n");
  fx.programs.emplace_back("right",
                           "mov r0, #0x6000\n"
                           "wait r0, #1\n"
                           "mov r1, #0x80806000\n"
                           "mov r2, #1\n"
                           "str r2, [r1, #0]\n"
                           "halt\n");
  return fx;
}

WgFixture stray_remote_write() {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  fx.programs.emplace_back("stray",
                           "mov r0, #0x90800000  ; core (4,0): mapped, not ours\n"
                           "mov r1, #7\n"
                           "str r1, [r0, #0]\n"
                           "halt\n");
  fx.programs.emplace_back("idle", "halt\n");
  return fx;
}

WgFixture bad_dma() {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 1;
  // Destination: 8192 words of 4 bytes from 0x7000 -> walks to 0xF000,
  // 28 KB past the scratchpad end.
  fx.programs.emplace_back("overflow-dma",
                           ".dma 0x0000 0x7000 4 8192 4 4 1 0 0\n"
                           "halt\n");
  return fx;
}

WgFixture wait_without_writer() {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  fx.programs.emplace_back("orphan-wait",
                           "mov r0, #0x6000\n"
                           "wait r0, #1   ; nobody ever stores 1 here\n"
                           "halt\n");
  fx.programs.emplace_back("idle", "halt\n");
  return fx;
}

WgFixture barrier_exchange() {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  fx.programs.emplace_back("left",
                           "mov r0, #0x80904000  ; deposit into the peer\n"
                           "mov r1, #100\n"
                           "str r1, [r0, #0]\n"
                           "bar\n"
                           "mov r2, #0x4000      ; read what the peer deposited\n"
                           "ldr r3, [r2, #0]\n"
                           "halt\n");
  fx.programs.emplace_back("right",
                           "mov r0, #0x80804000\n"
                           "mov r1, #101\n"
                           "str r1, [r0, #0]\n"
                           "bar\n"
                           "mov r2, #0x4000\n"
                           "ldr r3, [r2, #0]\n"
                           "halt\n");
  return fx;
}

WgFixture mutex_counter() {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  // SPMD: one program on both cores; the lock and counter live in core
  // (0,0)'s scratchpad and are addressed globally so both cores agree.
  fx.programs.emplace_back("mutex-counter",
                           "mov r0, #0x80805000     ; mutex word, core (0,0)\n"
                           "lock:\n"
                           "testset r1, [r0, #0]\n"
                           "bne lock                ; Z set means acquired\n"
                           "mov r2, #0x80804000     ; guarded counter\n"
                           "ldr r3, [r2, #0]\n"
                           "add r3, r3, #1\n"
                           "str r3, [r2, #0]\n"
                           "mov r4, #0\n"
                           "str r4, [r0, #0]        ; release\n"
                           "halt\n");
  // The host zeroes the counter (and the mutex word) before launch.
  fx.host_preloaded.emplace_back(0x80804000u, 0x80804008u);
  return fx;
}

WgFixture shmem_put_signal(bool racy) {
  WgFixture fx;
  fx.rows = 1;
  fx.cols = 2;
  // put_with_signal: stream 16 words from my 0x4000 into the consumer's
  // symmetric 0x4000, then raise the signal word at its 0x5000. The DMA is
  // declared before the flag store, so the verifier orders payload before
  // signal exactly as the chained-descriptor runtime does.
  fx.programs.emplace_back("shmem-producer",
                           ".dma 0x4000 0x80904000 4 16 4 4 1 0 0\n"
                           "mov r0, #0x80905000   ; signal word on core (0,1)\n"
                           "mov r1, #1\n"
                           "str r1, [r0, #0]\n"
                           "halt\n");
  if (racy) {
    fx.programs.emplace_back("shmem-consumer",
                             "; get-before-signal: read the landing zone\n"
                             "; without acquiring on the signal word.\n"
                             "mov r0, #0x4000\n"
                             "ldr r1, [r0, #0]\n"
                             "halt\n");
  } else {
    fx.programs.emplace_back("shmem-consumer",
                             "; wait_signal_ge, then read the payload.\n"
                             "mov r0, #0x5000\n"
                             "wait r0, #1\n"
                             "mov r1, #0x4000\n"
                             "ldr r2, [r1, #0]\n"
                             "halt\n");
  }
  // The host fills the producer's source block before launch.
  fx.host_preloaded.emplace_back(0x80804000u, 0x80804040u);
  return fx;
}

}  // namespace epi::lint::fixtures
