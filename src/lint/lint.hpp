#pragma once
// epi-lint: static analysis over assembled eCore programs.
//
// The paper's programming hazards are silent: hand-scheduled assembly that
// reads a register nothing wrote, doubleword ops on odd register pairs,
// postmodify cursors that march out of the 32 KB scratchpad, stores that
// land in the kernel's own code bank. lint_program catches these
// mechanically, before a program ever runs:
//
//   pass              severity  what it reports
//   ----------------  --------  ---------------------------------------------
//   termination       error     fall-off-the-end without halt, trivially
//                               infinite loops (structural, and counters that
//                               step past zero), branch targets out of range
//   unreachable       warning   blocks no path from entry reaches
//   use-before-def    error     GPR read before any definition reaches it
//   flag-undef        warning   conditional branch before any add/sub set Z
//   dead-store        warning   register results (mov/FPU) never consumed;
//                               loads are exempt (prefetch idiom)
//   reg-pair          error     ldrd/strd on an odd register pair
//   reg-range         error     operand register number >= 64
//   mem-extent        error     access (constant or postmodify-strided)
//                               outside the declared scratchpad extent
//   code-write        error     store into the program's own code region
//   bank-straddle     warning   constant-address access crossing an 8 KB
//                               bank boundary (paper IV-B placement advice)
//   layout-*          see layout.hpp (when a layout is declared)
//
// The memory checks run a lightweight constant propagation over the CFG,
// plus a per-iteration stride analysis of single-block counted loops
// (`sub rC, rC, #k; bne`), which is exactly the shape of the paper's
// kernels -- so postmodify walks are bounded without symbolic execution.

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/address_map.hpp"
#include "isa/program.hpp"
#include "lint/finding.hpp"
#include "lint/layout.hpp"

namespace epi::lint {

struct LintOptions {
  /// Declared data extent for the program's loads/stores (byte addresses
  /// [0, extent) are legal). Defaults to the full 32 KB scratchpad.
  std::uint32_t extent = arch::AddressMap::kLocalMemBytes;
  /// Where the program's own instructions live, for store-into-code checks.
  std::optional<Region> code_region;
  /// Declared scratchpad placement. When present, layout findings are
  /// appended and its Code regions join code_region for store checks.
  std::optional<ScratchpadLayout> layout;
};

/// Run every static pass over `prog`. Findings are ordered by instruction
/// index (layout findings last) and carry source lines when the program
/// was built by epi::isa::assemble.
[[nodiscard]] std::vector<Finding> lint_program(const isa::Program& prog,
                                                const LintOptions& opts = {});

}  // namespace epi::lint
