#include "lint/sanitizer.hpp"

#include <cstdio>

namespace epi::lint {

namespace {

constexpr int kUninitRead = 0;
constexpr int kRace = 1;

constexpr const char* pass_name(int id) noexcept {
  return id == kUninitRead ? "uninit-read" : "race";
}

std::string hex(arch::Addr a) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08X", a);
  return buf;
}

arch::CoreCoord unkey(std::uint32_t k) noexcept {
  return arch::CoreCoord{k >> 16, k & 0xFFFFu};
}

}  // namespace

void MemSanitizer::on_write(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
                            sim::Cycles now) {
  for (arch::Addr b = a; b < a + n; ++b) {
    Word& w = word(b);
    w.init_mask |= static_cast<std::uint8_t>(1u << (b & 3u));
    w.written = true;
    w.writer = key(issuer);
    w.write_time = now;
  }
}

void MemSanitizer::on_read(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
                           sim::Cycles now) {
  (void)now;
  const std::uint32_t me = key(issuer);
  const auto sync_it = last_sync_.find(me);
  const sim::Cycles last_sync = sync_it == last_sync_.end() ? 0 : sync_it->second;
  for (arch::Addr b = a; b < a + n; ++b) {
    Word& w = word(b);
    if (!(w.init_mask & (1u << (b & 3u)))) {
      report(kUninitRead, b, me,
             "core " + arch::to_string(issuer) + " reads uninitialised byte at " +
                 hex(b));
      // Damp repeats: treat as initialised after the first report.
      w.init_mask |= static_cast<std::uint8_t>(1u << (b & 3u));
      continue;
    }
    // Race: another core wrote this word after our last acquire. Writes at
    // t=0 are preloads (host initialisation) and never race.
    if (w.written && w.writer != me && w.write_time > 0 &&
        last_sync < w.write_time) {
      const arch::Addr wa = b & ~arch::Addr{3};
      report(kRace, wa, me,
             "core " + arch::to_string(issuer) + " reads " + hex(wa) +
                 " written by core " + arch::to_string(unkey(w.writer)) +
                 " without an intervening flag wait (unsynchronised "
                 "read-after-remote-write)");
    }
  }
}

void MemSanitizer::on_sync(arch::CoreCoord issuer, sim::Cycles now) {
  sim::Cycles& t = last_sync_[key(issuer)];
  if (now > t) t = now;
}

void MemSanitizer::mark_initialized(arch::Addr a, std::size_t n) {
  for (arch::Addr b = a; b < a + n; ++b) {
    word(b).init_mask |= static_cast<std::uint8_t>(1u << (b & 3u));
  }
}

void MemSanitizer::report(int pass, arch::Addr a, std::uint32_t reader,
                          std::string msg) {
  // One finding per (pass, word, reader): spin-heavy programs would
  // otherwise flood the report with the same defect.
  if (!reported_.emplace(pass, a & ~arch::Addr{3}, reader).second) return;
  Finding f;
  f.pass = pass_name(pass);
  f.severity = Severity::Error;
  f.message = std::move(msg);
  findings_.push_back(std::move(f));
}

std::size_t MemSanitizer::count(const char* pass) const {
  std::size_t n = 0;
  for (const auto& f : findings_) {
    if (f.pass == pass) ++n;
  }
  return n;
}

void MemSanitizer::clear() {
  shadow_.clear();
  last_sync_.clear();
  reported_.clear();
  findings_.clear();
}

}  // namespace epi::lint
