#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"

namespace epi::lint {

namespace {

using isa::Instruction;
using isa::Opcode;

using dataflow::AV;
using dataflow::Bits;
using dataflow::State;
using dataflow::access_size;
using dataflow::classify_addr;
using dataflow::for_each_def;
using dataflow::for_each_use;
using dataflow::hex;
using dataflow::kRegs;
using dataflow::kZ;
using dataflow::merge_state;
using dataflow::xfer_const;

std::string reg(unsigned r) { return dataflow::reg_name(r); }

class Linter {
public:
  Linter(const isa::Program& prog, const LintOptions& opts)
      : prog_(prog), opts_(opts), cfg_(Cfg::build(prog)) {
    if (opts_.code_region) code_regions_.push_back(*opts_.code_region);
    if (opts_.layout) {
      for (const auto& r : opts_.layout->regions) {
        if (r.kind == RegionKind::Code) code_regions_.push_back(r);
      }
    }
  }

  std::vector<Finding> run() {
    if (prog_.size() == 0) {
      report("termination", Severity::Error, Finding::kNoInstr,
             "empty program: execution falls off the end immediately");
    } else {
      check_operands();
      check_reachability();
      if (registers_in_range_) {
        // The dataflow passes index per-register state; garbage register
        // numbers were already reported and would only poison them.
        check_def_use();
        check_dead_stores();
        check_memory_shape();
      }
    }
    if (opts_.layout) {
      auto lf = check_layout(*opts_.layout);
      findings_.insert(findings_.end(), lf.begin(), lf.end());
    }
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) { return a.instr < b.instr; });
    return std::move(findings_);
  }

private:
  void report(const char* pass, Severity sev, std::size_t instr, std::string msg) {
    Finding f;
    f.pass = pass;
    f.severity = sev;
    f.instr = instr;
    f.line = instr == Finding::kNoInstr ? 0 : prog_.line_of(instr);
    f.message = std::move(msg);
    findings_.push_back(std::move(f));
  }

  // ---- operand checks: register ranges and doubleword pairs --------------
  void check_operands() {
    for (std::size_t i = 0; i < prog_.size(); ++i) {
      const Instruction& ins = prog_.code[i];
      bool oob = false;
      const auto chk = [&](unsigned r) { if (r >= kRegs) oob = true; };
      // Raw fields: hand-built programs can carry any uint8. Checked per
      // opcode (not via the use/def walkers, which also yield the Z flag's
      // pseudo-index).
      switch (ins.op) {
        case Opcode::Fmadd:
        case Opcode::Fmul:
        case Opcode::Fadd:
        case Opcode::Fsub:
          chk(ins.rd); chk(ins.rn); chk(ins.rm);
          break;
        case Opcode::MovImm:
          chk(ins.rd);
          break;
        case Opcode::MovReg:
          chk(ins.rd); chk(ins.rn);
          break;
        case Opcode::Add:
        case Opcode::Sub:
          chk(ins.rd); chk(ins.rn);
          if (!ins.has_imm) chk(ins.rm);
          break;
        case Opcode::Ldr:
        case Opcode::Ldrd:
        case Opcode::Str:
        case Opcode::Strd:
        case Opcode::Testset:
          chk(ins.rd); chk(ins.rn);
          break;
        case Opcode::CoreId:
          chk(ins.rd);
          break;
        case Opcode::Lsl:
          chk(ins.rd); chk(ins.rn);
          break;
        case Opcode::Wait:
          chk(ins.rn);
          break;
        case Opcode::B:
        case Opcode::Bne:
        case Opcode::Beq:
        case Opcode::Bar:
        case Opcode::Halt:
          break;
      }
      if (oob) {
        registers_in_range_ = false;
        report("reg-range", Severity::Error, i,
               "register operand outside the 64-entry register file");
      }
      if (ins.op == Opcode::Ldrd || ins.op == Opcode::Strd) {
        const char* mn = ins.op == Opcode::Ldrd ? "ldrd" : "strd";
        if (ins.rd % 2 != 0) {
          report("reg-pair", Severity::Error, i,
                 std::string(mn) + " needs an even-aligned register pair, got " +
                     reg(ins.rd) + ":" + reg(ins.rd + 1u));
        }
      }
    }
  }

  // ---- reachability and termination ---------------------------------------
  void check_reachability() {
    for (std::size_t bi = 0; bi < cfg_.blocks.size(); ++bi) {
      const BasicBlock& b = cfg_.blocks[bi];
      if (!cfg_.reachable[bi]) {
        report("unreachable", Severity::Warning, b.first,
               "unreachable code (no path from entry)");
        continue;
      }
      if (b.bad_target) {
        report("termination", Severity::Error, b.last - 1,
               "branch target outside the program");
      }
      if (b.falls_off_end) {
        report("termination", Severity::Error, b.last - 1,
               "control reaches the end of the program without halt");
      }
    }
    const auto can = cfg_.can_terminate();
    std::size_t first_stuck = Finding::kNoInstr;
    for (std::size_t bi = 0; bi < cfg_.blocks.size(); ++bi) {
      if (cfg_.reachable[bi] && !can[bi]) {
        first_stuck = std::min(first_stuck, cfg_.blocks[bi].first);
      }
    }
    if (first_stuck != Finding::kNoInstr) {
      report("termination", Severity::Error, first_stuck,
             "trivially infinite loop: no path from here reaches halt");
    }
  }

  // ---- use-before-def: forward maybe-undefined analysis -------------------
  void check_def_use() {
    const std::size_t nb = cfg_.blocks.size();
    std::vector<Bits> in(nb);
    in[0].set();  // everything (GPRs and Z) is undefined at entry
    const auto transfer = [&](std::size_t bi) {
      Bits s = in[bi];
      const BasicBlock& b = cfg_.blocks[bi];
      for (std::size_t i = b.first; i < b.last; ++i) {
        for_each_def(prog_.code[i], [&](unsigned r) { s.reset(r); });
      }
      return s;
    };
    std::vector<std::size_t> work{0};
    while (!work.empty()) {
      const std::size_t bi = work.back();
      work.pop_back();
      const Bits out = transfer(bi);
      for (std::size_t s : cfg_.blocks[bi].succ) {
        const Bits ni = in[s] | out;
        if (ni != in[s]) {
          in[s] = ni;
          work.push_back(s);
        }
      }
    }
    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (!cfg_.reachable[bi]) continue;
      Bits s = in[bi];
      const BasicBlock& b = cfg_.blocks[bi];
      for (std::size_t i = b.first; i < b.last; ++i) {
        for_each_use(prog_.code[i], [&](unsigned r) {
          if (r < kRegs + 1 && s.test(r)) {
            if (r == kZ) {
              report("flag-undef", Severity::Warning, i,
                     "conditional branch before any add/sub set the Z flag");
            } else {
              report("use-before-def", Severity::Error, i,
                     "use of " + reg(r) + " before any definition reaches it");
            }
            s.reset(r);  // one finding per register per program point chain
          }
        });
        for_each_def(prog_.code[i], [&](unsigned r) { s.reset(r); });
      }
    }
  }

  // ---- dead stores to registers: backward may-liveness --------------------
  static bool reportable_dead_def(Opcode op) {
    // Loads are exempt: dead trailing loads are the software-pipelining
    // prefetch idiom of the paper's kernels. Add/sub are exempt: they also
    // produce the Z flag.
    switch (op) {
      case Opcode::MovImm:
      case Opcode::MovReg:
      case Opcode::Fmadd:
      case Opcode::Fmul:
      case Opcode::Fadd:
      case Opcode::Fsub:
        return true;
      default:
        return false;
    }
  }

  void check_dead_stores() {
    const std::size_t nb = cfg_.blocks.size();
    std::vector<Bits> live_in(nb), live_out(nb);
    const auto transfer = [&](std::size_t bi) {
      Bits s = live_out[bi];
      const BasicBlock& b = cfg_.blocks[bi];
      for (std::size_t i = b.last; i-- > b.first;) {
        for_each_def(prog_.code[i], [&](unsigned r) { s.reset(r); });
        for_each_use(prog_.code[i], [&](unsigned r) { s.set(r); });
      }
      return s;
    };
    std::vector<std::size_t> work;
    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (cfg_.reachable[bi]) work.push_back(bi);
    }
    while (!work.empty()) {
      const std::size_t bi = work.back();
      work.pop_back();
      const Bits ni = transfer(bi);
      if (ni != live_in[bi]) {
        live_in[bi] = ni;
        for (std::size_t p : cfg_.blocks[bi].pred) {
          if (!cfg_.reachable[p]) continue;
          const Bits no = live_out[p] | ni;
          if (no != live_out[p]) {
            live_out[p] = no;
            work.push_back(p);
          }
        }
      }
    }
    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (!cfg_.reachable[bi]) continue;
      Bits s = live_out[bi];
      const BasicBlock& b = cfg_.blocks[bi];
      for (std::size_t i = b.last; i-- > b.first;) {
        const Instruction& ins = prog_.code[i];
        if (reportable_dead_def(ins.op) && ins.rd < kRegs && !s.test(ins.rd)) {
          report("dead-store", Severity::Warning, i,
                 "dead store to " + reg(ins.rd) + ": the value is never used");
        }
        for_each_def(ins, [&](unsigned r) { s.reset(r); });
        for_each_use(ins, [&](unsigned r) { s.set(r); });
      }
    }
  }

  // ---- memory shape: constant propagation + counted-loop strides ----------
  void check_memory_shape() {
    const std::size_t nb = cfg_.blocks.size();
    std::vector<State> in(nb), out(nb);
    std::vector<bool> visited(nb, false);
    visited[0] = true;  // entry: all unknown
    const auto transfer = [&](std::size_t bi) {
      State s = in[bi];
      const BasicBlock& b = cfg_.blocks[bi];
      for (std::size_t i = b.first; i < b.last; ++i) xfer_const(prog_.code[i], s);
      return s;
    };
    std::vector<std::size_t> work{0};
    while (!work.empty()) {
      const std::size_t bi = work.back();
      work.pop_back();
      out[bi] = transfer(bi);
      for (std::size_t s : cfg_.blocks[bi].succ) {
        if (!visited[s]) {
          visited[s] = true;
          in[s] = out[bi];
          work.push_back(s);
        } else {
          const State m = merge_state(in[s], out[bi]);
          if (!(m == in[s])) {
            in[s] = m;
            work.push_back(s);
          }
        }
      }
    }

    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (!cfg_.reachable[bi]) continue;
      State st = in[bi];
      const BasicBlock& b = cfg_.blocks[bi];
      for (std::size_t i = b.first; i < b.last; ++i) {
        const Instruction& ins = prog_.code[i];
        if (isa::is_load(ins.op) || isa::is_store(ins.op)) {
          const AV base = st[ins.rn];
          if (base.known) {
            const std::int64_t addr = ins.postmodify ? base.v : base.v + ins.imm;
            check_access(i, addr, access_size(ins), isa::is_store(ins.op));
          }
        } else if (ins.op == Opcode::Wait || ins.op == Opcode::Testset) {
          const AV base = st[ins.rn];
          if (base.known) {
            const std::int64_t addr =
                ins.op == Opcode::Testset ? base.v + ins.imm : base.v;
            // TESTSET may write the lock word; WAIT only reads.
            check_access(i, addr, 4, ins.op == Opcode::Testset);
          }
        }
        xfer_const(ins, st);
      }
      check_counted_self_loop(bi, in, out);
    }
  }

  void check_access(std::size_t i, std::int64_t addr, std::int64_t size, bool store) {
    const std::int64_t extent = opts_.extent;
    const auto cls = classify_addr(addr);
    if (cls.kind == dataflow::AddrKind::Negative) {
      report("mem-extent", Severity::Error, i, "access at negative address " + hex(addr));
      return;
    }
    if (cls.kind == dataflow::AddrKind::Global) {
      // A flat global (coreid<<20) address: outside this core's local view.
      // The single-core passes cannot judge it; the workgroup verifier
      // (lint/workgroup.hpp) resolves it against the group's address map.
      return;
    }
    if (addr + size > extent) {
      report("mem-extent", Severity::Error, i,
             "access at " + hex(addr) + " (+" + std::to_string(size) +
                 ") is outside the declared scratchpad extent " + hex(extent));
      return;
    }
    const auto bank = [](std::int64_t a) { return a / arch::AddressMap::kBankBytes; };
    if (bank(addr) != bank(addr + size - 1)) {
      report("bank-straddle", Severity::Warning, i,
             "access at " + hex(addr) + " (+" + std::to_string(size) +
                 ") straddles an 8 KB bank boundary (keep code/data/DMA banks separate)");
    }
    if (store) check_code_write(i, addr, addr + size, "store at " + hex(addr));
  }

  void check_code_write(std::size_t i, std::int64_t lo, std::int64_t hi,
                        const std::string& what) {
    for (const Region& r : code_regions_) {
      if (lo < static_cast<std::int64_t>(r.end()) &&
          static_cast<std::int64_t>(r.offset) < hi) {
        report("code-write", Severity::Error, i,
               what + " lands in the program's own code region '" + r.name + "' [" +
                   hex(r.offset) + ", " + hex(r.end()) + ")");
        return;
      }
    }
  }

  /// Bound postmodify walks of single-block counted loops:
  ///   loop: ... sub rC, rC, #k ... bne loop
  /// with rC constant on loop entry. This is the only loop shape the
  /// paper's kernels use, so the common case is fully checked.
  void check_counted_self_loop(std::size_t bi, const std::vector<State>& in,
                               const std::vector<State>& out) {
    const BasicBlock& b = cfg_.blocks[bi];
    const Instruction& tail = prog_.code[b.last - 1];
    if (tail.op != Opcode::Bne) return;
    if (tail.imm < 0 || static_cast<std::size_t>(tail.imm) >= prog_.size() ||
        cfg_.block_of[static_cast<std::size_t>(tail.imm)] != bi) {
      return;  // not a self-loop
    }

    // Loop-entry state: merge of every reachable non-back-edge predecessor.
    State pre;
    bool have_pre = false;
    for (std::size_t p : b.pred) {
      if (p == bi || !cfg_.reachable[p]) continue;
      pre = have_pre ? merge_state(pre, out[p]) : out[p];
      have_pre = true;
    }
    (void)in;
    if (!have_pre) return;

    // The counter: the *last* Z-setting instruction, which the bne tests.
    std::size_t cnt_i = Finding::kNoInstr;
    for (std::size_t i = b.first; i < b.last; ++i) {
      const Opcode op = prog_.code[i].op;
      if (op == Opcode::Add || op == Opcode::Sub) cnt_i = i;
    }
    if (cnt_i == Finding::kNoInstr) return;
    const Instruction& cnt = prog_.code[cnt_i];
    if (cnt.op != Opcode::Sub || !cnt.has_imm || cnt.rd != cnt.rn || cnt.imm <= 0) return;
    const unsigned counter = cnt.rd;
    for (std::size_t i = b.first; i < b.last; ++i) {
      if (i == cnt_i) continue;
      bool redefined = false;
      for_each_def(prog_.code[i], [&](unsigned r) { redefined |= r == counter; });
      if (redefined) return;  // counter is not a simple induction variable
    }
    if (!pre[counter].known || pre[counter].v <= 0) return;
    if (pre[counter].v % cnt.imm != 0) {
      report("termination", Severity::Error, cnt_i,
             "loop counter " + reg(counter) + " starts at " +
                 std::to_string(pre[counter].v) + " and steps by " +
                 std::to_string(cnt.imm) + ": it never reaches zero (infinite loop)");
      return;
    }
    const std::int64_t trips = pre[counter].v / cnt.imm;

    // Cursor registers: every in-loop definition is an increment by a
    // constant (postmodify or add/sub #imm on itself).
    struct Cursor {
      bool valid = true;
      std::int64_t delta = 0;  // net change per iteration
    };
    std::array<Cursor, kRegs> cursors;
    const auto step_of = [](const Instruction& ins, unsigned r) -> std::int64_t {
      // Increment this instruction applies to register r, or 0.
      if ((isa::is_load(ins.op) || isa::is_store(ins.op)) && ins.postmodify &&
          ins.rn == r) {
        return ins.imm;
      }
      if ((ins.op == Opcode::Add || ins.op == Opcode::Sub) && ins.has_imm &&
          ins.rd == r && ins.rn == r) {
        return ins.op == Opcode::Add ? ins.imm : -std::int64_t{ins.imm};
      }
      return 0;
    };
    const auto is_increment = [&](const Instruction& ins, unsigned r) {
      return step_of(ins, r) != 0;
    };
    for (std::size_t i = b.first; i < b.last; ++i) {
      const Instruction& ins = prog_.code[i];
      for_each_def(ins, [&](unsigned r) {
        if (r >= kRegs) return;
        if (is_increment(ins, r)) {
          cursors[r].delta += step_of(ins, r);
        } else {
          cursors[r].valid = false;
        }
      });
    }

    // Walk the block once more, bounding every access off a live cursor.
    std::array<std::int64_t, kRegs> cum{};
    for (std::size_t i = b.first; i < b.last; ++i) {
      const Instruction& ins = prog_.code[i];
      if (isa::is_load(ins.op) || isa::is_store(ins.op)) {
        const unsigned bn = ins.rn;
        if (bn < kRegs && bn != counter && cursors[bn].valid &&
            cursors[bn].delta != 0 && pre[bn].known) {
          const std::int64_t d = cursors[bn].delta;
          const std::int64_t rel = cum[bn] + (ins.postmodify ? 0 : ins.imm);
          const std::int64_t a0 = pre[bn].v + rel;
          if (classify_addr(a0).kind == dataflow::AddrKind::Global) {
            // Remote strided walk: out of scope for the single-core extent
            // check; the workgroup verifier bounds it against the target
            // core's scratchpad instead.
            for (unsigned r = 0; r < kRegs; ++r) cum[r] += step_of(prog_.code[i], r);
            continue;
          }
          const std::int64_t alast = a0 + (trips - 1) * d;
          const std::int64_t lo = std::min(a0, alast);
          const std::int64_t hi = std::max(a0, alast) + access_size(ins);
          if (lo < 0) {
            report("mem-extent", Severity::Error, i,
                   "postmodify stride walks to negative address " + hex(lo));
          } else if (hi > static_cast<std::int64_t>(opts_.extent)) {
            report("mem-extent", Severity::Error, i,
                   "postmodify stride walks [" + hex(lo) + ", " + hex(hi) +
                       ") outside the declared scratchpad extent " +
                       hex(opts_.extent));
          } else if (isa::is_store(ins.op) && !code_regions_.empty()) {
            // Exact per-iteration overlap test (trips are small in practice).
            const std::int64_t cap = std::min<std::int64_t>(trips, 1 << 16);
            for (std::int64_t it = 0; it < cap; ++it) {
              const std::int64_t a = a0 + it * d;
              bool flagged = false;
              for (const Region& r : code_regions_) {
                if (a < static_cast<std::int64_t>(r.end()) &&
                    static_cast<std::int64_t>(r.offset) < a + access_size(ins)) {
                  check_code_write(i, a, a + access_size(ins),
                                   "strided store (iteration " + std::to_string(it) +
                                       ") at " + hex(a));
                  flagged = true;
                  break;
                }
              }
              if (flagged) break;
            }
          }
        }
      }
      for (unsigned r = 0; r < kRegs; ++r) cum[r] += step_of(ins, r);
    }
  }

  const isa::Program& prog_;
  LintOptions opts_;
  Cfg cfg_;
  std::vector<Region> code_regions_;
  std::vector<Finding> findings_;
  bool registers_in_range_ = true;
};

}  // namespace

std::vector<Finding> lint_program(const isa::Program& prog, const LintOptions& opts) {
  return Linter(prog, opts).run();
}

}  // namespace epi::lint
