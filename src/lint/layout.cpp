#include "lint/layout.hpp"

#include <cstdio>

namespace epi::lint {

namespace {

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%X", v);
  return buf;
}

std::string describe(const Region& r) {
  return std::string(region_kind_name(r.kind)) + " region '" + r.name + "' [" +
         hex(r.offset) + ", " + hex(r.end()) + ")";
}

}  // namespace

std::vector<Finding> check_layout(const ScratchpadLayout& layout) {
  constexpr std::uint32_t kBudget = arch::AddressMap::kLocalMemBytes;
  constexpr std::uint32_t kBank = arch::AddressMap::kBankBytes;
  std::vector<Finding> out;

  for (const auto& r : layout.regions) {
    if (r.size == 0) {
      out.push_back({"layout-empty", Severity::Warning, Finding::kNoInstr, 0,
                     describe(r) + " is empty"});
      continue;
    }
    // end() is computed in 32-bit; detect wrap as well as plain overflow.
    if (r.end() > kBudget || r.end() < r.offset) {
      out.push_back({"layout-overflow", Severity::Error, Finding::kNoInstr, 0,
                     describe(r) + " exceeds the 32 KB scratchpad budget"});
    }
  }

  for (std::size_t i = 0; i < layout.regions.size(); ++i) {
    for (std::size_t j = i + 1; j < layout.regions.size(); ++j) {
      const Region& a = layout.regions[i];
      const Region& b = layout.regions[j];
      if (a.size == 0 || b.size == 0) continue;
      if (a.overlaps(b)) {
        out.push_back({"layout-overlap", Severity::Error, Finding::kNoInstr, 0,
                       describe(a) + " overlaps " + describe(b)});
      } else if (a.end() <= kBudget && b.end() <= kBudget) {
        // Paper IV-B: keep code apart from data/DMA traffic, bank-wise.
        const bool code_vs_traffic =
            (a.kind == RegionKind::Code) != (b.kind == RegionKind::Code);
        if (code_vs_traffic) {
          const unsigned a_lo = a.offset / kBank, a_hi = (a.end() - 1) / kBank;
          const unsigned b_lo = b.offset / kBank, b_hi = (b.end() - 1) / kBank;
          if (a_lo <= b_hi && b_lo <= a_hi) {
            out.push_back({"layout-bank-sharing", Severity::Note, Finding::kNoInstr, 0,
                           describe(a) + " shares an 8 KB bank with " + describe(b) +
                               "; the paper keeps code and data/DMA banks separate"});
          }
        }
      }
    }
  }
  return out;
}

}  // namespace epi::lint
