#pragma once
// Declared scratchpad placements and their checker (paper section IV-B).
//
// The paper's placement discipline: 32 KB of local memory in four 8 KB
// banks, with code, stack and data/DMA buffers kept in *separate* banks so
// instruction fetch, load/store and DMA traffic do not serialise on one
// bank port. A ScratchpadLayout declares where a kernel puts each region;
// check_layout reports overlaps and 32 KB-budget overflow, and notes when
// code shares a bank with data or DMA buffers.

#include <cstdint>
#include <string>
#include <vector>

#include "arch/address_map.hpp"
#include "lint/finding.hpp"

namespace epi::lint {

enum class RegionKind { Code, Data, Stack, Dma };

[[nodiscard]] constexpr const char* region_kind_name(RegionKind k) noexcept {
  switch (k) {
    case RegionKind::Code: return "code";
    case RegionKind::Data: return "data";
    case RegionKind::Stack: return "stack";
    case RegionKind::Dma: return "dma";
  }
  return "?";
}

struct Region {
  std::string name;
  RegionKind kind = RegionKind::Data;
  std::uint32_t offset = 0;  // byte offset within the 32 KB scratchpad
  std::uint32_t size = 0;

  [[nodiscard]] std::uint32_t end() const noexcept { return offset + size; }
  [[nodiscard]] bool overlaps(const Region& o) const noexcept {
    return offset < o.end() && o.offset < end();
  }
};

struct ScratchpadLayout {
  std::vector<Region> regions;

  ScratchpadLayout& add(std::string name, RegionKind kind, std::uint32_t offset,
                        std::uint32_t size) {
    regions.push_back(Region{std::move(name), kind, offset, size});
    return *this;
  }
};

/// Check a declared placement against the 32 KB / 4-bank budget.
/// Findings carry no instruction index (they are about the layout, not a
/// program point). Passes emitted: "layout-overlap" (error),
/// "layout-overflow" (error), "layout-empty" (warning),
/// "layout-bank-sharing" (note).
[[nodiscard]] std::vector<Finding> check_layout(const ScratchpadLayout& layout);

}  // namespace epi::lint
