#include "lint/workgroup.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>

#include "isa/assembler.hpp"
#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"

namespace epi::lint {

namespace {

using isa::Instruction;
using isa::Opcode;

using dataflow::AV;
using dataflow::State;
using dataflow::access_size;
using dataflow::classify_addr;
using dataflow::for_each_def;
using dataflow::hex;
using dataflow::kRegs;
using dataflow::merge_state;
using dataflow::xfer_const;

/// One memory/synchronisation action of one core, with its target resolved
/// to a flat global address range.
struct Event {
  enum class Kind { Store, Load, Wait, Testset, Barrier };
  Kind kind = Kind::Store;
  std::size_t core = 0;   // linear group index
  std::size_t instr = 0;  // instruction index in that core's program
  std::uint32_t lo = 0, hi = 0;  // global address range [lo, hi)
  bool value_known = false;
  std::uint32_t value = 0;   // stored value (Store) / expected value (Wait)
  std::size_t barrier_seq = 0;  // per-core barrier instance index
  bool preload_satisfied = false;  // Wait covered by a host-preloaded range
  std::vector<std::uint32_t> lockset;  // mutex words held at this event
};

constexpr bool overlaps(const Event& a, const Event& b) {
  return a.lo < b.hi && b.lo < a.hi;
}

/// Block-level constant propagation (same fixpoint as the single-core
/// memory-shape pass), with this core's COREID known.
struct ConstProp {
  std::vector<State> in, out;
};

ConstProp propagate(const isa::Program& prog, const Cfg& cfg, std::int64_t core_id) {
  const std::size_t nb = cfg.blocks.size();
  ConstProp cp;
  cp.in.resize(nb);
  cp.out.resize(nb);
  if (nb == 0) return cp;
  std::vector<bool> visited(nb, false);
  visited[0] = true;
  const auto transfer = [&](std::size_t bi) {
    State s = cp.in[bi];
    const BasicBlock& b = cfg.blocks[bi];
    for (std::size_t i = b.first; i < b.last; ++i) {
      xfer_const(prog.code[i], s, core_id);
    }
    return s;
  };
  std::vector<std::size_t> work{0};
  while (!work.empty()) {
    const std::size_t bi = work.back();
    work.pop_back();
    cp.out[bi] = transfer(bi);
    for (std::size_t s : cfg.blocks[bi].succ) {
      if (!visited[s]) {
        visited[s] = true;
        cp.in[s] = cp.out[bi];
        work.push_back(s);
      } else {
        const State m = merge_state(cp.in[s], cp.out[bi]);
        if (!(m == cp.in[s])) {
          cp.in[s] = m;
          work.push_back(s);
        }
      }
    }
  }
  return cp;
}

/// A counted self-loop (`sub rC, rC, #k ... bne self`), as bounded by the
/// single-core stride pass: trip count plus per-register net deltas.
struct LoopInfo {
  bool counted = false;
  std::int64_t trips = 1;
  std::array<std::int64_t, kRegs> delta{};  // net cursor change per iteration
  std::array<bool, kRegs> cursor_valid{};   // delta is the only kind of def
  State pre;                                // state on loop entry
  bool have_pre = false;
};

std::int64_t step_of(const Instruction& ins, unsigned r) {
  if ((isa::is_load(ins.op) || isa::is_store(ins.op)) && ins.postmodify &&
      ins.rn == r) {
    return ins.imm;
  }
  if ((ins.op == Opcode::Add || ins.op == Opcode::Sub) && ins.has_imm &&
      ins.rd == r && ins.rn == r) {
    return ins.op == Opcode::Add ? ins.imm : -std::int64_t{ins.imm};
  }
  return 0;
}

LoopInfo analyze_self_loop(const isa::Program& prog, const Cfg& cfg,
                           std::size_t bi, const ConstProp& cp) {
  LoopInfo li;
  const BasicBlock& b = cfg.blocks[bi];
  const Instruction& tail = prog.code[b.last - 1];
  if (tail.op != Opcode::Bne) return li;
  if (tail.imm < 0 || static_cast<std::size_t>(tail.imm) >= prog.size() ||
      cfg.block_of[static_cast<std::size_t>(tail.imm)] != bi) {
    return li;
  }
  for (std::size_t p : b.pred) {
    if (p == bi || !cfg.reachable[p]) continue;
    li.pre = li.have_pre ? merge_state(li.pre, cp.out[p]) : cp.out[p];
    li.have_pre = true;
  }
  if (!li.have_pre) return li;
  std::size_t cnt_i = Finding::kNoInstr;
  for (std::size_t i = b.first; i < b.last; ++i) {
    const Opcode op = prog.code[i].op;
    if (op == Opcode::Add || op == Opcode::Sub) cnt_i = i;
  }
  if (cnt_i == Finding::kNoInstr) return li;
  const Instruction& cnt = prog.code[cnt_i];
  if (cnt.op != Opcode::Sub || !cnt.has_imm || cnt.rd != cnt.rn || cnt.imm <= 0) {
    return li;
  }
  const unsigned counter = cnt.rd;
  for (std::size_t i = b.first; i < b.last; ++i) {
    if (i == cnt_i) continue;
    bool redefined = false;
    for_each_def(prog.code[i], [&](unsigned r) { redefined |= r == counter; });
    if (redefined) return li;
  }
  if (!li.pre[counter].known || li.pre[counter].v <= 0 ||
      li.pre[counter].v % cnt.imm != 0) {
    return li;  // non-terminating shapes are the single-core passes' job
  }
  li.trips = li.pre[counter].v / cnt.imm;
  li.cursor_valid.fill(true);
  li.cursor_valid[counter] = false;
  for (std::size_t i = b.first; i < b.last; ++i) {
    const Instruction& ins = prog.code[i];
    for_each_def(ins, [&](unsigned r) {
      if (r >= kRegs) return;
      if (step_of(ins, r) != 0) {
        li.delta[r] += step_of(ins, r);
      } else {
        li.cursor_valid[r] = false;
      }
    });
  }
  li.counted = true;
  return li;
}

class Verifier {
public:
  explicit Verifier(const WorkgroupSpec& spec) : spec_(spec) {
    const std::size_t n = std::size_t{spec.rows} * spec.cols;
    if (spec.rows == 0 || spec.cols == 0) {
      throw std::invalid_argument("workgroup shape must be at least 1x1");
    }
    if (spec.origin.row + spec.rows > spec.map.dims.rows ||
        spec.origin.col + spec.cols > spec.map.dims.cols) {
      throw std::invalid_argument("workgroup does not fit on the mesh at its origin");
    }
    if (spec.cores.size() != 1 && spec.cores.size() != n) {
      throw std::invalid_argument(
          "workgroup needs 1 (replicated) or rows*cols programs, got " +
          std::to_string(spec.cores.size()));
    }
  }

  std::vector<WgFinding> run() {
    const std::size_t n = std::size_t{spec_.rows} * spec_.cols;
    for (std::size_t c = 0; c < n; ++c) extract_core(c);
    check_barriers();
    build_hb();
    check_races();
    check_deadlocks();
    for (std::size_t c = 0; c < n; ++c) check_dma(c);
    if (spec_.run_per_core_passes) run_per_core();
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const WgFinding& a, const WgFinding& b) {
                       if (a.core != b.core) return a.core < b.core;
                       if (a.finding.instr != b.finding.instr) {
                         return a.finding.instr < b.finding.instr;
                       }
                       return a.finding.pass < b.finding.pass;
                     });
    return std::move(findings_);
  }

private:
  const isa::Program& prog_of(std::size_t core) const {
    return spec_.cores.size() == 1 ? spec_.cores[0].prog : spec_.cores[core].prog;
  }
  const std::string& name_of(std::size_t core) const {
    return spec_.cores.size() == 1 ? spec_.cores[0].name : spec_.cores[core].name;
  }
  arch::CoreCoord coord_of(std::size_t core) const {
    return {spec_.origin.row + static_cast<unsigned>(core) / spec_.cols,
            spec_.origin.col + static_cast<unsigned>(core) % spec_.cols};
  }
  bool in_group(arch::CoreCoord c) const {
    return c.row >= spec_.origin.row && c.row < spec_.origin.row + spec_.rows &&
           c.col >= spec_.origin.col && c.col < spec_.origin.col + spec_.cols;
  }

  void report(std::size_t core, const char* pass, Severity sev, std::size_t instr,
              std::string msg, unsigned line_override = 0) {
    WgFinding f;
    f.core = core;
    f.row = static_cast<unsigned>(core) / spec_.cols;
    f.col = static_cast<unsigned>(core) % spec_.cols;
    f.where = name_of(core);
    f.finding.pass = pass;
    f.finding.severity = sev;
    f.finding.instr = instr;
    f.finding.line =
        line_override != 0
            ? line_override
            : (instr == Finding::kNoInstr ? 0 : prog_of(core).line_of(instr));
    f.finding.message = std::move(msg);
    findings_.push_back(std::move(f));
  }

  // ---- per-core event extraction ----------------------------------------

  /// Resolve one constant-address access of `core` to a global range,
  /// reporting bad targets. Returns nullopt when the access is not a valid
  /// event (bad target, or a local fault the per-core passes own).
  std::optional<std::pair<std::uint32_t, std::uint32_t>> resolve(
      std::size_t core, std::size_t instr, std::int64_t addr, std::int64_t size,
      bool is_store) {
    const auto cls = classify_addr(addr);
    const auto& map = spec_.map;
    switch (cls.kind) {
      case dataflow::AddrKind::Negative:
        return std::nullopt;  // per-core mem-extent reports this
      case dataflow::AddrKind::Local: {
        const std::int64_t off = addr;
        if (off + size > arch::AddressMap::kLocalMemBytes) {
          return std::nullopt;  // per-core mem-extent reports this
        }
        const std::uint32_t g =
            map.global(coord_of(core), static_cast<arch::Addr>(off));
        return std::make_pair(g, static_cast<std::uint32_t>(g + size));
      }
      case dataflow::AddrKind::Global:
        break;
    }
    const std::uint32_t g = cls.global;
    if (map.is_external(g)) {
      if (static_cast<std::int64_t>(map.external_offset(g)) + size >
          map.external_bytes) {
        report(core, "wg-remote-extent", Severity::Error, instr,
               std::string(is_store ? "store" : "load") + " at " + hex(g) +
                   " (+" + std::to_string(size) +
                   ") runs past the external DRAM window");
        return std::nullopt;
      }
      return std::make_pair(g, static_cast<std::uint32_t>(g + size));
    }
    const auto target = map.core_of(g);
    if (!target) {
      report(core, "wg-unmapped-core", Severity::Error, instr,
             std::string(is_store ? "store" : "load") + " at " + hex(g) +
                 " targets core id " + hex(g >> arch::AddressMap::kCoreWindowBits) +
                 ", which maps to no core on this mesh");
      return std::nullopt;
    }
    if (!in_group(*target)) {
      report(core, "wg-out-of-group", Severity::Error, instr,
             std::string(is_store ? "store" : "load") + " at " + hex(g) +
                 " targets core (" + std::to_string(target->row) + "," +
                 std::to_string(target->col) + "), outside this " +
                 std::to_string(spec_.rows) + "x" + std::to_string(spec_.cols) +
                 " workgroup");
      return std::nullopt;
    }
    const std::int64_t off = arch::AddressMap::local_offset(g);
    if (off + size > arch::AddressMap::kLocalMemBytes) {
      report(core, "wg-remote-extent", Severity::Error, instr,
             std::string(is_store ? "store" : "load") + " at " + hex(g) + " (+" +
                 std::to_string(size) + ") runs past core (" +
                 std::to_string(target->row) + "," + std::to_string(target->col) +
                 ")'s 32 KB scratchpad");
      return std::nullopt;
    }
    if (off / arch::AddressMap::kBankBytes !=
        (off + size - 1) / arch::AddressMap::kBankBytes) {
      report(core, "wg-remote-bank", Severity::Warning, instr,
             std::string(is_store ? "store" : "load") + " at " + hex(g) + " (+" +
                 std::to_string(size) + ") straddles an 8 KB bank boundary of core (" +
                 std::to_string(target->row) + "," + std::to_string(target->col) +
                 ")'s scratchpad");
    }
    return std::make_pair(g, static_cast<std::uint32_t>(g + size));
  }

  void emit(std::size_t core, Event::Kind kind, std::size_t instr,
            std::uint32_t lo, std::uint32_t hi, bool value_known,
            std::uint32_t value) {
    Event e;
    e.kind = kind;
    e.core = core;
    e.instr = instr;
    e.lo = lo;
    e.hi = hi;
    e.value_known = value_known;
    e.value = value;
    events_[core].push_back(std::move(e));
  }

  void extract_core(std::size_t core) {
    const isa::Program& prog = prog_of(core);
    const Cfg cfg = Cfg::build(prog);
    const std::int64_t cid = spec_.map.core_id(coord_of(core));
    const ConstProp cp = propagate(prog, cfg, cid);

    // A `.dma` declaration is modelled as a blocking transfer anchored at
    // the first instruction at or below its source line: one Load event over
    // the source span and one Store event over the destination span, in
    // program order with the surrounding instructions. That makes DMA
    // payloads first-class in the happens-before/race analysis -- the
    // epi-shmem put_with_signal idiom (DMA the block, then raise the flag)
    // verifies clean, and a consumer reading the block without waiting on
    // the flag races with the DMA store like any other remote write.
    std::vector<std::size_t> dma_anchor(prog.dma.size(), prog.size());
    for (std::size_t di = 0; di < prog.dma.size(); ++di) {
      for (std::size_t i = 0; i < prog.size(); ++i) {
        if (prog.line_of(i) >= prog.dma[di].line) {
          dma_anchor[di] = i;
          break;
        }
      }
    }
    std::vector<bool> dma_emitted(prog.dma.size(), false);

    for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
      if (!cfg.reachable[bi]) continue;
      const BasicBlock& b = cfg.blocks[bi];
      const LoopInfo li = analyze_self_loop(prog, cfg, bi, cp);
      State st = cp.in[bi];
      std::array<std::int64_t, kRegs> cum{};
      for (std::size_t i = b.first; i < b.last; ++i) {
        for (std::size_t di = 0; di < prog.dma.size(); ++di) {
          if (!dma_emitted[di] && dma_anchor[di] == i) {
            dma_emitted[di] = true;
            emit_dma_transfer(core, prog.dma[di], i);
          }
        }
        const Instruction& ins = prog.code[i];
        const bool mem = isa::is_load(ins.op) || isa::is_store(ins.op);
        if (mem && st[ins.rn].known) {
          const std::int64_t addr =
              ins.postmodify ? st[ins.rn].v : st[ins.rn].v + ins.imm;
          const bool store = isa::is_store(ins.op);
          if (auto r = resolve(core, i, addr, access_size(ins), store)) {
            const AV val = store && ins.op == Opcode::Str ? st[ins.rd] : AV{};
            emit(core, store ? Event::Kind::Store : Event::Kind::Load, i,
                 r->first, r->second, val.known,
                 static_cast<std::uint32_t>(val.v));
          }
        } else if (mem && li.counted && ins.rn < kRegs &&
                   li.cursor_valid[ins.rn] && li.delta[ins.rn] != 0 &&
                   li.pre[ins.rn].known) {
          // Strided walk of a counted self-loop: one event covering the
          // whole span the cursor visits.
          const std::int64_t d = li.delta[ins.rn];
          const std::int64_t a0 =
              li.pre[ins.rn].v + cum[ins.rn] + (ins.postmodify ? 0 : ins.imm);
          const std::int64_t alast = a0 + (li.trips - 1) * d;
          const std::int64_t lo = std::min(a0, alast);
          const std::int64_t hi = std::max(a0, alast) + access_size(ins);
          const bool store = isa::is_store(ins.op);
          if (auto r = resolve(core, i, lo, hi - lo, store)) {
            emit(core, store ? Event::Kind::Store : Event::Kind::Load, i,
                 r->first, r->second, false, 0);
          }
        } else if (ins.op == Opcode::Wait && st[ins.rn].known) {
          if (auto r = resolve(core, i, st[ins.rn].v, 4, false)) {
            emit(core, Event::Kind::Wait, i, r->first, r->second, true,
                 static_cast<std::uint32_t>(ins.imm));
          }
        } else if (ins.op == Opcode::Testset && st[ins.rn].known) {
          if (auto r = resolve(core, i, st[ins.rn].v + ins.imm, 4, true)) {
            emit(core, Event::Kind::Testset, i, r->first, r->second, false, 0);
          }
        } else if (ins.op == Opcode::Bar) {
          Event e;
          e.kind = Event::Kind::Barrier;
          e.core = core;
          e.instr = i;
          e.barrier_seq = barrier_count_[core]++;
          events_[core].push_back(std::move(e));
          barrier_weight_[core] += li.counted ? li.trips : 1;
        }
        xfer_const(ins, st, cid);
        for (unsigned r = 0; r < kRegs; ++r) cum[r] += step_of(ins, r);
      }
    }
  }

  // ---- barrier participation --------------------------------------------

  void check_barriers() {
    const std::size_t n = std::size_t{spec_.rows} * spec_.cols;
    std::int64_t min_w = -1, max_w = -1;
    std::size_t min_c = 0, max_c = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const std::int64_t w = barrier_weight_[c];
      if (min_w < 0 || w < min_w) { min_w = w; min_c = c; }
      if (max_w < 0 || w > max_w) { max_w = w; max_c = c; }
    }
    if (n < 2 || min_w == max_w) return;
    // Attribute to the core with the most barriers, at its first barrier
    // past the minimum (the one nobody will ever join).
    std::size_t at = Finding::kNoInstr;
    for (const Event& e : events_[max_c]) {
      if (e.kind == Event::Kind::Barrier &&
          e.barrier_seq >= static_cast<std::size_t>(min_w)) {
        at = e.instr;
        break;
      }
    }
    if (at == Finding::kNoInstr) {
      for (const Event& e : events_[max_c]) {
        if (e.kind == Event::Kind::Barrier) at = e.instr;  // last one
      }
    }
    const auto cc = [&](std::size_t c) {
      return "core (" + std::to_string(static_cast<unsigned>(c) / spec_.cols) + "," +
             std::to_string(static_cast<unsigned>(c) % spec_.cols) + ")";
    };
    report(max_c, "wg-barrier-mismatch", Severity::Error, at,
           "barrier participation mismatch: " + cc(max_c) + " reaches " +
               std::to_string(max_w) + " barrier(s) but " + cc(min_c) +
               " reaches " + std::to_string(min_w) +
               " -- the group deadlocks at the unmatched rendezvous");
  }

  // ---- happens-before graph ---------------------------------------------

  // Node ids: flatten per-core events first, then one virtual node per
  // barrier instance actually paired (j < min participation count).
  std::size_t node_of(std::size_t core, std::size_t ev) const {
    return event_base_[core] + ev;
  }

  /// Drop stores/loads that cannot interact across cores: their range
  /// overlaps no other core's events and contains no sync word. Keeps the
  /// happens-before graph proportional to the group's *communication*, not
  /// to the kernels' local traffic (the big generated kernels have
  /// thousands of scratchpad accesses and zero remote ones).
  void prune_events() {
    const std::size_t n = std::size_t{spec_.rows} * spec_.cols;
    std::vector<std::uint32_t> bb_lo(n, UINT32_MAX), bb_hi(n, 0);
    for (std::size_t c = 0; c < n; ++c) {
      for (const Event& e : events_[c]) {
        if (e.kind == Event::Kind::Barrier) continue;
        bb_lo[c] = std::min(bb_lo[c], e.lo);
        bb_hi[c] = std::max(bb_hi[c], e.hi);
      }
    }
    for (std::size_t c = 0; c < n; ++c) {
      std::vector<Event> kept;
      for (const Event& e : events_[c]) {
        bool keep = e.kind != Event::Kind::Store && e.kind != Event::Kind::Load;
        if (!keep) keep = is_sync_range(e);  // self-release / flag traffic
        for (std::size_t d = 0; !keep && d < n; ++d) {
          if (d == c || e.lo >= bb_hi[d] || bb_lo[d] >= e.hi) continue;
          for (const Event& f : events_[d]) {
            if (f.kind != Event::Kind::Barrier && e.lo < f.hi && f.lo < e.hi) {
              keep = true;
              break;
            }
          }
        }
        if (keep) kept.push_back(e);
      }
      events_[c] = std::move(kept);
    }
  }

  void build_hb() {
    const std::size_t n = std::size_t{spec_.rows} * spec_.cols;

    // Sync words: every 4-byte word some WAIT or TESTSET targets. Stores
    // and loads touching them are synchronisation traffic, not payload.
    for (std::size_t c = 0; c < n; ++c) {
      for (const Event& e : events_[c]) {
        if (e.kind == Event::Kind::Wait || e.kind == Event::Kind::Testset) {
          sync_words_.insert(e.lo);
        }
        if (e.kind == Event::Kind::Testset) mutex_words_.insert(e.lo);
      }
    }
    prune_events();

    event_base_.assign(n, 0);
    std::size_t total = 0;
    for (std::size_t c = 0; c < n; ++c) {
      event_base_[c] = total;
      total += events_[c].size();
    }
    std::size_t min_bars = SIZE_MAX;
    for (std::size_t c = 0; c < n; ++c) {
      min_bars = std::min(min_bars, barrier_count_[c]);
    }
    if (min_bars == SIZE_MAX) min_bars = 0;
    paired_barriers_ = n >= 2 ? min_bars : 0;
    const std::size_t nodes = total + paired_barriers_;
    adj_.assign(nodes, {});

    for (std::size_t c = 0; c < n; ++c) {
      // Program order.
      for (std::size_t i = 0; i + 1 < events_[c].size(); ++i) {
        adj_[node_of(c, i)].push_back(node_of(c, i + 1));
      }
      // Locksets: a TESTSET acquires its word; a store of 0 to a mutex
      // word releases it.
      std::set<std::uint32_t> held;
      for (Event& e : events_[c]) {
        if (e.kind == Event::Kind::Store && e.value_known && e.value == 0 &&
            mutex_words_.count(e.lo)) {
          held.erase(e.lo);
        }
        e.lockset.assign(held.begin(), held.end());
        if (e.kind == Event::Kind::Testset) held.insert(e.lo);
      }
    }

    // Release edges: store(F, v) -> wait(F, v) for matching flag words;
    // host preloads satisfy waits directly.
    for (std::size_t wc = 0; wc < n; ++wc) {
      for (std::size_t wi = 0; wi < events_[wc].size(); ++wi) {
        Event& w = events_[wc][wi];
        if (w.kind != Event::Kind::Wait) continue;
        for (const auto& [plo, phi] : spec_.host_preloaded) {
          if (plo <= w.lo && w.hi <= phi) w.preload_satisfied = true;
        }
        for (std::size_t sc = 0; sc < n; ++sc) {
          for (std::size_t si = 0; si < events_[sc].size(); ++si) {
            const Event& s = events_[sc][si];
            if (s.kind != Event::Kind::Store || !overlaps(s, w)) continue;
            if (s.value_known && w.value_known && s.value != w.value) continue;
            adj_[node_of(sc, si)].push_back(node_of(wc, wi));
            release_of_[node_of(wc, wi)].push_back(node_of(sc, si));
          }
        }
      }
    }

    // Barrier instances: arrive -> virtual -> depart on every core.
    for (std::size_t j = 0; j < paired_barriers_; ++j) {
      const std::size_t vj = total + j;
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t i = 0; i < events_[c].size(); ++i) {
          const Event& e = events_[c][i];
          if (e.kind != Event::Kind::Barrier || e.barrier_seq != j) continue;
          adj_[node_of(c, i)].push_back(vj);
          if (i + 1 < events_[c].size()) adj_[vj].push_back(node_of(c, i + 1));
        }
      }
    }

    // Transitive reachability, BFS from each node (event counts are small:
    // only constant-address sync/remote traffic becomes events).
    reach_.assign(nodes, std::vector<bool>(nodes, false));
    for (std::size_t s = 0; s < nodes; ++s) {
      std::vector<std::size_t> stack{s};
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        for (std::size_t v : adj_[u]) {
          if (!reach_[s][v]) {
            reach_[s][v] = true;
            stack.push_back(v);
          }
        }
      }
    }
  }

  bool hb(std::size_t a, std::size_t b) const { return reach_[a][b]; }

  // ---- races --------------------------------------------------------------

  static bool disjoint_locksets(const Event& a, const Event& b) {
    for (std::uint32_t m : a.lockset) {
      if (std::find(b.lockset.begin(), b.lockset.end(), m) != b.lockset.end()) {
        return false;
      }
    }
    return true;
  }

  bool is_sync_range(const Event& e) const {
    for (std::uint32_t w : sync_words_) {
      if (e.lo <= w && w < e.hi) return true;
    }
    return false;
  }

  void check_races() {
    const std::size_t n = std::size_t{spec_.rows} * spec_.cols;
    for (std::size_t lc = 0; lc < n; ++lc) {
      for (std::size_t li = 0; li < events_[lc].size(); ++li) {
        const Event& l = events_[lc][li];
        if (l.kind != Event::Kind::Load || is_sync_range(l)) continue;
        for (std::size_t sc = 0; sc < n; ++sc) {
          if (sc == lc) continue;
          bool reported = false;
          for (std::size_t si = 0; si < events_[sc].size(); ++si) {
            const Event& s = events_[sc][si];
            if (s.kind != Event::Kind::Store || !overlaps(s, l)) continue;
            if (is_sync_range(s)) continue;
            if (!disjoint_locksets(s, l)) continue;
            const std::size_t sn = node_of(sc, si), ln = node_of(lc, li);
            if (hb(sn, ln) || hb(ln, sn)) continue;
            report(lc, "wg-race", Severity::Error, l.instr,
                   "read of [" + hex(l.lo) + ", " + hex(l.hi) +
                       ") races with the store at instr#" + std::to_string(s.instr) +
                       " of core (" + std::to_string(static_cast<unsigned>(sc) / spec_.cols) +
                       "," + std::to_string(static_cast<unsigned>(sc) % spec_.cols) +
                       "): no flag, barrier, or mutex orders the remote write "
                       "before this read (read-after-remote-write, paper "
                       "Listings 1-2)");
            reported = true;
            break;  // one finding per load/core pair
          }
          if (reported) break;  // one finding per load
        }
      }
    }
  }

  // ---- deadlocks -----------------------------------------------------------

  void check_deadlocks() {
    const std::size_t n = std::size_t{spec_.rows} * spec_.cols;
    std::size_t total = 0;
    for (std::size_t c = 0; c < n; ++c) total += events_[c].size();

    std::vector<bool> done(total + paired_barriers_, false);
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t i = 0; i < events_[c].size(); ++i) {
          const std::size_t id = node_of(c, i);
          if (done[id]) continue;
          if (i > 0 && !done[node_of(c, i - 1)]) continue;
          const Event& e = events_[c][i];
          bool sat = true;
          switch (e.kind) {
            case Event::Kind::Store:
            case Event::Kind::Load:
            case Event::Kind::Testset:
              break;
            case Event::Kind::Wait: {
              sat = e.preload_satisfied;
              const auto it = release_of_.find(id);
              if (!sat && it != release_of_.end()) {
                for (std::size_t rn : it->second) {
                  if (done[rn]) { sat = true; break; }
                }
              }
              break;
            }
            case Event::Kind::Barrier: {
              if (e.barrier_seq >= paired_barriers_) break;  // mismatch owns this
              for (std::size_t oc = 0; oc < n; ++oc) {
                // Arrival of core oc at instance barrier_seq: its events up
                // to (and excluding) that barrier are all complete.
                std::size_t bi = SIZE_MAX;
                for (std::size_t oi = 0; oi < events_[oc].size(); ++oi) {
                  if (events_[oc][oi].kind == Event::Kind::Barrier &&
                      events_[oc][oi].barrier_seq == e.barrier_seq) {
                    bi = oi;
                    break;
                  }
                }
                if (bi == SIZE_MAX) continue;  // mismatch case
                if (bi > 0 && !done[node_of(oc, bi - 1)]) { sat = false; break; }
              }
              break;
            }
          }
          if (sat) {
            done[id] = true;
            changed = true;
          }
        }
      }
    }

    // The frontier: the first incomplete event on each core. Only waits
    // are reportable (barrier mismatches already are, and a barrier stuck
    // behind another core's wait would be a cascade).
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t i = 0; i < events_[c].size(); ++i) {
        if (done[node_of(c, i)]) continue;
        const Event& e = events_[c][i];
        if (e.kind == Event::Kind::Wait) {
          const auto it = release_of_.find(node_of(c, i));
          const bool has_candidates = it != release_of_.end() && !it->second.empty();
          if (!has_candidates) {
            report(c, "wg-flag-deadlock", Severity::Error, e.instr,
                   "wait for [" + hex(e.lo) + ", " + hex(e.hi) + ") == " +
                       std::to_string(e.value) +
                       " can never complete: no core ever stores that value "
                       "there and the host does not preload it");
          } else {
            report(c, "wg-flag-cycle", Severity::Error, e.instr,
                   "wait for [" + hex(e.lo) + ", " + hex(e.hi) + ") == " +
                       std::to_string(e.value) +
                       " can never complete: every store that could release it "
                       "is itself blocked behind an unsatisfied wait "
                       "(circular flag-wait chain)");
          }
        }
        break;  // only the frontier event per core
      }
    }
  }

  // ---- DMA descriptors -----------------------------------------------------

  /// Strided-walk extrema of one side of a descriptor: [lo, hi) in the
  /// side's own address space (local offsets or global addresses).
  static std::pair<std::int64_t, std::int64_t> dma_span(const isa::DmaDecl& d,
                                                        bool is_dst) {
    const std::uint32_t base = is_dst ? d.dst : d.src;
    const std::int64_t istride = is_dst ? d.dst_inner_stride : d.src_inner_stride;
    const std::int64_t ostride = is_dst ? d.dst_outer_stride : d.src_outer_stride;
    const std::int64_t row_step =
        static_cast<std::int64_t>(d.inner_count) * istride + ostride;
    std::int64_t lo = base, hi = base;
    for (const std::int64_t o : {std::int64_t{0}, std::int64_t{d.outer_count} - 1}) {
      for (const std::int64_t j : {std::int64_t{0}, std::int64_t{d.inner_count} - 1}) {
        const std::int64_t a = base + o * row_step + j * istride;
        lo = std::min(lo, a);
        hi = std::max(hi, a);
      }
    }
    return {lo, hi + d.elem};
  }

  /// Quiet resolution of one descriptor side to a global range for the
  /// happens-before graph: invalid descriptors yield no event (check_dma
  /// owns every wg-dma report; duplicating it here would double findings).
  void emit_dma_side(std::size_t core, const isa::DmaDecl& d, bool is_dst,
                     std::size_t instr) {
    const std::uint32_t base = is_dst ? d.dst : d.src;
    const auto [lo, hi] = dma_span(d, is_dst);
    const auto& map = spec_.map;
    std::uint32_t glo, ghi;
    if (arch::AddressMap::is_local_alias(base)) {
      if (lo < 0 || hi > arch::AddressMap::kLocalMemBytes) return;
      glo = map.global(coord_of(core), static_cast<arch::Addr>(lo));
      ghi = glo + static_cast<std::uint32_t>(hi - lo);
    } else if (map.is_external(base)) {
      if (lo < map.external_base ||
          hi > static_cast<std::int64_t>(map.external_base) + map.external_bytes) {
        return;
      }
      glo = static_cast<std::uint32_t>(lo);
      ghi = static_cast<std::uint32_t>(hi);
    } else {
      const auto target = map.core_of(base);
      if (!target || !in_group(*target)) return;
      const std::int64_t win =
          static_cast<std::int64_t>(base) &
          ~((std::int64_t{1} << arch::AddressMap::kCoreWindowBits) - 1);
      if (lo < win || hi - win > arch::AddressMap::kLocalMemBytes) return;
      glo = static_cast<std::uint32_t>(lo);
      ghi = static_cast<std::uint32_t>(hi);
    }
    emit(core, is_dst ? Event::Kind::Store : Event::Kind::Load, instr, glo, ghi,
         /*value_known=*/false, 0);
  }

  void emit_dma_transfer(std::size_t core, const isa::DmaDecl& d, std::size_t instr) {
    if (d.elem != 1 && d.elem != 2 && d.elem != 4 && d.elem != 8) return;
    if (d.inner_count == 0 || d.outer_count == 0) return;
    emit_dma_side(core, d, /*is_dst=*/false, instr);
    emit_dma_side(core, d, /*is_dst=*/true, instr);
  }

  void check_dma(std::size_t core) {
    if (spec_.cores.size() == 1 && core != 0) return;  // replicated: once
    const isa::Program& prog = prog_of(core);
    for (const isa::DmaDecl& d : prog.dma) {
      const auto bad = [&](const std::string& msg) {
        report(core, "wg-dma", Severity::Error, Finding::kNoInstr,
               ".dma descriptor: " + msg, d.line);
      };
      if (d.elem != 1 && d.elem != 2 && d.elem != 4 && d.elem != 8) {
        bad("element size " + std::to_string(d.elem) + " is not 1/2/4/8 bytes");
        continue;
      }
      if (d.inner_count == 0 || d.outer_count == 0) {
        bad("zero-length transfer (inner_count and outer_count must be >= 1)");
        continue;
      }
      check_dma_side(core, d, /*is_dst=*/false);
      check_dma_side(core, d, /*is_dst=*/true);
    }
  }

  void check_dma_side(std::size_t core, const isa::DmaDecl& d, bool is_dst) {
    const char* side = is_dst ? "destination" : "source";
    const std::uint32_t base = is_dst ? d.dst : d.src;
    const std::int64_t istride = is_dst ? d.dst_inner_stride : d.src_inner_stride;
    const std::int64_t ostride = is_dst ? d.dst_outer_stride : d.src_outer_stride;
    const auto bad = [&](const std::string& msg) {
      report(core, "wg-dma", Severity::Error, Finding::kNoInstr,
             ".dma " + std::string(side) + ": " + msg, d.line);
    };
    if (base % d.elem != 0) {
      bad("base " + hex(base) + " is not aligned to the " +
          std::to_string(d.elem) + "-byte element size");
      return;
    }
    // The walk is linear in (outer o, inner j):
    //   addr(o, j) = base + o * (inner_count * istride + ostride) + j * istride
    // so its extrema are at the four corners.
    const std::int64_t row_step =
        static_cast<std::int64_t>(d.inner_count) * istride + ostride;
    std::int64_t lo = base, hi = base;
    for (const std::int64_t o : {std::int64_t{0}, std::int64_t{d.outer_count} - 1}) {
      for (const std::int64_t j : {std::int64_t{0}, std::int64_t{d.inner_count} - 1}) {
        const std::int64_t a = base + o * row_step + j * istride;
        lo = std::min(lo, a);
        hi = std::max(hi, a);
      }
    }
    hi += d.elem;

    const auto& map = spec_.map;
    if (arch::AddressMap::is_local_alias(base)) {
      if (lo < 0) {
        bad("strided walk reaches negative offset " + hex(lo));
      } else if (hi > arch::AddressMap::kLocalMemBytes) {
        bad("strided walk spans [" + hex(lo) + ", " + hex(hi) +
            "), past the 32 KB local scratchpad (stride/count overflow)");
      }
      return;
    }
    // Global base: the whole span must stay inside one window.
    if (map.is_external(base)) {
      if (lo < map.external_base ||
          hi > static_cast<std::int64_t>(map.external_base) + map.external_bytes) {
        bad("strided walk spans [" + hex(lo) + ", " + hex(hi) +
            "), outside the external DRAM window");
      }
      return;
    }
    const auto target = map.core_of(base);
    if (!target) {
      bad("base " + hex(base) + " targets core id " +
          hex(base >> arch::AddressMap::kCoreWindowBits) +
          ", which maps to no core on this mesh");
      return;
    }
    if (!in_group(*target)) {
      bad("base " + hex(base) + " targets core (" + std::to_string(target->row) +
          "," + std::to_string(target->col) + "), outside this " +
          std::to_string(spec_.rows) + "x" + std::to_string(spec_.cols) +
          " workgroup");
      return;
    }
    const std::int64_t win = static_cast<std::int64_t>(base) &
                             ~((std::int64_t{1} << arch::AddressMap::kCoreWindowBits) - 1);
    if (lo < win || hi - win > arch::AddressMap::kLocalMemBytes) {
      bad("strided walk spans [" + hex(lo) + ", " + hex(hi) + "), past core (" +
          std::to_string(target->row) + "," + std::to_string(target->col) +
          ")'s 32 KB scratchpad (stride/count overflow)");
    }
  }

  // ---- per-core passes -----------------------------------------------------

  void run_per_core() {
    const std::size_t n =
        spec_.cores.size() == 1 ? 1 : std::size_t{spec_.rows} * spec_.cols;
    for (std::size_t c = 0; c < n; ++c) {
      for (Finding& f : lint_program(prog_of(c), spec_.per_core)) {
        WgFinding wf;
        wf.core = c;
        wf.row = static_cast<unsigned>(c) / spec_.cols;
        wf.col = static_cast<unsigned>(c) % spec_.cols;
        wf.where = name_of(c);
        wf.finding = std::move(f);
        findings_.push_back(std::move(wf));
      }
    }
  }

  const WorkgroupSpec& spec_;
  std::map<std::size_t, std::vector<Event>> events_;
  std::map<std::size_t, std::size_t> barrier_count_;
  std::map<std::size_t, std::int64_t> barrier_weight_;
  std::vector<std::size_t> event_base_;
  std::size_t paired_barriers_ = 0;
  std::vector<std::vector<std::size_t>> adj_;
  std::map<std::size_t, std::vector<std::size_t>> release_of_;
  std::set<std::uint32_t> sync_words_;
  std::set<std::uint32_t> mutex_words_;
  std::vector<std::vector<bool>> reach_;
  std::vector<WgFinding> findings_;
};

}  // namespace

std::vector<WgFinding> verify_workgroup(const WorkgroupSpec& spec) {
  return Verifier(spec).run();
}

WorkgroupSpec assemble_workgroup(
    unsigned rows, unsigned cols,
    const std::vector<std::pair<std::string, std::string>>& named_sources,
    arch::CoreCoord origin) {
  const std::size_t n = std::size_t{rows} * cols;
  if (named_sources.size() != 1 && named_sources.size() != n) {
    throw std::invalid_argument(
        "workgroup needs 1 (replicated) or rows*cols sources, got " +
        std::to_string(named_sources.size()));
  }
  WorkgroupSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.origin = origin;
  for (const auto& [name, text] : named_sources) {
    spec.cores.push_back({isa::assemble(text), name});
  }
  return spec;
}

}  // namespace epi::lint
