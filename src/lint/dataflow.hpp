#pragma once
// Shared dataflow machinery for the static analyzers: register use/def
// walkers, the flat constant lattice the memory-shape passes propagate,
// and the address classifier that separates local scratchpad offsets from
// flat global (coreid<<20) addresses. Used by the single-core passes
// (passes.cpp) and the whole-workgroup verifier (workgroup.cpp).

#include <array>
#include <bitset>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "arch/address_map.hpp"
#include "isa/program.hpp"

namespace epi::lint::dataflow {

constexpr unsigned kRegs = isa::RegFile::kCount;
constexpr unsigned kZ = kRegs;  // pseudo-register index for the Z flag
using Bits = std::bitset<kRegs + 1>;

inline std::string reg_name(unsigned r) { return "r" + std::to_string(r); }

inline std::string hex(std::int64_t v) {
  char buf[24];
  if (v < 0) {
    std::snprintf(buf, sizeof buf, "-0x%llX", static_cast<unsigned long long>(-v));
  } else {
    std::snprintf(buf, sizeof buf, "0x%llX", static_cast<unsigned long long>(v));
  }
  return buf;
}

/// Registers (and kZ) an instruction reads. Register pairs past r63 are
/// clamped; the reg-pair pass reports those separately.
template <typename Fn>
void for_each_use(const isa::Instruction& ins, Fn fn) {
  using isa::Opcode;
  switch (ins.op) {
    case Opcode::Fmadd:
      fn(ins.rd);  // the accumulator is also a source
      [[fallthrough]];
    case Opcode::Fmul:
    case Opcode::Fadd:
    case Opcode::Fsub:
      fn(ins.rn);
      fn(ins.rm);
      break;
    case Opcode::MovImm:
      break;
    case Opcode::MovReg:
      fn(ins.rn);
      break;
    case Opcode::Add:
    case Opcode::Sub:
      fn(ins.rn);
      if (!ins.has_imm) fn(ins.rm);
      break;
    case Opcode::Ldr:
    case Opcode::Ldrd:
      fn(ins.rn);
      break;
    case Opcode::Str:
      fn(ins.rn);
      fn(ins.rd);
      break;
    case Opcode::Strd:
      fn(ins.rn);
      fn(ins.rd);
      if (ins.rd + 1u < kRegs) fn(ins.rd + 1u);
      break;
    case Opcode::Bne:
    case Opcode::Beq:
      fn(kZ);
      break;
    case Opcode::Lsl:
      fn(ins.rn);
      break;
    case Opcode::Wait:
      fn(ins.rn);
      break;
    case Opcode::Testset:
      fn(ins.rn);
      break;
    case Opcode::B:
    case Opcode::CoreId:
    case Opcode::Bar:
    case Opcode::Halt:
      break;
  }
}

/// Registers (and kZ) an instruction writes.
template <typename Fn>
void for_each_def(const isa::Instruction& ins, Fn fn) {
  using isa::Opcode;
  switch (ins.op) {
    case Opcode::Fmadd:
    case Opcode::Fmul:
    case Opcode::Fadd:
    case Opcode::Fsub:
    case Opcode::MovImm:
    case Opcode::MovReg:
    case Opcode::CoreId:
    case Opcode::Lsl:
      fn(ins.rd);
      break;
    case Opcode::Add:
    case Opcode::Sub:
      fn(ins.rd);
      fn(kZ);
      break;
    case Opcode::Testset:
      fn(ins.rd);
      fn(kZ);  // TESTSET reports acquire success through Z
      break;
    case Opcode::Ldr:
      fn(ins.rd);
      break;
    case Opcode::Ldrd:
      fn(ins.rd);
      if (ins.rd + 1u < kRegs) fn(ins.rd + 1u);
      break;
    default:
      break;  // Str/Strd/Wait/Bar/B/Bne/Beq/Halt write no register result
  }
  if ((isa::is_load(ins.op) || isa::is_store(ins.op)) && ins.postmodify) {
    fn(ins.rn);
  }
}

/// Flat constant lattice for the memory-shape passes: unknown or one int.
struct AV {
  bool known = false;
  std::int64_t v = 0;
  friend bool operator==(const AV&, const AV&) = default;
};
using State = std::array<AV, kRegs>;

inline AV merge_av(AV a, AV b) {
  if (a.known && b.known && a.v == b.v) return a;
  return AV{};
}

inline State merge_state(const State& a, const State& b) {
  State s;
  for (unsigned r = 0; r < kRegs; ++r) s[r] = merge_av(a[r], b[r]);
  return s;
}

/// Constant transfer function. When `core_id` is supplied (the workgroup
/// verifier knows which core it is analyzing), COREID produces a known
/// value, so coreid<<20 address composition resolves to constants.
inline void xfer_const(const isa::Instruction& ins, State& st,
                       std::optional<std::int64_t> core_id = std::nullopt) {
  using isa::Opcode;
  const auto bump = [&](unsigned r, std::int64_t d) {
    if (st[r].known) st[r].v += d;
  };
  switch (ins.op) {
    case Opcode::MovImm:
      st[ins.rd] = AV{true, ins.imm};
      break;
    case Opcode::MovReg:
      st[ins.rd] = st[ins.rn];
      break;
    case Opcode::Add:
    case Opcode::Sub: {
      const AV b = ins.has_imm ? AV{true, ins.imm} : st[ins.rm];
      if (st[ins.rn].known && b.known) {
        st[ins.rd] = AV{true, ins.op == Opcode::Add ? st[ins.rn].v + b.v
                                                    : st[ins.rn].v - b.v};
      } else {
        st[ins.rd] = AV{};
      }
      break;
    }
    case Opcode::CoreId:
      st[ins.rd] = core_id ? AV{true, *core_id} : AV{};
      break;
    case Opcode::Lsl:
      if (st[ins.rn].known) {
        // Shift in u32 space, then wrap like the hardware register does.
        const auto u = static_cast<std::uint32_t>(st[ins.rn].v);
        st[ins.rd] = AV{true, static_cast<std::int64_t>(static_cast<std::int32_t>(
                                  u << (ins.imm & 31)))};
      } else {
        st[ins.rd] = AV{};
      }
      break;
    case Opcode::Fmadd:
    case Opcode::Fmul:
    case Opcode::Fadd:
    case Opcode::Fsub:
      st[ins.rd] = AV{};  // float results are not tracked
      break;
    case Opcode::Ldr:
    case Opcode::Ldrd:
      st[ins.rd] = AV{};
      if (ins.op == Opcode::Ldrd && ins.rd + 1u < kRegs) st[ins.rd + 1u] = AV{};
      if (ins.postmodify) bump(ins.rn, ins.imm);
      break;
    case Opcode::Str:
    case Opcode::Strd:
      if (ins.postmodify) bump(ins.rn, ins.imm);
      break;
    case Opcode::Testset:
      st[ins.rd] = AV{};  // the old flag value is data-dependent
      break;
    case Opcode::B:
    case Opcode::Bne:
    case Opcode::Beq:
    case Opcode::Wait:
    case Opcode::Bar:
    case Opcode::Halt:
      break;
  }
}

inline std::int64_t access_size(const isa::Instruction& ins) {
  using isa::Opcode;
  return ins.op == Opcode::Ldrd || ins.op == Opcode::Strd ? 8 : 4;
}

/// What address space a constant-propagated address value lands in.
/// Immediates wrap through int32 in the assembler, so flat global
/// addresses with the top bit set (e.g. 0x80904000, core (0,1)) arrive
/// here as large-magnitude negatives; small negatives are genuine
/// address-arithmetic bugs.
enum class AddrKind {
  Negative,  // a real negative address (arithmetic walked below zero)
  Local,     // inside the 1 MB local alias window: a scratchpad offset
  Global,    // a flat global address (coreid<<20 | offset, or external)
};

struct AddrClass {
  AddrKind kind = AddrKind::Negative;
  std::uint32_t global = 0;  // the u32 address, valid when kind != Negative
};

inline AddrClass classify_addr(std::int64_t addr) {
  constexpr std::int64_t kWindow = std::int64_t{1}
                                   << arch::AddressMap::kCoreWindowBits;
  if (addr < 0) {
    // Negatives of magnitude below one core window cannot be a wrapped
    // global address of any plausible offset; they are genuine
    // address-arithmetic bugs. Larger magnitudes are globals whose top
    // bit was set (e.g. 0x80904000, core (0,1) on the E64G401).
    if (addr > -kWindow) return {AddrKind::Negative, 0};
    return {AddrKind::Global, static_cast<std::uint32_t>(addr)};
  }
  if (addr < kWindow) return {AddrKind::Local, static_cast<std::uint32_t>(addr)};
  return {AddrKind::Global, static_cast<std::uint32_t>(addr)};
}

}  // namespace epi::lint::dataflow
