#pragma once
// Runtime memory sanitizer: shadow memory over the MemorySystem.
//
// Two defect classes the paper's programming model makes easy to write and
// hard to see:
//
//   uninit-read  (error)  a core reads bytes nothing ever wrote -- typically
//                         a kernel consuming a buffer before the host (or a
//                         DMA) filled it.
//   race         (error)  a core reads a word another core wrote, without an
//                         intervening synchronisation acquire (flag wait or
//                         mutex TESTSET) on the reader's side -- the
//                         Listing-1/2 hazard: consuming a neighbour's halo
//                         before its "data ready" flag said so.
//
// The shadow keeps, per 4-byte word: an init bitmask (per byte), the last
// writer core and the write time. Happens-before is tracked per reader core
// as the time of its latest acquire; a remote write later than that is a
// race. Host preloads at t=0 count as initialisation, never as racing
// writes.

#include <cstddef>
#include <cstdint>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "lint/finding.hpp"
#include "mem/hook.hpp"

namespace epi::lint {

class MemSanitizer final : public mem::MemoryHook {
public:
  void on_write(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
                sim::Cycles now) override;
  void on_read(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
               sim::Cycles now) override;
  void on_sync(arch::CoreCoord issuer, sim::Cycles now) override;

  /// Declare a range initialised without attributing it to a writer
  /// (e.g. buffers the test harness poked directly into backing storage).
  void mark_initialized(arch::Addr a, std::size_t n);

  [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
    return findings_;
  }
  /// Number of findings from the given pass ("uninit-read" or "race").
  [[nodiscard]] std::size_t count(const char* pass) const;

  void clear();

private:
  struct Word {
    std::uint8_t init_mask = 0;  // bit b: byte b of the word was written
    bool written = false;        // writer/write_time are meaningful
    std::uint32_t writer = 0;    // packed CoreCoord of the last writer
    sim::Cycles write_time = 0;
  };

  static std::uint32_t key(arch::CoreCoord c) noexcept {
    return (c.row << 16) | c.col;
  }
  Word& word(arch::Addr a) { return shadow_[a >> 2]; }

  void report(int pass, arch::Addr a, std::uint32_t reader, std::string msg);

  std::unordered_map<arch::Addr, Word> shadow_;  // keyed by word index a>>2
  std::unordered_map<std::uint32_t, sim::Cycles> last_sync_;  // per core key
  std::set<std::tuple<int, arch::Addr, std::uint32_t>> reported_;
  std::vector<Finding> findings_;
};

}  // namespace epi::lint
