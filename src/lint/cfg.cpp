#include "lint/cfg.hpp"

#include <algorithm>
#include <set>

namespace epi::lint {

using isa::Instruction;
using isa::Opcode;

Cfg Cfg::build(const isa::Program& prog) {
  Cfg cfg;
  const std::size_t n = prog.size();
  if (n == 0) return cfg;

  // ---- leaders ----------------------------------------------------------
  std::set<std::size_t> leaders{0};
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& ins = prog.code[i];
    if (isa::is_branch(ins.op)) {
      if (ins.imm >= 0 && static_cast<std::size_t>(ins.imm) < n) {
        leaders.insert(static_cast<std::size_t>(ins.imm));
      }
      if (i + 1 < n) leaders.insert(i + 1);
    } else if (ins.op == Opcode::Halt && i + 1 < n) {
      leaders.insert(i + 1);
    }
  }

  // ---- block ranges ------------------------------------------------------
  cfg.block_of.assign(n, 0);
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    const std::size_t first = *it;
    const auto next = std::next(it);
    const std::size_t last = next == leaders.end() ? n : *next;
    BasicBlock b;
    b.first = first;
    b.last = last;
    for (std::size_t i = first; i < last; ++i) cfg.block_of[i] = cfg.blocks.size();
    cfg.blocks.push_back(std::move(b));
  }

  // ---- edges -------------------------------------------------------------
  for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    BasicBlock& b = cfg.blocks[bi];
    const Instruction& tail = prog.code[b.last - 1];
    const auto add_succ = [&](std::size_t target_instr) {
      b.succ.push_back(cfg.block_of[target_instr]);
    };
    if (tail.op == Opcode::Halt) {
      b.ends_in_halt = true;
    } else if (isa::is_branch(tail.op)) {
      if (tail.imm >= 0 && static_cast<std::size_t>(tail.imm) < n) {
        add_succ(static_cast<std::size_t>(tail.imm));
      } else if (static_cast<std::size_t>(tail.imm) == n && tail.imm >= 0) {
        b.falls_off_end = true;  // branch to one-past-the-end label
      } else {
        b.bad_target = true;
      }
      if (tail.op != Opcode::B) {  // conditional: fall-through edge too
        if (b.last < n) {
          add_succ(b.last);
        } else {
          b.falls_off_end = true;
        }
      }
    } else {
      if (b.last < n) {
        add_succ(b.last);
      } else {
        b.falls_off_end = true;
      }
    }
    // Dedupe (bne target can equal the fall-through).
    std::sort(b.succ.begin(), b.succ.end());
    b.succ.erase(std::unique(b.succ.begin(), b.succ.end()), b.succ.end());
  }
  for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    for (std::size_t s : cfg.blocks[bi].succ) cfg.blocks[s].pred.push_back(bi);
  }

  // ---- reachability from the entry block ---------------------------------
  cfg.reachable.assign(cfg.blocks.size(), false);
  std::vector<std::size_t> work{0};
  cfg.reachable[0] = true;
  while (!work.empty()) {
    const std::size_t bi = work.back();
    work.pop_back();
    for (std::size_t s : cfg.blocks[bi].succ) {
      if (!cfg.reachable[s]) {
        cfg.reachable[s] = true;
        work.push_back(s);
      }
    }
  }
  return cfg;
}

std::vector<bool> Cfg::can_terminate() const {
  std::vector<bool> can(blocks.size(), false);
  std::vector<std::size_t> work;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    // A halt, a fall-off-the-end, and (for the purposes of this query) a
    // malformed branch target all leave the program.
    if (blocks[bi].ends_in_halt || blocks[bi].falls_off_end || blocks[bi].bad_target) {
      can[bi] = true;
      work.push_back(bi);
    }
  }
  while (!work.empty()) {
    const std::size_t bi = work.back();
    work.pop_back();
    for (std::size_t p : blocks[bi].pred) {
      if (!can[p]) {
        can[p] = true;
        work.push_back(p);
      }
    }
  }
  return can;
}

}  // namespace epi::lint
