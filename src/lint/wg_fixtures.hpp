#pragma once
// Seeded-defect (and clean-twin) workgroup fixtures for the whole-group
// verifier. Shared between the unit tests, the epi_lint/epi_serve
// selftests, and the benchmark suite so every layer exercises the same
// defects: the paper's Listing-1/2 read-after-remote-write race, barrier
// participation mismatches, circular flag-wait chains, out-of-workgroup
// stores, and DMA descriptors that overflow the 32 KB scratchpad.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lint/workgroup.hpp"

namespace epi::lint::fixtures {

struct WgFixture {
  unsigned rows = 1;
  unsigned cols = 1;
  /// name -> assembly source; 1 entry replicates SPMD, else rows*cols.
  std::vector<std::pair<std::string, std::string>> programs;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> host_preloaded;
};

/// Assemble a fixture into a verifier spec (group anchored at mesh (0,0)).
[[nodiscard]] WorkgroupSpec to_spec(const WgFixture& fx);

/// The paper's Listing-1/2 shape on a 1x2 group: core (0,0) pushes a word
/// into core (0,1)'s scratchpad and raises a flag there. With `racy`, the
/// consumer reads without waiting on the flag (the defect); otherwise it
/// waits first (the idiomatic fix).
[[nodiscard]] WgFixture listing12(bool racy);

/// Core (0,0) runs two barriers, core (0,1) only one: participation
/// mismatch, the group deadlocks at the unmatched rendezvous.
[[nodiscard]] WgFixture barrier_mismatch();

/// Both cores wait on their own flag before releasing the peer's:
/// a circular flag-wait chain that can never make progress.
[[nodiscard]] WgFixture circular_wait();

/// Core (0,0) stores into core (4,0)'s scratchpad -- a mapped core, but
/// outside the 1x2 workgroup rectangle.
[[nodiscard]] WgFixture stray_remote_write();

/// A `.dma` descriptor whose destination walk runs past the 32 KB
/// scratchpad (stride/count overflow).
[[nodiscard]] WgFixture bad_dma();

/// Core (0,0) waits on a flag word that no core ever writes and the host
/// never preloads.
[[nodiscard]] WgFixture wait_without_writer();

/// Clean: both cores deposit into each other, rendezvous at a barrier,
/// then read what the peer deposited.
[[nodiscard]] WgFixture barrier_exchange();

/// Clean: a TESTSET-guarded counter in core (0,0)'s scratchpad,
/// incremented by both cores of a 1x2 group (SPMD, one program).
[[nodiscard]] WgFixture mutex_counter();

/// The epi-shmem put_with_signal idiom at ISA level on a 1x2 group: the
/// producer DMAs a payload block into the consumer's symmetric heap, then
/// raises the signal word there with a plain store. With `racy`, the
/// consumer reads the payload without waiting on the signal (the
/// get-before-signal defect); otherwise it waits first and verifies clean.
[[nodiscard]] WgFixture shmem_put_signal(bool racy);

}  // namespace epi::lint::fixtures
