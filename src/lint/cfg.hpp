#pragma once
// Basic-block control-flow graph over an assembled epi::isa::Program.
//
// Blocks are maximal straight-line instruction runs: a leader starts at
// instruction 0, at every branch target and at every instruction following
// a branch or halt. Branch targets are the *resolved instruction indices*
// the assembler leaves in Instruction::imm, so the CFG is exact -- there is
// no indirect control flow in the ISA subset.

#include <cstddef>
#include <vector>

#include "isa/program.hpp"

namespace epi::lint {

struct BasicBlock {
  std::size_t first = 0;            // first instruction index
  std::size_t last = 0;             // one past the last instruction
  std::vector<std::size_t> succ;    // successor block indices
  std::vector<std::size_t> pred;    // predecessor block indices
  bool falls_off_end = false;       // control can run past the last instruction
  bool bad_target = false;          // branch target outside [0, program size)
  bool ends_in_halt = false;

  [[nodiscard]] std::size_t size() const noexcept { return last - first; }
};

struct Cfg {
  std::vector<BasicBlock> blocks;     // ordered by first instruction
  std::vector<std::size_t> block_of;  // instruction index -> block index
  std::vector<bool> reachable;        // per block, from block 0

  [[nodiscard]] static Cfg build(const isa::Program& prog);

  /// Blocks from which execution can terminate (reach a halt or run off the
  /// program end). Complement = inescapable cycles.
  [[nodiscard]] std::vector<bool> can_terminate() const;
};

}  // namespace epi::lint
