#pragma once
// Diagnostic records shared by the static analyzer (lint.hpp) and the
// runtime memory sanitizer (sanitizer.hpp). A Finding is one defect,
// attributed to a pass, with the assembler's source-line tracking when the
// program came through epi::isa::assemble.

#include <cstddef>
#include <string>
#include <vector>

namespace epi::lint {

enum class Severity { Note, Warning, Error };

[[nodiscard]] constexpr const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

struct Finding {
  static constexpr std::size_t kNoInstr = ~std::size_t{0};

  std::string pass;                // e.g. "use-before-def", "bank-straddle"
  Severity severity = Severity::Warning;
  std::size_t instr = kNoInstr;    // instruction index, kNoInstr when none
  unsigned line = 0;               // 1-based source line, 0 when unknown
  std::string message;

  /// Render as "file:line: severity: message [pass]" -- the classic
  /// compiler-diagnostic shape, so editors and CI greps pick it up. When
  /// the program carries no source-line tracking (hand-built Programs),
  /// fall back to the instruction index as "file:<instr#i>:" rather than
  /// printing a misleading "file:0:"; with neither, just "file:".
  [[nodiscard]] std::string format(const std::string& file) const {
    std::string at;
    if (line > 0) {
      at = ":" + std::to_string(line);
    } else if (instr != kNoInstr) {
      at = ":<instr#" + std::to_string(instr) + ">";
    }
    return file + at + ": " + severity_name(severity) + ": " + message + " [" +
           pass + "]";
  }
};

/// True if any finding is at or above `s`.
[[nodiscard]] inline bool any_at_least(const std::vector<Finding>& fs, Severity s) {
  for (const auto& f : fs) {
    if (f.severity >= s) return true;
  }
  return false;
}

}  // namespace epi::lint
