#pragma once
// epi-verify: whole-workgroup static race/deadlock verification.
//
// The single-core passes (lint.hpp) see one program and one scratchpad.
// The paper's real hazards are cross-core: a producer stores into a
// neighbour's scratchpad through the flat (coreid<<20) address map and
// raises a flag there, and the consumer must wait on the flag before
// reading (the Listing-1/2 defect is reading without the wait). This
// verifier takes every core's assembled program, resolves remote
// store/load targets symbolically through arch::AddressMap (constant and
// constant-stride addresses, including coreid<<20 composition via
// COREID/LSL), builds a cross-core happens-before graph from flag
// writes/waits (STR/WAIT), barriers (BAR) and mutexes (TESTSET), and
// reports statically -- with no simulation:
//
//   pass                 severity  what it reports
//   -------------------  --------  ----------------------------------------
//   wg-race              error     read-after-remote-write with no
//                                  happens-before path between the writer's
//                                  store and the reader's load (Listing-1/2)
//   wg-flag-deadlock     error     WAIT on a flag word no core ever writes
//                                  (and the host did not preload)
//   wg-flag-cycle        error     circular flag-wait chains: releases
//                                  exist but every one is blocked behind
//                                  another unsatisfied wait
//   wg-barrier-mismatch  error     cores execute different numbers of BARs
//                                  (participation-count mismatch deadlock)
//   wg-out-of-group      error     store/load targeting a mapped core
//                                  outside this workgroup's rectangle
//   wg-unmapped-core     error     global address whose coreid maps to no
//                                  core on the mesh (and is not external)
//   wg-remote-extent     error     remote access past the target core's
//                                  32 KB scratchpad (or external window)
//   wg-remote-bank       warning   remote access straddling an 8 KB bank
//                                  boundary of the target scratchpad
//   wg-dma               error     .dma descriptor whose element size,
//                                  counts, alignment, or strided span is
//                                  invalid against the 32 KB scratchpad /
//                                  external window / group rectangle
//
// Analysis model (documented assumptions):
//   * addresses are resolved by constant propagation with the analyzed
//     core's COREID known; accesses whose address never becomes constant
//     (or constant-strided in a counted self-loop) are skipped;
//   * events are ordered per core by instruction index (the protocols the
//     paper uses are straight-line store/flag/wait sequences);
//   * accesses both covered by a common TESTSET-held mutex do not race
//     (lockset suppression); WAIT/TESTSET themselves are synchronisation
//     accesses and never reported as racing reads;
//   * store-store pairs are not reported (last-writer-wins is a payload
//     property, not the Listing-1/2 defect class);
//   * a `.dma` declaration is modelled as a blocking transfer anchored at
//     the first instruction at or below its source line: a Load event over
//     the source span and a Store event over the destination span join the
//     happens-before graph in program order, so the epi-shmem
//     put_with_signal idiom (DMA the payload, then raise the flag) verifies
//     clean and a get-before-signal consumer trips wg-race. Invalid
//     descriptors stay wg-dma findings and produce no events.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arch/address_map.hpp"
#include "arch/coords.hpp"
#include "isa/program.hpp"
#include "lint/finding.hpp"
#include "lint/lint.hpp"

namespace epi::lint {

/// One core's program, with a display name for diagnostics.
struct CoreProgram {
  isa::Program prog;
  std::string name;
};

struct WorkgroupSpec {
  unsigned rows = 1;
  unsigned cols = 1;
  /// Mesh anchor of the group's (0,0) core.
  arch::CoreCoord origin{0, 0};
  /// The mesh the group runs on (the E64G401 8x8 by default).
  arch::AddressMap map = arch::AddressMap::make({8, 8});
  /// Either one program replicated SPMD-style across every core, or
  /// rows*cols programs in row-major group order.
  std::vector<CoreProgram> cores;
  /// Global address ranges [lo, hi) the host initialises before launch:
  /// waits on flags inside them are considered satisfiable.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> host_preloaded;
  /// Options for the per-core passes (extent, code region, layout).
  LintOptions per_core;
  /// Also run the single-core passes on each distinct program.
  bool run_per_core_passes = true;
};

/// A finding attributed to one core of the group.
struct WgFinding {
  std::size_t core = 0;      // linear group index, row-major
  unsigned row = 0, col = 0; // group-relative coordinate
  std::string where;         // program display name
  Finding finding;

  /// "name[core R.C]:line: severity: message [pass]".
  [[nodiscard]] std::string format() const {
    return finding.format(where + "[core " + std::to_string(row) + "." +
                          std::to_string(col) + "]");
  }
};

[[nodiscard]] inline bool any_errors(const std::vector<WgFinding>& fs) {
  for (const auto& f : fs) {
    if (f.finding.severity >= Severity::Error) return true;
  }
  return false;
}

/// Run the whole-workgroup analysis. Findings are deterministic: ordered
/// by (core, instruction, pass). Throws std::invalid_argument when the
/// spec is malformed (shape does not fit the mesh, wrong program count).
[[nodiscard]] std::vector<WgFinding> verify_workgroup(const WorkgroupSpec& spec);

/// Assemble named sources into a spec: one source replicates SPMD across
/// the group, otherwise exactly rows*cols sources in row-major order.
/// Throws isa::AssemblyError (source) or std::invalid_argument (count).
[[nodiscard]] WorkgroupSpec assemble_workgroup(
    unsigned rows, unsigned cols,
    const std::vector<std::pair<std::string, std::string>>& named_sources,
    arch::CoreCoord origin = {0, 0});

}  // namespace epi::lint
