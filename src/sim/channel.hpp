#pragma once
// Single-producer / single-consumer channel for cross-domain PDES traffic.
//
// The parallel executor (sim/parallel.hpp) gives every ordered pair of
// domains its own channel, so each channel has exactly one producer (the
// worker thread advancing the source domain) and one consumer (the worker
// thread that flushes the destination domain's inbox at the window
// barrier). That ownership discipline is what makes a wait-free linked
// queue sufficient: push and pop each touch one atomic `next` pointer with
// release/acquire ordering, and no CAS loops or locks are ever needed.
//
// The channel is unbounded. Cross-domain messages are rare relative to
// intra-domain events (one per job forwarded across chips, one per
// completion notice), so a node allocation per message is noise; what
// matters is that a send never blocks a domain mid-window.

#include <atomic>
#include <cstdint>
#include <utility>

namespace epi::sim {

template <typename T>
class SpscChannel {
public:
  SpscChannel() : head_(new Node{}), tail_(head_) {}
  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;
  ~SpscChannel() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Producer side. Wait-free: allocate, link, publish.
  void push(T v) {
    Node* n = new Node{std::move(v)};
    tail_->next.store(n, std::memory_order_release);
    tail_ = n;
    pushed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer side. Returns false when the channel is (momentarily) empty.
  bool pop(T& out) {
    Node* next = head_->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    Node* old = head_;
    head_ = next;
    delete old;
    popped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Consumer-side emptiness probe.
  [[nodiscard]] bool empty() const {
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

  /// Lifetime message count (relaxed; exact once producers are quiescent).
  [[nodiscard]] std::uint64_t total_pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }

private:
  struct Node {
    T value{};
    std::atomic<Node*> next{nullptr};
  };

  Node* head_;  // consumer-owned; head_ is a consumed stub, head_->next is front
  Node* tail_;  // producer-owned
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
};

}  // namespace epi::sim
