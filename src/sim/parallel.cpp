#include "sim/parallel.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>
#include <thread>
#include <utility>

namespace epi::sim {

// Centralized sense-reversing barrier: a short spin (the common case --
// workers finish a window within microseconds of each other), then a futex
// wait through C++20 atomic wait so an oversubscribed or idle-tail run
// sleeps instead of burning the core another worker needs. The generation
// counter's release/acquire pairing is also what publishes the leader's
// plain writes (window_end_, done_) to the other workers.
class ParallelEngine::Barrier {
public:
  explicit Barrier(std::uint32_t parties) : parties_(parties) {}

  void arrive_and_wait() {
    if (parties_ == 1) return;  // inline sequential reference: no-op
    const std::uint32_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
      gen_.notify_all();
      return;
    }
    for (int spin = 0; spin < 256; ++spin) {
      if (gen_.load(std::memory_order_acquire) != gen) return;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    }
    while (gen_.load(std::memory_order_acquire) == gen) gen_.wait(gen);
  }

private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint32_t> gen_{0};
};

ParallelEngine::ParallelEngine(Cycles lookahead) : lookahead_(lookahead) {
  if (lookahead_ == 0) {
    throw std::invalid_argument("ParallelEngine: lookahead must be positive");
  }
}

ParallelEngine::~ParallelEngine() = default;

DomainId ParallelEngine::add_domain(Domain& d) {
  if (ran_) throw std::logic_error("ParallelEngine: add_domain after run()");
  domains_.push_back(&d);
  return static_cast<DomainId>(domains_.size() - 1);
}

void ParallelEngine::send(DomainId src, DomainId dst, Cycles at,
                          std::uint64_t key, std::function<void()> deliver) {
  if (src >= domains_.size() || dst >= domains_.size()) {
    throw std::out_of_range("ParallelEngine::send: unknown domain");
  }
  if (!ran_) {
    throw std::logic_error(
        "ParallelEngine::send outside run(): route pre-run traffic through "
        "an engine event on the source domain instead");
  }
  const Cycles now = domains_[src]->engine().now();
  if (at < now + lookahead_) {
    throw std::logic_error(
        "ParallelEngine::send violates the lookahead contract: deliver@" +
        std::to_string(at) + " < now " + std::to_string(now) + " + lookahead " +
        std::to_string(lookahead_));
  }
  const std::size_t ch = src * domains_.size() + dst;
  channels_[ch]->push(Msg{at, key, src, send_seq_[ch]++, std::move(deliver)});
}

void ParallelEngine::flush_inbound(DomainId dst) {
  const std::size_t k = domains_.size();
  std::vector<Msg>& box = inbox_[dst];
  box.clear();
  for (DomainId src = 0; src < k; ++src) {
    Msg m;
    while (channels_[src * k + dst]->pop(m)) box.push_back(std::move(m));
  }
  if (box.empty()) return;
  // Deterministic merge: delivery time, then the caller's stable tie-break
  // key, then source domain, then per-channel send order. Injection order
  // becomes engine insertion-sequence order, so same-cycle messages fire
  // exactly in this order on every worker count.
  std::sort(box.begin(), box.end(), [](const Msg& a, const Msg& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.key != b.key) return a.key < b.key;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  Engine& eng = domains_[dst]->engine();
  for (Msg& m : box) {
    eng.call_at(m.at, std::move(m.deliver));
    ++delivered_[dst];
  }
  box.clear();
}

Cycles ParallelEngine::domain_floor(DomainId d) {
  try {
    return domains_[d]->next_time();
  } catch (...) {
    if (!errors_[d]) errors_[d] = std::current_exception();
    failed_.store(true, std::memory_order_release);
    return Engine::kNever;
  }
}

void ParallelEngine::decide() {
  Cycles tmin = Engine::kNever;
  for (const WorkerSlot& s : slots_) tmin = std::min(tmin, s.min);
  if (tmin == Engine::kNever || failed_.load(std::memory_order_acquire)) {
    done_ = true;
    return;
  }
  stats_.horizon = tmin;
  ++stats_.windows;
  window_end_ =
      tmin > Engine::kNever - lookahead_ ? Engine::kNever : tmin + lookahead_;
}

void ParallelEngine::worker_loop(unsigned w, unsigned workers) {
  const auto k = static_cast<DomainId>(domains_.size());
  for (;;) {
    Cycles local_min = Engine::kNever;
    for (DomainId d = w; d < k; d += workers) {
      try {
        flush_inbound(d);
      } catch (...) {
        if (!errors_[d]) errors_[d] = std::current_exception();
        failed_.store(true, std::memory_order_release);
      }
      local_min = std::min(local_min, domain_floor(d));
    }
    slots_[w].min = local_min;
    barrier_->arrive_and_wait();
    if (w == 0) decide();
    barrier_->arrive_and_wait();
    if (done_) return;
    const Cycles limit = window_end_;
    for (DomainId d = w; d < k; d += workers) {
      try {
        domains_[d]->advance(limit);
      } catch (...) {
        if (!errors_[d]) errors_[d] = std::current_exception();
        failed_.store(true, std::memory_order_release);
      }
    }
    barrier_->arrive_and_wait();
  }
}

void ParallelEngine::run(unsigned workers) {
  if (ran_) throw std::logic_error("ParallelEngine: run() called twice");
  ran_ = true;
  const std::size_t k = domains_.size();
  if (k == 0) return;
  if (workers < 1) workers = 1;
  workers = static_cast<unsigned>(std::min<std::size_t>(workers, k));

  channels_.reserve(k * k);
  for (std::size_t i = 0; i < k * k; ++i) {
    channels_.push_back(std::make_unique<SpscChannel<Msg>>());
  }
  send_seq_.assign(k * k, 0);
  delivered_.assign(k, 0);
  errors_.assign(k, nullptr);
  inbox_.resize(k);
  slots_.assign(workers, WorkerSlot{});
  barrier_ = std::make_unique<Barrier>(workers);
  stats_.workers = workers;
  stats_.lookahead = lookahead_;

  if (workers == 1) {
    worker_loop(0, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) {
      pool.emplace_back([this, w, workers] { worker_loop(w, workers); });
    }
    worker_loop(0, workers);
    for (std::thread& t : pool) t.join();
  }

  // Each window crosses three barriers; the terminating pass crosses two.
  stats_.barriers = stats_.windows * 3 + 2;
  for (std::uint64_t n : delivered_) stats_.messages += n;
  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
  std::vector<std::string> stuck;
  for (Domain* d : domains_) {
    auto names = d->unfinished();
    stuck.insert(stuck.end(), std::make_move_iterator(names.begin()),
                 std::make_move_iterator(names.end()));
  }
  if (!stuck.empty()) {
    // Take the count first: argument evaluation order is unspecified, so
    // size() after the move could read an emptied vector.
    const std::size_t n = stuck.size();
    throw DeadlockError(n, std::move(stuck));
  }
}

}  // namespace epi::sim
