#pragma once
// Coroutine task types for simulation processes.
//
// Op<T> is a lazy coroutine: creating one does nothing until it is awaited
// (from another Op) or spawned as a root process on an Engine. Completion
// resumes the awaiting coroutine via symmetric transfer, so arbitrarily deep
// call chains cost no stack and no extra events.
//
// spawn() turns an Op<void> into a detached root process tracked by the
// Engine (for deadlock detection) and by the returned Process handle (for
// completion queries and error propagation). join() parks on the process's
// completion record and is woken by the finishing process itself -- no
// polling.
//
// All promise types route their frame storage through FramePool: simulation
// kernels churn through millions of short-lived frames (per-word stores,
// barrier legs, DMA chunk loops), and a size-class free list beats the
// global allocator by a wide margin on that pattern.

#include <coroutine>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"

namespace epi::sim {

template <typename T>
class Op;

namespace detail {

struct OpPromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr error{};

  // Frame storage comes from the pool; both deallocation signatures are
  // provided so whichever form the compiler selects finds the pool.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }

  struct FinalAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) const noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

template <typename T>
struct OpPromise : OpPromiseBase {
  // Deferred-construction storage avoids requiring T be default-constructible.
  alignas(T) unsigned char storage[sizeof(T)];
  bool has_value = false;

  Op<T> get_return_object() noexcept;
  template <typename U>
  void return_value(U&& v) {
    ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
    has_value = true;
  }
  T& value() noexcept { return *std::launder(reinterpret_cast<T*>(storage)); }
  ~OpPromise() {
    if (has_value) value().~T();
  }
};

template <>
struct OpPromise<void> : OpPromiseBase {
  Op<void> get_return_object() noexcept;
  void return_void() noexcept {}
};

}  // namespace detail

/// A lazily-started simulation sub-operation returning T.
template <typename T = void>
class [[nodiscard]] Op {
public:
  using promise_type = detail::OpPromise<T>;

  Op() noexcept = default;
  explicit Op(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  Op(Op&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Op& operator=(Op&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;
  ~Op() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return h_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;  // start the child; symmetric transfer
      }
      T await_resume() const {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
        if constexpr (!std::is_void_v<T>) return std::move(h.promise().value());
      }
    };
    return Awaiter{h_};
  }

  /// Release ownership of the coroutine handle (used by spawn()).
  std::coroutine_handle<promise_type> release() noexcept { return std::exchange(h_, nullptr); }

private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

namespace detail {
template <typename T>
Op<T> OpPromise<T>::get_return_object() noexcept {
  return Op<T>(std::coroutine_handle<OpPromise<T>>::from_promise(*this));
}
inline Op<void> OpPromise<void>::get_return_object() noexcept {
  return Op<void>(std::coroutine_handle<OpPromise<void>>::from_promise(*this));
}
}  // namespace detail

/// Shared completion record of a spawned root process. `joiners` holds the
/// coroutines parked in join(); the finishing root task wakes them at its
/// completion cycle.
struct ProcessState {
  bool done = false;
  std::exception_ptr error{};
  std::vector<std::coroutine_handle<>> joiners;
};

/// Handle to a detached root process.
class Process {
public:
  Process() = default;
  explicit Process(std::shared_ptr<ProcessState> st) noexcept : st_(std::move(st)) {}

  [[nodiscard]] bool valid() const noexcept { return st_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return st_ && st_->done; }
  [[nodiscard]] bool failed() const noexcept { return st_ && st_->error != nullptr; }

  /// Rethrow the process's uncaught exception, if any.
  void rethrow_if_error() const {
    if (st_ && st_->error) std::rethrow_exception(st_->error);
  }

  /// The shared completion record (join() parks on it).
  [[nodiscard]] const std::shared_ptr<ProcessState>& state() const noexcept {
    return st_;
  }

private:
  std::shared_ptr<ProcessState> st_;
};

namespace detail {

struct RootTask {
  struct promise_type {
    Engine* engine = nullptr;
    std::uint64_t token = 0;
    std::shared_ptr<ProcessState> st;

    static void* operator new(std::size_t n) { return FramePool::allocate(n); }
    static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
    static void operator delete(void* p, std::size_t) noexcept {
      FramePool::deallocate(p);
    }

    RootTask get_return_object() noexcept {
      return RootTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Not suspending at the final point destroys the frame automatically.
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept { finish(); }
    void unhandled_exception() noexcept {
      if (st) st->error = std::current_exception();
      finish();
    }
    ~promise_type() {
      if (engine) engine->note_process_finished(token);
    }

  private:
    /// Mark the process done and wake every join()er at the current cycle.
    void finish() noexcept {
      if (!st) return;
      st->done = true;
      if (engine) {
        for (auto h : st->joiners) engine->schedule_in(0, h);
      }
      st->joiners.clear();
    }
  };
  std::coroutine_handle<promise_type> h;
};

inline RootTask root_task(Op<void> op) { co_await std::move(op); }

}  // namespace detail

/// Launch `op` as a detached process, scheduled to start `start_delay`
/// cycles from now. The returned handle reports completion and errors.
/// `name` is a human-readable label ("core (2,3)", "dma0@(0,1)", "host")
/// surfaced by DeadlockError when the process hangs.
inline Process spawn(Engine& engine, Op<void> op, Cycles start_delay = 0,
                     std::string name = {}) {
  auto st = std::make_shared<ProcessState>();
  detail::RootTask t = detail::root_task(std::move(op));
  t.h.promise().engine = &engine;
  t.h.promise().token = engine.note_process_started(std::move(name));
  t.h.promise().st = st;
  engine.schedule_in(start_delay, t.h);
  return Process(st);
}

}  // namespace epi::sim
