#pragma once
// Conservative parallel discrete-event execution over spatial domains.
//
// The machine model partitions naturally at chip boundaries: a
// machine::Machine owns its own Engine, memory system, mesh and eLinks, so
// a multi-chip xMesh cluster is a set of independent event queues coupled
// only by inter-chip traffic. Every such coupling pays at least the xMesh
// bridge's minimum latency (noc::XMeshBridge::min_latency) -- and that
// bound is exactly the *lookahead* a conservative PDES scheme needs.
//
// Execution proceeds in synchronous windows (a YAWNS-style lower-bound-
// timestamp barrier):
//
//   1. every worker flushes its domains' inbound channels (messages from
//      the previous window), sorts them by (deliver time, tie-break key,
//      source domain, channel sequence) and injects them into the domain's
//      engine -- a deterministic merge;
//   2. every worker publishes the earliest pending work across its domains;
//      the leader reduces these to T_min and opens the window
//      [T_min, T_min + lookahead);
//   3. every domain advances through events strictly below the window end.
//      Cross-domain sends are routed through per-pair SPSC channels
//      (sim/channel.hpp) and, by the lookahead contract, deliver at or
//      after the window end -- so no domain ever receives a message from
//      its own past.
//
// Determinism: the window schedule is a pure function of domain state --
// the same sequence of (flush, T_min, advance) happens for ANY worker
// count, including the inline single-threaded reference (run(1) executes
// the identical loop with a 1-party barrier). Reports, traces and decision
// logs are therefore byte-identical across --parallel=N; the determinism
// goldens pin this.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/engine.hpp"

namespace epi::sim {

using DomainId = std::uint32_t;

/// One spatial partition of the simulated machine (in practice: one chip
/// plus everything host-side that drives it). The executor calls these
/// only from the domain's owning worker thread, phase-separated by
/// barriers, so implementations need no internal synchronisation.
class Domain {
public:
  virtual ~Domain() = default;

  /// The domain's event engine (inbound messages are injected here).
  virtual Engine& engine() = 0;

  /// Consume local work with timestamps strictly below `limit`: engine
  /// events plus any untimed host-side orchestration they unblock.
  /// Cross-domain effects must go through ParallelEngine::send.
  virtual void advance(Cycles limit) = 0;

  /// Earliest pending local work (engine event or host horizon), or
  /// Engine::kNever when the domain is idle and waiting only on peers.
  virtual Cycles next_time() = 0;

  /// Called once at global idle: names of work that never finished (empty
  /// when the domain terminated cleanly). Default: live sim processes.
  virtual std::vector<std::string> unfinished() {
    return engine().live_process_names();
  }
};

struct ParallelStats {
  unsigned workers = 0;           // worker threads actually used
  std::uint64_t windows = 0;      // synchronisation windows executed
  std::uint64_t barriers = 0;     // barrier crossings (3 per window)
  std::uint64_t messages = 0;     // cross-domain messages delivered
  Cycles lookahead = 0;           // window width (min cross-domain latency)
  Cycles horizon = 0;             // T_min of the last window opened
};

/// The conservative windowed executor. Domains are registered once, then
/// run(workers) drives them to global completion. Not reusable.
class ParallelEngine {
public:
  /// `lookahead` is the minimum cross-domain latency: every send must
  /// deliver at least this many cycles after the sender's current time.
  explicit ParallelEngine(Cycles lookahead);
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;
  ~ParallelEngine();

  /// Register a domain (not owned). Returns its id.
  DomainId add_domain(Domain& d);

  /// Route a cross-domain event: run `deliver` on domain `dst` at cycle
  /// `at`. Must be called from inside `src`'s advance (route pre-run
  /// traffic through an engine event on the source domain instead).
  /// Ties at the same cycle are broken by (key, src, send order), so give
  /// semantically concurrent messages distinct stable keys (e.g. global
  /// job ids). Throws if `at` violates the lookahead contract.
  void send(DomainId src, DomainId dst, Cycles at, std::uint64_t key,
            std::function<void()> deliver);

  /// Drive all domains to completion on `workers` threads (values < 2 run
  /// the identical window loop inline -- the sequential reference).
  /// Throws DeadlockError if domains report unfinished work at global
  /// idle; rethrows the first (lowest-domain) exception a domain raised.
  void run(unsigned workers);

  [[nodiscard]] const ParallelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Cycles lookahead() const noexcept { return lookahead_; }
  [[nodiscard]] std::size_t domains() const noexcept { return domains_.size(); }

private:
  struct Msg {
    Cycles at = 0;
    std::uint64_t key = 0;
    DomainId src = 0;
    std::uint64_t seq = 0;  // per-channel send order (last-resort tie-break)
    std::function<void()> deliver;
  };
  struct alignas(64) WorkerSlot {
    Cycles min = Engine::kNever;
  };

  class Barrier;

  [[nodiscard]] SpscChannel<Msg>& channel(DomainId src, DomainId dst) {
    return *channels_[src * domains_.size() + dst];
  }
  void flush_inbound(DomainId dst);
  [[nodiscard]] Cycles domain_floor(DomainId d);
  void worker_loop(unsigned w, unsigned workers);
  void decide();

  Cycles lookahead_;
  std::vector<Domain*> domains_;
  std::vector<std::unique_ptr<SpscChannel<Msg>>> channels_;  // K*K, row = src
  std::vector<std::uint64_t> send_seq_;                      // per channel
  std::vector<std::uint64_t> delivered_;                     // per domain
  std::vector<std::exception_ptr> errors_;                   // per domain
  std::vector<std::vector<Msg>> inbox_;                      // per-domain scratch
  std::vector<WorkerSlot> slots_;
  std::unique_ptr<Barrier> barrier_;
  Cycles window_end_ = 0;  // leader-written between barriers
  bool done_ = false;      // leader-written between barriers
  std::atomic<bool> failed_{false};
  ParallelStats stats_;
  bool ran_ = false;
};

}  // namespace epi::sim
