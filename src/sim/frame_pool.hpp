#pragma once
// Free-list recycler for coroutine frames.
//
// Simulation coroutines are allocation-heavy in a very particular way:
// every awaited sub-operation (a posted store, a flag wait, a DMA chunk, a
// barrier leg) materialises a short-lived Op<T> frame, so a single off-chip
// matmul or 63x63-core stencil run creates and destroys millions of frames
// drawn from a handful of distinct sizes (one per coroutine function).
// Routing the promise-level operator new/delete through a size-class free
// list turns almost every frame allocation into a pop from a vector, which
// measurably beats the general-purpose allocator on this workload (see
// BM_FrameAllocation in abl_simperf).
//
// Each block carries a small header recording its size class, so
// deallocation needs only the pointer and works regardless of whether the
// compiler calls the sized or unsized promise operator delete. Blocks above
// kMaxPooled bytes (rare: frames with big inline arrays) fall through to
// the global allocator.
//
// Under AddressSanitizer the pool forwards straight to the global
// allocator: recycling frames would hide use-after-free on dangling
// coroutine handles from the sanitizer, and the sanitized suite has caught
// exactly that class of bug before.
//
// The pool is thread_local: the parallel PDES executor advances each
// domain's engine on a fixed worker thread, so frame allocation and the
// overwhelming majority of frees stay on the owning thread's pool with no
// synchronisation. A block freed on a different thread (e.g. machine
// teardown on the main thread) simply parks on that thread's free list --
// blocks are plain operator-new storage with a self-describing size-class
// header, so which pool recycles them is immaterial.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define EPI_FRAME_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EPI_FRAME_POOL_PASSTHROUGH 1
#endif
#endif

namespace epi::sim {

class FramePool {
public:
  struct Stats {
    std::uint64_t allocated = 0;   // total frame allocations served
    std::uint64_t recycled = 0;    // of which came from a free list
    std::uint64_t released = 0;    // total frame deallocations
    std::uint64_t oversized = 0;   // fell through to the global allocator
    std::size_t cached_blocks = 0; // currently parked on free lists
  };

  static void* allocate(std::size_t n) { return inst().do_allocate(n); }
  static void deallocate(void* p) noexcept { inst().do_deallocate(p); }

  [[nodiscard]] static Stats stats() noexcept { return inst().stats_; }

  /// Return every cached block to the global allocator (benchmarks use this
  /// to measure cold-start allocation cost; stats counters are preserved).
  static void trim() noexcept { inst().do_trim(); }

private:
  // Frames are bucketed at kGranularity resolution up to kMaxPooled bytes.
  static constexpr std::size_t kHeader = 2 * sizeof(std::max_align_t);
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kMaxPooled = 4096;
  static constexpr std::size_t kClasses = kMaxPooled / kGranularity;
  static constexpr std::uint32_t kOversized = ~std::uint32_t{0};

  static FramePool& inst() noexcept {
    thread_local FramePool pool;
    return pool;
  }

  void* do_allocate(std::size_t n) {
    ++stats_.allocated;
    const std::size_t total = n + kHeader;
#if !defined(EPI_FRAME_POOL_PASSTHROUGH)
    if (total <= kMaxPooled) {
      const std::size_t cls = (total + kGranularity - 1) / kGranularity;
      auto& list = free_[cls - 1];
      std::byte* base;
      if (!list.empty()) {
        base = list.back();
        list.pop_back();
        ++stats_.recycled;
        --stats_.cached_blocks;
      } else {
        base = static_cast<std::byte*>(::operator new(cls * kGranularity));
      }
      *reinterpret_cast<std::uint32_t*>(base) = static_cast<std::uint32_t>(cls);
      return base + kHeader;
    }
#endif
    ++stats_.oversized;
    std::byte* base = static_cast<std::byte*>(::operator new(total));
    *reinterpret_cast<std::uint32_t*>(base) = kOversized;
    return base + kHeader;
  }

  void do_deallocate(void* p) noexcept {
    if (p == nullptr) return;
    ++stats_.released;
    std::byte* base = static_cast<std::byte*>(p) - kHeader;
    const std::uint32_t cls = *reinterpret_cast<std::uint32_t*>(base);
    if (cls == kOversized) {
      ::operator delete(base);
      return;
    }
    free_[cls - 1].push_back(base);
    ++stats_.cached_blocks;
  }

  void do_trim() noexcept {
    for (auto& list : free_) {
      for (std::byte* base : list) ::operator delete(base);
      list.clear();
    }
    stats_.cached_blocks = 0;
  }

  ~FramePool() { do_trim(); }

  std::vector<std::byte*> free_[kClasses];
  Stats stats_;
};

}  // namespace epi::sim
