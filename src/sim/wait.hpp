#pragma once
// Wait/notify primitives for simulation processes.
//
// WaitQueue is the condition-variable analogue: processes park on it and a
// notifier wakes them (at the current cycle). It underpins memory watches,
// DMA completion waits, and workgroup completion.

#include <coroutine>
#include <cstddef>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace epi::sim {

class WaitQueue {
public:
  explicit WaitQueue(Engine& e) noexcept : engine_(&e) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Awaitable: park until the next notify.
  auto wait() noexcept {
    struct Awaiter {
      WaitQueue& q;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { q.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Wake every parked process (they resume at the current cycle, in the
  /// order they parked).
  void notify_all() {
    for (auto h : waiters_) engine_->schedule_in(0, h);
    waiters_.clear();
  }

  void notify_one() {
    if (waiters_.empty()) return;
    engine_->schedule_in(0, waiters_.front());
    waiters_.erase(waiters_.begin());
  }

  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

private:
  Engine* engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Re-check `pred` every `interval` cycles until it holds. This models a
/// polling spin-loop where no event-driven wake-up is available.
template <typename Pred>
Op<void> poll_until(Engine& engine, Pred pred, Cycles interval = 4) {
  while (!pred()) co_await delay(engine, interval);
}

/// Park until `pred()` holds, re-evaluating on every notify of `q`.
/// This is the event-driven analogue of a flag spin: the memory system
/// notifies the queue when a watched location changes.
template <typename Pred>
Op<void> wait_on(WaitQueue& q, Pred pred) {
  while (!pred()) co_await q.wait();
}

/// Park until process `p` completes, re-checking every `interval` cycles.
inline Op<void> join(Engine& engine, Process p, Cycles interval = 64) {
  while (!p.done()) co_await delay(engine, interval);
  p.rethrow_if_error();
}

}  // namespace epi::sim
