#pragma once
// Wait/notify primitives for simulation processes.
//
// WaitQueue is the condition-variable analogue: processes park on it and a
// notifier wakes them (at the current cycle). It underpins memory watches,
// DMA completion waits, and workgroup completion. The parked handles live
// in a head-indexed vector, so notify_one is O(1) amortised instead of the
// O(n) front-erase it once was.

#include <coroutine>
#include <cstddef>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace epi::sim {

class WaitQueue {
public:
  explicit WaitQueue(Engine& e) noexcept : engine_(&e) {}
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  /// Awaitable: park until the next notify.
  auto wait() noexcept {
    struct Awaiter {
      WaitQueue& q;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { q.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Wake every parked process (they resume at the current cycle, in the
  /// order they parked).
  void notify_all() {
    for (std::size_t i = head_; i < waiters_.size(); ++i) {
      engine_->schedule_in(0, waiters_[i]);
    }
    waiters_.clear();
    head_ = 0;
  }

  /// Wake the process that has been parked longest (FIFO).
  void notify_one() {
    if (head_ == waiters_.size()) return;
    engine_->schedule_in(0, waiters_[head_++]);
    if (head_ == waiters_.size()) {
      waiters_.clear();
      head_ = 0;
    }
  }

  [[nodiscard]] std::size_t waiting() const noexcept {
    return waiters_.size() - head_;
  }

private:
  Engine* engine_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::size_t head_ = 0;  // waiters_[0, head_) already woken by notify_one
};

/// Re-check `pred` every `interval` cycles until it holds. This models a
/// polling spin-loop where no event-driven wake-up is available.
template <typename Pred>
Op<void> poll_until(Engine& engine, Pred pred, Cycles interval = 4) {
  while (!pred()) co_await delay(engine, interval);
}

/// Park until `pred()` holds, re-evaluating on every notify of `q`.
/// This is the event-driven analogue of a flag spin: the memory system
/// notifies the queue when a watched location changes.
template <typename Pred>
Op<void> wait_on(WaitQueue& q, Pred pred) {
  while (!pred()) co_await q.wait();
}

/// Awaitable returned by join(): parks on the process's completion record;
/// the finishing process wakes it at the completion cycle. No coroutine
/// frame and no polling -- one event per join, fired exactly on time.
struct JoinAwaiter {
  std::shared_ptr<ProcessState> st;
  [[nodiscard]] bool await_ready() const noexcept { return !st || st->done; }
  void await_suspend(std::coroutine_handle<> h) const { st->joiners.push_back(h); }
  void await_resume() const {
    if (st && st->error) std::rethrow_exception(st->error);
  }
};

/// Park until process `p` completes (event-driven: the joiner resumes at
/// `p`'s exact completion cycle). Joining an invalid Process is a no-op;
/// the process's uncaught exception, if any, rethrows here.
[[nodiscard]] inline JoinAwaiter join(Engine& /*engine*/, Process p) {
  return JoinAwaiter{p.state()};
}

}  // namespace epi::sim
