#pragma once
// Discrete-event simulation engine with cycle-resolution time.
//
// The engine is the substrate for the whole Epiphany model: every eCore,
// DMA channel and host action is a coroutine process whose suspensions are
// resumed by the event queue. Ordering is deterministic: events fire in
// (time, insertion-sequence) order, so every benchmark in this repository
// is reproducible bit-for-bit.

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

namespace epi::sim {

/// Simulated time, measured in device clock cycles (600 MHz on the
/// Epiphany-IV used in the paper; the clock rate lives in MachineConfig).
using Cycles = std::uint64_t;

/// Thrown by Engine::run() when the event queue drains while coroutine
/// processes are still alive (i.e. suspended on a wait that nothing will
/// ever satisfy). This catches synchronisation bugs in device kernels --
/// the simulated analogue of a hung flag-spin on real silicon. The message
/// names the stuck processes (spawn() attaches the names) so the hang is
/// attributable to a specific core or DMA channel.
class DeadlockError : public std::runtime_error {
public:
  explicit DeadlockError(std::size_t stuck, std::vector<std::string> names = {})
      : std::runtime_error(message(stuck, names)),
        stuck_processes(stuck),
        stuck_names(std::move(names)) {}
  std::size_t stuck_processes;
  std::vector<std::string> stuck_names;

private:
  static std::string message(std::size_t stuck, const std::vector<std::string>& names) {
    std::string m = "simulation deadlock: " + std::to_string(stuck) +
                    " process(es) suspended with an empty event queue";
    if (!names.empty()) {
      static constexpr std::size_t kShown = 8;
      m += " [stuck: ";
      for (std::size_t i = 0; i < names.size() && i < kShown; ++i) {
        if (i > 0) m += ", ";
        m += names[i];
      }
      if (names.size() > kShown) {
        m += ", +" + std::to_string(names.size() - kShown) + " more";
      }
      m += "]";
    }
    return m;
  }
};

class Engine {
public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Resume `h` at absolute time `t` (clamped to now()).
  void schedule_at(Cycles t, std::coroutine_handle<> h) {
    queue_.push(Event{t < now_ ? now_ : t, seq_++, h, {}});
  }

  /// Resume `h` after `dt` cycles.
  void schedule_in(Cycles dt, std::coroutine_handle<> h) {
    schedule_at(now_ + dt, h);
  }

  /// Run an arbitrary callback at absolute time `t`. Used by host-side
  /// orchestration (e.g. stopping a timed micro-benchmark window).
  void call_at(Cycles t, std::function<void()> fn) {
    queue_.push(Event{t < now_ ? now_ : t, seq_++, {}, std::move(fn)});
  }

  /// Drain the event queue. Throws DeadlockError (naming the stuck
  /// processes) if any remain suspended when the queue empties.
  void run() {
    drain(kNoLimit);
    if (!live_.empty()) throw DeadlockError(live_.size(), live_process_names());
  }

  /// Run until simulated time would exceed `t` (events at exactly `t` run).
  /// Pending processes are *not* a deadlock here; timed windows use this.
  void run_until(Cycles t) { drain(t); }

  /// Process a single event; returns false if the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    if (ev.h) {
      ev.h.resume();
    } else if (ev.fn) {
      ev.fn();
    }
    return true;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t live_processes() const noexcept { return live_.size(); }

  /// Human-readable names of every live (unfinished) process, in spawn
  /// order. Processes spawned without a name report as "<unnamed>".
  [[nodiscard]] std::vector<std::string> live_process_names() const {
    std::vector<std::string> out;
    out.reserve(live_.size());
    for (const auto& [token, name] : live_) {
      out.push_back(name.empty() ? "<unnamed>" : name);
    }
    return out;
  }

  // Process bookkeeping (used by spawn()/Process internals). The returned
  // token must be handed back to note_process_finished.
  [[nodiscard]] std::uint64_t note_process_started(std::string name = {}) {
    const std::uint64_t token = next_token_++;
    live_.emplace(token, std::move(name));
    return token;
  }
  void note_process_finished(std::uint64_t token) noexcept { live_.erase(token); }

private:
  static constexpr Cycles kNoLimit = ~Cycles{0};

  struct Event {
    Cycles t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void drain(Cycles limit) {
    while (!queue_.empty()) {
      if (queue_.top().t > limit) return;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.t;
      ++processed_;
      if (ev.h) {
        ev.h.resume();
      } else if (ev.fn) {
        ev.fn();
      }
    }
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  // Live root processes, keyed by start token (std::map: deterministic,
  // spawn-ordered iteration for deadlock diagnostics).
  std::map<std::uint64_t, std::string> live_;
  std::uint64_t next_token_ = 0;
};

/// Awaitable: suspend the current process for `d` cycles.
struct Delay {
  Engine& engine;
  Cycles d;
  [[nodiscard]] bool await_ready() const noexcept { return d == 0; }
  void await_suspend(std::coroutine_handle<> h) const { engine.schedule_in(d, h); }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline Delay delay(Engine& e, Cycles d) { return Delay{e, d}; }

}  // namespace epi::sim
