#pragma once
// Discrete-event simulation engine with cycle-resolution time.
//
// The engine is the substrate for the whole Epiphany model: every eCore,
// DMA channel and host action is a coroutine process whose suspensions are
// resumed by the event queue. Ordering is deterministic: events fire in
// (time, insertion-sequence) order, so every benchmark in this repository
// is reproducible bit-for-bit.
//
// Hot-path design (the simulator's own throughput bounds how large a
// modelled experiment is practical -- see abl_simperf):
//   * Events are 32 bytes: a coroutine handle plus an index into a side
//     table of callbacks. Coroutine resumes -- the overwhelming majority --
//     never pay for an embedded std::function.
//   * The queue is two-level: a near-future ring of kRingSpan per-cycle
//     buckets (almost every event is scheduled a few to a few hundred
//     cycles out) and an overflow binary heap for the far future. Within a
//     bucket events are appended and popped FIFO, which *is* insertion-
//     sequence order because sequence numbers increase monotonically; the
//     ring front and the heap top are merged by (time, seq) on every pop,
//     so the drain order is bit-identical to a single global heap.

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

namespace epi::sim {

/// Simulated time, measured in device clock cycles (600 MHz on the
/// Epiphany-IV used in the paper; the clock rate lives in MachineConfig).
using Cycles = std::uint64_t;

/// Thrown by Engine::run() when the event queue drains while coroutine
/// processes are still alive (i.e. suspended on a wait that nothing will
/// ever satisfy). This catches synchronisation bugs in device kernels --
/// the simulated analogue of a hung flag-spin on real silicon. The message
/// names the stuck processes (spawn() attaches the names) so the hang is
/// attributable to a specific core or DMA channel.
class DeadlockError : public std::runtime_error {
public:
  explicit DeadlockError(std::size_t stuck, std::vector<std::string> names = {})
      : std::runtime_error(message(stuck, names)),
        stuck_processes(stuck),
        stuck_names(std::move(names)) {}
  std::size_t stuck_processes;
  std::vector<std::string> stuck_names;

private:
  static std::string message(std::size_t stuck, const std::vector<std::string>& names) {
    std::string m = "simulation deadlock: " + std::to_string(stuck) +
                    " process(es) suspended with an empty event queue";
    if (!names.empty()) {
      static constexpr std::size_t kShown = 8;
      m += " [stuck: ";
      for (std::size_t i = 0; i < names.size() && i < kShown; ++i) {
        if (i > 0) m += ", ";
        m += names[i];
      }
      if (names.size() > kShown) {
        m += ", +" + std::to_string(names.size() - kShown) + " more";
      }
      m += "]";
    }
    return m;
  }
};

class Engine {
public:
  /// Sentinel time: "no event / never". Larger than any reachable cycle.
  static constexpr Cycles kNever = ~Cycles{0};

  Engine() : ring_(kRingSpan) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Resume `h` at absolute time `t` (clamped to now()).
  void schedule_at(Cycles t, std::coroutine_handle<> h) { push(t, h, 0); }

  /// Resume `h` after `dt` cycles.
  void schedule_in(Cycles dt, std::coroutine_handle<> h) {
    push(now_ + dt, h, 0);
  }

  /// Run an arbitrary callback at absolute time `t`. Used by host-side
  /// orchestration (e.g. stopping a timed micro-benchmark window) and by
  /// network pumps. The callable lives in a recycled side table so the
  /// common coroutine-resume event stays small.
  void call_at(Cycles t, std::function<void()> fn) {
    std::uint32_t idx;
    if (!fn_free_.empty()) {
      idx = fn_free_.back();
      fn_free_.pop_back();
      fns_[idx] = std::move(fn);
    } else {
      idx = static_cast<std::uint32_t>(fns_.size());
      fns_.push_back(std::move(fn));
    }
    push(t, {}, idx + 1);
  }

  /// Drain the event queue. Throws DeadlockError (naming the stuck
  /// processes) if any remain suspended when the queue empties.
  void run() {
    drain(kNoLimit);
    if (!live_.empty()) throw DeadlockError(live_.size(), live_process_names());
  }

  /// Run until simulated time would exceed `t` (events at exactly `t` run).
  /// Pending processes are *not* a deadlock here; timed windows use this.
  void run_until(Cycles t) { drain(t); }

  /// Process a single event; returns false if the queue is empty.
  bool step() {
    Event ev;
    if (!pop(ev, kNoLimit)) return false;
    dispatch(ev);
    return true;
  }

  /// Process a single event with time strictly below `limit`; returns false
  /// if the queue is empty or the next event lies at or beyond `limit`.
  /// This is the conservative-window primitive: a PDES domain may only
  /// consume events below the current window end.
  bool step_below(Cycles limit) {
    if (limit == 0) return false;
    Event ev;
    if (!pop(ev, limit - 1)) return false;
    dispatch(ev);
    return true;
  }

  /// Time of the earliest pending event, or kNever when the queue is empty.
  /// Non-const: advances the ring scan cursor (pure lower-bound cache).
  [[nodiscard]] Cycles next_event_time() {
    Bucket* b = ring_front();
    const bool have_heap = !heap_.empty();
    if (b == nullptr) return have_heap ? heap_.top().t : kNever;
    const Cycles rt = b->ev[b->head].t;
    return have_heap && heap_.top().t < rt ? heap_.top().t : rt;
  }

  [[nodiscard]] bool empty() const noexcept {
    return ring_count_ == 0 && heap_.empty();
  }
  [[nodiscard]] std::size_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t live_processes() const noexcept { return live_.size(); }

  /// Human-readable names of every live (unfinished) process, in spawn
  /// order. Processes spawned without a name report as "<unnamed>".
  [[nodiscard]] std::vector<std::string> live_process_names() const {
    std::vector<std::string> out;
    out.reserve(live_.size());
    for (const auto& [token, name] : live_) {
      out.push_back(name.empty() ? "<unnamed>" : name);
    }
    return out;
  }

  // Process bookkeeping (used by spawn()/Process internals). The returned
  // token must be handed back to note_process_finished.
  [[nodiscard]] std::uint64_t note_process_started(std::string name = {}) {
    const std::uint64_t token = next_token_++;
    live_.emplace(token, std::move(name));
    return token;
  }
  void note_process_finished(std::uint64_t token) noexcept { live_.erase(token); }

private:
  static constexpr Cycles kNoLimit = kNever;
  /// Near-future window, in cycles (power of two). Delays beyond it land in
  /// the overflow heap; nearly all simulation delays (store issue, mesh and
  /// eLink occupancies, barrier hops, DMA chunk drains) are far shorter.
  static constexpr std::size_t kRingSpan = 4096;
  static constexpr std::size_t kRingMask = kRingSpan - 1;
  /// Cap on the drained-bucket vectors kept for reuse (bounds idle memory).
  static constexpr std::size_t kSpareMax = 64;

  struct Event {
    Cycles t = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> h{};  // null => callback event
    std::uint32_t fn = 0;         // 1-based index into fns_ when h is null
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  /// One ring bucket. Invariant: all queued events in a bucket share the
  /// same absolute time (two times mapping to one bucket differ by at least
  /// kRingSpan and cannot both be inside the near-future window), so popping
  /// from `head` is exact (time, seq) order.
  struct Bucket {
    std::vector<Event> ev;
    std::size_t head = 0;
  };

  void push(Cycles t, std::coroutine_handle<> h, std::uint32_t fn) {
    if (t < now_) t = now_;
    const Event ev{t, seq_++, h, fn};
    if (t - now_ < kRingSpan) {
      Bucket& b = ring_[t & kRingMask];
      // First event in a never-used bucket: adopt a drained bucket's vector
      // so steady-state pushes never reallocate (activity shifts through
      // the ring as simulated time advances; without recycling each newly
      // touched bucket would regrow its storage from zero).
      if (b.ev.capacity() == 0 && !spare_.empty()) {
        b.ev = std::move(spare_.back());
        spare_.pop_back();
      }
      b.ev.push_back(ev);
      ++ring_count_;
      if (t < ring_scan_) ring_scan_ = t;
    } else {
      heap_.push(ev);
    }
  }

  /// Bucket holding the earliest ring event, or nullptr when the ring is
  /// empty. All unfired ring events lie in [now_, now_ + kRingSpan), so a
  /// forward scan terminates within the window; `ring_scan_` (a lower bound
  /// on the earliest ring event, never above it) makes the scan O(1)
  /// amortised per cycle of simulated-time advance.
  [[nodiscard]] Bucket* ring_front() {
    if (ring_count_ == 0) return nullptr;
    for (Cycles c = ring_scan_ < now_ ? now_ : ring_scan_;; ++c) {
      Bucket& b = ring_[c & kRingMask];
      if (b.head < b.ev.size()) {
        ring_scan_ = c;
        return &b;
      }
    }
  }

  /// Pop the next event in (time, seq) order, merging the ring front with
  /// the heap top. Returns false (and leaves state untouched) if the queue
  /// is empty or the next event lies beyond `limit`.
  bool pop(Event& out, Cycles limit) {
    Bucket* b = ring_front();
    const bool have_heap = !heap_.empty();
    if (b == nullptr && !have_heap) return false;
    bool from_ring;
    if (b == nullptr) {
      from_ring = false;
    } else if (!have_heap) {
      from_ring = true;
    } else {
      const Event& r = b->ev[b->head];
      const Event& h = heap_.top();
      from_ring = r.t < h.t || (r.t == h.t && r.seq < h.seq);
    }
    const Event& next = from_ring ? b->ev[b->head] : heap_.top();
    if (next.t > limit) return false;
    out = next;
    if (from_ring) {
      if (++b->head == b->ev.size()) {
        b->ev.clear();
        b->head = 0;
        if (spare_.size() < kSpareMax && b->ev.capacity() != 0) {
          spare_.push_back(std::move(b->ev));
        }
      }
      --ring_count_;
    } else {
      heap_.pop();
    }
    now_ = out.t;
    ++processed_;
    return true;
  }

  void dispatch(const Event& ev) {
    if (ev.h) {
      ev.h.resume();
    } else {
      const std::uint32_t idx = ev.fn - 1;
      auto fn = std::move(fns_[idx]);
      fns_[idx] = nullptr;
      fn_free_.push_back(idx);
      fn();
    }
  }

  void drain(Cycles limit) {
    Event ev;
    while (pop(ev, limit)) dispatch(ev);
  }

  std::vector<Bucket> ring_;
  std::vector<std::vector<Event>> spare_;  // drained bucket storage for reuse
  std::size_t ring_count_ = 0;
  Cycles ring_scan_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<std::function<void()>> fns_;
  std::vector<std::uint32_t> fn_free_;
  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  // Live root processes, keyed by start token (std::map: deterministic,
  // spawn-ordered iteration for deadlock diagnostics).
  std::map<std::uint64_t, std::string> live_;
  std::uint64_t next_token_ = 0;
};

/// Awaitable: suspend the current process for `d` cycles.
struct Delay {
  Engine& engine;
  Cycles d;
  [[nodiscard]] bool await_ready() const noexcept { return d == 0; }
  void await_suspend(std::coroutine_handle<> h) const { engine.schedule_in(d, h); }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline Delay delay(Engine& e, Cycles d) { return Delay{e, d}; }

}  // namespace epi::sim
