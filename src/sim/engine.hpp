#pragma once
// Discrete-event simulation engine with cycle-resolution time.
//
// The engine is the substrate for the whole Epiphany model: every eCore,
// DMA channel and host action is a coroutine process whose suspensions are
// resumed by the event queue. Ordering is deterministic: events fire in
// (time, insertion-sequence) order, so every benchmark in this repository
// is reproducible bit-for-bit.

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace epi::sim {

/// Simulated time, measured in device clock cycles (600 MHz on the
/// Epiphany-IV used in the paper; the clock rate lives in MachineConfig).
using Cycles = std::uint64_t;

/// Thrown by Engine::run() when the event queue drains while coroutine
/// processes are still alive (i.e. suspended on a wait that nothing will
/// ever satisfy). This catches synchronisation bugs in device kernels --
/// the simulated analogue of a hung flag-spin on real silicon.
class DeadlockError : public std::runtime_error {
public:
  explicit DeadlockError(std::size_t stuck)
      : std::runtime_error("simulation deadlock: " + std::to_string(stuck) +
                           " process(es) suspended with an empty event queue"),
        stuck_processes(stuck) {}
  std::size_t stuck_processes;
};

class Engine {
public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Resume `h` at absolute time `t` (clamped to now()).
  void schedule_at(Cycles t, std::coroutine_handle<> h) {
    queue_.push(Event{t < now_ ? now_ : t, seq_++, h, {}});
  }

  /// Resume `h` after `dt` cycles.
  void schedule_in(Cycles dt, std::coroutine_handle<> h) {
    schedule_at(now_ + dt, h);
  }

  /// Run an arbitrary callback at absolute time `t`. Used by host-side
  /// orchestration (e.g. stopping a timed micro-benchmark window).
  void call_at(Cycles t, std::function<void()> fn) {
    queue_.push(Event{t < now_ ? now_ : t, seq_++, {}, std::move(fn)});
  }

  /// Drain the event queue. Throws DeadlockError if processes remain
  /// suspended when the queue empties.
  void run() {
    drain(kNoLimit);
    if (live_processes_ > 0) throw DeadlockError(live_processes_);
  }

  /// Run until simulated time would exceed `t` (events at exactly `t` run).
  /// Pending processes are *not* a deadlock here; timed windows use this.
  void run_until(Cycles t) { drain(t); }

  /// Process a single event; returns false if the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    if (ev.h) {
      ev.h.resume();
    } else if (ev.fn) {
      ev.fn();
    }
    return true;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t live_processes() const noexcept { return live_processes_; }

  // Process bookkeeping (used by spawn()/Process internals).
  void note_process_started() noexcept { ++live_processes_; }
  void note_process_finished() noexcept { --live_processes_; }

private:
  static constexpr Cycles kNoLimit = ~Cycles{0};

  struct Event {
    Cycles t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void drain(Cycles limit) {
    while (!queue_.empty()) {
      if (queue_.top().t > limit) return;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.t;
      ++processed_;
      if (ev.h) {
        ev.h.resume();
      } else if (ev.fn) {
        ev.fn();
      }
    }
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t live_processes_ = 0;
};

/// Awaitable: suspend the current process for `d` cycles.
struct Delay {
  Engine& engine;
  Cycles d;
  [[nodiscard]] bool await_ready() const noexcept { return d == 0; }
  void await_suspend(std::coroutine_handle<> h) const { engine.schedule_in(d, h); }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline Delay delay(Engine& e, Cycles d) { return Delay{e, d}; }

}  // namespace epi::sim
