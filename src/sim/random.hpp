#pragma once
// Deterministic PRNG for workload generation. SplitMix64 + xoshiro256**:
// fast, seedable, and identical across platforms, so every test and bench
// that uses random data is reproducible.

#include <cstdint>

namespace epi::sim {

class Rng {
public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) noexcept { return next_u64() % n; }

  /// Uniform float in [lo, hi).
  float next_float(float lo = 0.0f, float hi = 1.0f) noexcept {
    const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    return static_cast<float>(lo + u * (hi - lo));
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace epi::sim
