#pragma once
// A small two-pass assembler for the eCore ISA subset. Syntax follows the
// Epiphany assembly the paper quotes, lower-case, one instruction per line:
//
//     mov   r7, #40          ; immediates take '#'
//     loop:                  ; labels end with ':'
//     ldrd  r16, [r0], #8    ; postmodify doubleword load
//     fmadd r8, r20, r2
//     str   r8, [r1, #0]
//     sub   r7, r7, #1
//     bne   loop
//     halt
//
// ';' starts a comment. Throws AssemblyError with line number and message
// on any malformed input.

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace epi::isa {

class AssemblyError : public std::runtime_error {
public:
  AssemblyError(unsigned line, const std::string& msg)
      : std::runtime_error("line " + std::to_string(line) + ": " + msg), line(line) {}
  unsigned line;
};

/// Assemble `text` into a Program.
[[nodiscard]] Program assemble(std::string_view text);

}  // namespace epi::isa
