#include "isa/interpreter.hpp"

#include <algorithm>
#include <cstring>

namespace epi::isa {

namespace {

/// Per-register availability times for the two hazard classes.
struct Scoreboard {
  // Earliest cycle the register may be consumed by an FPU op or a store
  // data operand (FPU results impose the 5-cycle window).
  std::array<std::uint64_t, RegFile::kCount> fpu_ready{};
  // Earliest cycle the register may be consumed by anything (load-use and
  // plain IALU dependencies).
  std::array<std::uint64_t, RegFile::kCount> ready{};
};

std::uint32_t load32(std::span<const std::byte> mem, std::size_t addr, std::size_t pc) {
  if (addr + 4 > mem.size()) throw ExecutionError(pc, "load out of memory bounds");
  std::uint32_t v;
  std::memcpy(&v, mem.data() + addr, 4);
  return v;
}

void store32(std::span<std::byte> mem, std::size_t addr, std::uint32_t v, std::size_t pc) {
  if (addr + 4 > mem.size()) throw ExecutionError(pc, "store out of memory bounds");
  std::memcpy(mem.data() + addr, &v, 4);
}

}  // namespace

ExecStats execute(const Program& prog, RegFile& regs, std::span<std::byte> memory,
                  const InterpreterConfig& cfg) {
  ExecStats st;
  Scoreboard sb;
  bool z_flag = false;

  std::size_t pc = 0;
  std::uint64_t cycle = 0;
  // The issue slots: last cycle each was used (at most one per cycle each).
  std::uint64_t fpu_slot_free = 0;
  std::uint64_t ialu_slot_free = 0;
  std::uint64_t prev_issue = 0;  // in-order: next instr issues no earlier

  while (true) {
    if (pc >= prog.size()) throw ExecutionError(pc, "fell off the end (missing halt?)");
    if (st.instructions > cfg.max_instructions) {
      throw ExecutionError(pc, "instruction budget exceeded (infinite loop?)");
    }
    const Instruction& ins = prog.code[pc];
    if (ins.op == Opcode::Halt) {
      st.cycles = std::max({cycle, fpu_slot_free, ialu_slot_free});
      return st;
    }

    // ---- compute the earliest legal issue cycle -------------------------
    // `earliest` collects ordinary dependencies; `hazard_floor` the FPU
    // result-window constraints, accounted separately so a hazard is only
    // charged when it actually delays issue beyond the structural limits.
    std::uint64_t earliest = prev_issue;
    std::uint64_t hazard_floor = 0;
    const bool fpu = is_fpu(ins.op);

    const auto need = [&](unsigned r, bool as_fpu_or_storedata) {
      earliest = std::max(earliest, sb.ready[r]);
      if (as_fpu_or_storedata) {
        hazard_floor = std::max(hazard_floor, sb.fpu_ready[r]);
      }
    };

    switch (ins.op) {
      case Opcode::Fmadd:
        need(ins.rd, true);  // accumulator is also a source
        [[fallthrough]];
      case Opcode::Fmul:
      case Opcode::Fadd:
      case Opcode::Fsub:
        need(ins.rn, true);
        need(ins.rm, true);
        if (ins.op != Opcode::Fmadd) need(ins.rd, true);  // WAW on result
        break;
      case Opcode::MovReg:
        need(ins.rn, false);
        break;
      case Opcode::Add:
      case Opcode::Sub:
        need(ins.rn, false);
        if (!ins.has_imm) need(ins.rm, false);
        break;
      case Opcode::Ldr:
      case Opcode::Ldrd:
        need(ins.rn, false);
        break;
      case Opcode::Str:
        need(ins.rn, false);
        need(ins.rd, true);  // store data waits out the FPU window
        break;
      case Opcode::Strd:
        need(ins.rn, false);
        need(ins.rd, true);
        need(ins.rd + 1, true);
        break;
      case Opcode::Lsl:
        need(ins.rn, false);
        break;
      case Opcode::Wait:
        need(ins.rn, false);
        break;
      case Opcode::Testset:
        need(ins.rn, false);
        break;
      case Opcode::MovImm:
      case Opcode::CoreId:
      case Opcode::Bar:
      case Opcode::B:
      case Opcode::Bne:
      case Opcode::Beq:
      case Opcode::Halt:
        break;
    }

    // Slot structural hazard: one FPU and one IALU issue per cycle.
    std::uint64_t issue = earliest;
    if (fpu) {
      issue = std::max(issue, fpu_slot_free);
    } else {
      issue = std::max(issue, ialu_slot_free);
    }
    if (hazard_floor > issue) {
      st.hazard_stalls += hazard_floor - issue;
      issue = hazard_floor;
    }
    if (fpu) {
      fpu_slot_free = issue + 1;
    } else {
      ialu_slot_free = issue + 1;
    }
    prev_issue = issue;
    cycle = issue;

    // ---- execute functionally -------------------------------------------
    bool branch_taken = false;
    std::size_t next_pc = pc + 1;
    switch (ins.op) {
      case Opcode::Fmadd:
        regs.set_f(ins.rd, regs.f(ins.rd) + regs.f(ins.rn) * regs.f(ins.rm));
        st.flops += 2;
        break;
      case Opcode::Fmul:
        regs.set_f(ins.rd, regs.f(ins.rn) * regs.f(ins.rm));
        st.flops += 1;
        break;
      case Opcode::Fadd:
        regs.set_f(ins.rd, regs.f(ins.rn) + regs.f(ins.rm));
        st.flops += 1;
        break;
      case Opcode::Fsub:
        regs.set_f(ins.rd, regs.f(ins.rn) - regs.f(ins.rm));
        st.flops += 1;
        break;
      case Opcode::MovImm:
        regs.set_i(ins.rd, ins.imm);
        break;
      case Opcode::MovReg:
        regs.set_raw(ins.rd, regs.raw(ins.rn));
        break;
      case Opcode::Add: {
        const std::int32_t b = ins.has_imm ? ins.imm : regs.i(ins.rm);
        regs.set_i(ins.rd, regs.i(ins.rn) + b);
        z_flag = regs.i(ins.rd) == 0;
        break;
      }
      case Opcode::Sub: {
        const std::int32_t b = ins.has_imm ? ins.imm : regs.i(ins.rm);
        regs.set_i(ins.rd, regs.i(ins.rn) - b);
        z_flag = regs.i(ins.rd) == 0;
        break;
      }
      case Opcode::Ldr:
      case Opcode::Ldrd: {
        const std::uint32_t base = static_cast<std::uint32_t>(regs.i(ins.rn));
        const std::size_t addr =
            ins.postmodify ? base : base + static_cast<std::uint32_t>(ins.imm);
        const std::size_t span = ins.op == Opcode::Ldrd ? 8 : 4;
        if (cfg.solo_sync && addr + span > memory.size()) {
          // Remote scratchpad in solo mode: no peer image, read as zero.
          regs.set_raw(ins.rd, 0);
          if (ins.op == Opcode::Ldrd) regs.set_raw(ins.rd + 1, 0);
        } else {
          regs.set_raw(ins.rd, load32(memory, addr, pc));
          if (ins.op == Opcode::Ldrd) {
            regs.set_raw(ins.rd + 1, load32(memory, addr + 4, pc));
          }
        }
        if (ins.postmodify) regs.set_i(ins.rn, regs.i(ins.rn) + ins.imm);
        break;
      }
      case Opcode::Str:
      case Opcode::Strd: {
        const std::uint32_t base = static_cast<std::uint32_t>(regs.i(ins.rn));
        const std::size_t addr =
            ins.postmodify ? base : base + static_cast<std::uint32_t>(ins.imm);
        const std::size_t span = ins.op == Opcode::Strd ? 8 : 4;
        if (cfg.solo_sync && addr + span > memory.size()) {
          // Remote scratchpad in solo mode: drop the store.
        } else {
          store32(memory, addr, regs.raw(ins.rd), pc);
          if (ins.op == Opcode::Strd) {
            store32(memory, addr + 4, regs.raw(ins.rd + 1), pc);
          }
        }
        if (ins.postmodify) regs.set_i(ins.rn, regs.i(ins.rn) + ins.imm);
        break;
      }
      case Opcode::B:
        branch_taken = true;
        break;
      case Opcode::Bne:
        branch_taken = !z_flag;
        break;
      case Opcode::Beq:
        branch_taken = z_flag;
        break;
      case Opcode::CoreId:
        regs.set_raw(ins.rd, cfg.core_id);
        break;
      case Opcode::Lsl:
        regs.set_raw(ins.rd, regs.raw(ins.rn)
                                 << static_cast<std::uint32_t>(ins.imm & 31));
        break;
      case Opcode::Wait: {
        const std::uint32_t base = regs.raw(ins.rn);
        const bool in_bounds = static_cast<std::size_t>(base) + 4 <= memory.size();
        const std::uint32_t got = in_bounds ? load32(memory, base, pc) : 0;
        if (!(in_bounds && got == static_cast<std::uint32_t>(ins.imm)) &&
            !cfg.solo_sync) {
          throw ExecutionError(pc, "wait condition never satisfied "
                                   "(flag not set; solo execution)");
        }
        break;
      }
      case Opcode::Bar:
        if (!cfg.solo_sync) {
          throw ExecutionError(pc, "bar requires workgroup execution "
                                   "(solo interpreter cannot rendezvous)");
        }
        break;
      case Opcode::Testset: {
        const std::uint32_t base = regs.raw(ins.rn);
        const std::size_t addr = base + static_cast<std::uint32_t>(ins.imm);
        std::uint32_t old = 0;
        if (addr + 4 <= memory.size()) {
          old = load32(memory, addr, pc);
          if (old == 0) store32(memory, addr, 1, pc);
        } else if (!cfg.solo_sync) {
          throw ExecutionError(pc, "testset out of memory bounds");
        }
        regs.set_raw(ins.rd, old);
        z_flag = old == 0;
        break;
      }
      case Opcode::Halt:
        break;  // handled above
    }
    if (branch_taken) {
      next_pc = static_cast<std::size_t>(ins.imm);
      // Taken branch flushes: nothing issues for the penalty window.
      const std::uint64_t resume = issue + 1 + cfg.taken_branch_penalty;
      fpu_slot_free = std::max(fpu_slot_free, resume);
      ialu_slot_free = std::max(ialu_slot_free, resume);
      prev_issue = std::max(prev_issue, resume);
      st.branch_stalls += cfg.taken_branch_penalty;
    }

    // ---- writeback availability ------------------------------------------
    switch (ins.op) {
      case Opcode::Fmadd:
      case Opcode::Fmul:
      case Opcode::Fadd:
      case Opcode::Fsub:
        sb.ready[ins.rd] = issue + 1;
        sb.fpu_ready[ins.rd] = issue + cfg.fpu_result_latency;
        ++st.fpu_ops;
        break;
      case Opcode::Ldr:
        sb.ready[ins.rd] = issue + cfg.load_latency;
        sb.fpu_ready[ins.rd] = issue + cfg.load_latency;
        break;
      case Opcode::Ldrd:
        sb.ready[ins.rd] = sb.ready[ins.rd + 1] = issue + cfg.load_latency;
        sb.fpu_ready[ins.rd] = sb.fpu_ready[ins.rd + 1] = issue + cfg.load_latency;
        break;
      case Opcode::MovImm:
      case Opcode::MovReg:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::CoreId:
      case Opcode::Lsl:
        sb.ready[ins.rd] = issue + 1;
        sb.fpu_ready[ins.rd] = issue + 1;
        break;
      case Opcode::Testset:
        sb.ready[ins.rd] = issue + cfg.load_latency;
        sb.fpu_ready[ins.rd] = issue + cfg.load_latency;
        break;
      default:
        break;
    }
    if ((ins.op == Opcode::Ldr || ins.op == Opcode::Ldrd || ins.op == Opcode::Str ||
         ins.op == Opcode::Strd) &&
        ins.postmodify) {
      sb.ready[ins.rn] = issue + 1;
      sb.fpu_ready[ins.rn] = issue + 1;
    }

    ++st.instructions;
    pc = next_pc;
  }
}

}  // namespace epi::isa
