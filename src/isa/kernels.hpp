#pragma once
// Reconstructions of the paper's hand-scheduled assembly kernels, emitted
// as ISA-subset programs. The paper describes both kernels instruction by
// instruction (sections VI and VII); these generators rebuild them so the
// schedule models in core/ can be *validated by execution*:
//
//   * the 5-point stencil stripe: two 22-register row buffers, two
//     5-accumulator sets used alternately, 25-FMADD runs with loads/stores/
//     clears dual-issued into the spare integer slots, B-row values
//     progressively replacing the T-row registers -- 200 FMADDs per
//     two-row pass in ~205 cycles;
//   * the matmul macro: one element of A times a 32-element row of B,
//     32 FMADDs with the next B row's 16 doubleword loads and the next A
//     element interleaved -- 64 flops in 32 cycles.
//
// Memory layouts are documented on each generator.

#include <string>

#include "isa/program.hpp"
#include "util/reference.hpp"

namespace epi::isa {

/// Register allocation shared by the generated kernels (the paper's, with
/// the four "reserved for constants" registers holding stencil weights).
struct StencilRegs {
  // r0: input row cursor, r1: output cursor, r7: loop counter,
  // r13: zero constant, r2-r6: the five weights (T, L, C, R, B).
  // r8-r12: accumulator set A; r15-r19: accumulator set B.
  // r20-r41 and r42-r63: the two 22-register row buffers.
};

/// Generate the stencil stripe kernel.
///
/// Memory layout (byte addresses inside the image passed to execute()):
///   input:  (2*row_pairs + 2) rows x 22 floats, row-major at offset 0
///           (20 interior points per row plus one boundary point each side);
///   output: dense (2*row_pairs) rows x 20 floats at `out_offset`, preceded
///           by a 5-float scratch pad absorbing the store-lag prologue.
///
/// `out_offset` must point at the pad; results start 20 bytes later.
[[nodiscard]] std::string generate_stencil_stripe(unsigned row_pairs,
                                                  const util::StencilWeights& w,
                                                  std::uint32_t out_offset);

/// Byte size the stencil kernel needs: input rows + pad + dense output.
[[nodiscard]] constexpr std::uint32_t stencil_stripe_memory_bytes(unsigned row_pairs,
                                                                  std::uint32_t out_offset) {
  return out_offset + (5 + 2 * row_pairs * 20) * 4;
}

/// Generate `c_rows` rows of the matmul kernel for 32x32 operands:
/// C[r][*] = sum_e A[r][e] * B[e][*].
///
/// Memory layout: A (32x32 floats) at offset 0, B (32x32) at 0x1000,
/// C (32x32) at 0x2000 -- the shape of the paper's bank placement.
[[nodiscard]] std::string generate_matmul_rows(unsigned c_rows);

}  // namespace epi::isa
