#include "isa/kernels.hpp"

#include <bit>
#include <sstream>

namespace epi::isa {

namespace {

/// Emit "mov rX, #<bit pattern of f>" (the ISA subset takes 32-bit
/// immediates in one MOV; real silicon pairs MOV/MOVT, which changes
/// nothing dual-issue-wise since both pair with FPU slots).
void mov_float(std::ostream& os, unsigned reg, float f) {
  os << "  mov r" << reg << ", #0x" << std::hex << std::bit_cast<std::uint32_t>(f)
     << std::dec << "\n";
}

}  // namespace

std::string generate_stencil_stripe(unsigned row_pairs, const util::StencilWeights& w,
                                    std::uint32_t out_offset) {
  constexpr unsigned kW = 22;          // input row: 20 interior + 2 boundary
  constexpr unsigned kRowBytes = kW * 4;
  // Register map (see kernels.hpp).
  constexpr unsigned kWT = 2, kWL = 3, kWC = 4, kWR = 5, kWB = 6;
  const unsigned acc_set[2][5] = {{8, 9, 10, 11, 12}, {15, 16, 17, 18, 19}};
  constexpr unsigned kBuf0 = 20;  // r20..r41
  constexpr unsigned kBuf1 = 42;  // r42..r63

  std::ostringstream os;
  os << "; 5-point stencil stripe, two-row pass (paper section VI)\n";
  mov_float(os, kWT, w.top);
  mov_float(os, kWL, w.left);
  mov_float(os, kWC, w.centre);
  mov_float(os, kWR, w.right);
  mov_float(os, kWB, w.bottom);
  os << "  mov r13, #0\n";
  for (int s = 0; s < 2; ++s) {
    for (unsigned k = 0; k < 5; ++k) os << "  mov r" << acc_set[s][k] << ", r13\n";
  }
  // Pre-load the first two input rows into the buffers (11 ldrd each).
  os << "  mov r0, #0\n";
  for (unsigned c = 0; c < kW; c += 2) {
    os << "  ldrd r" << (kBuf0 + c) << ", [r0, #" << 4 * c << "]\n";
  }
  for (unsigned c = 0; c < kW; c += 2) {
    os << "  ldrd r" << (kBuf1 + c) << ", [r0, #" << kRowBytes + 4 * c << "]\n";
  }
  os << "  mov r0, #" << 2 * kRowBytes << "  ; cursor at input row 2\n";
  os << "  mov r1, #" << out_offset << "    ; dense output cursor (5-slot pad first)\n";
  os << "  mov r7, #" << row_pairs << "\n";
  os << "pair:\n";

  // Two rows per loop body; buffer roles swap between them. `store_set`
  // tracks which accumulator set has finished results pending.
  unsigned set = 0;
  for (unsigned row = 0; row < 2; ++row) {
    const unsigned top = row == 0 ? kBuf0 : kBuf1;  // holds input row i-1
    const unsigned mid = row == 0 ? kBuf1 : kBuf0;  // holds input row i
    os << "  ; ---- output row (" << (row == 0 ? "top=buf0" : "top=buf1") << ")\n";
    for (unsigned run = 0; run < 4; ++run) {
      const unsigned* acc = acc_set[set];
      const unsigned* other = acc_set[set ^ 1];
      const unsigned c0 = 5 * run + 1;  // first interior column of the run
      // Slots 0-4: T taps, paired with the other set's pending stores.
      for (unsigned k = 0; k < 5; ++k) {
        os << "  fmadd r" << acc[k] << ", r" << (top + c0 + k) << ", r" << kWT << "\n";
        os << "  str r" << other[k] << ", [r1], #4\n";
      }
      // Slots 5-9: L taps, paired with the other set's clears.
      for (unsigned k = 0; k < 5; ++k) {
        os << "  fmadd r" << acc[k] << ", r" << (mid + c0 + k - 1) << ", r" << kWL << "\n";
        os << "  mov r" << other[k] << ", r13\n";
      }
      // Slots 10-14: C taps, paired with the next row's loads into the top
      // buffer (the paper's progressive replacement).
      for (unsigned k = 0; k < 5; ++k) {
        os << "  fmadd r" << acc[k] << ", r" << (mid + c0 + k) << ", r" << kWC << "\n";
        os << "  ldr r" << (top + c0 + k) << ", [r0, #" << 4 * (c0 + k) << "]\n";
      }
      // Slots 15-19: R taps, paired with per-row extras.
      for (unsigned k = 0; k < 5; ++k) {
        os << "  fmadd r" << acc[k] << ", r" << (mid + c0 + k + 1) << ", r" << kWR << "\n";
        if (run == 0 && k == 0) {
          os << "  ldr r" << (top + 0) << ", [r0, #0]   ; west boundary of next row\n";
        } else if (run == 3 && k == 0) {
          os << "  ldr r" << (top + 21) << ", [r0, #84] ; east boundary of next row\n";
        } else if (run == 3 && k == 1) {
          os << "  add r0, r0, #" << kRowBytes << "\n";
        } else if (row == 1 && run == 3 && k == 2) {
          os << "  sub r7, r7, #1\n";
        }
      }
      // Slots 20-24: B taps from the freshly replaced top-buffer registers.
      for (unsigned k = 0; k < 5; ++k) {
        os << "  fmadd r" << acc[k] << ", r" << (top + c0 + k) << ", r" << kWB << "\n";
      }
      set ^= 1;
    }
  }
  os << "  bne pair\n";
  // Epilogue: the final run's results are still pending.
  for (unsigned k = 0; k < 5; ++k) {
    os << "  str r" << acc_set[set ^ 1][k] << ", [r1], #4\n";
  }
  os << "  halt\n";
  return os.str();
}

std::string generate_matmul_rows(unsigned c_rows) {
  constexpr std::uint32_t kA = 0x0000;
  constexpr std::uint32_t kB = 0x1000;
  constexpr std::uint32_t kC = 0x2000;
  // The paper's registers: A-element pool r11, r12, r14, r15; B-row octet
  // r16-r23 (loaded by doubleword); accumulators r32-r63.
  const unsigned pool[4] = {11, 12, 14, 15};
  constexpr unsigned kRb = 16;
  constexpr unsigned kAcc = 32;

  std::ostringstream os;
  os << "; 32x32 matmul row kernel (paper section VII)\n";
  os << "  mov r13, #0\n";
  os << "  mov r0, #" << kA << "\n";
  for (unsigned j = 0; j < 32; ++j) os << "  mov r" << (kAcc + j) << ", r13\n";
  // Pre-load A[0..3] and B row 0 elements 0..5.
  for (unsigned p = 0; p < 4; ++p) os << "  ldr r" << pool[p] << ", [r0], #4\n";
  for (unsigned pr = 0; pr < 3; ++pr) {
    os << "  ldrd r" << (kRb + 2 * pr) << ", [r13, #" << (kB + 8 * pr) << "]\n";
  }

  for (unsigned r = 0; r < c_rows; ++r) {
    os << "  ; ---- C row " << r << "\n";
    for (unsigned e = 0; e < 32; ++e) {
      const std::uint32_t row_base = kB + e * 128;
      const std::uint32_t next_base = kB + ((e + 1) % 32) * 128;
      const unsigned a_reg = pool[e % 4];
      os << "  ; macro e=" << e << "\n";
      for (unsigned j = 0; j < 32; ++j) {
        os << "  fmadd r" << (kAcc + j) << ", r" << (kRb + j % 8) << ", r" << a_reg
           << "\n";
        // Interleave the integer slots (paper: ~18 movement ops per macro).
        if (j == 0) {
          // This row's elements 6,7 (their registers were used at the very
          // end of the previous macro).
          os << "  ldrd r" << (kRb + 6) << ", [r13, #" << (row_base + 24) << "]\n";
        } else if (j == 1 && !(r == 0 && e == 0)) {
          // Refill the pool register freed by the previous macro with the
          // element three macros ahead.
          os << "  ldr r" << pool[(e + 3) % 4] << ", [r0], #4\n";
        } else if (j >= 2 && j <= 24 && j % 2 == 0) {
          // Stream this row's elements 8..31 behind their consumers.
          const unsigned pair = (j + 8 - 2) / 2 * 2 + 8 - 6;  // see below
          (void)pair;
          const unsigned elem = j + 6;  // elements (j+6, j+7)
          os << "  ldrd r" << (kRb + elem % 8) << ", [r13, #" << (row_base + 4 * elem)
             << "]\n";
        } else if (j >= 26 && j % 2 == 0) {
          // Pre-load the next row's elements 0..5.
          const unsigned elem = j - 26;
          os << "  ldrd r" << (kRb + elem) << ", [r13, #" << (next_base + 4 * elem)
             << "]\n";
        }
      }
    }
    // Row epilogue: write the accumulated C row out by doublewords, then
    // clear the accumulators for the next row (the paper's "values ...
    // written out ... and the registers are cleared").
    for (unsigned pr = 0; pr < 16; ++pr) {
      os << "  strd r" << (kAcc + 2 * pr) << ", [r13, #" << (kC + r * 128 + 8 * pr)
         << "]\n";
    }
    if (r + 1 < c_rows) {
      for (unsigned j = 0; j < 32; ++j) os << "  mov r" << (kAcc + j) << ", r13\n";
    }
  }
  os << "  halt\n";
  return os.str();
}

}  // namespace epi::isa
