#pragma once
// Functional + cycle-scoring interpreter for the eCore ISA subset.
//
// The eCore is dual-issue in-order: one FPU instruction and one IALU /
// load-store instruction can issue per cycle (section VI: FMADD "can be
// executed concurrently with certain other integer unit instructions, such
// as loads and stores, in a super-scalar manner"). The scorer models:
//   * one FPU + one IALU issue slot per cycle, in program order;
//   * the FPU result hazard the paper measured: "the register used for
//     accumulating the result of the FMADD instruction cannot be used again
//     as a FPU source or result register, or as the source of a store
//     instruction for at least 5 cycles" -- an FPU result is unavailable to
//     those consumers until issue+5;
//   * single-cycle scratchpad loads whose results are available the next
//     cycle;
//   * the 3-cycle taken-branch penalty (section IV-B: "branching costs
//     3 cycles").
//
// Functional state (registers, flags, a memory image) is exact, so the
// paper's hand-scheduled kernels can be validated numerically *and* the
// schedule-model constants (205-cycle stencil stripe pass, 32-cycle matmul
// macro) can be reproduced by executing the real instruction streams.

#include <cstdint>
#include <span>
#include <stdexcept>

#include "isa/program.hpp"

namespace epi::isa {

class ExecutionError : public std::runtime_error {
public:
  ExecutionError(std::size_t pc, const std::string& msg)
      : std::runtime_error("pc " + std::to_string(pc) + ": " + msg) {}
};

struct ExecStats {
  std::uint64_t cycles = 0;        // issue cycle of HALT
  std::uint64_t instructions = 0;  // retired, excluding HALT
  std::uint64_t fpu_ops = 0;       // FPU instructions retired
  std::uint64_t flops = 0;         // 2 per FMADD, 1 per other FPU op
  std::uint64_t branch_stalls = 0;
  std::uint64_t hazard_stalls = 0; // cycles lost to FPU result hazards
};

struct InterpreterConfig {
  /// FPU result unavailable as FPU operand/result or store source until
  /// issue + this many cycles (the paper's measured 5).
  std::uint32_t fpu_result_latency = 5;
  /// Load result available at issue + this many cycles.
  std::uint32_t load_latency = 1;
  /// Extra cycles after a taken branch.
  std::uint32_t taken_branch_penalty = 3;
  /// Execution aborts past this many instructions (runaway guard).
  std::uint64_t max_instructions = 50'000'000;
  /// Value the COREID instruction reads (the core's 12-bit mesh id).
  std::uint32_t core_id = 0;
  /// Solo-execution mode for single-core cycle estimates of multi-core
  /// programs: WAIT whose condition does not hold proceeds instead of
  /// throwing, BAR is a nop, and accesses outside the local image are
  /// tolerated (stores dropped, loads return 0). Off by default -- a
  /// genuine single-core program blocking on WAIT is an error.
  bool solo_sync = false;
};

/// Execute `prog` over `regs` and a byte-addressable memory image (the
/// core's scratchpad). Returns the execution statistics.
ExecStats execute(const Program& prog, RegFile& regs, std::span<std::byte> memory,
                  const InterpreterConfig& cfg = {});

}  // namespace epi::isa
