#pragma once
// A subset of the Epiphany eCore instruction set -- the instructions the
// paper's hand-tuned kernels are built from (sections VI and VII):
//   * FPU: FMADD (the workhorse: rd += rn * rm), FMUL, FADD, FSUB;
//   * IALU: MOV (imm/reg), ADD, SUB (reg/imm, setting the Z flag);
//   * memory: LDR/STR word and LDRD/STRD doubleword, with base+offset and
//     base-postmodify addressing (the paper's progressive register
//     replacement relies on postmodify);
//   * control: B, BNE, BEQ, HALT;
//   * synchronisation (section V's flag/barrier/mutex idioms, lowered to
//     single instructions so the static verifier can see them): COREID,
//     LSL, WAIT, BAR, TESTSET, plus `.dma` descriptor declarations.
//
// The eCore has 64 general registers, each holding a 32-bit float or
// integer (section VI: "a total of 64 accessible 32-bit registers").
// Doubleword ops use an even-aligned register pair.

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace epi::isa {

enum class Opcode : std::uint8_t {
  // FPU slot
  Fmadd,  // rd += rn * rm
  Fmul,   // rd = rn * rm
  Fadd,   // rd = rn + rm
  Fsub,   // rd = rn - rm
  // IALU slot
  MovImm,  // rd = imm
  MovReg,  // rd = rn
  Add,     // rd = rn + rm_or_imm  (sets Z)
  Sub,     // rd = rn - rm_or_imm  (sets Z)
  // Memory (IALU slot)
  Ldr,   // rd = mem32[rn + imm]       / postmodify: rd = mem32[rn], rn += imm
  Ldrd,  // rd,rd+1 = mem64[rn + imm]  / postmodify variant
  Str,   // mem32[rn + imm] = rd       / postmodify variant
  Strd,  // mem64[rn + imm] = rd,rd+1  / postmodify variant
  // Control (IALU slot)
  B,    // unconditional
  Bne,  // branch if Z clear
  Beq,  // branch if Z set
  Halt,
  // Synchronisation (IALU slot)
  CoreId,   // rd = this core's 12-bit mesh coreid (MOVFS rd, COREID)
  Lsl,      // rd = rn << imm  (address composition: coreid << 20)
  Wait,     // spin until mem32[rn] == imm  (flag-wait idiom)
  Bar,      // workgroup barrier rendezvous
  Testset,  // atomic: rd = mem32[rn+imm]; Z = (rd==0); if rd==0 mem32 = 1
};

[[nodiscard]] constexpr bool is_fpu(Opcode op) noexcept {
  return op == Opcode::Fmadd || op == Opcode::Fmul || op == Opcode::Fadd ||
         op == Opcode::Fsub;
}
[[nodiscard]] constexpr bool is_load(Opcode op) noexcept {
  return op == Opcode::Ldr || op == Opcode::Ldrd;
}
[[nodiscard]] constexpr bool is_store(Opcode op) noexcept {
  return op == Opcode::Str || op == Opcode::Strd;
}
[[nodiscard]] constexpr bool is_branch(Opcode op) noexcept {
  return op == Opcode::B || op == Opcode::Bne || op == Opcode::Beq;
}
/// Cross-core synchronisation instructions (WAIT/BAR/TESTSET): the inputs
/// to the workgroup happens-before analysis in lint/workgroup.hpp.
[[nodiscard]] constexpr bool is_sync(Opcode op) noexcept {
  return op == Opcode::Wait || op == Opcode::Bar || op == Opcode::Testset;
}

struct Instruction {
  Opcode op = Opcode::Halt;
  std::uint8_t rd = 0;       // destination (or store source)
  std::uint8_t rn = 0;       // first operand / address base
  std::uint8_t rm = 0;       // second operand register (when has_imm false)
  bool has_imm = false;
  bool postmodify = false;   // memory ops: [rn], #imm
  std::int32_t imm = 0;      // immediate / displacement / branch target
};

/// A DMA descriptor declared in assembly via the `.dma` directive. The
/// fields mirror dma::DmaDescriptor (a 2-D strided copy: `outer_count`
/// rows of `inner_count` elements of `elem` bytes, inner strides applied
/// per element and outer strides applied on top when a row wraps). Kept
/// as plain integers here so isa/ stays independent of dma/.
struct DmaDecl {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t elem = 4;
  std::uint32_t inner_count = 0;
  std::int32_t src_inner_stride = 0;
  std::int32_t dst_inner_stride = 0;
  std::uint32_t outer_count = 1;
  std::int32_t src_outer_stride = 0;
  std::int32_t dst_outer_stride = 0;
  unsigned line = 0;  // 1-based source line, 0 when untracked
};

/// An assembled program: instructions plus, for diagnostics, the source
/// text and 1-based source line number of each (both empty/0 for programs
/// built by hand rather than through the assembler).
struct Program {
  std::vector<Instruction> code;
  std::vector<std::string> source;
  std::vector<unsigned> lines;
  std::vector<DmaDecl> dma;  // `.dma` declarations, in source order

  [[nodiscard]] std::size_t size() const noexcept { return code.size(); }
  /// Source line of instruction `i`, or 0 when not tracked.
  [[nodiscard]] unsigned line_of(std::size_t i) const noexcept {
    return i < lines.size() ? lines[i] : 0;
  }
};

/// The 64-entry register file. Values are raw 32-bit words; helpers view
/// them as float or int32.
class RegFile {
public:
  static constexpr unsigned kCount = 64;

  [[nodiscard]] std::uint32_t raw(unsigned r) const { return regs_.at(r); }
  void set_raw(unsigned r, std::uint32_t v) { regs_.at(r) = v; }

  [[nodiscard]] float f(unsigned r) const { return std::bit_cast<float>(regs_.at(r)); }
  void set_f(unsigned r, float v) { regs_.at(r) = std::bit_cast<std::uint32_t>(v); }

  [[nodiscard]] std::int32_t i(unsigned r) const {
    return static_cast<std::int32_t>(regs_.at(r));
  }
  void set_i(unsigned r, std::int32_t v) {
    regs_.at(r) = static_cast<std::uint32_t>(v);
  }

private:
  std::array<std::uint32_t, kCount> regs_{};
};

}  // namespace epi::isa
