#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <vector>

namespace epi::isa {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(std::string_view line) {
  // Strip comment.
  if (const auto semi = line.find(';'); semi != std::string_view::npos) {
    line = line.substr(0, semi);
  }
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else if (c == '[' || c == ']') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      out.push_back(std::string(1, c));
    } else {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

unsigned parse_reg(const std::string& t, unsigned line) {
  if (t.size() < 2 || t[0] != 'r') throw AssemblyError(line, "expected register, got '" + t + "'");
  unsigned v = 0;
  const auto [p, ec] = std::from_chars(t.data() + 1, t.data() + t.size(), v);
  if (ec != std::errc{} || p != t.data() + t.size() || v >= RegFile::kCount) {
    throw AssemblyError(line, "bad register '" + t + "'");
  }
  return v;
}

std::int32_t parse_imm(const std::string& t, unsigned line) {
  if (t.empty() || t[0] != '#') throw AssemblyError(line, "expected immediate, got '" + t + "'");
  std::string_view body(t.data() + 1, t.size() - 1);
  int base = 10;
  if (body.size() > 2 && body[0] == '0' && body[1] == 'x') {
    base = 16;
    body.remove_prefix(2);
  }
  bool neg = false;
  if (!body.empty() && body[0] == '-') {
    neg = true;
    body.remove_prefix(1);
  }
  // Parse the magnitude as unsigned so full 32-bit hex patterns (e.g. float
  // bit images) are accepted, then wrap into the signed immediate.
  std::uint32_t mag = 0;
  const auto [p, ec] = std::from_chars(body.data(), body.data() + body.size(), mag, base);
  if (ec != std::errc{} || p != body.data() + body.size()) {
    throw AssemblyError(line, "bad immediate '" + t + "'");
  }
  const auto v = static_cast<std::int32_t>(mag);
  return neg ? -v : v;
}

/// Parse the "[rn, #imm]" / "[rn], #imm" tail of a memory instruction.
void parse_mem_operand(const std::vector<std::string>& tok, std::size_t i, unsigned line,
                       Instruction& ins) {
  if (i >= tok.size() || tok[i] != "[") throw AssemblyError(line, "expected '['");
  ++i;
  if (i >= tok.size()) throw AssemblyError(line, "expected base register");
  ins.rn = static_cast<std::uint8_t>(parse_reg(tok[i], line));
  ++i;
  if (i < tok.size() && tok[i] == "]") {
    // Postmodify: "[rn], #imm" (or bare "[rn]" meaning offset 0).
    ++i;
    if (i < tok.size()) {
      ins.postmodify = true;
      ins.imm = parse_imm(tok[i], line);
      ++i;
    } else {
      ins.imm = 0;
    }
  } else if (i < tok.size()) {
    // Displacement: "[rn, #imm]".
    ins.imm = parse_imm(tok[i], line);
    ++i;
    if (i >= tok.size() || tok[i] != "]") throw AssemblyError(line, "expected ']'");
    ++i;
  } else {
    throw AssemblyError(line, "unterminated memory operand");
  }
  if (i != tok.size()) throw AssemblyError(line, "trailing tokens after memory operand");
}

const std::map<std::string, Opcode, std::less<>> kMnemonics = {
    {"fmadd", Opcode::Fmadd}, {"fmul", Opcode::Fmul}, {"fadd", Opcode::Fadd},
    {"fsub", Opcode::Fsub},   {"mov", Opcode::MovImm} /* resolved below */,
    {"add", Opcode::Add},     {"sub", Opcode::Sub},   {"ldr", Opcode::Ldr},
    {"ldrd", Opcode::Ldrd},   {"str", Opcode::Str},   {"strd", Opcode::Strd},
    {"b", Opcode::B},         {"bne", Opcode::Bne},   {"beq", Opcode::Beq},
    {"halt", Opcode::Halt},   {"coreid", Opcode::CoreId},
    {"lsl", Opcode::Lsl},     {"wait", Opcode::Wait}, {"bar", Opcode::Bar},
    {"testset", Opcode::Testset},
};

/// Parse a bare number operand of a `.dma` directive: decimal or 0x-hex,
/// optionally negative (strides). No '#' prefix -- directives are data,
/// not instructions.
std::int64_t parse_dma_num(const std::string& t, unsigned line) {
  std::string_view body(t);
  bool neg = false;
  if (!body.empty() && body[0] == '-') {
    neg = true;
    body.remove_prefix(1);
  }
  int base = 10;
  if (body.size() > 2 && body[0] == '0' && body[1] == 'x') {
    base = 16;
    body.remove_prefix(2);
  }
  std::uint32_t mag = 0;
  const auto [p, ec] = std::from_chars(body.data(), body.data() + body.size(), mag, base);
  if (ec != std::errc{} || p != body.data() + body.size()) {
    throw AssemblyError(line, "bad .dma operand '" + t + "'");
  }
  const auto v = static_cast<std::int64_t>(mag);
  return neg ? -v : v;
}

DmaDecl parse_dma(const std::vector<std::string>& tok, unsigned line) {
  if (tok.size() != 10) {
    throw AssemblyError(line,
                        ".dma needs 9 operands: src dst elem inner_count "
                        "src_istride dst_istride outer_count src_ostride dst_ostride");
  }
  DmaDecl d;
  d.src = static_cast<std::uint32_t>(parse_dma_num(tok[1], line));
  d.dst = static_cast<std::uint32_t>(parse_dma_num(tok[2], line));
  d.elem = static_cast<std::uint32_t>(parse_dma_num(tok[3], line));
  d.inner_count = static_cast<std::uint32_t>(parse_dma_num(tok[4], line));
  d.src_inner_stride = static_cast<std::int32_t>(parse_dma_num(tok[5], line));
  d.dst_inner_stride = static_cast<std::int32_t>(parse_dma_num(tok[6], line));
  d.outer_count = static_cast<std::uint32_t>(parse_dma_num(tok[7], line));
  d.src_outer_stride = static_cast<std::int32_t>(parse_dma_num(tok[8], line));
  d.dst_outer_stride = static_cast<std::int32_t>(parse_dma_num(tok[9], line));
  d.line = line;
  return d;
}

}  // namespace

Program assemble(std::string_view text) {
  struct Pending {
    std::size_t instr_index;
    std::string label;
    unsigned line;
  };
  Program prog;
  std::map<std::string, std::int32_t, std::less<>> labels;
  std::vector<Pending> fixups;

  unsigned line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    auto tok = tokenize(line);
    if (tok.empty()) continue;

    // Labels (possibly several, possibly followed by an instruction).
    while (!tok.empty() && tok[0].back() == ':') {
      std::string label = tok[0].substr(0, tok[0].size() - 1);
      if (label.empty()) throw AssemblyError(line_no, "empty label");
      if (!labels.emplace(label, static_cast<std::int32_t>(prog.code.size())).second) {
        throw AssemblyError(line_no, "duplicate label '" + label + "'");
      }
      tok.erase(tok.begin());
    }
    if (tok.empty()) continue;

    if (tok[0] == ".dma") {
      prog.dma.push_back(parse_dma(tok, line_no));
      continue;
    }

    const auto it = kMnemonics.find(tok[0]);
    if (it == kMnemonics.end()) {
      throw AssemblyError(line_no, "unknown mnemonic '" + tok[0] + "'");
    }
    Instruction ins;
    ins.op = it->second;

    switch (ins.op) {
      case Opcode::Fmadd:
      case Opcode::Fmul:
      case Opcode::Fadd:
      case Opcode::Fsub:
        if (tok.size() != 4) throw AssemblyError(line_no, "expected 'op rd, rn, rm'");
        ins.rd = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        ins.rn = static_cast<std::uint8_t>(parse_reg(tok[2], line_no));
        ins.rm = static_cast<std::uint8_t>(parse_reg(tok[3], line_no));
        break;
      case Opcode::MovImm: {  // mov rd, #imm | mov rd, rn
        if (tok.size() != 3) throw AssemblyError(line_no, "expected 'mov rd, src'");
        ins.rd = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        if (tok[2][0] == '#') {
          ins.has_imm = true;
          ins.imm = parse_imm(tok[2], line_no);
        } else {
          ins.op = Opcode::MovReg;
          ins.rn = static_cast<std::uint8_t>(parse_reg(tok[2], line_no));
        }
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
        if (tok.size() != 4) throw AssemblyError(line_no, "expected 'op rd, rn, src'");
        ins.rd = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        ins.rn = static_cast<std::uint8_t>(parse_reg(tok[2], line_no));
        if (tok[3][0] == '#') {
          ins.has_imm = true;
          ins.imm = parse_imm(tok[3], line_no);
        } else {
          ins.rm = static_cast<std::uint8_t>(parse_reg(tok[3], line_no));
        }
        break;
      case Opcode::Ldr:
      case Opcode::Ldrd:
      case Opcode::Str:
      case Opcode::Strd:
        if (tok.size() < 4) throw AssemblyError(line_no, "expected 'op rd, [rn...]'");
        ins.rd = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        if ((ins.op == Opcode::Ldrd || ins.op == Opcode::Strd) && ins.rd % 2 != 0) {
          throw AssemblyError(line_no, "doubleword ops need an even register pair");
        }
        parse_mem_operand(tok, 2, line_no, ins);
        break;
      case Opcode::B:
      case Opcode::Bne:
      case Opcode::Beq:
        if (tok.size() != 2) throw AssemblyError(line_no, "expected branch target label");
        fixups.push_back({prog.code.size(), tok[1], line_no});
        break;
      case Opcode::Halt:
        if (tok.size() != 1) throw AssemblyError(line_no, "halt takes no operands");
        break;
      case Opcode::CoreId:
        if (tok.size() != 2) throw AssemblyError(line_no, "expected 'coreid rd'");
        ins.rd = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        break;
      case Opcode::Lsl:
        if (tok.size() != 4) throw AssemblyError(line_no, "expected 'lsl rd, rn, #imm'");
        ins.rd = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        ins.rn = static_cast<std::uint8_t>(parse_reg(tok[2], line_no));
        ins.has_imm = true;
        ins.imm = parse_imm(tok[3], line_no);
        if (ins.imm < 0 || ins.imm > 31) {
          throw AssemblyError(line_no, "lsl shift must be 0..31");
        }
        break;
      case Opcode::Wait:
        if (tok.size() != 3) throw AssemblyError(line_no, "expected 'wait rn, #imm'");
        ins.rn = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        ins.has_imm = true;
        ins.imm = parse_imm(tok[2], line_no);
        break;
      case Opcode::Bar:
        if (tok.size() != 1) throw AssemblyError(line_no, "bar takes no operands");
        break;
      case Opcode::Testset:
        if (tok.size() < 4) throw AssemblyError(line_no, "expected 'testset rd, [rn, #imm]'");
        ins.rd = static_cast<std::uint8_t>(parse_reg(tok[1], line_no));
        parse_mem_operand(tok, 2, line_no, ins);
        if (ins.postmodify) {
          throw AssemblyError(line_no, "testset does not support postmodify addressing");
        }
        break;
      case Opcode::MovReg:
        break;  // produced by the MovImm case above, never matched directly
    }
    prog.code.push_back(ins);
    prog.source.emplace_back(line);
    prog.lines.push_back(line_no);
  }

  for (const auto& f : fixups) {
    const auto it = labels.find(f.label);
    if (it == labels.end()) {
      throw AssemblyError(f.line, "undefined label '" + f.label + "'");
    }
    prog.code[f.instr_index].imm = it->second;
  }
  return prog;
}

}  // namespace epi::isa
