#include "util/reference.hpp"

#include <cmath>
#include <cstdint>

#include "sim/random.hpp"

namespace epi::util {

void stencil5_reference(std::span<const float> in, std::span<float> out, std::size_t rows,
                        std::size_t cols, const StencilWeights& w) {
  for (std::size_t i = 1; i + 1 < rows; ++i) {
    for (std::size_t j = 1; j + 1 < cols; ++j) {
      out[i * cols + j] = w.top * in[(i - 1) * cols + j] + w.centre * in[i * cols + j] +
                          w.bottom * in[(i + 1) * cols + j] + w.right * in[i * cols + j + 1] +
                          w.left * in[i * cols + j - 1];
    }
  }
}

void stencil5_reference_iterate(std::span<float> grid, std::size_t rows, std::size_t cols,
                                const StencilWeights& w, unsigned iters) {
  std::vector<float> tmp(grid.begin(), grid.end());
  std::span<float> a = grid;
  std::span<float> b = tmp;
  for (unsigned it = 0; it < iters; ++it) {
    // Copy boundary (untouched by the update) then swap roles.
    for (std::size_t j = 0; j < cols; ++j) {
      b[j] = a[j];
      b[(rows - 1) * cols + j] = a[(rows - 1) * cols + j];
    }
    for (std::size_t i = 0; i < rows; ++i) {
      b[i * cols] = a[i * cols];
      b[i * cols + cols - 1] = a[i * cols + cols - 1];
    }
    stencil5_reference(a, b, rows, cols, w);
    std::swap(a, b);
  }
  if (a.data() != grid.data()) {
    std::copy(a.begin(), a.end(), grid.begin());
  }
}

void stencilX_reference(std::span<const float> in, std::span<float> out, std::size_t rows,
                        std::size_t cols, const StencilWeights& w) {
  for (std::size_t i = 1; i + 1 < rows; ++i) {
    for (std::size_t j = 1; j + 1 < cols; ++j) {
      out[i * cols + j] = w.top * in[(i - 1) * cols + j - 1] + w.centre * in[i * cols + j] +
                          w.bottom * in[(i + 1) * cols + j + 1] +
                          w.right * in[(i - 1) * cols + j + 1] +
                          w.left * in[(i + 1) * cols + j - 1];
    }
  }
}

void stencil9_reference(std::span<const float> in, std::span<float> out, std::size_t rows,
                        std::size_t cols, std::span<const float, 9> w9) {
  for (std::size_t i = 1; i + 1 < rows; ++i) {
    for (std::size_t j = 1; j + 1 < cols; ++j) {
      float acc = 0.0f;
      for (int di = -1; di <= 1; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          acc += w9[static_cast<std::size_t>((di + 1) * 3 + (dj + 1))] *
                 in[(i + static_cast<std::size_t>(di)) * cols + j + static_cast<std::size_t>(dj)];
        }
      }
      out[i * cols + j] = acc;
    }
  }
}

void matmul_reference(std::span<const float> a, std::span<const float> b, std::span<float> c,
                      std::size_t m, std::size_t n, std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < n; ++p) {
        acc += a[i * n + p] * b[p * k + j];
      }
      c[i * k + j] = acc;
    }
  }
}

float max_abs_diff(std::span<const float> x, std::span<const float> y) {
  float m = 0.0f;
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(x[i] - y[i]));
  }
  return m;
}

void fill_random(std::span<float> x, std::uint64_t seed) {
  sim::Rng rng(seed);
  for (auto& v : x) v = rng.next_float(-1.0f, 1.0f);
}

}  // namespace epi::util
