#pragma once
// Shared command-line handling and machine-readable reporting for the bench
// binaries.
//
// Every instrumented bench accepts, in addition to its positional arguments:
//   --trace=FILE     enable epi-trace and write a Chrome/Perfetto trace
//   --csv=FILE       also dump the counter registry as CSV
//   --metrics=FILE   override the BENCH_trace.json metrics path
//   --no-metrics     suppress the metrics file entirely
//
// The metrics file (default `<bench>_trace.json`, written next to wherever
// the bench runs) carries per-bench GFLOPS/bandwidth figures plus headline
// counters, so the performance trajectory is tracked run-over-run by CI
// artifacts instead of eyeballed terminal tables.

#include <string>
#include <utility>
#include <vector>

namespace epi::trace {
class Counters;
class Tracer;
struct ProfileReport;
}  // namespace epi::trace

namespace epi::util {

struct BenchArgs {
  std::string bench;         // bench name (e.g. "tab03_elink64")
  std::string trace_path;    // empty = tracing off
  std::string csv_path;      // empty = no CSV dump
  std::string metrics_path;  // empty = metrics suppressed
  std::vector<std::string> positional;

  /// Parse argv, stripping the flags above; anything else stays positional.
  [[nodiscard]] static BenchArgs parse(int argc, char** argv, std::string bench);

  [[nodiscard]] bool tracing() const noexcept { return !trace_path.empty(); }
  /// Positional argument `i` as a double, or `fallback` when absent.
  [[nodiscard]] double positional_double(std::size_t i, double fallback) const;
};

/// Accumulates named metrics and writes them as deterministic JSON.
class BenchReport {
public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  void metric(std::string name, double value);
  /// Fold in every machine-wide counter (names containing '@' are per-entity
  /// detail and stay out of the headline report).
  void add_counters(const trace::Counters& counters);

  /// Write `{"bench": ..., "metrics": {...}}` to `path` (insertion order).
  void write(const std::string& path) const;

private:
  std::string bench_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Standard tail of an instrumented bench: when `tracer` is non-null, write
/// the Perfetto trace / counters CSV named in `args`, fold headline counters
/// into `report`, and print the terminal summary (with per-core attribution
/// when `profile` is given); then write the metrics file.
void finish_bench(const BenchArgs& args, const trace::Tracer* tracer,
                  BenchReport& report, const trace::ProfileReport* profile = nullptr);

}  // namespace epi::util
