#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace epi::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("table row width does not match header");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) line(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace epi::util
