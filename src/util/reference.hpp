#pragma once
// Golden reference implementations used to verify every device kernel:
// a naive 5-point (and general 3x3-footprint) stencil and a naive matmul.
// These run on the host in double precision where it matters for comparison
// tolerances, with no simulator involvement.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace epi::util {

/// Coefficients of the paper's 5-point star stencil (section VI):
/// Tnew[i][j] = w1*T[i-1][j] + w2*T[i][j] + w3*T[i+1][j]
///            + w4*T[i][j+1] + w5*T[i][j-1]   (top, centre, bottom, right, left)
struct StencilWeights {
  float top = 0.1f;
  float centre = 0.5f;
  float bottom = 0.1f;
  float right = 0.15f;
  float left = 0.15f;
};

/// One Jacobi-style update of the interior of a (rows x cols) grid stored
/// row-major, halo of one cell on each side included in the dimensions.
/// Boundary cells are left untouched.
void stencil5_reference(std::span<const float> in, std::span<float> out, std::size_t rows,
                        std::size_t cols, const StencilWeights& w);

/// `iters` repeated updates, ping-ponging internally; result in `grid`.
void stencil5_reference_iterate(std::span<float> grid, std::size_t rows, std::size_t cols,
                                const StencilWeights& w, unsigned iters);

/// X-shaped 5-point stencil (paper section VI "Further Observations"):
/// the four diagonal neighbours plus the centre.
void stencilX_reference(std::span<const float> in, std::span<float> out, std::size_t rows,
                        std::size_t cols, const StencilWeights& w);

/// Full 9-point stencil over the 3x3 neighbourhood; `w9` row-major.
void stencil9_reference(std::span<const float> in, std::span<float> out, std::size_t rows,
                        std::size_t cols, std::span<const float, 9> w9);

/// C = A * B with A (m x n), B (n x k), C (m x k), all row-major.
void matmul_reference(std::span<const float> a, std::span<const float> b, std::span<float> c,
                      std::size_t m, std::size_t n, std::size_t k);

/// Max absolute elementwise difference.
[[nodiscard]] float max_abs_diff(std::span<const float> x, std::span<const float> y);

/// Fill with deterministic pseudo-random values in [-1, 1).
void fill_random(std::span<float> x, std::uint64_t seed);

}  // namespace epi::util
