#include "util/bench_report.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "trace/counters.hpp"
#include "trace/export.hpp"
#include "trace/profile.hpp"
#include "trace/tracer.hpp"

namespace epi::util {

namespace {

bool take_value_flag(std::string_view arg, std::string_view flag, std::string& out) {
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    out = std::string(arg.substr(flag.size() + 1));
    return true;
  }
  return false;
}

}  // namespace

BenchArgs BenchArgs::parse(int argc, char** argv, std::string bench) {
  BenchArgs a;
  a.bench = std::move(bench);
  a.metrics_path = a.bench + "_trace.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (take_value_flag(arg, "--trace", a.trace_path) ||
        take_value_flag(arg, "--csv", a.csv_path) ||
        take_value_flag(arg, "--metrics", a.metrics_path)) {
      continue;
    }
    if (arg == "--no-metrics") {
      a.metrics_path.clear();
      continue;
    }
    a.positional.emplace_back(arg);
  }
  return a;
}

double BenchArgs::positional_double(std::size_t i, double fallback) const {
  if (i >= positional.size()) return fallback;
  return std::atof(positional[i].c_str());
}

void BenchReport::metric(std::string name, double value) {
  for (auto& [n, v] : metrics_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(std::move(name), value);
}

void BenchReport::add_counters(const trace::Counters& counters) {
  for (trace::Counters::Id id = 0; id < counters.size(); ++id) {
    const std::string& name = counters.name(id);
    if (name.find('@') != std::string::npos) continue;
    metric("counter." + name, counters.value(id));
  }
}

void BenchReport::write(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot write metrics file: " + path);
  os << "{\"bench\":\"" << trace::json_escape(bench_) << "\",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : metrics_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << trace::json_escape(name) << "\":" << trace::format_number(value);
  }
  os << "}}\n";
}

void finish_bench(const BenchArgs& args, const trace::Tracer* tracer,
                  BenchReport& report, const trace::ProfileReport* profile) {
  if (tracer != nullptr) {
    if (!args.trace_path.empty()) {
      std::ofstream os(args.trace_path, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot write trace file: " + args.trace_path);
      trace::write_chrome_trace(os, *tracer);
      std::cout << "\nWrote Perfetto trace to " << args.trace_path
                << " (open at ui.perfetto.dev; ts is in cycles)\n";
    }
    if (!args.csv_path.empty()) {
      std::ofstream os(args.csv_path, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot write CSV file: " + args.csv_path);
      trace::write_counters_csv(os, tracer->counters());
    }
    report.add_counters(tracer->counters());
    std::cout << "\n";
    trace::write_summary(std::cout, *tracer, profile);
  }
  report.write(args.metrics_path);
}

}  // namespace epi::util
