#pragma once
// printf-style std::string formatting.
//
// The repo's reports and event logs must be byte-reproducible run over run,
// so everything user-visible goes through explicit printf conversions (fixed
// precision, no locale, no iostream state). This is the one tiny helper that
// turns those conversions into owned strings.

#include <cstdarg>
#include <cstdio>
#include <string>

namespace epi::util {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
format(const char* f, ...) {
  std::va_list ap;
  va_start(ap, f);
  std::va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, f, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, f, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace epi::util
