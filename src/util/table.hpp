#pragma once
// Plain-text table printer for the benchmark harnesses: every bench binary
// prints rows in the same layout as the corresponding paper table/figure so
// EXPERIMENTS.md can be assembled by inspection.

#include <iosfwd>
#include <string>
#include <vector>

namespace epi::util {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Render with column alignment to `os`.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("%.2f" etc.) without iostream noise.
[[nodiscard]] std::string fmt(double v, int precision = 2);

}  // namespace epi::util
