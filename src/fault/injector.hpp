#pragma once
// FaultInjector: applies a FaultPlan to a running machine.
//
// The injector is deliberately passive -- it registers no engine events of
// its own, so an *empty* plan perturbs nothing: every queue, every arbiter
// and every (time, seq) event ordering is bit-identical to a run with no
// injector attached (tests/determinism_test.cpp pins this against the
// golden hashes). Faults take effect only at the existing decision points
// the subsystems already pass through, via small queries:
//
//   * core kills/stalls  -- TimedOp (the awaitable behind CoreCtx::compute
//     and friends) asks intercept_core_op(); a killed core's resumption is
//     parked forever, a stalled core's is deferred to the window end. The
//     eLink request path asks park_if_dead() so a core cannot die "into"
//     the off-chip FIFOs.
//   * mesh link failures -- MeshNetwork::reserve_path asks
//     link_clear_from() per XY hop and falls back to YX routing (see
//     mesh.hpp) when a permanent outage blocks the XY path.
//   * eLink outages      -- ELink::pump defers grants until
//     elink_available(); a permanent outage silences the pump and the
//     scheduler's watchdog turns the resulting stall into a FaultReport.
//   * bit flips          -- corrupt_elink() flips one seeded-random bit in
//     a just-committed transfer (callers CRC-check and retry); MemFlip
//     events ride the mem::MemoryHook on_write path and flip bits in
//     freshly written DRAM/scratchpad ranges, silently, as a wire or cell
//     fault would.
//
// All random choices come from one Rng seeded by the plan, consumed in
// engine-deterministic order, so a plan replays byte-identically.

#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/coords.hpp"
#include "fault/plan.hpp"
#include "mem/memory_system.hpp"
#include "sim/random.hpp"
#include "trace/counters.hpp"

namespace epi::trace {
class Tracer;
}

namespace epi::fault {

/// A detected failure, produced by the detection layers (watchdog, CRC
/// retry exhaustion, result validation) -- never by the injector itself,
/// which only models the silent hardware fault.
struct FaultReport {
  sim::Cycles detected = 0;            // when the failure was noticed
  sim::Cycles since = 0;               // when the underlying fault struck
  std::uint32_t job = ~std::uint32_t{0};  // affected job id, if any
  std::string kind;                    // "watchdog", "transfer", "corrupt-result"
  std::string detail;
};

/// Render a report as one deterministic log line.
[[nodiscard]] std::string to_line(const FaultReport& r);

class FaultInjector final : public mem::MemoryHook {
public:
  FaultInjector(FaultPlan plan, sim::Engine& engine, mem::MemorySystem& mem,
                arch::MeshDims dims, trace::Tracer* tracer = nullptr);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// True when the plan contains any fault (recovery layers gate their
  /// bookkeeping on this so an empty plan costs nothing).
  [[nodiscard]] bool armed() const noexcept { return !plan_.events.empty(); }
  void set_trace(trace::Tracer* t) noexcept { tracer_ = t; }

  // ---- core kills and stalls (asked by TimedOp / the eLink) -------------

  [[nodiscard]] bool core_has_faults(arch::CoreCoord c) const noexcept {
    return !cores_.empty() && cores_[dims_.index_of(c)].any;
  }
  /// Called when core `c` is about to suspend for a `d`-cycle operation.
  /// Returns true if the injector took ownership of the resumption (core
  /// killed: parked forever; core stalled: deferred past the window).
  bool intercept_core_op(arch::CoreCoord c, sim::Cycles d, std::coroutine_handle<> h);
  /// Park `h` forever iff `c` is dead at the current cycle.
  bool park_if_dead(arch::CoreCoord c, std::coroutine_handle<> h);
  /// When did `c` become unresponsive, as of `now`? kNever if it is live.
  [[nodiscard]] sim::Cycles unresponsive_since(arch::CoreCoord c,
                                               sim::Cycles now) const noexcept;

  // ---- mesh links (asked by MeshNetwork::reserve_path) ------------------

  [[nodiscard]] bool any_link_faults() const noexcept { return !links_.empty(); }
  /// Earliest start >= `t` at which directed link `li` (router*4 + dir) is
  /// clear for an `occ`-cycle burst; kNever if a permanent outage blocks it.
  [[nodiscard]] sim::Cycles link_clear_from(std::size_t li, sim::Cycles t,
                                            sim::Cycles occ) const noexcept;
  void note_reroute(arch::CoreCoord src, arch::CoreCoord dst);

  // ---- eLink outages and corruption -------------------------------------

  /// Earliest cycle >= `now` the eLink (`kind` 0 = write, 1 = read) may
  /// grant; kNever under a permanent outage. Logs each outage window once.
  sim::Cycles elink_available(unsigned kind, sim::Cycles now);
  [[nodiscard]] bool any_corruption() const noexcept {
    return elink_flip_budget_[0] + elink_flip_budget_[1] != 0;
  }
  /// Maybe flip one bit in the just-committed transfer to [dst, dst+bytes)
  /// (consumes a flip token if one is armed). Returns true if corrupted.
  bool corrupt_elink(unsigned kind, arch::Addr dst, std::uint32_t bytes,
                     arch::CoreCoord issuer);
  /// A CRC-checked transfer detected a mismatch and is retrying.
  void note_transfer_retry(arch::CoreCoord issuer);

  // ---- observability -----------------------------------------------------

  /// Deterministic application log: one line per injected fault effect.
  [[nodiscard]] const std::vector<std::string>& injections() const noexcept {
    return injections_;
  }
  [[nodiscard]] const trace::Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] std::size_t parked_processes() const noexcept { return parked_; }

  // ---- mem::MemoryHook (MemFlip write corruption) ------------------------

  void on_write(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
                sim::Cycles now) override;
  void on_read(arch::Addr, std::size_t, arch::CoreCoord, sim::Cycles) override {}
  void on_sync(arch::CoreCoord, sim::Cycles) override {}

private:
  struct StallWindow {
    sim::Cycles from = 0, until = 0;
    bool noted = false;
  };
  struct CoreFault {
    sim::Cycles kill_at = kNever;
    bool kill_noted = false;
    bool any = false;
    std::vector<StallWindow> stalls;  // sorted by `from`
  };
  struct Window {
    sim::Cycles from = 0, until = kNever;  // until == kNever: permanent
    bool noted = false;
  };
  struct FlipBudget {
    sim::Cycles from = 0, until = kNever;
    std::uint32_t remaining = 0;
  };
  struct MemFlipBudget {
    FaultEvent ev{};
    std::uint32_t remaining = 0;
  };

  void note(const char* kind, trace::Counters::Id counter, const std::string& detail);
  void flip_bit(arch::Addr a, std::size_t n, arch::CoreCoord issuer);

  FaultPlan plan_;
  sim::Engine* engine_;
  mem::MemorySystem* mem_;
  arch::MeshDims dims_;
  trace::Tracer* tracer_;
  sim::Rng rng_;

  std::vector<CoreFault> cores_;            // empty when no core faults
  std::vector<std::vector<Window>> links_;  // empty when no link faults
  std::vector<Window> elink_windows_[2];
  std::vector<FlipBudget> elink_flips_[2];
  std::uint32_t elink_flip_budget_[2] = {0, 0};
  std::vector<MemFlipBudget> mem_flips_;
  std::uint32_t mem_flip_budget_ = 0;

  std::vector<std::string> injections_;
  std::size_t parked_ = 0;
  trace::Counters counters_;
  trace::Counters::Id c_kill_, c_stall_, c_reroute_, c_elink_outage_,
      c_elink_flip_, c_mem_flip_, c_retry_;
  std::uint32_t fault_track_ = ~std::uint32_t{0};
};

/// Awaitable for a core-attributed timed operation (compute, DMA descriptor
/// setup). Identical to sim::Delay when no injector is attached or the core
/// has no planned faults -- including the zero-delay fast path -- so fault
/// support costs existing runs nothing.
struct TimedOp {
  sim::Engine& engine;
  sim::Cycles d;
  FaultInjector* inj;
  arch::CoreCoord core;

  [[nodiscard]] bool await_ready() const noexcept {
    return d == 0 && (inj == nullptr || !inj->core_has_faults(core));
  }
  void await_suspend(std::coroutine_handle<> h) const {
    if (inj != nullptr && inj->intercept_core_op(core, d, h)) return;
    engine.schedule_in(d, h);
  }
  void await_resume() const noexcept {}
};

}  // namespace epi::fault
