#include "fault/cluster.hpp"

#include <algorithm>

#include "util/fmt.hpp"

namespace epi::fault {

namespace {
sim::Cycles window_end(sim::Cycles at, sim::Cycles duration) {
  if (duration == 0) return kNever;
  const sim::Cycles end = at + duration;
  return end < at ? kNever : end;  // overflow clamps to "forever"
}
}  // namespace

ClusterInjector::ClusterInjector(const FaultPlan& plan, unsigned chip_rows,
                                 unsigned chip_cols)
    : rows_(chip_rows), cols_(chip_cols), seed_(plan.seed) {
  if (rows_ == 0 || cols_ == 0) {
    throw FaultError("cluster injector needs a non-empty chip grid");
  }
  if (plan.cluster() &&
      (plan.chip_rows != rows_ || plan.chip_cols != cols_)) {
    throw FaultError(util::format(
        "fault plan declares a %ux%u chip grid but the cluster is %ux%u",
        plan.chip_rows, plan.chip_cols, rows_, cols_));
  }
  const arch::MeshDims grid{rows_, cols_};
  chips_.resize(grid.core_count());
  for (unsigned c = 0; c < chips_.size(); ++c) {
    // Independent per-chip streams: which bit a notice flip corrupts on one
    // chip never perturbs another chip's draws.
    chips_[c].rng = sim::Rng(seed_ ^ (0xA24BAED4963EE407ull * (c + 1)));
  }
  for (const FaultEvent& e : plan.events) {
    if (!is_chip_scoped(e.kind)) {
      if (!grid.contains(e.chip)) {
        throw FaultError("machine fault names a chip outside the grid");
      }
      machine_events_.push_back(e);
      continue;
    }
    armed_ = true;
    if (!grid.contains(e.chip) ||
        (e.kind == FaultKind::XMeshFail && !grid.contains(e.chip2))) {
      throw FaultError("chip fault names a chip outside the grid");
    }
    ChipState& st = chips_[grid.index_of(e.chip)];
    switch (e.kind) {
      case FaultKind::ChipCrash:
        st.crash = std::min(st.crash, e.at);
        break;
      case FaultKind::ChipStall:
        st.stalls.push_back(Window{e.at, window_end(e.at, e.duration)});
        break;
      case FaultKind::XMeshFail: {
        auto& wins = outages_[{grid.index_of(e.chip), grid.index_of(e.chip2)}];
        sim::Cycles from = e.at;
        for (std::uint32_t i = 0; i < e.flap; ++i) {
          wins.push_back(Window{from, window_end(from, e.duration)});
          from += e.period;
        }
        break;
      }
      case FaultKind::NoticeDrop:
        st.drops.push_back(Budget{e.at, window_end(e.at, e.duration), e.count});
        break;
      case FaultKind::NoticeFlip:
        st.flips.push_back(Budget{e.at, window_end(e.at, e.duration), e.count});
        break;
      default:
        break;
    }
  }
  for (ChipState& st : chips_) {
    std::sort(st.stalls.begin(), st.stalls.end(),
              [](const Window& a, const Window& b) { return a.from < b.from; });
  }
  for (auto& [key, wins] : outages_) {
    std::sort(wins.begin(), wins.end(),
              [](const Window& a, const Window& b) { return a.from < b.from; });
  }
}

FaultPlan ClusterInjector::machine_plan(unsigned chip) const {
  const arch::MeshDims grid{rows_, cols_};
  FaultPlan out;
  out.seed = seed_;
  for (const FaultEvent& e : machine_events_) {
    if (grid.index_of(e.chip) != chip) continue;
    FaultEvent copy = e;
    copy.has_chip = false;  // a plain single-machine event again
    copy.chip = {};
    out.events.push_back(copy);
  }
  return out;
}

sim::Cycles ClusterInjector::crash_at(unsigned chip) const {
  return chips_.at(chip).crash;
}

sim::Cycles ClusterInjector::host_thaw(unsigned chip, sim::Cycles now) const {
  sim::Cycles thaw = 0;
  for (;;) {
    sim::Cycles next = thaw;
    const sim::Cycles probe = std::max(now, thaw);
    for (const Window& w : chips_.at(chip).stalls) {
      if (w.from <= probe && probe < w.until) next = std::max(next, w.until);
    }
    if (next == thaw) return thaw;  // overlapping windows chain until stable
    thaw = next;
    if (thaw == kNever) return kNever;
  }
}

sim::Cycles ClusterInjector::next_freeze(unsigned chip, sim::Cycles now) const {
  sim::Cycles t = kNever;
  for (const Window& w : chips_.at(chip).stalls) {
    if (w.from > now) t = std::min(t, w.from);
  }
  return t;
}

sim::Cycles ClusterInjector::xmesh_clear(unsigned src, unsigned dst,
                                         sim::Cycles t) const {
  const auto it = outages_.find({src, dst});
  if (it == outages_.end()) return t;
  for (;;) {
    sim::Cycles moved = t;
    for (const Window& w : it->second) {
      if (w.from <= moved && moved < w.until) moved = w.until;
    }
    if (moved == t) return t;
    t = moved;
    if (t == kNever) return kNever;
  }
}

bool ClusterInjector::drop_notice(unsigned chip, sim::Cycles now) {
  ChipState& st = chips_.at(chip);
  for (Budget& b : st.drops) {
    if (b.left == 0 || now < b.from || now >= b.until) continue;
    --b.left;
    ++st.dropped;
    st.log.push_back(util::format(
        "@%llu inject notice-drop chip=%u", static_cast<unsigned long long>(now),
        chip));
    return true;
  }
  return false;
}

bool ClusterInjector::flip_notice(unsigned chip, sim::Cycles now,
                                  std::string& payload) {
  if (payload.empty()) return false;
  ChipState& st = chips_.at(chip);
  for (Budget& b : st.flips) {
    if (b.left == 0 || now < b.from || now >= b.until) continue;
    --b.left;
    ++st.flipped;
    const auto byte = st.rng.next_below(payload.size());
    const auto bit = st.rng.next_below(8);
    payload[byte] = static_cast<char>(
        static_cast<unsigned char>(payload[byte]) ^ (1u << bit));
    st.log.push_back(util::format(
        "@%llu inject notice-flip chip=%u byte=%llu bit=%llu",
        static_cast<unsigned long long>(now), chip,
        static_cast<unsigned long long>(byte),
        static_cast<unsigned long long>(bit)));
    return true;
  }
  return false;
}

const std::vector<std::string>& ClusterInjector::injections(
    unsigned chip) const {
  return chips_.at(chip).log;
}

std::uint64_t ClusterInjector::notices_dropped(unsigned chip) const {
  return chips_.at(chip).dropped;
}

std::uint64_t ClusterInjector::notices_flipped(unsigned chip) const {
  return chips_.at(chip).flipped;
}

}  // namespace epi::fault
