#include "fault/injector.hpp"

#include <algorithm>

#include "trace/tracer.hpp"
#include "util/fmt.hpp"

namespace epi::fault {

std::string to_line(const FaultReport& r) {
  std::string line = util::format(
      "@%llu fault kind=%s", static_cast<unsigned long long>(r.detected),
      r.kind.c_str());
  if (r.job != ~std::uint32_t{0}) line += util::format(" job=%u", r.job);
  line += util::format(
      " latency=%llu",
      static_cast<unsigned long long>(r.detected >= r.since ? r.detected - r.since : 0));
  if (!r.detail.empty()) line += " " + r.detail;
  return line;
}

FaultInjector::FaultInjector(FaultPlan plan, sim::Engine& engine,
                             mem::MemorySystem& mem, arch::MeshDims dims,
                             trace::Tracer* tracer)
    : plan_(std::move(plan)),
      engine_(&engine),
      mem_(&mem),
      dims_(dims),
      tracer_(tracer),
      rng_(plan_.seed ^ 0x6661756C74ull) {  // decorrelate from workload draws
  c_kill_ = counters_.define("fault.inject.kill", trace::Counters::Kind::Monotonic);
  c_stall_ = counters_.define("fault.inject.stall", trace::Counters::Kind::Monotonic);
  c_reroute_ = counters_.define("fault.reroute", trace::Counters::Kind::Monotonic);
  c_elink_outage_ =
      counters_.define("fault.inject.elink_outage", trace::Counters::Kind::Monotonic);
  c_elink_flip_ =
      counters_.define("fault.inject.elink_flip", trace::Counters::Kind::Monotonic);
  c_mem_flip_ =
      counters_.define("fault.inject.mem_flip", trace::Counters::Kind::Monotonic);
  c_retry_ = counters_.define("fault.retry.transfer", trace::Counters::Kind::Monotonic);

  for (const FaultEvent& e : plan_.events) {
    switch (e.kind) {
      case FaultKind::KillCore: {
        if (!dims_.contains(e.core)) {
          throw FaultError("fault plan kills core " + arch::to_string(e.core) +
                           " outside the mesh");
        }
        if (cores_.empty()) cores_.resize(dims_.core_count());
        CoreFault& cf = cores_[dims_.index_of(e.core)];
        cf.kill_at = std::min(cf.kill_at, e.at);
        cf.any = true;
        break;
      }
      case FaultKind::StallCore: {
        if (!dims_.contains(e.core)) {
          throw FaultError("fault plan stalls core " + arch::to_string(e.core) +
                           " outside the mesh");
        }
        if (cores_.empty()) cores_.resize(dims_.core_count());
        CoreFault& cf = cores_[dims_.index_of(e.core)];
        cf.stalls.push_back(StallWindow{e.at, e.at + e.duration, false});
        cf.any = true;
        break;
      }
      case FaultKind::LinkFail: {
        arch::CoreCoord nb;
        if (!dims_.contains(e.core) || !dims_.neighbour(e.core, e.dir, nb)) {
          throw FaultError("fault plan fails mesh link " + arch::to_string(e.core) +
                           "." + arch::to_string(e.dir) + " which does not exist");
        }
        if (links_.empty()) {
          links_.resize(static_cast<std::size_t>(dims_.core_count()) * 4);
        }
        const std::size_t li =
            static_cast<std::size_t>(dims_.index_of(e.core)) * 4 +
            static_cast<unsigned>(e.dir);
        links_[li].push_back(
            Window{e.at, e.duration == 0 ? kNever : e.at + e.duration, false});
        break;
      }
      case FaultKind::ElinkFail:
        elink_windows_[e.elink & 1].push_back(
            Window{e.at, e.duration == 0 ? kNever : e.at + e.duration, false});
        break;
      case FaultKind::ElinkFlip:
        elink_flips_[e.elink & 1].push_back(FlipBudget{
            e.at, e.duration == 0 ? kNever : e.at + e.duration, e.count});
        elink_flip_budget_[e.elink & 1] += e.count;
        break;
      case FaultKind::MemFlip:
        mem_flips_.push_back(MemFlipBudget{e, e.count});
        mem_flip_budget_ += e.count;
        break;
    }
  }
  for (CoreFault& cf : cores_) {
    std::sort(cf.stalls.begin(), cf.stalls.end(),
              [](const StallWindow& a, const StallWindow& b) { return a.from < b.from; });
  }
}

void FaultInjector::note(const char* kind, trace::Counters::Id counter,
                         const std::string& detail) {
  const sim::Cycles now = engine_->now();
  counters_.add(counter, 1.0);
  injections_.push_back(util::format("@%llu inject %s %s",
                                     static_cast<unsigned long long>(now), kind,
                                     detail.c_str()));
  if (tracer_ != nullptr) {
    if (fault_track_ == ~std::uint32_t{0}) fault_track_ = tracer_->add_track("faults");
    tracer_->instant(fault_track_, kind, now);
  }
}

bool FaultInjector::intercept_core_op(arch::CoreCoord c, sim::Cycles d,
                                      std::coroutine_handle<> h) {
  if (!core_has_faults(c)) return false;
  CoreFault& cf = cores_[dims_.index_of(c)];
  const sim::Cycles now = engine_->now();

  // Killed: the core never retires another operation. The resumption is
  // parked (not destroyed -- the frame stays owned by its Task/Workgroup);
  // the scheduler's watchdog is what turns the silence into a FaultReport.
  if (cf.kill_at != kNever && (now >= cf.kill_at || now + d > cf.kill_at)) {
    if (!cf.kill_noted) {
      cf.kill_noted = true;
      note("kill", c_kill_, "core=" + arch::to_string(c));
    }
    ++parked_;
    return true;
  }

  // Stalled: any operation completing inside a freeze window is held until
  // the window ends (the windows are sorted, so chained/overlapping stalls
  // fold left to right).
  sim::Cycles resume = now + d;
  for (StallWindow& w : cf.stalls) {
    if (resume >= w.from && resume < w.until) {
      if (!w.noted) {
        w.noted = true;
        note("stall", c_stall_,
             util::format("core=%s until=%llu", arch::to_string(c).c_str(),
                          static_cast<unsigned long long>(w.until)));
      }
      resume = w.until;
    }
  }
  if (resume == now + d) return false;
  engine_->schedule_at(resume, h);
  return true;
}

bool FaultInjector::park_if_dead(arch::CoreCoord c, std::coroutine_handle<> h) {
  (void)h;
  if (!core_has_faults(c)) return false;
  CoreFault& cf = cores_[dims_.index_of(c)];
  if (cf.kill_at == kNever || engine_->now() < cf.kill_at) return false;
  if (!cf.kill_noted) {
    cf.kill_noted = true;
    note("kill", c_kill_, "core=" + arch::to_string(c));
  }
  ++parked_;
  return true;
}

sim::Cycles FaultInjector::unresponsive_since(arch::CoreCoord c,
                                              sim::Cycles now) const noexcept {
  if (!core_has_faults(c)) return kNever;
  const CoreFault& cf = cores_[dims_.index_of(c)];
  if (cf.kill_at != kNever && now >= cf.kill_at) return cf.kill_at;
  for (const StallWindow& w : cf.stalls) {
    if (now >= w.from && now < w.until) return w.from;
  }
  return kNever;
}

sim::Cycles FaultInjector::link_clear_from(std::size_t li, sim::Cycles t,
                                           sim::Cycles occ) const noexcept {
  const std::vector<Window>& ws = links_[li];
  sim::Cycles s = t;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Window& w : ws) {
      if (s + occ <= w.from) continue;  // burst ends before the outage
      if (w.until == kNever) return kNever;
      if (s < w.until) {
        s = w.until;
        moved = true;
      }
    }
  }
  return s;
}

void FaultInjector::note_reroute(arch::CoreCoord src, arch::CoreCoord dst) {
  note("reroute", c_reroute_,
       "src=" + arch::to_string(src) + " dst=" + arch::to_string(dst) + " order=yx");
}

sim::Cycles FaultInjector::elink_available(unsigned kind, sim::Cycles now) {
  sim::Cycles s = now;
  bool moved = true;
  while (moved) {
    moved = false;
    for (Window& w : elink_windows_[kind & 1]) {
      if (s < w.from) continue;
      if (w.until == kNever || s < w.until) {
        if (!w.noted) {
          w.noted = true;
          note("elink-outage", c_elink_outage_,
               util::format("kind=%s until=%s", kind == 0 ? "write" : "read",
                            w.until == kNever
                                ? "never"
                                : util::format("%llu", static_cast<unsigned long long>(
                                                           w.until))
                                      .c_str()));
        }
        if (w.until == kNever) return kNever;
        s = w.until;
        moved = true;
      }
    }
  }
  return s;
}

void FaultInjector::flip_bit(arch::Addr a, std::size_t n, arch::CoreCoord issuer) {
  // Flip directly in the resolved storage: no hooks, no watch wakeups. A
  // hardware bit flip is invisible until somebody reads the word.
  auto span = mem_->resolve(a, n, issuer);
  const std::size_t byte = static_cast<std::size_t>(rng_.next_below(n));
  const unsigned bit = static_cast<unsigned>(rng_.next_below(8));
  span[byte] ^= static_cast<std::byte>(1u << bit);
}

bool FaultInjector::corrupt_elink(unsigned kind, arch::Addr dst, std::uint32_t bytes,
                                  arch::CoreCoord issuer) {
  if (bytes == 0 || elink_flip_budget_[kind & 1] == 0) return false;
  const sim::Cycles now = engine_->now();
  bool corrupted = false;
  for (FlipBudget& f : elink_flips_[kind & 1]) {
    if (f.remaining == 0 || now < f.from || (f.until != kNever && now >= f.until)) {
      continue;
    }
    --f.remaining;
    --elink_flip_budget_[kind & 1];
    flip_bit(dst, bytes, issuer);
    note("elink-flip", c_elink_flip_,
         util::format("kind=%s core=%s bytes=%u", kind == 0 ? "write" : "read",
                      arch::to_string(issuer).c_str(), bytes));
    corrupted = true;
    break;  // one flip per transfer at most
  }
  return corrupted;
}

void FaultInjector::note_transfer_retry(arch::CoreCoord issuer) {
  note("transfer-retry", c_retry_, "core=" + arch::to_string(issuer));
}

void FaultInjector::on_write(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
                             sim::Cycles now) {
  if (mem_flip_budget_ == 0 || n == 0) return;
  const bool external = mem_->map().is_external(a);
  for (MemFlipBudget& f : mem_flips_) {
    if (f.remaining == 0 || now < f.ev.at) continue;
    if (f.ev.duration != 0 && now >= f.ev.at + f.ev.duration) continue;
    if (f.ev.scratch) {
      if (external) continue;
      auto c = mem_->map().core_of(a);
      if (!c) continue;
      // Spare the runtime-reserved control words: flipping a barrier slot
      // models a software bug, not a memory fault in kernel data.
      if (arch::AddressMap::local_offset(a) < 0x0200) continue;
      if (!f.ev.core_any && !(*c == f.ev.core)) continue;
    } else if (!external) {
      continue;
    }
    --f.remaining;
    --mem_flip_budget_;
    flip_bit(a, n, issuer);
    note("mem-flip", c_mem_flip_,
         util::format("region=%s addr=0x%08X bytes=%zu", f.ev.scratch ? "scratch" : "dram",
                      a, n));
    break;  // one flip per write at most
  }
}

}  // namespace epi::fault
