#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// Used by the fault-tolerant transfer paths: eLink and DMA external
// transfers checksum the source range before the move and the committed
// destination after it, so a bit flipped in flight (see fault::FaultPlan)
// is detected and the transfer retried instead of silently corrupting a
// job's result. A nibble-indexed table keeps the hot loop small without a
// 1 KB table per translation unit.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace epi::fault {

namespace detail {
inline constexpr std::array<std::uint32_t, 16> kCrcNibble = [] {
  std::array<std::uint32_t, 16> t{};
  for (std::uint32_t i = 0; i < 16; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 4; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}();
}  // namespace detail

/// CRC-32 of `data`, optionally chaining from a previous span's result.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data,
                                         std::uint32_t seed = 0) {
  std::uint32_t c = ~seed;
  for (const std::byte b : data) {
    c ^= static_cast<std::uint32_t>(b);
    c = detail::kCrcNibble[c & 0xFu] ^ (c >> 4);
    c = detail::kCrcNibble[c & 0xFu] ^ (c >> 4);
  }
  return ~c;
}

}  // namespace epi::fault
