#pragma once
// Deterministic fault-injection plans.
//
// A FaultPlan is a list of scheduled hardware faults -- core kills and
// stalls, directed-mesh-link and eLink outages, bit flips on DRAM or
// scratchpad writes -- plus the seed that drives every random choice the
// injector makes while applying them (which bit to flip, where in a written
// range). Plans are data, not behaviour: the same plan and seed replay
// byte-identically on every platform, which is what makes a chaos run a
// regression test instead of a dice roll.
//
// Plans come from two places:
//   * a line-oriented text spec (parse()/save(), mirroring the workload
//     format: one directive per line, `key=value` fields, `#` comments),
//     for scripted scenarios and replays;
//   * generate(ChaosConfig): a seeded random plan with a configured mix of
//     fault kinds, for chaos sweeps (bench/abl_faults, epi_fault).
//
//   seed 7
//   kill core=2,3 at=120000
//   stall core=0,1 at=40000 for=90000
//   link router=4,4 dir=east at=60000 for=0        # for=0 => permanent
//   elink kind=write at=200000 for=15000
//   elink-flip kind=write at=0 for=500000 count=2
//   mem-flip region=dram at=0 for=400000 count=3
//   mem-flip region=scratch core=1,1 at=0 for=0 count=1
//
// Cluster plans scope faults to whole chips of an RxC xMesh grid. The
// `chips` directive must precede every chip-scoped directive; in a cluster
// plan every machine-level directive must carry `chip=r,c` so the splitter
// knows which chip's injector owns it. Any directive may carry a unique
// `id=N` label (duplicates are a parse error):
//
//   chips 2x2
//   chip-crash chip=0,1 at=500000 id=1          # chip dies, forever
//   chip-stall chip=1,0 at=200000 for=300000    # host runtime freezes
//   xmesh from=0,0 to=0,1 at=100000 for=50000   # directed bridge link down
//   xmesh from=1,0 to=0,0 at=0 for=20000 flap=3 period=150000
//   notice-drop chip=1,1 at=0 for=0 count=2     # completion notices lost
//   notice-flip chip=1,1 at=0 for=0 count=1     # ... or CRC-corrupted
//   kill chip=0,0 core=2,3 at=120000            # machine fault, one chip
//
// Parse errors carry `source:line: message` so a bad plan file points at
// the offending line, same as the workload parser.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/coords.hpp"
#include "sim/engine.hpp"

namespace epi::fault {

/// "never": the clear-time of a permanently failed resource.
inline constexpr sim::Cycles kNever = ~sim::Cycles{0};

/// Base class of every fault-machinery error. Recovery layers (scheduler
/// re-execution, transfer retry) catch this to tell an injected-fault
/// failure apart from a genuine kernel bug.
class FaultError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// No mesh route exists between two cores (XY and YX both cross a
/// permanently failed link).
class UnroutableError : public FaultError {
  using FaultError::FaultError;
};

/// A CRC-checked transfer still mismatched after the bounded retries.
class TransferError : public FaultError {
  using FaultError::FaultError;
};

enum class FaultKind : std::uint8_t {
  KillCore,    // core stops executing at `at`, forever
  StallCore,   // core freezes for [at, at+duration)
  LinkFail,    // directed mesh link down for [at, at+duration) or forever
  ElinkFail,   // whole eLink (write or read network) down likewise
  ElinkFlip,   // next `count` eLink transfers in-window get one flipped bit
  MemFlip,     // next `count` DRAM/scratchpad writes in-window get one flip
  // ---- chip-scoped (cluster) kinds, see fault/cluster.hpp ----------------
  ChipCrash,   // the whole chip (engine + host runtime) dies at `at`
  ChipStall,   // the chip's host runtime freezes for [at, at+duration)
  XMeshFail,   // directed xMesh bridge link chip->chip2 down (can flap)
  NoticeDrop,  // next `count` completion notices sent by `chip` are lost
  NoticeFlip,  // next `count` notices get one flipped bit (CRC catches it)
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;

/// Chip-scoped kinds live in the cluster injector, not a Machine's.
[[nodiscard]] constexpr bool is_chip_scoped(FaultKind k) noexcept {
  return k == FaultKind::ChipCrash || k == FaultKind::ChipStall ||
         k == FaultKind::XMeshFail || k == FaultKind::NoticeDrop ||
         k == FaultKind::NoticeFlip;
}

struct FaultEvent {
  FaultKind kind = FaultKind::KillCore;
  sim::Cycles at = 0;        // cycle the fault takes effect
  sim::Cycles duration = 0;  // 0 = permanent (KillCore is always permanent)
  arch::CoreCoord core{};    // KillCore/StallCore; LinkFail router; MemFlip scratch target
  arch::Dir dir = arch::Dir::North;  // LinkFail: failed output direction
  std::uint8_t elink = 0;    // ElinkFail/ElinkFlip: 0 = write network, 1 = read
  std::uint32_t count = 1;   // ElinkFlip/MemFlip/NoticeDrop/NoticeFlip budget
  bool scratch = false;      // MemFlip: scratchpad writes (else DRAM writes)
  bool core_any = true;      // MemFlip scratch: any core (else `core` only)
  // ---- cluster fields ----------------------------------------------------
  std::uint32_t id = 0;      // optional unique label (0 = unlabeled)
  arch::CoreCoord chip{};    // subject chip on the chip grid; also scopes
                             // machine-level events in a cluster plan
  bool has_chip = false;     // machine-level event carries a chip= scope
  arch::CoreCoord chip2{};   // XMeshFail: destination chip of the dead link
  std::uint32_t flap = 1;    // XMeshFail: outage repetitions (1 = one window)
  sim::Cycles period = 0;    // XMeshFail: cycles between repetition starts
};

struct FaultPlan {
  std::uint64_t seed = 1;  // drives the injector's random choices
  std::vector<FaultEvent> events;
  // Chip grid of a cluster plan (the `chips RxC` directive); 0x0 = a plain
  // single-machine plan.
  unsigned chip_rows = 0;
  unsigned chip_cols = 0;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] bool cluster() const noexcept {
    return chip_rows != 0 && chip_cols != 0;
  }
  [[nodiscard]] bool has_chip_faults() const noexcept {
    for (const FaultEvent& e : events) {
      if (is_chip_scoped(e.kind)) return true;
    }
    return false;
  }
};

/// Parameters for a seeded random plan. Counts are exact (generate() emits
/// precisely that many events of each kind); only the *placement* in space
/// and time is random.
struct ChaosConfig {
  std::uint64_t seed = 1;
  arch::MeshDims dims{};
  sim::Cycles horizon = 1'000'000;  // faults injected in [0, horizon)
  unsigned core_kills = 0;
  unsigned core_stalls = 0;
  sim::Cycles stall_cycles = 200'000;  // mean stall duration
  unsigned link_faults = 0;
  double transient_link_prob = 0.75;   // rest are permanent
  sim::Cycles link_outage_cycles = 100'000;  // mean transient outage
  unsigned elink_outages = 0;          // transient whole-eLink outages
  sim::Cycles elink_outage_cycles = 20'000;
  unsigned elink_flips = 0;  // single-corruption flip events on the eLink
  unsigned mem_flips = 0;    // single-corruption DRAM write flips
  // ---- cluster chaos (chip-scoped events; needs a chip grid) -------------
  unsigned chip_rows = 0;    // 0x0 = single-chip plan, no chip events
  unsigned chip_cols = 0;
  unsigned chip_crashes = 0;
  unsigned chip_stalls = 0;
  sim::Cycles chip_stall_cycles = 300'000;   // mean host-freeze duration
  unsigned xmesh_faults = 0;                 // directed bridge-link outages
  double xmesh_flap_prob = 0.5;              // rest are single windows
  sim::Cycles xmesh_outage_cycles = 120'000; // mean outage duration
  unsigned notice_drops = 0;                 // lost completion notices
  unsigned notice_flips = 0;                 // CRC-corrupted notices
};

/// Deterministically expand a ChaosConfig into a concrete plan.
[[nodiscard]] FaultPlan generate(const ChaosConfig& cfg);

/// Serialise a plan in the text format (deterministic: fixed field order,
/// one directive per line; parse(save(p)) == p).
[[nodiscard]] std::string save(const FaultPlan& plan);

/// Parse the text format. Throws FaultError with `source:line: message`
/// on malformed input. Blank lines and `#` comments are ignored.
[[nodiscard]] FaultPlan parse(std::istream& in, const std::string& source = "fault-plan");
[[nodiscard]] FaultPlan load_file(const std::string& path);

}  // namespace epi::fault
