#include "fault/plan.hpp"

#include <fstream>
#include <istream>
#include <sstream>

#include "sim/random.hpp"
#include "util/fmt.hpp"

namespace epi::fault {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::KillCore: return "kill";
    case FaultKind::StallCore: return "stall";
    case FaultKind::LinkFail: return "link";
    case FaultKind::ElinkFail: return "elink";
    case FaultKind::ElinkFlip: return "elink-flip";
    case FaultKind::MemFlip: return "mem-flip";
  }
  return "?";
}

namespace {

bool parse_dir(const std::string& s, arch::Dir& out) {
  if (s == "north") out = arch::Dir::North;
  else if (s == "south") out = arch::Dir::South;
  else if (s == "west") out = arch::Dir::West;
  else if (s == "east") out = arch::Dir::East;
  else return false;
  return true;
}

/// Spread `n` event times over [0, horizon) with a uniform draw each.
sim::Cycles draw_time(sim::Rng& rng, sim::Cycles horizon) {
  return horizon == 0 ? 0 : rng.next_below(horizon);
}

/// Mean-centred duration: uniform in [mean/2, 3*mean/2), never zero (zero
/// means permanent in the plan format).
sim::Cycles draw_duration(sim::Rng& rng, sim::Cycles mean) {
  if (mean == 0) return 1;
  return mean / 2 + rng.next_below(mean) + 1;
}

arch::CoreCoord draw_core(sim::Rng& rng, arch::MeshDims dims) {
  return dims.coord_of(static_cast<unsigned>(rng.next_below(dims.core_count())));
}

}  // namespace

FaultPlan generate(const ChaosConfig& cfg) {
  sim::Rng rng(cfg.seed);
  FaultPlan plan;
  plan.seed = cfg.seed;
  auto add = [&](FaultEvent e) { plan.events.push_back(e); };

  for (unsigned i = 0; i < cfg.core_kills; ++i) {
    FaultEvent e;
    e.kind = FaultKind::KillCore;
    e.core = draw_core(rng, cfg.dims);
    e.at = draw_time(rng, cfg.horizon);
    add(e);
  }
  for (unsigned i = 0; i < cfg.core_stalls; ++i) {
    FaultEvent e;
    e.kind = FaultKind::StallCore;
    e.core = draw_core(rng, cfg.dims);
    e.at = draw_time(rng, cfg.horizon);
    e.duration = draw_duration(rng, cfg.stall_cycles);
    add(e);
  }
  for (unsigned i = 0; i < cfg.link_faults; ++i) {
    FaultEvent e;
    e.kind = FaultKind::LinkFail;
    // Redraw until the direction points at a real neighbour: a boundary
    // link that nothing can ever route over would waste a fault.
    arch::CoreCoord nb;
    do {
      e.core = draw_core(rng, cfg.dims);
      e.dir = static_cast<arch::Dir>(rng.next_below(4));
    } while (!cfg.dims.neighbour(e.core, e.dir, nb));
    e.at = draw_time(rng, cfg.horizon);
    e.duration = rng.next_float() < cfg.transient_link_prob
                     ? draw_duration(rng, cfg.link_outage_cycles)
                     : 0;
    add(e);
  }
  for (unsigned i = 0; i < cfg.elink_outages; ++i) {
    FaultEvent e;
    e.kind = FaultKind::ElinkFail;
    e.elink = static_cast<std::uint8_t>(rng.next_below(2));
    e.at = draw_time(rng, cfg.horizon);
    e.duration = draw_duration(rng, cfg.elink_outage_cycles);
    add(e);
  }
  for (unsigned i = 0; i < cfg.elink_flips; ++i) {
    FaultEvent e;
    e.kind = FaultKind::ElinkFlip;
    e.elink = static_cast<std::uint8_t>(rng.next_below(2));
    e.at = draw_time(rng, cfg.horizon);
    e.duration = 0;  // armed from `at` onward until the budget is spent
    e.count = 1;
    add(e);
  }
  for (unsigned i = 0; i < cfg.mem_flips; ++i) {
    FaultEvent e;
    e.kind = FaultKind::MemFlip;
    e.scratch = false;  // chaos plans corrupt DRAM, where validation can see it
    e.at = draw_time(rng, cfg.horizon);
    e.duration = 0;
    e.count = 1;
    add(e);
  }
  return plan;
}

std::string save(const FaultPlan& plan) {
  std::string out = "# epi-fault plan (one fault per line)\n";
  out += util::format("seed %llu\n", static_cast<unsigned long long>(plan.seed));
  for (const FaultEvent& e : plan.events) {
    const auto at = static_cast<unsigned long long>(e.at);
    const auto dur = static_cast<unsigned long long>(e.duration);
    switch (e.kind) {
      case FaultKind::KillCore:
        out += util::format("kill core=%u,%u at=%llu\n", e.core.row, e.core.col, at);
        break;
      case FaultKind::StallCore:
        out += util::format("stall core=%u,%u at=%llu for=%llu\n", e.core.row,
                            e.core.col, at, dur);
        break;
      case FaultKind::LinkFail:
        out += util::format("link router=%u,%u dir=%s at=%llu for=%llu\n",
                            e.core.row, e.core.col, arch::to_string(e.dir), at, dur);
        break;
      case FaultKind::ElinkFail:
        out += util::format("elink kind=%s at=%llu for=%llu\n",
                            e.elink == 0 ? "write" : "read", at, dur);
        break;
      case FaultKind::ElinkFlip:
        out += util::format("elink-flip kind=%s at=%llu for=%llu count=%u\n",
                            e.elink == 0 ? "write" : "read", at, dur, e.count);
        break;
      case FaultKind::MemFlip:
        if (e.scratch && !e.core_any) {
          out += util::format("mem-flip region=scratch core=%u,%u at=%llu for=%llu count=%u\n",
                              e.core.row, e.core.col, at, dur, e.count);
        } else {
          out += util::format("mem-flip region=%s at=%llu for=%llu count=%u\n",
                              e.scratch ? "scratch" : "dram", at, dur, e.count);
        }
        break;
    }
  }
  return out;
}

FaultPlan parse(std::istream& in, const std::string& source) {
  FaultPlan plan;
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto fail = [&](const std::string& why) -> FaultError {
      return FaultError(util::format("%s:%u: %s", source.c_str(), lineno, why.c_str()));
    };
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;  // blank or comment

    if (word == "seed") {
      std::string val;
      if (!(ls >> val)) throw fail("seed directive needs a value");
      try {
        plan.seed = std::stoull(val);
      } catch (const std::exception&) {
        throw fail("seed value '" + val + "' is not an integer");
      }
      continue;
    }

    FaultEvent e;
    if (word == "kill") e.kind = FaultKind::KillCore;
    else if (word == "stall") e.kind = FaultKind::StallCore;
    else if (word == "link") e.kind = FaultKind::LinkFail;
    else if (word == "elink") e.kind = FaultKind::ElinkFail;
    else if (word == "elink-flip") e.kind = FaultKind::ElinkFlip;
    else if (word == "mem-flip") e.kind = FaultKind::MemFlip;
    else throw fail("unknown directive '" + word + "'");

    bool have_core = false, have_at = false, have_for = false;
    bool have_region = false, have_kind = false;
    while (ls >> word) {
      const auto eq = word.find('=');
      if (eq == std::string::npos) throw fail("field '" + word + "' is not key=value");
      const std::string key = word.substr(0, eq);
      const std::string val = word.substr(eq + 1);
      try {
        if (key == "core" || key == "router") {
          const auto comma = val.find(',');
          if (comma == std::string::npos) throw fail("'" + key + "' needs row,col");
          e.core.row = static_cast<unsigned>(std::stoul(val.substr(0, comma)));
          e.core.col = static_cast<unsigned>(std::stoul(val.substr(comma + 1)));
          have_core = true;
        } else if (key == "dir") {
          if (!parse_dir(val, e.dir)) throw fail("unknown direction '" + val + "'");
        } else if (key == "at") {
          e.at = std::stoull(val);
          have_at = true;
        } else if (key == "for") {
          e.duration = std::stoull(val);
          have_for = true;
        } else if (key == "count") {
          e.count = static_cast<std::uint32_t>(std::stoul(val));
        } else if (key == "kind") {
          if (val == "write") e.elink = 0;
          else if (val == "read") e.elink = 1;
          else throw fail("eLink kind must be 'write' or 'read', got '" + val + "'");
          have_kind = true;
        } else if (key == "region") {
          if (val == "dram") e.scratch = false;
          else if (val == "scratch") e.scratch = true;
          else throw fail("region must be 'dram' or 'scratch', got '" + val + "'");
          have_region = true;
        } else {
          throw fail("unknown field '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        throw fail("field '" + key + "' has non-numeric value '" + val + "'");
      } catch (const std::out_of_range&) {
        throw fail("field '" + key + "' value out of range: '" + val + "'");
      }
    }

    if (!have_at) throw fail("fault needs an at=CYCLE field");
    switch (e.kind) {
      case FaultKind::KillCore:
        if (!have_core) throw fail("kill needs core=row,col");
        e.duration = 0;
        break;
      case FaultKind::StallCore:
        if (!have_core) throw fail("stall needs core=row,col");
        if (!have_for || e.duration == 0) throw fail("stall needs for=CYCLES > 0");
        break;
      case FaultKind::LinkFail: {
        if (!have_core) throw fail("link needs router=row,col");
        break;
      }
      case FaultKind::ElinkFail:
      case FaultKind::ElinkFlip:
        if (!have_kind) throw fail("eLink fault needs kind=write|read");
        break;
      case FaultKind::MemFlip:
        if (!have_region) throw fail("mem-flip needs region=dram|scratch");
        if (!e.scratch && have_core) throw fail("mem-flip region=dram takes no core");
        break;
    }
    if (e.count == 0) throw fail("count must be at least 1");
    e.core_any = !(e.kind == FaultKind::MemFlip && e.scratch && have_core);
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FaultError("cannot open fault plan: " + path);
  return parse(in, path);
}

}  // namespace epi::fault
