#include "fault/plan.hpp"

#include <fstream>
#include <istream>
#include <set>
#include <sstream>

#include "sim/random.hpp"
#include "util/fmt.hpp"

namespace epi::fault {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::KillCore: return "kill";
    case FaultKind::StallCore: return "stall";
    case FaultKind::LinkFail: return "link";
    case FaultKind::ElinkFail: return "elink";
    case FaultKind::ElinkFlip: return "elink-flip";
    case FaultKind::MemFlip: return "mem-flip";
    case FaultKind::ChipCrash: return "chip-crash";
    case FaultKind::ChipStall: return "chip-stall";
    case FaultKind::XMeshFail: return "xmesh";
    case FaultKind::NoticeDrop: return "notice-drop";
    case FaultKind::NoticeFlip: return "notice-flip";
  }
  return "?";
}

namespace {

bool parse_dir(const std::string& s, arch::Dir& out) {
  if (s == "north") out = arch::Dir::North;
  else if (s == "south") out = arch::Dir::South;
  else if (s == "west") out = arch::Dir::West;
  else if (s == "east") out = arch::Dir::East;
  else return false;
  return true;
}

/// Spread `n` event times over [0, horizon) with a uniform draw each.
sim::Cycles draw_time(sim::Rng& rng, sim::Cycles horizon) {
  return horizon == 0 ? 0 : rng.next_below(horizon);
}

/// Mean-centred duration: uniform in [mean/2, 3*mean/2), never zero (zero
/// means permanent in the plan format).
sim::Cycles draw_duration(sim::Rng& rng, sim::Cycles mean) {
  if (mean == 0) return 1;
  return mean / 2 + rng.next_below(mean) + 1;
}

arch::CoreCoord draw_core(sim::Rng& rng, arch::MeshDims dims) {
  return dims.coord_of(static_cast<unsigned>(rng.next_below(dims.core_count())));
}

}  // namespace

FaultPlan generate(const ChaosConfig& cfg) {
  sim::Rng rng(cfg.seed);
  FaultPlan plan;
  plan.seed = cfg.seed;
  auto add = [&](FaultEvent e) { plan.events.push_back(e); };

  for (unsigned i = 0; i < cfg.core_kills; ++i) {
    FaultEvent e;
    e.kind = FaultKind::KillCore;
    e.core = draw_core(rng, cfg.dims);
    e.at = draw_time(rng, cfg.horizon);
    add(e);
  }
  for (unsigned i = 0; i < cfg.core_stalls; ++i) {
    FaultEvent e;
    e.kind = FaultKind::StallCore;
    e.core = draw_core(rng, cfg.dims);
    e.at = draw_time(rng, cfg.horizon);
    e.duration = draw_duration(rng, cfg.stall_cycles);
    add(e);
  }
  for (unsigned i = 0; i < cfg.link_faults; ++i) {
    FaultEvent e;
    e.kind = FaultKind::LinkFail;
    // Redraw until the direction points at a real neighbour: a boundary
    // link that nothing can ever route over would waste a fault.
    arch::CoreCoord nb;
    do {
      e.core = draw_core(rng, cfg.dims);
      e.dir = static_cast<arch::Dir>(rng.next_below(4));
    } while (!cfg.dims.neighbour(e.core, e.dir, nb));
    e.at = draw_time(rng, cfg.horizon);
    e.duration = rng.next_float() < cfg.transient_link_prob
                     ? draw_duration(rng, cfg.link_outage_cycles)
                     : 0;
    add(e);
  }
  for (unsigned i = 0; i < cfg.elink_outages; ++i) {
    FaultEvent e;
    e.kind = FaultKind::ElinkFail;
    e.elink = static_cast<std::uint8_t>(rng.next_below(2));
    e.at = draw_time(rng, cfg.horizon);
    e.duration = draw_duration(rng, cfg.elink_outage_cycles);
    add(e);
  }
  for (unsigned i = 0; i < cfg.elink_flips; ++i) {
    FaultEvent e;
    e.kind = FaultKind::ElinkFlip;
    e.elink = static_cast<std::uint8_t>(rng.next_below(2));
    e.at = draw_time(rng, cfg.horizon);
    e.duration = 0;  // armed from `at` onward until the budget is spent
    e.count = 1;
    add(e);
  }
  for (unsigned i = 0; i < cfg.mem_flips; ++i) {
    FaultEvent e;
    e.kind = FaultKind::MemFlip;
    e.scratch = false;  // chaos plans corrupt DRAM, where validation can see it
    e.at = draw_time(rng, cfg.horizon);
    e.duration = 0;
    e.count = 1;
    add(e);
  }

  // ---- cluster chaos: chip-scoped events (all drawn after the machine
  // kinds so single-chip configs keep their historical byte-identity) ------
  if (cfg.chip_rows != 0 && cfg.chip_cols != 0) {
    plan.chip_rows = cfg.chip_rows;
    plan.chip_cols = cfg.chip_cols;
    const arch::MeshDims grid{cfg.chip_rows, cfg.chip_cols};
    // A cluster plan requires every machine-level event to name its chip.
    for (FaultEvent& e : plan.events) {
      e.chip = draw_core(rng, grid);
      e.has_chip = true;
    }
    for (unsigned i = 0; i < cfg.chip_crashes; ++i) {
      FaultEvent e;
      e.kind = FaultKind::ChipCrash;
      e.chip = draw_core(rng, grid);
      // A crash in the opening cycles leaves nothing to fail over; land it
      // once traffic is flowing.
      e.at = cfg.horizon / 4 + draw_time(rng, cfg.horizon - cfg.horizon / 4);
      add(e);
    }
    for (unsigned i = 0; i < cfg.chip_stalls; ++i) {
      FaultEvent e;
      e.kind = FaultKind::ChipStall;
      e.chip = draw_core(rng, grid);
      e.at = draw_time(rng, cfg.horizon);
      e.duration = draw_duration(rng, cfg.chip_stall_cycles);
      add(e);
    }
    for (unsigned i = 0; i < cfg.xmesh_faults; ++i) {
      FaultEvent e;
      e.kind = FaultKind::XMeshFail;
      e.chip = draw_core(rng, grid);
      do {
        e.chip2 = draw_core(rng, grid);
      } while (grid.core_count() > 1 && e.chip2 == e.chip);
      e.at = draw_time(rng, cfg.horizon);
      e.duration = draw_duration(rng, cfg.xmesh_outage_cycles);
      if (rng.next_float() < cfg.xmesh_flap_prob) {
        e.flap = 2 + static_cast<std::uint32_t>(rng.next_below(3));
        e.period = e.duration * 2 + draw_duration(rng, cfg.xmesh_outage_cycles);
      }
      add(e);
    }
    for (unsigned i = 0; i < cfg.notice_drops; ++i) {
      FaultEvent e;
      e.kind = FaultKind::NoticeDrop;
      e.chip = draw_core(rng, grid);
      e.at = draw_time(rng, cfg.horizon);
      e.duration = 0;  // armed from `at` onward until the budget is spent
      e.count = 1;
      add(e);
    }
    for (unsigned i = 0; i < cfg.notice_flips; ++i) {
      FaultEvent e;
      e.kind = FaultKind::NoticeFlip;
      e.chip = draw_core(rng, grid);
      e.at = draw_time(rng, cfg.horizon);
      e.duration = 0;
      e.count = 1;
      add(e);
    }
  }
  return plan;
}

std::string save(const FaultPlan& plan) {
  std::string out = "# epi-fault plan (one fault per line)\n";
  out += util::format("seed %llu\n", static_cast<unsigned long long>(plan.seed));
  if (plan.cluster()) {
    out += util::format("chips %ux%u\n", plan.chip_rows, plan.chip_cols);
  }
  for (const FaultEvent& e : plan.events) {
    const auto at = static_cast<unsigned long long>(e.at);
    const auto dur = static_cast<unsigned long long>(e.duration);
    // Machine-level events in a cluster plan lead with their chip scope.
    const std::string scope =
        e.has_chip && !is_chip_scoped(e.kind)
            ? util::format("chip=%u,%u ", e.chip.row, e.chip.col)
            : std::string();
    std::string line;
    switch (e.kind) {
      case FaultKind::KillCore:
        line = util::format("kill %score=%u,%u at=%llu", scope.c_str(),
                            e.core.row, e.core.col, at);
        break;
      case FaultKind::StallCore:
        line = util::format("stall %score=%u,%u at=%llu for=%llu", scope.c_str(),
                            e.core.row, e.core.col, at, dur);
        break;
      case FaultKind::LinkFail:
        line = util::format("link %srouter=%u,%u dir=%s at=%llu for=%llu",
                            scope.c_str(), e.core.row, e.core.col,
                            arch::to_string(e.dir), at, dur);
        break;
      case FaultKind::ElinkFail:
        line = util::format("elink %skind=%s at=%llu for=%llu", scope.c_str(),
                            e.elink == 0 ? "write" : "read", at, dur);
        break;
      case FaultKind::ElinkFlip:
        line = util::format("elink-flip %skind=%s at=%llu for=%llu count=%u",
                            scope.c_str(), e.elink == 0 ? "write" : "read", at,
                            dur, e.count);
        break;
      case FaultKind::MemFlip:
        if (e.scratch && !e.core_any) {
          line = util::format(
              "mem-flip %sregion=scratch core=%u,%u at=%llu for=%llu count=%u",
              scope.c_str(), e.core.row, e.core.col, at, dur, e.count);
        } else {
          line = util::format("mem-flip %sregion=%s at=%llu for=%llu count=%u",
                              scope.c_str(), e.scratch ? "scratch" : "dram", at,
                              dur, e.count);
        }
        break;
      case FaultKind::ChipCrash:
        line = util::format("chip-crash chip=%u,%u at=%llu", e.chip.row,
                            e.chip.col, at);
        break;
      case FaultKind::ChipStall:
        line = util::format("chip-stall chip=%u,%u at=%llu for=%llu", e.chip.row,
                            e.chip.col, at, dur);
        break;
      case FaultKind::XMeshFail:
        line = util::format("xmesh from=%u,%u to=%u,%u at=%llu for=%llu",
                            e.chip.row, e.chip.col, e.chip2.row, e.chip2.col,
                            at, dur);
        if (e.flap > 1) {
          line += util::format(" flap=%u period=%llu", e.flap,
                               static_cast<unsigned long long>(e.period));
        }
        break;
      case FaultKind::NoticeDrop:
      case FaultKind::NoticeFlip:
        line = util::format("%s chip=%u,%u at=%llu for=%llu count=%u",
                            to_string(e.kind), e.chip.row, e.chip.col, at, dur,
                            e.count);
        break;
    }
    if (e.id != 0) line += util::format(" id=%u", e.id);
    out += line + "\n";
  }
  return out;
}

FaultPlan parse(std::istream& in, const std::string& source) {
  FaultPlan plan;
  std::string line;
  unsigned lineno = 0;
  std::set<std::uint32_t> seen_ids;
  while (std::getline(in, line)) {
    ++lineno;
    const auto fail = [&](const std::string& why) -> FaultError {
      return FaultError(util::format("%s:%u: %s", source.c_str(), lineno, why.c_str()));
    };
    const auto check_chip = [&](arch::CoreCoord c) {
      if (c.row >= plan.chip_rows || c.col >= plan.chip_cols) {
        throw fail(util::format(
            "chip coordinate (%u,%u) outside the %ux%u chip grid", c.row,
            c.col, plan.chip_rows, plan.chip_cols));
      }
    };
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;  // blank or comment

    if (word == "seed") {
      std::string val;
      if (!(ls >> val)) throw fail("seed directive needs a value");
      try {
        plan.seed = std::stoull(val);
      } catch (const std::exception&) {
        throw fail("seed value '" + val + "' is not an integer");
      }
      continue;
    }

    if (word == "chips") {
      if (plan.cluster()) throw fail("duplicate 'chips' declaration");
      if (!plan.events.empty()) {
        throw fail("'chips RxC' must precede every fault directive");
      }
      std::string val;
      if (!(ls >> val)) throw fail("chips directive needs RxC (e.g. 2x2)");
      const auto x = val.find('x');
      try {
        if (x == std::string::npos) throw std::invalid_argument(val);
        plan.chip_rows = static_cast<unsigned>(std::stoul(val.substr(0, x)));
        plan.chip_cols = static_cast<unsigned>(std::stoul(val.substr(x + 1)));
      } catch (const std::exception&) {
        throw fail("chips value '" + val + "' is not RxC (e.g. 2x2)");
      }
      if (plan.chip_rows == 0 || plan.chip_cols == 0) {
        throw fail("chips grid must be non-empty");
      }
      continue;
    }

    FaultEvent e;
    if (word == "kill") e.kind = FaultKind::KillCore;
    else if (word == "stall") e.kind = FaultKind::StallCore;
    else if (word == "link") e.kind = FaultKind::LinkFail;
    else if (word == "elink") e.kind = FaultKind::ElinkFail;
    else if (word == "elink-flip") e.kind = FaultKind::ElinkFlip;
    else if (word == "mem-flip") e.kind = FaultKind::MemFlip;
    else if (word == "chip-crash") e.kind = FaultKind::ChipCrash;
    else if (word == "chip-stall") e.kind = FaultKind::ChipStall;
    else if (word == "xmesh") e.kind = FaultKind::XMeshFail;
    else if (word == "notice-drop") e.kind = FaultKind::NoticeDrop;
    else if (word == "notice-flip") e.kind = FaultKind::NoticeFlip;
    else throw fail("unknown directive '" + word + "'");

    if (is_chip_scoped(e.kind) && !plan.cluster()) {
      throw fail(std::string("'") + to_string(e.kind) +
                 "' needs a prior 'chips RxC' declaration");
    }

    bool have_core = false, have_at = false, have_for = false;
    bool have_region = false, have_kind = false;
    bool have_from = false, have_to = false, have_flap = false,
         have_period = false;
    while (ls >> word) {
      const auto eq = word.find('=');
      if (eq == std::string::npos) throw fail("field '" + word + "' is not key=value");
      const std::string key = word.substr(0, eq);
      const std::string val = word.substr(eq + 1);
      const auto parse_coord = [&](arch::CoreCoord& out) {
        const auto comma = val.find(',');
        if (comma == std::string::npos) throw fail("'" + key + "' needs row,col");
        out.row = static_cast<unsigned>(std::stoul(val.substr(0, comma)));
        out.col = static_cast<unsigned>(std::stoul(val.substr(comma + 1)));
      };
      try {
        if (key == "core" || key == "router") {
          parse_coord(e.core);
          have_core = true;
        } else if (key == "chip" || key == "from") {
          if (key == "from" && e.kind != FaultKind::XMeshFail) {
            throw fail("'from' only applies to xmesh faults");
          }
          if (key == "chip" && e.kind == FaultKind::XMeshFail) {
            throw fail("xmesh faults take from=/to=, not chip=");
          }
          if (!plan.cluster()) {
            throw fail("'" + key + "=' needs a prior 'chips RxC' declaration");
          }
          parse_coord(e.chip);
          check_chip(e.chip);
          e.has_chip = true;
          have_from = true;
        } else if (key == "to") {
          if (e.kind != FaultKind::XMeshFail) {
            throw fail("'to' only applies to xmesh faults");
          }
          parse_coord(e.chip2);
          check_chip(e.chip2);
          have_to = true;
        } else if (key == "flap") {
          e.flap = static_cast<std::uint32_t>(std::stoul(val));
          have_flap = true;
        } else if (key == "period") {
          e.period = std::stoull(val);
          have_period = true;
        } else if (key == "id") {
          e.id = static_cast<std::uint32_t>(std::stoul(val));
          if (e.id == 0) throw fail("id must be a positive integer");
          if (!seen_ids.insert(e.id).second) {
            throw fail(util::format("duplicate fault id %u", e.id));
          }
        } else if (key == "dir") {
          if (!parse_dir(val, e.dir)) throw fail("unknown direction '" + val + "'");
        } else if (key == "at") {
          e.at = std::stoull(val);
          have_at = true;
        } else if (key == "for") {
          e.duration = std::stoull(val);
          have_for = true;
        } else if (key == "count") {
          e.count = static_cast<std::uint32_t>(std::stoul(val));
        } else if (key == "kind") {
          if (val == "write") e.elink = 0;
          else if (val == "read") e.elink = 1;
          else throw fail("eLink kind must be 'write' or 'read', got '" + val + "'");
          have_kind = true;
        } else if (key == "region") {
          if (val == "dram") e.scratch = false;
          else if (val == "scratch") e.scratch = true;
          else throw fail("region must be 'dram' or 'scratch', got '" + val + "'");
          have_region = true;
        } else {
          throw fail("unknown field '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        throw fail("field '" + key + "' has non-numeric value '" + val + "'");
      } catch (const std::out_of_range&) {
        throw fail("field '" + key + "' value out of range: '" + val + "'");
      }
    }

    if (!have_at) throw fail("fault needs an at=CYCLE field");
    if (plan.cluster() && !is_chip_scoped(e.kind) && !e.has_chip) {
      throw fail(std::string("machine-level '") + to_string(e.kind) +
                 "' in a cluster plan needs chip=row,col");
    }
    if ((have_flap || have_period) && e.kind != FaultKind::XMeshFail) {
      throw fail("flap/period only apply to xmesh faults");
    }
    switch (e.kind) {
      case FaultKind::KillCore:
        if (!have_core) throw fail("kill needs core=row,col");
        e.duration = 0;
        break;
      case FaultKind::StallCore:
        if (!have_core) throw fail("stall needs core=row,col");
        if (!have_for || e.duration == 0) throw fail("stall needs for=CYCLES > 0");
        break;
      case FaultKind::LinkFail: {
        if (!have_core) throw fail("link needs router=row,col");
        break;
      }
      case FaultKind::ElinkFail:
      case FaultKind::ElinkFlip:
        if (!have_kind) throw fail("eLink fault needs kind=write|read");
        break;
      case FaultKind::MemFlip:
        if (!have_region) throw fail("mem-flip needs region=dram|scratch");
        if (!e.scratch && have_core) throw fail("mem-flip region=dram takes no core");
        break;
      case FaultKind::ChipCrash:
        if (!have_from) throw fail("chip-crash needs chip=row,col");
        e.duration = 0;  // a crash is always permanent
        break;
      case FaultKind::ChipStall:
        if (!have_from) throw fail("chip-stall needs chip=row,col");
        if (!have_for || e.duration == 0) {
          throw fail("chip-stall needs for=CYCLES > 0");
        }
        break;
      case FaultKind::XMeshFail:
        if (!have_from || !have_to) throw fail("xmesh needs from= and to= chips");
        if (e.chip == e.chip2) throw fail("xmesh from= and to= must differ");
        if (e.flap == 0) throw fail("flap must be at least 1");
        if (e.flap > 1 && e.duration == 0) {
          throw fail("a permanent (for=0) xmesh outage cannot flap");
        }
        if (e.flap > 1 && (!have_period || e.period == 0)) {
          throw fail("xmesh flap>1 needs period=CYCLES > 0");
        }
        break;
      case FaultKind::NoticeDrop:
      case FaultKind::NoticeFlip:
        if (!have_from) {
          throw fail(std::string(to_string(e.kind)) + " needs chip=row,col");
        }
        break;
    }
    if (e.count == 0) throw fail("count must be at least 1");
    e.core_any = !(e.kind == FaultKind::MemFlip && e.scratch && have_core);
    plan.events.push_back(e);
  }
  return plan;
}

FaultPlan load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FaultError("cannot open fault plan: " + path);
  return parse(in, path);
}

}  // namespace epi::fault
