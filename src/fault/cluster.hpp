#pragma once
// Cluster-level fault injection: chip-scoped events of a FaultPlan.
//
// The machine injector (fault/injector.hpp) owns faults *inside* one chip;
// this class owns the kinds that only exist once chips tile into an xMesh
// cluster: whole-chip crashes and host stalls, directed bridge-link outages
// (optionally flapping), and dropped or bit-flipped completion notices.
// Like the machine injector it is passive and seed-deterministic -- it
// never schedules events of its own; the cluster scheduler *asks* it
// ("does this chip crash?", "when is this link clear?", "does this notice
// survive?") at points it already visits, so an empty or chip-fault-free
// plan leaves the run bit-identical to an uninstrumented one.
//
// Thread-safety under the parallel PDES executor: every mutable member is
// per-chip (notice budgets, rng, injection log) and only ever touched from
// the worker advancing that chip's domain; the schedules (crash cycles,
// stall and outage windows) are immutable after construction.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fault/plan.hpp"
#include "sim/random.hpp"

namespace epi::fault {

class ClusterInjector {
public:
  /// Validates chip coordinates against the given grid; throws FaultError
  /// when the plan declares a different grid than the cluster runs.
  ClusterInjector(const FaultPlan& plan, unsigned chip_rows, unsigned chip_cols);

  /// True when the plan carries at least one chip-scoped event. The whole
  /// failover stack (heartbeats, watchdogs, health footer) is gated on this
  /// so plans without chip faults keep their historical bytes.
  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] unsigned chips() const noexcept { return rows_ * cols_; }

  /// The machine-level events scoped to `chip`, as a standalone plan for
  /// that chip's Machine::enable_faults (same seed as the cluster plan).
  [[nodiscard]] FaultPlan machine_plan(unsigned chip) const;

  // ---- static schedule (read-only after construction) --------------------
  /// Cycle the chip dies, or fault::kNever for a healthy chip.
  [[nodiscard]] sim::Cycles crash_at(unsigned chip) const;
  /// 0 when the chip's host runtime is live at `now`, else the cycle the
  /// current freeze window ends (engine events still drain while frozen;
  /// only the scheduler/failover pump stops).
  [[nodiscard]] sim::Cycles host_thaw(unsigned chip, sim::Cycles now) const;
  /// First cycle strictly after `now` at which a freeze window starts, or
  /// kNever. The chip pump must not run past this boundary.
  [[nodiscard]] sim::Cycles next_freeze(unsigned chip, sim::Cycles now) const;
  /// Earliest cycle >= t the directed bridge link src->dst is up, or kNever
  /// when a permanent outage covers every later cycle.
  [[nodiscard]] sim::Cycles xmesh_clear(unsigned src, unsigned dst,
                                        sim::Cycles t) const;

  // ---- notice-path injection (per-sending-chip state; call only from the
  //      worker advancing `chip`) ------------------------------------------
  /// Consume a drop budget if one is armed at `now`: the notice is lost.
  [[nodiscard]] bool drop_notice(unsigned chip, sim::Cycles now);
  /// Flip one seeded-random bit of `payload` if a flip budget is armed (the
  /// receiver's CRC check catches it). Empty payloads are left alone.
  [[nodiscard]] bool flip_notice(unsigned chip, sim::Cycles now,
                                 std::string& payload);

  /// Deterministic injection log of chip-scoped actions taken on `chip`.
  [[nodiscard]] const std::vector<std::string>& injections(unsigned chip) const;
  [[nodiscard]] std::uint64_t notices_dropped(unsigned chip) const;
  [[nodiscard]] std::uint64_t notices_flipped(unsigned chip) const;

private:
  struct Window {
    sim::Cycles from = 0;
    sim::Cycles until = 0;  // kNever = permanent
  };
  struct Budget {
    sim::Cycles from = 0;
    sim::Cycles until = 0;  // kNever = armed until the budget is spent
    std::uint32_t left = 0;
  };
  struct ChipState {
    sim::Cycles crash = kNever;
    std::vector<Window> stalls;
    std::vector<Budget> drops;
    std::vector<Budget> flips;
    sim::Rng rng{0};  // which bit flips; re-seeded per chip in the ctor
    std::vector<std::string> log;
    std::uint64_t dropped = 0;
    std::uint64_t flipped = 0;
  };

  unsigned rows_ = 0;
  unsigned cols_ = 0;
  bool armed_ = false;
  std::uint64_t seed_ = 1;
  std::vector<FaultEvent> machine_events_;  // chip-tagged machine faults
  std::vector<ChipState> chips_;
  // Directed link outages (flapping pre-expanded into window lists).
  std::map<std::pair<unsigned, unsigned>, std::vector<Window>> outages_;
};

}  // namespace epi::fault
