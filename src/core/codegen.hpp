#pragma once
// Which code generator produced the (modelled) inner loops.
//
// The paper's central programming-effort observation is the gap between
// e-gcc output and hand-scheduled assembly: the C stencil reached only "a
// small fraction of peak" and the C matmul "60% of peak" before both inner
// loops were rewritten in assembly. Every schedule model in core/ accepts a
// Codegen so the ablation benches can quantify that gap.

namespace epi::core {

enum class Codegen {
  TunedAsm,   // hand-scheduled FMADD pipelines (sections VI and VII)
  CCompiler,  // e-gcc 4.8.2 with the paper's optimisation flags
};

[[nodiscard]] constexpr const char* to_string(Codegen c) noexcept {
  switch (c) {
    case Codegen::TunedAsm: return "tuned-asm";
    case Codegen::CCompiler: return "c-compiler";
  }
  return "?";
}

}  // namespace epi::core
