#pragma once
// Cycle-cost model of the paper's hand-tuned 5-point stencil inner loop
// (section VI, "Attaining Peak Performance" / "Use of row stripes").
//
// The schedule the paper describes:
//   * the grid is processed in row stripes 20 points wide;
//   * two rows of a stripe are processed per unrolled loop body: 200 FMADD
//     instructions in ~200 cycles with all loads/stores dual-issued into
//     spare integer slots, plus a 4-5 cycle decrement-and-branch penalty;
//   * each stripe pre-loads 44 registers (two rows + boundary values);
//   * ragged final stripes (width < 20) cannot hide their data movement and
//     run at reduced efficiency.
//
// Calibration targets: 0.97-1.14 GFLOPS single-core over the Figure 5 grid
// shapes (81-95% of the 1.2 GFLOPS per-core peak), with rows>cols shapes
// slightly ahead of their transposes.

#include <cstdint>

#include "core/codegen.hpp"
#include "sim/engine.hpp"

namespace epi::core {

struct StencilSchedule {
  /// Stripe width the paper chose from register pressure (20 points).
  static constexpr unsigned kStripeWidth = 20;
  /// FMADD cycles for one two-row pass over a full-width stripe (200 FMADDs)
  /// plus the decrement-and-branch penalty.
  static constexpr unsigned kPairCyclesFull = 205;
  /// Register preload at the top of each stripe: 22 dword loads of grid
  /// data plus pointer setup.
  static constexpr unsigned kStripePrologue = 64;
  /// Per-iteration fixed cost: call, timer reads, pointer re-init.
  static constexpr unsigned kIterFixed = 250;
  /// e-gcc fraction of peak before the assembly rewrite ("a small fraction
  /// of peak"; we use 25%).
  static constexpr double kCCompilerEfficiency = 0.25;

  /// Cycles for one full update of a rows x cols interior tile resident in
  /// scratchpad. Functional results are computed separately; this is the
  /// time the modelled instruction stream takes.
  [[nodiscard]] static sim::Cycles iteration_cycles(unsigned rows, unsigned cols, Codegen cg);

  /// Flops of one update (5 FMADDs, i.e. 10 flops, per interior point).
  [[nodiscard]] static double iteration_flops(unsigned rows, unsigned cols) {
    return 10.0 * rows * cols;
  }
};

}  // namespace epi::core
