#include "core/matmul.hpp"

#include <algorithm>
#include <stdexcept>

#include "dma/descriptor.hpp"
#include "trace/tracer.hpp"
#include "util/reference.hpp"

namespace epi::core {

namespace {

using arch::Addr;
using arch::CoreCoord;
using arch::Dir;
using sim::Cycles;

// Synchronisation flag words (monotone generation counters).
constexpr Addr kAFree = MatmulLayout::kFlags + 0x00;
constexpr Addr kAReady = MatmulLayout::kFlags + 0x04;
constexpr Addr kBFree = MatmulLayout::kFlags + 0x08;
constexpr Addr kBReady = MatmulLayout::kFlags + 0x0C;

constexpr Addr ring_slot(Addr region, unsigned idx) {
  return region + idx * MatmulLayout::kHalfSlot;
}
constexpr Addr db_buf(Addr region, unsigned q) { return region + q * 0xC00; }

/// How an operand block lives in the scratchpad.
enum class CommScheme {
  None,          // single core / no rotation
  DoubleBuffer,  // two full block buffers per operand (b <= 27)
  SplitRing,     // three 2 KB half-slots per operand (the paper's scheme)
};

struct CannonCfg {
  unsigned g = 1;  // workgroup edge
  unsigned m = 32, n = 32, k = 32;  // per-core block dims
  Codegen cg = Codegen::TunedAsm;
  CommScheme scheme = CommScheme::SplitRing;

  [[nodiscard]] std::uint32_t a_bytes() const { return m * n * 4; }
  [[nodiscard]] std::uint32_t b_bytes() const { return n * k * 4; }
};

CommScheme pick_scheme(unsigned g, unsigned m, unsigned n, unsigned k) {
  if (g == 1) return CommScheme::None;
  const std::uint32_t a_bytes = m * n * 4;
  const std::uint32_t b_bytes = n * k * 4;
  if (a_bytes <= 0xC00 && b_bytes <= 0xC00) return CommScheme::DoubleBuffer;
  if (a_bytes <= 0x1000 && b_bytes <= 0x1000 && m % 2 == 0 && n % 2 == 0) {
    return CommScheme::SplitRing;
  }
  throw std::invalid_argument("per-core blocks do not fit the matmul scratchpad layout");
}

/// Addresses of the two halves (rows [0,m/2) and [m/2,m)) of an operand
/// block for the current ring parity / double-buffer parity.
struct BlockAddrs {
  Addr half0 = 0;
  Addr half1 = 0;  // == half0 + size/2 when contiguous
};

BlockAddrs operand_addrs(Addr region, CommScheme scheme, unsigned parity,
                         std::uint32_t bytes) {
  switch (scheme) {
    case CommScheme::None:
      return {region, region + bytes / 2};
    case CommScheme::DoubleBuffer: {
      const Addr base = db_buf(region, parity % 2);
      return {base, base + bytes / 2};
    }
    case CommScheme::SplitRing: {
      const unsigned p = parity % 3;
      return {ring_slot(region, p), ring_slot(region, (p + 1) % 3)};
    }
  }
  return {};
}

/// Functional gather of a block into a contiguous host-side buffer.
void load_block(device::CoreCtx& ctx, BlockAddrs a, unsigned rows, unsigned cols,
                std::vector<float>& out) {
  out.resize(static_cast<std::size_t>(rows) * cols);
  const unsigned half_rows = rows / 2;
  auto h0 = ctx.local_array<float>(a.half0, static_cast<std::size_t>(half_rows) * cols);
  auto h1 = ctx.local_array<float>(a.half1,
                                   static_cast<std::size_t>(rows - half_rows) * cols);
  std::copy(h0.begin(), h0.end(), out.begin());
  std::copy(h1.begin(), h1.end(), out.begin() + h0.size());
}

/// C += A * B functionally, accumulating in the reference's k-major order.
void mac_block(std::span<const float> a, std::span<const float> b, std::span<float> c,
               unsigned m, unsigned n, unsigned k) {
  for (unsigned r = 0; r < m; ++r) {
    for (unsigned j = 0; j < k; ++j) {
      float acc = c[r * k + j];
      for (unsigned p = 0; p < n; ++p) {
        acc += a[r * n + p] * b[p * k + j];
      }
      c[r * k + j] = acc;
    }
  }
}

struct CannonCounters {
  Cycles compute = 0;
  Cycles comm = 0;
  Cycles paging = 0;
};

/// One compute step: charge the schedule, then apply functionally.
sim::Op<void> compute_step(device::CoreCtx& ctx, const CannonCfg& cfg, unsigned parity,
                           CannonCounters& cnt, std::vector<float>& abuf,
                           std::vector<float>& bbuf) {
  const Cycles t0 = ctx.now();
  co_await ctx.compute(MatmulSchedule::block_cycles(cfg.m, cfg.n, cfg.k, cfg.cg));
  ctx.count_flops(MatmulSchedule::block_flops(cfg.m, cfg.n, cfg.k));
  load_block(ctx, operand_addrs(MatmulLayout::kARegion, cfg.scheme, parity, cfg.a_bytes()),
             cfg.m, cfg.n, abuf);
  load_block(ctx, operand_addrs(MatmulLayout::kBRegion, cfg.scheme, parity, cfg.b_bytes()),
             cfg.n, cfg.k, bbuf);
  auto c = ctx.local_array<float>(MatmulLayout::kC,
                                  static_cast<std::size_t>(cfg.m) * cfg.k);
  mac_block(abuf, bbuf, c, cfg.m, cfg.n, cfg.k);
  cnt.compute += ctx.now() - t0;
}

/// The g compute steps + g-1 rotations of one on-chip Cannon phase.
/// `parity` and `round` persist across phases (off-chip paging reuses the
/// rotated storage layout); both are advanced in lock-step on every core.
sim::Op<void> cannon_phase(device::CoreCtx& ctx, CannonCfg cfg, unsigned& parity,
                           std::uint32_t& round, CannonCounters& cnt) {
  std::vector<float> abuf;
  std::vector<float> bbuf;
  const CoreCoord west = ctx.neighbour_wrap(Dir::West);
  const CoreCoord east = ctx.neighbour_wrap(Dir::East);
  const CoreCoord north = ctx.neighbour_wrap(Dir::North);
  const CoreCoord south = ctx.neighbour_wrap(Dir::South);

  for (unsigned s = 0; s < cfg.g; ++s) {
    if (cfg.scheme == CommScheme::DoubleBuffer) {
      // Tell the senders (east for A, south for B) that our back buffers
      // are writable for this round. Posted before computing so transfers
      // overlap with our compute phase.
      ++round;
      co_await ctx.write_u32(ctx.global(east, kAFree), round);
      co_await ctx.write_u32(ctx.global(south, kBFree), round);
      co_await compute_step(ctx, cfg, parity, cnt, abuf, bbuf);
      if (s + 1 == cfg.g) break;

      const Cycles t0 = ctx.now();
      co_await ctx.wait_u32_ge(ctx.my_global(kAFree), round);
      co_await ctx.wait_u32_ge(ctx.my_global(kBFree), round);
      const BlockAddrs mya =
          operand_addrs(MatmulLayout::kARegion, cfg.scheme, parity, cfg.a_bytes());
      const BlockAddrs myb =
          operand_addrs(MatmulLayout::kBRegion, cfg.scheme, parity, cfg.b_bytes());
      const Addr wdst = ctx.global(west, db_buf(MatmulLayout::kARegion, (parity + 1) % 2));
      const Addr ndst = ctx.global(north, db_buf(MatmulLayout::kBRegion, (parity + 1) % 2));
      // A rotates first, then B, as in the paper's Figures 10-13 (the two
      // operands are staged through the same transfer machinery in turn).
      co_await ctx.dma_set_desc();
      auto da = dma::DmaDescriptor::linear(wdst, ctx.my_global(mya.half0), cfg.a_bytes());
      co_await ctx.dma_start(0, da);
      co_await ctx.dma_wait(0);
      co_await ctx.dma_set_desc();
      auto db = dma::DmaDescriptor::linear(ndst, ctx.my_global(myb.half0), cfg.b_bytes());
      co_await ctx.dma_start(1, db);
      co_await ctx.dma_wait(1);
      co_await ctx.write_u32(ctx.global(west, kAReady), round);
      co_await ctx.write_u32(ctx.global(north, kBReady), round);
      co_await ctx.wait_u32_ge(ctx.my_global(kAReady), round);
      co_await ctx.wait_u32_ge(ctx.my_global(kBReady), round);
      parity = (parity + 1) % 2;
      cnt.comm += ctx.now() - t0;
    } else if (cfg.scheme == CommScheme::SplitRing) {
      co_await compute_step(ctx, cfg, parity, cnt, abuf, bbuf);
      if (s + 1 == cfg.g) break;

      const Cycles t0 = ctx.now();
      ++round;
      const unsigned p = parity % 3;
      const unsigned free_slot = (p + 2) % 3;
      // Stage the lower halves into the neighbours' spare half-slots
      // (always free -- Figures 10/11).
      // A's lower half first, then B's, as in Figures 10 and 11.
      co_await ctx.dma_set_desc();
      auto da0 = dma::DmaDescriptor::linear(
          ctx.global(west, ring_slot(MatmulLayout::kARegion, free_slot)),
          ctx.my_global(ring_slot(MatmulLayout::kARegion, p)), cfg.a_bytes() / 2);
      co_await ctx.dma_start(0, da0);
      co_await ctx.dma_wait(0);
      co_await ctx.dma_set_desc();
      auto db0 = dma::DmaDescriptor::linear(
          ctx.global(north, ring_slot(MatmulLayout::kBRegion, free_slot)),
          ctx.my_global(ring_slot(MatmulLayout::kBRegion, p)), cfg.b_bytes() / 2);
      co_await ctx.dma_start(1, db0);
      co_await ctx.dma_wait(1);
      // Our lower slots are now re-usable: tell the cores that write into us.
      co_await ctx.write_u32(ctx.global(east, kAFree), round);
      co_await ctx.write_u32(ctx.global(south, kBFree), round);
      co_await ctx.wait_u32_ge(ctx.my_global(kAFree), round);
      co_await ctx.wait_u32_ge(ctx.my_global(kBFree), round);
      // Upper halves replace the neighbours' vacated lower slots
      // (Figures 12/13).
      co_await ctx.dma_set_desc();
      auto da1 = dma::DmaDescriptor::linear(
          ctx.global(west, ring_slot(MatmulLayout::kARegion, p)),
          ctx.my_global(ring_slot(MatmulLayout::kARegion, (p + 1) % 3)), cfg.a_bytes() / 2);
      co_await ctx.dma_start(0, da1);
      co_await ctx.dma_wait(0);
      co_await ctx.dma_set_desc();
      auto db1 = dma::DmaDescriptor::linear(
          ctx.global(north, ring_slot(MatmulLayout::kBRegion, p)),
          ctx.my_global(ring_slot(MatmulLayout::kBRegion, (p + 1) % 3)), cfg.b_bytes() / 2);
      co_await ctx.dma_start(1, db1);
      co_await ctx.dma_wait(1);
      co_await ctx.write_u32(ctx.global(west, kAReady), round);
      co_await ctx.write_u32(ctx.global(north, kBReady), round);
      co_await ctx.wait_u32_ge(ctx.my_global(kAReady), round);
      co_await ctx.wait_u32_ge(ctx.my_global(kBReady), round);
      parity = (parity + 2) % 3;
      cnt.comm += ctx.now() - t0;
    } else {
      co_await compute_step(ctx, cfg, parity, cnt, abuf, bbuf);
    }
  }
}

// ---- host-side block scatter/gather ----------------------------------------

/// Copy a (rows x cols) sub-block of `mat` (leading dimension ld, origin
/// (row0,col0)) into the two half-slot addresses of core `ctx`.
void scatter_block(host::System& sys, device::CoreCtx& ctx, BlockAddrs dst,
                   std::span<const float> mat, unsigned ld, unsigned row0, unsigned col0,
                   unsigned rows, unsigned cols) {
  std::vector<float> buf(static_cast<std::size_t>(rows) * cols);
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      buf[r * cols + c] = mat[static_cast<std::size_t>(row0 + r) * ld + col0 + c];
    }
  }
  const unsigned half = rows / 2;
  sys.write_array<float>(ctx.my_global(dst.half0),
                         std::span<const float>(buf.data(), std::size_t{half} * cols));
  sys.write_array<float>(ctx.my_global(dst.half1),
                         std::span<const float>(buf.data() + std::size_t{half} * cols,
                                                std::size_t{rows - half} * cols));
}

void gather_block(host::System& sys, device::CoreCtx& ctx, Addr src,
                  std::span<float> mat, unsigned ld, unsigned row0, unsigned col0,
                  unsigned rows, unsigned cols) {
  std::vector<float> buf(static_cast<std::size_t>(rows) * cols);
  sys.read_array<float>(ctx.my_global(src), std::span<float>(buf));
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      mat[static_cast<std::size_t>(row0 + r) * ld + col0 + c] = buf[r * cols + c];
    }
  }
}

}  // namespace

// ---- level 1: single core ---------------------------------------------------

MatmulSingleResult run_matmul_single(host::System& sys, unsigned m, unsigned n, unsigned k,
                                     Codegen cg, std::uint64_t seed, bool verify) {
  if (m * n * 4 > 0x1800 || n * k * 4 > 0x1800 || m * k * 4 > 0x1000) {
    throw std::invalid_argument("single-core operands exceed the scratchpad layout");
  }
  std::vector<float> a(static_cast<std::size_t>(m) * n);
  std::vector<float> b(static_cast<std::size_t>(n) * k);
  std::vector<float> c(static_cast<std::size_t>(m) * k, 0.0f);
  util::fill_random(a, seed);
  util::fill_random(b, seed + 1);

  auto wg = sys.open(0, 0, 1, 1);
  auto& ctx = wg.ctx(0, 0);
  sys.write_array<float>(ctx.my_global(MatmulLayout::kARegion), std::span<const float>(a));
  sys.write_array<float>(ctx.my_global(MatmulLayout::kBRegion), std::span<const float>(b));
  sys.write_array<float>(ctx.my_global(MatmulLayout::kC), std::span<const float>(c));

  CannonCfg cfg;
  cfg.g = 1;
  cfg.m = m;
  cfg.n = n;
  cfg.k = k;
  cfg.cg = cg;
  cfg.scheme = CommScheme::None;
  CannonCounters cnt;
  wg.load([&](device::CoreCtx& kctx) -> sim::Op<void> {
    return [](device::CoreCtx& x, CannonCfg cc, CannonCounters& cn) -> sim::Op<void> {
      unsigned parity = 0;
      std::uint32_t round = 0;
      co_await cannon_phase(x, cc, parity, round, cn);
    }(kctx, cfg, cnt);
  });
  MatmulSingleResult r;
  r.cycles = wg.run();
  r.gflops = sys.gflops(MatmulSchedule::block_flops(m, n, k), r.cycles);
  if (verify) {
    sys.read_array<float>(ctx.my_global(MatmulLayout::kC), std::span<float>(c));
    std::vector<float> ref(c.size());
    util::matmul_reference(a, b, ref, m, n, k);
    r.max_error = util::max_abs_diff(c, ref);
    r.verified = r.max_error == 0.0f;
  } else {
    r.verified = true;
  }
  return r;
}

// ---- level 2: on-chip Cannon -------------------------------------------------

namespace {

MatmulOnChipResult run_onchip_impl(host::System& sys, unsigned g, unsigned m, unsigned n,
                                   unsigned k, Codegen cg, std::uint64_t seed,
                                   bool verify) {
  const CommScheme scheme = pick_scheme(g, m, n, k);
  if (m * k * 4 > 0x1000) {
    throw std::invalid_argument("per-core C block exceeds 4 KB");
  }
  const unsigned gm = g * m;
  const unsigned gn = g * n;
  const unsigned gk = g * k;
  std::vector<float> a(static_cast<std::size_t>(gm) * gn);
  std::vector<float> b(static_cast<std::size_t>(gn) * gk);
  std::vector<float> c(static_cast<std::size_t>(gm) * gk, 0.0f);
  util::fill_random(a, seed);
  util::fill_random(b, seed + 1);

  auto wg = sys.open(0, 0, g, g);
  // Pre-skewed initial distribution: core (i,j) holds A(i, (i+j)%g) and
  // B((i+j)%g, j) in block units.
  for (unsigned i = 0; i < g; ++i) {
    for (unsigned j = 0; j < g; ++j) {
      auto& ctx = wg.ctx(i, j);
      const unsigned s = (i + j) % g;
      scatter_block(sys, ctx, operand_addrs(MatmulLayout::kARegion, scheme, 0, m * n * 4),
                    a, gn, i * m, s * n, m, n);
      scatter_block(sys, ctx, operand_addrs(MatmulLayout::kBRegion, scheme, 0, n * k * 4),
                    b, gk, s * n, j * k, n, k);
      std::vector<float> zeros(static_cast<std::size_t>(m) * k, 0.0f);
      sys.write_array<float>(ctx.my_global(MatmulLayout::kC), std::span<const float>(zeros));
      for (Addr f : {kAFree, kAReady, kBFree, kBReady}) {
        sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(f), 0, ctx.coord());
      }
    }
  }

  CannonCfg cfg;
  cfg.g = g;
  cfg.m = m;
  cfg.n = n;
  cfg.k = k;
  cfg.cg = cg;
  cfg.scheme = scheme;
  std::vector<CannonCounters> counters(wg.size());
  wg.load([&](device::CoreCtx& kctx) -> sim::Op<void> {
    return [](device::CoreCtx& x, CannonCfg cc, CannonCounters& cn) -> sim::Op<void> {
      unsigned parity = 0;
      std::uint32_t round = 0;
      co_await cannon_phase(x, cc, parity, round, cn);
    }(kctx, cfg, counters[kctx.group_index()]);
  });

  MatmulOnChipResult r;
  r.cycles = wg.run();
  r.gflops = sys.gflops(MatmulSchedule::block_flops(gm, gn, gk), r.cycles);
  double frac = 0.0;
  for (const auto& cn : counters) {
    const double tot = static_cast<double>(cn.compute + cn.comm);
    frac += tot > 0 ? static_cast<double>(cn.compute) / tot : 1.0;
  }
  r.compute_fraction = frac / static_cast<double>(counters.size());

  if (verify) {
    for (unsigned i = 0; i < g; ++i) {
      for (unsigned j = 0; j < g; ++j) {
        gather_block(sys, wg.ctx(i, j), MatmulLayout::kC, c, gk, i * m, j * k, m, k);
      }
    }
    std::vector<float> ref(c.size());
    util::matmul_reference(a, b, ref, gm, gn, gk);
    r.max_error = util::max_abs_diff(c, ref);
    r.verified = r.max_error <= 5e-3f;
  } else {
    r.verified = true;
  }
  return r;
}

}  // namespace

MatmulOnChipResult run_matmul_onchip(host::System& sys, unsigned group, unsigned block,
                                     Codegen cg, std::uint64_t seed, bool verify) {
  return run_onchip_impl(sys, group, block, block, block, cg, seed, verify);
}

MatmulOnChipResult run_matmul_onchip_rect(host::System& sys, unsigned group, unsigned m,
                                          unsigned n, unsigned k, Codegen cg,
                                          std::uint64_t seed, bool verify) {
  return run_onchip_impl(sys, group, m, n, k, cg, seed, verify);
}

// ---- level 3: off-chip paged -------------------------------------------------

namespace {

struct OffChipShared {
  Addr a = 0, b = 0, c = 0;
  unsigned n_global = 0;
};

/// Kernel: page pre-skewed sub-blocks of each superblock pair, run the
/// on-chip Cannon phase per page, accumulate C, write the finished C
/// superblock back to shared DRAM.
sim::Op<void> offchip_kernel(device::CoreCtx& ctx, CannonCfg cfg, OffChipShared shm,
                             CannonCounters& cnt) {
  const unsigned g = cfg.g;
  const unsigned b = cfg.m;  // square blocks
  const unsigned super = g * b;
  const unsigned s_count = shm.n_global / super;
  const unsigned i = ctx.group_row();
  const unsigned j = ctx.group_col();
  const unsigned skew = (i + j) % g;
  const unsigned row_bytes = b * 4;
  const std::int32_t ld_bytes = static_cast<std::int32_t>(shm.n_global * 4);

  unsigned parity = 0;
  std::uint32_t round = 0;
  bool c_outstanding = false;  // previous C block still draining on channel 0
  auto cblock = ctx.local_array<float>(MatmulLayout::kC, static_cast<std::size_t>(b) * b);

  for (unsigned bi = 0; bi < s_count; ++bi) {
    for (unsigned bj = 0; bj < s_count; ++bj) {
      for (unsigned t = 0; t < s_count; ++t) {
        // Page in this core's pre-skewed sub-blocks of A(bi,t) and B(t,bj).
        // All four 2D descriptors chain on channel 1 so the previous C
        // block's write-back (channel 0, off-chip *write* network) overlaps
        // with this page-in (off-chip *read* network).
        const Cycles p0 = ctx.now();
        // The whole page-in -- DMA waits *and* the levelling barrier -- is one
        // Comm phase, matching the paper's measurement semantics (cnt.paging
        // below likewise includes the barrier).
        ctx.phase_begin(trace::Phase::Comm, "page-in");
        const BlockAddrs da =
            operand_addrs(MatmulLayout::kARegion, cfg.scheme, parity, cfg.a_bytes());
        const BlockAddrs db =
            operand_addrs(MatmulLayout::kBRegion, cfg.scheme, parity, cfg.b_bytes());
        const std::uint32_t a_row0 = (bi * g + i) * b;
        const std::uint32_t a_col0 = (t * g + skew) * b;
        const std::uint32_t b_row0 = (t * g + skew) * b;
        const std::uint32_t b_col0 = (bj * g + j) * b;
        const auto src_of = [&](Addr base, std::uint32_t r0, std::uint32_t c0) {
          return base + (static_cast<Addr>(r0) * shm.n_global + c0) * 4;
        };
        const auto page_desc = [&](Addr dst, Addr src, unsigned rows) {
          return dma::DmaDescriptor::strided(dst, src, rows, row_bytes, ld_bytes,
                                             static_cast<std::int32_t>(row_bytes),
                                             dma::ElemSize::DWord);
        };
        co_await ctx.dma_set_desc();
        auto a0 = page_desc(ctx.my_global(da.half0), src_of(shm.a, a_row0, a_col0), b / 2);
        co_await ctx.dma_set_desc();
        auto a1 = page_desc(ctx.my_global(da.half1), src_of(shm.a, a_row0 + b / 2, a_col0),
                            b / 2);
        co_await ctx.dma_set_desc();
        auto b0 = page_desc(ctx.my_global(db.half0), src_of(shm.b, b_row0, b_col0),
                            cfg.n / 2);
        co_await ctx.dma_set_desc();
        auto b1 = page_desc(ctx.my_global(db.half1),
                            src_of(shm.b, b_row0 + cfg.n / 2, b_col0), cfg.n / 2);
        a0.chain = &a1;
        a1.chain = &b0;
        b0.chain = &b1;
        co_await ctx.dma_start(1, a0);
        co_await ctx.dma_wait(1);

        if (t == 0) {
          // C write-back has fully hidden behind the first page-in by now;
          // reclaim the accumulator and clear it (dword stores).
          if (c_outstanding) {
            co_await ctx.dma_wait(0);
            c_outstanding = false;
          }
          co_await ctx.compute(b * b / 2);
          std::fill(cblock.begin(), cblock.end(), 0.0f);
        }
        co_await ctx.barrier();
        ctx.phase_end();
        cnt.paging += ctx.now() - p0;

        co_await cannon_phase(ctx, cfg, parity, round, cnt);
        co_await ctx.barrier();
      }

      // Kick the finished C block back to shared DRAM without blocking.
      const Cycles w0 = ctx.now();
      ctx.phase_begin(trace::Phase::Comm, "c-writeback");
      const std::uint32_t c_row0 = (bi * g + i) * b;
      const std::uint32_t c_col0 = (bj * g + j) * b;
      co_await ctx.dma_set_desc();
      auto cd = dma::DmaDescriptor::strided(
          shm.c + (static_cast<Addr>(c_row0) * shm.n_global + c_col0) * 4,
          ctx.my_global(MatmulLayout::kC), b, row_bytes,
          static_cast<std::int32_t>(row_bytes), ld_bytes, dma::ElemSize::DWord);
      co_await ctx.dma_start(0, cd);
      c_outstanding = true;
      ctx.phase_end();
      cnt.paging += ctx.now() - w0;
    }
  }
  if (c_outstanding) co_await ctx.dma_wait(0);
}

}  // namespace

MatmulOffChipResult run_matmul_offchip(host::System& sys, unsigned n_global, unsigned group,
                                       unsigned block, Codegen cg, std::uint64_t seed,
                                       bool verify) {
  const unsigned super = group * block;
  if (n_global % super != 0) {
    throw std::invalid_argument("global size must be a multiple of group*block");
  }
  const CommScheme scheme = pick_scheme(group, block, block, block);

  const std::size_t elems = static_cast<std::size_t>(n_global) * n_global;
  std::vector<float> a(elems);
  std::vector<float> b(elems);
  util::fill_random(a, seed);
  util::fill_random(b, seed + 1);

  sys.shm_reset();
  OffChipShared shm;
  shm.a = sys.shm_alloc(elems * 4);
  shm.b = sys.shm_alloc(elems * 4);
  shm.c = sys.shm_alloc(elems * 4);
  shm.n_global = n_global;
  sys.write_array<float>(shm.a, std::span<const float>(a));
  sys.write_array<float>(shm.b, std::span<const float>(b));

  auto wg = sys.open(0, 0, group, group);
  for (unsigned i = 0; i < group; ++i) {
    for (unsigned j = 0; j < group; ++j) {
      auto& ctx = wg.ctx(i, j);
      for (Addr f : {kAFree, kAReady, kBFree, kBReady}) {
        sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(f), 0, ctx.coord());
      }
    }
  }

  CannonCfg cfg;
  cfg.g = group;
  cfg.m = cfg.n = cfg.k = block;
  cfg.cg = cg;
  cfg.scheme = scheme;
  std::vector<CannonCounters> counters(wg.size());
  wg.load([&](device::CoreCtx& kctx) -> sim::Op<void> {
    return offchip_kernel(kctx, cfg, shm, counters[kctx.group_index()]);
  });

  MatmulOffChipResult r;
  r.cycles = wg.run();
  r.gflops = sys.gflops(2.0 * n_global * n_global * static_cast<double>(n_global), r.cycles);
  double comp = 0.0;
  double page = 0.0;
  for (const auto& cn : counters) {
    const double tot = static_cast<double>(cn.compute + cn.comm + cn.paging);
    if (tot > 0) {
      comp += static_cast<double>(cn.compute) / tot;
      page += static_cast<double>(cn.paging) / tot;
    }
  }
  r.compute_fraction = comp / static_cast<double>(counters.size());
  r.transfer_fraction = page / static_cast<double>(counters.size());

  if (verify) {
    std::vector<float> c(elems);
    sys.read_array<float>(shm.c, std::span<float>(c));
    std::vector<float> ref(elems);
    util::matmul_reference(a, b, ref, n_global, n_global, n_global);
    r.max_error = util::max_abs_diff(c, ref);
    r.verified = r.max_error <= 5e-3f * static_cast<float>(n_global) / 256.0f;
  } else {
    r.verified = true;
  }
  return r;
}

}  // namespace epi::core
