#include "core/stencil_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/stencil_detail.hpp"
#include "dma/descriptor.hpp"

namespace epi::core {

namespace {

using arch::Addr;
using detail::NeighbourInfo;
using sim::Cycles;

struct PipePlan {
  unsigned n = 0;           // global interior edge
  unsigned window = 0;      // L = tile_interior + 2
  unsigned per_core = 0;    // tile_interior / group
  unsigned out_edge = 0;    // S
  unsigned blocks = 0;      // N / S per axis
  unsigned batches = 0;
  Addr buf[2] = {0, 0};     // ping-pong DRAM grids, (n+2)^2 floats each
};

/// The per-core streaming kernel: for every batch and supertile, page the
/// core's window tile in, run up to `depth` iterations with on-chip halo
/// exchange (skipping the exchange after the final one -- those edges are
/// never read), and page the core's slice of the exact output region out.
sim::Op<void> pipeline_kernel(device::CoreCtx& ctx, StencilPipelineConfig cfg,
                              PipePlan plan) {
  const unsigned tp = plan.per_core;
  const unsigned tr = tp + 2;
  const NeighbourInfo nb = detail::find_neighbours(ctx);
  const unsigned pr = ctx.group_row();
  const unsigned pc = ctx.group_col();
  const std::uint32_t pitch = plan.n + 2;  // DRAM grid row, in floats

  StencilConfig step_cfg;
  step_cfg.rows = tp;
  step_cfg.cols = tp;
  step_cfg.weights = cfg.weights;
  step_cfg.codegen = cfg.codegen;

  std::vector<float> snap;
  std::uint32_t gen = 0;
  const auto clamp_window = [&](unsigned block) {
    const long ideal = static_cast<long>(block) * plan.out_edge + 1 - cfg.depth;
    const long max_start = static_cast<long>(plan.n) + 2 - plan.window;
    return static_cast<std::uint32_t>(std::clamp(ideal, 0L, max_start));
  };

  unsigned done = 0;
  for (unsigned batch = 0; batch < plan.batches; ++batch) {
    const Addr in = plan.buf[batch % 2];
    const Addr out = plan.buf[(batch + 1) % 2];
    const unsigned depth_b = std::min(cfg.depth, cfg.iters - done);

    for (unsigned sbr = 0; sbr < plan.blocks; ++sbr) {
      for (unsigned sbc = 0; sbc < plan.blocks; ++sbc) {
        const std::uint32_t wr = clamp_window(sbr);
        const std::uint32_t wc = clamp_window(sbc);

        // Page in my (tp+2)^2 tile of the window, halo ring included.
        const Addr src = in + ((wr + pr * tp) * pitch + wc + pc * tp) * 4;
        co_await ctx.dma_set_desc();
        auto din = dma::DmaDescriptor::strided(
            ctx.my_global(StencilLayout::kGrid), src, tr, tr * 4,
            static_cast<std::int32_t>(pitch * 4), static_cast<std::int32_t>(tr * 4),
            dma::ElemSize::Word);
        co_await ctx.dma_start(0, din);
        co_await ctx.dma_wait(0);

        for (unsigned it = 1; it <= depth_b; ++it) {
          (void)co_await detail::stencil_step(ctx, step_cfg, snap);
          if (it < depth_b) {
            ++gen;
            co_await detail::exchange_halos(ctx, nb, tp, tp, gen);
          }
        }

        // Write back my slice of the exact output region: the intersection
        // of my tile interior with [sb*S+1, sb*S+1+S) on each axis.
        const std::uint32_t my_r0 = wr + 1 + pr * tp;
        const std::uint32_t my_c0 = wc + 1 + pc * tp;
        const std::uint32_t out_r0 = std::max(my_r0, sbr * plan.out_edge + 1);
        const std::uint32_t out_r1 =
            std::min(my_r0 + tp, (sbr + 1) * plan.out_edge + 1);
        const std::uint32_t out_c0 = std::max(my_c0, sbc * plan.out_edge + 1);
        const std::uint32_t out_c1 =
            std::min(my_c0 + tp, (sbc + 1) * plan.out_edge + 1);
        if (out_r0 < out_r1 && out_c0 < out_c1) {
          const std::uint32_t rows = out_r1 - out_r0;
          const std::uint32_t cols = out_c1 - out_c0;
          const Addr tile_src = ctx.my_global(
              StencilLayout::kGrid +
              ((out_r0 - my_r0 + 1) * tr + (out_c0 - my_c0 + 1)) * 4);
          const Addr dram_dst = out + (out_r0 * pitch + out_c0) * 4;
          co_await ctx.dma_set_desc();
          auto dout = dma::DmaDescriptor::strided(
              dram_dst, tile_src, rows, cols * 4, static_cast<std::int32_t>(tr * 4),
              static_cast<std::int32_t>(pitch * 4), dma::ElemSize::Word);
          co_await ctx.dma_start(1, dout);
          co_await ctx.dma_wait(1);
        }
      }
    }
    done += depth_b;
    // The output grid becomes the next batch's input: every write-back must
    // land before anyone reads.
    co_await ctx.barrier();
  }
}

}  // namespace

StencilPipelineResult run_stencil_pipeline(host::System& sys, unsigned n_interior,
                                           const StencilPipelineConfig& cfg,
                                           std::uint64_t seed, bool verify) {
  if (cfg.tile_interior == 0 || cfg.tile_interior % cfg.group != 0) {
    throw std::invalid_argument("tile_interior must be a positive multiple of group");
  }
  if (cfg.tile_interior + 2 <= 2 * cfg.depth) {
    throw std::invalid_argument("depth too large: window has no exact output region");
  }
  const unsigned s = cfg.out_edge();
  if (n_interior % s != 0) {
    throw std::invalid_argument("grid edge must be a multiple of the output edge S");
  }
  if (cfg.tile_interior + 2 > n_interior + 2) {
    throw std::invalid_argument("window larger than the grid");
  }
  const unsigned per_core = cfg.tile_interior / cfg.group;
  if (!StencilLayout::tile_fits(per_core, per_core)) {
    throw std::invalid_argument("per-core window tile does not fit the scratchpad");
  }

  PipePlan plan;
  plan.n = n_interior;
  plan.window = cfg.tile_interior + 2;
  plan.per_core = per_core;
  plan.out_edge = s;
  plan.blocks = n_interior / s;
  plan.batches = (cfg.iters + cfg.depth - 1) / cfg.depth;

  const std::size_t grid_floats = static_cast<std::size_t>(n_interior + 2) * (n_interior + 2);
  sys.shm_reset();
  plan.buf[0] = sys.shm_alloc(grid_floats * 4);
  plan.buf[1] = sys.shm_alloc(grid_floats * 4);

  std::vector<float> grid(grid_floats);
  util::fill_random(grid, seed);
  sys.write_array<float>(plan.buf[0], std::span<const float>(grid));
  // The fixed boundary ring never changes; pre-place it in both buffers so
  // ping-ponging preserves it.
  sys.write_array<float>(plan.buf[1], std::span<const float>(grid));

  auto wg = sys.open(0, 0, cfg.group, cfg.group);
  for (unsigned r = 0; r < cfg.group; ++r) {
    for (unsigned c = 0; c < cfg.group; ++c) {
      const bool missing[4] = {r == 0, r + 1 == cfg.group, c == 0, c + 1 == cfg.group};
      detail::init_flags(sys, wg.ctx(r, c), missing);
    }
  }

  const std::uint64_t rd0 = sys.machine().elink_read().total_bytes_served();
  const std::uint64_t wr0 = sys.machine().elink_write().total_bytes_served();
  wg.load([&cfg, &plan](device::CoreCtx& ctx) -> sim::Op<void> {
    return pipeline_kernel(ctx, cfg, plan);
  });

  StencilPipelineResult res;
  res.cycles = wg.run();
  res.dram_read_bytes = sys.machine().elink_read().total_bytes_served() - rd0;
  res.dram_write_bytes = sys.machine().elink_write().total_bytes_served() - wr0;

  const double useful = 10.0 * n_interior * n_interior * cfg.iters;
  res.useful_gflops = sys.gflops(useful, res.cycles);
  const double window_flops = 10.0 * cfg.tile_interior * cfg.tile_interior;
  double computed = 0.0;
  unsigned done = 0;
  for (unsigned b = 0; b < plan.batches; ++b) {
    const unsigned depth_b = std::min(cfg.depth, cfg.iters - done);
    computed += window_flops * depth_b * plan.blocks * plan.blocks;
    done += depth_b;
  }
  res.redundancy = computed / useful;

  if (verify) {
    const Addr final_buf = plan.buf[plan.batches % 2];
    std::vector<float> result(grid_floats);
    sys.read_array<float>(final_buf, std::span<float>(result));
    util::stencil5_reference_iterate(grid, n_interior + 2, n_interior + 2, cfg.weights,
                                     cfg.iters);
    res.max_error = util::max_abs_diff(result, grid);
    res.verified = res.max_error == 0.0f;
  } else {
    res.verified = true;
  }
  return res;
}

}  // namespace epi::core
