#include "core/summa.hpp"

#include <stdexcept>
#include <vector>

#include "dma/descriptor.hpp"
#include "util/reference.hpp"

namespace epi::core {

namespace {

using arch::Addr;
using arch::CoreCoord;
using sim::Cycles;

struct SummaCounters {
  Cycles compute = 0;
  Cycles comm = 0;
};

sim::Op<void> summa_kernel(device::CoreCtx& ctx, unsigned g, unsigned b, Codegen cg,
                           SummaCounters& cnt) {
  const unsigned i = ctx.group_row();
  const unsigned j = ctx.group_col();
  const std::uint32_t block_bytes = b * b * 4;
  auto panel_a = ctx.local_array<float>(SummaLayout::kPanelA, std::size_t{b} * b);
  auto panel_b = ctx.local_array<float>(SummaLayout::kPanelB, std::size_t{b} * b);
  auto home_a = ctx.local_array<float>(SummaLayout::kA, std::size_t{b} * b);
  auto home_b = ctx.local_array<float>(SummaLayout::kB, std::size_t{b} * b);
  auto c = ctx.local_array<float>(SummaLayout::kC, std::size_t{b} * b);
  std::vector<float> abuf(panel_a.size());
  std::vector<float> bbuf(panel_b.size());

  for (std::uint32_t t = 0; t < g; ++t) {
    const std::uint32_t gen = t + 1;
    // Broadcast the A panel along my row if I own column t.
    if (j == t) {
      co_await ctx.compute(b * b / 2);  // local copy into the panel buffer
      std::copy(home_a.begin(), home_a.end(), panel_a.begin());
      for (unsigned peer = 0; peer < g; ++peer) {
        if (peer == j) continue;
        const CoreCoord dst{ctx.group().origin.row + i, ctx.group().origin.col + peer};
        co_await ctx.dma_set_desc();
        auto d = dma::DmaDescriptor::linear(ctx.global(dst, SummaLayout::kPanelA),
                                            ctx.my_global(SummaLayout::kPanelA),
                                            block_bytes);
        co_await ctx.dma_start(0, d);
        co_await ctx.dma_wait(0);
        co_await ctx.write_u32(ctx.global(dst, SummaLayout::kFlagPanelA), gen);
      }
      co_await ctx.write_u32(ctx.my_global(SummaLayout::kFlagPanelA), gen);
    }
    // Broadcast the B panel along my column if I own row t.
    if (i == t) {
      co_await ctx.compute(b * b / 2);
      std::copy(home_b.begin(), home_b.end(), panel_b.begin());
      for (unsigned peer = 0; peer < g; ++peer) {
        if (peer == i) continue;
        const CoreCoord dst{ctx.group().origin.row + peer, ctx.group().origin.col + j};
        co_await ctx.dma_set_desc();
        auto d = dma::DmaDescriptor::linear(ctx.global(dst, SummaLayout::kPanelB),
                                            ctx.my_global(SummaLayout::kPanelB),
                                            block_bytes);
        co_await ctx.dma_start(1, d);
        co_await ctx.dma_wait(1);
        co_await ctx.write_u32(ctx.global(dst, SummaLayout::kFlagPanelB), gen);
      }
      co_await ctx.write_u32(ctx.my_global(SummaLayout::kFlagPanelB), gen);
    }

    const Cycles w0 = ctx.now();
    co_await ctx.wait_u32_ge(ctx.my_global(SummaLayout::kFlagPanelA), gen);
    co_await ctx.wait_u32_ge(ctx.my_global(SummaLayout::kFlagPanelB), gen);
    cnt.comm += ctx.now() - w0;

    const Cycles c0 = ctx.now();
    co_await ctx.compute(MatmulSchedule::block_cycles(b, b, b, cg));
    abuf.assign(panel_a.begin(), panel_a.end());
    bbuf.assign(panel_b.begin(), panel_b.end());
    for (unsigned r = 0; r < b; ++r) {
      for (unsigned col = 0; col < b; ++col) {
        float acc = c[r * b + col];
        for (unsigned p = 0; p < b; ++p) {
          acc += abuf[r * b + p] * bbuf[p * b + col];
        }
        c[r * b + col] = acc;
      }
    }
    cnt.compute += ctx.now() - c0;

    // Panel buffers are reused next step; a barrier keeps step t+1's
    // broadcasts from overwriting panels still being consumed.
    const Cycles s0 = ctx.now();
    co_await ctx.barrier();
    cnt.comm += ctx.now() - s0;
  }
}

}  // namespace

MatmulOnChipResult run_matmul_summa(host::System& sys, unsigned group, unsigned block,
                                    Codegen cg, std::uint64_t seed, bool verify) {
  if (block > SummaLayout::kMaxBlock) {
    throw std::invalid_argument("SUMMA block exceeds the 3 KB slot layout");
  }
  const unsigned gn = group * block;
  std::vector<float> a(static_cast<std::size_t>(gn) * gn);
  std::vector<float> b(static_cast<std::size_t>(gn) * gn);
  std::vector<float> c(static_cast<std::size_t>(gn) * gn, 0.0f);
  util::fill_random(a, seed);
  util::fill_random(b, seed + 1);

  auto wg = sys.open(0, 0, group, group);
  std::vector<float> buf(static_cast<std::size_t>(block) * block);
  for (unsigned i = 0; i < group; ++i) {
    for (unsigned j = 0; j < group; ++j) {
      auto& ctx = wg.ctx(i, j);
      for (unsigned r = 0; r < block; ++r) {
        for (unsigned cc = 0; cc < block; ++cc) {
          buf[r * block + cc] = a[(std::size_t{i} * block + r) * gn + j * block + cc];
        }
      }
      sys.write_array<float>(ctx.my_global(SummaLayout::kA), std::span<const float>(buf));
      for (unsigned r = 0; r < block; ++r) {
        for (unsigned cc = 0; cc < block; ++cc) {
          buf[r * block + cc] = b[(std::size_t{i} * block + r) * gn + j * block + cc];
        }
      }
      sys.write_array<float>(ctx.my_global(SummaLayout::kB), std::span<const float>(buf));
      std::vector<float> zeros(buf.size(), 0.0f);
      sys.write_array<float>(ctx.my_global(SummaLayout::kC), std::span<const float>(zeros));
      for (Addr f : {SummaLayout::kFlagPanelA, SummaLayout::kFlagPanelB}) {
        sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(f), 0, ctx.coord());
      }
    }
  }

  std::vector<SummaCounters> counters(wg.size());
  wg.load([&](device::CoreCtx& kctx) -> sim::Op<void> {
    return summa_kernel(kctx, group, block, cg, counters[kctx.group_index()]);
  });

  MatmulOnChipResult r;
  r.cycles = wg.run();
  r.gflops = sys.gflops(2.0 * gn * gn * static_cast<double>(gn), r.cycles);
  double frac = 0.0;
  for (const auto& cn : counters) {
    const double tot = static_cast<double>(cn.compute + cn.comm);
    frac += tot > 0 ? static_cast<double>(cn.compute) / tot : 1.0;
  }
  r.compute_fraction = frac / static_cast<double>(counters.size());

  if (verify) {
    for (unsigned i = 0; i < group; ++i) {
      for (unsigned j = 0; j < group; ++j) {
        auto& ctx = wg.ctx(i, j);
        sys.read_array<float>(ctx.my_global(SummaLayout::kC), std::span<float>(buf));
        for (unsigned r = 0; r < block; ++r) {
          for (unsigned cc = 0; cc < block; ++cc) {
            c[(std::size_t{i} * block + r) * gn + j * block + cc] = buf[r * block + cc];
          }
        }
      }
    }
    std::vector<float> ref(c.size());
    util::matmul_reference(a, b, ref, gn, gn, gn);
    r.max_error = util::max_abs_diff(c, ref);
    r.verified = r.max_error <= 5e-3f;
  } else {
    r.verified = true;
  }
  return r;
}

}  // namespace epi::core
