#pragma once
// The paper's heat-stencil application (section VI): a 5-point star stencil
// mapped onto the mesh by 2D domain decomposition, computed from scratchpad
// with the hand-tuned schedule, halos exchanged by chained 2D DMA and
// flag-based neighbour synchronisation (Listing 2).
//
// Per-core scratchpad layout (mirrors the paper's bank discipline):
//   0x0000-0x01FF  runtime reserved (see device::CoreCtx)
//   0x0200-0x1FFF  (modelled) code bank
//   0x2000-0x25FF  (modelled) stack / locals
//   0x2600-0x2EFF  double-buffered halo strips (optimisation variant only)
//   0x2F00-0x2F3F  synchronisation flags (iter[4] then xfer[4])
//   0x3000-0x7FFF  grid tile, halo-inclusive, row-major floats

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/address_map.hpp"
#include "core/codegen.hpp"
#include "core/stencil_schedule.hpp"
#include "device/core_ctx.hpp"
#include "host/system.hpp"
#include "sim/task.hpp"
#include "util/reference.hpp"

namespace epi::core {

enum class StencilShape {
  Star5,  // the paper's "+" stencil (T, L, C, R, B)
  X5,     // diagonal "X" variant (section VI "Further Observations")
  Nine,   // full 9-point variant
};

struct StencilConfig {
  unsigned rows = 20;  // interior rows per core
  unsigned cols = 20;  // interior cols per core
  unsigned iters = 50; // the paper evaluates 50 iterations
  util::StencilWeights weights{};
  std::array<float, 9> weights9{};  // used when shape == Nine
  StencilShape shape = StencilShape::Star5;
  Codegen codegen = Codegen::TunedAsm;
  /// Exchange halos every iteration. Figure 6's lighter bars are the same
  /// run with communication off.
  bool communicate = true;
  /// "Further Optimizations": double-buffer the boundary rows/columns so
  /// transfers start without waiting for the neighbours' compute phase.
  bool double_buffer_boundaries = false;
};

/// Scratchpad addresses used by the stencil kernel.
struct StencilLayout {
  static constexpr arch::Addr kHaloStrips = 0x2600;
  static constexpr arch::Addr kIterFlags = 0x2F00;      // [N,S,W,E]
  static constexpr arch::Addr kXferFlags = 0x2F20;      // [N,S,W,E]
  static constexpr arch::Addr kDiagIterFlags = 0x2F40;  // [NW,NE,SW,SE]
  static constexpr arch::Addr kDiagXferFlags = 0x2F60;  // [NW,NE,SW,SE]
  static constexpr arch::Addr kGrid = 0x3000;
  static constexpr arch::Addr kGridEnd = 0x8000;

  /// Largest halo-inclusive tile (in floats) that fits the layout.
  static constexpr std::size_t kMaxTileFloats = (kGridEnd - kGrid) / sizeof(float);
  [[nodiscard]] static bool tile_fits(unsigned rows, unsigned cols) noexcept {
    return static_cast<std::size_t>(rows + 2) * (cols + 2) <= kMaxTileFloats;
  }
};

/// Per-core cycle accounting, filled in by the kernel.
struct StencilCoreStats {
  sim::Cycles compute_cycles = 0;
  sim::Cycles comm_cycles = 0;
};

/// The device kernel: runs cfg.iters updates of this core's tile, with
/// halo exchange per iteration when cfg.communicate. `stats` may be null.
sim::Op<void> stencil_kernel(device::CoreCtx& ctx, StencilConfig cfg,
                             StencilCoreStats* stats);

struct StencilResult {
  sim::Cycles cycles = 0;   // device time, start signal to completion
  double flops = 0.0;
  double gflops = 0.0;
  double compute_fraction = 1.0;  // mean per-core compute / total
};

/// Run a (group_rows x group_cols) workgroup over `grid`, a halo-inclusive
/// global array of (group_rows*cfg.rows + 2) x (group_cols*cfg.cols + 2)
/// floats, updated in place. Host-side scatter/gather is untimed, matching
/// the paper's measurement boundary.
StencilResult run_stencil(host::System& sys, unsigned group_rows, unsigned group_cols,
                          const StencilConfig& cfg, std::span<float> grid);

/// Convenience wrapper: random initial grid, optional verification against
/// the host reference.
struct StencilExperiment {
  StencilResult result;
  float max_error = 0.0f;
  bool verified = false;
};
StencilExperiment run_stencil_experiment(host::System& sys, unsigned group_rows,
                                         unsigned group_cols, const StencilConfig& cfg,
                                         std::uint64_t seed, bool verify);

}  // namespace epi::core
