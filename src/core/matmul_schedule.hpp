#pragma once
// Cycle-cost model of the paper's hand-tuned single-core matmul kernel
// (section VII, "Tuned single-core matmul kernel").
//
// The schedule the paper describes for C(MxK) += A(MxN) * B(NxK):
//   * a macro multiplies one element of an A row by a full B row: for K=32
//     that is 32 FMADDs with ~18 interleaved loads dual-issued, executing
//     in 32 cycles (64 flops);
//   * one C row = N macro expansions, then the accumulated row is written
//     out with double-word stores and the accumulators cleared;
//   * rows of A load once; every row of B reloads per A row;
//   * a branch loops to the next C row.
//
// Calibration targets (Table IV): 0.85 GFLOPS at 8x8 rising to 1.15 GFLOPS
// (95.9% of peak) at 32x32.

#include "core/codegen.hpp"
#include "sim/engine.hpp"

namespace epi::core {

struct MatmulSchedule {
  /// Per-C-row epilogue: K/2 dword stores of results, K/2 dword clears of
  /// accumulators, the loop branch and non-hidden A-row load residue.
  [[nodiscard]] static sim::Cycles row_overhead(unsigned k) { return k + 11; }
  /// Kernel prologue (pointer setup, first preloads).
  static constexpr sim::Cycles kSetup = 24;
  /// e-gcc reached "only 60% of peak performance" before the rewrite.
  static constexpr double kCCompilerEfficiency = 0.60;

  /// Cycles of one macro: K FMADDs; below K=16 the interleaved loads no
  /// longer hide completely.
  [[nodiscard]] static sim::Cycles macro_cycles(unsigned k) { return k + (k < 16 ? 1 : 0); }

  /// Cycles for C(MxK) += A(MxN) * B(NxK) with all operands in scratchpad.
  [[nodiscard]] static sim::Cycles block_cycles(unsigned m, unsigned n, unsigned k, Codegen cg);

  [[nodiscard]] static double block_flops(unsigned m, unsigned n, unsigned k) {
    return 2.0 * m * n * k;
  }
};

}  // namespace epi::core
