#pragma once
// Parallel matrix multiplication after Sapir / Cannon (paper section VII),
// at the paper's three levels:
//
//   1. single-core: a tuned block kernel over operands resident in one
//      scratchpad (Table IV);
//   2. on-chip multi-core: per-core blocks rotated around workgroup rows
//      (A, westward) and columns (B, northward) each step (Table V). Blocks
//      below 32x32 use full double-buffering; 32x32 blocks do not fit twice
//      and use the paper's split-buffer scheme (2 KB halves staged through a
//      spare half-slot -- Figures 10-13), realised here as a ring of three
//      2 KB half-slots per operand;
//   3. off-chip: matrices too large for the chip are paged from shared DRAM
//      superblock by superblock over the eLink (Table VI).
//
// Per-core scratchpad layout (paper "Memory Considerations"):
//   0x0000-0x01FF  runtime reserved
//   0x0200-0x3EFF  (modelled) code + stack (the paper's code is ~13 KB)
//   0x3F00-0x3FFF  synchronisation flags
//   0x4000-0x57FF  operand A region (block + staging: 3 half-slots of 2 KB)
//   0x5800-0x6FFF  operand B region (same structure)
//   0x7000-0x7FFF  product C block
//
// All kernels compute functionally in float with the same accumulation
// order as util::matmul_reference (k-major per element), so device results
// are bit-identical to the host reference.

#include <cstdint>
#include <span>
#include <vector>

#include "arch/address_map.hpp"
#include "core/codegen.hpp"
#include "core/matmul_schedule.hpp"
#include "device/core_ctx.hpp"
#include "host/system.hpp"
#include "sim/task.hpp"

namespace epi::core {

struct MatmulLayout {
  static constexpr arch::Addr kFlags = 0x3F00;
  static constexpr arch::Addr kARegion = 0x4000;
  static constexpr arch::Addr kBRegion = 0x5800;
  static constexpr arch::Addr kC = 0x7000;
  static constexpr arch::Addr kHalfSlot = 0x800;  // 2 KB
  /// Largest per-core block edge: 32x32 floats = 4 KB (paper).
  static constexpr unsigned kMaxBlock = 32;
  /// Largest block edge that still fits two full buffers per operand in a
  /// 6 KB region (double-buffer path): 3 KB per buffer -> 27x27.
  static constexpr unsigned kMaxDoubleBufferBlock = 27;
};

// ---- level 1: single-core ------------------------------------------------

struct MatmulSingleResult {
  sim::Cycles cycles = 0;
  double gflops = 0.0;
  bool verified = false;
  float max_error = 0.0f;
};

/// C(m x k) = A(m x n) * B(n x k) on one eCore, operands loaded by the host.
MatmulSingleResult run_matmul_single(host::System& sys, unsigned m, unsigned n, unsigned k,
                                     Codegen cg, std::uint64_t seed, bool verify);

// ---- level 2: on-chip multi-core (Cannon) ---------------------------------

struct MatmulOnChipResult {
  sim::Cycles cycles = 0;      // Cannon phase only (operand load excluded,
                               // matching the paper's Table V note)
  double gflops = 0.0;
  double compute_fraction = 1.0;
  bool verified = false;
  float max_error = 0.0f;
};

/// Multiply (g*b)^2 matrices on a g x g workgroup with b x b per-core
/// blocks. b <= 27 uses double-buffered whole-block rotation; larger b uses
/// the split-buffer scheme.
MatmulOnChipResult run_matmul_onchip(host::System& sys, unsigned group, unsigned block,
                                     Codegen cg, std::uint64_t seed, bool verify);

/// Rectangular variant for the scaling figures: per-core C is (m x k) and
/// the shared dimension per core is n; global dims are (g*m) x (g*n) x (g*k).
MatmulOnChipResult run_matmul_onchip_rect(host::System& sys, unsigned group, unsigned m,
                                          unsigned n, unsigned k, Codegen cg,
                                          std::uint64_t seed, bool verify);

// ---- level 3: off-chip ------------------------------------------------------

struct MatmulOffChipResult {
  sim::Cycles cycles = 0;
  double gflops = 0.0;
  double compute_fraction = 0.0;   // share of time in block products
  double transfer_fraction = 0.0;  // share of time in shared-memory paging
  bool verified = false;
  float max_error = 0.0f;
};

/// Multiply N x N matrices resident in shared DRAM on a g x g workgroup
/// with b x b per-core blocks, paging (g*b)^2 superblocks over the eLink.
/// N must be a multiple of g*b.
MatmulOffChipResult run_matmul_offchip(host::System& sys, unsigned n_global, unsigned group,
                                       unsigned block, Codegen cg, std::uint64_t seed,
                                       bool verify);

}  // namespace epi::core
