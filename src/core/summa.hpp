#pragma once
// On-chip SUMMA (van de Geijn & Watts), the alternative the paper's related
// work highlights for its lower per-node workspace (section VIII). Each
// step t broadcasts column-t blocks of A along workgroup rows and row-t
// blocks of B along workgroup columns, then every core accumulates a local
// block product. Implemented as an extension so the ablation bench can
// compare broadcast-based against rotation-based (Cannon) communication on
// the mesh.
//
// Scratchpad layout (3 KB slots):
//   0x4000 A home   0x4C00 A panel   0x5800 B home   0x6400 B panel
//   0x7000 C        flags at 0x3F00 (as matmul)

#include <cstdint>

#include "core/matmul.hpp"

namespace epi::core {

struct SummaLayout {
  static constexpr arch::Addr kA = 0x4000;
  static constexpr arch::Addr kPanelA = 0x4C00;
  static constexpr arch::Addr kB = 0x5800;
  static constexpr arch::Addr kPanelB = 0x6400;
  static constexpr arch::Addr kC = 0x7000;
  static constexpr arch::Addr kFlagPanelA = 0x3F10;
  static constexpr arch::Addr kFlagPanelB = 0x3F14;
  /// 3 KB slots cap the block edge at 27; we require even sizes <= 26.
  static constexpr unsigned kMaxBlock = 26;
};

/// Multiply (g*b)^2 matrices on a g x g workgroup via SUMMA.
MatmulOnChipResult run_matmul_summa(host::System& sys, unsigned group, unsigned block,
                                    Codegen cg, std::uint64_t seed, bool verify);

}  // namespace epi::core
