#include "core/microbench.hpp"

#include <algorithm>
#include <stdexcept>

#include "dma/descriptor.hpp"

namespace epi::core {

namespace {

using arch::Addr;
using arch::CoreCoord;

constexpr Addr kData = 0x4000;      // message payload (up to 8 KB: 0x4000-0x5FFF)
constexpr Addr kFlag = 0x3F00;      // per-message completion flag
constexpr Addr kStop = 0x3F08;      // host-set stop flag (contention bench)

/// Open the smallest workgroup containing both endpoints.
host::Workgroup open_covering(host::System& sys, CoreCoord a, CoreCoord b) {
  return sys.open(0, 0, std::max(a.row, b.row) + 1, std::max(a.col, b.col) + 1);
}

template <typename PerMessage>
XferResult run_sender(host::System& sys, CoreCoord src, CoreCoord dst, std::uint32_t bytes,
                      unsigned reps, PerMessage per_message) {
  auto wg = open_covering(sys, src, dst);
  wg.load([&, src](device::CoreCtx& ctx) -> sim::Op<void> {
    if (ctx.coord() != src) {
      return [](device::CoreCtx&) -> sim::Op<void> { co_return; }(ctx);
    }
    return per_message(ctx);
  });
  XferResult r;
  r.cycles = wg.run();
  r.seconds = sys.seconds(r.cycles);
  r.mb_per_s = static_cast<double>(bytes) * reps / r.seconds / 1e6;
  r.us_per_msg = r.seconds * 1e6 / reps;
  return r;
}

}  // namespace

XferResult measure_direct_write(host::System& sys, CoreCoord src, CoreCoord dst,
                                std::uint32_t bytes, unsigned reps) {
  if (bytes > 0x2000) throw std::invalid_argument("message exceeds the 8 KB payload buffer");
  return run_sender(sys, src, dst, bytes, reps,
                    [&sys, dst, bytes, reps](device::CoreCtx& ctx) -> sim::Op<void> {
                      const Addr payload = sys.machine().mem().map().global(dst, kData);
                      const Addr flag = sys.machine().mem().map().global(dst, kFlag);
                      for (unsigned i = 1; i <= reps; ++i) {
                        co_await ctx.direct_write_block(payload, kData, bytes);
                        co_await ctx.write_u32(flag, i);
                      }
                    });
}

XferResult measure_dma(host::System& sys, CoreCoord src, CoreCoord dst, std::uint32_t bytes,
                       unsigned reps) {
  if (bytes > 0x2000) throw std::invalid_argument("message exceeds the 8 KB payload buffer");
  return run_sender(sys, src, dst, bytes, reps,
                    [&sys, dst, bytes, reps](device::CoreCtx& ctx) -> sim::Op<void> {
                      const Addr payload = sys.machine().mem().map().global(dst, kData);
                      const Addr flag = sys.machine().mem().map().global(dst, kFlag);
                      for (unsigned i = 1; i <= reps; ++i) {
                        co_await ctx.dma_set_desc();
                        auto d = dma::DmaDescriptor::linear(payload, ctx.my_global(kData),
                                                            bytes);
                        co_await ctx.dma_start(0, d);
                        co_await ctx.dma_wait(0);
                        co_await ctx.write_u32(flag, i);
                      }
                    });
}

XferResult measure_relay_ring(host::System& sys, unsigned rows, unsigned cols,
                              std::uint32_t bytes, unsigned loops) {
  if (bytes > 0x2000) throw std::invalid_argument("message exceeds the 8 KB payload buffer");
  auto wg = sys.open(0, 0, rows, cols);
  const unsigned nodes = rows * cols;

  // Boustrophedon order: east along even rows, west along odd rows, so
  // every hop is to a mesh neighbour (as in Listing 1's row-by-row relay).
  std::vector<CoreCoord> order;
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      order.push_back({r, r % 2 == 0 ? c : cols - 1 - c});
    }
  }
  std::vector<unsigned> next_of(nodes);  // group index -> position in order
  std::vector<CoreCoord> next_coord(nodes);
  std::vector<bool> is_last(nodes, false);
  for (unsigned i = 0; i < nodes; ++i) {
    const unsigned gi = order[i].row * cols + order[i].col;
    next_coord[gi] = order[(i + 1) % nodes];
    is_last[gi] = i + 1 == nodes;
  }

  for (unsigned i = 0; i < nodes; ++i) {
    auto& ctx = wg.ctx(i / cols, i % cols);
    sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(kFlag), 0, ctx.coord());
  }
  // Kick node 0: its flag starts at 1 so it sends the first message.
  sys.machine().mem().write_value<std::uint32_t>(wg.ctx(0, 0).my_global(kFlag), 1,
                                                 wg.ctx(0, 0).coord());

  wg.load([&](device::CoreCtx& kctx) -> sim::Op<void> {
    return [](device::CoreCtx& ctx, CoreCoord nxt, bool last, std::uint32_t nbytes,
              unsigned nloops) -> sim::Op<void> {
      // Listing 1: wait for the previous core's completion flag, copy the
      // payload into the next core, bump its flag (the ring's last node
      // advances the loop count by one extra, releasing node 0's next lap).
      const Addr next_payload = ctx.global(nxt, kData);
      const Addr next_flag = ctx.global(nxt, kFlag);
      for (std::uint32_t loop = 1; loop <= nloops; ++loop) {
        co_await ctx.wait_u32_ge(ctx.my_global(kFlag), loop);
        co_await ctx.direct_write_block(next_payload, kData, nbytes);
        co_await ctx.write_u32(next_flag, last ? loop + 1 : loop);
      }
    }(kctx, next_coord[kctx.group_index()], is_last[kctx.group_index()], bytes, loops);
  });

  XferResult r;
  r.cycles = wg.run();
  r.seconds = sys.seconds(r.cycles);
  const double transfers = static_cast<double>(loops) * nodes;
  r.mb_per_s = static_cast<double>(bytes) * transfers / r.seconds / 1e6;
  r.us_per_msg = r.seconds * 1e6 / transfers;
  return r;
}

ElinkContentionResult measure_elink_contention(host::System& sys, unsigned rows,
                                               unsigned cols, std::uint32_t block_bytes,
                                               double window_seconds) {
  auto wg = sys.open(0, 0, rows, cols);
  const auto window_cycles =
      static_cast<sim::Cycles>(window_seconds * sys.timing().clock_hz);

  std::vector<std::uint64_t> iterations(wg.size(), 0);
  // Each writer gets a private destination region in shared DRAM.
  sys.shm_reset();
  std::vector<Addr> dsts(wg.size());
  for (auto& d : dsts) d = sys.shm_alloc(block_bytes);

  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      auto& ctx = wg.ctx(r, c);
      sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(kStop), 0, ctx.coord());
    }
  }

  const sim::Cycles window_end = sys.engine().now() + window_cycles;
  wg.load([&](device::CoreCtx& kctx) -> sim::Op<void> {
    return [](device::CoreCtx& ctx, Addr dst, std::uint32_t bytes, sim::Cycles t_end,
              std::uint64_t& count) -> sim::Op<void> {
      auto stop = ctx.local_array<std::uint32_t>(kStop, 1);
      while (stop[0] == 0) {
        co_await ctx.compute(2);  // loop test + branch
        co_await ctx.external_write_block(dst, kData, bytes);
        // Blocks still in flight when the window closes drain afterwards
        // but do not count toward the window's iterations, as a wall-clock
        // measurement on real hardware would not count them.
        if (ctx.now() <= t_end) ++count;
      }
    }(kctx, dsts[kctx.group_index()], block_bytes, window_end,
      iterations[kctx.group_index()]);
  });

  // Raise every core's stop flag at the end of the window.
  sys.engine().call_at(sys.engine().now() + window_cycles, [&] {
    for (unsigned r = 0; r < rows; ++r) {
      for (unsigned c = 0; c < cols; ++c) {
        auto& ctx = wg.ctx(r, c);
        sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(kStop), 1,
                                                       ctx.coord());
      }
    }
  });
  wg.run();

  ElinkContentionResult res;
  res.window_seconds = window_seconds;
  const double sustained = sys.timing().elink_write_bytes_per_sec();
  double total_bytes = 0.0;
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      ElinkNodeResult n;
      n.coord = {r, c};
      n.iterations = iterations[r * cols + c];
      const double bytes = static_cast<double>(n.iterations) * block_bytes;
      total_bytes += bytes;
      n.utilization = bytes / (sustained * window_seconds);
      res.nodes.push_back(n);
    }
  }
  res.total_mb_per_s = total_bytes / window_seconds / 1e6;
  return res;
}

}  // namespace epi::core
