#pragma once
// Micro-benchmarks of basic compute and communication operations (paper
// section V): message bandwidth/latency between eCores by DMA and by CPU
// direct writes (Figures 2-3, Table I), and eLink contention when multiple
// eCores write to external shared memory (Tables II-III).

#include <cstdint>
#include <vector>

#include "arch/coords.hpp"
#include "host/system.hpp"

namespace epi::core {

struct XferResult {
  sim::Cycles cycles = 0;   // total device time for all repetitions
  double seconds = 0.0;
  double mb_per_s = 0.0;    // payload bandwidth
  double us_per_msg = 0.0;  // mean latency per message
};

/// CPU direct-write transfer (Listing 1): fully unrolled load/store word
/// pairs from `src`'s scratchpad into `dst`'s, one flag store per message.
XferResult measure_direct_write(host::System& sys, arch::CoreCoord src, arch::CoreCoord dst,
                                std::uint32_t bytes, unsigned reps);

/// DMA transfer of the same message: descriptor build + start + wait per
/// message, 64-bit transactions when alignment allows.
XferResult measure_dma(host::System& sys, arch::CoreCoord src, arch::CoreCoord dst,
                       std::uint32_t bytes, unsigned reps);

/// The full Listing-1 benchmark: the message relays through *every* mesh
/// node in turn (along each row, dropping to the next row at the ends),
/// repeated `loops` times, using CPU direct writes. Returns the aggregate
/// time; per-transfer figures divide by loops * (nodes - 1).
XferResult measure_relay_ring(host::System& sys, unsigned rows, unsigned cols,
                              std::uint32_t bytes, unsigned loops);

struct ElinkNodeResult {
  arch::CoreCoord coord;
  std::uint64_t iterations = 0;  // completed 2 KB blocks (paper's metric)
  double utilization = 0.0;      // share of the sustained eLink write rate
};

struct ElinkContentionResult {
  std::vector<ElinkNodeResult> nodes;  // row-major over the writer group
  double window_seconds = 0.0;
  double total_mb_per_s = 0.0;
};

/// `rows x cols` eCores (origin 0,0) continuously write `block_bytes` blocks
/// to external DRAM for `window_seconds` of simulated time (Tables II-III).
ElinkContentionResult measure_elink_contention(host::System& sys, unsigned rows,
                                               unsigned cols, std::uint32_t block_bytes,
                                               double window_seconds);

}  // namespace epi::core
