#include "core/stencil.hpp"

#include <stdexcept>

#include "core/stencil_detail.hpp"
#include "dma/descriptor.hpp"

namespace epi::core {

namespace detail {

sim::Op<void> exchange_halos(device::CoreCtx& ctx, const NeighbourInfo& nb, unsigned rows,
                             unsigned cols, std::uint32_t gen, bool corners) {
  const unsigned tc = cols + 2;
  const unsigned tr = rows + 2;
  const Addr grid_gbase = ctx.my_global(StencilLayout::kGrid);
  const auto elem = [&](unsigned r, unsigned c) { return grid_gbase + (r * tc + c) * 4; };

  // Phase 1: wait until the neighbours have finished computing so it is
  // safe to overwrite their boundary regions (Listing 2's iter flags).
  for (unsigned d = 0; d < 4; ++d) {
    if (nb.present[d]) {
      co_await ctx.write_u32(
          ctx.global(nb.coord[d], iter_flag(static_cast<unsigned>(opposite(kDirs[d])))),
          gen);
    }
  }
  for (unsigned d = 0; d < 4; ++d) {
    co_await ctx.wait_u32_ge(ctx.my_global(iter_flag(d)), gen);
  }

  // Edge transfers: chained 2D DMA, rows on channel 0, columns on channel 1
  // (Listing 2). Descriptors are rebuilt each iteration, as in the paper.
  dma::DmaDescriptor row_descs[2];
  dma::DmaDescriptor col_descs[2];
  unsigned n_row = 0;
  unsigned n_col = 0;

  // South: my last interior row -> south neighbour's top halo row.
  if (nb.present[1]) {
    co_await ctx.dma_set_desc();
    row_descs[n_row++] = dma::DmaDescriptor::linear(
        ctx.global(nb.coord[1], StencilLayout::kGrid + 4), elem(rows, 1), cols * 4);
  }
  // North: my first interior row -> north neighbour's bottom halo row.
  if (nb.present[0]) {
    co_await ctx.dma_set_desc();
    row_descs[n_row++] = dma::DmaDescriptor::linear(
        ctx.global(nb.coord[0], StencilLayout::kGrid + ((tr - 1) * tc + 1) * 4), elem(1, 1),
        cols * 4);
  }
  // East: my last interior column -> east neighbour's left halo column.
  if (nb.present[3]) {
    co_await ctx.dma_set_desc();
    col_descs[n_col++] = dma::DmaDescriptor::strided(
        ctx.global(nb.coord[3], StencilLayout::kGrid + tc * 4), elem(1, cols), rows, 4,
        static_cast<std::int32_t>(tc * 4), static_cast<std::int32_t>(tc * 4),
        dma::ElemSize::Word);
  }
  // West: my first interior column -> west neighbour's right halo column.
  if (nb.present[2]) {
    co_await ctx.dma_set_desc();
    col_descs[n_col++] = dma::DmaDescriptor::strided(
        ctx.global(nb.coord[2], StencilLayout::kGrid + (tc + tc - 1) * 4), elem(1, 1), rows,
        4, static_cast<std::int32_t>(tc * 4), static_cast<std::int32_t>(tc * 4),
        dma::ElemSize::Word);
  }

  if (n_row == 2) row_descs[0].chain = &row_descs[1];
  if (n_col == 2) col_descs[0].chain = &col_descs[1];
  if (n_row > 0) co_await ctx.dma_start(0, row_descs[0]);
  if (n_col > 0) co_await ctx.dma_start(1, col_descs[0]);
  if (n_row > 0) co_await ctx.dma_wait(0);
  if (n_col > 0) co_await ctx.dma_wait(1);

  // Phase 2: signal transfer completion; wait until every neighbour has
  // delivered this generation's edges (Listing 2's t_iter flags).
  for (unsigned d = 0; d < 4; ++d) {
    if (nb.present[d]) {
      co_await ctx.write_u32(
          ctx.global(nb.coord[d], xfer_flag(static_cast<unsigned>(opposite(kDirs[d])))),
          gen);
    }
  }
  for (unsigned d = 0; d < 4; ++d) {
    co_await ctx.wait_u32_ge(ctx.my_global(xfer_flag(d)), gen);
  }

  if (!corners) co_return;
  // Diagonal corner cells for full-3x3 footprints: the same two-phase
  // handshake against the four diagonal neighbours, then one posted word
  // store per corner.
  for (unsigned d = 0; d < 4; ++d) {
    if (nb.diag_present[d]) {
      co_await ctx.write_u32(ctx.global(nb.diag[d], diag_iter_flag(diag_opposite(d))),
                             gen);
    }
  }
  for (unsigned d = 0; d < 4; ++d) {
    co_await ctx.wait_u32_ge(ctx.my_global(diag_iter_flag(d)), gen);
  }
  auto tile = ctx.local_array<float>(StencilLayout::kGrid, std::size_t{tr} * tc);
  // My interior corner -> the diagonal neighbour's opposite halo corner.
  const struct {
    unsigned my_r, my_c, their_r, their_c;
  } corner_map[4] = {{1, 1, tr - 1, tc - 1},          // to NW: their SE halo
                     {1, cols, tr - 1, 0},            // to NE: their SW halo
                     {rows, 1, 0, tc - 1},            // to SW: their NE halo
                     {rows, cols, 0, 0}};             // to SE: their NW halo
  for (unsigned d = 0; d < 4; ++d) {
    if (!nb.diag_present[d]) continue;
    const float v = tile[corner_map[d].my_r * tc + corner_map[d].my_c];
    co_await ctx.write_f32(
        ctx.global(nb.diag[d],
                   StencilLayout::kGrid +
                       (corner_map[d].their_r * tc + corner_map[d].their_c) * 4),
        v);
  }
  for (unsigned d = 0; d < 4; ++d) {
    if (nb.diag_present[d]) {
      co_await ctx.write_u32(ctx.global(nb.diag[d], diag_xfer_flag(diag_opposite(d))),
                             gen);
    }
  }
  for (unsigned d = 0; d < 4; ++d) {
    co_await ctx.wait_u32_ge(ctx.my_global(diag_xfer_flag(d)), gen);
  }
}

sim::Op<Cycles> stencil_step(device::CoreCtx& ctx, const StencilConfig& cfg,
                             std::vector<float>& snap) {
  const unsigned tr = cfg.rows + 2;
  const unsigned tc = cfg.cols + 2;
  auto tile = ctx.local_array<float>(StencilLayout::kGrid, std::size_t{tr} * tc);

  Cycles cycles = StencilSchedule::iteration_cycles(cfg.rows, cfg.cols, cfg.codegen);
  if (cfg.shape == StencilShape::Nine) {
    // 9 FMADDs per point instead of 5 on the same schedule skeleton.
    cycles = cycles * 9 / 5;
  }

  snap.assign(tile.begin(), tile.end());
  co_await ctx.compute(cycles);
  switch (cfg.shape) {
    case StencilShape::Star5:
      util::stencil5_reference(snap, tile, tr, tc, cfg.weights);
      break;
    case StencilShape::X5:
      util::stencilX_reference(snap, tile, tr, tc, cfg.weights);
      break;
    case StencilShape::Nine:
      util::stencil9_reference(snap, tile, tr, tc, std::span<const float, 9>(cfg.weights9));
      break;
  }
  co_return cycles;
}

void init_flags(host::System& sys, device::CoreCtx& ctx, const bool missing[4],
                std::uint32_t gen0) {
  for (unsigned d = 0; d < 4; ++d) {
    const std::uint32_t v = missing[d] ? 0xFFFFFFFFu : gen0;
    sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(iter_flag(d)), v,
                                                   ctx.coord());
    sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(xfer_flag(d)), v,
                                                   ctx.coord());
  }
  // Diagonal flags [NW, NE, SW, SE]: missing iff either cardinal is.
  const bool dmiss[4] = {missing[0] || missing[2], missing[0] || missing[3],
                         missing[1] || missing[2], missing[1] || missing[3]};
  for (unsigned d = 0; d < 4; ++d) {
    const std::uint32_t v = dmiss[d] ? 0xFFFFFFFFu : gen0;
    sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(diag_iter_flag(d)), v,
                                                   ctx.coord());
    sys.machine().mem().write_value<std::uint32_t>(ctx.my_global(diag_xfer_flag(d)), v,
                                                   ctx.coord());
  }
}

}  // namespace detail

namespace {

using arch::Addr;
using detail::NeighbourInfo;
using sim::Cycles;

}  // namespace

sim::Op<void> stencil_kernel(device::CoreCtx& ctx, StencilConfig cfg,
                             StencilCoreStats* stats) {
  if (!StencilLayout::tile_fits(cfg.rows, cfg.cols)) {
    throw std::invalid_argument("stencil tile does not fit the 32 KB scratchpad layout");
  }
  // Full-3x3 footprints (X and 9-point) additionally exchange the four
  // diagonal corner cells; the double-buffered strip variant carries only
  // edges and cannot serve them.
  const bool corners = cfg.shape != StencilShape::Star5;
  if (cfg.communicate && corners && cfg.double_buffer_boundaries) {
    throw std::invalid_argument(
        "double-buffered boundaries do not carry the diagonal corners the "
        "3x3 footprints need");
  }

  const unsigned tr = cfg.rows + 2;
  const unsigned tc = cfg.cols + 2;
  auto tile = ctx.local_array<float>(StencilLayout::kGrid, std::size_t{tr} * tc);
  const NeighbourInfo nb = detail::find_neighbours(ctx);

  // Strip buffers for the double-buffered-boundary variant: per parity, two
  // rows (cols floats) then two columns (rows floats): N,S,W,E order.
  const unsigned strip_floats = 2 * (cfg.cols + cfg.rows);
  const auto strip_base = [&](unsigned parity) {
    return StencilLayout::kHaloStrips + parity * strip_floats * 4;
  };
  const auto strip_off = [&](unsigned parity, unsigned dir) {
    Addr off = strip_base(parity);
    if (dir >= 1) off += cfg.cols * 4;  // past N row
    if (dir >= 2) off += cfg.cols * 4;  // past S row
    if (dir >= 3) off += cfg.rows * 4;  // past W col
    return off;
  };
  if (cfg.double_buffer_boundaries && strip_base(2) > StencilLayout::kIterFlags) {
    throw std::invalid_argument("tile too large for double-buffered boundary strips");
  }

  std::vector<float> snap;

  for (std::uint32_t iter = 1; iter <= cfg.iters; ++iter) {
    // ---- compute phase ---------------------------------------------------
    // The double-buffer variant reads its halo from the parity strip filled
    // during the previous iteration's transfers.
    if (cfg.double_buffer_boundaries && cfg.communicate && iter > 1) {
      const unsigned parity = iter % 2;
      auto strips = ctx.local_array<float>(strip_base(parity), strip_floats);
      std::size_t s = 0;
      if (nb.present[0]) {
        for (unsigned j = 0; j < cfg.cols; ++j) tile[j + 1] = strips[s + j];
      }
      s += cfg.cols;
      if (nb.present[1]) {
        for (unsigned j = 0; j < cfg.cols; ++j) {
          tile[(tr - 1) * tc + j + 1] = strips[s + j];
        }
      }
      s += cfg.cols;
      if (nb.present[2]) {
        for (unsigned i = 0; i < cfg.rows; ++i) tile[(i + 1) * tc] = strips[s + i];
      }
      s += cfg.rows;
      if (nb.present[3]) {
        for (unsigned i = 0; i < cfg.rows; ++i) {
          tile[(i + 1) * tc + tc - 1] = strips[s + i];
        }
      }
    }
    const Cycles step = co_await detail::stencil_step(ctx, cfg, snap);
    if (stats) stats->compute_cycles += step;

    if (!cfg.communicate) continue;
    const Cycles m0 = ctx.now();

    if (!cfg.double_buffer_boundaries) {
      co_await detail::exchange_halos(ctx, nb, cfg.rows, cfg.cols, iter, corners);
    } else {
      // Double-buffered boundaries skip phase 1 (transfers land in strips
      // nobody is reading) -- that is the whole point of the variant.
      const unsigned parity = (iter + 1) % 2;  // strips consumed at iter+1
      const Addr grid_gbase = ctx.my_global(StencilLayout::kGrid);
      const auto elem = [&](unsigned r, unsigned c) {
        return grid_gbase + (r * tc + c) * 4;
      };
      dma::DmaDescriptor row_descs[2];
      dma::DmaDescriptor col_descs[2];
      unsigned n_row = 0;
      unsigned n_col = 0;
      if (nb.present[1]) {
        co_await ctx.dma_set_desc();
        row_descs[n_row++] = dma::DmaDescriptor::linear(
            ctx.global(nb.coord[1], strip_off(parity, 0)), elem(cfg.rows, 1), cfg.cols * 4);
      }
      if (nb.present[0]) {
        co_await ctx.dma_set_desc();
        row_descs[n_row++] = dma::DmaDescriptor::linear(
            ctx.global(nb.coord[0], strip_off(parity, 1)), elem(1, 1), cfg.cols * 4);
      }
      if (nb.present[3]) {
        co_await ctx.dma_set_desc();
        col_descs[n_col++] = dma::DmaDescriptor::strided(
            ctx.global(nb.coord[3], strip_off(parity, 2)), elem(1, cfg.cols), cfg.rows, 4,
            static_cast<std::int32_t>(tc * 4), 4, dma::ElemSize::Word);
      }
      if (nb.present[2]) {
        co_await ctx.dma_set_desc();
        col_descs[n_col++] = dma::DmaDescriptor::strided(
            ctx.global(nb.coord[2], strip_off(parity, 3)), elem(1, 1), cfg.rows, 4,
            static_cast<std::int32_t>(tc * 4), 4, dma::ElemSize::Word);
      }
      if (n_row == 2) row_descs[0].chain = &row_descs[1];
      if (n_col == 2) col_descs[0].chain = &col_descs[1];
      if (n_row > 0) co_await ctx.dma_start(0, row_descs[0]);
      if (n_col > 0) co_await ctx.dma_start(1, col_descs[0]);
      if (n_row > 0) co_await ctx.dma_wait(0);
      if (n_col > 0) co_await ctx.dma_wait(1);
      for (unsigned d = 0; d < 4; ++d) {
        if (nb.present[d]) {
          co_await ctx.write_u32(
              ctx.global(nb.coord[d],
                         detail::xfer_flag(static_cast<unsigned>(
                             detail::opposite(detail::kDirs[d])))),
              iter);
        }
      }
      for (unsigned d = 0; d < 4; ++d) {
        co_await ctx.wait_u32_ge(ctx.my_global(detail::xfer_flag(d)), iter);
      }
    }
    if (stats) stats->comm_cycles += ctx.now() - m0;
  }
}

StencilResult run_stencil(host::System& sys, unsigned group_rows, unsigned group_cols,
                          const StencilConfig& cfg, std::span<float> grid) {
  const unsigned gr = group_rows * cfg.rows;
  const unsigned gc = group_cols * cfg.cols;
  const std::size_t pitch = gc + 2;
  if (grid.size() != static_cast<std::size_t>(gr + 2) * pitch) {
    throw std::invalid_argument("global grid size does not match workgroup configuration");
  }
  if (!StencilLayout::tile_fits(cfg.rows, cfg.cols)) {
    throw std::invalid_argument("stencil tile does not fit the 32 KB scratchpad layout");
  }

  auto wg = sys.open(0, 0, group_rows, group_cols);
  const unsigned tr = cfg.rows + 2;
  const unsigned tc = cfg.cols + 2;

  // Scatter halo-inclusive tiles and initialise the flag words. Missing
  // neighbours' flags are pre-satisfied (0xFFFFFFFF), as the loader would.
  std::vector<float> tilebuf(static_cast<std::size_t>(tr) * tc);
  for (unsigned pr = 0; pr < group_rows; ++pr) {
    for (unsigned pc = 0; pc < group_cols; ++pc) {
      auto& ctx = wg.ctx(pr, pc);
      for (unsigned i = 0; i < tr; ++i) {
        for (unsigned j = 0; j < tc; ++j) {
          tilebuf[i * tc + j] = grid[(pr * cfg.rows + i) * pitch + pc * cfg.cols + j];
        }
      }
      sys.write_array<float>(ctx.my_global(StencilLayout::kGrid),
                             std::span<const float>(tilebuf));
      const bool missing[4] = {pr == 0, pr + 1 == group_rows, pc == 0,
                               pc + 1 == group_cols};
      detail::init_flags(sys, ctx, missing);
    }
  }

  std::vector<StencilCoreStats> stats(wg.size());
  wg.load([&cfg, &stats](device::CoreCtx& ctx) -> sim::Op<void> {
    return stencil_kernel(ctx, cfg, &stats[ctx.group_index()]);
  });
  const sim::Cycles cycles = wg.run();

  // Gather interiors back into the global grid.
  for (unsigned pr = 0; pr < group_rows; ++pr) {
    for (unsigned pc = 0; pc < group_cols; ++pc) {
      auto& ctx = wg.ctx(pr, pc);
      sys.read_array<float>(ctx.my_global(StencilLayout::kGrid), std::span<float>(tilebuf));
      for (unsigned i = 1; i + 1 < tr; ++i) {
        for (unsigned j = 1; j + 1 < tc; ++j) {
          grid[(pr * cfg.rows + i) * pitch + pc * cfg.cols + j] = tilebuf[i * tc + j];
        }
      }
    }
  }

  StencilResult r;
  r.cycles = cycles;
  r.flops =
      StencilSchedule::iteration_flops(cfg.rows, cfg.cols) * cfg.iters * group_rows * group_cols;
  if (cfg.shape == StencilShape::Nine) r.flops = r.flops * 9 / 5;
  r.gflops = sys.gflops(r.flops, cycles);
  double frac = 0.0;
  for (const auto& s : stats) {
    const double tot = static_cast<double>(s.compute_cycles + s.comm_cycles);
    frac += tot > 0 ? static_cast<double>(s.compute_cycles) / tot : 1.0;
  }
  r.compute_fraction = frac / static_cast<double>(stats.size());
  return r;
}

StencilExperiment run_stencil_experiment(host::System& sys, unsigned group_rows,
                                         unsigned group_cols, const StencilConfig& cfg,
                                         std::uint64_t seed, bool verify) {
  const unsigned gr = group_rows * cfg.rows;
  const unsigned gc = group_cols * cfg.cols;
  std::vector<float> grid(static_cast<std::size_t>(gr + 2) * (gc + 2));
  util::fill_random(grid, seed);
  std::vector<float> ref;
  if (verify) ref.assign(grid.begin(), grid.end());

  StencilExperiment ex;
  ex.result = run_stencil(sys, group_rows, group_cols, cfg, grid);
  if (verify) {
    switch (cfg.shape) {
      case StencilShape::Star5:
        util::stencil5_reference_iterate(ref, gr + 2, gc + 2, cfg.weights, cfg.iters);
        break;
      case StencilShape::X5:
      case StencilShape::Nine: {
        std::vector<float> tmp(ref);
        for (unsigned it = 0; it < cfg.iters; ++it) {
          if (cfg.shape == StencilShape::X5) {
            util::stencilX_reference(ref, tmp, gr + 2, gc + 2, cfg.weights);
          } else {
            util::stencil9_reference(ref, tmp, gr + 2, gc + 2,
                                     std::span<const float, 9>(cfg.weights9));
          }
          for (std::size_t i = 1; i + 1 < gr + 2u; ++i) {
            for (std::size_t j = 1; j + 1 < gc + 2u; ++j) {
              ref[i * (gc + 2) + j] = tmp[i * (gc + 2) + j];
            }
          }
        }
        break;
      }
    }
    ex.max_error = util::max_abs_diff(grid, ref);
    ex.verified = ex.max_error == 0.0f;
  }
  return ex;
}

}  // namespace epi::core
