#pragma once
// Shared internals of the stencil kernels: neighbour discovery, the
// flag-synchronised chained-DMA halo exchange of the paper's Listing 2, and
// the functional/temporal compute step. Used by the resident-grid kernel
// (stencil_kernels.cpp) and the temporal-blocking pipeline kernel
// (stencil_pipeline.cpp).

#include <array>

#include "core/stencil.hpp"
#include "dma/descriptor.hpp"

namespace epi::core::detail {

using arch::Addr;
using arch::CoreCoord;
using arch::Dir;
using sim::Cycles;

inline constexpr std::array<Dir, 4> kDirs{Dir::North, Dir::South, Dir::West, Dir::East};

[[nodiscard]] constexpr Dir opposite(Dir d) noexcept {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
    case Dir::West: return Dir::East;
    case Dir::East: return Dir::West;
  }
  return Dir::North;
}

[[nodiscard]] constexpr Addr iter_flag(unsigned dir) {
  return StencilLayout::kIterFlags + 4 * dir;
}
[[nodiscard]] constexpr Addr xfer_flag(unsigned dir) {
  return StencilLayout::kXferFlags + 4 * dir;
}

struct NeighbourInfo {
  bool present[4] = {false, false, false, false};
  CoreCoord coord[4]{};
  // Diagonal neighbours, [NW, NE, SW, SE]; present iff both constituent
  // cardinal neighbours exist.
  bool diag_present[4] = {false, false, false, false};
  CoreCoord diag[4]{};
};

[[nodiscard]] constexpr unsigned diag_opposite(unsigned d) noexcept {
  // NW<->SE, NE<->SW.
  return 3 - d;
}

[[nodiscard]] constexpr Addr diag_iter_flag(unsigned d) {
  return StencilLayout::kDiagIterFlags + 4 * d;
}
[[nodiscard]] constexpr Addr diag_xfer_flag(unsigned d) {
  return StencilLayout::kDiagXferFlags + 4 * d;
}

[[nodiscard]] inline NeighbourInfo find_neighbours(device::CoreCtx& ctx) {
  NeighbourInfo n;
  for (unsigned d = 0; d < 4; ++d) {
    CoreCoord c;
    if (ctx.neighbour(kDirs[d], c)) {
      n.present[d] = true;
      n.coord[d] = c;
    }
  }
  // Diagonals [NW, NE, SW, SE]: present iff both constituent cardinals are.
  const struct {
    unsigned a, b;  // indices into kDirs (N=0, S=1, W=2, E=3)
    int dr, dc;
  } diag_def[4] = {{0, 2, -1, -1}, {0, 3, -1, +1}, {1, 2, +1, -1}, {1, 3, +1, +1}};
  for (unsigned d = 0; d < 4; ++d) {
    if (n.present[diag_def[d].a] && n.present[diag_def[d].b]) {
      n.diag_present[d] = true;
      n.diag[d] = {static_cast<unsigned>(static_cast<int>(ctx.coord().row) + diag_def[d].dr),
                   static_cast<unsigned>(static_cast<int>(ctx.coord().col) + diag_def[d].dc)};
    }
  }
  return n;
}

/// One round of the paper's two-phase halo exchange for a (rows x cols)
/// interior tile at StencilLayout::kGrid: phase 1 iter-flags (safe to
/// overwrite neighbours' boundaries), chained 2D DMA (rows on channel 0,
/// columns on channel 1), phase 2 transfer-complete flags. `gen` must be a
/// monotonically increasing generation shared by all cores in the group.
/// `corners` additionally delivers the four diagonal halo cells (single
/// posted word stores to the diagonal neighbours), which the full-3x3
/// stencil footprints need (section VI "Further Observations").
sim::Op<void> exchange_halos(device::CoreCtx& ctx, const NeighbourInfo& nb, unsigned rows,
                             unsigned cols, std::uint32_t gen, bool corners = false);

/// Functional update + modelled cycles for one stencil iteration of the
/// tile at StencilLayout::kGrid, using `snap` as scratch for the previous
/// state. Returns the cycles charged.
sim::Op<Cycles> stencil_step(device::CoreCtx& ctx, const StencilConfig& cfg,
                             std::vector<float>& snap);

/// Initialise the per-direction flag words: absent neighbours pre-satisfied
/// forever, present ones starting from `gen0`.
void init_flags(host::System& sys, device::CoreCtx& ctx, const bool missing[4],
                std::uint32_t gen0 = 0);

}  // namespace epi::core::detail
