#pragma once
// Temporal-blocking pipelined stencil -- the paper's named future work
// (section IX): "a pipelined algorithm for stencil computation using both
// spatial and temporal blocking in order to process much higher grid sizes
// ... computation is performed for a number of iterations before the data
// is moved out of the local memory and new data is brought in."
//
// Grids far larger than the chip's 2 MB of scratchpad stream through the
// workgroup in overlapped supertiles:
//   * each supertile's DRAM window is L x L cells (L = tile_interior + 2);
//     the outermost ring is frozen while resident, exactly like the global
//     boundary ring of the resident-grid kernel;
//   * the workgroup computes `depth` (T) iterations with ordinary on-chip
//     halo exchange between its cores;
//   * after T iterations, cells at distance >= T from the window edge are
//     bit-exact; that S x S region (S = L - 2T) is written back. Windows
//     clamp at the global boundary, where the frozen ring coincides with
//     the true fixed ring, so clamped sides are exact at any distance.
//   * input and output DRAM grids ping-pong between batches of T
//     iterations.
//
// T = 1 degenerates to naive streaming (page in, one update, page out),
// which is the transfer-bound baseline; larger T amortises the 150 MB/s
// eLink traffic over T updates at the price of redundant computation on the
// window overlap. Results are bit-identical to the host reference for
// every T -- verified in tests.

#include <cstdint>

#include "core/stencil.hpp"

namespace epi::core {

struct StencilPipelineConfig {
  unsigned group = 8;          // g x g workgroup
  unsigned tile_interior = 0;  // L - 2: window interior edge, divisible by group
  unsigned depth = 1;          // T: iterations per residency
  unsigned iters = 16;         // total iterations (last batch may be short)
  util::StencilWeights weights{};
  Codegen codegen = Codegen::TunedAsm;

  /// Output region edge per supertile.
  [[nodiscard]] unsigned out_edge() const noexcept {
    return tile_interior + 2 - 2 * depth;
  }
};

struct StencilPipelineResult {
  sim::Cycles cycles = 0;
  double useful_gflops = 0.0;   // N^2 * 10 * iters / time
  double redundancy = 1.0;      // computed flops / useful flops
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  bool verified = false;
  float max_error = 0.0f;
};

/// Run `cfg.iters` stencil iterations over an (n_interior x n_interior)
/// grid resident in shared DRAM. Requires n_interior % cfg.out_edge() == 0,
/// cfg.tile_interior % cfg.group == 0, and the window to fit the grid.
StencilPipelineResult run_stencil_pipeline(host::System& sys, unsigned n_interior,
                                           const StencilPipelineConfig& cfg,
                                           std::uint64_t seed, bool verify);

}  // namespace epi::core
