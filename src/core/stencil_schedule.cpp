#include "core/stencil_schedule.hpp"

namespace epi::core {

namespace {

/// Cycles for one two-row pass over a stripe of width `w`. Stripes after
/// the first pay a small per-pass penalty: their boundary columns sit
/// mid-row, so the edge loads no longer fold into spare issue slots.
sim::Cycles pair_cycles(unsigned w, bool first_stripe) {
  if (w >= StencilSchedule::kStripeWidth) {
    return StencilSchedule::kPairCyclesFull + (first_stripe ? 0 : 7);
  }
  // Ragged stripe: 10 cycles per point-pair of FMADDs, but the loads,
  // stores and accumulator clears no longer fit the spare issue slots of a
  // 20-wide run; the residue costs ~12 extra cycles plus the branch.
  return 10ull * w + 12 + 5;
}

}  // namespace

sim::Cycles StencilSchedule::iteration_cycles(unsigned rows, unsigned cols, Codegen cg) {
  if (rows == 0 || cols == 0) return 0;
  if (cg == Codegen::CCompiler) {
    // e-gcc keeps the loop structure but cannot sustain dual-issued FMADD
    // streams: flat fraction-of-peak model.
    const double fmadd_cycles = 5.0 * rows * cols;  // one FMADD per point per tap
    return static_cast<sim::Cycles>(fmadd_cycles / kCCompilerEfficiency) + kIterFixed;
  }

  sim::Cycles total = kIterFixed;
  unsigned remaining = cols;
  bool first = true;
  while (remaining > 0) {
    const unsigned w = remaining >= kStripeWidth ? kStripeWidth : remaining;
    remaining -= w;
    total += kStripePrologue;
    const unsigned pairs = rows / 2;
    total += pairs * pair_cycles(w, first);
    if (rows % 2 != 0) {
      // Odd final row: half a loop body plus its own branch.
      total += pair_cycles(w, first) / 2 + 5;
    }
    first = false;
  }
  return total;
}

}  // namespace epi::core
