#include "core/matmul_schedule.hpp"

namespace epi::core {

sim::Cycles MatmulSchedule::block_cycles(unsigned m, unsigned n, unsigned k, Codegen cg) {
  if (m == 0 || n == 0 || k == 0) return 0;
  const sim::Cycles tuned =
      kSetup + static_cast<sim::Cycles>(m) * (n * macro_cycles(k) + row_overhead(k));
  if (cg == Codegen::CCompiler) {
    return static_cast<sim::Cycles>(static_cast<double>(tuned) / kCCompilerEfficiency);
  }
  return tuned;
}

}  // namespace epi::core
