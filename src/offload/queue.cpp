#include "offload/queue.hpp"

namespace epi::offload {

namespace {

using arch::Addr;
using sim::Cycles;

/// Cost model for one combine hop: the receiver folds one float (a couple
/// of FPU cycles) after the partner's value and flag have landed.
constexpr Cycles kCombineCycles = 4;

sim::Op<void> reduce_kernel(device::CoreCtx& ctx, const Buffer b, std::size_t n,
                            std::function<float(float, float)> op, float init,
                            double cpe, unsigned cores, unsigned cols,
                            std::uint32_t gen) {
  const unsigned me = ctx.group_index();
  auto out = ctx.local_array<float>(Queue::kReduceOut, 1);

  // Stage 1: local fold over my stripe.
  const std::size_t stripe = (n + cores - 1) / cores;
  const std::size_t first = static_cast<std::size_t>(me) * stripe;
  float acc = init;
  if (first < n) {
    const std::size_t count = std::min(stripe, n - first);
    co_await ctx.compute(static_cast<Cycles>(cpe * static_cast<double>(count) + 0.5));
    auto mine = ctx.local_array<float>(b.offset(), count);
    for (float v : mine) acc = op(acc, v);
  }
  out[0] = acc;

  // Stage 2: binary combining tree over the linear group index. At level
  // l (step 2^l), cores with index k = m * 2^(l+1) receive from k + 2^l;
  // senders push their partial + flag into the receiver's level-l scratch
  // and retire. Per-level slots keep deep senders from clobbering partials
  // a receiver has not folded yet.
  unsigned level = 0;
  for (unsigned step = 1; step < cores; step *= 2, ++level) {
    if (me % (2 * step) != 0) {
      const unsigned peer = me - step;
      const arch::CoreCoord dst{ctx.group().origin.row + peer / cols,
                                ctx.group().origin.col + peer % cols};
      co_await ctx.write_f32(ctx.global(dst, Queue::kReduceSlots + 4 * level), out[0]);
      co_await ctx.write_u32(ctx.global(dst, Queue::kReduceFlags + 4 * level), gen + 1);
      co_return;  // this core's role in the tree is done
    }
    if (me + step < cores) {
      co_await ctx.wait_u32_ge(ctx.my_global(Queue::kReduceFlags + 4 * level), gen + 1);
      co_await ctx.compute(kCombineCycles);
      auto slot = ctx.local_array<float>(Queue::kReduceSlots + 4 * level, 1);
      out[0] = op(out[0], slot[0]);
    }
  }
}

}  // namespace

float Queue::reduce(const Buffer& b, std::size_t n, float init,
                    std::function<float(float, float)> op, double cycles_per_elem,
                    sim::Cycles* cycles_out) {
  if (b.size() < n) throw std::invalid_argument("buffer smaller than the reduce range");
  auto wg = sys_->open(origin_row_, origin_col_, rows_, cols_);
  // Distinct flag generation per reduce.
  const std::uint32_t gen = reduce_gen_++;
  for (unsigned k = 0; k < cores(); ++k) {
    auto& ctx = wg.ctx(k / cols_, k % cols_);
    for (unsigned l = 0; l < kMaxReduceLevels; ++l) {
      sys_->machine().mem().write_value<std::uint32_t>(
          ctx.my_global(kReduceFlags + 4 * l), gen, ctx.coord());
    }
  }
  wg.load([&, n, init, cycles_per_elem, gen](device::CoreCtx& ctx) -> sim::Op<void> {
    return reduce_kernel(ctx, b, n, op, init, cycles_per_elem, cores(), cols_, gen);
  });
  const sim::Cycles cycles = wg.run();
  if (cycles_out) *cycles_out = cycles;
  float result = 0.0f;
  sys_->read(wg.ctx(0, 0).my_global(kReduceOut),
             std::as_writable_bytes(std::span<float, 1>(&result, 1)));
  return result;
}

}  // namespace epi::offload
