#pragma once
// A minimal data-parallel offload layer -- the "familiar programming
// models" the paper's conclusion calls for ("further work towards
// implementation of familiar programming models such as OpenCL and the
// recently launched OpenMP Accelerator model for the Epiphany is of great
// interest", section IX).
//
// The model is deliberately small but genuine:
//   * Buffer: a 1D float array striped across the workgroup's scratchpads
//     (core k holds elements [k*stripe, (k+1)*stripe));
//   * Queue::parallel_for: every core applies a host-provided body to its
//     stripe chunks, charged at a caller-declared cycles-per-element rate
//     (the analogue of an OpenCL NDRange over local memory);
//   * Queue::reduce: a per-core local fold followed by a binary combining
//     tree over the mesh, synchronised with the same remote-flag idiom the
//     paper's kernels use -- partials hop between scratchpads, so the
//     reduction genuinely pays mesh latencies.
//
// Buffers occupy a bump-allocated heap at the same offset on every core
// (0x4000-0x7BFF), so a buffer is addressed identically everywhere.

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "host/system.hpp"

namespace epi::offload {

class Queue;

/// Thrown when the per-core offload heap (0x4000-0x7BFF) cannot satisfy an
/// allocation. Subclasses std::bad_alloc (existing callers keep working) but
/// reports the requested and remaining sizes instead of a bare "bad_alloc".
class HeapExhausted : public std::bad_alloc {
public:
  HeapExhausted(std::size_t requested, std::size_t available)
      : requested_(requested),
        available_(available),
        msg_("offload heap exhausted: requested " + std::to_string(requested) +
             " bytes per core but only " + std::to_string(available) +
             " of the 0x4000-0x7BFF heap remain (release_all() frees it)") {}

  [[nodiscard]] const char* what() const noexcept override { return msg_.c_str(); }
  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::size_t available() const noexcept { return available_; }

private:
  std::size_t requested_;
  std::size_t available_;
  std::string msg_;
};

/// A device-resident float array, striped across the queue's cores.
class Buffer {
public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t stripe() const noexcept { return stripe_; }
  [[nodiscard]] arch::Addr offset() const noexcept { return offset_; }

private:
  friend class Queue;
  Buffer(arch::Addr offset, std::size_t size, std::size_t stripe)
      : offset_(offset), size_(size), stripe_(stripe) {}
  arch::Addr offset_;
  std::size_t size_;
  std::size_t stripe_;
};

class Queue {
public:
  // Device heap available to offload buffers on each core.
  static constexpr arch::Addr kHeapBase = 0x4000;
  static constexpr arch::Addr kHeapEnd = 0x7C00;
  // Reduction scratch (outside the heap). Each tree level gets its own
  // slot+flag pair: a deep sender must not clobber a partial a receiver
  // has not yet folded.
  static constexpr arch::Addr kReduceSlots = 0x7C00;  // one float per level
  static constexpr arch::Addr kReduceFlags = 0x7C20;  // one u32 per level
  static constexpr arch::Addr kReduceOut = 0x7C40;    // per-core local fold
  static constexpr unsigned kMaxReduceLevels = 8;     // up to 2^8 cores

  /// A queue over the rows x cols workgroup whose top-left core sits at
  /// (origin_row, origin_col) -- the serving runtime places queues anywhere
  /// on the mesh; standalone use keeps the origin default of (0,0).
  Queue(host::System& sys, unsigned rows, unsigned cols, unsigned origin_row = 0,
        unsigned origin_col = 0)
      : sys_(&sys), origin_row_(origin_row), origin_col_(origin_col), rows_(rows),
        cols_(cols) {
    if (rows == 0 || cols == 0 || origin_row + rows > sys.machine().dims().rows ||
        origin_col + cols > sys.machine().dims().cols) {
      throw std::out_of_range("offload queue does not fit the mesh");
    }
  }

  [[nodiscard]] unsigned cores() const noexcept { return rows_ * cols_; }

  /// Allocate a striped device buffer of `n` floats. Throws HeapExhausted
  /// (a std::bad_alloc) naming the requested and remaining sizes when the
  /// per-core heap cannot hold another stripe.
  [[nodiscard]] Buffer alloc(std::size_t n) {
    const std::size_t stripe = (n + cores() - 1) / cores();
    const std::size_t bytes = (stripe * sizeof(float) + 7) / 8 * 8;
    const std::size_t capacity = kHeapEnd - kHeapBase;
    if (brk_ + bytes > capacity) {
      throw HeapExhausted(stripe * sizeof(float), capacity - brk_);
    }
    const arch::Addr off = kHeapBase + static_cast<arch::Addr>(brk_);
    brk_ += bytes;
    return Buffer(off, n, stripe);
  }

  /// Free every buffer at once (a bump allocator cannot free piecemeal).
  /// Outstanding Buffer handles are invalidated; the scheduler calls this
  /// between jobs to reuse one queue's heap across a whole job stream.
  void release_all() noexcept { brk_ = 0; }
  void reset() noexcept { release_all(); }

  /// Bytes of per-core heap still available to alloc().
  [[nodiscard]] std::size_t heap_available() const noexcept {
    return (kHeapEnd - kHeapBase) - brk_;
  }

  /// Host -> device: scatter `src` into the buffer's stripes.
  void write(const Buffer& b, std::span<const float> src) {
    if (src.size() != b.size()) throw std::invalid_argument("offload write size mismatch");
    auto wg = sys_->open(origin_row_, origin_col_, rows_, cols_);
    for (unsigned k = 0; k < cores(); ++k) {
      const std::size_t first = static_cast<std::size_t>(k) * b.stripe();
      if (first >= src.size()) break;
      const std::size_t count = std::min(b.stripe(), src.size() - first);
      sys_->write_array<float>(wg.ctx(k / cols_, k % cols_).my_global(b.offset()),
                               src.subspan(first, count));
    }
  }

  /// Device -> host: gather the buffer's stripes into `dst`.
  void read(const Buffer& b, std::span<float> dst) {
    if (dst.size() != b.size()) throw std::invalid_argument("offload read size mismatch");
    auto wg = sys_->open(origin_row_, origin_col_, rows_, cols_);
    for (unsigned k = 0; k < cores(); ++k) {
      const std::size_t first = static_cast<std::size_t>(k) * b.stripe();
      if (first >= dst.size()) break;
      const std::size_t count = std::min(b.stripe(), dst.size() - first);
      sys_->read_array<float>(wg.ctx(k / cols_, k % cols_).my_global(b.offset()),
                              dst.subspan(first, count));
    }
  }

  /// The body of a parallel_for: chunk-global first index, element count,
  /// and one local span per bound buffer, in binding order.
  using Body =
      std::function<void(std::size_t first, std::size_t count,
                         std::span<std::span<float>> chunks)>;

  /// Run `body` across `n` elements distributed over the workgroup,
  /// charging `cycles_per_elem` on every core for its chunk. Returns the
  /// elapsed device cycles.
  sim::Cycles parallel_for(std::size_t n, double cycles_per_elem, Body body,
                           std::initializer_list<const Buffer*> buffers) {
    for (const Buffer* b : buffers) {
      if (b->size() < n) throw std::invalid_argument("buffer smaller than the range");
    }
    auto wg = sys_->open(origin_row_, origin_col_, rows_, cols_);
    const std::size_t stripe = (n + cores() - 1) / cores();
    std::vector<const Buffer*> bufs(buffers);
    wg.load([&, stripe, n, cycles_per_elem](device::CoreCtx& ctx) -> sim::Op<void> {
      return [](device::CoreCtx& c, const Queue::Body& fn,
                const std::vector<const Buffer*>& bs, std::size_t str, std::size_t total,
                double cpe) -> sim::Op<void> {
        const std::size_t first = static_cast<std::size_t>(c.group_index()) * str;
        if (first >= total) co_return;
        const std::size_t count = std::min(str, total - first);
        co_await c.compute(static_cast<sim::Cycles>(cpe * static_cast<double>(count) + 0.5));
        std::vector<std::span<float>> chunks;
        chunks.reserve(bs.size());
        for (const Buffer* b : bs) {
          chunks.push_back(c.local_array<float>(b->offset(), count));
        }
        fn(first, count, std::span<std::span<float>>(chunks));
      }(ctx, body, bufs, stripe, n, cycles_per_elem);
    });
    return wg.run();
  }

  /// Reduce the first `n` elements of `b` with `op` (associative,
  /// commutative): local folds, then a binary combining tree over the mesh
  /// using remote stores and flag waits. Returns the result and, via
  /// `cycles_out`, the device time.
  float reduce(const Buffer& b, std::size_t n, float init,
               std::function<float(float, float)> op, double cycles_per_elem,
               sim::Cycles* cycles_out = nullptr);

private:
  host::System* sys_;
  unsigned origin_row_;
  unsigned origin_col_;
  unsigned rows_;
  unsigned cols_;
  std::size_t brk_ = 0;
  std::uint32_t reduce_gen_ = 0;
};

}  // namespace epi::offload
