#pragma once
// 2D mesh allocator: rectangular workgroup placement on the 8x8 grid.
//
// Placement is policy; enforcement is machine::CoreReservations. The
// allocator answers "where should this rows x cols group go?" by first-fit
// scan over row-major origins (deterministic: same request stream, same
// placements), optionally trying the transposed shape when the requested
// orientation does not fit. It also keeps the fragmentation picture the
// scheduler's metrics report: how many cores are free, and how large a
// rectangle could still be placed -- the gap between the two is external
// fragmentation, the classic cost of first-fit on a torus-less mesh.
//
// The OpenSHMEM-on-Epiphany work (arXiv:1608.03545) made workgroup topology
// a first-class runtime concern; this is the serving-side counterpart.

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/coords.hpp"

namespace epi::sched {

/// A granted rectangle. `rotated` records that the allocator transposed the
/// requested shape to make it fit.
struct Placement {
  arch::CoreCoord origin{};
  unsigned rows = 1;
  unsigned cols = 1;
  bool rotated = false;

  [[nodiscard]] unsigned cores() const noexcept { return rows * cols; }
};

class MeshAllocator {
public:
  explicit MeshAllocator(arch::MeshDims dims);

  /// First-fit placement of a rows x cols rectangle (row-major origin scan).
  /// When `allow_rotate` and the shape is not square, the transposed shape
  /// is tried after the requested one. Empty when nothing fits right now.
  [[nodiscard]] std::optional<Placement> place(unsigned rows, unsigned cols,
                                               bool allow_rotate = true);

  /// Locality-aware variant for pipeline co-placement: among every origin
  /// where the shape fits, pick the one minimising the summed Manhattan
  /// distance between rectangle centres and the `anchors`' centres (the
  /// completed producer stages), first-fit order breaking ties. Tries the
  /// requested orientation exhaustively before the rotated one, and succeeds
  /// whenever place() would (same fit test, different tie-break), so
  /// co-placement can never deadlock an admission plain first-fit would
  /// serve. Empty `anchors` delegates to place() verbatim.
  [[nodiscard]] std::optional<Placement> place_near(
      unsigned rows, unsigned cols, bool allow_rotate,
      const std::vector<Placement>& anchors);

  /// Return a placement's cores to the free pool. Double-free (or freeing
  /// cells never placed) is a logic error and throws.
  void free(const Placement& p);

  /// Permanently retire a placement's cores (fault recovery: a watchdog
  /// caught the resident job silent). The cells stay marked used forever --
  /// they are never returned to the free pool, place() never considers them,
  /// and fits_ever() accounts for the shrunken healthy mesh.
  void quarantine(const Placement& p);
  [[nodiscard]] unsigned quarantined_cores() const noexcept { return quarantined_count_; }

  /// Whether the shape could fit an *empty* mesh at all (admission check).
  /// With quarantined cores, "empty" means every transient occupant gone but
  /// the dead cells still dead: the shape must clear a quarantine-free rect.
  [[nodiscard]] bool fits_ever(unsigned rows, unsigned cols,
                               bool allow_rotate = true) const noexcept;

  [[nodiscard]] arch::MeshDims dims() const noexcept { return dims_; }
  [[nodiscard]] unsigned free_cores() const noexcept { return free_; }
  [[nodiscard]] unsigned used_cores() const noexcept {
    return dims_.core_count() - free_;
  }

  /// Area of the largest free rectangle still placeable (0 when full).
  [[nodiscard]] unsigned largest_free_rect() const noexcept;

  /// External fragmentation in [0,1]: the fraction of free cores that the
  /// largest placeable rectangle can NOT reach. 0 when the free space is one
  /// solid rectangle (or the mesh is full); approaches 1 as the free cores
  /// scatter into unusable slivers.
  [[nodiscard]] double fragmentation() const noexcept;

  // ---- placement epochs ----------------------------------------------------
  // Every successful placement gets a monotonically increasing sequence
  // number, stamped on its cells. The scheduler uses the stamps to decide
  // whether a completed producer's (freed) rectangle still holds its tensor
  // bytes: scratchpad-to-scratchpad handoff is valid only while no *other*
  // placement has touched those cells since the producer ran.

  /// Sequence number of the most recent successful placement (0 before any).
  [[nodiscard]] std::uint64_t last_place_seq() const noexcept { return seq_; }
  /// Sequence of the last placement that covered cell (r, c); 0 if never.
  [[nodiscard]] std::uint64_t cell_seq(unsigned r, unsigned c) const noexcept {
    return last_seq_[r * dims_.cols + c];
  }

private:
  [[nodiscard]] bool rect_free(unsigned r0, unsigned c0, unsigned rows,
                               unsigned cols) const noexcept;
  void mark(unsigned r0, unsigned c0, unsigned rows, unsigned cols, bool used);

  [[nodiscard]] bool rect_healthy(unsigned r0, unsigned c0, unsigned rows,
                                  unsigned cols) const noexcept;
  void stamp(unsigned r0, unsigned c0, unsigned rows, unsigned cols);

  arch::MeshDims dims_;
  std::vector<std::uint8_t> used_;         // row-major occupancy
  std::vector<std::uint8_t> quarantined_;  // row-major; subset of used_
  std::vector<std::uint64_t> last_seq_;    // row-major placement epochs
  unsigned free_;
  unsigned quarantined_count_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace epi::sched
