#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "lint/workgroup.hpp"
#include "sched/dag.hpp"
#include "sched/kernels.hpp"
#include "trace/tracer.hpp"
#include "util/fmt.hpp"

namespace epi::sched {

namespace {
constexpr sim::Cycles kNever = std::numeric_limits<sim::Cycles>::max();
}  // namespace

Scheduler::Scheduler(host::System& sys, SchedConfig cfg)
    : sys_(&sys), cfg_(cfg), alloc_(sys.machine().dims()) {
  if (cfg_.queue_capacity == 0) {
    throw std::invalid_argument("SchedConfig::queue_capacity must be at least 1");
  }
  if (cfg_.aging_quantum == 0) cfg_.aging_quantum = 1;
  if (cfg_.max_attempts == 0) cfg_.max_attempts = 1;
  // When the machine traces, scheduler metrics live in the tracer's registry
  // so queue depth / cores busy land on the Perfetto timeline next to the
  // cores' own spans; otherwise keep a private registry.
  if (auto* tr = sys.machine().tracer()) {
    counters_ = &tr->counters();
  } else {
    owned_counters_ = std::make_unique<trace::Counters>();
    counters_ = owned_counters_.get();
  }
  define_counters();
}

void Scheduler::define_counters() {
  using K = trace::Counters::Kind;
  c_submitted_ = counters_->define("sched.jobs.submitted", K::Monotonic);
  c_admitted_ = counters_->define("sched.jobs.admitted", K::Monotonic);
  c_rejected_ = counters_->define("sched.jobs.rejected", K::Monotonic);
  c_completed_ = counters_->define("sched.jobs.completed", K::Monotonic);
  c_timedout_ = counters_->define("sched.jobs.timed_out", K::Monotonic);
  c_failed_ = counters_->define("sched.jobs.failed", K::Monotonic);
  c_launch_failures_ = counters_->define("sched.launch.failures", K::Monotonic);
  c_retries_ = counters_->define("sched.launch.retries", K::Monotonic);
  c_busy_cycles_ = counters_->define("sched.core_cycles.busy", K::Monotonic);
  g_queue_depth_ = counters_->define("sched.queue.depth", K::Gauge);
  g_running_ = counters_->define("sched.jobs.running", K::Gauge);
  g_cores_busy_ = counters_->define("sched.cores.busy", K::Gauge);
  c_faults_ = counters_->define("sched.faults.detected", K::Monotonic);
  c_reexecs_ = counters_->define("sched.jobs.reexecuted", K::Monotonic);
  g_quarantined_ = counters_->define("sched.cores.quarantined", K::Gauge);
  c_lint_rejects_ = counters_->define("sched.lint.rejects", K::Monotonic);
  c_lint_warnings_ = counters_->define("sched.lint.warnings", K::Monotonic);
  c_handoff_scratch_ =
      counters_->define("sched.dag.handoff.scratch_bytes", K::Monotonic);
  c_handoff_dram_ = counters_->define("sched.dag.handoff.dram_bytes", K::Monotonic);
}

void Scheduler::bump(trace::Counters::Id id, double delta) {
  if (auto* tr = sys_->machine().tracer()) {
    tr->count(id, sys_->engine().now(), delta);
  } else {
    counters_->add(id, delta);
  }
}

void Scheduler::gauge(trace::Counters::Id id, double value) {
  if (auto* tr = sys_->machine().tracer()) {
    tr->sample(id, sys_->engine().now(), value);
  } else {
    counters_->set(id, value);
  }
}

trace::Counters::Id Scheduler::tenant_counter(const std::string& tenant,
                                              const char* what) {
  return counters_->define("sched.tenant." + tenant + "." + what,
                           trace::Counters::Kind::Monotonic);
}

void Scheduler::log_event(const std::string& line) { log_.push_back(line); }

void Scheduler::submit(JobSpec spec) {
  if (ran_) throw std::logic_error("Scheduler::submit after run()");
  JobRecord rec;
  rec.spec = std::move(spec);
  records_.push_back(std::move(rec));
  register_graph(static_cast<std::uint32_t>(records_.size() - 1));
}

/// Track a graph stage's record; once the whole graph is here, wire the
/// producer->consumer edges both ways. Stages may not launch before the
/// graph is wired (dag_launchable): a producer started earlier would have no
/// spill plan for consumers the cluster bridge has not delivered yet.
void Scheduler::register_graph(std::uint32_t rec_idx) {
  const JobSpec& spec = records_[rec_idx].spec;
  if (spec.graph == 0) return;
  id_to_rec_[spec.id] = rec_idx;
  GraphState& gs = graphs_[spec.graph];
  gs.recs.push_back(rec_idx);
  ++gs.unresolved;
  if (spec.graph_stages == 0 || gs.recs.size() < spec.graph_stages) return;
  gs.wired = true;
  for (const std::uint32_t r : gs.recs) dag_[r];  // ensure every stage's entry
  for (const std::uint32_t r : gs.recs) {
    for (const auto& [dep_id, bytes] : records_[r].spec.deps) {
      const auto it = id_to_rec_.find(dep_id);
      if (it == id_to_rec_.end() ||
          records_[it->second].spec.graph != spec.graph) {
        dag_[r].broken = true;  // malformed workload: fails at drop_orphaned
        continue;
      }
      dag_[r].dep_recs.emplace_back(it->second, bytes);
      dag_[it->second].outs.emplace_back(r, bytes);
    }
  }
}

double Scheduler::effective_priority(const Pending& p, sim::Cycles now) const {
  const JobSpec& spec = records_[p.rec].spec;
  const sim::Cycles waited = now >= p.enqueued ? now - p.enqueued : 0;
  return static_cast<double>(spec.priority) +
         static_cast<double>(waited / cfg_.aging_quantum);
}

void Scheduler::resolve(JobRecord& rec, Verdict v, sim::Cycles now,
                        std::string detail) {
  rec.verdict = v;
  rec.detail = std::move(detail);
  if (rec.finished == 0 && v != Verdict::Completed) rec.finished = now;
  ++resolved_;
  if (rec.spec.graph != 0) {
    if (const auto it = graphs_.find(rec.spec.graph);
        it != graphs_.end() && it->second.unresolved > 0) {
      --it->second.unresolved;
    }
  }
  makespan_ = std::max(makespan_, v == Verdict::Completed ? rec.finished : now);
  switch (v) {
    case Verdict::Completed:
      bump(c_completed_, 1.0);
      bump(tenant_counter(rec.spec.tenant, "completed"), 1.0);
      break;
    case Verdict::Rejected:
      bump(c_rejected_, 1.0);
      bump(tenant_counter(rec.spec.tenant, "rejected"), 1.0);
      break;
    case Verdict::TimedOut:
      bump(c_timedout_, 1.0);
      bump(tenant_counter(rec.spec.tenant, "timed_out"), 1.0);
      break;
    case Verdict::Failed:
      bump(c_failed_, 1.0);
      bump(tenant_counter(rec.spec.tenant, "failed"), 1.0);
      break;
    case Verdict::Pending:
      throw std::logic_error("resolve to Pending");
  }
  if (resolve_hook_) resolve_hook_(rec, now);
}

bool Scheduler::admit_arrivals(sim::Cycles now) {
  bool progress = false;
  while (next_arrival_ < arrivals_.size() &&
         records_[arrivals_[next_arrival_]].spec.arrival <= now) {
    const std::uint32_t idx = arrivals_[next_arrival_++];
    JobRecord& rec = records_[idx];
    const JobSpec& spec = rec.spec;
    progress = true;
    bump(c_submitted_, 1.0);
    bump(tenant_counter(spec.tenant, "submitted"), 1.0);
    log_event(util::format("@%llu submit job=%u tenant=%s kind=%s shape=%ux%u prio=%u",
                        static_cast<unsigned long long>(now), spec.id,
                        spec.tenant.c_str(), to_string(spec.kind), spec.rows,
                        spec.cols, spec.priority));
    if (!alloc_.fits_ever(spec.rows, spec.cols, cfg_.allow_rotate)) {
      resolve(rec, Verdict::Rejected, now,
              util::format("shape %ux%u cannot fit the %ux%u mesh", spec.rows,
                        spec.cols, alloc_.dims().rows, alloc_.dims().cols));
      log_event(util::format("@%llu reject job=%u reason=unsatisfiable-shape",
                          static_cast<unsigned long long>(now), spec.id));
      continue;
    }
    if (!lint_gate(rec, now)) continue;
    if (pending_.size() >= cfg_.queue_capacity) {
      resolve(rec, Verdict::Rejected, now,
              util::format("admission queue full (%zu pending)", pending_.size()));
      log_event(util::format("@%llu reject job=%u reason=queue-full",
                          static_cast<unsigned long long>(now), spec.id));
      continue;
    }
    rec.admitted = now;
    pending_.push_back(Pending{idx, now, 0});
    bump(c_admitted_, 1.0);
    gauge(g_queue_depth_, static_cast<double>(pending_.size()));
    log_event(util::format("@%llu admit job=%u depth=%zu",
                        static_cast<unsigned long long>(now), spec.id,
                        pending_.size()));
  }
  return progress;
}

bool Scheduler::lint_gate(JobRecord& rec, sim::Cycles now) {
  const JobSpec& spec = rec.spec;
  if (spec.kind != JobKind::Custom) return true;
  // A custom job with no programs, or programs that do not assemble, can
  // never run -- reject regardless of the lint mode.
  lint::WorkgroupSpec wspec;
  try {
    wspec = lint::assemble_workgroup(spec.rows, spec.cols, spec.programs);
  } catch (const std::exception& e) {
    resolve(rec, Verdict::Rejected, now, std::string("lint: ") + e.what());
    log_event(util::format("@%llu reject job=%u reason=lint-assembly",
                        static_cast<unsigned long long>(now), spec.id));
    bump(c_lint_rejects_, 1.0);
    return false;
  }
  if (cfg_.lint == LintMode::Off) return true;
  const auto findings = lint::verify_workgroup(wspec);
  std::size_t errors = 0;
  for (const auto& f : findings) {
    if (f.finding.severity >= lint::Severity::Error) ++errors;
  }
  if (errors > 0 && cfg_.lint == LintMode::Strict) {
    std::string first;
    for (const auto& f : findings) {
      if (f.finding.severity >= lint::Severity::Error) {
        first = f.format();
        break;
      }
    }
    resolve(rec, Verdict::Rejected, now,
            util::format("lint: %zu error(s), first: %s", errors, first.c_str()));
    log_event(util::format("@%llu lint-reject job=%u errors=%zu findings=%zu",
                        static_cast<unsigned long long>(now), spec.id, errors,
                        findings.size()));
    bump(c_lint_rejects_, 1.0);
    return false;
  }
  if (!findings.empty()) {
    log_event(util::format("@%llu lint-warn job=%u errors=%zu findings=%zu first=%s",
                        static_cast<unsigned long long>(now), spec.id, errors,
                        findings.size(), findings.front().format().c_str()));
    bump(c_lint_warnings_, static_cast<double>(findings.size()));
  }
  return true;
}

bool Scheduler::reap_completed(sim::Cycles now) {
  bool progress = false;
  for (std::size_t i = 0; i < running_.size();) {
    Running& run = running_[i];
    if (!run.wg->complete()) {
      ++i;
      continue;
    }
    progress = true;
    JobRecord& rec = records_[run.rec];
    rec.finished = run.wg->finish_time();
    busy_core_cycles_ += static_cast<double>(run.placement.cores()) *
                         static_cast<double>(rec.finished - rec.started);
    bump(c_busy_cycles_, static_cast<double>(run.placement.cores()) *
                             static_cast<double>(rec.finished - rec.started));
    rec.deadline_met = rec.spec.deadline == 0 || rec.finished <= rec.spec.deadline;
    std::string fail_detail;
    bool fault_failure = false;  // fault-model error (CRC, unroutable): retryable
    if (run.wg->any_failed()) {
      try {
        run.wg->rethrow_errors();
      } catch (const fault::FaultError& e) {
        fault_failure = true;
        fail_detail = e.what();
      } catch (const std::exception& e) {
        fail_detail = e.what();
      } catch (...) {
        fail_detail = "unknown kernel error";
      }
    }
    // Result validation: with a fault plan armed, the launcher seeded this
    // offload job's scratch stripes with a known pattern; a DRAM mismatch now
    // means a flip slipped past the transfer CRCs (e.g. a scratchpad or
    // direct DRAM corruption) and the job must not count as served.
    std::string corrupt;
    if (fail_detail.empty()) {
      auto* inj = sys_->machine().faults();
      if (inj != nullptr && inj->armed() && rec.spec.kind == JobKind::Offload) {
        corrupt = verify_offload_output(*sys_, *run.wg, rec.spec, run.shm_base);
      }
      // shmem jobs carry a host reference derived from the spec alone, so
      // they are validated unconditionally (not only under armed faults).
      if (rec.spec.kind == JobKind::CannonMatmul ||
          rec.spec.kind == JobKind::Transpose) {
        corrupt = verify_shmem_output(*sys_, *run.wg, rec.spec);
      }
    }
    run.wg.reset();  // release the core reservation before freeing the rect
    alloc_.free(run.placement);
    if (fault_failure || !corrupt.empty()) {
      const char* kind = fault_failure ? "transfer" : "corrupt-result";
      report_fault(now, rec.finished, rec, kind,
                   fault_failure ? fail_detail : corrupt);
      requeue_or_fail(run.rec, now, kind);
    } else if (!fail_detail.empty()) {
      resolve(rec, Verdict::Failed, now, "kernel error: " + fail_detail);
      log_event(util::format("@%llu fail job=%u reason=kernel-error",
                          static_cast<unsigned long long>(now), rec.spec.id));
    } else {
      if (rec.reexecs > 0) {
        rec.recovery = (rec.placed_row == rec.first_row &&
                        rec.placed_col == rec.first_col &&
                        rec.granted_rows == rec.first_rows &&
                        rec.granted_cols == rec.first_cols)
                           ? Recovery::Retried
                           : Recovery::Relocated;
        bump(tenant_counter(rec.spec.tenant, to_string(rec.recovery)), 1.0);
      }
      if (rec.spec.graph != 0) {
        // Consumers launched after this point may pull straight from the
        // stage's scratchpads (if the rect survives untouched) or from its
        // DRAM spill buffers.
        DagInfo& di = dag_[run.rec];
        di.done_place = run.placement;
        di.place_seq = run.place_seq;
        di.has_result = true;
      }
      resolve(rec, Verdict::Completed, now, "");
      log_event(util::format(
          "@%llu finish job=%u cycles=%llu deadline=%s frag=%.3f%s%s",
          static_cast<unsigned long long>(now), rec.spec.id,
          static_cast<unsigned long long>(rec.service()),
          rec.spec.deadline == 0 ? "n/a" : (rec.deadline_met ? "met" : "missed"),
          alloc_.fragmentation(),
          rec.recovery == Recovery::None ? "" : " recovery=",
          rec.recovery == Recovery::None ? "" : to_string(rec.recovery)));
    }
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
    gauge(g_running_, static_cast<double>(running_.size()));
    gauge(g_cores_busy_, static_cast<double>(alloc_.used_cores()));
  }
  return progress;
}

void Scheduler::report_fault(sim::Cycles now, sim::Cycles since, const JobRecord& rec,
                             const char* kind, std::string detail) {
  fault_log_.push_back(
      fault::FaultReport{now, since, rec.spec.id, kind, std::move(detail)});
  bump(c_faults_, 1.0);
  log_event(util::format("@%llu fault job=%u kind=%s latency=%llu",
                      static_cast<unsigned long long>(now), rec.spec.id, kind,
                      static_cast<unsigned long long>(now - since)));
}

/// A detected fault ended this job's current execution. Give it another full
/// run if the re-execution budget and the (possibly degraded) mesh allow;
/// otherwise it fails with the fault as the reason.
void Scheduler::requeue_or_fail(std::uint32_t rec_idx, sim::Cycles now,
                                const char* why) {
  JobRecord& rec = records_[rec_idx];
  // Deadline-aware retry budget for pipeline stages: replaying a stage whose
  // graph deadline has already passed only burns cores its siblings need, so
  // the stage fails now and the cascade drop cleans its consumers up.
  if (rec.spec.graph != 0 && rec.spec.deadline != 0 && now >= rec.spec.deadline) {
    resolve(rec, Verdict::Failed, now,
            util::format("%s fault at cycle %llu past stage deadline %llu: "
                      "replay abandoned",
                      why, static_cast<unsigned long long>(now),
                      static_cast<unsigned long long>(rec.spec.deadline)));
    log_event(util::format("@%llu fail job=%u reason=deadline-exhausted fault=%s",
                        static_cast<unsigned long long>(now), rec.spec.id, why));
    return;
  }
  if (rec.reexecs < cfg_.max_reexecutions &&
      alloc_.fits_ever(rec.spec.rows, rec.spec.cols, cfg_.allow_rotate)) {
    ++rec.reexecs;
    rec.started = 0;
    rec.finished = 0;
    bump(c_reexecs_, 1.0);
    const sim::Cycles backoff = cfg_.retry_backoff
                                << std::min(rec.reexecs - 1, 20u);
    pending_.push_back(Pending{rec_idx, now, now + backoff});
    gauge(g_queue_depth_, static_cast<double>(pending_.size()));
    log_event(util::format("@%llu requeue job=%u reexec=%u reason=%s retry_at=%llu",
                        static_cast<unsigned long long>(now), rec.spec.id,
                        rec.reexecs, why,
                        static_cast<unsigned long long>(now + backoff)));
  } else {
    resolve(rec, Verdict::Failed, now,
            util::format("%s fault persisted after %u re-executions", why,
                      rec.reexecs));
    log_event(util::format("@%llu fail job=%u reason=%s reexecs=%u",
                        static_cast<unsigned long long>(now), rec.spec.id, why,
                        rec.reexecs));
  }
}

/// After a quarantine shrank the healthy mesh, queued shapes that can no
/// longer ever be placed must fail now instead of waiting forever.
void Scheduler::drop_unsatisfiable(sim::Cycles now) {
  for (std::size_t i = 0; i < pending_.size();) {
    JobRecord& rec = records_[pending_[i].rec];
    if (alloc_.fits_ever(rec.spec.rows, rec.spec.cols, cfg_.allow_rotate)) {
      ++i;
      continue;
    }
    resolve(rec, Verdict::Failed, now,
            util::format("mesh degraded: %ux%u no longer placeable (%u cores "
                      "quarantined)",
                      rec.spec.rows, rec.spec.cols, alloc_.quarantined_cores()));
    log_event(util::format("@%llu fail job=%u reason=mesh-degraded",
                        static_cast<unsigned long long>(now), rec.spec.id));
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    gauge(g_queue_depth_, static_cast<double>(pending_.size()));
  }
}

std::size_t Scheduler::abandon_unresolved(sim::Cycles at,
                                          const std::string& reason) {
  std::size_t abandoned = 0;
  for (Running& run : running_) {
    run.wg.reset();  // release reservations before freeing the rectangles
    alloc_.free(run.placement);
  }
  running_.clear();
  pending_.clear();
  next_arrival_ = arrivals_.size();
  for (JobRecord& rec : records_) {
    if (rec.verdict != Verdict::Pending) continue;
    ++abandoned;
    resolve(rec, Verdict::Failed, at, reason);
    log_event(util::format("@%llu fail job=%u reason=chip-dead",
                        static_cast<unsigned long long>(at), rec.spec.id));
  }
  gauge(g_queue_depth_, 0.0);
  gauge(g_running_, 0.0);
  gauge(g_cores_busy_, static_cast<double>(alloc_.used_cores()));
  return abandoned;
}

/// Per-workgroup watchdog: a running job that has been resident past its
/// silence budget, and whose cores the fault injector knows to be stalled or
/// dead (or whose kernels have no runnable event left anywhere), is declared
/// faulted. Its rectangle is quarantined -- a stalled-not-dead kernel may
/// resume later as a zombie, so the cores are never handed to another job --
/// and the job itself is re-queued or failed. This is what turns the old
/// global DeadlockError into a per-job, recoverable verdict.
bool Scheduler::check_watchdogs(sim::Cycles now) {
  if (cfg_.watchdog_cycles == 0 || running_.empty()) return false;
  auto* inj = sys_->machine().faults();
  const bool engine_idle = sys_->engine().empty();
  bool fired = false;
  for (std::size_t i = 0; i < running_.size();) {
    Running& run = running_[i];
    JobRecord& rec = records_[run.rec];
    if (run.wg->complete() || now < rec.started + cfg_.watchdog_cycles) {
      ++i;
      continue;
    }
    sim::Cycles since = fault::kNever;
    if (inj != nullptr) {
      for (unsigned r = 0; r < run.placement.rows; ++r) {
        for (unsigned c = 0; c < run.placement.cols; ++c) {
          since = std::min(since, inj->unresponsive_since(
                                      {run.placement.origin.row + r,
                                       run.placement.origin.col + c},
                                      now));
        }
      }
    }
    // A core that threw (e.g. UnroutableError on a severed route) wrecks the
    // whole group: its mates block on a barrier that can never be satisfied,
    // so trip at the horizon instead of waiting for the engine to drain.
    const bool wrecked = run.wg->any_failed();
    if (since == fault::kNever && !wrecked && !engine_idle) {
      ++i;
      continue;
    }
    fired = true;
    const sim::Cycles first_sign = since == fault::kNever ? rec.started : since;
    std::string detail =
        util::format("job %u silent on %ux%u@(%u,%u) for %llu cycles",
                     rec.spec.id, run.placement.rows, run.placement.cols,
                     run.placement.origin.row, run.placement.origin.col,
                     static_cast<unsigned long long>(now - first_sign));
    if (wrecked) {
      try {
        run.wg->rethrow_errors();
      } catch (const std::exception& e) {
        detail += util::format(" (core error: %s)", e.what());
      }
    }
    report_fault(now, first_sign, rec, "watchdog", std::move(detail));
    alloc_.quarantine(run.placement);
    gauge(g_quarantined_, static_cast<double>(alloc_.quarantined_cores()));
    log_event(util::format(
        "@%llu quarantine origin=(%u,%u) shape=%ux%u job=%u total=%u",
        static_cast<unsigned long long>(now), run.placement.origin.row,
        run.placement.origin.col, run.placement.rows, run.placement.cols,
        rec.spec.id, alloc_.quarantined_cores()));
    graveyard_.push_back(std::move(run.wg));
    const std::uint32_t rec_idx = run.rec;
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
    gauge(g_running_, static_cast<double>(running_.size()));
    gauge(g_cores_busy_, static_cast<double>(alloc_.used_cores()));
    requeue_or_fail(rec_idx, now, "watchdog");
  }
  if (fired) drop_unsatisfiable(now);
  return fired;
}

bool Scheduler::drop_timed_out(sim::Cycles now) {
  bool progress = false;
  for (std::size_t i = 0; i < pending_.size();) {
    JobRecord& rec = records_[pending_[i].rec];
    const JobSpec& spec = rec.spec;
    if (spec.timeout == 0 || now < rec.admitted + spec.timeout) {
      ++i;
      continue;
    }
    progress = true;
    resolve(rec, Verdict::TimedOut, now,
            util::format("not started within %llu cycles of admission",
                      static_cast<unsigned long long>(spec.timeout)));
    log_event(util::format("@%llu timeout job=%u waited=%llu",
                        static_cast<unsigned long long>(now), spec.id,
                        static_cast<unsigned long long>(now - rec.admitted)));
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    gauge(g_queue_depth_, static_cast<double>(pending_.size()));
  }
  return progress;
}

std::uint32_t Scheduler::min_unresolved_graph() const {
  for (const auto& [gid, gs] : graphs_) {
    if (gs.unresolved > 0) return gid;
  }
  return 0;
}

/// Whether a pending record's pipeline dependencies allow launching now:
/// graph fully submitted (wired), every producer completed with a usable
/// result, and -- with pipeline_overlap off -- its graph is the oldest one
/// still unresolved (whole-graph serialisation, the abl_dag baseline).
/// Standalone jobs are always launchable.
bool Scheduler::dag_launchable(std::uint32_t rec_idx) const {
  const JobRecord& rec = records_[rec_idx];
  if (rec.spec.graph == 0) return true;
  const auto git = graphs_.find(rec.spec.graph);
  if (git == graphs_.end() || !git->second.wired) return false;
  if (!cfg_.pipeline_overlap && rec.spec.graph != min_unresolved_graph()) {
    return false;
  }
  const auto dit = dag_.find(rec_idx);
  if (dit == dag_.end()) return true;
  if (dit->second.broken) return false;
  for (const auto& [producer, bytes] : dit->second.dep_recs) {
    (void)bytes;
    if (records_[producer].verdict != Verdict::Completed) return false;
    const auto pit = dag_.find(producer);
    if (pit == dag_.end() || !pit->second.has_result) return false;
  }
  return true;
}

/// A stage whose producer reached a non-Completed terminal verdict can never
/// run: fail it now (cascading down the chain on later passes) instead of
/// letting it camp in the queue until its timeout.
bool Scheduler::drop_orphaned(sim::Cycles now) {
  bool progress = false;
  for (std::size_t i = 0; i < pending_.size();) {
    JobRecord& rec = records_[pending_[i].rec];
    if (rec.spec.graph == 0) {
      ++i;
      continue;
    }
    const auto git = graphs_.find(rec.spec.graph);
    const auto dit = dag_.find(pending_[i].rec);
    bool orphan = false;
    std::uint32_t upstream = 0;
    if (git != graphs_.end() && git->second.wired && dit != dag_.end()) {
      if (dit->second.broken) {
        orphan = true;
      } else {
        for (const auto& [producer, bytes] : dit->second.dep_recs) {
          (void)bytes;
          const Verdict v = records_[producer].verdict;
          if (v == Verdict::Rejected || v == Verdict::TimedOut ||
              v == Verdict::Failed) {
            orphan = true;
            upstream = records_[producer].spec.id;
            break;
          }
        }
      }
    }
    if (!orphan) {
      ++i;
      continue;
    }
    progress = true;
    resolve(rec, Verdict::Failed, now,
            dit->second.broken
                ? "pipeline stage has an unresolvable dependency"
                : util::format("upstream stage (job %u) failed", upstream));
    log_event(util::format("@%llu fail job=%u reason=upstream-failed",
                           static_cast<unsigned long long>(now), rec.spec.id));
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    gauge(g_queue_depth_, static_cast<double>(pending_.size()));
  }
  return progress;
}

/// Scratchpad handoff is only sound while the producer's freed rectangle
/// still holds its staging bytes: every cell must carry either the
/// producer's own placement epoch or the consumer's brand-new one (the
/// consumer overlapping its producer's old cells is fine -- nothing scrubs
/// the staging window between jobs).
bool Scheduler::handoff_epoch_valid(const Placement& producer,
                                    std::uint64_t producer_seq,
                                    std::uint64_t self_seq) const {
  for (unsigned r = 0; r < producer.rows; ++r) {
    for (unsigned c = 0; c < producer.cols; ++c) {
      const std::uint64_t s =
          alloc_.cell_seq(producer.origin.row + r, producer.origin.col + c);
      if (s != producer_seq && s != self_seq) return false;
    }
  }
  return true;
}

bool Scheduler::launch(Pending& p, sim::Cycles now) {
  JobRecord& rec = records_[p.rec];
  const JobSpec& spec = rec.spec;
  // Co-placement: anchor a pipeline stage next to its completed producers'
  // rectangles so the scratchpad handoff path (adjacent rects) can trigger.
  // Standalone jobs pass no anchors, which is exactly first-fit place().
  std::vector<Placement> anchors;
  if (spec.graph != 0) {
    if (const auto dit = dag_.find(p.rec); dit != dag_.end()) {
      for (const auto& [producer, bytes] : dit->second.dep_recs) {
        (void)bytes;
        if (const auto pit = dag_.find(producer);
            pit != dag_.end() && pit->second.has_result) {
          anchors.push_back(pit->second.done_place);
        }
      }
    }
  }
  auto placement =
      alloc_.place_near(spec.rows, spec.cols, cfg_.allow_rotate, anchors);
  if (!placement) return false;
  const std::uint64_t myseq = alloc_.last_place_seq();

  ++rec.attempts;
  if (rec.attempts <= spec.launch_failures) {
    // Injected transient launch failure (a real e_load/e_start can fail and
    // is retried by robust hosts). The rectangle is returned immediately;
    // the job backs off exponentially before its next attempt.
    alloc_.free(*placement);
    bump(c_launch_failures_, 1.0);
    if (rec.attempts >= cfg_.max_attempts) {
      resolve(rec, Verdict::Failed, now,
              util::format("launch failed %u times", rec.attempts));
      log_event(util::format("@%llu fail job=%u reason=launch-failed attempts=%u",
                          static_cast<unsigned long long>(now), spec.id,
                          rec.attempts));
      return true;  // terminal: caller removes the job from pending_
    }
    const sim::Cycles backoff = cfg_.retry_backoff
                                << std::min(rec.attempts - 1, 20u);
    p.retry_at = now + backoff;
    bump(c_retries_, 1.0);
    log_event(util::format("@%llu launch-fail job=%u attempt=%u retry_at=%llu",
                        static_cast<unsigned long long>(now), spec.id,
                        rec.attempts,
                        static_cast<unsigned long long>(p.retry_at)));
    return false;
  }

  std::optional<host::Workgroup> wg;
  arch::Addr shm_base = 0;
  std::vector<HandoffPull> pulls;
  std::vector<HandoffSpill> spills;
  try {
    wg.emplace(sys_->open(placement->origin.row, placement->origin.col,
                          placement->rows, placement->cols));
    wg->set_label(util::format("job %u", spec.id));
    if (const std::size_t shm = job_shm_bytes(spec); shm > 0) {
      shm_base = sys_->shm_alloc(shm);
    }
    if (spec.graph != 0) {
      if (const auto dit = dag_.find(p.rec); dit != dag_.end()) {
        DagInfo& di = dit->second;
        // In-edges: pull each producer's tensor. Scratch-to-scratch over the
        // mesh when the rects are adjacent and the producer's cells still
        // hold its staging bytes; otherwise read back the DRAM spill buffer.
        for (const auto& [producer, bytes] : di.dep_recs) {
          const DagInfo& pd = dag_.at(producer);
          std::size_t out = 0;
          while (out < pd.outs.size() && pd.outs[out].first != p.rec) ++out;
          if (out >= pd.out_bases.size()) {
            throw std::logic_error("pipeline producer has no spill buffer");
          }
          const bool scratch = cfg_.scratch_handoff &&
                               rects_adjacent(*placement, pd.done_place) &&
                               handoff_epoch_valid(pd.done_place, pd.place_seq,
                                                   myseq);
          pulls.push_back(HandoffPull{
              scratch,
              device::GroupInfo{{pd.done_place.origin.row,
                                 pd.done_place.origin.col},
                                pd.done_place.rows, pd.done_place.cols},
              pd.out_bases[out], bytes});
        }
        // Out-edges: this stage always spills each tensor to its own DRAM
        // buffer -- consumer adjacency is unknowable until the consumer is
        // placed, and a re-execution must not reuse a half-written buffer.
        di.out_bases.clear();
        for (const auto& [consumer, bytes] : di.outs) {
          (void)consumer;
          const arch::Addr base = sys_->shm_alloc(bytes);
          di.out_bases.push_back(base);
          spills.push_back(HandoffSpill{base, bytes});
        }
      }
    }
    device::KernelFn kernel = prepare_job(*sys_, *wg, spec, shm_base);
    if (!pulls.empty() || !spills.empty()) {
      kernel = wrap_stage_kernel(std::move(kernel), pulls, spills);
    }
    wg->load(std::move(kernel));
    // Fault runs seed offload inputs with a known pattern so reap-time
    // result validation can tell corrupted output from correct output.
    if (auto* inj = sys_->machine().faults(); inj != nullptr && inj->armed()) {
      fill_offload_input(*sys_, *wg, spec);
    }
  } catch (const std::exception& e) {
    // A launch-path error (bad shape for the kernel, shm exhaustion, ...)
    // must fail this one job, not escape and take the serving loop down.
    wg.reset();  // release the reservation before the rect goes back
    alloc_.free(*placement);
    resolve(rec, Verdict::Failed, now, std::string("launch error: ") + e.what());
    log_event(util::format("@%llu fail job=%u reason=launch-error",
                        static_cast<unsigned long long>(now), spec.id));
    return true;  // terminal: caller removes the job from pending_
  }

  rec.started = now;
  rec.placed_row = placement->origin.row;
  rec.placed_col = placement->origin.col;
  rec.granted_rows = placement->rows;
  rec.granted_cols = placement->cols;
  if (!rec.placed_once) {
    rec.placed_once = true;
    rec.first_row = rec.placed_row;
    rec.first_col = rec.placed_col;
    rec.first_rows = rec.granted_rows;
    rec.first_cols = rec.granted_cols;
  }

  auto& slot = running_.emplace_back(
      Running{p.rec, *placement,
              std::make_unique<host::Workgroup>(std::move(*wg)), shm_base,
              myseq});
  // start() only after the Workgroup reached its stable heap address: the
  // kernel coroutines capture pointers into it.
  slot.wg->start();
  peak_resident_ = std::max(peak_resident_, static_cast<unsigned>(running_.size()));
  gauge(g_running_, static_cast<double>(running_.size()));
  gauge(g_cores_busy_, static_cast<double>(alloc_.used_cores()));
  log_event(util::format(
      "@%llu place job=%u origin=(%u,%u) shape=%ux%u%s wait=%llu frag=%.3f",
      static_cast<unsigned long long>(now), spec.id, rec.placed_row,
      rec.placed_col, rec.granted_rows, rec.granted_cols,
      placement->rotated ? " rotated" : "",
      static_cast<unsigned long long>(rec.queue_wait()), alloc_.fragmentation()));
  for (const HandoffPull& h : pulls) {
    if (h.scratch) {
      handoff_scratch_bytes_ += h.bytes;
      bump(c_handoff_scratch_, static_cast<double>(h.bytes));
    } else {
      handoff_dram_bytes_ += h.bytes;
      bump(c_handoff_dram_, static_cast<double>(h.bytes));
    }
    log_event(util::format(
        "@%llu handoff job=%u from=(%u,%u) bytes=%u transport=%s",
        static_cast<unsigned long long>(now), spec.id, h.producer.origin.row,
        h.producer.origin.col, h.bytes, h.scratch ? "scratch" : "dram"));
  }
  return true;
}

void Scheduler::try_place(sim::Cycles now) {
  if (pending_.empty()) return;
  // Order candidates by aged priority (descending), admission order as the
  // tie-break. Indices, not Pending copies: launch() mutates retry state.
  std::vector<std::size_t> order(pending_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return effective_priority(pending_[a], now) >
           effective_priority(pending_[b], now);
  });

  std::vector<std::size_t> launched;
  for (std::size_t k = 0; k < order.size(); ++k) {
    Pending& p = pending_[order[k]];
    JobRecord& rec = records_[p.rec];
    if (p.retry_at > now) continue;  // still backing off
    if (!dag_launchable(p.rec)) continue;  // producers not finished yet
    if (launch(p, now)) {
      launched.push_back(order[k]);
      continue;
    }
    if (rec.started == 0 && p.retry_at <= now && k == 0 &&
        now >= p.enqueued + cfg_.head_block_wait) {
      // The highest-priority waiter is starving for space: stop backfilling
      // smaller jobs behind it, or a stream of 1x1s would starve an 8x8.
      log_event(util::format("@%llu head-block job=%u waited=%llu",
                          static_cast<unsigned long long>(now), rec.spec.id,
                          static_cast<unsigned long long>(now - p.enqueued)));
      break;
    }
  }
  if (!launched.empty()) {
    std::sort(launched.begin(), launched.end());
    for (std::size_t i = launched.size(); i-- > 0;) {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(launched[i]));
    }
    gauge(g_queue_depth_, static_cast<double>(pending_.size()));
  }
}

sim::Cycles Scheduler::next_wakeup(sim::Cycles now) const {
  sim::Cycles t = kNever;
  if (next_arrival_ < arrivals_.size()) {
    t = std::min(t, std::max(records_[arrivals_[next_arrival_]].spec.arrival,
                             now + 1));
  }
  for (const Pending& p : pending_) {
    const JobSpec& spec = records_[p.rec].spec;
    if (p.retry_at > now) t = std::min(t, p.retry_at);
    if (spec.timeout != 0) {
      const sim::Cycles deadline = records_[p.rec].admitted + spec.timeout;
      t = std::min(t, std::max(deadline, now + 1));
    }
  }
  if (cfg_.watchdog_cycles != 0) {
    // With the watchdog armed, every running job is a wakeup source: if its
    // kernels fall silent the host still visits it at the silence horizon.
    for (const Running& r : running_) {
      t = std::min(t, std::max(records_[r.rec].started + cfg_.watchdog_cycles,
                               now + 1));
    }
  }
  return t;
}

void Scheduler::begin() {
  if (ran_) throw std::logic_error("Scheduler::run called twice");
  ran_ = true;
  arrivals_.resize(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) arrivals_[i] = i;
  std::stable_sort(arrivals_.begin(), arrivals_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (records_[a].spec.arrival != records_[b].spec.arrival) {
                       return records_[a].spec.arrival < records_[b].spec.arrival;
                     }
                     return records_[a].spec.id < records_[b].spec.id;
                   });
}

void Scheduler::run_window(sim::Cycles limit) {
  sim::Engine& eng = sys_->engine();
  while (resolved_ < records_.size()) {
    const sim::Cycles now = eng.now();
    bool progress = true;
    while (progress) {
      progress = admit_arrivals(now);
      progress = reap_completed(now) || progress;
      progress = check_watchdogs(now) || progress;
      progress = drop_timed_out(now) || progress;
      progress = drop_orphaned(now) || progress;
      const std::size_t before = resolved_;
      try_place(now);
      // A terminal verdict inside try_place (launch failed/errored out) may
      // orphan queued consumer stages; sweep again so they cannot stall the
      // run waiting on a producer that will never exist.
      if (resolved_ != before) progress = drop_orphaned(now) || progress;
    }
    if (resolved_ >= records_.size()) break;
    if (eng.step_below(limit)) continue;
    // Nothing runnable below the window end. If events remain beyond it the
    // window is simply exhausted; the PDES barrier resumes us later at the
    // exact point the open-ended loop would have reached.
    if (!eng.empty()) return;
    // No device events runnable at all. If groups are still resident their
    // kernels are deadlocked: without a watchdog that is fatal (the pre-
    // fault behaviour); with one, the next horizon visit converts each
    // silent group into a FaultReport and the loop continues.
    if (!running_.empty() && cfg_.watchdog_cycles == 0) {
      throw sim::DeadlockError(eng.live_processes(), eng.live_process_names());
    }
    const sim::Cycles t = next_wakeup(now);
    if (t == kNever) {
      if (limit != kNever) return;  // cluster mode: idle until a forward lands
      if (!running_.empty()) {
        throw sim::DeadlockError(eng.live_processes(), eng.live_process_names());
      }
      throw std::logic_error("scheduler stalled with unresolved jobs and no horizon");
    }
    if (t >= limit) return;  // horizon beyond the window: pause, do not arm
    eng.call_at(t, [] {});
  }
}

sim::Cycles Scheduler::host_horizon() const {
  if (!ran_ || resolved_ >= records_.size()) return kNever;
  return next_wakeup(sys_->engine().now());
}

void Scheduler::finish() { makespan_ = std::max(makespan_, sys_->engine().now()); }

void Scheduler::submit_remote(JobSpec spec) {
  if (!ran_) throw std::logic_error("Scheduler::submit_remote before begin()");
  const sim::Cycles now = sys_->engine().now();
  if (spec.arrival < now) spec.arrival = now;
  const auto idx = static_cast<std::uint32_t>(records_.size());
  JobRecord rec;
  rec.spec = std::move(spec);
  records_.push_back(std::move(rec));
  register_graph(idx);
  // Keep the unconsumed arrival tail sorted by (arrival, id). The delivery
  // time is >= now, and every consumed arrival is <= now, so the insertion
  // point can never fall before next_arrival_.
  const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    if (records_[a].spec.arrival != records_[b].spec.arrival) {
      return records_[a].spec.arrival < records_[b].spec.arrival;
    }
    return records_[a].spec.id < records_[b].spec.id;
  };
  const auto it = std::lower_bound(
      arrivals_.begin() + static_cast<std::ptrdiff_t>(next_arrival_),
      arrivals_.end(), idx, cmp);
  arrivals_.insert(it, idx);
}

void Scheduler::run() {
  begin();
  run_window(kNever);
  finish();
}

double Scheduler::utilisation() const noexcept {
  if (makespan_ == 0) return 0.0;
  return busy_core_cycles_ / (static_cast<double>(alloc_.dims().core_count()) *
                              static_cast<double>(makespan_));
}

}  // namespace epi::sched
