#pragma once
// Serving-run accounting: percentile summaries, per-tenant aggregation, and
// the deterministic text report epi_serve prints. Everything here is a pure
// function of the scheduler's JobRecords (plus makespan/utilisation), so two
// same-seed runs render byte-identical reports -- the CLI's --selftest and
// the ctest determinism check compare these bytes directly.

#include <string>
#include <vector>

#include "sched/job.hpp"
#include "sched/scheduler.hpp"

namespace epi::sched {

/// Nearest-rank percentile (p in [0,100]) of a sample set; 0 when empty.
/// Sorts a copy: report-time cost, never scheduler-path cost.
[[nodiscard]] sim::Cycles percentile(std::vector<sim::Cycles> samples, double p);

struct TenantStats {
  std::string tenant;
  unsigned submitted = 0;
  unsigned completed = 0;
  unsigned rejected = 0;
  unsigned timed_out = 0;
  unsigned failed = 0;
  double core_cycles = 0.0;       // cores x service over completed jobs
  sim::Cycles wait_p50 = 0;       // queue-wait percentiles over started jobs
  sim::Cycles wait_p99 = 0;
  sim::Cycles turnaround_p50 = 0; // arrival->finish over completed jobs
  sim::Cycles turnaround_p99 = 0;
};

struct RunStats {
  unsigned jobs = 0;
  unsigned completed = 0;
  unsigned rejected = 0;
  unsigned timed_out = 0;
  unsigned failed = 0;
  unsigned deadlines = 0;      // jobs that carried a deadline
  unsigned deadlines_met = 0;
  sim::Cycles makespan = 0;
  double utilisation = 0.0;    // busy core-cycles / (cores * makespan)
  double throughput = 0.0;     // completed jobs per Mcycle
  sim::Cycles wait_p50 = 0, wait_p99 = 0;
  sim::Cycles turnaround_p50 = 0, turnaround_p99 = 0;
  // Fault-recovery outcomes (all zero in a clean run, and then absent from
  // the rendered report -- the no-fault report bytes must not change).
  unsigned retried = 0;        // completed after re-execution, same rectangle
  unsigned relocated = 0;      // completed after re-execution elsewhere
  unsigned faults_detected = 0;      // FaultReports raised during the run
  unsigned cores_quarantined = 0;    // cores retired by the watchdog
  // Pipeline (job-graph) aggregates -- all zero when the stream carries no
  // graphs, and then absent from the rendered report (pre-pipeline report
  // bytes must not change).
  unsigned graphs = 0;               // distinct graph ids in the stream
  unsigned graphs_completed = 0;     // graphs whose every stage completed
  sim::Cycles graph_e2e_p50 = 0;     // first-arrival -> last-finish, completed
  sim::Cycles graph_e2e_p99 = 0;
  double graph_throughput = 0.0;     // completed graphs per Mcycle
  double stage_overlap = 0.0;        // mean sum(stage service)/e2e, completed
                                     // graphs (>1 needs concurrent stages of
                                     // the same graph; pipelining across
                                     // requests shows up in throughput)
  std::uint64_t handoff_scratch_bytes = 0;  // consumer pulls by transport
  std::uint64_t handoff_dram_bytes = 0;
  std::vector<TenantStats> tenants;  // sorted by tenant name
};

/// Aggregate a finished scheduler run.
[[nodiscard]] RunStats summarise(const Scheduler& sched);

/// Render the full epi_serve report: run summary, per-tenant table, and the
/// per-job verdict listing (every job appears with its verdict -- timeouts
/// and failures are reported, never silently dropped).
[[nodiscard]] std::string render_report(const Scheduler& sched);

}  // namespace epi::sched
