#include "sched/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "util/fmt.hpp"

#include "core/matmul.hpp"
#include "core/matmul_schedule.hpp"
#include "core/stencil.hpp"
#include "core/stencil_detail.hpp"
#include "shmem/workloads.hpp"

namespace epi::sched {

namespace {

using arch::Addr;
using sim::Cycles;

// Scratchpad layout for the matmul serving kernel (mirrors MatmulLayout's
// regions; staging slots are disjoint from the rotated source blocks so a
// neighbour's incoming block never lands on bytes still being sent).
constexpr Addr kMatA = 0x4000;        // my A block (<= 4 KB)
constexpr Addr kMatAStage = 0x5000;   // incoming A from the east
constexpr Addr kMatB = 0x6000;        // my B block
constexpr Addr kMatBStage = 0x7000;   // incoming B from the south
constexpr Addr kOffloadData = 0x4000; // offload stripe

sim::Op<void> matmul_job_kernel(device::CoreCtx& ctx, unsigned block, unsigned iters) {
  const std::uint32_t bytes = block * block * static_cast<std::uint32_t>(sizeof(float));
  const bool lone = ctx.group_rows() * ctx.group_cols() == 1;
  for (unsigned step = 0; step < iters; ++step) {
    co_await ctx.compute(
        core::MatmulSchedule::block_cycles(block, block, block, core::Codegen::TunedAsm));
    ctx.count_flops(core::MatmulSchedule::block_flops(block, block, block));
    if (lone) continue;
    // Rotate A westward and B northward (Cannon), then meet at the barrier
    // before anyone starts the next block product.
    const arch::CoreCoord west = ctx.neighbour_wrap(arch::Dir::West);
    const arch::CoreCoord north = ctx.neighbour_wrap(arch::Dir::North);
    co_await ctx.direct_write_block(ctx.global(west, kMatAStage), ctx.my_global(kMatA),
                                    bytes);
    co_await ctx.direct_write_block(ctx.global(north, kMatBStage), ctx.my_global(kMatB),
                                    bytes);
    co_await ctx.barrier();
  }
}

sim::Op<void> offload_job_kernel(device::CoreCtx& ctx, unsigned elems, Addr shm_base) {
  // The parallel_for shape: a caller-declared per-element rate over my
  // stripe (2 cycles/element, a fused multiply-add with operand loads).
  co_await ctx.compute(static_cast<Cycles>(2) * elems);
  ctx.count_flops(2.0 * elems);
  // Stream the result stripe to shared DRAM in 2 KB blocks (the Table II/III
  // traffic pattern) -- this is where concurrent jobs fight for the eLink.
  const std::uint32_t bytes = elems * static_cast<std::uint32_t>(sizeof(float));
  const Addr dst = shm_base + static_cast<Addr>(ctx.group_index()) * bytes;
  for (std::uint32_t off = 0; off < bytes; off += 2048) {
    const std::uint32_t chunk = std::min<std::uint32_t>(2048, bytes - off);
    co_await ctx.external_write_block(dst + off, ctx.my_global(kOffloadData + off % 0x3000),
                                      chunk);
  }
}

/// Host-side scrub of the runtime-reserved words (barrier arrival slots and
/// the release word) for every core of the group. Cores are reused across
/// jobs; a stale barrier generation from the previous occupant would satisfy
/// a fresh kernel's wait_u32_ge immediately and desynchronise the group.
void reset_runtime_words(host::System& sys, host::Workgroup& wg) {
  auto& mem = sys.machine().mem();
  for (unsigned r = 0; r < wg.info().rows; ++r) {
    for (unsigned c = 0; c < wg.info().cols; ++c) {
      auto& ctx = wg.ctx(r, c);
      for (unsigned i = 0; i < wg.size(); ++i) {
        mem.write_value<std::uint32_t>(
            ctx.my_global(device::CoreCtx::kBarrierSlotsOffset + 4 * i), 0, ctx.coord());
      }
      mem.write_value<std::uint32_t>(ctx.my_global(device::CoreCtx::kBarrierReleaseOffset),
                                     0, ctx.coord());
    }
  }
}

// ---- shmem job parameters --------------------------------------------------
// The symmetric-heap layout of a shmem job is a pure function of the spec
// (and the granted shape), so launch and reap re-derive identical plans from
// these clamps instead of carrying state across the job's lifetime.

/// Largest Cannon block edge whose five block buffers + two signal words fit
/// the default symmetric heap.
unsigned cannon_block(const JobSpec& spec) {
  return std::clamp(spec.block, 1u, 32u);
}

/// Transpose words per PE pair: requested block^2, clamped so both n-slot
/// buffers plus the signal array fit the default symmetric heap.
unsigned transpose_elems(const JobSpec& spec, unsigned n_pes) {
  const std::uint32_t capacity =
      shmem::kDefaultHeapEnd - shmem::kDefaultHeapBase - 64;  // alignment slack
  const std::uint32_t per_elem = 8 * std::max(1u, n_pes);  // send + recv word
  const std::uint32_t max_elems = (capacity - 4 * n_pes) / per_elem;
  const unsigned want = std::max(1u, spec.block) * std::max(1u, spec.block);
  return std::clamp(want, 1u, max_elems);
}

}  // namespace

std::size_t job_shm_bytes(const JobSpec& spec) {
  if (spec.kind != JobKind::Offload) return 0;
  const std::size_t elems = static_cast<std::size_t>(spec.block) * spec.block;
  return elems * sizeof(float) * spec.rows * spec.cols;
}

double job_flops(const JobSpec& spec) {
  const double cores = static_cast<double>(spec.rows) * spec.cols;
  switch (spec.kind) {
    case JobKind::Matmul:
      return cores * spec.iters *
             core::MatmulSchedule::block_flops(spec.block, spec.block, spec.block);
    case JobKind::Stencil:
      return cores * spec.iters *
             core::StencilSchedule::iteration_flops(spec.block, spec.block);
    case JobKind::Offload:
      return cores * 2.0 * spec.block * spec.block;
    case JobKind::Custom:
      return 0.0;  // flops come from the programs' own FPU ops, not a model
    case JobKind::CannonMatmul: {
      // p^2 active PEs each multiply one block per step, p steps per rotation
      // (min is invariant under the allocator's shape rotation).
      const double p = std::min(spec.rows, spec.cols);
      const unsigned b = cannon_block(spec);
      return p * p * p * std::max(1u, spec.iters) *
             core::MatmulSchedule::block_flops(b, b, b);
    }
    case JobKind::Transpose:
      return 0.0;  // pure communication
  }
  return 0.0;
}

std::uint32_t offload_pattern_word(std::uint32_t job, unsigned group_index,
                                   std::uint32_t word) noexcept {
  std::uint32_t x = job * 0x9E3779B9u ^ (group_index * 0x85EBCA6Bu) ^
                    (word * 0xC2B2AE35u) ^ 0xA511E9B3u;
  x ^= x >> 16;
  x *= 0x045D9F3Bu;
  x ^= x >> 13;
  return x;
}

void fill_offload_input(host::System& sys, host::Workgroup& wg, const JobSpec& spec) {
  if (spec.kind != JobKind::Offload) return;
  auto& mem = sys.machine().mem();
  const std::uint32_t elems = std::max(1u, spec.block) * std::max(1u, spec.block);
  for (unsigned r = 0; r < wg.info().rows; ++r) {
    for (unsigned c = 0; c < wg.info().cols; ++c) {
      auto& ctx = wg.ctx(r, c);
      const unsigned g = r * wg.info().cols + c;
      for (std::uint32_t w = 0; w < elems; ++w) {
        mem.write_value<std::uint32_t>(ctx.my_global(kOffloadData + 4 * w),
                                       offload_pattern_word(spec.id, g, w),
                                       ctx.coord());
      }
    }
  }
}

std::string verify_offload_output(host::System& sys, host::Workgroup& wg,
                                  const JobSpec& spec, arch::Addr shm_base) {
  if (spec.kind != JobKind::Offload) return {};
  auto& mem = sys.machine().mem();
  const std::uint32_t elems = std::max(1u, spec.block) * std::max(1u, spec.block);
  const std::uint32_t bytes = elems * static_cast<std::uint32_t>(sizeof(float));
  for (unsigned r = 0; r < wg.info().rows; ++r) {
    for (unsigned c = 0; c < wg.info().cols; ++c) {
      auto& ctx = wg.ctx(r, c);
      const unsigned g = r * wg.info().cols + c;
      const Addr base = shm_base + static_cast<Addr>(g) * bytes;
      for (std::uint32_t b = 0; b < bytes; b += 4) {
        // Mirror the kernel's chunked copy: chunk at `off` reads the
        // scratchpad at kOffloadData + off % 0x3000.
        const std::uint32_t off = b / 2048 * 2048;
        const std::uint32_t src_word = (off % 0x3000 + (b - off)) / 4;
        const std::uint32_t want = offload_pattern_word(spec.id, g, src_word);
        std::uint32_t got;  // hook-invisible readback: validation is not traffic
        std::memcpy(&got, mem.resolve(base + b, sizeof got, {0, 0}).data(), sizeof got);
        if (got != want) {
          return util::format(
              "offload stripe of core (%u,%u) word %u: got 0x%08x want 0x%08x",
              ctx.coord().row, ctx.coord().col, b / 4, got, want);
        }
      }
    }
  }
  return {};
}

std::string verify_shmem_output(host::System& sys, host::Workgroup& wg,
                                const JobSpec& spec) {
  // Re-derive the plan the launcher built: the symmetric bump allocator is
  // deterministic, so identical clamps yield identical offsets.
  shmem::SymmetricHeap heap(shmem::kDefaultHeapBase, shmem::kDefaultHeapEnd);
  switch (spec.kind) {
    case JobKind::CannonMatmul: {
      const auto plan =
          shmem::plan_cannon(heap, wg.info(), cannon_block(spec), spec.iters);
      return shmem::verify_cannon_output(sys.machine(), wg.info(), plan, spec.id);
    }
    case JobKind::Transpose: {
      const auto plan = shmem::plan_transpose(
          heap, wg.info(), transpose_elems(spec, wg.info().size()), spec.iters);
      return shmem::verify_transpose_output(sys.machine(), wg.info(), plan, spec.id);
    }
    default: return {};
  }
}

device::KernelFn prepare_job(host::System& sys, host::Workgroup& wg, const JobSpec& spec,
                             arch::Addr shm_base) {
  reset_runtime_words(sys, wg);
  switch (spec.kind) {
    case JobKind::Matmul: {
      const unsigned block = std::min(spec.block, core::MatmulLayout::kMaxBlock);
      const unsigned iters = std::max(1u, spec.iters);
      return [block, iters](device::CoreCtx& ctx) -> sim::Op<void> {
        return matmul_job_kernel(ctx, block, iters);
      };
    }
    case JobKind::Stencil: {
      core::StencilConfig cfg;
      cfg.rows = std::max(4u, std::min(spec.block, 20u));
      cfg.cols = cfg.rows;
      cfg.iters = std::max(1u, spec.iters);
      cfg.communicate = true;
      // Serving groups reuse cores: re-arm the flag words before launch.
      for (unsigned r = 0; r < wg.info().rows; ++r) {
        for (unsigned c = 0; c < wg.info().cols; ++c) {
          auto& ctx = wg.ctx(r, c);
          const bool missing[4] = {r == 0, r + 1 == wg.info().rows, c == 0,
                                   c + 1 == wg.info().cols};
          core::detail::init_flags(sys, ctx, missing);
        }
      }
      return [cfg](device::CoreCtx& ctx) -> sim::Op<void> {
        return core::stencil_kernel(ctx, cfg, nullptr);
      };
    }
    case JobKind::Offload: {
      const unsigned elems = std::max(1u, spec.block) * std::max(1u, spec.block);
      if (static_cast<std::size_t>(elems) * sizeof(float) > 0x3C00) {
        throw std::invalid_argument("offload job stripe exceeds the per-core heap");
      }
      return [elems, shm_base](device::CoreCtx& ctx) -> sim::Op<void> {
        return offload_job_kernel(ctx, elems, shm_base);
      };
    }
    case JobKind::Custom: {
      // Tenant-supplied assembly, already verified by the admission gate.
      // Score each core's program with the ISA interpreter (solo-sync mode:
      // cross-core waits/barriers cost their local cycles only) over a
      // zeroed scratchpad image, then occupy the core for that long.
      if (spec.programs.empty()) {
        throw std::invalid_argument("custom job carries no programs");
      }
      const unsigned n = wg.info().rows * wg.info().cols;
      auto cycles = std::make_shared<std::vector<Cycles>>(n, Cycles{1});
      auto flops = std::make_shared<std::vector<double>>(n, 0.0);
      const auto& map = sys.machine().mem().map();
      for (unsigned r = 0; r < wg.info().rows; ++r) {
        for (unsigned c = 0; c < wg.info().cols; ++c) {
          const unsigned g = r * wg.info().cols + c;
          const auto& src =
              spec.programs.size() == 1 ? spec.programs[0] : spec.programs[g];
          const isa::Program prog = isa::assemble(src.second);
          isa::RegFile regs;
          std::vector<std::byte> image(arch::AddressMap::kLocalMemBytes,
                                       std::byte{0});
          isa::InterpreterConfig icfg;
          icfg.core_id = map.core_id(wg.ctx(r, c).coord());
          icfg.solo_sync = true;
          const isa::ExecStats st = isa::execute(prog, regs, image, icfg);
          (*cycles)[g] = std::max<Cycles>(1, st.cycles);
          (*flops)[g] = static_cast<double>(st.flops);
        }
      }
      return [cycles, flops](device::CoreCtx& ctx) -> sim::Op<void> {
        return [](device::CoreCtx& c, Cycles cyc, double fl) -> sim::Op<void> {
          co_await c.compute(cyc);
          if (fl > 0.0) c.count_flops(fl);
        }(ctx, (*cycles)[ctx.group_index()], (*flops)[ctx.group_index()]);
      };
    }
    case JobKind::CannonMatmul: {
      // The Group constructor scrubs the shmem runtime words (reused cores
      // must not see a stale flag generation); the kernel closure keeps it
      // alive by shared_ptr because the Workgroup itself is moved after
      // load(). Inputs are seeded by job id so reap can re-derive them.
      auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
      const auto plan =
          shmem::plan_cannon(group->heap(), wg.info(), cannon_block(spec), spec.iters);
      shmem::fill_cannon_inputs(sys.machine(), wg.info(), plan, spec.id);
      return [group, plan](device::CoreCtx& ctx) -> sim::Op<void> {
        return shmem::cannon_kernel(ctx, group, plan);
      };
    }
    case JobKind::Transpose: {
      auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
      const auto plan = shmem::plan_transpose(
          group->heap(), wg.info(), transpose_elems(spec, wg.info().size()),
          spec.iters);
      shmem::fill_transpose_inputs(sys.machine(), wg.info(), plan, spec.id);
      return [group, plan](device::CoreCtx& ctx) -> sim::Op<void> {
        return shmem::transpose_kernel(ctx, group, plan);
      };
    }
  }
  throw std::logic_error("unknown job kind");
}

}  // namespace epi::sched
