#pragma once
// epi-serve: a multi-tenant job scheduler for the 8x8 mesh.
//
// The paper runs one hand-placed workgroup at a time (section III's
// e_open / e_load / e_start flow). A production-scale system must instead
// treat the chip as a shared, schedulable resource: a stream of jobs
// arrives, each wanting a rectangle of cores, and many workgroups are
// resident *concurrently* inside one simulation -- so jobs genuinely fight
// over mesh links, the eLink, and shared-DRAM bandwidth.
//
// The Scheduler is host-side orchestration (untimed, like every host action
// in this model) driving the shared sim::Engine itself:
//
//   * admission control -- a bounded pending queue; jobs past capacity, or
//     with shapes that could never fit the mesh, are rejected on arrival;
//   * placement        -- first-fit rectangular placement via MeshAllocator,
//     enforced by the machine's CoreReservations (Workgroup RAII);
//   * priority aging   -- effective priority grows with queue wait, and a
//     starving queue head blocks backfill behind it, so a big low-priority
//     job cannot be starved forever by a stream of small urgent ones;
//   * retry w/ backoff -- launch failures (injected by the traffic model;
//     real eSDK launches fail transiently) are retried with exponential
//     backoff up to a bounded attempt budget;
//   * timeouts         -- a job that cannot start within its timeout is
//     dropped with a TimedOut verdict; deadlines are soft SLOs tracked in
//     the metrics (hit-rate), never enforced by killing kernels;
//   * metrics          -- per-job records plus counters (queue depth, cores
//     busy, completions per tenant, ...) through trace::Counters; with
//     machine tracing enabled the samples land on the Perfetto timeline
//     alongside the cores' own spans.
//
// Determinism: every decision is a pure function of (job stream, config,
// engine event order). Two runs with the same seed produce byte-identical
// event logs, reports, and metrics; tests assert this.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "host/system.hpp"
#include "sched/allocator.hpp"
#include "sched/job.hpp"
#include "trace/counters.hpp"

namespace epi::sched {

/// Admission-time static verification of Custom jobs' programs (the
/// whole-workgroup race/deadlock verifier, lint/workgroup.hpp):
///   Off    -- no verification (programs that fail to assemble still reject);
///   Warn   -- verify and log findings, admit anyway;
///   Strict -- reject jobs whose group has any error-severity finding, with
///             a structured verdict in JobRecord::detail, before placement.
enum class LintMode : std::uint8_t { Off, Warn, Strict };

[[nodiscard]] constexpr const char* to_string(LintMode m) noexcept {
  switch (m) {
    case LintMode::Off: return "off";
    case LintMode::Warn: return "warn";
    case LintMode::Strict: return "strict";
  }
  return "?";
}

struct SchedConfig {
  std::size_t queue_capacity = 64;     // pending jobs; beyond this, reject
  sim::Cycles aging_quantum = 100'000; // +1 effective priority per quantum waited
  unsigned max_attempts = 4;           // launch attempts before Failed
  sim::Cycles retry_backoff = 25'000;  // first retry delay; doubles per attempt
  sim::Cycles head_block_wait = 500'000;  // starved-head threshold: stop
                                          // backfilling smaller jobs past a
                                          // head that has waited this long
  bool allow_rotate = true;            // try the transposed shape when placing
  sim::Cycles watchdog_cycles = 0;     // per-job silence budget after start;
                                       // 0 disables the watchdog (a stuck
                                       // group then raises DeadlockError, the
                                       // pre-fault-tolerance behaviour)
  unsigned max_reexecutions = 2;       // full re-runs after a detected fault
  LintMode lint = LintMode::Off;       // admission-time verification of
                                       // Custom jobs' programs
  // ---- pipeline (job-graph) policy, sched/dag.hpp --------------------------
  bool scratch_handoff = true;   // pull tensors scratchpad-to-scratchpad over
                                 // the mesh when producer and consumer are
                                 // adjacent (and the producer's cells are
                                 // untouched); false forces every handoff
                                 // through the DRAM spill buffer
  bool pipeline_overlap = true;  // admit stages of different graphs
                                 // concurrently (stage pipelining); false
                                 // serialises whole graphs in id order, the
                                 // abl_dag baseline
};

class Scheduler {
public:
  explicit Scheduler(host::System& sys, SchedConfig cfg = {});

  /// Enqueue a job for its arrival time. Call before run(); the stream is
  /// replayed in arrival order regardless of submission order.
  void submit(JobSpec spec);

  /// Drive the shared engine until every submitted job has a terminal
  /// verdict. Jobs already resident keep running while new ones are placed;
  /// host scheduling actions are untimed, matching the paper's methodology.
  void run();

  // ---- windowed (PDES) driving --------------------------------------------
  // The cluster executor advances each chip's scheduler in conservative
  // time windows instead of one open-ended run(). The decomposition below
  // is exactly run()'s loop split at window boundaries: run() itself is
  // begin() + run_window(no limit) + finish(), so the open-ended behaviour
  // (and its byte-identical decision log) is unchanged.

  /// Freeze the submitted stream into (arrival, id) order and arm the run.
  /// After begin(), only submit_remote() may add jobs.
  void begin();

  /// Advance until the next runnable work lies at or beyond `limit` (events
  /// with time strictly below `limit` run), or every job is resolved.
  /// Resumable: calling again with a later limit continues exactly where
  /// the open-ended loop would have been.
  void run_window(sim::Cycles limit);

  /// True once every submitted job has a terminal verdict.
  [[nodiscard]] bool finished() const noexcept {
    return ran_ && resolved_ >= records_.size();
  }

  /// Earliest host-side wakeup (arrival, retry, timeout or watchdog
  /// horizon), or Engine::kNever when finished or none is armed. The
  /// domain's next_time() merges this with the engine's next event.
  [[nodiscard]] sim::Cycles host_horizon() const;

  /// Fold the final engine time into the makespan (run() does this itself;
  /// windowed drivers call it once after global completion).
  void finish();

  /// Cluster forwarding: submit a job that arrived over the xMesh after
  /// begin(). `spec.arrival` must be at or after the current engine time
  /// (it is the delivery cycle); the job joins the not-yet-admitted
  /// arrival stream in (arrival, id) order.
  void submit_remote(JobSpec spec);

  /// Chip-death cleanup: give every still-unresolved job a Failed verdict at
  /// cycle `at` with `reason` as the detail. The cluster executor calls this
  /// (resolve hook cleared first -- a dead chip sends no notices) after a
  /// chip-crash fault so accounting stays consistent without pretending the
  /// chip kept scheduling. Returns how many jobs were abandoned.
  std::size_t abandon_unresolved(sim::Cycles at, const std::string& reason);

  /// Hook invoked whenever a job reaches a terminal verdict (cluster
  /// completion notices). Called after the record is final.
  void set_resolve_hook(std::function<void(const JobRecord&, sim::Cycles)> hook) {
    resolve_hook_ = std::move(hook);
  }

  [[nodiscard]] const std::vector<JobRecord>& records() const noexcept {
    return records_;
  }
  /// Deterministic, append-only decision log ("@cycle event job=N ...").
  [[nodiscard]] const std::vector<std::string>& event_log() const noexcept {
    return log_;
  }
  [[nodiscard]] const MeshAllocator& allocator() const noexcept { return alloc_; }
  [[nodiscard]] trace::Counters& counters() noexcept { return *counters_; }
  [[nodiscard]] const trace::Counters& counters() const noexcept {
    return *counters_;
  }

  /// Structured fault reports (watchdog trips, failed transfers, corrupt
  /// results): what a silent stall became instead of a DeadlockError.
  /// Deterministic: same plan + workload, byte-identical log.
  [[nodiscard]] const std::vector<fault::FaultReport>& fault_log() const noexcept {
    return fault_log_;
  }

  /// Cycle the last job resolved (makespan of the whole served stream).
  [[nodiscard]] sim::Cycles makespan() const noexcept { return makespan_; }
  /// Busy core-cycles / (64 * makespan): the chip-level duty factor.
  [[nodiscard]] double utilisation() const noexcept;
  /// Peak number of workgroups resident at once during the run.
  [[nodiscard]] unsigned peak_resident() const noexcept { return peak_resident_; }

  /// Tensor-handoff bytes pulled by consumer stages, by transport (the
  /// report's pipeline section; also counted on sched.dag.handoff.*).
  [[nodiscard]] std::uint64_t handoff_scratch_bytes() const noexcept {
    return handoff_scratch_bytes_;
  }
  [[nodiscard]] std::uint64_t handoff_dram_bytes() const noexcept {
    return handoff_dram_bytes_;
  }

private:
  struct Pending {
    std::uint32_t rec;        // index into records_
    sim::Cycles enqueued;     // admission cycle (aging baseline)
    sim::Cycles retry_at;     // earliest next launch attempt (backoff)
  };
  struct Running {
    std::uint32_t rec;
    Placement placement;
    std::unique_ptr<host::Workgroup> wg;  // stable address: kernels point in
    arch::Addr shm_base = 0;              // job's DRAM region (result checks)
    std::uint64_t place_seq = 0;          // allocator epoch of this placement
  };
  /// Per-record pipeline wiring, populated once every stage of the record's
  /// graph has been submitted (graphs arrive whole in single-chip runs, but
  /// cluster forwards stagger stage delivery; launching a producer before its
  /// consumers are wired would lose the out-edge spill plan).
  struct DagInfo {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> dep_recs;  // (producer rec, bytes)
    std::vector<std::pair<std::uint32_t, std::uint32_t>> outs;      // (consumer rec, bytes)
    std::vector<arch::Addr> out_bases;  // spill buffers, one per out, set at launch
    Placement done_place{};             // granted rectangle at completion
    std::uint64_t place_seq = 0;        // allocator epoch of that placement
    bool has_result = false;            // completed; done_place/place_seq valid
    bool broken = false;                // dep id unresolvable: fail at admission
  };
  struct GraphState {
    std::vector<std::uint32_t> recs;  // record indices, submission order
    unsigned unresolved = 0;
    bool wired = false;
  };

  void log_event(const std::string& line);
  [[nodiscard]] double effective_priority(const Pending& p, sim::Cycles now) const;
  bool admit_arrivals(sim::Cycles now);
  /// Admission-time static verification of a Custom job. Returns true when
  /// the job may be admitted; on false the record is already resolved
  /// (Rejected) and the decision logged.
  bool lint_gate(JobRecord& rec, sim::Cycles now);
  bool reap_completed(sim::Cycles now);
  bool drop_timed_out(sim::Cycles now);
  void try_place(sim::Cycles now);
  bool launch(Pending& p, sim::Cycles now);
  void resolve(JobRecord& rec, Verdict v, sim::Cycles now, std::string detail);
  [[nodiscard]] sim::Cycles next_wakeup(sim::Cycles now) const;
  bool check_watchdogs(sim::Cycles now);
  void register_graph(std::uint32_t rec_idx);
  [[nodiscard]] bool dag_launchable(std::uint32_t rec_idx) const;
  [[nodiscard]] std::uint32_t min_unresolved_graph() const;
  bool drop_orphaned(sim::Cycles now);
  [[nodiscard]] bool handoff_epoch_valid(const Placement& producer,
                                         std::uint64_t producer_seq,
                                         std::uint64_t self_seq) const;
  void requeue_or_fail(std::uint32_t rec_idx, sim::Cycles now, const char* why);
  void drop_unsatisfiable(sim::Cycles now);
  void report_fault(sim::Cycles now, sim::Cycles since, const JobRecord& rec,
                    const char* kind, std::string detail);

  void define_counters();
  void bump(trace::Counters::Id id, double delta);
  void gauge(trace::Counters::Id id, double value);
  trace::Counters::Id tenant_counter(const std::string& tenant, const char* what);

  host::System* sys_;
  SchedConfig cfg_;
  MeshAllocator alloc_;
  std::vector<JobRecord> records_;   // submission order
  std::vector<std::uint32_t> arrivals_;  // record indices, (arrival, id) order
  std::size_t next_arrival_ = 0;
  std::vector<Pending> pending_;     // admission order
  std::vector<Running> running_;
  // Workgroups whose cores were quarantined by the watchdog. Kept alive (and
  // their reservations held) for the scheduler's lifetime: a stalled-not-dead
  // kernel may later resume as a zombie, and its frames/reservation must
  // stay valid while it does. Quarantined cores are never reallocated.
  std::vector<std::unique_ptr<host::Workgroup>> graveyard_;
  std::vector<fault::FaultReport> fault_log_;
  std::vector<std::string> log_;
  // Pipeline state: graph wiring by graph id, per-record dag info (graph
  // records only), and job-id -> record lookups for dep resolution. Ordered
  // maps: min_unresolved_graph() and iteration must be deterministic.
  std::map<std::uint32_t, GraphState> graphs_;
  std::map<std::uint32_t, DagInfo> dag_;          // keyed by record index
  std::map<std::uint32_t, std::uint32_t> id_to_rec_;
  std::uint64_t handoff_scratch_bytes_ = 0;
  std::uint64_t handoff_dram_bytes_ = 0;
  std::size_t resolved_ = 0;
  std::function<void(const JobRecord&, sim::Cycles)> resolve_hook_;
  sim::Cycles makespan_ = 0;
  double busy_core_cycles_ = 0.0;
  unsigned peak_resident_ = 0;
  bool ran_ = false;

  // Counters live in the tracer's registry when tracing is enabled (so the
  // samples join the Perfetto export); otherwise in a private registry.
  std::unique_ptr<trace::Counters> owned_counters_;
  trace::Counters* counters_ = nullptr;
  trace::Counters::Id c_submitted_, c_admitted_, c_rejected_, c_completed_,
      c_timedout_, c_failed_, c_launch_failures_, c_retries_, c_busy_cycles_,
      g_queue_depth_, g_running_, g_cores_busy_, c_faults_, c_reexecs_,
      g_quarantined_, c_lint_rejects_, c_lint_warnings_, c_handoff_scratch_,
      c_handoff_dram_;
};

}  // namespace epi::sched
