#pragma once
// Serving kernels: the device-side payloads behind each sched::JobKind.
//
// Each kind is a self-contained kernel that runs on an arbitrarily-placed
// workgroup (everything is group-relative) and stresses a distinct machine
// resource, so a mixed job stream resident on the mesh at the same time
// genuinely contends:
//
//   * Matmul  -- Cannon-style: per-block products (MatmulSchedule cycles)
//                with A/B block rotation over the mesh and a workgroup
//                barrier per step. Mesh-link traffic.
//   * Stencil -- the paper's heat stencil (core::stencil_kernel verbatim):
//                chained-DMA halo exchange + flag synchronisation.
//                DMA-engine and mesh traffic.
//   * Offload -- a parallel_for-shaped chunk: per-core compute, then the
//                result stripe streamed to shared DRAM in 2 KB blocks.
//                eLink-write and DRAM-window traffic.
//
// prepare_job also re-initialises the runtime-reserved scratchpad words
// (barrier slots, stencil flags) for the job's cores: in a serving system
// cores are *reused* across jobs, and a stale flag generation left by the
// previous occupant must not release a fresh kernel's synchronisation early.

#include <cstddef>

#include "arch/address_map.hpp"
#include "host/system.hpp"
#include "sched/job.hpp"

namespace epi::sched {

/// Shared-DRAM bytes the job's kernel will write (0 for on-chip-only kinds).
/// The scheduler reserves this from the System's shm bump allocator before
/// launch and hands the base address to prepare_job.
[[nodiscard]] std::size_t job_shm_bytes(const JobSpec& spec);

/// Initialise the group's core-side state for `spec` (runtime words, flag
/// generations) and return the kernel to load. `shm_base` is the job's
/// shared-DRAM region (only read when job_shm_bytes(spec) > 0).
[[nodiscard]] device::KernelFn prepare_job(host::System& sys, host::Workgroup& wg,
                                           const JobSpec& spec, arch::Addr shm_base);

/// Rough service-cycle estimate for a job (used only for report context,
/// never for scheduling decisions -- the simulator provides ground truth).
[[nodiscard]] double job_flops(const JobSpec& spec);

// ---- fault-recovery result validation (offload jobs) ----------------------
// With a fault plan armed, the scheduler fills each offload core's source
// stripe with this deterministic pattern at launch and re-derives the
// expected shared-DRAM bytes at reap, so a bit flip anywhere on the
// scratch -> eLink -> DRAM path turns into a detected corrupt result (and a
// bounded re-execution) instead of silently wrong output.

[[nodiscard]] std::uint32_t offload_pattern_word(std::uint32_t job,
                                                 unsigned group_index,
                                                 std::uint32_t word) noexcept;

/// Write the per-core pattern stripes into the group's scratchpads.
void fill_offload_input(host::System& sys, host::Workgroup& wg, const JobSpec& spec);

/// Compare the job's DRAM stripes against the pattern the launcher wrote.
/// Empty on success; otherwise a description of the first mismatch.
[[nodiscard]] std::string verify_offload_output(host::System& sys, host::Workgroup& wg,
                                                const JobSpec& spec,
                                                arch::Addr shm_base);

// ---- shmem job validation (CannonMatmul / Transpose) -----------------------
// The comm-bound kinds carry seeded inputs (seed = spec.id) and a host
// reference, so the scheduler validates every completed shmem job at reap --
// not only under an armed fault plan. The symmetric-heap layout is re-derived
// deterministically from the spec, so no per-job state needs to survive the
// launch.

/// Empty on success; otherwise a description of the first mismatch.
[[nodiscard]] std::string verify_shmem_output(host::System& sys, host::Workgroup& wg,
                                              const JobSpec& spec);

}  // namespace epi::sched
