#include "sched/workload.hpp"

#include <fstream>
#include <istream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "sim/random.hpp"
#include "util/fmt.hpp"

namespace epi::sched {

namespace {

// Workgroup shapes a serving job may request, with draw weights biased
// toward small groups (the realistic mix: many small tenants, occasional
// large jobs that exercise head-of-line blocking and fragmentation).
struct ShapeChoice {
  unsigned rows, cols, weight;
};
constexpr ShapeChoice kShapes[] = {
    {1, 1, 4}, {1, 2, 3}, {2, 2, 4}, {2, 4, 3},
    {4, 4, 3}, {2, 8, 1}, {4, 8, 1}, {8, 8, 1},
};

unsigned weighted_draw(sim::Rng& rng, const unsigned* weights, unsigned n) {
  unsigned total = 0;
  for (unsigned i = 0; i < n; ++i) total += weights[i];
  std::uint64_t r = rng.next_below(total);
  for (unsigned i = 0; i < n; ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return n - 1;
}

}  // namespace

std::vector<JobSpec> generate(const TrafficConfig& cfg) {
  if (cfg.tenants.empty()) {
    throw std::invalid_argument("TrafficConfig::tenants must not be empty");
  }
  sim::Rng rng(cfg.seed);
  // Drawable kinds (Custom is submit-only: it carries inline programs).
  constexpr JobKind kKinds[] = {JobKind::Matmul, JobKind::Stencil,
                                JobKind::Offload, JobKind::CannonMatmul,
                                JobKind::Transpose};
  const unsigned kind_weights[std::size(kKinds)] = {
      cfg.matmul_weight, cfg.stencil_weight, cfg.offload_weight,
      cfg.cannon_weight, cfg.transpose_weight};
  unsigned shape_weights[std::size(kShapes)];
  for (unsigned i = 0; i < std::size(kShapes); ++i) shape_weights[i] = kShapes[i].weight;

  std::vector<JobSpec> jobs;
  jobs.reserve(cfg.jobs);
  sim::Cycles t = 0;
  for (unsigned i = 0; i < cfg.jobs; ++i) {
    JobSpec s;
    s.id = i;
    s.tenant = cfg.tenants[rng.next_below(cfg.tenants.size())];
    s.kind = kKinds[weighted_draw(rng, kind_weights, std::size(kKinds))];
    const ShapeChoice& shape =
        kShapes[weighted_draw(rng, shape_weights, std::size(kShapes))];
    s.rows = shape.rows;
    s.cols = shape.cols;
    if (s.kind == JobKind::CannonMatmul) {
      // Cannon's active torus is the min(rows, cols) square; request a square
      // group so every granted core participates in the rotation.
      s.rows = s.cols = std::min(shape.rows, shape.cols);
    }
    s.priority = static_cast<unsigned>(rng.next_below(4));
    // Geometric-flavoured gap around the mean: uniform in [mean/2, 3*mean/2)
    // keeps bursts and lulls without heavy tails that would make short
    // benches unrepresentative.
    if (cfg.mean_interarrival > 0 && i > 0) {
      t += cfg.mean_interarrival / 2 + rng.next_below(cfg.mean_interarrival);
    }
    s.arrival = t;
    s.iters = 1 + static_cast<unsigned>(rng.next_below(3));
    switch (s.kind) {
      case JobKind::Matmul: s.block = 8u << rng.next_below(3); break;   // 8/16/32
      case JobKind::Stencil: s.block = 8 + 4 * static_cast<unsigned>(rng.next_below(4)); break;
      case JobKind::Offload: s.block = 16u << rng.next_below(2); break; // 16/32
      case JobKind::CannonMatmul: s.block = 8u << rng.next_below(2); break; // 8/16
      // block^2 words per PE pair (clamped to the symmetric heap at launch)
      case JobKind::Transpose: s.block = 4u << rng.next_below(2); break;  // 4/8
      case JobKind::Custom: break;  // never drawn: kKinds excludes it
    }
    if (rng.next_float() < cfg.fail_prob) {
      s.launch_failures = 1 + static_cast<unsigned>(rng.next_below(2));
    }
    if (rng.next_float() < cfg.deadline_prob) {
      s.deadline = s.arrival + 2'000'000 + rng.next_below(2'000'000);
    }
    s.timeout = cfg.timeout;
    jobs.push_back(std::move(s));
  }
  return jobs;
}

std::string save(const std::vector<JobSpec>& jobs) {
  std::string out = "# epi-serve workload (one job per line)\n";
  for (const JobSpec& s : jobs) {
    out += util::format(
        "job id=%u tenant=%s kind=%s rows=%u cols=%u prio=%u arrival=%llu "
        "deadline=%llu timeout=%llu iters=%u block=%u failures=%u",
        s.id, s.tenant.c_str(), to_string(s.kind), s.rows, s.cols, s.priority,
        static_cast<unsigned long long>(s.arrival),
        static_cast<unsigned long long>(s.deadline),
        static_cast<unsigned long long>(s.timeout), s.iters, s.block,
        s.launch_failures);
    // Cluster domain tags, omitted for single-chip jobs so single-chip
    // workload files stay byte-identical to the pre-cluster format.
    if (s.home_chip != 0 || s.origin_chip != 0) {
      out += util::format(" home=%u origin=%u", s.home_chip, s.origin_chip);
    }
    out += "\n";
  }
  return out;
}

std::vector<JobSpec> load(std::istream& in, const std::string& source) {
  std::vector<JobSpec> jobs;
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto fail = [&](const std::string& why) -> std::runtime_error {
      return std::runtime_error(
          util::format("%s:%u: %s", source.c_str(), lineno, why.c_str()));
    };
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;  // blank or comment
    if (word != "job") throw fail("expected 'job', got '" + word + "'");
    JobSpec s;
    while (ls >> word) {
      const auto eq = word.find('=');
      if (eq == std::string::npos) throw fail("field '" + word + "' is not key=value");
      const std::string key = word.substr(0, eq);
      const std::string val = word.substr(eq + 1);
      try {
        if (key == "id") s.id = static_cast<std::uint32_t>(std::stoul(val));
        else if (key == "tenant") s.tenant = val;
        else if (key == "kind") {
          if (!parse_kind(val, s.kind)) throw fail("unknown kind '" + val + "'");
          if (s.kind == JobKind::Custom) {
            throw fail(
                "custom jobs carry inline programs and cannot be expressed in "
                "a workload file; submit them via Scheduler::submit or "
                "epi_serve --asm");
          }
        }
        else if (key == "rows") s.rows = static_cast<unsigned>(std::stoul(val));
        else if (key == "cols") s.cols = static_cast<unsigned>(std::stoul(val));
        else if (key == "prio") s.priority = static_cast<unsigned>(std::stoul(val));
        else if (key == "arrival") s.arrival = std::stoull(val);
        else if (key == "deadline") s.deadline = std::stoull(val);
        else if (key == "timeout") s.timeout = std::stoull(val);
        else if (key == "iters") s.iters = static_cast<unsigned>(std::stoul(val));
        else if (key == "block") s.block = static_cast<unsigned>(std::stoul(val));
        else if (key == "failures") s.launch_failures = static_cast<unsigned>(std::stoul(val));
        else if (key == "home") s.home_chip = static_cast<unsigned>(std::stoul(val));
        else if (key == "origin") s.origin_chip = static_cast<unsigned>(std::stoul(val));
        else throw fail("unknown field '" + key + "'");
      } catch (const std::invalid_argument&) {
        throw fail("field '" + key + "' has non-numeric value '" + val + "'");
      } catch (const std::out_of_range&) {
        throw fail("field '" + key + "' value out of range: '" + val + "'");
      }
    }
    if (s.rows == 0 || s.cols == 0) throw fail("job shape must be at least 1x1");
    jobs.push_back(std::move(s));
  }
  return jobs;
}

std::vector<JobSpec> load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload spec: " + path);
  return load(in, path);
}

}  // namespace epi::sched
