#include "sched/workload.hpp"

#include <fstream>
#include <istream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "sched/dag.hpp"
#include "sim/random.hpp"
#include "util/fmt.hpp"

namespace epi::sched {

namespace {

// Workgroup shapes a serving job may request, with draw weights biased
// toward small groups (the realistic mix: many small tenants, occasional
// large jobs that exercise head-of-line blocking and fragmentation).
struct ShapeChoice {
  unsigned rows, cols, weight;
};
constexpr ShapeChoice kShapes[] = {
    {1, 1, 4}, {1, 2, 3}, {2, 2, 4}, {2, 4, 3},
    {4, 4, 3}, {2, 8, 1}, {4, 8, 1}, {8, 8, 1},
};

unsigned weighted_draw(sim::Rng& rng, const unsigned* weights, unsigned n) {
  unsigned total = 0;
  for (unsigned i = 0; i < n; ++i) total += weights[i];
  std::uint64_t r = rng.next_below(total);
  for (unsigned i = 0; i < n; ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return n - 1;
}

}  // namespace

std::vector<JobSpec> generate(const TrafficConfig& cfg) {
  if (cfg.tenants.empty()) {
    throw std::invalid_argument("TrafficConfig::tenants must not be empty");
  }
  sim::Rng rng(cfg.seed);
  // Drawable kinds (Custom is submit-only: it carries inline programs).
  constexpr JobKind kKinds[] = {JobKind::Matmul, JobKind::Stencil,
                                JobKind::Offload, JobKind::CannonMatmul,
                                JobKind::Transpose};
  const unsigned kind_weights[std::size(kKinds)] = {
      cfg.matmul_weight, cfg.stencil_weight, cfg.offload_weight,
      cfg.cannon_weight, cfg.transpose_weight};
  unsigned shape_weights[std::size(kShapes)];
  for (unsigned i = 0; i < std::size(kShapes); ++i) shape_weights[i] = kShapes[i].weight;

  std::vector<JobSpec> jobs;
  jobs.reserve(cfg.jobs);
  sim::Cycles t = 0;
  std::uint32_t next_graph = 1;
  while (jobs.size() < cfg.jobs) {
    // Pipeline requests ride the same budget: each graph emits one JobSpec
    // per stage. Every draw below is guarded by pipeline_frac > 0 so a
    // frac-0 config replays the pre-pipeline rng stream byte-identically.
    const unsigned remaining = cfg.jobs - static_cast<unsigned>(jobs.size());
    if (cfg.pipeline_frac > 0 && remaining >= 2 &&
        rng.next_float() < cfg.pipeline_frac) {
      JobGraph g = draw_pipeline(rng, remaining >= 3 ? 3 : 2);
      g.id = next_graph++;
      g.tenant = cfg.tenants[rng.next_below(cfg.tenants.size())];
      g.priority = static_cast<unsigned>(rng.next_below(4));
      if (cfg.mean_interarrival > 0 && !jobs.empty()) {
        t += cfg.mean_interarrival / 2 + rng.next_below(cfg.mean_interarrival);
      }
      g.arrival = t;
      if (rng.next_float() < cfg.deadline_prob) {
        // Whole-chain SLO: the budget scales with the stage count, since the
        // stages run back to back at best.
        g.deadline = t + 2'000'000ull * g.stages.size() + rng.next_below(2'000'000);
      }
      g.timeout = cfg.timeout;
      for (JobSpec& s : expand_graph(g, static_cast<std::uint32_t>(jobs.size()))) {
        jobs.push_back(std::move(s));
      }
      continue;
    }
    JobSpec s;
    s.id = static_cast<std::uint32_t>(jobs.size());
    s.tenant = cfg.tenants[rng.next_below(cfg.tenants.size())];
    s.kind = kKinds[weighted_draw(rng, kind_weights, std::size(kKinds))];
    const ShapeChoice& shape =
        kShapes[weighted_draw(rng, shape_weights, std::size(kShapes))];
    s.rows = shape.rows;
    s.cols = shape.cols;
    if (s.kind == JobKind::CannonMatmul) {
      // Cannon's active torus is the min(rows, cols) square; request a square
      // group so every granted core participates in the rotation.
      s.rows = s.cols = std::min(shape.rows, shape.cols);
    }
    s.priority = static_cast<unsigned>(rng.next_below(4));
    // Geometric-flavoured gap around the mean: uniform in [mean/2, 3*mean/2)
    // keeps bursts and lulls without heavy tails that would make short
    // benches unrepresentative.
    if (cfg.mean_interarrival > 0 && !jobs.empty()) {
      t += cfg.mean_interarrival / 2 + rng.next_below(cfg.mean_interarrival);
    }
    s.arrival = t;
    s.iters = 1 + static_cast<unsigned>(rng.next_below(3));
    switch (s.kind) {
      case JobKind::Matmul: s.block = 8u << rng.next_below(3); break;   // 8/16/32
      case JobKind::Stencil: s.block = 8 + 4 * static_cast<unsigned>(rng.next_below(4)); break;
      case JobKind::Offload: s.block = 16u << rng.next_below(2); break; // 16/32
      case JobKind::CannonMatmul: s.block = 8u << rng.next_below(2); break; // 8/16
      // block^2 words per PE pair (clamped to the symmetric heap at launch)
      case JobKind::Transpose: s.block = 4u << rng.next_below(2); break;  // 4/8
      case JobKind::Custom: break;  // never drawn: kKinds excludes it
    }
    if (rng.next_float() < cfg.fail_prob) {
      s.launch_failures = 1 + static_cast<unsigned>(rng.next_below(2));
    }
    if (rng.next_float() < cfg.deadline_prob) {
      s.deadline = s.arrival + 2'000'000 + rng.next_below(2'000'000);
    }
    s.timeout = cfg.timeout;
    jobs.push_back(std::move(s));
  }
  return jobs;
}

std::string save(const std::vector<JobSpec>& jobs) {
  std::string out = "# epi-serve workload (one job per line)\n";
  for (const JobSpec& s : jobs) {
    out += util::format(
        "job id=%u tenant=%s kind=%s rows=%u cols=%u prio=%u arrival=%llu "
        "deadline=%llu timeout=%llu iters=%u block=%u failures=%u",
        s.id, s.tenant.c_str(), to_string(s.kind), s.rows, s.cols, s.priority,
        static_cast<unsigned long long>(s.arrival),
        static_cast<unsigned long long>(s.deadline),
        static_cast<unsigned long long>(s.timeout), s.iters, s.block,
        s.launch_failures);
    // Cluster domain tags, omitted for single-chip jobs so single-chip
    // workload files stay byte-identical to the pre-cluster format.
    if (s.home_chip != 0 || s.origin_chip != 0) {
      out += util::format(" home=%u origin=%u", s.home_chip, s.origin_chip);
    }
    // Pipeline tags, omitted for standalone jobs for the same reason.
    if (s.graph != 0) {
      out += util::format(" graph=%u stage=%u stages=%u", s.graph, s.stage,
                          s.graph_stages);
      if (!s.deps.empty()) {
        out += " deps=";
        for (std::size_t i = 0; i < s.deps.size(); ++i) {
          out += util::format(i == 0 ? "%u:%u" : ",%u:%u", s.deps[i].first,
                              s.deps[i].second);
        }
      }
    }
    out += "\n";
  }
  return out;
}

std::vector<JobSpec> load(std::istream& in, const std::string& source) {
  std::vector<JobSpec> jobs;
  std::string line;
  unsigned lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto fail = [&](const std::string& why) -> std::runtime_error {
      return std::runtime_error(
          util::format("%s:%u: %s", source.c_str(), lineno, why.c_str()));
    };
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;  // blank or comment
    if (word != "job") throw fail("expected 'job', got '" + word + "'");
    JobSpec s;
    while (ls >> word) {
      const auto eq = word.find('=');
      if (eq == std::string::npos) throw fail("field '" + word + "' is not key=value");
      const std::string key = word.substr(0, eq);
      const std::string val = word.substr(eq + 1);
      try {
        if (key == "id") s.id = static_cast<std::uint32_t>(std::stoul(val));
        else if (key == "tenant") s.tenant = val;
        else if (key == "kind") {
          if (!parse_kind(val, s.kind)) throw fail("unknown kind '" + val + "'");
          if (s.kind == JobKind::Custom) {
            throw fail(
                "custom jobs carry inline programs and cannot be expressed in "
                "a workload file; submit them via Scheduler::submit or "
                "epi_serve --asm");
          }
        }
        else if (key == "rows") s.rows = static_cast<unsigned>(std::stoul(val));
        else if (key == "cols") s.cols = static_cast<unsigned>(std::stoul(val));
        else if (key == "prio") s.priority = static_cast<unsigned>(std::stoul(val));
        else if (key == "arrival") s.arrival = std::stoull(val);
        else if (key == "deadline") s.deadline = std::stoull(val);
        else if (key == "timeout") s.timeout = std::stoull(val);
        else if (key == "iters") s.iters = static_cast<unsigned>(std::stoul(val));
        else if (key == "block") s.block = static_cast<unsigned>(std::stoul(val));
        else if (key == "failures") s.launch_failures = static_cast<unsigned>(std::stoul(val));
        else if (key == "home") s.home_chip = static_cast<unsigned>(std::stoul(val));
        else if (key == "origin") s.origin_chip = static_cast<unsigned>(std::stoul(val));
        else if (key == "graph") s.graph = static_cast<std::uint32_t>(std::stoul(val));
        else if (key == "stage") s.stage = static_cast<unsigned>(std::stoul(val));
        else if (key == "stages") s.graph_stages = static_cast<unsigned>(std::stoul(val));
        else if (key == "deps") {
          // id:bytes pairs, comma-separated: deps=12:2048,13:4096
          std::size_t pos = 0;
          while (pos < val.size()) {
            const auto comma = val.find(',', pos);
            const std::string pair =
                val.substr(pos, comma == std::string::npos ? comma : comma - pos);
            const auto colon = pair.find(':');
            if (colon == std::string::npos || colon == 0 || colon + 1 >= pair.size()) {
              throw fail("dep '" + pair + "' is not id:bytes");
            }
            s.deps.emplace_back(
                static_cast<std::uint32_t>(std::stoul(pair.substr(0, colon))),
                static_cast<std::uint32_t>(std::stoul(pair.substr(colon + 1))));
            if (comma == std::string::npos) break;
            pos = comma + 1;
          }
        }
        else throw fail("unknown field '" + key + "'");
      } catch (const std::invalid_argument&) {
        throw fail("field '" + key + "' has non-numeric value '" + val + "'");
      } catch (const std::out_of_range&) {
        throw fail("field '" + key + "' value out of range: '" + val + "'");
      }
    }
    if (s.rows == 0 || s.cols == 0) throw fail("job shape must be at least 1x1");
    if (s.graph != 0 && (s.graph_stages == 0 || s.stage >= s.graph_stages)) {
      throw fail("graph job needs stage < stages (got stage=" +
                 std::to_string(s.stage) + " stages=" +
                 std::to_string(s.graph_stages) + ")");
    }
    if (s.graph == 0 && !s.deps.empty()) {
      throw fail("deps require a nonzero graph id");
    }
    jobs.push_back(std::move(s));
  }
  return jobs;
}

std::vector<JobSpec> load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload spec: " + path);
  return load(in, path);
}

}  // namespace epi::sched
