#pragma once
// Seeded traffic generation and the on-disk workload-spec format.
//
// generate() turns a TrafficConfig into a concrete job stream using the
// repo's deterministic Rng: same seed, same stream, on every platform --
// the property every serving determinism test leans on. Interarrival gaps
// come from a geometric-ish integer sampler around `mean_interarrival`, job
// kinds and shapes from weighted draws, and a small fraction of jobs get
// injected launch failures and deadline/timeout SLOs so the scheduler's
// retry and drop paths see traffic in every run, not just in unit tests.
//
// save()/load() read and write a line-oriented text format (one `job`
// directive per line, `key=value` fields) so epi-serve can replay a recorded
// or hand-written workload byte-for-byte:
//
//   # epi-serve workload
//   job id=0 tenant=alice kind=matmul rows=2 cols=2 prio=1 arrival=0
//       deadline=0 timeout=800000 iters=2 block=16 failures=0
//
// (shown wrapped over two lines for width; real jobs are one line each).

#include <iosfwd>
#include <string>
#include <vector>

#include "sched/job.hpp"

namespace epi::sched {

struct TrafficConfig {
  unsigned jobs = 60;
  std::uint64_t seed = 1;
  sim::Cycles mean_interarrival = 30'000;  // mean gap between arrivals
  // Relative weights of each kind in the mix (need not sum to anything).
  unsigned matmul_weight = 1;
  unsigned stencil_weight = 1;
  unsigned offload_weight = 2;
  // The comm-bound shmem kinds (put_with_signal rotation / all-to-all), in
  // the default mix so serving traffic contends for mesh links and DMA
  // channels as well as FPUs and the eLink.
  unsigned cannon_weight = 1;
  unsigned transpose_weight = 1;
  double fail_prob = 0.10;       // chance a job gets 1-2 injected launch failures
  double deadline_prob = 0.25;   // chance a job carries a completion deadline
  sim::Cycles timeout = 3'000'000;  // queue timeout applied to every job; 0=none
  /// Fraction of requests drawn as multi-kernel pipelines (sched/dag.hpp)
  /// instead of standalone jobs. 0 keeps the stream byte-identical to the
  /// pre-pipeline generator (no extra rng draws are made); each pipeline
  /// consumes 2-3 of the `jobs` budget (one JobSpec per stage).
  double pipeline_frac = 0.0;
  std::vector<std::string> tenants = {"alice", "bob", "carol"};
};

/// Deterministically expand a TrafficConfig into a job stream (ids 0..n-1,
/// non-decreasing arrivals).
[[nodiscard]] std::vector<JobSpec> generate(const TrafficConfig& cfg);

/// Serialise a stream in the workload-spec text format (deterministic:
/// fields in fixed order, one job per line).
[[nodiscard]] std::string save(const std::vector<JobSpec>& jobs);

/// Parse a workload spec; throws std::runtime_error with a compiler-style
/// "source:line: message" on malformed input (`source` is the file path for
/// load_file, or the caller-supplied stream name). Blank lines and `#`
/// comments are ignored.
[[nodiscard]] std::vector<JobSpec> load(std::istream& in,
                                        const std::string& source = "workload");
[[nodiscard]] std::vector<JobSpec> load_file(const std::string& path);

}  // namespace epi::sched
