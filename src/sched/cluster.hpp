#pragma once
// epi-serve cluster mode: serving a multi-chip xMesh array in parallel.
//
// One chip is one conservative-PDES domain (machine/partition.hpp): it owns
// its own Machine, engine, and Scheduler, and advances on a worker thread
// inside sim::ParallelEngine's synchronous windows. The only cross-domain
// traffic is job forwarding -- a deterministic fraction of each chip's
// arrival stream is homed on another chip, so the launch request crosses
// the xMesh bridge (serialization + per-hop flight, noc/xmesh.hpp) before
// joining the home chip's admission queue -- plus the completion notice
// that flows back to the origin when the job resolves.
//
// Determinism contract (the tentpole property): the window schedule and
// every per-domain event order are pure functions of the configuration, so
// run(N) produces byte-identical reports, decision logs, and notice logs
// for every worker count N, including N=1 (the sequential reference, which
// executes the very same window loop inline).
//
// Failover (armed only when the cluster plan carries chip-scoped faults,
// so fault-free runs keep their historical bytes): every chip heartbeats
// its peers over the bridge; an origin whose forwards sit on a peer with
// stale heartbeats -- or that keeps timing out -- quarantines that peer in
// its own health view and re-forwards the orphaned work (all stages of a
// graph, since the dead home's partial results died with it) to the next
// healthy chip, with bounded attempts, exponential backoff, and idempotent
// dedup on both ends: the home drops (and re-acks) replayed jobs it has
// seen, the origin takes the first valid completion notice per job and
// logs later ones as stale. Completion notices are CRC-checked like eLink
// transfers; a corrupted notice is discarded (and reported) and the
// forward-timeout path recovers. Every recovery decision lands in the
// deterministic logs and the cluster-health report footer.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/timing.hpp"
#include "fault/cluster.hpp"
#include "fault/plan.hpp"
#include "machine/partition.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "sim/parallel.hpp"

namespace epi::sched {

/// Knobs of the chip-level failover stack. Periods are in cycles; the
/// defaults detect a dead 2x2-cluster chip well inside the makespan of the
/// default traffic mix while tolerating transient stalls and flapping
/// links without false quarantines.
struct FailoverConfig {
  sim::Cycles heartbeat_period = 150'000;  // per-chip heartbeat interval
  unsigned miss_budget = 4;                // stale after this many periods
  sim::Cycles forward_timeout = 2'000'000; // per-forward completion budget
  unsigned max_forward_attempts = 3;       // total homes tried per forward
  sim::Cycles forward_backoff = 50'000;    // re-forward delay; doubles per try
};

struct ClusterConfig {
  unsigned chip_rows = 2;          // chip grid (domains = chip_rows*chip_cols)
  unsigned chip_cols = 2;
  arch::MachineConfig chip{};      // every chip runs the same machine config
  SchedConfig sched{};             // per-chip scheduler policy
  TrafficConfig traffic{};         // per-chip stream; seed is offset per chip
  double remote_frac = 0.25;       // fraction of each stream homed off-chip
  // Optional per-chip fault plans (empty vector = fault-free cluster; when
  // set, must hold exactly one plan per chip -- empty plans are allowed and
  // leave that chip clean).
  std::vector<fault::FaultPlan> fault_plans{};
  // Cluster-scoped plan (the `chips RxC` grammar): chip-scoped faults plus
  // chip-tagged machine faults, split per chip by fault::ClusterInjector.
  // Mutually exclusive with fault_plans.
  fault::FaultPlan cluster_plan{};
  FailoverConfig failover{};
  // Arm per-chip tracing: every chip's machine records into its own Tracer
  // and write_trace() exports one Chrome process per chip (per-chip fault /
  // reforward / quarantine counters land on that chip's counter track).
  bool trace = false;
};

struct ClusterStats {
  unsigned chips = 0;
  sim::Cycles lookahead = 0;       // PDES lookahead (min cross-chip latency)
  std::uint64_t windows = 0;       // synchronisation windows executed
  std::uint64_t forwards = 0;      // cross-chip job launches
  std::uint64_t notices = 0;       // completion notices sent back
  std::uint64_t xmesh_bytes = 0;   // bytes serialized over chip egress links
  sim::Cycles makespan = 0;        // max per-chip makespan
  // ---- failover (all zero in unarmed runs) -------------------------------
  std::uint64_t reforwarded = 0;   // jobs re-homed after a timeout/quarantine
  std::uint64_t quarantines = 0;   // peer-quarantine decisions taken
  std::uint64_t abandoned = 0;     // forwards dropped after the retry budget
  std::uint64_t dup_dropped = 0;   // replayed jobs deduped at their home
  std::uint64_t crc_rejects = 0;   // completion notices failing the CRC check
  unsigned dead_chips = 0;         // chips that crashed during the run
  std::uint64_t abandoned_jobs = 0;// jobs a dead chip left unresolved
};

/// Owns the chips, routes the streams, and drives the parallel run. All
/// report/log accessors are valid after run() and independent of the worker
/// count used.
class ClusterScheduler {
public:
  explicit ClusterScheduler(ClusterConfig cfg);
  ~ClusterScheduler();

  ClusterScheduler(const ClusterScheduler&) = delete;
  ClusterScheduler& operator=(const ClusterScheduler&) = delete;

  /// Serve every chip's stream to completion using `workers` threads
  /// (clamped to [1, chips]). Callable once.
  void run(unsigned workers);

  /// Deterministic cluster report: header + per-chip epi-serve reports +
  /// cross-chip notice logs. Excludes worker count and wall-clock by design
  /// so the bytes are identical for every `workers` value.
  [[nodiscard]] std::string report() const;

  [[nodiscard]] const machine::PartitionMap& partition() const noexcept {
    return part_;
  }
  [[nodiscard]] const ClusterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const sim::ParallelStats& parallel_stats() const;
  [[nodiscard]] const Scheduler& chip_sched(unsigned chip) const;
  /// Completion notices delivered to `chip` (origin side), delivery order.
  [[nodiscard]] const std::vector<std::string>& notices(unsigned chip) const;

  /// True when the cluster plan armed the failover stack.
  [[nodiscard]] bool failover_armed() const noexcept { return armed_; }
  /// Chip-level fault reports raised by `chip` (watchdog trips, forward
  /// timeouts, CRC rejects), in detection order.
  [[nodiscard]] const std::vector<fault::FaultReport>& cluster_faults(
      unsigned chip) const;

  /// Chrome/Perfetto trace of the whole cluster run, one process per chip.
  /// Requires ClusterConfig::trace; valid after run().
  void write_trace(std::ostream& os) const;

private:
  struct Chip;

  void route_streams();
  void queue_forward(JobSpec spec);
  void deliver_forward(unsigned home, JobSpec spec);
  void send_notice(unsigned home, unsigned origin, std::uint32_t id,
                   Verdict v, sim::Cycles now);
  void failover_pump(unsigned chip, sim::Cycles now);
  void reforward(unsigned chip, std::uint64_t key, sim::Cycles now,
                 const char* why);
  void emit_heartbeats(unsigned chip, sim::Cycles now);
  [[nodiscard]] std::string health_footer() const;

  ClusterConfig cfg_;
  machine::PartitionMap part_;
  std::vector<std::unique_ptr<Chip>> chips_;
  std::unique_ptr<sim::ParallelEngine> pe_;
  std::unique_ptr<fault::ClusterInjector> injector_;
  bool armed_ = false;
  ClusterStats stats_;
  bool ran_ = false;
};

}  // namespace epi::sched
