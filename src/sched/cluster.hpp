#pragma once
// epi-serve cluster mode: serving a multi-chip xMesh array in parallel.
//
// One chip is one conservative-PDES domain (machine/partition.hpp): it owns
// its own Machine, engine, and Scheduler, and advances on a worker thread
// inside sim::ParallelEngine's synchronous windows. The only cross-domain
// traffic is job forwarding -- a deterministic fraction of each chip's
// arrival stream is homed on another chip, so the launch request crosses
// the xMesh bridge (serialization + per-hop flight, noc/xmesh.hpp) before
// joining the home chip's admission queue -- plus the completion notice
// that flows back to the origin when the job resolves.
//
// Determinism contract (the tentpole property): the window schedule and
// every per-domain event order are pure functions of the configuration, so
// run(N) produces byte-identical reports, decision logs, and notice logs
// for every worker count N, including N=1 (the sequential reference, which
// executes the very same window loop inline).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/timing.hpp"
#include "fault/plan.hpp"
#include "machine/partition.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "sim/parallel.hpp"

namespace epi::sched {

struct ClusterConfig {
  unsigned chip_rows = 2;          // chip grid (domains = chip_rows*chip_cols)
  unsigned chip_cols = 2;
  arch::MachineConfig chip{};      // every chip runs the same machine config
  SchedConfig sched{};             // per-chip scheduler policy
  TrafficConfig traffic{};         // per-chip stream; seed is offset per chip
  double remote_frac = 0.25;       // fraction of each stream homed off-chip
  // Optional per-chip fault plans (empty vector = fault-free cluster; when
  // set, must hold exactly one plan per chip -- empty plans are allowed and
  // leave that chip clean).
  std::vector<fault::FaultPlan> fault_plans{};
};

struct ClusterStats {
  unsigned chips = 0;
  sim::Cycles lookahead = 0;       // PDES lookahead (min cross-chip latency)
  std::uint64_t windows = 0;       // synchronisation windows executed
  std::uint64_t forwards = 0;      // cross-chip job launches
  std::uint64_t notices = 0;       // completion notices sent back
  std::uint64_t xmesh_bytes = 0;   // bytes serialized over chip egress links
  sim::Cycles makespan = 0;        // max per-chip makespan
};

/// Owns the chips, routes the streams, and drives the parallel run. All
/// report/log accessors are valid after run() and independent of the worker
/// count used.
class ClusterScheduler {
public:
  explicit ClusterScheduler(ClusterConfig cfg);
  ~ClusterScheduler();

  ClusterScheduler(const ClusterScheduler&) = delete;
  ClusterScheduler& operator=(const ClusterScheduler&) = delete;

  /// Serve every chip's stream to completion using `workers` threads
  /// (clamped to [1, chips]). Callable once.
  void run(unsigned workers);

  /// Deterministic cluster report: header + per-chip epi-serve reports +
  /// cross-chip notice logs. Excludes worker count and wall-clock by design
  /// so the bytes are identical for every `workers` value.
  [[nodiscard]] std::string report() const;

  [[nodiscard]] const machine::PartitionMap& partition() const noexcept {
    return part_;
  }
  [[nodiscard]] const ClusterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const sim::ParallelStats& parallel_stats() const;
  [[nodiscard]] const Scheduler& chip_sched(unsigned chip) const;
  /// Completion notices delivered to `chip` (origin side), delivery order.
  [[nodiscard]] const std::vector<std::string>& notices(unsigned chip) const;

private:
  struct Chip;

  void route_streams();
  void queue_forward(JobSpec spec);

  ClusterConfig cfg_;
  machine::PartitionMap part_;
  std::vector<std::unique_ptr<Chip>> chips_;
  std::unique_ptr<sim::ParallelEngine> pe_;
  ClusterStats stats_;
  bool ran_ = false;
};

}  // namespace epi::sched
