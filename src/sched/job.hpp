#pragma once
// Job model for epi-serve, the multi-tenant serving runtime.
//
// A job is one kernel launch request against the shared 8x8 mesh: a kind
// (which serving kernel runs), a requested workgroup shape, a priority, an
// arrival time, and optional deadline/timeout SLOs. Jobs are what the
// scheduler admits, places, launches, retries and accounts -- the unit the
// ROADMAP's "heavy concurrent traffic" arrives in. Richie & Ross
// (arXiv:1604.04207) measured that host-side run-time behaviour, not device
// kernels, dominates real Epiphany deployments; the fields here are exactly
// the run-time concerns that work surfaces (placement shape, launch retry,
// queueing).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace epi::sched {

/// Which serving kernel a job runs (see sched/kernels.hpp). Each kind
/// stresses a different machine resource, so a mixed stream genuinely
/// contends: Matmul rotates blocks over the mesh, Stencil exchanges halos
/// by chained DMA, Offload streams results to shared DRAM over the eLink.
/// Custom carries tenant-supplied eCore assembly (JobSpec::programs) -- the
/// kind the admission-time lint gate verifies statically before placement.
/// CannonMatmul and Transpose are the comm-bound shmem kinds (epi-shmem
/// PGAS runtime): put_with_signal block rotation and an all-to-all
/// exchange, both host-validated numerically at reap.
enum class JobKind : std::uint8_t {
  Matmul,
  Stencil,
  Offload,
  Custom,
  CannonMatmul,
  Transpose,
};

inline constexpr JobKind kAllJobKinds[] = {
    JobKind::Matmul,  JobKind::Stencil,      JobKind::Offload,
    JobKind::Custom,  JobKind::CannonMatmul, JobKind::Transpose,
};

[[nodiscard]] constexpr const char* to_string(JobKind k) noexcept {
  switch (k) {
    case JobKind::Matmul: return "matmul";
    case JobKind::Stencil: return "stencil";
    case JobKind::Offload: return "offload";
    case JobKind::Custom: return "custom";
    case JobKind::CannonMatmul: return "cannon";
    case JobKind::Transpose: return "transpose";
  }
  return "?";
}

[[nodiscard]] inline bool parse_kind(std::string_view s, JobKind& out) noexcept {
  if (s == "matmul") out = JobKind::Matmul;
  else if (s == "stencil") out = JobKind::Stencil;
  else if (s == "offload") out = JobKind::Offload;
  else if (s == "custom") out = JobKind::Custom;
  else if (s == "cannon") out = JobKind::CannonMatmul;
  else if (s == "transpose") out = JobKind::Transpose;
  else return false;
  return true;
}

struct JobSpec {
  std::uint32_t id = 0;
  std::string tenant = "default";
  JobKind kind = JobKind::Offload;
  unsigned rows = 1;           // requested workgroup shape
  unsigned cols = 1;
  unsigned priority = 0;       // base priority; higher is more urgent
  sim::Cycles arrival = 0;     // absolute submission cycle
  sim::Cycles deadline = 0;    // absolute completion SLO; 0 = none (soft)
  sim::Cycles timeout = 0;     // max cycles a job may wait unstarted; 0 = none
  unsigned iters = 2;          // work parameter: steps / stencil iterations
  unsigned block = 16;         // matmul block edge / stencil tile edge /
                               // offload elements-per-core = block*block
  unsigned launch_failures = 0;  // injected failures before a launch sticks
  /// Cluster domain tags (single-chip runs leave both 0). `home_chip` is
  /// the chip (PDES domain) whose scheduler executes the job; `origin_chip`
  /// is the chip whose host submitted it. When they differ, the launch is
  /// forwarded over the xMesh bridge and arrives at the home chip one
  /// serialized transfer plus flight latency later.
  unsigned home_chip = 0;
  unsigned origin_chip = 0;
  /// Pipeline (job-graph) tags, all zero/empty for standalone jobs. Stages
  /// expanded from one sched::JobGraph share a nonzero `graph` id and know
  /// the graph's total stage count; `deps` lists (producer job id, tensor
  /// bytes) per in-edge. The scheduler launches a stage only once every
  /// producer completed, co-places it near them, and pulls each tensor
  /// through DRAM or scratchpad-to-scratchpad at launch (sched/dag.hpp).
  std::uint32_t graph = 0;
  unsigned stage = 0;
  unsigned graph_stages = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> deps;
  /// Custom jobs only: (name, assembly source) per core -- one program
  /// replicates SPMD-style across the group, otherwise exactly rows*cols in
  /// row-major order. Verified by the admission-time lint gate (addresses
  /// are interpreted as if the group were anchored at mesh (0,0); use
  /// COREID-composed addressing for placement-independent programs).
  std::vector<std::pair<std::string, std::string>> programs;
};

/// Terminal state of a job. Pending means still queued or running.
enum class Verdict : std::uint8_t { Pending, Completed, Rejected, TimedOut, Failed };

/// How a *completed* job survived injected faults. None for the common
/// clean run; Retried when a re-execution landed back on the original
/// rectangle; Relocated when recovery moved it (quarantined cores, or the
/// first-fit scan simply found a different hole).
enum class Recovery : std::uint8_t { None, Retried, Relocated };

[[nodiscard]] constexpr const char* to_string(Recovery r) noexcept {
  switch (r) {
    case Recovery::None: return "none";
    case Recovery::Retried: return "retried";
    case Recovery::Relocated: return "relocated";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::Pending: return "pending";
    case Verdict::Completed: return "completed";
    case Verdict::Rejected: return "rejected";
    case Verdict::TimedOut: return "timed-out";
    case Verdict::Failed: return "failed";
  }
  return "?";
}

/// Everything the scheduler learned about one job, for reports and metrics.
struct JobRecord {
  JobSpec spec;
  Verdict verdict = Verdict::Pending;
  std::string detail;          // human-readable reason for non-completion
  unsigned attempts = 0;       // launch attempts, including injected failures
  sim::Cycles admitted = 0;    // cycle the job entered the pending queue
  sim::Cycles started = 0;     // first cycle of kernel execution
  sim::Cycles finished = 0;    // cycle the last core of the group retired
  unsigned placed_row = 0;     // granted origin (valid once started)
  unsigned placed_col = 0;
  unsigned granted_rows = 0;   // granted shape (may be the rotated request)
  unsigned granted_cols = 0;
  bool deadline_met = true;    // false iff a deadline was set and missed
  unsigned reexecs = 0;        // full re-executions after a detected fault
  Recovery recovery = Recovery::None;  // how a completed job survived faults
  bool placed_once = false;    // first_* fields below are valid
  unsigned first_row = 0;      // very first placement, for Retried/Relocated
  unsigned first_col = 0;      //   classification after re-execution
  unsigned first_rows = 0;
  unsigned first_cols = 0;

  [[nodiscard]] sim::Cycles queue_wait() const noexcept {
    return started >= admitted ? started - admitted : 0;
  }
  [[nodiscard]] sim::Cycles service() const noexcept {
    return finished >= started ? finished - started : 0;
  }
  [[nodiscard]] sim::Cycles turnaround() const noexcept {
    return finished >= spec.arrival ? finished - spec.arrival : 0;
  }
  [[nodiscard]] unsigned cores() const noexcept { return granted_rows * granted_cols; }
};

}  // namespace epi::sched
