#include "sched/cluster.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "host/system.hpp"
#include "noc/xmesh.hpp"
#include "sched/kernels.hpp"
#include "sched/report.hpp"
#include "sim/random.hpp"
#include "util/fmt.hpp"

namespace epi::sched {

namespace {
// Wire cost of a forwarded launch beyond its operand footprint (the spec
// itself: ids, shape, SLOs), and of the fixed-size completion notice.
constexpr std::size_t kForwardHeaderBytes = 128;
constexpr std::size_t kNoticeBytes = 64;
}  // namespace

// One chip = one PDES domain. The scheduler and every engine event of this
// chip are touched only by the worker currently advancing the domain;
// cross-chip effects arrive exclusively through ParallelEngine::send.
struct ClusterScheduler::Chip final : sim::Domain {
  Chip(const arch::MachineConfig& mc, const SchedConfig& sc, unsigned chips)
      : sys(mc), sched(sys, sc), bridge(sys.timing(), chips) {}

  sim::Engine& engine() override { return sys.engine(); }

  // Alternate the scheduler pump with raw event draining: once every local
  // job is resolved the scheduler loop no-ops, but late completion notices
  // (plain engine events) must still run inside their window.
  void advance(sim::Cycles limit) override {
    sim::Engine& eng = sys.engine();
    for (;;) {
      sched.run_window(limit);
      if (!eng.step_below(limit)) return;
    }
  }

  // Mirrors the sequential run() loop exactly: while the event queue is
  // non-empty the next event is the floor (host wakeups are only armed on
  // an empty queue, so a horizon below a pending event is never acted on
  // and must not drag the window back).
  sim::Cycles next_time() override {
    const sim::Cycles t = sys.engine().next_event_time();
    if (t != sim::Engine::kNever) return t;
    return sched.host_horizon();
  }

  host::System sys;
  Scheduler sched;
  noc::XMeshBridge bridge;           // sender-local egress state
  std::vector<std::string> notices;  // delivered notices (origin side)
  std::uint64_t forwards = 0;
  std::uint64_t notices_sent = 0;
};

ClusterScheduler::ClusterScheduler(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  part_.chip_rows = cfg_.chip_rows;
  part_.chip_cols = cfg_.chip_cols;
  part_.chip = cfg_.chip.dims;
  const unsigned k = part_.chips();
  if (k == 0) throw std::invalid_argument("cluster needs at least one chip");
  if (!cfg_.fault_plans.empty() && cfg_.fault_plans.size() != k) {
    throw std::invalid_argument("fault_plans must hold one plan per chip");
  }
  if (cfg_.remote_frac < 0.0 || cfg_.remote_frac > 1.0) {
    throw std::invalid_argument("remote_frac must be in [0, 1]");
  }

  pe_ = std::make_unique<sim::ParallelEngine>(
      noc::XMeshBridge::min_latency(cfg_.chip.timing));
  chips_.reserve(k);
  for (unsigned c = 0; c < k; ++c) {
    chips_.push_back(std::make_unique<Chip>(cfg_.chip, cfg_.sched, k));
    if (!cfg_.fault_plans.empty() && !cfg_.fault_plans[c].empty()) {
      chips_[c]->sys.machine().enable_faults(cfg_.fault_plans[c]);
    }
    pe_->add_domain(*chips_[c]);
  }

  route_streams();

  // Completion notices: when a chip resolves a job it did not originate, the
  // verdict travels back over the same bridge and lands as a log line on
  // the origin chip. Runs on the home chip's worker; the delivery closure
  // runs on the origin chip's worker, one window or more later.
  for (unsigned h = 0; h < k; ++h) {
    chips_[h]->sched.set_resolve_hook(
        [this, h](const JobRecord& rec, sim::Cycles now) {
          const unsigned o = rec.spec.origin_chip;
          if (o == h) return;
          Chip& home = *chips_[h];
          const sim::Cycles at =
              home.bridge.send(o, part_.hops(h, o), kNoticeBytes, now);
          ++home.notices_sent;
          const std::uint32_t id = rec.spec.id;
          const Verdict v = rec.verdict;
          pe_->send(h, o, at, id, [this, o, id, v, at] {
            chips_[o]->notices.push_back(util::format(
                "@%llu notice job=%u verdict=%s",
                static_cast<unsigned long long>(at), id, to_string(v)));
          });
        });
  }
}

ClusterScheduler::~ClusterScheduler() = default;

void ClusterScheduler::route_streams() {
  const unsigned k = part_.chips();
  for (unsigned c = 0; c < k; ++c) {
    TrafficConfig tc = cfg_.traffic;
    tc.seed = cfg_.traffic.seed + 1000003ull * c;  // independent per-chip stream
    std::vector<JobSpec> jobs = generate(tc);
    // Routing draws come from their own stream so adding a routing decision
    // never perturbs the job shapes/SLOs drawn above.
    sim::Rng route(cfg_.traffic.seed ^ (0x9e3779b97f4a7c15ull * (c + 1)));
    std::map<std::uint32_t, unsigned> graph_home;  // whole graph, one chip
    for (JobSpec& s : jobs) {
      s.id = c * 100'000u + s.id;  // cluster-unique ids (tie-break key)
      for (auto& dep : s.deps) dep.first += c * 100'000u;
      if (s.graph != 0) s.graph += c * 100'000u;
      s.origin_chip = c;
      s.home_chip = c;
      if (s.graph != 0) {
        // Every stage of a graph runs on the same home chip (the stages
        // share scratchpad/DRAM handoffs); one routing draw per graph, at
        // its first stage.
        auto it = graph_home.find(s.graph);
        if (it == graph_home.end()) {
          unsigned home = c;
          if (k > 1 && route.next_float() < cfg_.remote_frac) {
            home = (c + 1 + static_cast<unsigned>(route.next_below(k - 1))) % k;
          }
          it = graph_home.emplace(s.graph, home).first;
        }
        s.home_chip = it->second;
      } else if (k > 1 && route.next_float() < cfg_.remote_frac) {
        s.home_chip =
            (c + 1 + static_cast<unsigned>(route.next_below(k - 1))) % k;
      }
      if (s.home_chip == c) {
        chips_[c]->sched.submit(std::move(s));
      } else {
        queue_forward(std::move(s));
      }
    }
  }
}

void ClusterScheduler::queue_forward(JobSpec spec) {
  const unsigned o = spec.origin_chip;
  const unsigned h = spec.home_chip;
  // The bridge send is computed *at departure time* (an egress event on the
  // origin engine), not at setup: egress serialization queues behind every
  // earlier forward in that chip's event order, exactly like the sequential
  // single-engine accounting would.
  Chip& origin = *chips_[o];
  origin.sys.engine().call_at(
      spec.arrival, [this, o, h, s = std::move(spec)]() mutable {
        Chip& oc = *chips_[o];
        const std::size_t bytes = kForwardHeaderBytes + job_shm_bytes(s);
        const sim::Cycles at =
            oc.bridge.send(h, part_.hops(o, h), bytes, oc.sys.engine().now());
        ++oc.forwards;
        s.arrival = at;  // the home chip sees the delivery cycle as arrival
        const std::uint32_t key = s.id;
        pe_->send(o, h, at, key, [this, h, js = std::move(s)]() mutable {
          chips_[h]->sched.submit_remote(std::move(js));
        });
      });
}

void ClusterScheduler::run(unsigned workers) {
  if (ran_) throw std::logic_error("ClusterScheduler::run called twice");
  ran_ = true;
  for (auto& ch : chips_) ch->sched.begin();
  pe_->run(workers);
  for (auto& ch : chips_) {
    ch->sched.finish();
    if (!ch->sched.finished()) {
      throw std::logic_error("cluster run ended with unresolved jobs");
    }
  }
  stats_.chips = part_.chips();
  stats_.lookahead = pe_->lookahead();
  stats_.windows = pe_->stats().windows;
  for (auto& ch : chips_) {
    stats_.forwards += ch->forwards;
    stats_.notices += ch->notices_sent;
    stats_.xmesh_bytes += ch->bridge.bytes_sent();
    stats_.makespan = std::max(stats_.makespan, ch->sched.makespan());
  }
}

const sim::ParallelStats& ClusterScheduler::parallel_stats() const {
  return pe_->stats();
}

const Scheduler& ClusterScheduler::chip_sched(unsigned chip) const {
  return chips_.at(chip)->sched;
}

const std::vector<std::string>& ClusterScheduler::notices(unsigned chip) const {
  return chips_.at(chip)->notices;
}

std::string ClusterScheduler::report() const {
  if (!ran_) throw std::logic_error("ClusterScheduler::report before run");
  // Worker count and wall-clock are deliberately absent: these bytes are the
  // determinism contract compared across --parallel=N.
  std::string out = util::format(
      "=== epi-serve cluster %ux%u: %u chips x %ux%u cores ===\n",
      cfg_.chip_rows, cfg_.chip_cols, part_.chips(), part_.chip.rows,
      part_.chip.cols);
  out += util::format(
      "lookahead=%llu cycles  windows=%llu  makespan=%llu\n",
      static_cast<unsigned long long>(stats_.lookahead),
      static_cast<unsigned long long>(stats_.windows),
      static_cast<unsigned long long>(stats_.makespan));
  out += util::format(
      "xmesh: forwards=%llu notices=%llu bytes=%llu\n",
      static_cast<unsigned long long>(stats_.forwards),
      static_cast<unsigned long long>(stats_.notices),
      static_cast<unsigned long long>(stats_.xmesh_bytes));
  for (unsigned c = 0; c < chips_.size(); ++c) {
    out += util::format("\n--- chip %u (%u,%u) ---\n", c, part_.chip_row(c),
                        part_.chip_col(c));
    out += render_report(chips_[c]->sched);
    if (!chips_[c]->notices.empty()) {
      out += "cross-chip notices:\n";
      for (const std::string& n : chips_[c]->notices) {
        out += "  " + n + "\n";
      }
    }
  }
  return out;
}

}  // namespace epi::sched
