#include "sched/cluster.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <span>
#include <stdexcept>
#include <utility>

#include "fault/crc.hpp"
#include "host/system.hpp"
#include "noc/xmesh.hpp"
#include "sched/kernels.hpp"
#include "sched/report.hpp"
#include "sim/random.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/fmt.hpp"

namespace epi::sched {

namespace {
// Wire cost of a forwarded launch beyond its operand footprint (the spec
// itself: ids, shape, SLOs), and of the fixed-size completion notice.
constexpr std::size_t kForwardHeaderBytes = 128;
constexpr std::size_t kNoticeBytes = 64;
// Cross-domain tie-break key space: job ids stay below 2^32, heartbeats get
// their own bit so concurrent deliveries order deterministically.
constexpr std::uint64_t kHeartbeatKey = std::uint64_t{1} << 32;
// Forward-unit key space: a whole graph fails over as one unit.
constexpr std::uint64_t kGraphKey = std::uint64_t{1} << 40;

std::uint32_t payload_crc(const std::string& payload) {
  return fault::crc32(std::as_bytes(std::span(payload.data(), payload.size())));
}
}  // namespace

// One chip = one PDES domain. The scheduler and every engine event of this
// chip are touched only by the worker currently advancing the domain;
// cross-chip effects arrive exclusively through ParallelEngine::send. All
// failover bookkeeping below follows the same ownership rule: origin-side
// state (outstanding forwards, peer-health views) belongs to the origin
// chip's worker, home-side state (dedup table) to the home chip's worker.
struct ClusterScheduler::Chip final : sim::Domain {
  // Tracing must be armed before the Scheduler grabs its counter registry,
  // i.e. between the two member initialisers.
  static host::System& with_tracing(host::System& sys, bool trace) {
    if (trace) sys.machine().enable_tracing();
    return sys;
  }
  Chip(const arch::MachineConfig& mc, const SchedConfig& sc, unsigned chips,
       bool trace)
      : sys(mc), sched(with_tracing(sys, trace), sc),
        bridge(sys.timing(), chips) {}

  sim::Engine& engine() override { return sys.engine(); }

  // Alternate the scheduler pump with raw event draining: once every local
  // job is resolved the scheduler loop no-ops, but late completion notices
  // (plain engine events) must still run inside their window. A chip-crash
  // fault truncates the whole domain at the crash cycle (events at or after
  // it never run -- the chip took them to its grave); a chip-stall freezes
  // only the host pump while device events keep draining.
  void advance(sim::Cycles limit) override {
    sim::Engine& eng = sys.engine();
    const sim::Cycles lim = std::min(limit, crash_at);
    for (;;) {
      if (armed) {
        const sim::Cycles now = eng.now();
        const sim::Cycles thaw = owner->injector_->host_thaw(id, now);
        if (thaw == 0) {
          owner->failover_pump(id, now);
          sched.run_window(
              std::min(lim, owner->injector_->next_freeze(id, now)));
        } else if (thaw != fault::kNever && thaw > thaw_armed) {
          eng.call_at(thaw, [] {});  // wake the pump when the freeze lifts
          thaw_armed = thaw;
        }
      } else {
        sched.run_window(lim);
      }
      if (!eng.step_below(lim)) return;
    }
  }

  // Mirrors the sequential run() loop exactly: while the event queue is
  // non-empty the next event is the floor (host wakeups are only armed on
  // an empty queue, so a horizon below a pending event is never acted on
  // and must not drag the window back). A frozen host cannot act before its
  // thaw; anything at or past the crash cycle never happens at all.
  sim::Cycles next_time() override {
    sim::Cycles t = sys.engine().next_event_time();
    if (t == sim::Engine::kNever) {
      t = sched.host_horizon();
      if (armed && t != sim::Engine::kNever) {
        const sim::Cycles thaw = owner->injector_->host_thaw(id, t);
        if (thaw != 0) t = thaw;
      }
    }
    if (t >= crash_at) return sim::Engine::kNever;
    return t;
  }

  // A crashed chip's half-done work is a fault, not a deadlock: the
  // failover layer abandons it with verdicts after the run. Likewise a
  // fully-resolved scheduler may leave live coroutine frames behind -- a
  // watchdog that trips on a killed core abandons the silenced group's
  // suspended kernels by design -- so only frames backing genuinely
  // unresolved jobs count as stuck.
  std::vector<std::string> unfinished() override {
    if (crash_at != fault::kNever || sched.finished()) return {};
    return engine().live_process_names();
  }

  /// One tracked forward unit: a single remote job, or every stage of a
  /// remotely-homed graph (a graph fails over whole -- the old home's
  /// partial results died with it, so all stages are re-sent).
  struct Forward {
    std::vector<JobSpec> stages;      // original specs, submission order
    std::set<std::uint32_t> pending;  // stage ids awaiting a valid notice
    unsigned home = 0;
    unsigned attempts = 1;            // homes tried (the dedup sequence no.)
    sim::Cycles deadline = 0;         // latest stage deadline (0 = none)
    sim::Cycles last_send = 0;        // latest (scheduled) egress cycle
  };

  host::System sys;
  Scheduler sched;
  noc::XMeshBridge bridge;           // sender-local egress state
  std::vector<std::string> notices;  // delivered notices (origin side)
  std::uint64_t forwards = 0;
  std::uint64_t notices_sent = 0;

  // ---- failover (touched only when armed) --------------------------------
  ClusterScheduler* owner = nullptr;
  unsigned id = 0;
  bool armed = false;
  sim::Cycles crash_at = fault::kNever;
  sim::Cycles thaw_armed = 0;  // latest thaw wakeup already scheduled
  bool hb_live = false;        // heartbeat chain currently self-rescheduling
  // Origin side: tracked forwards and this chip's view of peer health.
  std::map<std::uint64_t, Forward> outstanding;
  std::map<std::uint32_t, std::uint64_t> job_to_fwd;
  std::vector<sim::Cycles> last_hb;       // per peer, newest heartbeat
  std::vector<unsigned> strikes;          // forward timeouts per peer
  std::vector<char> quarantined;          // per peer, own view
  std::vector<fault::FaultReport> cfaults;
  std::vector<std::uint64_t> blamed;      // faults per subject chip
  std::vector<std::uint64_t> rehomed_from;  // jobs re-forwarded off a home
  std::vector<std::string> decisions;     // recovery decision log
  std::uint64_t reforwarded_jobs = 0;
  std::uint64_t abandoned_jobs = 0;
  std::uint64_t crc_rejects = 0;
  std::uint64_t quarantine_count = 0;
  // Home side: idempotent replay dedup (job id -> local record index).
  std::map<std::uint32_t, std::uint32_t> seen;
  std::uint64_t dup_dropped = 0;
  std::uint64_t crash_abandoned = 0;  // own jobs failed when this chip died
};

ClusterScheduler::ClusterScheduler(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  part_.chip_rows = cfg_.chip_rows;
  part_.chip_cols = cfg_.chip_cols;
  part_.chip = cfg_.chip.dims;
  const unsigned k = part_.chips();
  if (k == 0) throw std::invalid_argument("cluster needs at least one chip");
  if (!cfg_.fault_plans.empty() && cfg_.fault_plans.size() != k) {
    throw std::invalid_argument("fault_plans must hold one plan per chip");
  }
  if (cfg_.remote_frac < 0.0 || cfg_.remote_frac > 1.0) {
    throw std::invalid_argument("remote_frac must be in [0, 1]");
  }
  if (!cfg_.cluster_plan.empty() || cfg_.cluster_plan.cluster()) {
    if (!cfg_.fault_plans.empty()) {
      throw std::invalid_argument(
          "cluster_plan and per-chip fault_plans are mutually exclusive");
    }
    injector_ = std::make_unique<fault::ClusterInjector>(cfg_.cluster_plan,
                                                         cfg_.chip_rows,
                                                         cfg_.chip_cols);
    armed_ = injector_->armed();
  }

  pe_ = std::make_unique<sim::ParallelEngine>(
      noc::XMeshBridge::min_latency(cfg_.chip.timing));
  chips_.reserve(k);
  for (unsigned c = 0; c < k; ++c) {
    chips_.push_back(
        std::make_unique<Chip>(cfg_.chip, cfg_.sched, k, cfg_.trace));
    Chip& ch = *chips_[c];
    ch.owner = this;
    ch.id = c;
    if (!cfg_.fault_plans.empty() && !cfg_.fault_plans[c].empty()) {
      ch.sys.machine().enable_faults(cfg_.fault_plans[c]);
    }
    if (injector_) {
      const fault::FaultPlan mp = injector_->machine_plan(c);
      if (!mp.empty()) ch.sys.machine().enable_faults(mp);
    }
    if (armed_) {
      ch.armed = true;
      ch.crash_at = injector_->crash_at(c);
      ch.last_hb.assign(k, 0);
      ch.strikes.assign(k, 0);
      ch.quarantined.assign(k, 0);
      ch.blamed.assign(k, 0);
      ch.rehomed_from.assign(k, 0);
      ch.bridge.set_outage([this, c](unsigned dst, sim::Cycles t) {
        return injector_->xmesh_clear(c, dst, t);
      });
    }
    pe_->add_domain(ch);
  }

  route_streams();

  // Completion notices: when a chip resolves a job it did not originate, the
  // verdict travels back over the same bridge and lands as a log line on
  // the origin chip. Runs on the home chip's worker; the delivery closure
  // runs on the origin chip's worker, one window or more later.
  for (unsigned h = 0; h < k; ++h) {
    chips_[h]->sched.set_resolve_hook(
        [this, h](const JobRecord& rec, sim::Cycles now) {
          const unsigned o = rec.spec.origin_chip;
          if (o == h) return;
          send_notice(h, o, rec.spec.id, rec.verdict, now);
        });
  }
}

ClusterScheduler::~ClusterScheduler() = default;

void ClusterScheduler::route_streams() {
  const unsigned k = part_.chips();
  for (unsigned c = 0; c < k; ++c) {
    TrafficConfig tc = cfg_.traffic;
    tc.seed = cfg_.traffic.seed + 1000003ull * c;  // independent per-chip stream
    std::vector<JobSpec> jobs = generate(tc);
    // Routing draws come from their own stream so adding a routing decision
    // never perturbs the job shapes/SLOs drawn above.
    sim::Rng route(cfg_.traffic.seed ^ (0x9e3779b97f4a7c15ull * (c + 1)));
    std::map<std::uint32_t, unsigned> graph_home;  // whole graph, one chip
    for (JobSpec& s : jobs) {
      s.id = c * 100'000u + s.id;  // cluster-unique ids (tie-break key)
      for (auto& dep : s.deps) dep.first += c * 100'000u;
      if (s.graph != 0) s.graph += c * 100'000u;
      s.origin_chip = c;
      s.home_chip = c;
      if (s.graph != 0) {
        // Every stage of a graph runs on the same home chip (the stages
        // share scratchpad/DRAM handoffs); one routing draw per graph, at
        // its first stage.
        auto it = graph_home.find(s.graph);
        if (it == graph_home.end()) {
          unsigned home = c;
          if (k > 1 && route.next_float() < cfg_.remote_frac) {
            home = (c + 1 + static_cast<unsigned>(route.next_below(k - 1))) % k;
          }
          it = graph_home.emplace(s.graph, home).first;
        }
        s.home_chip = it->second;
      } else if (k > 1 && route.next_float() < cfg_.remote_frac) {
        s.home_chip =
            (c + 1 + static_cast<unsigned>(route.next_below(k - 1))) % k;
      }
      if (s.home_chip == c) {
        chips_[c]->sched.submit(std::move(s));
      } else {
        if (armed_) {
          // Track the forward so the failover layer can re-home it.
          Chip& oc = *chips_[c];
          const std::uint64_t key =
              s.graph != 0 ? kGraphKey | s.graph : std::uint64_t{s.id};
          Chip::Forward& fwd = oc.outstanding[key];
          if (fwd.stages.empty()) fwd.home = s.home_chip;
          fwd.pending.insert(s.id);
          fwd.deadline = std::max(fwd.deadline, s.deadline);
          fwd.last_send = std::max(fwd.last_send, s.arrival);
          oc.job_to_fwd.emplace(s.id, key);
          fwd.stages.push_back(s);
        }
        queue_forward(std::move(s));
      }
    }
  }
}

void ClusterScheduler::queue_forward(JobSpec spec) {
  const unsigned o = spec.origin_chip;
  const unsigned h = spec.home_chip;
  // The bridge send is computed *at departure time* (an egress event on the
  // origin engine), not at setup: egress serialization queues behind every
  // earlier forward in that chip's event order, exactly like the sequential
  // single-engine accounting would.
  Chip& origin = *chips_[o];
  origin.sys.engine().call_at(
      spec.arrival, [this, o, h, s = std::move(spec)]() mutable {
        Chip& oc = *chips_[o];
        const sim::Cycles now = oc.sys.engine().now();
        std::uint64_t key = 0;
        if (armed_) {
          // The failover layer may have re-homed (or finished) this unit
          // between setup and departure -- a resend already carried every
          // stage, so this stale egress must not duplicate it.
          const auto it = oc.job_to_fwd.find(s.id);
          if (it == oc.job_to_fwd.end()) return;
          key = it->second;
          const Chip::Forward& fwd = oc.outstanding.at(key);
          if (fwd.home != h || fwd.attempts > 1) return;
        }
        const std::size_t bytes = kForwardHeaderBytes + job_shm_bytes(s);
        const sim::Cycles at = oc.bridge.send(h, part_.hops(o, h), bytes, now);
        if (at == fault::kNever) {
          // The egress link is permanently down: reroute right away.
          oc.cfaults.push_back(fault::FaultReport{
              now, now, s.id, "xmesh-dead",
              util::format("bridge link %u->%u down, job never departed", o,
                           h)});
          ++oc.blamed[h];
          reforward(o, key, now, "xmesh-dead");
          return;
        }
        ++oc.forwards;
        if (armed_) {
          Chip::Forward& fwd = oc.outstanding.at(key);
          fwd.last_send = std::max(fwd.last_send, now);
        }
        s.arrival = at;  // the home chip sees the delivery cycle as arrival
        const std::uint32_t key32 = s.id;
        pe_->send(o, h, at, key32, [this, h, js = std::move(s)]() mutable {
          deliver_forward(h, std::move(js));
        });
      });
}

/// Home-side delivery of a forwarded job. With failover armed the home
/// dedups replays idempotently: a job it has already accepted is dropped,
/// and if it already resolved the completion notice is re-sent (the ack the
/// origin evidently never saw).
void ClusterScheduler::deliver_forward(unsigned home, JobSpec spec) {
  Chip& hc = *chips_[home];
  if (armed_) {
    const sim::Cycles now = hc.sys.engine().now();
    const auto it = hc.seen.find(spec.id);
    if (it != hc.seen.end()) {
      ++hc.dup_dropped;
      const JobRecord& rec = hc.sched.records()[it->second];
      const bool done = rec.verdict != Verdict::Pending;
      hc.decisions.push_back(util::format(
          "@%llu dup-forward job=%u %s", static_cast<unsigned long long>(now),
          spec.id, done ? "re-acked" : "still-running"));
      if (done) send_notice(home, spec.origin_chip, spec.id, rec.verdict, now);
      return;
    }
    hc.seen.emplace(spec.id,
                    static_cast<std::uint32_t>(hc.sched.records().size()));
    if (!hc.hb_live) {
      // The chain winds down once a chip drains; new remote work revives it
      // so peers watching this home keep seeing a pulse.
      hc.hb_live = true;
      hc.sys.engine().call_at(now + cfg_.failover.heartbeat_period,
                              [this, home] { emit_heartbeats(home, 0); });
    }
  }
  hc.sched.submit_remote(std::move(spec));
}

/// Home-side completion notice. With failover armed the payload is CRC-
/// checked end to end like an eLink transfer: the injector may drop the
/// notice outright or flip a bit after the checksum is taken, and the
/// origin discards (and reports) anything that fails verification -- the
/// forward-timeout path then recovers.
void ClusterScheduler::send_notice(unsigned home, unsigned origin,
                                   std::uint32_t id, Verdict v,
                                   sim::Cycles now) {
  Chip& hc = *chips_[home];
  if (!armed_) {
    const sim::Cycles at =
        hc.bridge.send(origin, part_.hops(home, origin), kNoticeBytes, now);
    ++hc.notices_sent;
    pe_->send(home, origin, at, id, [this, origin, id, v, at] {
      chips_[origin]->notices.push_back(util::format(
          "@%llu notice job=%u verdict=%s", static_cast<unsigned long long>(at),
          id, to_string(v)));
    });
    return;
  }
  if (injector_->drop_notice(home, now)) return;  // lost on the wire
  std::string payload = util::format("job=%u verdict=%s", id, to_string(v));
  const std::uint32_t crc = payload_crc(payload);
  (void)injector_->flip_notice(home, now, payload);
  const sim::Cycles at =
      hc.bridge.send(origin, part_.hops(home, origin), kNoticeBytes, now);
  if (at == fault::kNever) return;  // dead link: the timeout path recovers
  ++hc.notices_sent;
  pe_->send(home, origin, at, id,
            [this, home, origin, id, at, crc, payload = std::move(payload)] {
              Chip& oc = *chips_[origin];
              if (payload_crc(payload) != crc) {
                ++oc.crc_rejects;
                oc.cfaults.push_back(fault::FaultReport{
                    at, at, id, "notice-crc",
                    util::format("completion notice from chip %u corrupted in "
                                 "flight, discarded",
                                 home)});
                ++oc.blamed[home];
                oc.decisions.push_back(util::format(
                    "@%llu notice-corrupt from=%u",
                    static_cast<unsigned long long>(at), home));
                return;
              }
              const auto fit = oc.job_to_fwd.find(id);
              if (fit == oc.job_to_fwd.end()) {
                oc.notices.push_back(util::format(
                    "@%llu notice-stale %s",
                    static_cast<unsigned long long>(at), payload.c_str()));
                return;
              }
              Chip::Forward& fwd = oc.outstanding.at(fit->second);
              if (fwd.pending.erase(id) == 0) {
                oc.notices.push_back(util::format(
                    "@%llu notice-stale %s",
                    static_cast<unsigned long long>(at), payload.c_str()));
                return;
              }
              oc.notices.push_back(
                  util::format("@%llu notice %s",
                               static_cast<unsigned long long>(at),
                               payload.c_str()));
              if (fwd.pending.empty()) {
                const std::uint64_t key = fit->second;
                for (const JobSpec& s : fwd.stages) oc.job_to_fwd.erase(s.id);
                oc.outstanding.erase(key);
              }
            });
}

/// Origin-side failover pump, run before each scheduler window: time out
/// forwards that never completed, strike (and eventually quarantine) the
/// peers responsible, and quarantine peers whose heartbeats went stale
/// while this chip still has work homed on them.
void ClusterScheduler::failover_pump(unsigned chip, sim::Cycles now) {
  Chip& ch = *chips_[chip];
  if (ch.outstanding.empty()) return;
  const FailoverConfig& fo = cfg_.failover;
  const sim::Cycles stale =
      fo.heartbeat_period * std::max(fo.miss_budget, 1u);

  std::vector<std::uint64_t> timed_out;
  for (const auto& [key, fwd] : ch.outstanding) {
    if (now > fwd.last_send && now - fwd.last_send > fo.forward_timeout) {
      timed_out.push_back(key);
    }
  }
  for (const std::uint64_t key : timed_out) {
    const auto it = ch.outstanding.find(key);
    if (it == ch.outstanding.end()) continue;
    const Chip::Forward& fwd = it->second;
    const unsigned h = fwd.home;
    const std::uint32_t job = fwd.stages.size() == 1 ? fwd.stages[0].id
                                                     : ~std::uint32_t{0};
    ch.cfaults.push_back(fault::FaultReport{
        now, fwd.last_send, job, "forward-timeout",
        util::format("no completion from chip %u within %llu cycles", h,
                     static_cast<unsigned long long>(fo.forward_timeout))});
    ++ch.blamed[h];
    if (h != chip && !ch.quarantined[h] && ++ch.strikes[h] >= 2) {
      ch.quarantined[h] = 1;
      ++ch.quarantine_count;
      ch.cfaults.push_back(fault::FaultReport{
          now, fwd.last_send, ~std::uint32_t{0}, "chip-quarantine",
          util::format("chip %u quarantined after repeated forward timeouts",
                       h)});
      ++ch.blamed[h];
      ch.decisions.push_back(util::format(
          "@%llu quarantine chip=%u reason=forward-timeouts",
          static_cast<unsigned long long>(now), h));
    }
    reforward(chip, key, now, "timeout");
  }

  // Heartbeat watchdog: only peers this chip is actually waiting on are
  // watched, so an idle cluster never manufactures quarantines.
  for (const auto& [key, fwd] : ch.outstanding) {
    const unsigned h = fwd.home;
    if (h == chip || ch.quarantined[h]) continue;
    const sim::Cycles seen = std::max(ch.last_hb[h], fwd.last_send);
    if (now > seen && now - seen > stale) {
      ch.quarantined[h] = 1;
      ++ch.quarantine_count;
      ch.cfaults.push_back(fault::FaultReport{
          now, ch.last_hb[h], ~std::uint32_t{0}, "chip-watchdog",
          util::format("chip %u heartbeat stale (last seen @%llu)", h,
                       static_cast<unsigned long long>(ch.last_hb[h]))});
      ++ch.blamed[h];
      ch.decisions.push_back(util::format(
          "@%llu quarantine chip=%u reason=heartbeat-stale",
          static_cast<unsigned long long>(now), h));
    }
  }
  // Re-home everything sitting on a quarantined peer (including forwards
  // quarantined by earlier pumps whose backoff landed them back on one).
  std::vector<std::uint64_t> orphaned;
  for (const auto& [key, fwd] : ch.outstanding) {
    if (fwd.home != chip && ch.quarantined[fwd.home]) orphaned.push_back(key);
  }
  for (const std::uint64_t key : orphaned) {
    reforward(chip, key, now, "quarantine");
  }
}

/// Re-home one forward unit: bounded attempts, exponential backoff, next
/// healthy chip in ring order (falling back to running it on the origin
/// itself). Graphs re-send every stage -- the old home's partial results
/// are unreachable -- and the home-side dedup absorbs any replays that do
/// eventually surface.
void ClusterScheduler::reforward(unsigned chip, std::uint64_t key,
                                 sim::Cycles now, const char* why) {
  Chip& ch = *chips_[chip];
  const auto it = ch.outstanding.find(key);
  if (it == ch.outstanding.end()) return;
  Chip::Forward& fwd = it->second;
  const unsigned old = fwd.home;
  const bool graph = (key & kGraphKey) != 0;
  const auto unit_id =
      static_cast<std::uint32_t>(graph ? key & (kGraphKey - 1) : key);
  const char* unit = graph ? "graph" : "job";

  if (fwd.attempts >= cfg_.failover.max_forward_attempts ||
      (fwd.deadline != 0 && now >= fwd.deadline)) {
    const bool out_of_time = fwd.attempts < cfg_.failover.max_forward_attempts;
    ch.cfaults.push_back(fault::FaultReport{
        now, fwd.last_send,
        fwd.stages.size() == 1 ? fwd.stages[0].id : ~std::uint32_t{0},
        "forward-abandoned",
        out_of_time
            ? util::format("%s %u past its deadline %llu, retries stopped",
                           unit, unit_id,
                           static_cast<unsigned long long>(fwd.deadline))
            : util::format("%s %u still unresolved after %u homes", unit,
                           unit_id, fwd.attempts)});
    ++ch.blamed[old];
    ch.abandoned_jobs += fwd.pending.size();
    ch.decisions.push_back(util::format(
        "@%llu abandon %s=%u jobs=%zu attempts=%u reason=%s",
        static_cast<unsigned long long>(now), unit, unit_id,
        fwd.pending.size(), fwd.attempts, out_of_time ? "deadline" : "budget"));
    for (const JobSpec& s : fwd.stages) ch.job_to_fwd.erase(s.id);
    ch.outstanding.erase(it);
    return;
  }

  const unsigned k = part_.chips();
  unsigned nh = chip;  // fallback: the origin serves it locally
  for (unsigned step = 1; step < k; ++step) {
    const unsigned j = (old + step) % k;
    if (j == chip || !ch.quarantined[j]) {
      nh = j;
      break;
    }
  }
  ++fwd.attempts;
  fwd.home = nh;
  fwd.pending.clear();
  for (const JobSpec& s : fwd.stages) fwd.pending.insert(s.id);
  ch.reforwarded_jobs += fwd.stages.size();
  ch.rehomed_from[old] += fwd.stages.size();
  const sim::Cycles backoff =
      cfg_.failover.forward_backoff << std::min(fwd.attempts - 2, 20u);
  const sim::Cycles when = now + std::max<sim::Cycles>(backoff, 1);
  fwd.last_send = when;  // the timeout clock restarts at the resend
  ch.decisions.push_back(util::format(
      "@%llu reforward %s=%u jobs=%zu from=%u to=%u attempt=%u reason=%s "
      "send_at=%llu",
      static_cast<unsigned long long>(now), unit, unit_id, fwd.stages.size(),
      old, nh, fwd.attempts, why, static_cast<unsigned long long>(when)));

  ch.sys.engine().call_at(when, [this, chip, key] {
    Chip& oc = *chips_[chip];
    const auto fit = oc.outstanding.find(key);
    if (fit == oc.outstanding.end()) return;  // resolved while backing off
    Chip::Forward& fwd = oc.outstanding.at(key);
    const sim::Cycles now = oc.sys.engine().now();
    if (fwd.home == chip) {
      // Local fallback: the origin's own scheduler owns the outcome from
      // here (no notices to wait for), so the tracked unit retires.
      oc.decisions.push_back(util::format(
          "@%llu reforward-local jobs=%zu",
          static_cast<unsigned long long>(now), fwd.stages.size()));
      for (JobSpec s : fwd.stages) {
        s.home_chip = chip;
        s.arrival = now;
        oc.job_to_fwd.erase(s.id);
        oc.sched.submit_remote(std::move(s));
      }
      oc.outstanding.erase(key);
      return;
    }
    for (const JobSpec& stage : fwd.stages) {
      JobSpec s = stage;
      s.home_chip = fwd.home;
      const std::size_t bytes = kForwardHeaderBytes + job_shm_bytes(s);
      const sim::Cycles at =
          oc.bridge.send(fwd.home, part_.hops(chip, fwd.home), bytes, now);
      if (at == fault::kNever) {
        oc.cfaults.push_back(fault::FaultReport{
            now, now, s.id, "xmesh-dead",
            util::format("bridge link %u->%u down, resend never departed",
                         chip, fwd.home)});
        ++oc.blamed[fwd.home];
        reforward(chip, key, now, "xmesh-dead");
        return;
      }
      ++oc.forwards;
      s.arrival = at;
      const std::uint32_t key32 = s.id;
      const unsigned h = fwd.home;
      pe_->send(chip, h, at, key32, [this, h, js = std::move(s)]() mutable {
        deliver_forward(h, std::move(js));
      });
    }
  });
}

/// One heartbeat tick: pulse every peer (unless the host runtime is frozen
/// -- a stalled chip goes quiet exactly like a crashed one, which is what
/// lets peers tell), then re-arm while this chip still has local work or
/// tracked forwards. The chain winding down is what lets the PDES executor
/// reach global idle.
void ClusterScheduler::emit_heartbeats(unsigned chip, sim::Cycles) {
  Chip& ch = *chips_[chip];
  const sim::Cycles now = ch.sys.engine().now();
  const unsigned k = part_.chips();
  if (injector_->host_thaw(chip, now) == 0) {
    for (unsigned o = 0; o < k; ++o) {
      if (o == chip) continue;
      const sim::Cycles at = now + ch.bridge.flight(part_.hops(chip, o));
      pe_->send(chip, o, at, kHeartbeatKey | chip, [this, o, chip, at] {
        Chip& peer = *chips_[o];
        peer.last_hb[chip] = std::max(peer.last_hb[chip], at);
      });
    }
  }
  if (!ch.sched.finished() || !ch.outstanding.empty()) {
    ch.sys.engine().call_at(now + cfg_.failover.heartbeat_period,
                            [this, chip] { emit_heartbeats(chip, 0); });
  } else {
    ch.hb_live = false;
  }
}

void ClusterScheduler::run(unsigned workers) {
  if (ran_) throw std::logic_error("ClusterScheduler::run called twice");
  ran_ = true;
  for (auto& ch : chips_) ch->sched.begin();
  if (armed_) {
    for (unsigned c = 0; c < chips_.size(); ++c) {
      chips_[c]->hb_live = true;
      chips_[c]->sys.engine().call_at(cfg_.failover.heartbeat_period,
                                      [this, c] { emit_heartbeats(c, 0); });
    }
  }
  pe_->run(workers);
  for (unsigned c = 0; c < chips_.size(); ++c) {
    Chip& ch = *chips_[c];
    ch.sched.finish();
    if (ch.crash_at != fault::kNever) {
      // The chip died mid-run: give every job it stranded a terminal
      // verdict (no notices -- a dead chip sends nothing) so the report
      // accounts for the loss instead of pretending.
      ch.sched.set_resolve_hook({});
      ch.crash_abandoned = ch.sched.abandon_unresolved(
          ch.crash_at, util::format("chip %u crashed at cycle %llu", c,
                                    static_cast<unsigned long long>(
                                        ch.crash_at)));
      part_.mark(c, machine::ChipHealth::Dead);
      ++stats_.dead_chips;
      stats_.abandoned_jobs += ch.crash_abandoned;
    } else if (!ch.sched.finished()) {
      throw std::logic_error("cluster run ended with unresolved jobs");
    }
  }
  stats_.chips = part_.chips();
  stats_.lookahead = pe_->lookahead();
  stats_.windows = pe_->stats().windows;
  for (auto& ch : chips_) {
    stats_.forwards += ch->forwards;
    stats_.notices += ch->notices_sent;
    stats_.xmesh_bytes += ch->bridge.bytes_sent();
    stats_.makespan = std::max(stats_.makespan, ch->sched.makespan());
    stats_.reforwarded += ch->reforwarded_jobs;
    stats_.quarantines += ch->quarantine_count;
    stats_.abandoned += ch->abandoned_jobs;
    stats_.dup_dropped += ch->dup_dropped;
    stats_.crc_rejects += ch->crc_rejects;
  }
  if (armed_) {
    // Fold every origin's health view into the partition map and surface
    // the sick-chip counters (own-view during the run keeps the parallel
    // executor race-free; the fold here is single-threaded).
    const unsigned k = part_.chips();
    for (unsigned h = 0; h < k; ++h) {
      std::uint64_t faults = 0, rehomed = 0, quarantined_by = 0;
      for (unsigned c = 0; c < k; ++c) {
        faults += chips_[c]->blamed[h];
        rehomed += chips_[c]->rehomed_from[h];
        if (chips_[c]->quarantined[h]) {
          ++quarantined_by;
          part_.mark(h, machine::ChipHealth::Quarantined);
        }
      }
      trace::Counters& cnt = chips_[h]->sched.counters();
      trace::Tracer* tr = chips_[h]->sys.machine().tracer();
      const auto expose = [&](const char* what, std::uint64_t v) {
        const trace::Counters::Id id =
            cnt.define(util::format("sched.cluster.chip%u.%s", h, what),
                       trace::Counters::Kind::Monotonic);
        cnt.set(id, static_cast<double>(v));
        // With tracing armed the registry is the tracer's, and a sample at
        // the makespan puts the verdict on the chip's counter track.
        if (tr != nullptr) {
          tr->sample(id, stats_.makespan, static_cast<double>(v));
        }
      };
      expose("faults", faults);
      expose("reforwarded", rehomed);
      expose("quarantined", quarantined_by);
    }
  }
}

const sim::ParallelStats& ClusterScheduler::parallel_stats() const {
  return pe_->stats();
}

const Scheduler& ClusterScheduler::chip_sched(unsigned chip) const {
  return chips_.at(chip)->sched;
}

const std::vector<std::string>& ClusterScheduler::notices(unsigned chip) const {
  return chips_.at(chip)->notices;
}

const std::vector<fault::FaultReport>& ClusterScheduler::cluster_faults(
    unsigned chip) const {
  return chips_.at(chip)->cfaults;
}

void ClusterScheduler::write_trace(std::ostream& os) const {
  if (!cfg_.trace) {
    throw std::logic_error("write_trace needs ClusterConfig::trace");
  }
  std::vector<trace::ChromeProcess> procs;
  procs.reserve(chips_.size());
  for (unsigned c = 0; c < chips_.size(); ++c) {
    procs.push_back(trace::ChromeProcess{
        util::format("chip %u (%u,%u)", c, part_.chip_row(c),
                     part_.chip_col(c)),
        chips_[c]->sys.machine().tracer()});
  }
  write_chrome_trace(os, procs);
}

std::string ClusterScheduler::health_footer() const {
  const unsigned k = part_.chips();
  std::string out = util::format(
      "failover: reforwarded=%llu quarantines=%llu abandoned=%llu "
      "dup_dropped=%llu crc_rejects=%llu dead_chips=%u abandoned_jobs=%llu\n",
      static_cast<unsigned long long>(stats_.reforwarded),
      static_cast<unsigned long long>(stats_.quarantines),
      static_cast<unsigned long long>(stats_.abandoned),
      static_cast<unsigned long long>(stats_.dup_dropped),
      static_cast<unsigned long long>(stats_.crc_rejects), stats_.dead_chips,
      static_cast<unsigned long long>(stats_.abandoned_jobs));
  out += "cluster health:\n";
  for (unsigned h = 0; h < k; ++h) {
    const trace::Counters& cnt = chips_[h]->sched.counters();
    out += util::format(
        "  chip %u: %s  faults=%.0f reforwarded=%.0f quarantined=%.0f\n", h,
        machine::to_string(part_.health_of(h)),
        cnt.value(util::format("sched.cluster.chip%u.faults", h)),
        cnt.value(util::format("sched.cluster.chip%u.reforwarded", h)),
        cnt.value(util::format("sched.cluster.chip%u.quarantined", h)));
  }
  return out;
}

std::string ClusterScheduler::report() const {
  if (!ran_) throw std::logic_error("ClusterScheduler::report before run");
  // Worker count and wall-clock are deliberately absent: these bytes are the
  // determinism contract compared across --parallel=N.
  std::string out = util::format(
      "=== epi-serve cluster %ux%u: %u chips x %ux%u cores ===\n",
      cfg_.chip_rows, cfg_.chip_cols, part_.chips(), part_.chip.rows,
      part_.chip.cols);
  out += util::format(
      "lookahead=%llu cycles  windows=%llu  makespan=%llu\n",
      static_cast<unsigned long long>(stats_.lookahead),
      static_cast<unsigned long long>(stats_.windows),
      static_cast<unsigned long long>(stats_.makespan));
  out += util::format(
      "xmesh: forwards=%llu notices=%llu bytes=%llu\n",
      static_cast<unsigned long long>(stats_.forwards),
      static_cast<unsigned long long>(stats_.notices),
      static_cast<unsigned long long>(stats_.xmesh_bytes));
  if (armed_) out += health_footer();
  for (unsigned c = 0; c < chips_.size(); ++c) {
    const Chip& ch = *chips_[c];
    out += util::format("\n--- chip %u (%u,%u) ---\n", c, part_.chip_row(c),
                        part_.chip_col(c));
    out += render_report(ch.sched);
    if (armed_) {
      if (!ch.decisions.empty()) {
        out += "recovery decisions:\n";
        for (const std::string& d : ch.decisions) out += "  " + d + "\n";
      }
      if (!ch.cfaults.empty()) {
        out += "cluster faults:\n";
        for (const fault::FaultReport& f : ch.cfaults) {
          out += "  " + fault::to_line(f) + "\n";
        }
      }
      const auto& inj = injector_->injections(c);
      if (!inj.empty()) {
        out += "injected:\n";
        for (const std::string& line : inj) out += "  " + line + "\n";
      }
    }
    if (!ch.notices.empty()) {
      out += "cross-chip notices:\n";
      for (const std::string& n : ch.notices) {
        out += "  " + n + "\n";
      }
    }
  }
  return out;
}

}  // namespace epi::sched
