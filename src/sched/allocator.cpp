#include "sched/allocator.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace epi::sched {

MeshAllocator::MeshAllocator(arch::MeshDims dims)
    : dims_(dims),
      used_(dims.core_count(), 0),
      quarantined_(dims.core_count(), 0),
      last_seq_(dims.core_count(), 0),
      free_(dims.core_count()) {}

bool MeshAllocator::rect_free(unsigned r0, unsigned c0, unsigned rows,
                              unsigned cols) const noexcept {
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      if (used_[(r0 + r) * dims_.cols + (c0 + c)]) return false;
    }
  }
  return true;
}

void MeshAllocator::mark(unsigned r0, unsigned c0, unsigned rows, unsigned cols,
                         bool used) {
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      std::uint8_t& cell = used_[(r0 + r) * dims_.cols + (c0 + c)];
      if (used) {
        cell = 1;
        --free_;
      } else {
        if (!cell) {
          throw std::logic_error("MeshAllocator::free of a core not allocated at (" +
                                 std::to_string(r0 + r) + "," + std::to_string(c0 + c) +
                                 ")");
        }
        cell = 0;
        ++free_;
      }
    }
  }
}

void MeshAllocator::stamp(unsigned r0, unsigned c0, unsigned rows, unsigned cols) {
  ++seq_;
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      last_seq_[(r0 + r) * dims_.cols + (c0 + c)] = seq_;
    }
  }
}

std::optional<Placement> MeshAllocator::place(unsigned rows, unsigned cols,
                                              bool allow_rotate) {
  if (rows == 0 || cols == 0) return std::nullopt;
  const auto try_shape = [&](unsigned pr, unsigned pc,
                             bool rotated) -> std::optional<Placement> {
    if (pr > dims_.rows || pc > dims_.cols || pr * pc > free_) return std::nullopt;
    for (unsigned r0 = 0; r0 + pr <= dims_.rows; ++r0) {
      for (unsigned c0 = 0; c0 + pc <= dims_.cols; ++c0) {
        if (rect_free(r0, c0, pr, pc)) {
          mark(r0, c0, pr, pc, true);
          stamp(r0, c0, pr, pc);
          return Placement{{r0, c0}, pr, pc, rotated};
        }
      }
    }
    return std::nullopt;
  };
  if (auto p = try_shape(rows, cols, false)) return p;
  if (allow_rotate && rows != cols) {
    if (auto p = try_shape(cols, rows, true)) return p;
  }
  return std::nullopt;
}

std::optional<Placement> MeshAllocator::place_near(
    unsigned rows, unsigned cols, bool allow_rotate,
    const std::vector<Placement>& anchors) {
  if (anchors.empty()) return place(rows, cols, allow_rotate);
  if (rows == 0 || cols == 0) return std::nullopt;
  // Scored exhaustive scan per orientation. Centres are doubled so the score
  // stays integral (a rect's centre sits on half-grid coordinates).
  const auto try_shape = [&](unsigned pr, unsigned pc,
                             bool rotated) -> std::optional<Placement> {
    if (pr > dims_.rows || pc > dims_.cols || pr * pc > free_) return std::nullopt;
    long best = -1;
    unsigned br = 0, bc = 0;
    for (unsigned r0 = 0; r0 + pr <= dims_.rows; ++r0) {
      for (unsigned c0 = 0; c0 + pc <= dims_.cols; ++c0) {
        if (!rect_free(r0, c0, pr, pc)) continue;
        long score = 0;
        const long cr = 2l * r0 + pr - 1;
        const long cc = 2l * c0 + pc - 1;
        for (const Placement& a : anchors) {
          const long ar = 2l * a.origin.row + a.rows - 1;
          const long ac = 2l * a.origin.col + a.cols - 1;
          score += std::abs(cr - ar) + std::abs(cc - ac);
        }
        if (best < 0 || score < best) {
          best = score;
          br = r0;
          bc = c0;
        }
      }
    }
    if (best < 0) return std::nullopt;
    mark(br, bc, pr, pc, true);
    stamp(br, bc, pr, pc);
    return Placement{{br, bc}, pr, pc, rotated};
  };
  if (auto p = try_shape(rows, cols, false)) return p;
  if (allow_rotate && rows != cols) {
    if (auto p = try_shape(cols, rows, true)) return p;
  }
  return std::nullopt;
}

void MeshAllocator::free(const Placement& p) {
  if (p.origin.row + p.rows > dims_.rows || p.origin.col + p.cols > dims_.cols) {
    throw std::logic_error("MeshAllocator::free of a rectangle outside the mesh");
  }
  mark(p.origin.row, p.origin.col, p.rows, p.cols, false);
}

void MeshAllocator::quarantine(const Placement& p) {
  if (p.origin.row + p.rows > dims_.rows || p.origin.col + p.cols > dims_.cols) {
    throw std::logic_error("MeshAllocator::quarantine of a rectangle outside the mesh");
  }
  for (unsigned r = 0; r < p.rows; ++r) {
    for (unsigned c = 0; c < p.cols; ++c) {
      const std::size_t cell =
          (p.origin.row + r) * dims_.cols + (p.origin.col + c);
      if (!used_[cell]) {
        throw std::logic_error("MeshAllocator::quarantine of a core not allocated");
      }
      if (!quarantined_[cell]) {
        quarantined_[cell] = 1;
        ++quarantined_count_;
      }
    }
  }
}

bool MeshAllocator::rect_healthy(unsigned r0, unsigned c0, unsigned rows,
                                 unsigned cols) const noexcept {
  for (unsigned r = 0; r < rows; ++r) {
    for (unsigned c = 0; c < cols; ++c) {
      if (quarantined_[(r0 + r) * dims_.cols + (c0 + c)]) return false;
    }
  }
  return true;
}

bool MeshAllocator::fits_ever(unsigned rows, unsigned cols,
                              bool allow_rotate) const noexcept {
  if (rows == 0 || cols == 0) return false;
  const auto shape_fits = [&](unsigned pr, unsigned pc) noexcept {
    if (pr > dims_.rows || pc > dims_.cols) return false;
    if (quarantined_count_ == 0) return true;
    for (unsigned r0 = 0; r0 + pr <= dims_.rows; ++r0) {
      for (unsigned c0 = 0; c0 + pc <= dims_.cols; ++c0) {
        if (rect_healthy(r0, c0, pr, pc)) return true;
      }
    }
    return false;
  };
  if (shape_fits(rows, cols)) return true;
  return allow_rotate && rows != cols && shape_fits(cols, rows);
}

unsigned MeshAllocator::largest_free_rect() const noexcept {
  // Classic largest-rectangle-of-zeros: per-column free-run histogram, then
  // for each cell extend left/right at its height. O(rows * cols^2) on an
  // 8x8 grid is nothing.
  std::vector<unsigned> height(dims_.cols, 0);
  unsigned best = 0;
  for (unsigned r = 0; r < dims_.rows; ++r) {
    for (unsigned c = 0; c < dims_.cols; ++c) {
      height[c] = used_[r * dims_.cols + c] ? 0 : height[c] + 1;
    }
    for (unsigned c = 0; c < dims_.cols; ++c) {
      if (height[c] == 0) continue;
      unsigned h = height[c];
      for (unsigned c2 = c; c2 < dims_.cols && height[c2] > 0; ++c2) {
        h = std::min(h, height[c2]);
        best = std::max(best, h * (c2 - c + 1));
      }
    }
  }
  return best;
}

double MeshAllocator::fragmentation() const noexcept {
  if (free_ == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_rect()) / static_cast<double>(free_);
}

}  // namespace epi::sched
