#include "sched/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/fmt.hpp"

namespace epi::sched {

sim::Cycles percentile(std::vector<sim::Cycles> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

RunStats summarise(const Scheduler& sched) {
  RunStats rs;
  rs.makespan = sched.makespan();
  rs.utilisation = sched.utilisation();

  std::map<std::string, TenantStats> tenants;  // ordered: deterministic output
  std::map<std::string, std::vector<sim::Cycles>> tenant_waits, tenant_tats;
  std::vector<sim::Cycles> waits, tats;
  struct GraphAgg {
    sim::Cycles first_arrival = std::numeric_limits<sim::Cycles>::max();
    sim::Cycles last_finish = 0;
    double service_sum = 0.0;
    bool all_completed = true;
  };
  std::map<std::uint32_t, GraphAgg> graph_aggs;  // ordered: deterministic

  for (const JobRecord& rec : sched.records()) {
    ++rs.jobs;
    TenantStats& ts = tenants[rec.spec.tenant];
    ts.tenant = rec.spec.tenant;
    ++ts.submitted;
    if (rec.spec.deadline != 0) {
      ++rs.deadlines;
      if (rec.verdict == Verdict::Completed && rec.deadline_met) ++rs.deadlines_met;
    }
    if (rec.recovery == Recovery::Retried) ++rs.retried;
    if (rec.recovery == Recovery::Relocated) ++rs.relocated;
    if (rec.spec.graph != 0) {
      GraphAgg& ga = graph_aggs[rec.spec.graph];
      ga.first_arrival = std::min(ga.first_arrival, rec.spec.arrival);
      if (rec.verdict == Verdict::Completed) {
        ga.last_finish = std::max(ga.last_finish, rec.finished);
        ga.service_sum += static_cast<double>(rec.service());
      } else {
        ga.all_completed = false;
      }
    }
    switch (rec.verdict) {
      case Verdict::Completed:
        ++rs.completed;
        ++ts.completed;
        ts.core_cycles += static_cast<double>(rec.cores()) *
                          static_cast<double>(rec.service());
        waits.push_back(rec.queue_wait());
        tats.push_back(rec.turnaround());
        tenant_waits[rec.spec.tenant].push_back(rec.queue_wait());
        tenant_tats[rec.spec.tenant].push_back(rec.turnaround());
        break;
      case Verdict::Rejected: ++rs.rejected; ++ts.rejected; break;
      case Verdict::TimedOut: ++rs.timed_out; ++ts.timed_out; break;
      case Verdict::Failed: ++rs.failed; ++ts.failed; break;
      case Verdict::Pending: break;  // only possible before run()
    }
  }

  rs.faults_detected = static_cast<unsigned>(sched.fault_log().size());
  rs.cores_quarantined = sched.allocator().quarantined_cores();
  rs.graphs = static_cast<unsigned>(graph_aggs.size());
  rs.handoff_scratch_bytes = sched.handoff_scratch_bytes();
  rs.handoff_dram_bytes = sched.handoff_dram_bytes();
  std::vector<sim::Cycles> e2es;
  double overlap_sum = 0.0;
  for (const auto& [gid, ga] : graph_aggs) {
    (void)gid;
    if (!ga.all_completed || ga.last_finish < ga.first_arrival) continue;
    ++rs.graphs_completed;
    const sim::Cycles e2e = ga.last_finish - ga.first_arrival;
    e2es.push_back(e2e);
    if (e2e > 0) overlap_sum += ga.service_sum / static_cast<double>(e2e);
  }
  rs.graph_e2e_p50 = percentile(e2es, 50.0);
  rs.graph_e2e_p99 = percentile(std::move(e2es), 99.0);
  if (rs.graphs_completed > 0) {
    rs.stage_overlap = overlap_sum / rs.graphs_completed;
  }
  if (rs.makespan > 0) {
    rs.graph_throughput = static_cast<double>(rs.graphs_completed) /
                          (static_cast<double>(rs.makespan) / 1e6);
  }
  rs.wait_p50 = percentile(waits, 50.0);
  rs.wait_p99 = percentile(waits, 99.0);
  rs.turnaround_p50 = percentile(tats, 50.0);
  rs.turnaround_p99 = percentile(tats, 99.0);
  if (rs.makespan > 0) {
    rs.throughput = static_cast<double>(rs.completed) /
                    (static_cast<double>(rs.makespan) / 1e6);
  }
  for (auto& [name, ts] : tenants) {
    ts.wait_p50 = percentile(tenant_waits[name], 50.0);
    ts.wait_p99 = percentile(tenant_waits[name], 99.0);
    ts.turnaround_p50 = percentile(tenant_tats[name], 50.0);
    ts.turnaround_p99 = percentile(tenant_tats[name], 99.0);
    rs.tenants.push_back(std::move(ts));
  }
  return rs;
}

std::string render_report(const Scheduler& sched) {
  const RunStats rs = summarise(sched);
  std::string out;
  out += "== epi-serve run report ==\n";
  out += util::format(
      "jobs %u | completed %u rejected %u timed-out %u failed %u\n", rs.jobs,
      rs.completed, rs.rejected, rs.timed_out, rs.failed);
  out += util::format(
      "makespan %llu cycles | throughput %.3f jobs/Mcycle | utilisation %.1f%% "
      "| peak resident groups %u\n",
      static_cast<unsigned long long>(rs.makespan), rs.throughput,
      100.0 * rs.utilisation, sched.peak_resident());
  out += util::format(
      "queue wait p50/p99 %llu/%llu | turnaround p50/p99 %llu/%llu\n",
      static_cast<unsigned long long>(rs.wait_p50),
      static_cast<unsigned long long>(rs.wait_p99),
      static_cast<unsigned long long>(rs.turnaround_p50),
      static_cast<unsigned long long>(rs.turnaround_p99));
  if (rs.deadlines > 0) {
    out += util::format("deadlines met %u/%u (%.1f%%)\n", rs.deadlines_met,
                        rs.deadlines,
                        100.0 * rs.deadlines_met / rs.deadlines);
  }
  if (rs.faults_detected > 0 || rs.cores_quarantined > 0) {
    out += util::format(
        "faults detected %u | recovered retried %u relocated %u | cores "
        "quarantined %u\n",
        rs.faults_detected, rs.retried, rs.relocated, rs.cores_quarantined);
  }
  out += util::format("final fragmentation %.3f (%u cores free)\n",
                      sched.allocator().fragmentation(),
                      sched.allocator().free_cores());

  if (rs.graphs > 0) {
    out += "\n-- pipelines --\n";
    out += util::format(
        "graphs %u | completed %u | e2e p50/p99 %llu/%llu | graphs/Mcycle "
        "%.3f\n",
        rs.graphs, rs.graphs_completed,
        static_cast<unsigned long long>(rs.graph_e2e_p50),
        static_cast<unsigned long long>(rs.graph_e2e_p99),
        rs.graph_throughput);
    out += util::format(
        "stage overlap %.2fx | handoff scratch %llu B dram %llu B\n",
        rs.stage_overlap,
        static_cast<unsigned long long>(rs.handoff_scratch_bytes),
        static_cast<unsigned long long>(rs.handoff_dram_bytes));
  }

  out += "\n-- tenants --\n";
  for (const TenantStats& ts : rs.tenants) {
    out += util::format(
        "%-10s sub %3u ok %3u rej %2u to %2u fail %2u | wait p50/p99 "
        "%llu/%llu | core-cycles %.0f\n",
        ts.tenant.c_str(), ts.submitted, ts.completed, ts.rejected, ts.timed_out,
        ts.failed, static_cast<unsigned long long>(ts.wait_p50),
        static_cast<unsigned long long>(ts.wait_p99), ts.core_cycles);
  }

  out += "\n-- jobs --\n";
  for (const JobRecord& rec : sched.records()) {
    out += util::format(
        "job %3u %-7s %-8s %ux%u prio %u arrive %8llu", rec.spec.id,
        to_string(rec.spec.kind), to_string(rec.verdict), rec.spec.rows,
        rec.spec.cols, rec.spec.priority,
        static_cast<unsigned long long>(rec.spec.arrival));
    if (rec.verdict == Verdict::Completed) {
      out += util::format(
          " | at (%u,%u) %ux%u wait %7llu service %8llu attempts %u%s",
          rec.placed_row, rec.placed_col, rec.granted_rows, rec.granted_cols,
          static_cast<unsigned long long>(rec.queue_wait()),
          static_cast<unsigned long long>(rec.service()), rec.attempts,
          rec.spec.deadline == 0 ? ""
          : rec.deadline_met    ? " deadline-met"
                                : " DEADLINE-MISSED");
      if (rec.recovery == Recovery::Retried) out += " retried";
      if (rec.recovery == Recovery::Relocated) out += " relocated";
    } else if (!rec.detail.empty()) {
      out += " | " + rec.detail;
    }
    if (rec.spec.graph != 0) {
      out += util::format(" | graph %u stage %u", rec.spec.graph, rec.spec.stage);
    }
    out += "\n";
  }
  return out;
}

}  // namespace epi::sched
