#include "sched/dag.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "dma/descriptor.hpp"
#include "util/fmt.hpp"

namespace epi::sched {

namespace {

using arch::Addr;

/// Per-core share of a tensor split across the group, rounded up to keep
/// every DMA chunk 8-byte aligned (edge bytes are 512-aligned by draw and
/// validation, so shares never straddle an element).
std::uint32_t core_share(std::uint32_t bytes, unsigned cores) {
  const std::uint32_t share = (bytes + cores - 1) / std::max(1u, cores);
  return (share + 7u) & ~7u;
}

/// Consumer-side pull of this core's share of one in-edge, in 2 KB chunks on
/// DMA channel 0 (channel 1 belongs to the shmem runtime). Scratch transport
/// reads the producer core's staging window over the mesh (the DMA channel's
/// OnChip route, reserving the path like any chained-descriptor transfer);
/// DRAM transport reads the spill buffer over the eLink (FromExternal route).
sim::Op<void> pull_tensor(device::CoreCtx& ctx, const HandoffPull& p) {
  const unsigned cores = ctx.group_rows() * ctx.group_cols();
  const std::uint32_t share = core_share(p.bytes, cores);
  const std::uint32_t lo = ctx.group_index() * share;
  if (lo >= p.bytes) co_return;
  const std::uint32_t mine = std::min(share, p.bytes - lo);
  const unsigned pcores = std::max(1u, p.producer.size());
  const unsigned pi = ctx.group_index() % pcores;
  const arch::CoreCoord src_core{p.producer.origin.row + pi / p.producer.cols,
                                 p.producer.origin.col + pi % p.producer.cols};
  for (std::uint32_t off = 0; off < mine; off += kDagChunk) {
    const std::uint32_t chunk = std::min(kDagChunk, mine - off);
    const Addr stage_off = kDagStaging + off % kDagStagingWrap;
    const Addr dst = ctx.my_global(stage_off);
    const Addr src = p.scratch ? ctx.global(src_core, stage_off)
                               : p.dram_base + lo + off;
    const auto d = dma::DmaDescriptor::linear(dst, src, chunk);
    co_await ctx.dma_set_desc();
    co_await ctx.dma_start(0, d);
    co_await ctx.dma_wait(0);
  }
}

/// Producer-side spill of this core's share of one out-edge to its DRAM
/// buffer, in 2 KB eLink write transactions (the Table II/III pattern, so
/// concurrent stages genuinely fight for the off-chip link).
sim::Op<void> spill_tensor(device::CoreCtx& ctx, const HandoffSpill& s) {
  const unsigned cores = ctx.group_rows() * ctx.group_cols();
  const std::uint32_t share = core_share(s.bytes, cores);
  const std::uint32_t lo = ctx.group_index() * share;
  if (lo >= s.bytes) co_return;
  const std::uint32_t mine = std::min(share, s.bytes - lo);
  for (std::uint32_t off = 0; off < mine; off += kDagChunk) {
    const std::uint32_t chunk = std::min(kDagChunk, mine - off);
    co_await ctx.external_write_block(s.dram_base + lo + off,
                                      ctx.my_global(kDagStaging + off % kDagStagingWrap),
                                      chunk);
  }
}

struct StageWrap {
  device::KernelFn inner;
  std::vector<HandoffPull> pulls;
  std::vector<HandoffSpill> spills;
};

sim::Op<void> stage_kernel(device::CoreCtx& ctx, std::shared_ptr<StageWrap> w) {
  for (const HandoffPull& p : w->pulls) co_await pull_tensor(ctx, p);
  co_await w->inner(ctx);
  for (const HandoffSpill& s : w->spills) co_await spill_tensor(ctx, s);
}

}  // namespace

void validate_graph(const JobGraph& g) {
  if (g.id == 0) throw std::invalid_argument("JobGraph::id must be nonzero");
  if (g.stages.empty()) throw std::invalid_argument("JobGraph has no stages");
  if (g.stages.size() > 8) {
    throw std::invalid_argument("JobGraph exceeds 8 stages");
  }
  for (const StageSpec& st : g.stages) {
    if (st.rows == 0 || st.cols == 0) {
      throw std::invalid_argument("JobGraph stage shape must be at least 1x1");
    }
    if (st.kind == JobKind::Custom) {
      throw std::invalid_argument(
          "JobGraph stages cannot be Custom (graphs carry no inline programs)");
    }
  }
  for (const TensorEdge& e : g.edges) {
    if (e.to >= g.stages.size() || e.from >= e.to) {
      throw std::invalid_argument(util::format(
          "JobGraph edge %u->%u is not forward-directed within %zu stages",
          e.from, e.to, g.stages.size()));
    }
    if (e.bytes == 0) throw std::invalid_argument("JobGraph edge carries 0 bytes");
  }
}

std::vector<JobSpec> expand_graph(const JobGraph& g, std::uint32_t first_job_id) {
  validate_graph(g);
  std::vector<JobSpec> out;
  out.reserve(g.stages.size());
  for (unsigned i = 0; i < g.stages.size(); ++i) {
    const StageSpec& st = g.stages[i];
    JobSpec s;
    s.id = first_job_id + i;
    s.tenant = g.tenant;
    s.kind = st.kind;
    s.rows = st.rows;
    s.cols = st.cols;
    s.iters = st.iters;
    s.block = st.block;
    s.priority = g.priority;
    s.arrival = g.arrival;
    s.timeout = g.timeout;
    s.graph = g.id;
    s.stage = i;
    s.graph_stages = static_cast<unsigned>(g.stages.size());
    out.push_back(std::move(s));
  }
  std::vector<char> has_out(g.stages.size(), 0);
  for (const TensorEdge& e : g.edges) {
    out[e.to].deps.emplace_back(first_job_id + e.from, e.bytes);
    has_out[e.from] = 1;
  }
  // The chain deadline binds the sink stages: the request is served when its
  // last tensors land, not when some interior stage retires.
  if (g.deadline != 0) {
    for (unsigned i = 0; i < g.stages.size(); ++i) {
      if (!has_out[i]) out[i].deadline = g.deadline;
    }
  }
  return out;
}

namespace {

/// Tensor bytes a stage produces per out-edge: its cores' block tiles,
/// clamped and 512-aligned so every per-core DMA share stays 8-aligned.
std::uint32_t edge_bytes(const StageSpec& s) {
  std::uint64_t b = static_cast<std::uint64_t>(s.rows) * s.cols * s.block *
                    s.block * sizeof(float);
  b = std::clamp<std::uint64_t>(b, 512, 32768);
  return static_cast<std::uint32_t>((b + 511u) & ~std::uint64_t{511});
}

StageSpec draw_stage(sim::Rng& rng, JobKind kind) {
  // Small shapes only: pipelines stress co-placement and handoff, and small
  // rectangles leave the allocator room to put consumers next to producers.
  constexpr unsigned kShapes[][2] = {{1, 2}, {2, 2}, {2, 4}};
  const auto& sh = kShapes[rng.next_below(3)];
  StageSpec st;
  st.kind = kind;
  st.rows = sh[0];
  st.cols = sh[1];
  st.iters = 1 + static_cast<unsigned>(rng.next_below(2));
  switch (kind) {
    case JobKind::Matmul: st.block = 8u << rng.next_below(2); break;   // 8/16
    case JobKind::Stencil: st.block = 8 + 4 * static_cast<unsigned>(rng.next_below(3)); break;
    case JobKind::Offload: st.block = 16u << rng.next_below(2); break; // 16/32
    default: st.block = 16; break;
  }
  return st;
}

}  // namespace

JobGraph draw_pipeline(sim::Rng& rng, unsigned max_stages) {
  // Template library. Index order is load-bearing for the rng stream: the
  // two-stage chains come first so a 2-stage budget draws from a prefix.
  //   0: offload -> matmul              (preprocess, then dense compute)
  //   1: matmul -> offload              (compute, then stream results out)
  //   2: offload -> stencil -> offload  (in, iterate, out)
  //   3: offload -> {matmul, stencil}   (fork: one input feeds two consumers)
  const unsigned templates = max_stages >= 3 ? 4u : 2u;
  const unsigned t = static_cast<unsigned>(rng.next_below(templates));
  JobGraph g;
  switch (t) {
    case 0:
      g.stages = {draw_stage(rng, JobKind::Offload), draw_stage(rng, JobKind::Matmul)};
      break;
    case 1:
      g.stages = {draw_stage(rng, JobKind::Matmul), draw_stage(rng, JobKind::Offload)};
      break;
    case 2:
      g.stages = {draw_stage(rng, JobKind::Offload), draw_stage(rng, JobKind::Stencil),
                  draw_stage(rng, JobKind::Offload)};
      break;
    default:
      g.stages = {draw_stage(rng, JobKind::Offload), draw_stage(rng, JobKind::Matmul),
                  draw_stage(rng, JobKind::Stencil)};
      break;
  }
  if (t == 3) {
    g.edges = {{0, 1, edge_bytes(g.stages[0])}, {0, 2, edge_bytes(g.stages[0])}};
  } else {
    for (unsigned i = 0; i + 1 < g.stages.size(); ++i) {
      g.edges.push_back({i, i + 1, edge_bytes(g.stages[i])});
    }
  }
  return g;
}

bool rects_adjacent(const Placement& a, const Placement& b) noexcept {
  const bool rows_touch = a.origin.row <= b.origin.row + b.rows &&
                          b.origin.row <= a.origin.row + a.rows;
  const bool cols_touch = a.origin.col <= b.origin.col + b.cols &&
                          b.origin.col <= a.origin.col + a.cols;
  return rows_touch && cols_touch;
}

device::KernelFn wrap_stage_kernel(device::KernelFn inner,
                                   std::vector<HandoffPull> pulls,
                                   std::vector<HandoffSpill> spills) {
  auto w = std::make_shared<StageWrap>(
      StageWrap{std::move(inner), std::move(pulls), std::move(spills)});
  return [w](device::CoreCtx& ctx) -> sim::Op<void> { return stage_kernel(ctx, w); };
}

}  // namespace epi::sched
