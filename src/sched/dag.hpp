#pragma once
// epi-dag: job-graph scheduling -- multi-kernel pipelines for epi-serve.
//
// Real accelerator traffic is not independent kernel launches: one request is
// a *chain* of kernels with producer->consumer tensors between the stages
// (SET, ISCA 2023, schedules exactly such layer graphs across tiled meshes
// with inter-layer buffer/bandwidth cost models). A JobGraph packages that
// shape for the serving runtime: every stage is an existing sched::JobKind,
// and every edge carries the tensor bytes handed from producer to consumer.
//
// The scheduler consumes graphs as ordinary JobSpecs (expand_graph) tagged
// with graph/stage/deps fields, and gains three behaviours on top:
//
//   * co-placement   -- MeshAllocator::place_near scores candidate rectangles
//     by Manhattan distance to the completed producers' rectangles, so a
//     consumer lands next to the data it is about to pull;
//   * tensor handoff -- producers spill each out-edge to a shared-DRAM buffer
//     (the default transport); a consumer placed adjacent to its producer
//     pulls scratchpad-to-scratchpad over the mesh instead (the same chained
//     DMA path epi-shmem's put_with_signal rides), skipping the eLink;
//   * stage overlap  -- stage N+1 of request k runs while stage N of request
//     k+1 runs; SchedConfig::pipeline_overlap=false serialises whole graphs
//     for the abl_dag baseline comparison.
//
// The handoff staging window lives at [kDagStaging, kDagStagingEnd) in each
// core's scratchpad -- inside the region the serving kernels treat as their
// (modelled) code bank, above the runtime-reserved words and below every
// kernel's data layout (stencil flags at 0x2600+, matmul blocks at 0x4000+,
// the shmem heap at 0x2000+ is re-initialised by its Group constructor at
// launch, after the pulls of the *previous* occupant are long finished).

#include <cstdint>
#include <string>
#include <vector>

#include "arch/address_map.hpp"
#include "device/core_ctx.hpp"
#include "sched/allocator.hpp"
#include "sched/job.hpp"
#include "sim/random.hpp"

namespace epi::sched {

/// Handoff staging window in every core's scratchpad (bytes pulled from a
/// producer land here; bytes spilled to DRAM stream from here). Chunk offsets
/// wrap modulo kDagStagingWrap so chunk ends stay below kDagStagingEnd.
inline constexpr arch::Addr kDagStaging = 0x0200;
inline constexpr arch::Addr kDagStagingEnd = 0x2000;
inline constexpr std::uint32_t kDagChunk = 0x0800;       // 2 KB per transfer
inline constexpr std::uint32_t kDagStagingWrap = 0x1000;

/// A producer->consumer tensor between two stages (requires from < to, which
/// makes every valid graph acyclic by construction).
struct TensorEdge {
  unsigned from = 0;
  unsigned to = 0;
  std::uint32_t bytes = 0;
};

/// One stage of a pipeline: an existing serving kernel plus its shape/work
/// parameters (the JobSpec fields that are per-stage, not per-request).
struct StageSpec {
  JobKind kind = JobKind::Offload;
  unsigned rows = 1;
  unsigned cols = 1;
  unsigned iters = 1;
  unsigned block = 16;
};

/// A multi-kernel serving request: stages wired by tensor edges, sharing one
/// arrival/priority/SLO envelope. `deadline` applies to the sink stages (the
/// whole chain must finish by it); `timeout` guards every stage's queue wait.
struct JobGraph {
  std::uint32_t id = 0;  // nonzero; 0 marks a standalone JobSpec
  std::string tenant = "default";
  unsigned priority = 0;
  sim::Cycles arrival = 0;
  sim::Cycles deadline = 0;
  sim::Cycles timeout = 0;
  std::vector<StageSpec> stages;
  std::vector<TensorEdge> edges;
};

/// Throws std::invalid_argument when the graph is malformed (zero id, empty
/// or oversized stage list, Custom stages, edges out of range or not
/// forward-directed, zero-byte tensors).
void validate_graph(const JobGraph& g);

/// Expand a validated graph into per-stage JobSpecs with consecutive ids
/// starting at `first_job_id`, graph/stage/deps fields filled from the edges.
[[nodiscard]] std::vector<JobSpec> expand_graph(const JobGraph& g,
                                                std::uint32_t first_job_id);

/// Draw a pipeline from the template library (linear offload/matmul/stencil
/// chains plus one fork), at most `max_stages` stages. Stages/edges only;
/// identity and SLO fields are the caller's to fill. Deterministic function
/// of the rng stream.
[[nodiscard]] JobGraph draw_pipeline(sim::Rng& rng, unsigned max_stages = 3);

/// Whether two granted rectangles touch or overlap (zero row gap AND zero
/// column gap) -- the adjacency test for scratchpad-to-scratchpad handoff.
[[nodiscard]] bool rects_adjacent(const Placement& a, const Placement& b) noexcept;

// ---- stage kernels ---------------------------------------------------------
// A stage kernel is the stage's ordinary serving kernel wrapped between a
// pull prologue (consumer side: fetch each in-edge's tensor share) and a
// spill epilogue (producer side: stream each out-edge to its DRAM buffer).
// The wrapper adds no barriers: each core's pulls cover its own share, so
// the inner kernel's own synchronisation is undisturbed.

/// One in-edge to pull before the inner kernel runs. When `scratch` is set
/// the bytes come core-to-core over the mesh from the producer's (freed but
/// unreused -- the scheduler checks placement epochs) rectangle; otherwise
/// from the producer's DRAM spill buffer over the eLink.
struct HandoffPull {
  bool scratch = false;
  device::GroupInfo producer{};  // producer's granted rectangle
  arch::Addr dram_base = 0;      // producer's spill buffer for this edge
  std::uint32_t bytes = 0;
};

/// One out-edge to spill after the inner kernel finishes.
struct HandoffSpill {
  arch::Addr dram_base = 0;
  std::uint32_t bytes = 0;
};

/// Wrap a stage's kernel with its pulls and spills.
[[nodiscard]] device::KernelFn wrap_stage_kernel(device::KernelFn inner,
                                                 std::vector<HandoffPull> pulls,
                                                 std::vector<HandoffSpill> spills);

}  // namespace epi::sched
