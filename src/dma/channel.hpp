#pragma once
// Per-eCore DMA engine: two channels (E_DMA_0 / E_DMA_1), each of which can
// walk a chain of 2D descriptors (paper sections II and VI).
//
// A started channel runs as its own simulation process. Data moves in
// chunks: each chunk's elements are committed functionally (respecting the
// descriptor's strides) and its duration is the maximum of the DMA engine's
// own transaction rate (2.4 cycles/transaction, i.e. ~2 GB/s for DWORD
// streams -- Figure 2) and the network path occupancy, so concurrent
// streams contend realistically on mesh links and on the eLink.

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/coords.hpp"
#include "arch/timing.hpp"
#include "dma/descriptor.hpp"
#include "fault/crc.hpp"
#include "fault/injector.hpp"
#include "mem/memory_system.hpp"
#include "noc/elink.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"
#include "trace/tracer.hpp"

namespace epi::dma {

class DmaChannel {
public:
  DmaChannel(arch::CoreCoord owner, unsigned index, const arch::MachineConfig& cfg,
             sim::Engine& engine, mem::MemorySystem& mem, noc::MeshNetwork& mesh,
             noc::ELink& elink_write, noc::ELink& elink_read)
      : owner_(owner),
        index_(index),
        name_("dma" + std::to_string(index) + "@" + arch::to_string(owner)),
        timing_(&cfg.timing),
        model_bank_conflicts_(cfg.model_bank_conflicts),
        engine_(&engine),
        mem_(&mem),
        mesh_(&mesh),
        elink_write_(&elink_write),
        elink_read_(&elink_read),
        done_(engine) {}

  DmaChannel(const DmaChannel&) = delete;
  DmaChannel& operator=(const DmaChannel&) = delete;

  [[nodiscard]] bool busy() const noexcept { return busy_; }

  /// e_dma_start(): kick off a descriptor chain. The descriptor contents are
  /// copied, so the caller's storage may be reused immediately. Throws if
  /// the channel is already busy (starting a busy channel is a programming
  /// error on real hardware too).
  void start(const DmaDescriptor& desc) {
    if (busy_) throw std::logic_error("e_dma_start on a busy DMA channel");
    busy_ = true;
    chain_.clear();
    for (const DmaDescriptor* d = &desc; d != nullptr; d = d->chain) {
      chain_.push_back(*d);
      chain_.back().chain = nullptr;
      if (chain_.size() > 64) throw std::logic_error("DMA descriptor chain too long (cycle?)");
    }
    process_ = sim::spawn(*engine_, run_chain(), 0, name_);
  }

  /// e_dma_wait(): suspend until the channel is idle.
  sim::Op<void> wait() {
    while (busy_) co_await done_.wait();
    process_.rethrow_if_error();
  }

  [[nodiscard]] std::uint64_t bytes_moved() const noexcept { return bytes_moved_; }

  /// Attach (or detach, with nullptr) a tracer; chain/descriptor spans and
  /// per-chunk commit instants land on this channel's own track.
  void set_trace(trace::Tracer* t) {
    trace_ = t;
    trace_track_ = t != nullptr ? t->dma_track(owner_, index_) : 0;
  }

  /// Attach a fault injector: external-route chunks become CRC-checked with
  /// bounded retry, and a dead owner core's descriptor setup parks.
  void set_faults(fault::FaultInjector* f) noexcept { faults_ = f; }

private:
  /// Bounded retry for CRC-failed external transfers: kRetryBackoff << n
  /// cycles before attempt n+1, up to kTransferRetries recommits.
  static constexpr unsigned kTransferRetries = 4;
  static constexpr sim::Cycles kRetryBackoff = 64;

  sim::Op<void> run_chain() {
    try {
      if (trace_ != nullptr) {
        trace_->begin(trace_track_, trace::Phase::Comm, "chain", engine_->now());
      }
      co_await sim::delay(*engine_, timing_->dma_channel_latency_cycles);
      for (std::size_t i = 0; i < chain_.size(); ++i) {
        if (i > 0) co_await sim::delay(*engine_, timing_->dma_chain_latency_cycles);
        if (trace_ != nullptr) {
          trace_->begin(trace_track_, trace::Phase::Comm, "descriptor", engine_->now());
        }
        co_await run_descriptor(chain_[i]);
        if (trace_ != nullptr) trace_->end(trace_track_, engine_->now());
      }
      if (trace_ != nullptr) trace_->end(trace_track_, engine_->now());
    } catch (...) {
      // Release waiters before propagating, so e_dma_wait() observes the
      // error through the process record instead of hanging forever.
      busy_ = false;
      done_.notify_all();
      throw;
    }
    busy_ = false;
    done_.notify_all();
  }

  sim::Op<void> run_descriptor(DmaDescriptor d) {
    const auto esz = static_cast<std::uint32_t>(static_cast<std::uint8_t>(d.elem));
    const std::uint32_t chunk_elems =
        std::max<std::uint32_t>(1, timing_->dma_chunk_bytes / esz);

    // Classify the route once: descriptors cannot straddle windows.
    const Route route = classify(d.src, d.dst);

    arch::Addr src = d.src;
    arch::Addr dst = d.dst;
    std::uint32_t pending = 0;  // elements accumulated into current chunk
    std::vector<Run> chunk;

    for (std::uint32_t o = 0; o < d.outer_count; ++o) {
      for (std::uint32_t i = 0; i < d.inner_count; ++i) {
        // Coalesce elements that extend the previous run contiguously on
        // both sides into one functional copy. A run never crosses a 1 MB
        // address window: the window decides how an address resolves
        // (local alias vs. core vs. external), so crossing one could change
        // where bytes land relative to the element-at-a-time walk.
        if (!chunk.empty()) {
          Run& r = chunk.back();
          if (r.src + static_cast<arch::Addr>(r.elems) * esz == src &&
              r.dst + static_cast<arch::Addr>(r.elems) * esz == dst &&
              ((r.src ^ (src + esz - 1)) >> 20) == 0 &&
              ((r.dst ^ (dst + esz - 1)) >> 20) == 0) {
            ++r.elems;
          } else {
            chunk.push_back(Run{src, dst, 1});
          }
        } else {
          chunk.push_back(Run{src, dst, 1});
        }
        src += static_cast<arch::Addr>(d.src_inner_stride);
        dst += static_cast<arch::Addr>(d.dst_inner_stride);
        if (++pending == chunk_elems) {
          co_await flush_chunk(chunk, pending, esz, route);
          pending = 0;
        }
      }
      src += static_cast<arch::Addr>(d.src_outer_stride);
      dst += static_cast<arch::Addr>(d.dst_outer_stride);
    }
    if (pending > 0) co_await flush_chunk(chunk, pending, esz, route);
  }

  struct Route {
    enum Kind { OnChip, ToExternal, FromExternal, Local } kind = Local;
    arch::CoreCoord mesh_src{};
    arch::CoreCoord mesh_dst{};
  };

  [[nodiscard]] Route classify(arch::Addr src, arch::Addr dst) const {
    const auto owner_of = [&](arch::Addr a) -> arch::CoreCoord {
      if (arch::AddressMap::is_local_alias(a)) return owner_;
      if (auto c = mem_->map().core_of(a)) return *c;
      return owner_;  // unreachable for valid descriptors
    };
    const bool src_ext = mem_->map().is_external(src);
    const bool dst_ext = mem_->map().is_external(dst);
    if (src_ext && dst_ext) throw std::logic_error("DMA external-to-external unsupported");
    Route r;
    if (dst_ext) {
      r.kind = Route::ToExternal;
    } else if (src_ext) {
      r.kind = Route::FromExternal;
    } else {
      r.mesh_src = owner_of(src);
      r.mesh_dst = owner_of(dst);
      r.kind = r.mesh_src == r.mesh_dst ? Route::Local : Route::OnChip;
    }
    return r;
  }

  /// One coalesced element run: `elems` elements contiguous on both sides.
  struct Run {
    arch::Addr src;
    arch::Addr dst;
    std::uint32_t elems;
  };

  sim::Op<void> flush_chunk(std::vector<Run>& chunk, std::uint32_t elems,
                            std::uint32_t esz, Route route) {
    const std::uint32_t bytes = elems * esz;
    // The engine itself issues one transaction per element at 2.4 cycles
    // (coalescing is a host-side speedup; the modelled cost stays per
    // element, so completion cycles are unchanged).
    const auto engine_cycles = static_cast<sim::Cycles>(
        timing_->dma_cycles_per_txn * static_cast<double>(elems) + 0.5);
    const sim::Cycles t0 = engine_->now();
    sim::Cycles finish = t0 + engine_cycles;

    switch (route.kind) {
      case Route::Local:
        break;
      case Route::OnChip: {
        const sim::Cycles mesh_done =
            mesh_->reserve_path(route.mesh_src, route.mesh_dst, bytes, t0);
        finish = std::max(finish, mesh_done);
        break;
      }
      case Route::ToExternal:
        co_await elink_write_->txn(owner_, bytes);
        finish = std::max(finish, engine_->now());
        break;
      case Route::FromExternal:
        co_await elink_read_->txn(owner_, bytes);
        finish = std::max(finish, engine_->now());
        break;
    }
    if (model_bank_conflicts_ && route.kind != Route::ToExternal) {
      // The stream occupies the destination scratchpad bank(s) while it
      // drains; concurrent CPU accesses to those banks stall (section IV-B).
      const arch::CoreCoord dst_core =
          route.kind == Route::OnChip ? route.mesh_dst : owner_;
      const arch::Addr lo = arch::AddressMap::local_offset(chunk.front().dst);
      const arch::Addr hi = arch::AddressMap::local_offset(
          chunk.back().dst + static_cast<arch::Addr>(chunk.back().elems - 1) * esz);
      mem_->local(dst_core).occupy_banks(std::min(lo, hi),
                                         (lo > hi ? lo - hi : hi - lo) + esz, finish);
    }
    if (finish > engine_->now()) co_await sim::delay(*engine_, finish - engine_->now());

    // Commit the data functionally at completion time: one copy per run.
    // An overlapping forward run (|src-dst| smaller than the run) must fall
    // back to element order so the value propagation matches the hardware's
    // element-at-a-time walk rather than memmove semantics.
    for (const Run& r : chunk) {
      const arch::Addr run_bytes = static_cast<arch::Addr>(r.elems) * esz;
      const arch::Addr dist = r.src > r.dst ? r.src - r.dst : r.dst - r.src;
      if (r.elems > 1 && dist != 0 && dist < run_bytes) {
        for (std::uint32_t e = 0; e < r.elems; ++e) {
          mem_->copy(r.dst + static_cast<arch::Addr>(e) * esz,
                     r.src + static_cast<arch::Addr>(e) * esz, esz, owner_);
        }
      } else {
        mem_->copy(r.dst, r.src, run_bytes, owner_);
      }
    }
    bytes_moved_ += bytes;
    if (trace_ != nullptr) {
      trace_->dma_chunk(trace_track_, owner_, bytes, engine_->now());
    }

    // With corruption faults armed, external transfers are CRC-checked end
    // to end and recommitted with exponential backoff on mismatch (the
    // off-chip path is the one with a wire to flip bits on; on-chip runs
    // stay unchecked, as on the real part).
    if (faults_ != nullptr && faults_->any_corruption() &&
        (route.kind == Route::ToExternal || route.kind == Route::FromExternal)) {
      const unsigned ekind = route.kind == Route::ToExternal ? 0u : 1u;
      noc::ELink* link = route.kind == Route::ToExternal ? elink_write_ : elink_read_;
      faults_->corrupt_elink(ekind, chunk.front().dst,
                             chunk.front().elems * esz, owner_);
      for (unsigned attempt = 1; !chunk_crc_ok(chunk, esz); ++attempt) {
        if (attempt > kTransferRetries) {
          throw fault::TransferError(
              name_ + ": external DMA chunk failed CRC after " +
              std::to_string(kTransferRetries) + " retries");
        }
        faults_->note_transfer_retry(owner_);
        co_await sim::delay(*engine_, kRetryBackoff << (attempt - 1));
        co_await link->txn(owner_, bytes);
        for (const Run& r : chunk) {
          mem_->copy(r.dst, r.src, static_cast<arch::Addr>(r.elems) * esz, owner_);
        }
        faults_->corrupt_elink(ekind, chunk.front().dst,
                               chunk.front().elems * esz, owner_);
      }
    }
    chunk.clear();
  }

  /// Chained CRC over the chunk's source runs vs. its committed destination
  /// runs (external routes never overlap, so the recommit is a plain copy).
  [[nodiscard]] bool chunk_crc_ok(const std::vector<Run>& chunk, std::uint32_t esz) {
    std::uint32_t src_crc = 0, dst_crc = 0;
    for (const Run& r : chunk) {
      const auto n = static_cast<std::size_t>(r.elems) * esz;
      src_crc = fault::crc32(mem_->resolve(r.src, n, owner_), src_crc);
      dst_crc = fault::crc32(mem_->resolve(r.dst, n, owner_), dst_crc);
    }
    return src_crc == dst_crc;
  }

  arch::CoreCoord owner_;
  unsigned index_;
  std::string name_;
  const arch::TimingParams* timing_;
  bool model_bank_conflicts_ = false;
  sim::Engine* engine_;
  mem::MemorySystem* mem_;
  noc::MeshNetwork* mesh_;
  noc::ELink* elink_write_;
  noc::ELink* elink_read_;
  sim::WaitQueue done_;
  std::vector<DmaDescriptor> chain_;
  sim::Process process_;
  bool busy_ = false;
  std::uint64_t bytes_moved_ = 0;
  trace::Tracer* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;
  fault::FaultInjector* faults_ = nullptr;
};

}  // namespace epi::dma
