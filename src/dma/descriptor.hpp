#pragma once
// DMA descriptors, modelled on the eSDK's e_dma_set_desc() (used verbatim in
// the paper's Listing 2): 2D transfers defined by inner/outer counts and
// per-element post-increment strides, an element size (BYTE..DWORD), and an
// optional chain pointer so one e_dma_start() can walk a descriptor list.

#include <cstdint>

#include "arch/address_map.hpp"

namespace epi::dma {

/// Element width of each DMA transaction (config word in the eSDK).
enum class ElemSize : std::uint8_t { Byte = 1, HWord = 2, Word = 4, DWord = 8 };

struct DmaDescriptor {
  arch::Addr src = 0;
  arch::Addr dst = 0;
  ElemSize elem = ElemSize::Word;
  /// Inner loop: `inner_count` elements; strides applied after each element.
  std::uint32_t inner_count = 0;
  std::int32_t src_inner_stride = 0;  // bytes
  std::int32_t dst_inner_stride = 0;
  /// Outer loop: `outer_count` inner loops; outer strides applied after
  /// each completed inner loop (on top of accumulated inner strides).
  std::uint32_t outer_count = 1;
  std::int32_t src_outer_stride = 0;
  std::int32_t dst_outer_stride = 0;
  /// Next descriptor in the chain (E_DMA_CHAIN), or nullptr.
  const DmaDescriptor* chain = nullptr;

  [[nodiscard]] std::uint64_t total_elements() const noexcept {
    return static_cast<std::uint64_t>(inner_count) * outer_count;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_elements() * static_cast<std::uint8_t>(elem);
  }

  /// Contiguous 1D copy of `bytes` using the widest-aligned element size.
  static DmaDescriptor linear(arch::Addr dst, arch::Addr src, std::uint32_t bytes) {
    DmaDescriptor d;
    d.src = src;
    d.dst = dst;
    const bool dword_ok = bytes % 8 == 0 && src % 8 == 0 && dst % 8 == 0;
    d.elem = dword_ok ? ElemSize::DWord : ElemSize::Word;
    const auto esz = static_cast<std::uint32_t>(static_cast<std::uint8_t>(d.elem));
    d.inner_count = bytes / esz;
    d.src_inner_stride = static_cast<std::int32_t>(esz);
    d.dst_inner_stride = static_cast<std::int32_t>(esz);
    return d;
  }

  /// Strided 2D copy: `rows` rows of `row_bytes`, with distinct row pitches
  /// on each side (the paper's left/right stencil column transfers).
  static DmaDescriptor strided(arch::Addr dst, arch::Addr src, std::uint32_t rows,
                               std::uint32_t row_bytes, std::int32_t src_pitch,
                               std::int32_t dst_pitch, ElemSize elem) {
    DmaDescriptor d;
    d.src = src;
    d.dst = dst;
    d.elem = elem;
    const auto esz = static_cast<std::int32_t>(static_cast<std::uint8_t>(elem));
    d.inner_count = row_bytes / static_cast<std::uint32_t>(esz);
    d.src_inner_stride = esz;
    d.dst_inner_stride = esz;
    d.outer_count = rows;
    // Outer stride is applied on top of the accumulated inner strides, as in
    // the eSDK: it is the jump from one row's end to the next row's start.
    d.src_outer_stride = src_pitch - static_cast<std::int32_t>(row_bytes);
    d.dst_outer_stride = dst_pitch - static_cast<std::int32_t>(row_bytes);
    return d;
  }
};

}  // namespace epi::dma
