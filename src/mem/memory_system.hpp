#pragma once
// The machine's functional memory: every eCore scratchpad plus the 32 MB
// shared DRAM window, resolved through the flat global address map.
//
// All *functional* data movement in the simulator lands here. Writes notify
// registered watches, which is how flag-spin synchronisation (the idiom in
// the paper's Listings 1 and 2) is modelled without polling storms.

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "arch/address_map.hpp"
#include "arch/coords.hpp"
#include "mem/hook.hpp"
#include "mem/local_memory.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace epi::mem {

class MemorySystem {
public:
  MemorySystem(arch::MeshDims dims, sim::Engine& engine)
      : map_(arch::AddressMap::make(dims)),
        engine_(&engine),
        locals_(dims.core_count()),
        external_(map_.external_bytes) {}

  [[nodiscard]] const arch::AddressMap& map() const noexcept { return map_; }
  [[nodiscard]] sim::Engine& engine() const noexcept { return *engine_; }

  [[nodiscard]] LocalMemory& local(arch::CoreCoord c) {
    return locals_[map_.dims.index_of(c)];
  }
  [[nodiscard]] const LocalMemory& local(arch::CoreCoord c) const {
    return locals_[map_.dims.index_of(c)];
  }

  /// Direct span into external DRAM (host-side/functional use).
  [[nodiscard]] std::span<std::byte> external_span(std::uint32_t offset, std::size_t n) {
    if (offset > external_.size() || n > external_.size() - offset) {
      throw std::out_of_range("external memory access out of the 32 MB window");
    }
    return std::span<std::byte>(external_.data() + offset, n);
  }

  /// Resolve a global address as seen by core `issuer` (local-alias
  /// addresses below 1 MB map to the issuer's own scratchpad).
  [[nodiscard]] std::span<std::byte> resolve(arch::Addr a, std::size_t n,
                                             arch::CoreCoord issuer) {
    if (arch::AddressMap::is_local_alias(a)) {
      return local(issuer).span(arch::AddressMap::local_offset(a), n);
    }
    if (map_.is_external(a)) {
      return external_span(map_.external_offset(a), n);
    }
    if (auto c = map_.core_of(a)) {
      return local(*c).span(arch::AddressMap::local_offset(a), n);
    }
    throw std::out_of_range("unmapped global address 0x" + hex(a));
  }

  // ---- functional reads/writes (timing is charged by the caller) -------

  void write_bytes(arch::Addr a, std::span<const std::byte> src, arch::CoreCoord issuer) {
    auto dst = resolve(a, src.size(), issuer);
    std::memcpy(dst.data(), src.data(), src.size());
    const arch::Addr ca = canonical(a, issuer);
    for (MemoryHook* h : hooks_) h->on_write(ca, src.size(), issuer, engine_->now());
    notify_watches(ca, static_cast<std::uint32_t>(src.size()));
  }
  void read_bytes(arch::Addr a, std::span<std::byte> dst, arch::CoreCoord issuer) {
    auto src = resolve(a, dst.size(), issuer);
    std::memcpy(dst.data(), src.data(), dst.size());
    const arch::Addr ca = canonical(a, issuer);
    for (MemoryHook* h : hooks_) h->on_read(ca, dst.size(), issuer, engine_->now());
  }

  template <typename T>
  void write_value(arch::Addr a, T v, arch::CoreCoord issuer) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_bytes(a, std::as_bytes(std::span<const T, 1>(&v, 1)), issuer);
  }
  template <typename T>
  [[nodiscard]] T read_value(arch::Addr a, arch::CoreCoord issuer) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read_bytes(a, std::as_writable_bytes(std::span<T, 1>(&v, 1)), issuer);
    return v;
  }

  /// Copy between two global ranges (used by DMA chunk commits).
  void copy(arch::Addr dst, arch::Addr src, std::size_t n, arch::CoreCoord issuer) {
    auto s = resolve(src, n, issuer);
    auto d = resolve(dst, n, issuer);
    std::memmove(d.data(), s.data(), n);
    const arch::Addr cd = canonical(dst, issuer);
    if (!hooks_.empty()) {
      const arch::Addr cs = canonical(src, issuer);
      for (MemoryHook* h : hooks_) {
        h->on_read(cs, n, issuer, engine_->now());
        h->on_write(cd, n, issuer, engine_->now());
      }
    }
    notify_watches(cd, static_cast<std::uint32_t>(n));
  }

  // ---- watches: event-driven flag waits ---------------------------------

  /// Suspend until `pred(current u32 at a)` holds; re-evaluated after every
  /// write overlapping `a`. Models the spin loops of Listings 1/2 with a
  /// small wake-up cost instead of per-cycle polling. The flag reads are
  /// invisible to any hook (they are the synchronisation itself); on
  /// success the hook sees a single on_sync acquire for the issuer.
  template <typename Pred>
  sim::Op<void> wait_u32(arch::Addr a, arch::CoreCoord issuer, Pred pred) {
    while (!pred(read_u32_raw(a, issuer))) {
      co_await WatchAwaiter{*this, canonical(a, issuer)};
    }
    for (MemoryHook* h : hooks_) h->on_sync(issuer, engine_->now());
  }

  /// A synchronising read (e.g. a mutex TESTSET probe): functionally a plain
  /// u32 load, but reported to the hook as an acquire rather than a data
  /// read, so the sanitizer treats subsequent remote data as ordered.
  [[nodiscard]] std::uint32_t read_u32_acquire(arch::Addr a, arch::CoreCoord issuer) {
    const std::uint32_t v = read_u32_raw(a, issuer);
    for (MemoryHook* h : hooks_) h->on_sync(issuer, engine_->now());
    return v;
  }

  [[nodiscard]] std::size_t active_watches() const noexcept { return watches_.size(); }

  /// Attach a traffic observer. Hooks compose: every attached hook sees
  /// every access, in attachment order (sanitizer + tracer can coexist).
  /// Hooks are not owned; adding an already-attached hook is a no-op.
  void add_hook(MemoryHook* hook) {
    if (hook == nullptr) return;
    if (std::find(hooks_.begin(), hooks_.end(), hook) == hooks_.end()) {
      hooks_.push_back(hook);
    }
  }
  void remove_hook(MemoryHook* hook) noexcept {
    hooks_.erase(std::remove(hooks_.begin(), hooks_.end(), hook), hooks_.end());
  }
  [[nodiscard]] const std::vector<MemoryHook*>& hooks() const noexcept {
    return hooks_;
  }

private:
  /// Width of a watched location: watches always guard one u32 flag word.
  static constexpr arch::Addr kWatchBytes = 4;

  struct WatchAwaiter {
    MemorySystem& mem;
    arch::Addr addr;
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      mem.watches_.emplace(addr, h);
    }
    void await_resume() const noexcept {}
  };

  /// Hook-invisible u32 load, for reads that *are* synchronisation.
  [[nodiscard]] std::uint32_t read_u32_raw(arch::Addr a, arch::CoreCoord issuer) {
    std::uint32_t v;
    auto src = resolve(a, sizeof v, issuer);
    std::memcpy(&v, src.data(), sizeof v);
    return v;
  }

  /// Canonicalise a local-alias address to its global form so that a remote
  /// writer's store to the global address wakes a local-alias watcher.
  [[nodiscard]] arch::Addr canonical(arch::Addr a, arch::CoreCoord issuer) const noexcept {
    if (arch::AddressMap::is_local_alias(a)) {
      return map_.global(issuer, arch::AddressMap::local_offset(a));
    }
    return a;
  }

  /// Wake every watcher whose word overlaps the written range [lo, lo+n).
  /// The index is ordered by watch address, so a store only visits the
  /// watchers it can affect -- O(log w + hits) instead of a scan of every
  /// watcher in the machine on every store. A watch at `w` overlaps iff
  /// w in (lo - kWatchBytes, lo + n), which is one equal-range walk.
  void notify_watches(arch::Addr lo, std::uint32_t n) {
    if (watches_.empty()) return;
    const arch::Addr hi = lo + n;
    const arch::Addr first = lo >= kWatchBytes - 1 ? lo - (kWatchBytes - 1) : 0;
    auto it = watches_.lower_bound(first);
    while (it != watches_.end() && it->first < hi) {
      engine_->schedule_in(1, it->second);  // wake next cycle; watcher re-checks
      it = watches_.erase(it);
    }
  }

  static std::string hex(arch::Addr a) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08X", a);
    return buf;
  }

  arch::AddressMap map_;
  sim::Engine* engine_;
  std::vector<LocalMemory> locals_;
  std::vector<std::byte> external_;
  // Active watches keyed by watched word address; equal keys keep insertion
  // order (std::multimap), so wake order within one store is deterministic:
  // ascending address, FIFO per address.
  std::multimap<arch::Addr, std::coroutine_handle<>> watches_;
  std::vector<MemoryHook*> hooks_;
};

}  // namespace epi::mem
