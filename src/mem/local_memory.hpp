#pragma once
// Per-eCore 32 KB scratchpad, organised as four 8 KB banks (paper IV-B).
//
// Functional storage plus optional bank-occupancy accounting: maximum
// performance on real silicon requires code fetch, load/store and DMA to hit
// different banks; the `model_bank_conflicts` toggle lets the ablation bench
// quantify that.

#include <array>
#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>

#include "arch/address_map.hpp"
#include "sim/engine.hpp"

namespace epi::mem {

class LocalMemory {
public:
  static constexpr std::size_t kBytes = arch::AddressMap::kLocalMemBytes;
  static constexpr std::size_t kBankBytes = arch::AddressMap::kBankBytes;

  [[nodiscard]] std::span<std::byte> bytes() noexcept { return data_; }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return data_; }

  /// Span over [offset, offset+n); throws on out-of-range, mirroring the
  /// fact that real scratchpad accesses beyond 32 KB hit other address
  /// windows (a bug in a kernel, which we want loud, not silent).
  [[nodiscard]] std::span<std::byte> span(std::uint32_t offset, std::size_t n) {
    check_range(offset, n);
    return std::span<std::byte>(data_.data() + offset, n);
  }
  [[nodiscard]] std::span<const std::byte> span(std::uint32_t offset, std::size_t n) const {
    check_range(offset, n);
    return std::span<const std::byte>(data_.data() + offset, n);
  }

  void write(std::uint32_t offset, std::span<const std::byte> src) {
    check_range(offset, src.size());
    std::memcpy(data_.data() + offset, src.data(), src.size());
  }
  void read(std::uint32_t offset, std::span<std::byte> dst) const {
    check_range(offset, dst.size());
    std::memcpy(dst.data(), data_.data() + offset, dst.size());
  }

  // ---- bank-occupancy accounting (ablation support) --------------------
  /// Mark bank containing [offset, offset+n) busy until `until` (DMA side).
  void occupy_banks(std::uint32_t offset, std::size_t n, sim::Cycles until) noexcept {
    const unsigned first = arch::AddressMap::bank_of(offset);
    const unsigned last =
        arch::AddressMap::bank_of(offset + static_cast<std::uint32_t>(n ? n - 1 : 0));
    for (unsigned b = first; b <= last; ++b) {
      if (bank_busy_until_[b] < until) bank_busy_until_[b] = until;
    }
  }
  /// Extra cycles a CPU access at `offset` pays at time `now` due to a
  /// concurrent DMA stream in the same bank.
  [[nodiscard]] sim::Cycles bank_conflict_penalty(std::uint32_t offset,
                                                  sim::Cycles now) const noexcept {
    return now < bank_busy_until_[arch::AddressMap::bank_of(offset)] ? 1 : 0;
  }

private:
  static void check_range(std::uint32_t offset, std::size_t n) {
    if (offset > kBytes || n > kBytes - offset) {
      throw std::out_of_range("LocalMemory access beyond 32 KB scratchpad: offset=" +
                              std::to_string(offset) + " size=" + std::to_string(n));
    }
  }

  alignas(8) std::array<std::byte, kBytes> data_{};
  std::array<sim::Cycles, arch::AddressMap::kBankCount> bank_busy_until_{};
};

}  // namespace epi::mem
