#pragma once
// Observation interface for MemorySystem traffic. A hook sees every
// functional read/write (with the issuing core and the *canonical* global
// address) plus synchronisation events, without perturbing functional
// behaviour or timing. The runtime sanitizer (lint/sanitizer.hpp) is the
// one implementation; keeping the interface here keeps the dependency
// arrow lint -> mem, never the reverse.

#include <cstddef>

#include "arch/address_map.hpp"
#include "arch/coords.hpp"
#include "sim/engine.hpp"

namespace epi::mem {

class MemoryHook {
public:
  virtual ~MemoryHook() = default;

  /// `a` is canonical (local aliases already rebased to the issuer's global
  /// window); `now` is the engine time of the access.
  virtual void on_write(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
                        sim::Cycles now) = 0;
  virtual void on_read(arch::Addr a, std::size_t n, arch::CoreCoord issuer,
                       sim::Cycles now) = 0;

  /// `issuer` completed a synchronisation acquire (a flag wait or mutex
  /// acquisition): remote writes ordered before this point are now safe for
  /// it to read.
  virtual void on_sync(arch::CoreCoord issuer, sim::Cycles now) = 0;
};

}  // namespace epi::mem
