#pragma once
// Spatial partition map for multi-chip xMesh clusters.
//
// The PDES domain boundary follows the hardware: one chip (a Machine with
// its own engine, memory, mesh and eLinks) is one domain. The partition
// map is the single source of truth for which domain owns a global core,
// how far apart two domains sit on the chip grid (the xMesh hop count that
// prices a forward), and whether a pair of endpoints crosses a domain
// boundary at all -- on-chip mesh/DMA/eLink traffic never does, which is
// why it needs no synchronisation with other domains.

#include <cstdint>
#include <vector>

#include "arch/coords.hpp"
#include "sim/parallel.hpp"

namespace epi::machine {

/// Chip-grade health, tracked per domain by the cluster failover layer:
/// Healthy chips take forwards; a Quarantined chip stopped answering (stale
/// heartbeats or repeated forward timeouts) and receives no new work; a
/// Dead chip crashed outright and its unresolved jobs were abandoned.
enum class ChipHealth : std::uint8_t { Healthy, Quarantined, Dead };

[[nodiscard]] constexpr const char* to_string(ChipHealth h) noexcept {
  switch (h) {
    case ChipHealth::Healthy: return "healthy";
    case ChipHealth::Quarantined: return "quarantined";
    case ChipHealth::Dead: return "dead";
  }
  return "?";
}

struct PartitionMap {
  unsigned chip_rows = 1;
  unsigned chip_cols = 1;
  arch::MeshDims chip{};  // per-chip core grid (8x8 for the E64G401)

  [[nodiscard]] unsigned chips() const noexcept { return chip_rows * chip_cols; }
  [[nodiscard]] unsigned cores() const noexcept {
    return chips() * chip.core_count();
  }

  [[nodiscard]] sim::DomainId domain_of_chip(unsigned chip_row,
                                             unsigned chip_col) const noexcept {
    return chip_row * chip_cols + chip_col;
  }
  [[nodiscard]] unsigned chip_row(sim::DomainId d) const noexcept {
    return d / chip_cols;
  }
  [[nodiscard]] unsigned chip_col(sim::DomainId d) const noexcept {
    return d % chip_cols;
  }

  /// Owning domain of a core addressed in global cluster coordinates
  /// (row-major tiling of chip_rows x chip_cols chips).
  [[nodiscard]] sim::DomainId domain_of_core(unsigned global_row,
                                             unsigned global_col) const noexcept {
    return domain_of_chip(global_row / chip.rows, global_col / chip.cols);
  }

  /// Manhattan distance on the chip grid; the xMesh flight-hop count for a
  /// forward between the two domains (0 only when a == b).
  [[nodiscard]] unsigned hops(sim::DomainId a, sim::DomainId b) const noexcept {
    const unsigned dr = chip_row(a) > chip_row(b) ? chip_row(a) - chip_row(b)
                                                  : chip_row(b) - chip_row(a);
    const unsigned dc = chip_col(a) > chip_col(b) ? chip_col(a) - chip_col(b)
                                                  : chip_col(b) - chip_col(a);
    return dr + dc;
  }

  /// Does traffic between these global cores cross a domain boundary?
  [[nodiscard]] bool crossing(unsigned a_row, unsigned a_col, unsigned b_row,
                              unsigned b_col) const noexcept {
    return domain_of_core(a_row, a_col) != domain_of_core(b_row, b_col);
  }

  /// Is (chip_row, chip_col) a chip of this grid? Fault-plan and forward
  /// targets are validated against this before any routing happens.
  [[nodiscard]] bool contains_chip(unsigned chip_row,
                                   unsigned chip_col) const noexcept {
    return chip_row < chip_rows && chip_col < chip_cols;
  }

  // ---- chip health (written by the failover layer; empty = all healthy).
  // During a parallel run each domain keeps its own view of peer health
  // (no cross-domain writes); this map is the folded post-run summary.
  std::vector<ChipHealth> health;

  void mark(sim::DomainId d, ChipHealth h) {
    if (health.empty()) health.assign(chips(), ChipHealth::Healthy);
    // Dead outranks Quarantined outranks Healthy: never resurrect a chip.
    if (static_cast<std::uint8_t>(h) > static_cast<std::uint8_t>(health[d])) {
      health[d] = h;
    }
  }
  [[nodiscard]] ChipHealth health_of(sim::DomainId d) const noexcept {
    return health.empty() ? ChipHealth::Healthy : health[d];
  }
  [[nodiscard]] bool usable(sim::DomainId d) const noexcept {
    return health_of(d) == ChipHealth::Healthy;
  }
};

}  // namespace epi::machine
