#pragma once
// The full modelled Epiphany system: event engine, memory, eMesh, eLinks,
// and per-eCore resources (two DMA channels, two event timers).
//
// A Machine corresponds to what sits on the FMC daughter card in the paper:
// the E64G401 chip plus its shared-memory window. Host-side orchestration
// lives in epi::host on top of this.

#include <deque>
#include <memory>

#include "arch/coords.hpp"
#include "arch/timing.hpp"
#include "dma/channel.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "lint/sanitizer.hpp"
#include "machine/reservation.hpp"
#include "mem/memory_system.hpp"
#include "noc/elink.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace epi::machine {

/// One of the two per-core event timers (E_CTIMER_0/1). Real ctimers count
/// *down* from the set value; the paper's Listing 1 measures elapsed cycles
/// as set_value - get(). We reproduce that interface.
class CTimer {
public:
  static constexpr std::uint32_t kMax = 0xFFFFFFFFu;  // E_CTIMER_MAX

  explicit CTimer(const sim::Engine& engine) noexcept : engine_(&engine) {}

  void set(std::uint32_t value) noexcept {
    value_ = value;
    running_ = false;
  }
  void start() noexcept {
    started_at_ = engine_->now();
    running_ = true;
  }
  [[nodiscard]] std::uint32_t get() const noexcept {
    if (!running_) return value_;
    const sim::Cycles elapsed = engine_->now() - started_at_;
    return elapsed >= value_ ? 0 : value_ - static_cast<std::uint32_t>(elapsed);
  }
  void stop() noexcept {
    value_ = get();
    running_ = false;
  }
  /// Convenience: cycles elapsed since start() for a timer set to kMax.
  [[nodiscard]] sim::Cycles elapsed() const noexcept {
    return running_ ? engine_->now() - started_at_ : 0;
  }

private:
  const sim::Engine* engine_;
  std::uint32_t value_ = kMax;
  sim::Cycles started_at_ = 0;
  bool running_ = false;
};

class Machine {
public:
  explicit Machine(arch::MachineConfig cfg)
      : cfg_(cfg),
        mem_(cfg.dims, engine_),
        mesh_(cfg.dims, cfg_.timing, engine_),
        elink_write_(cfg.dims, cfg_.timing, engine_, cfg.timing.elink_write_overhead),
        elink_read_(cfg.dims, cfg_.timing, engine_, cfg.timing.elink_read_overhead),
        reservations_(cfg.dims) {
    for (unsigned i = 0; i < cfg.dims.core_count(); ++i) {
      cores_.emplace_back(cfg.dims.coord_of(i), *this);
    }
  }

  struct Core {
    Core(arch::CoreCoord c, Machine& m)
        : coord(c),
          dma{{c, 0, m.cfg_, m.engine_, m.mem_, m.mesh_, m.elink_write_, m.elink_read_},
              {c, 1, m.cfg_, m.engine_, m.mem_, m.mesh_, m.elink_write_, m.elink_read_}},
          ctimer{CTimer(m.engine_), CTimer(m.engine_)} {}
    arch::CoreCoord coord;
    dma::DmaChannel dma[2];
    CTimer ctimer[2];
  };

  [[nodiscard]] const arch::MachineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] arch::MeshDims dims() const noexcept { return cfg_.dims; }
  [[nodiscard]] const arch::TimingParams& timing() const noexcept { return cfg_.timing; }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] mem::MemorySystem& mem() noexcept { return mem_; }
  [[nodiscard]] noc::MeshNetwork& mesh() noexcept { return mesh_; }
  [[nodiscard]] noc::ELink& elink_write() noexcept { return elink_write_; }
  [[nodiscard]] noc::ELink& elink_read() noexcept { return elink_read_; }

  [[nodiscard]] Core& core(arch::CoreCoord c) { return cores_[cfg_.dims.index_of(c)]; }

  /// Exclusive workgroup ownership of cores (host::Workgroup RAII holds a
  /// reservation for its rectangle; the serving runtime relies on this to
  /// keep concurrently resident jobs from clobbering each other).
  [[nodiscard]] CoreReservations& reservations() noexcept { return reservations_; }

  // ---- runtime sanitizer --------------------------------------------------
  /// Attach an epi-lint MemSanitizer to the memory system. Idempotent;
  /// returns the (owned) sanitizer so callers can inspect findings.
  lint::MemSanitizer& enable_sanitizer() {
    if (!sanitizer_) {
      sanitizer_ = std::make_unique<lint::MemSanitizer>();
      mem_.add_hook(sanitizer_.get());
    }
    return *sanitizer_;
  }
  void disable_sanitizer() noexcept {
    mem_.remove_hook(sanitizer_.get());
    sanitizer_.reset();
  }
  [[nodiscard]] lint::MemSanitizer* sanitizer() noexcept { return sanitizer_.get(); }

  // ---- tracing -------------------------------------------------------------
  /// Attach an epi-trace Tracer to every instrumented layer (memory hooks,
  /// mesh links, both eLinks, all DMA channels, core phase spans). Idempotent;
  /// composes with the sanitizer. Returns the (owned) tracer.
  trace::Tracer& enable_tracing() {
    if (!tracer_) {
      tracer_ = std::make_unique<trace::Tracer>(cfg_.dims);
      mem_.add_hook(tracer_.get());
      mesh_.set_trace(tracer_.get());
      elink_write_.set_trace(tracer_.get(), trace::ElinkKind::Write);
      elink_read_.set_trace(tracer_.get(), trace::ElinkKind::Read);
      for (auto& core : cores_) {
        core.dma[0].set_trace(tracer_.get());
        core.dma[1].set_trace(tracer_.get());
      }
      if (faults_) faults_->set_trace(tracer_.get());
    }
    return *tracer_;
  }
  void disable_tracing() noexcept {
    if (!tracer_) return;
    mem_.remove_hook(tracer_.get());
    mesh_.set_trace(nullptr);
    elink_write_.set_trace(nullptr, trace::ElinkKind::Write);
    elink_read_.set_trace(nullptr, trace::ElinkKind::Read);
    for (auto& core : cores_) {
      core.dma[0].set_trace(nullptr);
      core.dma[1].set_trace(nullptr);
    }
    tracer_.reset();
  }
  [[nodiscard]] trace::Tracer* tracer() noexcept { return tracer_.get(); }

  // ---- fault injection ------------------------------------------------------
  /// Arm a fault plan across every layer (core timed ops, mesh routing, both
  /// eLinks, DMA transfer checking, memory-write corruption). Idempotent per
  /// machine: the first call wins. An *empty* plan is valid and guaranteed
  /// side-effect-free -- every event ordering stays bit-identical to an
  /// uninstrumented run (determinism tests pin this).
  fault::FaultInjector& enable_faults(fault::FaultPlan plan) {
    if (!faults_) {
      faults_ = std::make_unique<fault::FaultInjector>(std::move(plan), engine_, mem_,
                                                       cfg_.dims, tracer_.get());
      mem_.add_hook(faults_.get());
      mesh_.set_faults(faults_.get());
      elink_write_.set_faults(faults_.get(), 0);
      elink_read_.set_faults(faults_.get(), 1);
      for (auto& core : cores_) {
        core.dma[0].set_faults(faults_.get());
        core.dma[1].set_faults(faults_.get());
      }
    }
    return *faults_;
  }
  void disable_faults() noexcept {
    if (!faults_) return;
    mem_.remove_hook(faults_.get());
    mesh_.set_faults(nullptr);
    elink_write_.set_faults(nullptr, 0);
    elink_read_.set_faults(nullptr, 1);
    for (auto& core : cores_) {
      core.dma[0].set_faults(nullptr);
      core.dma[1].set_faults(nullptr);
    }
    faults_.reset();
  }
  [[nodiscard]] fault::FaultInjector* faults() noexcept { return faults_.get(); }

private:
  arch::MachineConfig cfg_;
  sim::Engine engine_;
  mem::MemorySystem mem_;
  noc::MeshNetwork mesh_;
  noc::ELink elink_write_;
  noc::ELink elink_read_;
  CoreReservations reservations_;
  std::deque<Core> cores_;  // deque: Core is immovable (owns DmaChannels)
  std::unique_ptr<lint::MemSanitizer> sanitizer_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<fault::FaultInjector> faults_;
};

}  // namespace epi::machine
