#pragma once
// Exclusive core ownership for workgroups.
//
// The paper's eSDK happily lets two e_open calls claim the same eCores --
// whichever kernel starts last silently clobbers the other's scratchpad and
// status words. Once the chip is treated as a shared, schedulable resource
// (epi::sched runs many workgroups concurrently), that footgun becomes a
// correctness bug, so the machine now tracks which cores are reserved.
//
// host::Workgroup acquires its rectangle on construction and releases it on
// destruction (RAII); overlapping opens fail fast with an error naming the
// contested core. Tickets make release idempotent and safe across moves.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/coords.hpp"

namespace epi::machine {

/// Per-core reservation table. Not a policy layer: placement decisions live
/// in epi::sched::MeshAllocator; this enforces that whatever was decided is
/// mutually exclusive.
class CoreReservations {
public:
  explicit CoreReservations(arch::MeshDims dims)
      : dims_(dims), owner_(dims.core_count(), kFree) {}

  /// Claim the rows x cols rectangle at `origin`. Returns a ticket to hand
  /// back to release(). Throws std::runtime_error naming the first core
  /// already held by another workgroup.
  std::uint32_t acquire(arch::CoreCoord origin, unsigned rows, unsigned cols) {
    if (origin.row + rows > dims_.rows || origin.col + cols > dims_.cols) {
      throw std::out_of_range("reservation rectangle outside the mesh");
    }
    for (unsigned r = 0; r < rows; ++r) {
      for (unsigned c = 0; c < cols; ++c) {
        const arch::CoreCoord cc{origin.row + r, origin.col + c};
        const std::uint32_t held = owner_[dims_.index_of(cc)];
        if (held != kFree) {
          throw std::runtime_error(
              "core " + arch::to_string(cc) + " is already reserved by workgroup #" +
              std::to_string(held) +
              ": workgroups own their cores exclusively; destroy the previous "
              "Workgroup (or let it go out of scope) before reopening its cores");
        }
      }
    }
    const std::uint32_t ticket = next_ticket_++;
    for (unsigned r = 0; r < rows; ++r) {
      for (unsigned c = 0; c < cols; ++c) {
        owner_[dims_.index_of({origin.row + r, origin.col + c})] = ticket;
      }
    }
    reserved_ += rows * cols;
    return ticket;
  }

  /// Release every core held under `ticket` within the rectangle. No-op for
  /// cells the ticket does not own (double release is harmless).
  void release(arch::CoreCoord origin, unsigned rows, unsigned cols,
               std::uint32_t ticket) noexcept {
    for (unsigned r = 0; r < rows; ++r) {
      for (unsigned c = 0; c < cols; ++c) {
        const arch::CoreCoord cc{origin.row + r, origin.col + c};
        if (!dims_.contains(cc)) continue;
        std::uint32_t& cell = owner_[dims_.index_of(cc)];
        if (cell == ticket) {
          cell = kFree;
          --reserved_;
        }
      }
    }
  }

  [[nodiscard]] bool is_reserved(arch::CoreCoord c) const noexcept {
    return dims_.contains(c) && owner_[dims_.index_of(c)] != kFree;
  }
  [[nodiscard]] unsigned reserved_count() const noexcept { return reserved_; }

private:
  static constexpr std::uint32_t kFree = 0;

  arch::MeshDims dims_;
  std::vector<std::uint32_t> owner_;  // ticket per core; kFree = unreserved
  std::uint32_t next_ticket_ = 1;
  unsigned reserved_ = 0;
};

}  // namespace epi::machine
