#include "trace/profile.hpp"

#include <algorithm>

#include "trace/tracer.hpp"

namespace epi::trace {

namespace {

double fraction_of(const ProfileReport& r, sim::Cycles CorePhaseBreakdown::* field) {
  double num = 0.0;
  double den = 0.0;
  for (const auto& c : r.cores) {
    num += static_cast<double>(c.*field);
    den += static_cast<double>(c.total);
  }
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double ProfileReport::compute_fraction() const noexcept {
  return fraction_of(*this, &CorePhaseBreakdown::compute);
}
double ProfileReport::comm_fraction() const noexcept {
  return fraction_of(*this, &CorePhaseBreakdown::comm);
}
double ProfileReport::dma_wait_fraction() const noexcept {
  return fraction_of(*this, &CorePhaseBreakdown::dma_wait);
}
double ProfileReport::sync_fraction() const noexcept {
  return fraction_of(*this, &CorePhaseBreakdown::sync);
}

ProfileReport attribute(const Tracer& tracer, sim::Cycles begin, sim::Cycles end) {
  ProfileReport report;
  report.window_begin = begin;
  report.window_end = end;
  if (end <= begin) return report;

  const auto& tracks = tracer.tracks();

  struct TrackState {
    bool open = false;
    Phase phase = Phase::Other;
    sim::Cycles start = 0;
  };
  std::vector<TrackState> state(tracks.size());
  std::vector<CorePhaseBreakdown> per_track(tracks.size());

  const auto charge = [&](std::uint32_t tr, Phase p, sim::Cycles b, sim::Cycles e) {
    b = std::max(b, begin);
    e = std::min(e, end);
    if (e <= b) return;
    const sim::Cycles d = e - b;
    auto& row = per_track[tr];
    switch (p) {
      case Phase::Compute: row.compute += d; break;
      case Phase::Comm: row.comm += d; break;
      case Phase::DmaWait: row.dma_wait += d; break;
      case Phase::Sync: row.sync += d; break;
      case Phase::Other: break;  // unattributed by construction
    }
  };

  for (const auto& ev : tracer.events()) {
    if (ev.type != Event::Type::Begin && ev.type != Event::Type::End) continue;
    if (ev.track >= tracks.size() || !tracks[ev.track].is_core) continue;
    auto& st = state[ev.track];
    if (ev.type == Event::Type::Begin) {
      // Depth-0 recording means spans never nest; a Begin while open would
      // be a recording bug -- close the stale span defensively.
      if (st.open) charge(ev.track, st.phase, st.start, ev.t);
      st.open = true;
      st.phase = ev.phase;
      st.start = ev.t;
    } else {
      if (st.open) {
        charge(ev.track, st.phase, st.start, ev.t);
        st.open = false;
      }
    }
  }
  // Spans still open at the end of the trace run to the window edge.
  for (std::uint32_t tr = 0; tr < tracks.size(); ++tr) {
    if (state[tr].open) charge(tr, state[tr].phase, state[tr].start, end);
  }

  // Emit rows in mesh row-major order for deterministic, readable reports.
  const arch::MeshDims dims = tracer.dims();
  std::vector<std::uint32_t> core_of_index(dims.core_count(), ~std::uint32_t{0});
  for (std::uint32_t tr = 0; tr < tracks.size(); ++tr) {
    if (tracks[tr].is_core) core_of_index[dims.index_of(tracks[tr].coord)] = tr;
  }
  const sim::Cycles window = end - begin;
  for (unsigned i = 0; i < dims.core_count(); ++i) {
    const std::uint32_t tr = core_of_index[i];
    if (tr == ~std::uint32_t{0}) continue;
    CorePhaseBreakdown row = per_track[tr];
    row.coord = tracks[tr].coord;
    row.total = window;
    row.other = static_cast<std::int64_t>(window) -
                static_cast<std::int64_t>(row.attributed());
    report.cores.push_back(row);
  }
  return report;
}

}  // namespace epi::trace
