#pragma once
// Cycle-attribution profiler: folds a Tracer's core-track spans into
// per-core compute / comm / dma-wait / sync breakdowns over a time window.
//
// Because device::CoreCtx records only depth-0 (outermost) phase spans, a
// core's spans never overlap, so the four phase buckets plus the residual
// "other" bucket partition the window exactly:
//
//   compute + comm + dma_wait + sync + other == window length   (per core)
//
// which the trace tests assert. "other" is genuinely unattributed time --
// a core idling between operations with no phase open (e.g. after its last
// kernel statement retired). The aggregate fractions are what EXPERIMENTS.md
// compares against the paper's Table VI transfer share.

#include <cstdint>
#include <vector>

#include "arch/coords.hpp"
#include "sim/engine.hpp"

namespace epi::trace {

class Tracer;

/// Where one core's cycles went inside the profiled window.
struct CorePhaseBreakdown {
  arch::CoreCoord coord{};
  sim::Cycles compute = 0;
  sim::Cycles comm = 0;
  sim::Cycles dma_wait = 0;
  sim::Cycles sync = 0;
  std::int64_t other = 0;  // residual; negative would indicate overlap (a bug)
  sim::Cycles total = 0;   // window length (identical for every core)

  [[nodiscard]] sim::Cycles attributed() const noexcept {
    return compute + comm + dma_wait + sync;
  }
};

struct ProfileReport {
  sim::Cycles window_begin = 0;
  sim::Cycles window_end = 0;
  std::vector<CorePhaseBreakdown> cores;  // mesh row-major order

  [[nodiscard]] sim::Cycles window() const noexcept { return window_end - window_begin; }

  // Aggregate fractions of total core-cycles (sum over cores of the window).
  [[nodiscard]] double compute_fraction() const noexcept;
  [[nodiscard]] double comm_fraction() const noexcept;
  [[nodiscard]] double dma_wait_fraction() const noexcept;
  [[nodiscard]] double sync_fraction() const noexcept;
  /// comm + dma-wait combined: the "shared-memory transfer" share the paper
  /// reports for off-chip matmul (Table VI, ~87 %).
  [[nodiscard]] double comm_dma_fraction() const noexcept {
    return comm_fraction() + dma_wait_fraction();
  }
};

/// Attribute every core track's spans within [begin, end). Spans straddling
/// a window edge are clipped; a span still open at `end` is charged up to
/// `end`. Only cores that appear in the trace get a row.
[[nodiscard]] ProfileReport attribute(const Tracer& tracer, sim::Cycles begin,
                                      sim::Cycles end);

}  // namespace epi::trace
