#include "trace/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <vector>

#include "trace/profile.hpp"
#include "trace/tracer.hpp"
#include "util/table.hpp"

namespace epi::trace {

std::string format_number(double v) {
  // Counters are overwhelmingly integral (bytes, cycles, flops); print those
  // exactly. Anything else round-trips via %.17g.
  if (std::floor(v) == v && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Emit one tracer's metadata and events as Chrome process `pid`. Shared by
/// the single-machine and the multi-chip cluster exporters; `first` tracks
/// the comma state across processes in one traceEvents array.
void write_process_events(std::ostream& os, const Tracer& tracer,
                          unsigned pid, const std::string& process_name,
                          bool& first) {
  const std::string p = std::to_string(pid);
  const auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  emit("{\"ph\":\"M\",\"pid\":" + p + ",\"name\":\"process_name\"," +
       "\"args\":{\"name\":\"" + json_escape(process_name) + "\"}}");

  const auto& tracks = tracer.tracks();
  for (std::uint32_t i = 0; i < tracks.size(); ++i) {
    const std::string tid = std::to_string(i + 1);
    emit("{\"ph\":\"M\",\"pid\":" + p + ",\"tid\":" + tid +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(tracks[i].name) + "\"}}");
    emit("{\"ph\":\"M\",\"pid\":" + p + ",\"tid\":" + tid +
         ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
         std::to_string(i) + "}}");
  }

  const auto& counters = tracer.counters();
  for (const Event& ev : tracer.events()) {
    const std::string ts = std::to_string(ev.t);
    switch (ev.type) {
      case Event::Type::Begin: {
        std::string line = "{\"ph\":\"B\",\"pid\":" + p + ",\"tid\":" +
                           std::to_string(ev.track + 1) + ",\"ts\":" + ts +
                           ",\"name\":\"" + json_escape(tracer.str(ev.name)) +
                           "\",\"cat\":\"" + to_string(ev.phase) + "\"";
        if (ev.arg_name[0] != 0 || ev.arg_name[1] != 0) {
          line += ",\"args\":{";
          bool farg = true;
          for (int a = 0; a < 2; ++a) {
            if (ev.arg_name[a] == 0) continue;
            if (!farg) line += ",";
            farg = false;
            line += "\"" + json_escape(tracer.str(ev.arg_name[a])) +
                    "\":" + std::to_string(ev.arg[a]);
          }
          line += "}";
        }
        line += "}";
        emit(line);
        break;
      }
      case Event::Type::End:
        emit("{\"ph\":\"E\",\"pid\":" + p + ",\"tid\":" +
             std::to_string(ev.track + 1) + ",\"ts\":" + ts + "}");
        break;
      case Event::Type::Instant: {
        std::string line = "{\"ph\":\"i\",\"pid\":" + p + ",\"tid\":" +
                           std::to_string(ev.track + 1) + ",\"ts\":" + ts +
                           ",\"name\":\"" + json_escape(tracer.str(ev.name)) +
                           "\",\"s\":\"t\"";
        if (ev.arg_name[0] != 0) {
          line += ",\"args\":{\"" + json_escape(tracer.str(ev.arg_name[0])) +
                  "\":" + std::to_string(ev.arg[0]) + "}";
        }
        line += "}";
        emit(line);
        break;
      }
      case Event::Type::Counter:
        emit("{\"ph\":\"C\",\"pid\":" + p + ",\"ts\":" + ts + ",\"name\":\"" +
             json_escape(counters.name(ev.track)) + "\",\"args\":{\"value\":" +
             format_number(ev.value) + "}}");
        break;
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  write_process_events(os, tracer, 1, "epiphany machine", first);
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<ChromeProcess>& processes) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (std::uint32_t i = 0; i < processes.size(); ++i) {
    write_process_events(os, *processes[i].tracer, i + 1, processes[i].name,
                         first);
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void write_counters_csv(std::ostream& os, const Counters& counters) {
  os << "name,kind,value\n";
  for (Counters::Id id = 0; id < counters.size(); ++id) {
    os << counters.name(id) << ','
       << (counters.kind(id) == Counters::Kind::Monotonic ? "monotonic" : "gauge")
       << ',' << format_number(counters.value(id)) << '\n';
  }
}

void write_summary(std::ostream& os, const Tracer& tracer,
                   const ProfileReport* report, unsigned top_n) {
  const auto& counters = tracer.counters();

  // Aggregate (machine-wide) counters: names without a per-entity '@'.
  util::Table agg({"counter", "value"});
  std::vector<Counters::Id> per_entity;
  for (Counters::Id id = 0; id < counters.size(); ++id) {
    if (counters.name(id).find('@') == std::string::npos) {
      agg.add_row({counters.name(id), format_number(counters.value(id))});
    } else {
      per_entity.push_back(id);
    }
  }
  if (agg.rows() > 0) {
    os << "Aggregate counters:\n";
    agg.print(os);
  }

  if (!per_entity.empty()) {
    std::sort(per_entity.begin(), per_entity.end(),
              [&](Counters::Id a, Counters::Id b) {
                if (counters.value(a) != counters.value(b)) {
                  return counters.value(a) > counters.value(b);
                }
                return counters.name(a) < counters.name(b);
              });
    util::Table top({"counter", "value"});
    for (unsigned i = 0; i < top_n && i < per_entity.size(); ++i) {
      const Counters::Id id = per_entity[i];
      top.add_row({counters.name(id), format_number(counters.value(id))});
    }
    os << "Top " << std::min<std::size_t>(top_n, per_entity.size())
       << " per-entity counters (of " << per_entity.size() << "):\n";
    top.print(os);
  }

  if (report != nullptr && !report->cores.empty()) {
    os << "Cycle attribution over [" << report->window_begin << ", "
       << report->window_end << ") -- " << report->cores.size() << " core(s), "
       << "compute " << util::fmt(100.0 * report->compute_fraction(), 1)
       << "%, comm " << util::fmt(100.0 * report->comm_fraction(), 1)
       << "%, dma-wait " << util::fmt(100.0 * report->dma_wait_fraction(), 1)
       << "%, sync " << util::fmt(100.0 * report->sync_fraction(), 1) << "%\n";

    std::vector<const CorePhaseBreakdown*> rows;
    rows.reserve(report->cores.size());
    for (const auto& c : report->cores) rows.push_back(&c);
    std::sort(rows.begin(), rows.end(),
              [](const CorePhaseBreakdown* a, const CorePhaseBreakdown* b) {
                const auto ka = a->comm + a->dma_wait;
                const auto kb = b->comm + b->dma_wait;
                if (ka != kb) return ka > kb;
                return a->coord < b->coord;
              });
    util::Table t({"core", "compute", "comm", "dma-wait", "sync", "other"});
    for (unsigned i = 0; i < top_n && i < rows.size(); ++i) {
      const auto& c = *rows[i];
      t.add_row({arch::to_string(c.coord), std::to_string(c.compute),
                 std::to_string(c.comm), std::to_string(c.dma_wait),
                 std::to_string(c.sync), std::to_string(c.other)});
    }
    os << "Top " << std::min<std::size_t>(top_n, rows.size())
       << " cores by comm+dma-wait cycles:\n";
    t.print(os);
  }
}

}  // namespace epi::trace
