#pragma once
// Named metric registry for the trace subsystem.
//
// A counter is either Monotonic (a running total that may only grow: bytes
// through a link, flops retired, stall cycles accumulated) or a Gauge (a
// level that moves both ways: queue depth, link occupancy). Counters are
// registered once by name, updated by integer id on the hot path, and are
// queryable at any simulated time -- the Tracer additionally records a
// sample event on every change so exporters can reconstruct the full time
// series.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace epi::trace {

class Counters {
public:
  enum class Kind : std::uint8_t { Monotonic, Gauge };
  using Id = std::uint32_t;
  static constexpr Id kNone = ~Id{0};

  /// Register (or look up) a counter. Re-defining an existing name with the
  /// same kind returns the existing id; a kind mismatch is a logic error.
  Id define(std::string name, Kind kind) {
    auto it = index_.find(name);
    if (it != index_.end()) {
      if (entries_[it->second].kind != kind) {
        throw std::logic_error("counter '" + name + "' redefined with a different kind");
      }
      return it->second;
    }
    const Id id = static_cast<Id>(entries_.size());
    entries_.push_back(Entry{name, 0.0, kind});
    index_.emplace(std::move(name), id);
    return id;
  }

  /// Increment by `delta`. Monotonic counters reject negative deltas.
  void add(Id id, double delta) {
    Entry& e = entries_.at(id);
    if (e.kind == Kind::Monotonic && delta < 0.0) {
      throw std::logic_error("monotonic counter '" + e.name + "' decremented");
    }
    e.value += delta;
  }

  /// Set an absolute level. Monotonic counters may only move upward.
  void set(Id id, double value) {
    Entry& e = entries_.at(id);
    if (e.kind == Kind::Monotonic && value < e.value) {
      throw std::logic_error("monotonic counter '" + e.name + "' decremented");
    }
    e.value = value;
  }

  [[nodiscard]] double value(Id id) const { return entries_.at(id).value; }
  [[nodiscard]] const std::string& name(Id id) const { return entries_.at(id).name; }
  [[nodiscard]] Kind kind(Id id) const { return entries_.at(id).kind; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Id of a counter by name, or kNone.
  [[nodiscard]] Id find(std::string_view name) const {
    auto it = index_.find(std::string(name));
    return it == index_.end() ? kNone : it->second;
  }
  /// Current value by name (0.0 for unknown counters).
  [[nodiscard]] double value(std::string_view name) const {
    const Id id = find(name);
    return id == kNone ? 0.0 : entries_[id].value;
  }

private:
  struct Entry {
    std::string name;
    double value = 0.0;
    Kind kind = Kind::Monotonic;
  };

  std::vector<Entry> entries_;  // definition order: deterministic export
  std::unordered_map<std::string, Id> index_;
};

}  // namespace epi::trace
