#pragma once
// epi::trace -- structured event tracing for the whole machine model.
//
// The Tracer is a deterministic, append-only sink of typed events stamped
// with engine Cycles. Every layer of the simulator reports into it:
//
//   * eCores      phase begin/end spans (compute / comm / dma-wait / sync),
//                 emitted by device::CoreCtx around its timed operations and
//                 by kernels via explicit phase scopes;
//   * eMesh       per-directed-link burst occupancy (acquire/release) from
//                 MeshNetwork::reserve_path;
//   * eLink       per-transaction grant spans with queueing-stall cycles --
//                 the raw material of the Tables II/III starvation pictures;
//   * DMA         descriptor-chain spans and per-chunk commit instants;
//   * memory      per-core read/write byte counters via mem::MemoryHook
//                 (the Tracer composes with the sanitizer hook).
//
// Because the engine is deterministic, the event stream (and every export
// derived from it) is bit-reproducible run over run; tests assert this.
// Counter samples are coalesced per (counter, cycle) so high-frequency
// functional traffic (per-element DMA commits) stays cheap to record.
//
// Exporters live in trace/export.hpp (Perfetto/Chrome JSON, counters CSV,
// terminal summary); the cycle-attribution profiler in trace/profile.hpp
// folds core-track spans into per-core breakdowns.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "arch/coords.hpp"
#include "mem/hook.hpp"
#include "sim/engine.hpp"
#include "trace/counters.hpp"

namespace epi::trace {

/// Cycle-attribution category of a core-track span.
enum class Phase : std::uint8_t { Compute, Comm, DmaWait, Sync, Other };

[[nodiscard]] constexpr const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::Compute: return "compute";
    case Phase::Comm: return "comm";
    case Phase::DmaWait: return "dma-wait";
    case Phase::Sync: return "sync";
    case Phase::Other: return "other";
  }
  return "?";
}

/// Which off-chip network an eLink event belongs to.
enum class ElinkKind : std::uint8_t { Write = 0, Read = 1 };

[[nodiscard]] constexpr const char* to_string(ElinkKind k) noexcept {
  return k == ElinkKind::Write ? "write" : "read";
}

/// One timeline row in the exported trace (a core, a DMA channel, an eLink
/// direction, or a mesh link).
struct Track {
  std::string name;
  bool is_core = false;
  arch::CoreCoord coord{};  // meaningful when is_core
};

/// A single trace record. Begin/End bracket a span on `track`; Instant is a
/// point event; Counter is a sample of counter id `track` at value `value`.
struct Event {
  enum class Type : std::uint8_t { Begin, End, Instant, Counter };
  Type type = Type::Instant;
  Phase phase = Phase::Other;
  std::uint32_t track = 0;  // track index, or counter id for Type::Counter
  std::uint32_t name = 0;   // interned string (Begin/Instant)
  sim::Cycles t = 0;
  double value = 0.0;                   // Counter sample value
  std::uint32_t arg_name[2] = {0, 0};   // interned arg labels; 0 = absent
  std::uint64_t arg[2] = {0, 0};
};

class Tracer final : public mem::MemoryHook {
public:
  explicit Tracer(arch::MeshDims dims)
      : dims_(dims),
        core_tracks_(dims.core_count(), kNoTrack),
        dma_tracks_(static_cast<std::size_t>(dims.core_count()) * 2, kNoTrack),
        link_tracks_(static_cast<std::size_t>(dims.core_count()) * 4, kNoTrack),
        link_bytes_(static_cast<std::size_t>(dims.core_count()) * 4, Counters::kNone),
        mem_read_(dims.core_count(), Counters::kNone),
        mem_write_(dims.core_count(), Counters::kNone),
        elink_core_bytes_{std::vector<Counters::Id>(dims.core_count(), Counters::kNone),
                          std::vector<Counters::Id>(dims.core_count(), Counters::kNone)},
        flops_core_(dims.core_count(), Counters::kNone) {
    intern("");  // id 0 = absent
  }

  [[nodiscard]] arch::MeshDims dims() const noexcept { return dims_; }
  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }
  [[nodiscard]] const std::vector<Track>& tracks() const noexcept { return tracks_; }
  [[nodiscard]] const std::vector<std::string>& strings() const noexcept { return strings_; }
  [[nodiscard]] const std::string& str(std::uint32_t id) const { return strings_.at(id); }
  [[nodiscard]] Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  // ---- generic recording -------------------------------------------------

  std::uint32_t intern(std::string_view s) {
    auto it = intern_.find(std::string(s));
    if (it != intern_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    intern_.emplace(strings_.back(), id);
    return id;
  }

  std::uint32_t add_track(std::string name, bool is_core = false,
                          arch::CoreCoord coord = {}) {
    tracks_.push_back(Track{std::move(name), is_core, coord});
    return static_cast<std::uint32_t>(tracks_.size() - 1);
  }

  void begin(std::uint32_t track, Phase p, std::string_view name, sim::Cycles t) {
    Event e;
    e.type = Event::Type::Begin;
    e.phase = p;
    e.track = track;
    e.name = intern(name);
    e.t = t;
    events_.push_back(e);
  }
  void end(std::uint32_t track, sim::Cycles t) {
    Event e;
    e.type = Event::Type::End;
    e.track = track;
    e.t = t;
    events_.push_back(e);
  }
  void instant(std::uint32_t track, std::string_view name, sim::Cycles t,
               std::string_view arg0_name = {}, std::uint64_t arg0 = 0) {
    Event e;
    e.type = Event::Type::Instant;
    e.track = track;
    e.name = intern(name);
    e.t = t;
    if (!arg0_name.empty()) {
      e.arg_name[0] = intern(arg0_name);
      e.arg[0] = arg0;
    }
    events_.push_back(e);
  }

  /// Update counter `id` and record a sample. Samples landing on the same
  /// cycle as the counter's previous sample are coalesced in place, which
  /// keeps per-element functional traffic (DMA chunk commits) cheap.
  void count(Counters::Id id, sim::Cycles t, double delta) {
    counters_.add(id, delta);
    push_sample(id, t);
  }

  /// Set a Gauge counter to an absolute level and record a sample (same
  /// per-cycle coalescing as count()). Levels -- queue depth, resident
  /// workgroups, cores busy -- move both ways, so they cannot go through the
  /// delta path.
  void sample(Counters::Id id, sim::Cycles t, double value) {
    counters_.set(id, value);
    push_sample(id, t);
  }

  // ---- eCore phase spans -------------------------------------------------

  void core_begin(arch::CoreCoord c, Phase p, std::string_view name, sim::Cycles t) {
    begin(core_track(c), p, name, t);
  }
  void core_end(arch::CoreCoord c, sim::Cycles t) { end(core_track(c), t); }
  /// A span whose extent is known at issue time (a compute Delay).
  void core_span(arch::CoreCoord c, Phase p, std::string_view name, sim::Cycles t0,
                 sim::Cycles t1) {
    const std::uint32_t tr = core_track(c);
    begin(tr, p, name, t0);
    end(tr, t1);
  }
  /// Kernel-reported retired flops (per-core + machine-total counters).
  void count_flops(arch::CoreCoord c, sim::Cycles t, double flops) {
    if (flops_total_ == Counters::kNone) {
      flops_total_ = counters_.define("flops", Counters::Kind::Monotonic);
    }
    count(flops_total_, t, flops);
    auto& id = flops_core_[dims_.index_of(c)];
    if (id == Counters::kNone) {
      id = counters_.define("flops@" + arch::to_string(c), Counters::Kind::Monotonic);
    }
    count(id, t, flops);
  }

  [[nodiscard]] std::uint32_t core_track(arch::CoreCoord c) {
    auto& tr = core_tracks_[dims_.index_of(c)];
    if (tr == kNoTrack) tr = add_track("core " + arch::to_string(c), true, c);
    return tr;
  }

  // ---- DMA ----------------------------------------------------------------

  [[nodiscard]] std::uint32_t dma_track(arch::CoreCoord c, unsigned chan) {
    auto& tr = dma_tracks_[dims_.index_of(c) * 2 + chan];
    if (tr == kNoTrack) {
      tr = add_track("dma" + std::to_string(chan) + "@" + arch::to_string(c));
    }
    return tr;
  }

  /// A committed DMA chunk: instant on the channel track + byte counters.
  void dma_chunk(std::uint32_t track, arch::CoreCoord owner, std::uint32_t bytes,
                 sim::Cycles t) {
    instant(track, "chunk", t, "bytes", bytes);
    if (dma_bytes_ == Counters::kNone) {
      dma_bytes_ = counters_.define("dma.bytes", Counters::Kind::Monotonic);
    }
    count(dma_bytes_, t, bytes);
    (void)owner;
  }

  // ---- eLink ---------------------------------------------------------------

  /// One granted eLink transaction: a span on the direction's track over the
  /// link-occupancy window, stamped with the requester and its queueing
  /// stall. Feeds the grant/stall counters behind the Tables II/III shapes.
  void elink_txn(ElinkKind k, arch::CoreCoord c, std::uint32_t bytes,
                 sim::Cycles enqueued, sim::Cycles start, sim::Cycles done) {
    const auto ki = static_cast<unsigned>(k);
    const std::uint32_t tr = elink_track(k);
    Event e;
    e.type = Event::Type::Begin;
    e.phase = Phase::Comm;
    e.track = tr;
    e.name = intern(arch::to_string(c));
    e.t = start;
    e.arg_name[0] = intern("bytes");
    e.arg[0] = bytes;
    e.arg_name[1] = intern("stall_cycles");
    e.arg[1] = start - enqueued;
    events_.push_back(e);
    end(tr, done);

    if (elink_bytes_[ki] == Counters::kNone) {
      const std::string base = std::string("elink.") + to_string(k);
      elink_bytes_[ki] = counters_.define(base + ".bytes", Counters::Kind::Monotonic);
      elink_stall_[ki] =
          counters_.define(base + ".stall_cycles", Counters::Kind::Monotonic);
    }
    count(elink_bytes_[ki], done, bytes);
    count(elink_stall_[ki], start, static_cast<double>(start - enqueued));
    auto& cid = elink_core_bytes_[ki][dims_.index_of(c)];
    if (cid == Counters::kNone) {
      cid = counters_.define(std::string("elink.") + to_string(k) + ".bytes@" +
                                 arch::to_string(c),
                             Counters::Kind::Monotonic);
    }
    count(cid, done, bytes);
  }

  [[nodiscard]] std::uint32_t elink_track(ElinkKind k) {
    auto& tr = elink_tracks_[static_cast<unsigned>(k)];
    if (tr == kNoTrack) tr = add_track(std::string("eLink ") + to_string(k));
    return tr;
  }

  // ---- eMesh ----------------------------------------------------------------

  /// A burst occupying directed link (router, dir) for [start, done): a span
  /// on the link's track plus per-link and machine-total byte counters.
  void mesh_link(arch::CoreCoord router, arch::Dir d, std::uint32_t bytes,
                 sim::Cycles start, sim::Cycles done) {
    const std::size_t li =
        static_cast<std::size_t>(dims_.index_of(router)) * 4 + static_cast<unsigned>(d);
    auto& tr = link_tracks_[li];
    if (tr == kNoTrack) {
      tr = add_track("mesh " + arch::to_string(router) + "." + arch::to_string(d));
    }
    Event e;
    e.type = Event::Type::Begin;
    e.phase = Phase::Comm;
    e.track = tr;
    e.name = intern("burst");
    e.t = start;
    e.arg_name[0] = intern("bytes");
    e.arg[0] = bytes;
    events_.push_back(e);
    end(tr, done);

    if (mesh_bytes_ == Counters::kNone) {
      mesh_bytes_ = counters_.define("mesh.bytes", Counters::Kind::Monotonic);
    }
    count(mesh_bytes_, done, bytes);
    auto& cid = link_bytes_[li];
    if (cid == Counters::kNone) {
      cid = counters_.define(
          "mesh.bytes@" + arch::to_string(router) + "." + arch::to_string(d),
          Counters::Kind::Monotonic);
    }
    count(cid, done, bytes);
  }

  // ---- mem::MemoryHook (functional traffic counters) -----------------------
  // The host issues traffic as core (0,0); its preloads land in that core's
  // counters (documented model quirk).

  void on_write(arch::Addr, std::size_t n, arch::CoreCoord issuer,
                sim::Cycles now) override {
    count(mem_counter(mem_write_, "mem.write.bytes@", issuer), now,
          static_cast<double>(n));
  }
  void on_read(arch::Addr, std::size_t n, arch::CoreCoord issuer,
               sim::Cycles now) override {
    count(mem_counter(mem_read_, "mem.read.bytes@", issuer), now,
          static_cast<double>(n));
  }
  void on_sync(arch::CoreCoord, sim::Cycles now) override {
    if (sync_acquires_ == Counters::kNone) {
      sync_acquires_ = counters_.define("sync.acquires", Counters::Kind::Monotonic);
    }
    count(sync_acquires_, now, 1.0);
  }

private:
  static constexpr std::uint32_t kNoTrack = ~std::uint32_t{0};
  static constexpr std::uint32_t kNoEvent = ~std::uint32_t{0};

  /// Record a Counter sample of `id`'s current value at `t`, coalescing with
  /// the previous sample when it landed on the same cycle.
  void push_sample(Counters::Id id, sim::Cycles t) {
    if (id >= last_sample_.size()) last_sample_.resize(id + 1, kNoEvent);
    const std::uint32_t last = last_sample_[id];
    if (last != kNoEvent && events_[last].t == t &&
        events_[last].type == Event::Type::Counter && events_[last].track == id) {
      events_[last].value = counters_.value(id);
      return;
    }
    last_sample_[id] = static_cast<std::uint32_t>(events_.size());
    Event e;
    e.type = Event::Type::Counter;
    e.track = id;
    e.t = t;
    e.value = counters_.value(id);
    events_.push_back(e);
  }

  Counters::Id mem_counter(std::vector<Counters::Id>& ids, const char* prefix,
                           arch::CoreCoord c) {
    auto& id = ids[dims_.index_of(c)];
    if (id == Counters::kNone) {
      id = counters_.define(prefix + arch::to_string(c), Counters::Kind::Monotonic);
    }
    return id;
  }

  arch::MeshDims dims_;
  std::vector<Event> events_;
  std::vector<Track> tracks_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> intern_;
  Counters counters_;
  std::vector<std::uint32_t> last_sample_;  // counter id -> last sample event

  // Lazily-created tracks and counters (created in first-use order, which is
  // deterministic because the engine is).
  std::vector<std::uint32_t> core_tracks_;
  std::vector<std::uint32_t> dma_tracks_;
  std::vector<std::uint32_t> link_tracks_;
  std::uint32_t elink_tracks_[2] = {kNoTrack, kNoTrack};
  std::vector<Counters::Id> link_bytes_;
  std::vector<Counters::Id> mem_read_;
  std::vector<Counters::Id> mem_write_;
  std::vector<Counters::Id> elink_core_bytes_[2];
  std::vector<Counters::Id> flops_core_;
  Counters::Id elink_bytes_[2] = {Counters::kNone, Counters::kNone};
  Counters::Id elink_stall_[2] = {Counters::kNone, Counters::kNone};
  Counters::Id mesh_bytes_ = Counters::kNone;
  Counters::Id dma_bytes_ = Counters::kNone;
  Counters::Id flops_total_ = Counters::kNone;
  Counters::Id sync_acquires_ = Counters::kNone;
};

}  // namespace epi::trace
