#pragma once
// Exporters for recorded traces:
//
//   * write_chrome_trace  -- Chrome/Perfetto "trace event" JSON. Open the
//     file at ui.perfetto.dev (or chrome://tracing). Timestamps are engine
//     cycles written into the `ts` microsecond field, so the viewer's "us"
//     readout is really cycles; at the paper's 600 MHz, 600 "us" = 1 real us.
//   * write_counters_csv  -- `name,kind,value` rows in definition order.
//   * write_summary       -- terminal top-N counter table plus the profiler's
//     per-core cycle-attribution breakdown.
//
// All exporters iterate creation-ordered vectors (never hash maps), so for a
// deterministic simulation run the bytes written are identical run over run;
// tests assert this.

#include <iosfwd>
#include <string>
#include <vector>

namespace epi::trace {

class Tracer;
class Counters;
struct ProfileReport;

/// Chrome trace-event JSON ("traceEvents" array form) for the whole trace.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// One Chrome process in a multi-machine (cluster) trace: the chip name
/// becomes the process label, the tracer supplies its tracks and events.
struct ChromeProcess {
  std::string name;
  const Tracer* tracer = nullptr;
};

/// Multi-process Chrome trace: one pid per entry (cluster mode exports one
/// process per chip, so per-chip counters like sched.cluster.chipN.faults
/// land on that chip's own counter track).
void write_chrome_trace(std::ostream& os,
                        const std::vector<ChromeProcess>& processes);

/// All counters as CSV: header then `name,kind,value` per counter.
void write_counters_csv(std::ostream& os, const Counters& counters);

/// Human-readable summary: aggregate counters, top-N per-entity counters,
/// and (when `report` is non-null) the per-core attribution table.
void write_summary(std::ostream& os, const Tracer& tracer,
                   const ProfileReport* report = nullptr, unsigned top_n = 8);

/// Format a counter/metric value: integers exactly, doubles round-tripped.
[[nodiscard]] std::string format_number(double v);

/// JSON-escape `s` (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace epi::trace
