#pragma once
// epi-shmem: an OpenSHMEM-style PGAS runtime over the flat coreid<<20
// address map (Ross & Richie, arXiv:1604.04205 / 1608.03545).
//
// The model: every PE (one eCore of a workgroup) owns an identically laid
// out *symmetric heap* in its scratchpad. An object allocated from the heap
// lives at the same local offset on every PE, so any PE can name any other
// PE's copy by composing the owner's global window with the shared offset --
// exactly the addressing trick the papers exploit on Epiphany, where
// remote scratchpads are plain loads/stores away.
//
// One-sided data movement follows the papers' split:
//   * small transfers issue direct remote stores / loads (the paper's
//     Listing-1 fully unrolled copy idiom),
//   * large transfers build DMA descriptors and let the engine stream them,
//   * put_with_signal chains a 4-byte flag store behind the data descriptor
//     so the payload is observable strictly before the flag.
// Synchronisation is flag-generation based: barrier_all is a dissemination
// barrier over per-round flag words, broadcast and the reductions run
// binomial trees, and every wait goes through CoreCtx::wait_u32 so the
// runtime MemSanitizer observes the acquire edge (a clean shmem program
// produces zero race findings).
//
// Everything is deterministic under the event engine, and observable through
// trace::Counters: shmem.puts / shmem.gets / shmem.bytes /
// shmem.barrier_waits / shmem.broadcasts / shmem.reductions.

#include <cstdint>
#include <memory>

#include "arch/address_map.hpp"
#include "arch/coords.hpp"
#include "device/core_ctx.hpp"
#include "machine/machine.hpp"
#include "sim/task.hpp"
#include "trace/counters.hpp"

namespace epi::shmem {

// ---- scratchpad layout ----------------------------------------------------
// The shmem runtime claims the 256 bytes right above the device runtime's
// reserved words (CoreCtx barrier slots / status) for its own flag words and
// staging slots; the symmetric heap spans bank 1 upward by default, leaving
// bank 0 as the conventional code bank.
inline constexpr arch::Addr kRuntimeBase = 0x0200;
inline constexpr unsigned kMaxRounds = 8;  // ceil(log2(64)) = 6 rounds + slack
inline constexpr arch::Addr kBarrierFlags = 0x0200;   // kMaxRounds x 4 B
inline constexpr arch::Addr kBcastFlag = 0x0220;      // broadcast arrival
inline constexpr arch::Addr kResultFlag = 0x0224;     // allreduce down-sweep
inline constexpr arch::Addr kReduceFlags = 0x0228;    // kMaxRounds x 4 B
inline constexpr arch::Addr kReduceSlots = 0x0248;    // kMaxRounds x 8 B
inline constexpr arch::Addr kResultSlot = 0x0288;     // 8 B reduced value
inline constexpr arch::Addr kSignalStage = 0x0290;    // 8 B DMA signal source
inline constexpr arch::Addr kRuntimeEnd = 0x0300;

inline constexpr arch::Addr kDefaultHeapBase = 0x2000;
inline constexpr arch::Addr kDefaultHeapEnd = arch::AddressMap::kLocalMemBytes;

struct Config {
  arch::Addr heap_base = kDefaultHeapBase;
  arch::Addr heap_end = kDefaultHeapEnd;
  /// Transfers of at most this many bytes use direct remote stores/loads;
  /// larger ones build DMA descriptors (the papers' crossover regime).
  std::uint32_t dma_threshold = 256;
};

/// Host-side bump allocator handing out offsets that are valid on *every*
/// PE's scratchpad (shmem_malloc). Deterministic: allocation order alone
/// decides placement.
class SymmetricHeap {
public:
  SymmetricHeap(arch::Addr base, arch::Addr end);

  /// Allocate `bytes` at `align` (power of two). Throws std::bad_alloc on
  /// exhaustion, std::invalid_argument on a bad alignment or zero size.
  [[nodiscard]] arch::Addr alloc(std::uint32_t bytes, std::uint32_t align = 8);
  void reset() noexcept { top_ = base_; }

  [[nodiscard]] arch::Addr base() const noexcept { return base_; }
  [[nodiscard]] arch::Addr end() const noexcept { return end_; }
  [[nodiscard]] std::uint32_t used() const noexcept {
    return static_cast<std::uint32_t>(top_ - base_);
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(end_ - base_);
  }

private:
  arch::Addr base_;
  arch::Addr end_;
  arch::Addr top_;
};

/// Shared state of one PGAS world: the workgroup shape, the symmetric heap,
/// and the counter registry. Constructing a Group scrubs the shmem runtime
/// words of every member core (host-side, zero simulated cost, issued as
/// each core's own write) so reused cores never see a stale generation.
///
/// Kernel closures hold the Group by shared_ptr: it deliberately captures
/// machine + GroupInfo rather than a host::Workgroup, which the serving
/// runtime moves after load().
class Group {
public:
  Group(machine::Machine& m, device::GroupInfo info, Config cfg = {});

  [[nodiscard]] machine::Machine& machine() noexcept { return *m_; }
  [[nodiscard]] const device::GroupInfo& info() const noexcept { return info_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] SymmetricHeap& heap() noexcept { return heap_; }
  [[nodiscard]] unsigned n_pes() const noexcept { return info_.size(); }
  [[nodiscard]] arch::CoreCoord coord_of(unsigned pe) const noexcept {
    return {info_.origin.row + pe / info_.cols, info_.origin.col + pe % info_.cols};
  }

  /// The registry the shmem.* counters live in (the machine tracer's when
  /// tracing is on, else a Group-private one).
  [[nodiscard]] const trace::Counters& counters() const noexcept { return *counters_; }

  /// Re-zero the runtime flag words (also done by the constructor).
  void reset_runtime_words();

  // Counter bumps (called by Pe on the device path; routed through the
  // tracer when present so the time series lands on the timeline).
  void note_put(std::uint32_t bytes);
  void note_get(std::uint32_t bytes);
  void note_barrier(unsigned waits);
  void note_broadcast();
  void note_reduction();

private:
  void bump(trace::Counters::Id id, double delta);

  machine::Machine* m_;
  device::GroupInfo info_;
  Config cfg_;
  SymmetricHeap heap_;
  std::unique_ptr<trace::Counters> owned_counters_;
  trace::Counters* counters_;
  trace::Counters::Id c_puts_ = trace::Counters::kNone;
  trace::Counters::Id c_gets_ = trace::Counters::kNone;
  trace::Counters::Id c_bytes_ = trace::Counters::kNone;
  trace::Counters::Id c_barrier_waits_ = trace::Counters::kNone;
  trace::Counters::Id c_broadcasts_ = trace::Counters::kNone;
  trace::Counters::Id c_reductions_ = trace::Counters::kNone;
};

enum class ReduceOp : std::uint8_t { Sum, Min, Max };

/// Per-PE handle a kernel constructs on its coroutine frame: identity,
/// addressing, one-sided puts/gets and the collectives. Generation counters
/// for the flag protocols live here, so one Pe must serve the whole kernel
/// (collective calls must be made by every PE in the same order -- the
/// usual SPMD contract).
class Pe {
public:
  Pe(device::CoreCtx& ctx, Group& group);

  [[nodiscard]] unsigned my_pe() const noexcept { return ctx_->group_index(); }
  [[nodiscard]] unsigned n_pes() const noexcept { return group_->n_pes(); }
  [[nodiscard]] device::CoreCtx& ctx() noexcept { return *ctx_; }
  [[nodiscard]] Group& group() noexcept { return *group_; }

  /// Global address of symmetric offset `sym_off` on PE `pe`.
  [[nodiscard]] arch::Addr remote(unsigned pe, arch::Addr sym_off) const;

  // ---- one-sided data movement (offsets are symmetric-heap offsets; byte
  // counts must be multiples of 4, as for OpenSHMEM's typed interfaces) ----
  /// Blocking put: copy `bytes` from my `src_off` into `target`'s `dst_off`.
  sim::Op<void> put(unsigned target, arch::Addr dst_off, arch::Addr src_off,
                    std::uint32_t bytes);
  /// Non-blocking put: large transfers stream on the DMA channel and return
  /// immediately; completion is observed by quiet()/fence().
  sim::Op<void> put_nbi(unsigned target, arch::Addr dst_off, arch::Addr src_off,
                        std::uint32_t bytes);
  /// Blocking get: copy `bytes` from `source`'s `src_off` into my `dst_off`.
  sim::Op<void> get(unsigned source, arch::Addr dst_off, arch::Addr src_off,
                    std::uint32_t bytes);
  /// Put, then make `sig_off` on the target observe `sig_val` -- the flag
  /// commits strictly after the payload (chained DMA descriptor on the large
  /// path, program-ordered store on the small path). The target acquires
  /// with wait_signal_ge().
  sim::Op<void> put_with_signal(unsigned target, arch::Addr dst_off,
                                arch::Addr src_off, std::uint32_t bytes,
                                arch::Addr sig_off, std::uint32_t sig_val);
  /// Spin (event-driven) until my copy of `sig_off` reaches `value`. The
  /// acquire edge is visible to the runtime sanitizer.
  sim::Op<void> wait_signal_ge(arch::Addr sig_off, std::uint32_t value);
  /// Complete all outstanding non-blocking puts from this PE.
  sim::Op<void> quiet();
  /// Order preceding puts before subsequent ones. One in-order channel per
  /// PE means completion is the ordering point: same as quiet().
  sim::Op<void> fence();

  // ---- collectives (every PE of the group must participate) --------------
  /// Dissemination barrier over per-round flag generations.
  sim::Op<void> barrier_all();
  /// Binomial-tree broadcast of `bytes` at symmetric `sym_off` from `root`.
  sim::Op<void> broadcast(unsigned root, arch::Addr sym_off, std::uint32_t bytes);
  /// Binomial-tree all-reduce; every PE returns the combined value.
  sim::Op<float> allreduce_f32(ReduceOp op, float v);
  sim::Op<std::int32_t> allreduce_i32(ReduceOp op, std::int32_t v);

private:
  sim::Op<void> dma_copy(arch::Addr dst, arch::Addr src, std::uint32_t bytes,
                         const dma::DmaDescriptor* chain);
  sim::Op<void> drain();  // wait out an outstanding non-blocking DMA
  sim::Op<std::uint32_t> allreduce_bits(ReduceOp op, bool is_float,
                                        std::uint32_t bits);

  static void check_len(std::uint32_t bytes);

  device::CoreCtx* ctx_;
  Group* group_;
  bool dma_outstanding_ = false;
  std::uint32_t barrier_gen_ = 0;
  std::uint32_t bcast_gen_ = 0;
  std::uint32_t reduce_gen_ = 0;

  static constexpr unsigned kChan = 1;  // shmem owns DMA channel 1
};

}  // namespace epi::shmem
