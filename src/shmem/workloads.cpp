#include "shmem/workloads.hpp"

#include <algorithm>
#include <cstring>

#include "core/matmul_schedule.hpp"
#include "mem/memory_system.hpp"
#include "util/fmt.hpp"

namespace epi::shmem {

namespace {

using arch::Addr;

[[nodiscard]] std::uint32_t mix(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                                std::uint32_t d) noexcept {
  std::uint32_t x = a * 0x9E3779B9u ^ b * 0x85EBCA6Bu ^ c * 0xC2B2AE35u ^
                    d * 0x27D4EB2Fu ^ 0x165667B1u;
  x ^= x >> 16;
  x *= 0x045D9F3Bu;
  x ^= x >> 13;
  return x;
}

/// Host write issued as the owning core's own store (initialisation, not
/// cross-core traffic, to the sanitizer's eyes).
void host_word(machine::Machine& m, arch::CoreCoord c, Addr offset, std::uint32_t v) {
  auto& mem = m.mem();
  mem.write_value<std::uint32_t>(mem.map().global(c, offset), v, c);
}

[[nodiscard]] float read_float(machine::Machine& m, arch::CoreCoord c, Addr offset) {
  auto& mem = m.mem();
  float f;  // hook-invisible readback: validation is not traffic
  std::memcpy(&f, mem.resolve(mem.map().global(c, offset), sizeof f, {0, 0}).data(),
              sizeof f);
  return f;
}

[[nodiscard]] std::uint32_t read_word(machine::Machine& m, arch::CoreCoord c,
                                      Addr offset) {
  auto& mem = m.mem();
  std::uint32_t w;
  std::memcpy(&w, mem.resolve(mem.map().global(c, offset), sizeof w, {0, 0}).data(),
              sizeof w);
  return w;
}

[[nodiscard]] arch::CoreCoord member(const device::GroupInfo& info, unsigned r,
                                     unsigned c) noexcept {
  return {info.origin.row + r, info.origin.col + c};
}

}  // namespace

// ---- Cannon's blocked matmul ---------------------------------------------

CannonPlan plan_cannon(SymmetricHeap& heap, const device::GroupInfo& info,
                       unsigned block, unsigned iters) {
  CannonPlan plan;
  plan.p = std::min(info.rows, info.cols);
  plan.block = std::max(1u, block);
  plan.iters = std::max(1u, iters);
  const std::uint32_t bytes = plan.block * plan.block * 4;
  plan.a = heap.alloc(bytes);
  plan.b = heap.alloc(bytes);
  plan.c = heap.alloc(bytes);
  plan.stage_a = heap.alloc(bytes);
  plan.stage_b = heap.alloc(bytes);
  plan.sig_a = heap.alloc(4, 4);
  plan.sig_b = heap.alloc(4, 4);
  return plan;
}

float cannon_input(std::uint32_t seed, unsigned which, unsigned r, unsigned c) noexcept {
  // Small integers, exact in float: sums of <= 2^10 products of magnitude
  // <= 4 stay integral, so Cannon's reordered accumulation matches the host
  // reference bit for bit.
  return static_cast<float>(static_cast<int>(mix(seed, which, r, c) % 5u) - 2);
}

void fill_cannon_inputs(machine::Machine& m, const device::GroupInfo& info,
                        const CannonPlan& plan, std::uint32_t seed) {
  const unsigned p = plan.p;
  const unsigned b = plan.block;
  for (unsigned i = 0; i < p; ++i) {
    for (unsigned j = 0; j < p; ++j) {
      const arch::CoreCoord c = member(info, i, j);
      const unsigned skew = (i + j) % p;  // Cannon's initial alignment
      for (unsigned r = 0; r < b; ++r) {
        for (unsigned col = 0; col < b; ++col) {
          const Addr off = 4 * (r * b + col);
          const float av = cannon_input(seed, 0, i * b + r, skew * b + col);
          const float bv = cannon_input(seed, 1, skew * b + r, j * b + col);
          host_word(m, c, plan.a + off, std::bit_cast<std::uint32_t>(av));
          host_word(m, c, plan.b + off, std::bit_cast<std::uint32_t>(bv));
          host_word(m, c, plan.c + off, 0);
        }
      }
      host_word(m, c, plan.sig_a, 0);
      host_word(m, c, plan.sig_b, 0);
    }
  }
}

std::string verify_cannon_output(machine::Machine& m, const device::GroupInfo& info,
                                 const CannonPlan& plan, std::uint32_t seed) {
  const unsigned p = plan.p;
  const unsigned b = plan.block;
  const unsigned n = p * b;
  for (unsigned i = 0; i < p; ++i) {
    for (unsigned j = 0; j < p; ++j) {
      const arch::CoreCoord c = member(info, i, j);
      for (unsigned r = 0; r < b; ++r) {
        for (unsigned col = 0; col < b; ++col) {
          float want = 0.0f;
          for (unsigned k = 0; k < n; ++k) {
            want += cannon_input(seed, 0, i * b + r, k) *
                    cannon_input(seed, 1, k, j * b + col);
          }
          want *= static_cast<float>(plan.iters);
          const float got = read_float(m, c, plan.c + 4 * (r * b + col));
          if (got != want) {
            return util::format(
                "cannon C block of core (%u,%u) element (%u,%u): got %g want %g",
                c.row, c.col, r, col, static_cast<double>(got),
                static_cast<double>(want));
          }
        }
      }
    }
  }
  return {};
}

sim::Op<void> cannon_kernel(device::CoreCtx& ctx, std::shared_ptr<Group> group,
                            CannonPlan plan) {
  Pe pe(ctx, *group);
  const unsigned p = plan.p;
  const unsigned row = ctx.group_row();
  const unsigned col = ctx.group_col();
  const unsigned cols = ctx.group_cols();
  const bool active = row < p && col < p;
  const unsigned b = plan.block;
  const std::uint32_t bytes = b * b * 4;
  std::uint32_t gen = 0;
  for (unsigned it = 0; it < plan.iters; ++it) {
    for (unsigned s = 0; s < p; ++s) {
      if (active) {
        {
          auto ph = ctx.phase(trace::Phase::Compute, "cannon-block");
          co_await ctx.compute(core::MatmulSchedule::block_cycles(
              b, b, b, core::Codegen::TunedAsm));
          ctx.count_flops(core::MatmulSchedule::block_flops(b, b, b));
          auto A = ctx.local_array<float>(plan.a, bytes / 4);
          auto B = ctx.local_array<float>(plan.b, bytes / 4);
          auto C = ctx.local_array<float>(plan.c, bytes / 4);
          for (unsigned r = 0; r < b; ++r) {
            for (unsigned k = 0; k < b; ++k) {
              const float a = A[r * b + k];
              for (unsigned q = 0; q < b; ++q) C[r * b + q] += a * B[k * b + q];
            }
          }
        }
        if (p > 1) {
          ++gen;
          // Rotate A westward and B northward around the active torus; the
          // chained signal tells the receiver its staged block is complete.
          const unsigned west = row * cols + (col + p - 1) % p;
          const unsigned north = ((row + p - 1) % p) * cols + col;
          co_await pe.put_with_signal(west, plan.stage_a, plan.a, bytes,
                                      plan.sig_a, gen);
          co_await pe.put_with_signal(north, plan.stage_b, plan.b, bytes,
                                      plan.sig_b, gen);
          co_await pe.wait_signal_ge(plan.sig_a, gen);
          co_await pe.wait_signal_ge(plan.sig_b, gen);
          co_await ctx.direct_write_block(ctx.my_global(plan.a),
                                          ctx.my_global(plan.stage_a), bytes);
          co_await ctx.direct_write_block(ctx.my_global(plan.b),
                                          ctx.my_global(plan.stage_b), bytes);
        }
      }
      // Everyone (including PEs outside the active square) meets here, so a
      // sender can never run a full lap ahead and overwrite a staged block
      // its neighbour has not consumed yet.
      if (group->n_pes() > 1) co_await pe.barrier_all();
    }
  }
}

// ---- all-to-all transpose -------------------------------------------------

TransposePlan plan_transpose(SymmetricHeap& heap, const device::GroupInfo& info,
                             unsigned elems, unsigned iters) {
  TransposePlan plan;
  plan.n = info.size();
  plan.elems = std::max(1u, elems);
  plan.iters = std::max(1u, iters);
  const std::uint32_t block_bytes = plan.elems * 4;
  plan.send = heap.alloc(plan.n * block_bytes);
  plan.recv = heap.alloc(plan.n * block_bytes);
  plan.sig = heap.alloc(plan.n * 4, 4);
  return plan;
}

std::uint32_t transpose_word(std::uint32_t seed, unsigned src, unsigned dst,
                             unsigned e) noexcept {
  return mix(seed, src, dst, e);
}

void fill_transpose_inputs(machine::Machine& m, const device::GroupInfo& info,
                           const TransposePlan& plan, std::uint32_t seed) {
  const std::uint32_t block_bytes = plan.elems * 4;
  for (unsigned pe = 0; pe < plan.n; ++pe) {
    const arch::CoreCoord c = member(info, pe / info.cols, pe % info.cols);
    for (unsigned dst = 0; dst < plan.n; ++dst) {
      for (unsigned e = 0; e < plan.elems; ++e) {
        host_word(m, c, plan.send + dst * block_bytes + 4 * e,
                  transpose_word(seed, pe, dst, e));
      }
      host_word(m, c, plan.sig + 4 * dst, 0);
    }
  }
}

std::string verify_transpose_output(machine::Machine& m, const device::GroupInfo& info,
                                    const TransposePlan& plan, std::uint32_t seed) {
  const std::uint32_t block_bytes = plan.elems * 4;
  for (unsigned pe = 0; pe < plan.n; ++pe) {
    const arch::CoreCoord c = member(info, pe / info.cols, pe % info.cols);
    for (unsigned src = 0; src < plan.n; ++src) {
      for (unsigned e = 0; e < plan.elems; ++e) {
        const std::uint32_t want = transpose_word(seed, src, pe, e);
        const std::uint32_t got =
            read_word(m, c, plan.recv + src * block_bytes + 4 * e);
        if (got != want) {
          return util::format(
              "transpose recv slot %u word %u on core (%u,%u): got 0x%08x "
              "want 0x%08x",
              src, e, c.row, c.col, got, want);
        }
      }
    }
  }
  return {};
}

sim::Op<void> transpose_kernel(device::CoreCtx& ctx, std::shared_ptr<Group> group,
                               TransposePlan plan) {
  Pe pe(ctx, *group);
  const unsigned n = plan.n;
  const unsigned me = ctx.group_index();
  const std::uint32_t block_bytes = plan.elems * 4;
  for (unsigned it = 0; it < plan.iters; ++it) {
    const std::uint32_t gen = it + 1;
    auto ph = ctx.phase(trace::Phase::Comm, "all-to-all");
    // My own block needs no network trip.
    co_await ctx.direct_write_block(ctx.my_global(plan.recv + me * block_bytes),
                                    ctx.my_global(plan.send + me * block_bytes),
                                    block_bytes);
    // Staggered schedule: in round k, PE i targets PE (i+k) mod n -- a
    // rotating permutation, so no destination is ever hit by two senders in
    // the same round.
    for (unsigned k = 1; k < n; ++k) {
      const unsigned dst = (me + k) % n;
      co_await pe.put_with_signal(dst, plan.recv + me * block_bytes,
                                  plan.send + dst * block_bytes, block_bytes,
                                  plan.sig + 4 * me, gen);
    }
    for (unsigned k = 1; k < n; ++k) {
      const unsigned src = (me + n - k) % n;
      co_await pe.wait_signal_ge(plan.sig + 4 * src, gen);
    }
    if (n > 1) co_await pe.barrier_all();
  }
}

}  // namespace epi::shmem
