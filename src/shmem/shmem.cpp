#include "shmem/shmem.hpp"

#include <bit>
#include <algorithm>
#include <new>
#include <stdexcept>

#include "dma/descriptor.hpp"
#include "mem/memory_system.hpp"
#include "trace/tracer.hpp"

namespace epi::shmem {

namespace {

using arch::Addr;

[[nodiscard]] unsigned pow2_ge(unsigned n) noexcept {
  unsigned p = 1;
  while (p < n) p <<= 1;
  return p;
}

[[nodiscard]] unsigned lowbit(unsigned x) noexcept { return x & (~x + 1u); }

[[nodiscard]] std::uint32_t combine(ReduceOp op, bool is_float, std::uint32_t a,
                                    std::uint32_t b) noexcept {
  if (is_float) {
    const float x = std::bit_cast<float>(a);
    const float y = std::bit_cast<float>(b);
    float r = 0.0f;
    switch (op) {
      case ReduceOp::Sum: r = x + y; break;
      case ReduceOp::Min: r = std::min(x, y); break;
      case ReduceOp::Max: r = std::max(x, y); break;
    }
    return std::bit_cast<std::uint32_t>(r);
  }
  const auto x = std::bit_cast<std::int32_t>(a);
  const auto y = std::bit_cast<std::int32_t>(b);
  std::int32_t r = 0;
  switch (op) {
    case ReduceOp::Sum: r = x + y; break;
    case ReduceOp::Min: r = std::min(x, y); break;
    case ReduceOp::Max: r = std::max(x, y); break;
  }
  return std::bit_cast<std::uint32_t>(r);
}

}  // namespace

// ---- SymmetricHeap --------------------------------------------------------

SymmetricHeap::SymmetricHeap(Addr base, Addr end) : base_(base), end_(end), top_(base) {
  if (base >= end || end > arch::AddressMap::kLocalMemBytes) {
    throw std::invalid_argument("symmetric heap must sit inside the 32 KB scratchpad");
  }
  if (base < kRuntimeEnd) {
    throw std::invalid_argument("symmetric heap overlaps the shmem runtime words");
  }
}

Addr SymmetricHeap::alloc(std::uint32_t bytes, std::uint32_t align) {
  if (bytes == 0) throw std::invalid_argument("shmem_malloc of zero bytes");
  if (align == 0 || (align & (align - 1)) != 0) {
    throw std::invalid_argument("shmem_malloc alignment must be a power of two");
  }
  const Addr at = (top_ + align - 1) & ~static_cast<Addr>(align - 1);
  if (at + bytes > end_) throw std::bad_alloc{};
  top_ = at + bytes;
  return at;
}

// ---- Group ----------------------------------------------------------------

Group::Group(machine::Machine& m, device::GroupInfo info, Config cfg)
    : m_(&m), info_(info), cfg_(cfg), heap_(cfg.heap_base, cfg.heap_end) {
  if (auto* tr = m_->tracer()) {
    counters_ = &tr->counters();
  } else {
    owned_counters_ = std::make_unique<trace::Counters>();
    counters_ = owned_counters_.get();
  }
  using K = trace::Counters::Kind;
  c_puts_ = counters_->define("shmem.puts", K::Monotonic);
  c_gets_ = counters_->define("shmem.gets", K::Monotonic);
  c_bytes_ = counters_->define("shmem.bytes", K::Monotonic);
  c_barrier_waits_ = counters_->define("shmem.barrier_waits", K::Monotonic);
  c_broadcasts_ = counters_->define("shmem.broadcasts", K::Monotonic);
  c_reductions_ = counters_->define("shmem.reductions", K::Monotonic);
  reset_runtime_words();
}

void Group::reset_runtime_words() {
  auto& mem = m_->mem();
  for (unsigned pe = 0; pe < n_pes(); ++pe) {
    const arch::CoreCoord c = coord_of(pe);
    for (Addr a = kRuntimeBase; a < kRuntimeEnd; a += 4) {
      // Issued as the core's own write: a scrub is initialisation, not
      // cross-core traffic, so the sanitizer treats later local reads as
      // reads of the core's own data.
      mem.write_value<std::uint32_t>(mem.map().global(c, a), 0, c);
    }
  }
}

void Group::bump(trace::Counters::Id id, double delta) {
  if (auto* tr = m_->tracer()) {
    tr->count(id, m_->engine().now(), delta);
  } else {
    counters_->add(id, delta);
  }
}

void Group::note_put(std::uint32_t bytes) {
  bump(c_puts_, 1.0);
  bump(c_bytes_, static_cast<double>(bytes));
}

void Group::note_get(std::uint32_t bytes) {
  bump(c_gets_, 1.0);
  bump(c_bytes_, static_cast<double>(bytes));
}

void Group::note_barrier(unsigned waits) {
  bump(c_barrier_waits_, static_cast<double>(waits));
}

void Group::note_broadcast() { bump(c_broadcasts_, 1.0); }
void Group::note_reduction() { bump(c_reductions_, 1.0); }

// ---- Pe -------------------------------------------------------------------

Pe::Pe(device::CoreCtx& ctx, Group& group) : ctx_(&ctx), group_(&group) {
  if (ctx.group_rows() != group.info().rows || ctx.group_cols() != group.info().cols) {
    throw std::invalid_argument("Pe: CoreCtx and Group disagree on the workgroup shape");
  }
}

Addr Pe::remote(unsigned pe, Addr sym_off) const {
  if (pe >= group_->n_pes()) throw std::out_of_range("shmem: PE index out of range");
  return ctx_->global(group_->coord_of(pe), sym_off);
}

void Pe::check_len(std::uint32_t bytes) {
  if (bytes % 4 != 0) {
    throw std::invalid_argument("shmem transfers are word-granular (bytes % 4 == 0)");
  }
}

sim::Op<void> Pe::drain() {
  if (dma_outstanding_) {
    co_await ctx_->dma_wait(kChan);
    dma_outstanding_ = false;
  }
}

sim::Op<void> Pe::dma_copy(Addr dst, Addr src, std::uint32_t bytes,
                           const dma::DmaDescriptor* chain) {
  co_await drain();
  co_await ctx_->dma_set_desc();
  dma::DmaDescriptor d = dma::DmaDescriptor::linear(dst, src, bytes);
  if (chain != nullptr) {
    co_await ctx_->dma_set_desc();
    d.chain = chain;
  }
  co_await ctx_->dma_start(kChan, d);
  co_await ctx_->dma_wait(kChan);
}

sim::Op<void> Pe::put(unsigned target, Addr dst_off, Addr src_off, std::uint32_t bytes) {
  check_len(bytes);
  if (bytes == 0) co_return;
  const Addr dst = remote(target, dst_off);
  const Addr src = ctx_->my_global(src_off);
  if (bytes <= group_->config().dma_threshold) {
    co_await ctx_->direct_write_block(dst, src, bytes);
  } else {
    co_await dma_copy(dst, src, bytes, nullptr);
  }
  group_->note_put(bytes);
}

sim::Op<void> Pe::put_nbi(unsigned target, Addr dst_off, Addr src_off,
                          std::uint32_t bytes) {
  check_len(bytes);
  if (bytes == 0) co_return;
  const Addr dst = remote(target, dst_off);
  const Addr src = ctx_->my_global(src_off);
  if (bytes <= group_->config().dma_threshold) {
    // Small transfers are store streams: complete when issued, nothing for
    // quiet() to track.
    co_await ctx_->direct_write_block(dst, src, bytes);
  } else {
    co_await drain();
    co_await ctx_->dma_set_desc();
    co_await ctx_->dma_start(kChan, dma::DmaDescriptor::linear(dst, src, bytes));
    dma_outstanding_ = true;
  }
  group_->note_put(bytes);
}

sim::Op<void> Pe::get(unsigned source, Addr dst_off, Addr src_off, std::uint32_t bytes) {
  check_len(bytes);
  if (bytes == 0) co_return;
  const Addr src = remote(source, src_off);
  const Addr dst = ctx_->my_global(dst_off);
  if (bytes <= group_->config().dma_threshold) {
    // Load/store pairs: each remote load pays the read-network round trip;
    // the local store commits under it.
    auto& mem = group_->machine().mem();
    for (std::uint32_t off = 0; off < bytes; off += 4) {
      const std::uint32_t v = co_await ctx_->read_u32(src + off);
      mem.write_value<std::uint32_t>(dst + off, v, ctx_->coord());
    }
  } else {
    co_await dma_copy(dst, src, bytes, nullptr);
  }
  group_->note_get(bytes);
}

sim::Op<void> Pe::put_with_signal(unsigned target, Addr dst_off, Addr src_off,
                                  std::uint32_t bytes, Addr sig_off,
                                  std::uint32_t sig_val) {
  check_len(bytes);
  const Addr sig = remote(target, sig_off);
  if (bytes == 0) {
    co_await ctx_->write_u32(sig, sig_val);
    group_->note_put(4);
    co_return;
  }
  const Addr dst = remote(target, dst_off);
  const Addr src = ctx_->my_global(src_off);
  if (bytes <= group_->config().dma_threshold) {
    // Program order is delivery order on the small path: the data block
    // commits before the flag store is issued.
    co_await ctx_->direct_write_block(dst, src, bytes);
    co_await ctx_->write_u32(sig, sig_val);
  } else {
    // Chain the 4-byte flag store behind the payload descriptor: the DMA
    // engine walks the chain in order, so the signal cannot pass the data.
    co_await ctx_->write_u32(ctx_->my_global(kSignalStage), sig_val);
    const dma::DmaDescriptor tail =
        dma::DmaDescriptor::linear(sig, ctx_->my_global(kSignalStage), 4);
    co_await dma_copy(dst, src, bytes, &tail);
  }
  group_->note_put(bytes + 4);
}

sim::Op<void> Pe::wait_signal_ge(Addr sig_off, std::uint32_t value) {
  return ctx_->wait_u32_ge(ctx_->my_global(sig_off), value);
}

sim::Op<void> Pe::quiet() { return drain(); }
sim::Op<void> Pe::fence() { return drain(); }

sim::Op<void> Pe::barrier_all() {
  const unsigned n = n_pes();
  if (n <= 1) co_return;
  const std::uint32_t gen = ++barrier_gen_;
  const unsigned me = my_pe();
  unsigned waits = 0;
  for (unsigned step = 1, r = 0; step < n; step <<= 1, ++r) {
    if (r >= kMaxRounds) throw std::logic_error("shmem barrier: group too large");
    const unsigned partner = (me + step) % n;
    co_await ctx_->write_u32(remote(partner, kBarrierFlags + 4 * r), gen);
    co_await ctx_->wait_u32_ge(ctx_->my_global(kBarrierFlags + 4 * r), gen);
    ++waits;
  }
  group_->note_barrier(waits);
}

sim::Op<void> Pe::broadcast(unsigned root, Addr sym_off, std::uint32_t bytes) {
  check_len(bytes);
  const unsigned n = n_pes();
  if (root >= n) throw std::out_of_range("shmem broadcast: root out of range");
  const unsigned me = my_pe();
  const std::uint32_t gen = ++bcast_gen_;
  if (me == root) group_->note_broadcast();
  if (n <= 1) co_return;
  const unsigned rel = (me + n - root) % n;
  unsigned m;
  if (rel != 0) {
    co_await ctx_->wait_u32_ge(ctx_->my_global(kBcastFlag), gen);
    m = lowbit(rel);
  } else {
    m = pow2_ge(n);
  }
  for (m >>= 1; m != 0; m >>= 1) {
    const unsigned child_rel = rel + m;
    if (child_rel >= n) continue;
    const unsigned child = (child_rel + root) % n;
    if (bytes > 0) co_await put(child, sym_off, sym_off, bytes);
    co_await ctx_->write_u32(remote(child, kBcastFlag), gen);
  }
}

sim::Op<std::uint32_t> Pe::allreduce_bits(ReduceOp op, bool is_float,
                                          std::uint32_t bits) {
  const unsigned n = n_pes();
  const unsigned me = my_pe();
  const std::uint32_t gen = ++reduce_gen_;
  std::uint32_t acc = bits;
  group_->note_reduction();
  if (n <= 1) co_return acc;
  // Up-sweep: binomial tree onto PE 0. A child parks its partial in the
  // parent's per-round slot, then raises the round flag; the parent's
  // flag-wait is the acquire edge covering the slot read.
  for (unsigned step = 1, r = 0; step < n; step <<= 1, ++r) {
    if (r >= kMaxRounds) throw std::logic_error("shmem reduce: group too large");
    if ((me & step) != 0) {
      const unsigned parent = me - step;
      co_await ctx_->write_u32(remote(parent, kReduceSlots + 8 * r), acc);
      co_await ctx_->write_u32(remote(parent, kReduceFlags + 4 * r), gen);
      break;
    }
    if (me + step < n) {
      co_await ctx_->wait_u32_ge(ctx_->my_global(kReduceFlags + 4 * r), gen);
      const std::uint32_t other =
          co_await ctx_->read_u32(ctx_->my_global(kReduceSlots + 8 * r));
      acc = combine(op, is_float, acc, other);
    }
  }
  // Down-sweep: binomial broadcast of the combined value from PE 0.
  if (me != 0) {
    co_await ctx_->wait_u32_ge(ctx_->my_global(kResultFlag), gen);
    acc = co_await ctx_->read_u32(ctx_->my_global(kResultSlot));
  }
  for (unsigned m = (me == 0 ? pow2_ge(n) : lowbit(me)) >> 1; m != 0; m >>= 1) {
    const unsigned child = me + m;
    if (child >= n) continue;
    co_await ctx_->write_u32(remote(child, kResultSlot), acc);
    co_await ctx_->write_u32(remote(child, kResultFlag), gen);
  }
  co_return acc;
}

sim::Op<float> Pe::allreduce_f32(ReduceOp op, float v) {
  co_return std::bit_cast<float>(
      co_await allreduce_bits(op, true, std::bit_cast<std::uint32_t>(v)));
}

sim::Op<std::int32_t> Pe::allreduce_i32(ReduceOp op, std::int32_t v) {
  co_return std::bit_cast<std::int32_t>(
      co_await allreduce_bits(op, false, std::bit_cast<std::uint32_t>(v)));
}

}  // namespace epi::shmem
