#pragma once
// The two workloads the OpenSHMEM-on-Epiphany papers use to validate the
// programming model (Ross & Richie):
//
//   * Cannon's blocked matmul -- each PE of a p x p grid holds one block of
//     A, B and C; every step multiplies the resident blocks and rotates A
//     westward / B northward around the torus with put_with_signal.
//   * all-to-all transpose -- the communication core of a distributed FFT:
//     PE i sends its j-th block into slot i of PE j's receive buffer, every
//     pair signalled individually, with a staggered (i+k) mod n schedule so
//     the mesh sees a rotating permutation instead of a hotspot.
//
// Both kernels are functional (real data moves through the scratchpads, the
// host validates numerically) and both are registered as serving-job kinds
// (sched::JobKind::CannonMatmul / Transpose) so epi-serve traffic can mix
// comm-bound jobs with the compute-bound kinds.
//
// Inputs are seeded small integers (exact in float), so host reference
// results compare bit-exactly despite reordered accumulation.

#include <cstdint>
#include <memory>
#include <string>

#include "shmem/shmem.hpp"

namespace epi::shmem {

// ---- Cannon's blocked matmul ---------------------------------------------

struct CannonPlan {
  unsigned p = 1;       // active sub-square edge (min(rows, cols) of the group)
  unsigned block = 16;  // block edge; each PE holds block x block floats
  unsigned iters = 1;   // full rotations; C accumulates iters * (A x B)
  arch::Addr a = 0, b = 0, c = 0;              // resident blocks
  arch::Addr stage_a = 0, stage_b = 0;         // incoming blocks
  arch::Addr sig_a = 0, sig_b = 0;             // arrival signal words
};

/// Carve the symmetric allocations for a Cannon run out of `heap`. PEs
/// outside the p x p active square only participate in the barriers.
[[nodiscard]] CannonPlan plan_cannon(SymmetricHeap& heap, const device::GroupInfo& info,
                                     unsigned block, unsigned iters);

/// Deterministic small-integer input (exact in float): element (r, c) of the
/// global A (which == 0) or B (== 1) operand for a given seed.
[[nodiscard]] float cannon_input(std::uint32_t seed, unsigned which, unsigned r,
                                 unsigned c) noexcept;

/// Host-side fill: place the pre-skewed A/B blocks (PE (i,j) starts with
/// A(i, (i+j) mod p) and B((i+j) mod p, j)) and zero C. Writes are issued as
/// each core's own, so they count as initialisation to the sanitizer.
void fill_cannon_inputs(machine::Machine& m, const device::GroupInfo& info,
                        const CannonPlan& plan, std::uint32_t seed);

/// Validate every active PE's C block against a host reference matmul.
/// Returns "" on success, else a human-readable mismatch description.
[[nodiscard]] std::string verify_cannon_output(machine::Machine& m,
                                               const device::GroupInfo& info,
                                               const CannonPlan& plan,
                                               std::uint32_t seed);

/// The device kernel (one coroutine per PE of the group).
[[nodiscard]] sim::Op<void> cannon_kernel(device::CoreCtx& ctx,
                                          std::shared_ptr<Group> group,
                                          CannonPlan plan);

// ---- all-to-all transpose -------------------------------------------------

struct TransposePlan {
  unsigned n = 1;      // PEs in the group
  unsigned elems = 16; // 4-byte words per PE pair
  unsigned iters = 1;
  arch::Addr send = 0, recv = 0;  // n blocks of elems words each
  arch::Addr sig = 0;             // n per-source arrival words
};

[[nodiscard]] TransposePlan plan_transpose(SymmetricHeap& heap,
                                           const device::GroupInfo& info,
                                           unsigned elems, unsigned iters);

/// Deterministic word for element `e` of the block PE `src` sends to `dst`.
[[nodiscard]] std::uint32_t transpose_word(std::uint32_t seed, unsigned src,
                                           unsigned dst, unsigned e) noexcept;

void fill_transpose_inputs(machine::Machine& m, const device::GroupInfo& info,
                           const TransposePlan& plan, std::uint32_t seed);

[[nodiscard]] std::string verify_transpose_output(machine::Machine& m,
                                                  const device::GroupInfo& info,
                                                  const TransposePlan& plan,
                                                  std::uint32_t seed);

[[nodiscard]] sim::Op<void> transpose_kernel(device::CoreCtx& ctx,
                                             std::shared_ptr<Group> group,
                                             TransposePlan plan);

}  // namespace epi::shmem
