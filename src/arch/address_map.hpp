#pragma once
// The Epiphany flat, unprotected global address map (paper section II).
//
// Every eCore sees the same 32-bit address space:
//   * addresses below 1 MB ("local window") alias the issuing core's own
//     32 KB scratchpad;
//   * each core's scratchpad also appears globally at (core_id << 20),
//     where core_id = ((32 + row) << 6) | (8 + col) on the E64G401 --
//     core (0,0) lives at 0x80800000;
//   * 32 MB of shared DRAM is mapped at 0x8E000000 (the Parallella /
//     ZedBoard window used in the paper).
//
// Local scratchpad is 32 KB organised as four 8 KB banks; bank assignment
// drives both the paper's code/data placement advice and our optional
// bank-conflict accounting.

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "arch/coords.hpp"

namespace epi::arch {

using Addr = std::uint32_t;

struct AddressMap {
  // E64G401 constants (Epiphany Architecture Reference / E64G401 datasheet).
  static constexpr unsigned kBaseRow = 32;
  static constexpr unsigned kBaseCol = 8;
  static constexpr Addr kCoreWindowBits = 20;            // 1 MB per core id
  static constexpr Addr kLocalMemBytes = 32 * 1024;      // 32 KB scratchpad
  static constexpr Addr kBankBytes = 8 * 1024;           // 4 banks of 8 KB
  static constexpr unsigned kBankCount = 4;
  static constexpr Addr kExternalBase = 0x8E000000;      // shared DRAM window
  static constexpr Addr kExternalBytes = 32 * 1024 * 1024;

  MeshDims dims{};
  // Instance layout: authentic E64G401 values by default; make() relocates
  // them for the large roadmap meshes whose core ids would otherwise
  // collide with the external window (or exhaust the 32-bit space).
  unsigned base_row = kBaseRow;
  unsigned base_col = kBaseCol;
  Addr external_base = kExternalBase;
  Addr external_bytes = kExternalBytes;

  /// Build a collision-free map for `dims`. Up to 31x24 cores the authentic
  /// ZedBoard/Parallella layout fits (the E64G401's 8x8 trivially does).
  /// Larger projection meshes move the origin to absolute (1,1) -- id 0 is
  /// the local-alias window, which is exactly why real parts never place a
  /// core there -- and put the shared window on the id row just past the
  /// mesh. A 63x63 mesh (3969 cores, the closest 32-bit-addressable
  /// approximation of the 4096-core roadmap part) leaves no id row for an
  /// external window; anything larger does not fit 32-bit Epiphany
  /// addressing at all and is rejected.
  [[nodiscard]] static AddressMap make(MeshDims dims) {
    AddressMap m;
    m.dims = dims;
    if (dims.rows <= 31 && dims.cols <= 24) return m;
    if (dims.rows > 63 || dims.cols > 63) {
      throw std::invalid_argument(
          "mesh exceeds 32-bit Epiphany addressing (max 63x63 cores)");
    }
    m.base_row = 1;
    m.base_col = 1;
    if (1 + dims.rows > 63) {
      m.external_base = 0;
      m.external_bytes = 0;
    } else {
      // 32 MB = 32 core-id slots on the id row just past the mesh
      // (cols 0..31): no valid core ever owns them.
      m.external_base = static_cast<Addr>(1 + dims.rows) << (6 + kCoreWindowBits);
      m.external_bytes = kExternalBytes;
    }
    return m;
  }

  [[nodiscard]] bool has_external() const noexcept { return external_bytes > 0; }

  /// Global core id of mesh coordinate `c`.
  [[nodiscard]] std::uint32_t core_id(CoreCoord c) const noexcept {
    return ((base_row + c.row) << 6) | (base_col + c.col);
  }

  /// Global address of `offset` within core `c`'s scratchpad.
  [[nodiscard]] Addr global(CoreCoord c, Addr offset) const noexcept {
    return (core_id(c) << kCoreWindowBits) | (offset & ((1u << kCoreWindowBits) - 1));
  }

  /// True if `a` lies in the issuing core's alias window (low 1 MB).
  [[nodiscard]] static bool is_local_alias(Addr a) noexcept {
    return (a >> kCoreWindowBits) == 0;
  }

  /// True if `a` addresses the shared external DRAM window.
  [[nodiscard]] bool is_external(Addr a) const noexcept {
    return external_bytes > 0 && a >= external_base && a - external_base < external_bytes;
  }
  [[nodiscard]] Addr external_offset(Addr a) const noexcept { return a - external_base; }

  /// Mesh coordinate owning global address `a`, if it is a core window on
  /// this mesh. (External and local-alias addresses return nullopt.)
  [[nodiscard]] std::optional<CoreCoord> core_of(Addr a) const noexcept {
    if (is_external(a)) return std::nullopt;
    const std::uint32_t id = a >> kCoreWindowBits;
    if (id == 0) return std::nullopt;
    const unsigned row = (id >> 6) & 0x3F;
    const unsigned col = id & 0x3F;
    if (row < base_row || col < base_col) return std::nullopt;
    const CoreCoord c{row - base_row, col - base_col};
    if (!dims.contains(c)) return std::nullopt;
    return c;
  }

  /// Scratchpad offset of a core-window or local-alias address.
  [[nodiscard]] static Addr local_offset(Addr a) noexcept {
    return a & ((1u << kCoreWindowBits) - 1);
  }

  /// Bank index (0..3) of a scratchpad offset.
  [[nodiscard]] static unsigned bank_of(Addr offset) noexcept {
    return (offset / kBankBytes) % kBankCount;
  }
};

}  // namespace epi::arch
