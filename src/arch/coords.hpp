#pragma once
// eCore coordinates and mesh geometry.
//
// The Epiphany-IV E64G401 arranges 64 eCores in an 8x8 mesh. Each core has
// a 12-bit core id: the upper 6 bits are the mesh row, the lower 6 bits the
// mesh column, *in absolute chip coordinates*. On the E64G401 the top-left
// core sits at absolute (32, 8) -- core id 0x808 -- which is why the first
// core's local memory aliases globally at 0x80800000 (see AddressMap).

#include <cassert>
#include <compare>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace epi::arch {

/// Zero-based coordinate within the modelled mesh (row 0, col 0 = top-left).
struct CoreCoord {
  unsigned row = 0;
  unsigned col = 0;
  friend auto operator<=>(const CoreCoord&, const CoreCoord&) = default;
};

[[nodiscard]] inline std::string to_string(const CoreCoord& c) {
  return "(" + std::to_string(c.row) + "," + std::to_string(c.col) + ")";
}

/// Number of mesh hops between two cores under dimension-ordered routing.
[[nodiscard]] inline unsigned manhattan_distance(CoreCoord a, CoreCoord b) noexcept {
  const auto d = [](unsigned x, unsigned y) { return x > y ? x - y : y - x; };
  return d(a.row, b.row) + d(a.col, b.col);
}

/// The four mesh neighbours, in the order the paper's stencil uses them.
enum class Dir : unsigned { North = 0, South = 1, West = 2, East = 3 };

[[nodiscard]] constexpr const char* to_string(Dir d) noexcept {
  switch (d) {
    case Dir::North: return "north";
    case Dir::South: return "south";
    case Dir::West: return "west";
    case Dir::East: return "east";
  }
  return "?";
}

/// Mesh dimensions (8x8 for the E64G401; configurable to model the 4096-core
/// roadmap parts the paper speculates about).
struct MeshDims {
  unsigned rows = 8;
  unsigned cols = 8;

  [[nodiscard]] unsigned core_count() const noexcept { return rows * cols; }
  [[nodiscard]] bool contains(CoreCoord c) const noexcept {
    return c.row < rows && c.col < cols;
  }
  /// Linear index in row-major order.
  [[nodiscard]] unsigned index_of(CoreCoord c) const noexcept {
    assert(contains(c));
    return c.row * cols + c.col;
  }
  [[nodiscard]] CoreCoord coord_of(unsigned index) const noexcept {
    assert(index < core_count());
    return CoreCoord{index / cols, index % cols};
  }
  /// Neighbour in direction `d`, if it exists on the mesh.
  [[nodiscard]] bool neighbour(CoreCoord c, Dir d, CoreCoord& out) const noexcept {
    switch (d) {
      case Dir::North:
        if (c.row == 0) return false;
        out = {c.row - 1, c.col};
        return true;
      case Dir::South:
        if (c.row + 1 >= rows) return false;
        out = {c.row + 1, c.col};
        return true;
      case Dir::West:
        if (c.col == 0) return false;
        out = {c.row, c.col - 1};
        return true;
      case Dir::East:
        if (c.col + 1 >= cols) return false;
        out = {c.row, c.col + 1};
        return true;
    }
    return false;
  }
};

}  // namespace epi::arch
