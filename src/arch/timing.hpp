#pragma once
// Calibrated timing parameters for the performance model.
//
// Every constant here is traceable to a measurement or statement in the
// paper (Varghese et al. 2014); the comment on each field cites it. The
// simulator is cycle-approximate: kernels charge cycles from these numbers
// while computing results functionally, so correctness and performance are
// both testable.

#include <cstdint>

#include "arch/coords.hpp"
#include "sim/engine.hpp"

namespace epi::arch {

struct TimingParams {
  /// eCore clock (section V: "the Epiphany eCores run at 600 MHz each").
  double clock_hz = 600e6;

  /// Peak FPU throughput: one FMADD (2 flops) per cycle per core
  /// (section IV: 76.8 single-precision GFLOPS on 64 cores at 600 MHz).
  double flops_per_cycle = 2.0;

  // ---- CPU-issued (direct) remote stores -------------------------------
  // Table I: an 80-byte message (20 word stores + loads) takes 11.12 ns per
  // 32-bit transfer at Manhattan distance 1, rising to 12.57 ns at distance
  // 14. At 600 MHz that is 6.67 cycles/word + ~0.067 cycles/word per extra
  // hop. The per-word cost covers the load/store pair and mesh traversal of
  // the fully unrolled copy loop in Listing 1.
  double direct_write_cycles_per_word = 6.67;
  double direct_write_cycles_per_word_per_hop = 0.067;

  /// Cost of a single posted remote word store when not part of a bulk copy
  /// (flag updates in the synchronisation idiom). Write networks are posted,
  /// so the issuing core stalls only for injection.
  sim::Cycles remote_store_issue_cycles = 7;

  /// Round-trip cost of a remote word *load* (read-request network; reads
  /// are round-trips and much slower than writes on Epiphany).
  sim::Cycles remote_load_base_cycles = 30;
  double remote_load_cycles_per_hop = 3.0;

  /// Local scratchpad access visible to explicitly-timed code (loads/stores
  /// inside tuned kernels are already folded into the kernel cycle models).
  sim::Cycles local_access_cycles = 1;

  // ---- eMesh links ------------------------------------------------------
  /// On-chip write-network head latency per router hop (Epiphany reference:
  /// ~1.5 cycles per hop for the write network).
  double mesh_hop_cycles = 1.5;
  /// Each directed on-chip link moves 8 bytes per cycle (64-bit links).
  double link_bytes_per_cycle = 8.0;

  // ---- DMA engine ------------------------------------------------------
  // Figure 2: DMA reaches ~2.0 GB/s sustained for large messages with
  // 64-bit transactions (theoretical 4.8 GB/s, i.e. ~2.4 cycles per dword
  // transaction observed). Word (32-bit) descriptors halve the rate
  // (theoretical 2.4 GB/s, same per-transaction cost).
  double dma_cycles_per_txn = 2.4;

  // Figure 3: below ~500 bytes, CPU direct writes beat DMA; the crossover
  // implies a fixed per-transfer DMA overhead of roughly 540 cycles, which
  // we split into descriptor construction (e_dma_set_desc), channel start
  // (e_dma_start) and channel spin-up latency before the first transaction.
  sim::Cycles dma_set_desc_cycles = 60;
  sim::Cycles dma_start_cycles = 80;
  sim::Cycles dma_channel_latency_cycles = 400;
  /// Extra latency when following a chained descriptor (E_DMA_CHAIN).
  sim::Cycles dma_chain_latency_cycles = 40;

  /// Chunk granularity for modelling DMA streams through the NoC. Smaller
  /// chunks interleave more fairly under contention but cost more events.
  std::uint32_t dma_chunk_bytes = 512;

  // ---- eLink / external shared memory ----------------------------------
  // Section V-B: the single eLink is 8 bits wide at 600 MHz = 600 MB/s raw
  // each direction, but the maximum write throughput ever observed is
  // 150 MB/s -- "exactly one quarter of the theoretical maximum". We model
  // that as a 4x per-write-transaction protocol overhead.
  double elink_bytes_per_cycle = 1.0;   // 600 MB/s raw at 600 MHz
  double elink_write_overhead = 4.0;    // observed 150 MB/s sustained writes
  /// Reads over the eLink are also slow; the paper's off-chip matmul model
  /// uses the same 150 MB/s figure for block paging in both directions.
  double elink_read_overhead = 4.0;
  /// Fixed per-transaction latency crossing the FPGA glue logic.
  sim::Cycles elink_txn_latency_cycles = 200;

  // ---- xMesh inter-chip bridges (multi-chip clusters) -------------------
  // Epiphany chips tile into larger arrays over the off-chip xMesh fabric;
  // the paper's eLink is the physical seam (section II). Every chip-to-chip
  // message pays the eLink transaction latency (FPGA glue) plus a per-hop
  // flight cost on the chip grid, and the sender serialises bytes at
  // eLink-grade (not mesh-grade) bandwidth with the observed 4x protocol
  // overhead. The conservative-PDES lookahead is derived from these via
  // xmesh_min_latency(): no cross-chip effect can land sooner.
  sim::Cycles xmesh_hop_latency_cycles = 250;  // per chip-grid hop in flight
  double xmesh_bytes_per_cycle = 1.0;          // sender egress serialization
  double xmesh_write_overhead = 4.0;           // sustained/raw eLink ratio

  // ---- Synchronisation primitives --------------------------------------
  /// Hardware mutex: remote test-and-set round trip (read-network cost).
  sim::Cycles mutex_testset_base_cycles = 35;
  double mutex_testset_cycles_per_hop = 3.0;

  /// Poll interval for spin loops that cannot use event-driven watches.
  sim::Cycles spin_poll_cycles = 4;

  // ---- Derived helpers --------------------------------------------------
  [[nodiscard]] double seconds(sim::Cycles c) const noexcept {
    return static_cast<double>(c) / clock_hz;
  }
  [[nodiscard]] double gflops(double flops, sim::Cycles c) const noexcept {
    return c == 0 ? 0.0 : flops / seconds(c) / 1e9;
  }
  [[nodiscard]] double peak_gflops_per_core() const noexcept {
    return flops_per_cycle * clock_hz / 1e9;
  }
  /// Sustained eLink write bandwidth in bytes/second (150 MB/s observed).
  [[nodiscard]] double elink_write_bytes_per_sec() const noexcept {
    return elink_bytes_per_cycle / elink_write_overhead * clock_hz;
  }
  /// Minimum latency of any cross-chip effect: one eLink transaction
  /// through the glue logic plus (at least) one chip-grid hop in flight.
  /// This is the parallel executor's lookahead -- with the defaults,
  /// 200 + 250 = 450 cycles.
  [[nodiscard]] sim::Cycles xmesh_min_latency() const noexcept {
    return elink_txn_latency_cycles + xmesh_hop_latency_cycles;
  }
};

/// Full machine configuration: mesh geometry + timing + feature toggles.
struct MachineConfig {
  MeshDims dims{};
  TimingParams timing{};

  /// Model E64G401 Errata #0 ("Duplicate IO Transaction": reads and fetches
  /// from eCores in absolute row 2 / column 2 issue duplicate transactions).
  /// Off by default; Table I/II/III benches do not depend on it.
  bool model_errata_duplicate_io = false;

  /// Account bank conflicts between CPU and DMA accesses to the same 8 KB
  /// scratchpad bank (section IV-B). Used by the ablation bench.
  bool model_bank_conflicts = false;
};

}  // namespace epi::arch
