#pragma once
// eMesh on-chip network model (paper section II).
//
// The real eMesh has three physically separate 2D mesh networks: an on-chip
// write network, an off-chip write network (xMesh) and a read-request
// network. On-chip traffic is modelled here with dimension-ordered (XY)
// routing and per-directed-link occupancy -- a wormhole approximation that
// captures bandwidth sharing without flit-level simulation. Off-chip traffic
// is handled by the ELink arbiter (elink.hpp) and does not contend with
// on-chip writes, mirroring the separate physical networks.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "arch/coords.hpp"
#include "arch/timing.hpp"
#include "fault/injector.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace epi::noc {

class MeshNetwork {
public:
  MeshNetwork(arch::MeshDims dims, const arch::TimingParams& timing, sim::Engine& engine)
      : dims_(dims),
        timing_(&timing),
        engine_(&engine),
        // One occupancy slot per directed link: 4 directions per router.
        link_free_(static_cast<std::size_t>(dims.core_count()) * 4, 0) {}

  [[nodiscard]] arch::MeshDims dims() const noexcept { return dims_; }

  /// Attach (or detach, with nullptr) a tracer; each reserved burst emits a
  /// per-directed-link occupancy span plus per-link byte counters.
  void set_trace(trace::Tracer* t) noexcept { trace_ = t; }

  /// Attach a fault injector. Routing only changes when the plan actually
  /// fails a mesh link (any_link_faults()); otherwise every burst takes the
  /// byte-identical original path, fast paths included.
  void set_faults(fault::FaultInjector* f) noexcept { faults_ = f; }

  /// Cycles charged to a core that copies `words` 32-bit values into a
  /// remote core's memory with CPU load/store pairs (Listing 1 style).
  /// Calibrated against Table I: 6.67 cycles/word adjacent, +0.067/hop.
  [[nodiscard]] sim::Cycles direct_copy_cycles(arch::CoreCoord src, arch::CoreCoord dst,
                                               std::size_t words) const noexcept {
    const unsigned hops = std::max(1u, arch::manhattan_distance(src, dst));
    const double per_word = timing_->direct_write_cycles_per_word +
                            timing_->direct_write_cycles_per_word_per_hop * (hops - 1);
    return static_cast<sim::Cycles>(per_word * static_cast<double>(words) + 0.5);
  }

  /// Round-trip cycles for a CPU remote word load (read-request network).
  [[nodiscard]] sim::Cycles remote_load_cycles(arch::CoreCoord src,
                                               arch::CoreCoord dst) const noexcept {
    const unsigned hops = arch::manhattan_distance(src, dst);
    return timing_->remote_load_base_cycles +
           static_cast<sim::Cycles>(timing_->remote_load_cycles_per_hop * hops + 0.5);
  }

  /// Reserve the XY path for a `bytes`-long burst starting no earlier than
  /// `earliest`; returns the completion cycle. Bursts on shared links
  /// serialise (wormhole head-of-line approximation), which is what makes
  /// simultaneous DMA streams share bandwidth.
  sim::Cycles reserve_path(arch::CoreCoord src, arch::CoreCoord dst, std::size_t bytes,
                           sim::Cycles earliest) {
    if (src == dst) return earliest;  // local copy: no mesh traversal
    const sim::Cycles occupancy = std::max<sim::Cycles>(
        1, static_cast<sim::Cycles>(static_cast<double>(bytes) / timing_->link_bytes_per_cycle + 0.5));

    if (faults_ != nullptr && faults_->any_link_faults()) {
      return reserve_path_degraded(src, dst, bytes, earliest, occupancy);
    }

    // Single-hop fast path: neighbouring cores (the dominant stencil-halo
    // case) reserve exactly one directed link, so the path vectors are
    // skipped entirely. Timing and trace output match the general path.
    if (arch::manhattan_distance(src, dst) == 1) {
      const arch::Dir d = src.col != dst.col
                              ? (src.col < dst.col ? arch::Dir::East : arch::Dir::West)
                              : (src.row < dst.row ? arch::Dir::South : arch::Dir::North);
      const std::size_t li = link_index(src, d);
      const sim::Cycles start = std::max(earliest, link_free_[li]);
      link_free_[li] = start + occupancy;
      if (trace_ != nullptr) {
        trace_->mesh_link(src, d, static_cast<std::uint32_t>(bytes), start,
                          start + occupancy);
      }
      return start + occupancy +
             static_cast<sim::Cycles>(timing_->mesh_hop_cycles * 1.0 + 0.5);
    }

    // Collect the directed links of the XY route (column-first, then row,
    // matching eMesh dimension-ordered routing).
    path_scratch_.clear();
    if (trace_ != nullptr) hop_scratch_.clear();
    arch::CoreCoord cur = src;
    while (cur.col != dst.col) {
      const arch::Dir d = cur.col < dst.col ? arch::Dir::East : arch::Dir::West;
      path_scratch_.push_back(link_index(cur, d));
      if (trace_ != nullptr) hop_scratch_.push_back({cur, d});
      cur.col += cur.col < dst.col ? 1 : -1u;
    }
    while (cur.row != dst.row) {
      const arch::Dir d = cur.row < dst.row ? arch::Dir::South : arch::Dir::North;
      path_scratch_.push_back(link_index(cur, d));
      if (trace_ != nullptr) hop_scratch_.push_back({cur, d});
      cur.row += cur.row < dst.row ? 1 : -1u;
    }

    sim::Cycles start = earliest;
    for (auto li : path_scratch_) start = std::max(start, link_free_[li]);
    for (auto li : path_scratch_) link_free_[li] = start + occupancy;
    if (trace_ != nullptr) {
      for (const auto& [router, dir] : hop_scratch_) {
        trace_->mesh_link(router, dir, static_cast<std::uint32_t>(bytes), start,
                          start + occupancy);
      }
    }

    const auto hops = static_cast<double>(path_scratch_.size());
    return start + occupancy +
           static_cast<sim::Cycles>(timing_->mesh_hop_cycles * hops + 0.5);
  }

private:
  [[nodiscard]] std::size_t link_index(arch::CoreCoord c, arch::Dir d) const noexcept {
    return static_cast<std::size_t>(dims_.index_of(c)) * 4 + static_cast<unsigned>(d);
  }

  /// Collect the directed links of a dimension-ordered route into the
  /// scratch vectors: XY (columns first, the hardware order) or the YX
  /// fallback used to steer around a failed link.
  void build_path(arch::CoreCoord src, arch::CoreCoord dst, bool rows_first) {
    path_scratch_.clear();
    hop_scratch_.clear();
    arch::CoreCoord cur = src;
    const auto walk_cols = [&] {
      while (cur.col != dst.col) {
        const arch::Dir d = cur.col < dst.col ? arch::Dir::East : arch::Dir::West;
        path_scratch_.push_back(link_index(cur, d));
        hop_scratch_.push_back({cur, d});
        cur.col += cur.col < dst.col ? 1 : -1u;
      }
    };
    const auto walk_rows = [&] {
      while (cur.row != dst.row) {
        const arch::Dir d = cur.row < dst.row ? arch::Dir::South : arch::Dir::North;
        path_scratch_.push_back(link_index(cur, d));
        hop_scratch_.push_back({cur, d});
        cur.row += cur.row < dst.row ? 1 : -1u;
      }
    };
    if (rows_first) {
      walk_rows();
      walk_cols();
    } else {
      walk_cols();
      walk_rows();
    }
  }

  /// Earliest start >= `earliest` at which every link of the scratch path is
  /// both unoccupied and outside its fault windows; fault::kNever when a
  /// permanent outage blocks the path.
  [[nodiscard]] sim::Cycles path_start(sim::Cycles earliest, sim::Cycles occupancy) const {
    sim::Cycles start = earliest;
    for (auto li : path_scratch_) start = std::max(start, link_free_[li]);
    bool moved = true;
    while (moved) {
      moved = false;
      for (auto li : path_scratch_) {
        const sim::Cycles clear = faults_->link_clear_from(li, start, occupancy);
        if (clear == fault::kNever) return fault::kNever;
        if (clear > start) {
          start = clear;
          moved = true;
        }
      }
    }
    return start;
  }

  /// Routing with mesh-link faults armed: try the XY route, waiting out
  /// transient outages; if a permanent outage blocks it, fall back to the YX
  /// route (rows first). Because two routes now exist per (src, dst) pair,
  /// a completion-time clamp preserves per-pair delivery order -- a later
  /// burst can never appear to land before an earlier one.
  sim::Cycles reserve_path_degraded(arch::CoreCoord src, arch::CoreCoord dst,
                                    std::size_t bytes, sim::Cycles earliest,
                                    sim::Cycles occupancy) {
    build_path(src, dst, /*rows_first=*/false);
    sim::Cycles start = path_start(earliest, occupancy);
    if (start == fault::kNever) {
      build_path(src, dst, /*rows_first=*/true);
      start = path_start(earliest, occupancy);
      if (start == fault::kNever) {
        throw fault::UnroutableError("no mesh route " + arch::to_string(src) + " -> " +
                                     arch::to_string(dst) +
                                     ": XY and YX both cross a failed link");
      }
      faults_->note_reroute(src, dst);
    }
    for (auto li : path_scratch_) link_free_[li] = start + occupancy;
    if (trace_ != nullptr) {
      for (const auto& [router, dir] : hop_scratch_) {
        trace_->mesh_link(router, dir, static_cast<std::uint32_t>(bytes), start,
                          start + occupancy);
      }
    }
    sim::Cycles done =
        start + occupancy +
        static_cast<sim::Cycles>(
            timing_->mesh_hop_cycles * static_cast<double>(path_scratch_.size()) + 0.5);
    if (pair_done_.empty()) {
      pair_done_.resize(static_cast<std::size_t>(dims_.core_count()) * dims_.core_count(), 0);
    }
    sim::Cycles& last =
        pair_done_[static_cast<std::size_t>(dims_.index_of(src)) * dims_.core_count() +
                   dims_.index_of(dst)];
    done = std::max(done, last);
    last = done;
    return done;
  }

  arch::MeshDims dims_;
  const arch::TimingParams* timing_;
  sim::Engine* engine_;
  std::vector<sim::Cycles> link_free_;
  std::vector<std::size_t> path_scratch_;
  std::vector<std::pair<arch::CoreCoord, arch::Dir>> hop_scratch_;
  std::vector<sim::Cycles> pair_done_;  // per (src,dst): last delivery, for ordering
  trace::Tracer* trace_ = nullptr;
  fault::FaultInjector* faults_ = nullptr;
};

}  // namespace epi::noc
