#pragma once
// xMesh inter-chip bridge: the timing model for traffic that leaves a chip.
//
// The Epiphany architecture tiles chips into larger arrays by routing each
// chip's four eLinks to its grid neighbours (the "xMesh"). This model keeps
// the seam coarse on purpose: a cross-chip message is serialized through
// the sender's egress link at eLink-grade bandwidth (with the paper's
// observed 4x write-protocol overhead, section V-B), then spends a fixed
// flight latency per chip-grid hop -- eLink transaction overhead through
// the FPGA glue plus per-hop forwarding.
//
// Everything here is *sender-local* state: egress occupancy lives with the
// sending chip, and the receiver only sees a delivery time. That locality
// is what lets the parallel PDES executor treat chips as independent
// domains between barriers, with min_latency() as the lookahead -- the
// guarantee that no cross-chip effect lands sooner than one eLink
// transaction plus one hop after it is issued.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "arch/timing.hpp"
#include "sim/engine.hpp"

namespace epi::noc {

class XMeshBridge {
public:
  XMeshBridge(const arch::TimingParams& timing, unsigned num_chips)
      : timing_(&timing), link_free_(num_chips, 0) {}

  /// Account a posted message of `bytes` to chip `dst`, `hops` grid hops
  /// away, becoming ready at cycle `ready`. Returns the delivery cycle:
  /// egress serialization behind earlier traffic to the same destination,
  /// then per-hop flight. Never earlier than ready + min_latency().
  /// When an outage covers `ready` the message waits for the link to clear
  /// before serializing (see set_outage); a permanently dead link returns
  /// sim::Engine-style "never" (~0) and accounts nothing.
  [[nodiscard]] sim::Cycles send(unsigned dst, unsigned hops, std::size_t bytes,
                                 sim::Cycles ready) {
    if (outage_) {
      const sim::Cycles clear = outage_(dst, ready);
      if (clear == ~sim::Cycles{0}) return clear;  // link is down forever
      ready = std::max(ready, clear);
    }
    const double cycles_per_byte =
        timing_->xmesh_write_overhead / timing_->xmesh_bytes_per_cycle;
    const auto ser = static_cast<sim::Cycles>(static_cast<double>(bytes) *
                                              cycles_per_byte);
    const sim::Cycles depart = std::max(ready, link_free_[dst]) + ser;
    link_free_[dst] = depart;
    ++messages_;
    bytes_sent_ += bytes;
    return depart + flight(hops);
  }

  /// Pure flight latency for `hops` chip-grid hops (no serialization).
  [[nodiscard]] sim::Cycles flight(unsigned hops) const noexcept {
    return timing_->elink_txn_latency_cycles +
           std::max(hops, 1u) * timing_->xmesh_hop_latency_cycles;
  }

  /// The conservative-PDES lookahead this bridge guarantees: the minimum
  /// cross-domain latency of any message (== TimingParams::xmesh_min_latency).
  [[nodiscard]] static sim::Cycles min_latency(
      const arch::TimingParams& timing) noexcept {
    return timing.xmesh_min_latency();
  }

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

  /// Install a fault-injection hook for this bridge's egress: `fn(dst, t)`
  /// returns the earliest cycle >= t the link towards `dst` is up, or ~0
  /// for a permanent outage. Unset (the default) means a healthy link; the
  /// hook is consulted per send, so a flapping link stays seed-exact.
  void set_outage(std::function<sim::Cycles(unsigned, sim::Cycles)> fn) {
    outage_ = std::move(fn);
  }

private:
  const arch::TimingParams* timing_;
  std::vector<sim::Cycles> link_free_;  // per-destination egress occupancy
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::function<sim::Cycles(unsigned, sim::Cycles)> outage_;
};

}  // namespace epi::noc
