#pragma once
// eLink / off-chip (xMesh) network model (paper section V-B).
//
// All traffic between the chip and shared DRAM funnels through a single
// 8-bit, 600 MHz eLink (600 MB/s raw per direction); the paper measured at
// most 150 MB/s of sustained write throughput ("exactly one quarter of the
// theoretical maximum"), with heavily position-dependent shares under
// contention: nodes near the exit corner win, and with 64 writers many far
// rows never get a write slot at all (Tables II and III).
//
// We model the off-chip write network as a cascade of *weighted* arbiters
// mirroring the xMesh route: each row merges eastward toward the exit
// column, and the exit column merges northward toward the exit router at
// (0, cols-1). The grant patterns are calibrated against Table II:
//   * in-row merge points grant through-traffic twice per local injection
//     (the paper's 2x2 experiment shows the *farther* core in a row winning
//     ~2:1 -- through-traffic priority);
//   * exit-column merge points grant the row stream three times per
//     southern grant (row 0 took ~74% against rows below in Table II).
// Local fairness with these weights is geometrically unfair globally --
// exactly the starvation pattern of Table III, where many far rows never
// win a write slot. Transactions are served one at a time at the sustained
// (overhead-derated) byte rate. (Deviation note: the measured Table III
// shows the four column-7 cores nearest the exit sharing almost equally;
// a stationary arbitration model cannot reproduce that burst-timing
// artefact, and we document the difference in EXPERIMENTS.md.)

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "arch/coords.hpp"
#include "arch/timing.hpp"
#include "fault/injector.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace epi::noc {

class ELink {
public:
  /// `overhead` is the per-transaction protocol derating (4.0 reproduces
  /// the observed 150 MB/s on a 600 MB/s link).
  ELink(arch::MeshDims dims, const arch::TimingParams& timing, sim::Engine& engine,
        double overhead)
      : dims_(dims),
        timing_(&timing),
        engine_(&engine),
        overhead_(overhead),
        fifos_(dims.core_count()),
        row_total_(dims.rows, 0),
        row_west_(dims.rows, 0),
        rr3_(dims.rows, 0),
        rr2_(dims.core_count(), 0) {}

  /// Awaitable: a `bytes`-long transaction from core `c` through the eLink.
  /// Completes when the transaction has fully drained. Under contention,
  /// position decides how often `c` wins a slot.
  auto txn(arch::CoreCoord c, std::uint32_t bytes) noexcept {
    struct Awaiter {
      ELink& link;
      arch::CoreCoord c;
      std::uint32_t bytes;
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        // A dead core cannot issue off-chip requests: park the resumption
        // before it reaches the FIFOs so arbitration never sees it.
        if (link.faults_ != nullptr && link.faults_->park_if_dead(c, h)) return;
        link.fifos_[link.dims_.index_of(c)].push_back(
            Request{bytes, link.engine_->now(), h});
        ++link.pending_;
        ++link.row_total_[c.row];
        if (c.col != link.dims_.cols - 1) ++link.row_west_[c.row];
        if (!link.pumping_) {
          link.pumping_ = true;
          link.engine_->call_at(link.engine_->now(), [&l = link] { l.pump(); });
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, c, bytes};
  }

  [[nodiscard]] std::uint64_t bytes_served(arch::CoreCoord c) const {
    return served_.empty() ? 0 : served_[dims_.index_of(c)];
  }
  [[nodiscard]] std::uint64_t total_bytes_served() const noexcept { return total_served_; }

  /// Attach (or detach, with nullptr) a tracer; every grant is reported as
  /// an `elink_txn` span carrying the requester and its queueing stall.
  void set_trace(trace::Tracer* t, trace::ElinkKind kind) noexcept {
    trace_ = t;
    trace_kind_ = kind;
  }

  /// Attach a fault injector. `kind` selects which outage/corruption windows
  /// apply (0 = write network, 1 = read network).
  void set_faults(fault::FaultInjector* f, unsigned kind) noexcept {
    faults_ = f;
    fault_kind_ = kind;
  }

private:
  struct Request {
    std::uint32_t bytes;
    sim::Cycles enqueued;
    std::coroutine_handle<> h;
  };

  void pump() {
    if (pending_ == 0) {
      pumping_ = false;
      return;
    }
    if (faults_ != nullptr) {
      const sim::Cycles avail = faults_->elink_available(fault_kind_, engine_->now());
      if (avail == fault::kNever) {
        // Permanent outage: the pump falls silent with pumping_ held, so
        // queued requesters hang -- the watchdog layer reports them.
        return;
      }
      if (avail > engine_->now()) {
        engine_->call_at(avail, [this] { pump(); });
        return;
      }
    }
    const unsigned winner = select_root();
    Request r = fifos_[winner].front();
    fifos_[winner].pop_front();
    --pending_;
    const arch::CoreCoord wc = dims_.coord_of(winner);
    --row_total_[wc.row];
    if (wc.col != dims_.cols - 1) --row_west_[wc.row];

    const auto occupancy = std::max<sim::Cycles>(
        1, static_cast<sim::Cycles>(static_cast<double>(r.bytes) * overhead_ /
                                        timing_->elink_bytes_per_cycle +
                                    0.5));
    if (served_.empty()) served_.resize(dims_.core_count(), 0);
    served_[winner] += r.bytes;
    total_served_ += r.bytes;

    const sim::Cycles now = engine_->now();
    if (trace_ != nullptr) {
      trace_->elink_txn(trace_kind_, dims_.coord_of(winner), r.bytes, r.enqueued,
                        now, now + occupancy);
    }
    // The requester observes link occupancy plus the glue-logic latency;
    // the link itself frees after the occupancy (latency is pipelined).
    engine_->schedule_at(now + occupancy + timing_->elink_txn_latency_cycles, r.h);
    engine_->call_at(now + occupancy, [this] { pump(); });
  }

  // ---- cascaded round-robin arbitration ---------------------------------

  [[nodiscard]] std::size_t pending_at(unsigned row, unsigned col) const {
    return fifos_[dims_.index_of({row, col})].size();
  }
  [[nodiscard]] bool row_stream_nonempty(unsigned row, unsigned below_col) const {
    // row_west_ counts the row's pending requests west of the exit column,
    // so the common whole-row-stream query is O(1); a mid-row query only
    // scans when the row has *any* western traffic.
    if (row_west_[row] == 0) return false;
    if (below_col >= dims_.cols - 1) return true;
    for (unsigned c = 0; c < below_col; ++c) {
      if (pending_at(row, c) > 0) return true;
    }
    return false;
  }
  [[nodiscard]] bool south_nonempty(unsigned from_row) const {
    // Any pending request in row r (exit column or western stream) is
    // counted in row_total_[r]; one pass over the rows replaces the old
    // O(rows*cols) fifo scan without changing any grant decision.
    for (unsigned r = from_row; r < dims_.rows; ++r) {
      if (row_total_[r] > 0) return true;
    }
    return false;
  }

  /// Merge point on the exit column at `row`: weighted grant pattern over
  /// {the row's eastward stream (R), local core (L), everything south (S)}.
  /// Pattern R,L,R,R,S: with only R and S contending this yields the ~3:1
  /// row-vs-south split of Table II.
  unsigned select_col(unsigned row) {
    enum : unsigned { R, L, S };
    static constexpr unsigned kPattern[5] = {R, L, R, R, S};
    const unsigned exit_col = dims_.cols - 1;
    for (unsigned k = 0; k < 5; ++k) {
      const unsigned pos = (rr3_[row] + k) % 5;
      switch (kPattern[pos]) {
        case R:
          if (exit_col > 0 && row_stream_nonempty(row, exit_col)) {
            rr3_[row] = (pos + 1) % 5;
            return select_row(row, exit_col - 1);
          }
          break;
        case L:
          if (pending_at(row, exit_col) > 0) {
            rr3_[row] = (pos + 1) % 5;
            return dims_.index_of({row, exit_col});
          }
          break;
        case S:
          if (row + 1 < dims_.rows && south_nonempty(row + 1)) {
            rr3_[row] = (pos + 1) % 5;
            return select_col(row + 1);
          }
          break;
      }
    }
    // pending_ > 0 guarantees some branch fired; unreachable.
    return dims_.index_of({row, exit_col});
  }

  /// Merge point within a row at `col`: weighted grant pattern over
  /// {through-traffic from further west (T), local core (L)}. Pattern
  /// T,L,T: through-traffic wins 2:1 under saturation, matching the
  /// farther-core advantage in Table II's rows.
  unsigned select_row(unsigned row, unsigned col) {
    enum : unsigned { T, L };
    static constexpr unsigned kPattern[3] = {T, L, T};
    const std::size_t node = dims_.index_of({row, col});
    for (unsigned k = 0; k < 3; ++k) {
      const unsigned pos = (rr2_[node] + k) % 3;
      if (kPattern[pos] == T && col > 0 && row_stream_nonempty(row, col)) {
        rr2_[node] = (pos + 1) % 3;
        return select_row(row, col - 1);
      }
      if (kPattern[pos] == L && pending_at(row, col) > 0) {
        rr2_[node] = (pos + 1) % 3;
        return dims_.index_of({row, col});
      }
    }
    return dims_.index_of({row, col});
  }

  unsigned select_root() { return select_col(0); }

  arch::MeshDims dims_;
  const arch::TimingParams* timing_;
  sim::Engine* engine_;
  double overhead_;
  std::vector<std::deque<Request>> fifos_;
  std::vector<std::size_t> row_total_;  // pending per row (all columns)
  std::vector<std::size_t> row_west_;   // pending per row, west of the exit column
  std::vector<unsigned> rr3_;   // per exit-column router
  std::vector<unsigned> rr2_;   // per in-row router
  std::vector<std::uint64_t> served_;
  std::uint64_t total_served_ = 0;
  std::size_t pending_ = 0;
  bool pumping_ = false;
  trace::Tracer* trace_ = nullptr;
  trace::ElinkKind trace_kind_ = trace::ElinkKind::Write;
  fault::FaultInjector* faults_ = nullptr;
  unsigned fault_kind_ = 0;
};

}  // namespace epi::noc
