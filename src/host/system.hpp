#pragma once
// Host-side programming interface (paper section III, "steps required to
// execute a program"): the ARM host opens a workgroup, loads a kernel onto
// each eCore, signals start, exchanges data through core memory or the
// shared window, and waits for completion.
//
// Host actions happen *between* simulation events and are not charged device
// cycles -- mirroring the paper's measurement methodology, which excludes
// host-side setup (e.g. "does not include the time taken to transfer the
// initial operand matrices") from device GFLOPS.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/address_map.hpp"
#include "arch/timing.hpp"
#include "device/core_ctx.hpp"
#include "machine/machine.hpp"
#include "sim/task.hpp"

namespace epi::host {

class System;

/// A rectangular group of eCores running one kernel each (e_open/e_load/
/// e_start in the eSDK). A Workgroup owns its cores exclusively: the
/// constructor reserves the rectangle in the machine's reservation table
/// (throwing if any core is already held by a live workgroup) and the
/// destructor releases it, so double-opened cores are rejected instead of
/// silently clobbering each other.
///
/// Moving a Workgroup transfers the reservation; moves are only safe before
/// start() (running kernels hold pointers into the group's CoreCtx objects
/// and completion counters).
class Workgroup {
public:
  Workgroup(machine::Machine& m, device::GroupInfo info)
      : m_(&m),
        info_(info),
        ticket_(m.reservations().acquire(info.origin, info.rows, info.cols)) {
    ctxs_.reserve(info.size());
    for (unsigned r = 0; r < info.rows; ++r) {
      for (unsigned c = 0; c < info.cols; ++c) {
        ctxs_.push_back(std::make_unique<device::CoreCtx>(
            m, arch::CoreCoord{info.origin.row + r, info.origin.col + c}, info));
      }
    }
  }

  Workgroup(Workgroup&& o) noexcept
      : m_(o.m_),
        info_(o.info_),
        ticket_(std::exchange(o.ticket_, 0)),
        ctxs_(std::move(o.ctxs_)),
        kernel_(std::move(o.kernel_)),
        procs_(std::move(o.procs_)),
        finished_(o.finished_),
        failed_(o.failed_),
        finish_time_(o.finish_time_),
        label_(std::move(o.label_)) {}
  Workgroup& operator=(Workgroup&& o) noexcept {
    if (this != &o) {
      release_cores();
      m_ = o.m_;
      info_ = o.info_;
      ticket_ = std::exchange(o.ticket_, 0);
      ctxs_ = std::move(o.ctxs_);
      kernel_ = std::move(o.kernel_);
      procs_ = std::move(o.procs_);
      finished_ = o.finished_;
      failed_ = o.failed_;
      finish_time_ = o.finish_time_;
      label_ = std::move(o.label_);
    }
    return *this;
  }
  Workgroup(const Workgroup&) = delete;
  Workgroup& operator=(const Workgroup&) = delete;
  ~Workgroup() { release_cores(); }

  [[nodiscard]] const device::GroupInfo& info() const noexcept { return info_; }
  [[nodiscard]] unsigned size() const noexcept { return info_.size(); }
  [[nodiscard]] device::CoreCtx& ctx(unsigned group_row, unsigned group_col) {
    if (!info_.contains_group_coord(group_row, group_col)) {
      throw std::out_of_range("group coordinate outside workgroup");
    }
    return *ctxs_[group_row * info_.cols + group_col];
  }

  /// Load the same kernel onto every core of the group.
  void load(device::KernelFn kernel) { kernel_ = std::move(kernel); }

  /// Label prepended to this group's process names ("job 12 core (2,3)") so
  /// DeadlockError and traces attribute hangs to a specific serving job.
  void set_label(std::string label) { label_ = std::move(label); }

  /// Signal all cores to begin executing the loaded kernel. Each core's
  /// status word is cleared, then set (with a watched store) on completion.
  void start() {
    if (!kernel_) throw std::logic_error("Workgroup::start without a loaded kernel");
    procs_.clear();
    finished_ = 0;
    failed_ = 0;
    for (auto& ctx : ctxs_) {
      m_->mem().write_value<std::uint32_t>(
          ctx->my_global(device::CoreCtx::kStatusOffset), 0, ctx->coord());
      std::string name = label_.empty() ? "core " + arch::to_string(ctx->coord())
                                        : label_ + " core " + arch::to_string(ctx->coord());
      procs_.push_back(sim::spawn(m_->engine(), run_kernel(*ctx), 0, std::move(name)));
    }
  }

  [[nodiscard]] bool done() const noexcept {
    for (const auto& p : procs_) {
      if (!p.done()) return false;
    }
    return !procs_.empty();
  }

  /// O(1) completion check from the kernel-wrapper counters (done() scans
  /// every process handle; the scheduler polls this once per engine event).
  [[nodiscard]] bool complete() const noexcept {
    return !procs_.empty() && finished_ + failed_ >= procs_.size();
  }
  [[nodiscard]] bool any_failed() const noexcept { return failed_ > 0; }
  /// Cycle at which the last kernel of the group finished (valid once
  /// complete(); tracked by the kernel wrappers so an external driver that
  /// pumps the engine itself still gets exact per-job service cycles).
  [[nodiscard]] sim::Cycles finish_time() const noexcept { return finish_time_; }
  /// Propagate the first kernel exception, if any kernel failed.
  void rethrow_errors() const {
    for (const auto& p : procs_) p.rethrow_if_error();
  }

  /// Drive the simulation until every core in the group has finished.
  /// Propagates the first kernel exception encountered.
  ///
  /// The loop runs once per simulation event, so completion is tracked with
  /// counters bumped by the kernel wrappers themselves; scanning every
  /// process handle per step made this loop O(cores x events) and dominated
  /// large-grid runs. The error rescan only happens once a failure counter
  /// says there is an error to find, preserving the old throw point exactly.
  void wait() {
    while (procs_.empty() || finished_ + failed_ < procs_.size()) {
      if (failed_ > 0) {
        for (const auto& p : procs_) p.rethrow_if_error();
      }
      if (!m_->engine().step()) {
        throw sim::DeadlockError(m_->engine().live_processes(),
                                 m_->engine().live_process_names());
      }
    }
    for (const auto& p : procs_) p.rethrow_if_error();
    // Waiting for kernel completion is the host's synchronisation point:
    // result readback afterwards is ordered, not a data race. The host
    // issues memory traffic as (0,0).
    for (auto* h : m_->mem().hooks()) h->on_sync({0, 0}, m_->engine().now());
  }

  /// start() + wait(), returning elapsed device cycles.
  sim::Cycles run() {
    const sim::Cycles t0 = m_->engine().now();
    start();
    wait();
    return m_->engine().now() - t0;
  }

private:
  sim::Op<void> run_kernel(device::CoreCtx& ctx) {
    try {
      co_await kernel_(ctx);
    } catch (...) {
      ++failed_;
      if (finished_ + failed_ == procs_.size()) finish_time_ = m_->engine().now();
      throw;
    }
    // Completion signal: a real kernel's final act is a status store the
    // host (or sibling cores) can observe.
    m_->mem().write_value<std::uint32_t>(ctx.my_global(device::CoreCtx::kStatusOffset), 1,
                                         ctx.coord());
    ++finished_;
    if (finished_ + failed_ == procs_.size()) finish_time_ = m_->engine().now();
  }

  void release_cores() noexcept {
    if (ticket_ != 0) {
      m_->reservations().release(info_.origin, info_.rows, info_.cols, ticket_);
      ticket_ = 0;
    }
  }

  machine::Machine* m_;
  device::GroupInfo info_;
  std::uint32_t ticket_ = 0;  // core reservation; 0 after a move-from
  std::vector<std::unique_ptr<device::CoreCtx>> ctxs_;
  device::KernelFn kernel_;
  std::vector<sim::Process> procs_;
  std::size_t finished_ = 0;  // kernels completed normally since start()
  std::size_t failed_ = 0;    // kernels that ended with an exception
  sim::Cycles finish_time_ = 0;  // cycle the last kernel retired
  std::string label_;            // process-name prefix (serving job id)
};

class System {
public:
  explicit System(arch::MachineConfig cfg = {}) : machine_(cfg) {}

  [[nodiscard]] machine::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return machine_.engine(); }
  [[nodiscard]] const arch::TimingParams& timing() const noexcept { return machine_.timing(); }

  /// e_open: place a rows x cols workgroup with its top-left core at
  /// (origin_row, origin_col).
  [[nodiscard]] Workgroup open(unsigned origin_row, unsigned origin_col, unsigned rows,
                               unsigned cols) {
    const device::GroupInfo info{{origin_row, origin_col}, rows, cols};
    if (origin_row + rows > machine_.dims().rows ||
        origin_col + cols > machine_.dims().cols || rows == 0 || cols == 0) {
      throw std::out_of_range("workgroup does not fit on the mesh");
    }
    return Workgroup(machine_, info);
  }

  // ---- shared external memory (bump allocator over the 32 MB window) ----
  [[nodiscard]] arch::Addr shm_alloc(std::size_t bytes, std::size_t align = 8) {
    shm_brk_ = (shm_brk_ + align - 1) / align * align;
    const auto& map = machine_.mem().map();
    if (shm_brk_ + bytes > map.external_bytes) {
      throw std::bad_alloc();
    }
    const arch::Addr a = map.external_base + static_cast<arch::Addr>(shm_brk_);
    shm_brk_ += bytes;
    return a;
  }
  void shm_reset() noexcept { shm_brk_ = 0; }

  // ---- host <-> device data movement (functional; host time untimed) ----
  void write(arch::Addr global, std::span<const std::byte> src) {
    machine_.mem().write_bytes(global, src, {0, 0});
  }
  void read(arch::Addr global, std::span<std::byte> dst) {
    machine_.mem().read_bytes(global, dst, {0, 0});
  }
  template <typename T>
  void write_array(arch::Addr global, std::span<const T> src) {
    write(global, std::as_bytes(src));
  }
  template <typename T>
  void read_array(arch::Addr global, std::span<T> dst) {
    read(global, std::as_writable_bytes(dst));
  }

  [[nodiscard]] double seconds(sim::Cycles c) const noexcept { return timing().seconds(c); }
  [[nodiscard]] double gflops(double flops, sim::Cycles c) const noexcept {
    return timing().gflops(flops, c);
  }

private:
  machine::Machine machine_;
  std::size_t shm_brk_ = 0;
};

}  // namespace epi::host
