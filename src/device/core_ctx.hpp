#pragma once
// Device-side programming interface -- the eSDK workalike (paper section III).
//
// A kernel is a coroutine `sim::Op<void> kernel(device::CoreCtx& ctx)`. The
// CoreCtx provides the same capabilities the Epiphany SDK gives device code:
//   * identity within the workgroup and neighbour/global addressing,
//   * direct reads/writes to any global address (with modelled costs),
//   * the two DMA channels (descriptors, chaining, start/wait),
//   * the two event timers,
//   * barriers and hardware-mutex operations,
//   * zero-cost typed views into the core's own scratchpad, used by kernels
//     for functional computation whose cycles are charged from a schedule
//     model (see core/ for the stencil and matmul schedules).
//
// The bottom 512 bytes of each scratchpad (0x0000-0x01FF, inside the region
// kernels treat as their code bank) are reserved for the runtime: barrier
// arrival slots, barrier release word, and the kernel status word the host
// watches. Kernel data layouts (e.g. the paper's matmul placement of C at
// 0x7000-0x7FFF) are unaffected.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string_view>

#include "arch/address_map.hpp"
#include "dma/descriptor.hpp"
#include "arch/coords.hpp"
#include "fault/crc.hpp"
#include "machine/machine.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"
#include "trace/tracer.hpp"

namespace epi::device {

/// Placement of a workgroup on the mesh (e_open in the eSDK).
struct GroupInfo {
  arch::CoreCoord origin{};
  unsigned rows = 1;
  unsigned cols = 1;

  [[nodiscard]] unsigned size() const noexcept { return rows * cols; }
  [[nodiscard]] bool contains_group_coord(unsigned r, unsigned c) const noexcept {
    return r < rows && c < cols;
  }
};

class CoreCtx {
public:
  // Runtime-reserved scratchpad layout (bottom 512 bytes).
  static constexpr arch::Addr kRuntimeReservedBase = 0x0000;
  static constexpr arch::Addr kRuntimeReservedEnd = 0x0200;
  static constexpr arch::Addr kBarrierSlotsOffset = 0x0000;  // group-root array
  static constexpr arch::Addr kBarrierReleaseOffset = 0x0100;
  static constexpr arch::Addr kStatusOffset = 0x0108;        // 0=running 1=done

  CoreCtx(machine::Machine& m, arch::CoreCoord coord, GroupInfo group)
      : m_(&m), coord_(coord), group_(group) {}

  // ---- identity ---------------------------------------------------------
  [[nodiscard]] arch::CoreCoord coord() const noexcept { return coord_; }
  [[nodiscard]] unsigned group_row() const noexcept { return coord_.row - group_.origin.row; }
  [[nodiscard]] unsigned group_col() const noexcept { return coord_.col - group_.origin.col; }
  [[nodiscard]] unsigned group_rows() const noexcept { return group_.rows; }
  [[nodiscard]] unsigned group_cols() const noexcept { return group_.cols; }
  [[nodiscard]] unsigned group_index() const noexcept {
    return group_row() * group_.cols + group_col();
  }
  [[nodiscard]] const GroupInfo& group() const noexcept { return group_; }
  [[nodiscard]] machine::Machine& machine() noexcept { return *m_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return m_->engine(); }
  [[nodiscard]] const arch::TimingParams& timing() const noexcept { return m_->timing(); }
  [[nodiscard]] sim::Cycles now() const noexcept { return m_->engine().now(); }

  /// Neighbour within the workgroup (no wrap); false at a group edge.
  [[nodiscard]] bool neighbour(arch::Dir d, arch::CoreCoord& out) const noexcept {
    const unsigned r = group_row();
    const unsigned c = group_col();
    switch (d) {
      case arch::Dir::North:
        if (r == 0) return false;
        out = {coord_.row - 1, coord_.col};
        return true;
      case arch::Dir::South:
        if (r + 1 >= group_.rows) return false;
        out = {coord_.row + 1, coord_.col};
        return true;
      case arch::Dir::West:
        if (c == 0) return false;
        out = {coord_.row, coord_.col - 1};
        return true;
      case arch::Dir::East:
        if (c + 1 >= group_.cols) return false;
        out = {coord_.row, coord_.col + 1};
        return true;
    }
    return false;
  }

  /// Neighbour with torus wrap-around within the group (Cannon's algorithm
  /// rotates blocks around rows/columns of the workgroup).
  [[nodiscard]] arch::CoreCoord neighbour_wrap(arch::Dir d) const noexcept {
    unsigned r = group_row();
    unsigned c = group_col();
    switch (d) {
      case arch::Dir::North: r = (r + group_.rows - 1) % group_.rows; break;
      case arch::Dir::South: r = (r + 1) % group_.rows; break;
      case arch::Dir::West: c = (c + group_.cols - 1) % group_.cols; break;
      case arch::Dir::East: c = (c + 1) % group_.cols; break;
    }
    return {group_.origin.row + r, group_.origin.col + c};
  }

  /// Global address of `offset` in core `c`'s scratchpad (e_get_global_address).
  [[nodiscard]] arch::Addr global(arch::CoreCoord c, arch::Addr offset) const noexcept {
    return m_->mem().map().global(c, offset);
  }
  [[nodiscard]] arch::Addr my_global(arch::Addr offset) const noexcept {
    return global(coord_, offset);
  }

  // ---- scratchpad views (functional, zero sim cost) ---------------------
  /// Typed span over this core's own scratchpad. Kernels use these for the
  /// functional side of computation; cycles are charged separately via
  /// compute() from a schedule model.
  template <typename T>
  [[nodiscard]] std::span<T> local_array(arch::Addr offset, std::size_t count) {
    auto bytes = m_->mem().local(coord_).span(offset, count * sizeof(T));
    return std::span<T>(reinterpret_cast<T*>(bytes.data()), count);
  }

  // ---- tracing -----------------------------------------------------------
  // Phase spans feed the epi-trace cycle-attribution profiler. Only the
  // *outermost* phase is recorded (depth suppression), so a kernel-level
  // scope like phase(Phase::Comm, "page-in") absorbs the smaller spans the
  // primitives below would otherwise emit, spans never overlap, and the
  // per-core attribution partitions the run exactly.

  /// RAII guard closing a phase opened by CoreCtx::phase().
  class PhaseScope {
  public:
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    ~PhaseScope() { ctx_->phase_end(); }

  private:
    friend class CoreCtx;
    explicit PhaseScope(CoreCtx& ctx) noexcept : ctx_(&ctx) {}
    CoreCtx* ctx_;
  };

  void phase_begin(trace::Phase p, std::string_view name) {
    if (++trace_depth_ == 1) {
      if (auto* t = m_->tracer()) t->core_begin(coord_, p, name, now());
    }
  }
  void phase_end() {
    if (trace_depth_-- == 1) {
      if (auto* t = m_->tracer()) t->core_end(coord_, now());
    }
  }
  /// Open a named phase for the current scope (kernels use this to label
  /// whole algorithm stages, e.g. the off-chip matmul's "page-in").
  [[nodiscard]] PhaseScope phase(trace::Phase p, std::string_view name) {
    phase_begin(p, name);
    return PhaseScope(*this);
  }
  /// Kernel-reported retired floating-point work (the "flops" counters).
  void count_flops(double flops) {
    if (auto* t = m_->tracer()) t->count_flops(coord_, now(), flops);
  }

  // ---- timed operations --------------------------------------------------
  /// Pure computation lasting `c` cycles. The awaitable is fault-aware: a
  /// killed core's op parks forever, a stalled core's defers to the window
  /// end (identical to sim::Delay when no faults target this core).
  [[nodiscard]] fault::TimedOp compute(sim::Cycles c) {
    return timed(trace::Phase::Compute, "compute", c);
  }

  /// Posted remote (or local) word store: functional write + issue cost.
  /// Stores into the external window cross the eLink (off-chip write
  /// network) and contend with other off-chip traffic.
  sim::Op<void> write_u32(arch::Addr a, std::uint32_t v) {
    auto ph = phase(trace::Phase::Comm, "store");
    if (m_->mem().map().is_external(a)) {
      co_await m_->elink_write().txn(coord_, 4);
    } else {
      co_await compute(store_cost(a));
    }
    m_->mem().write_value<std::uint32_t>(a, v, coord_);
  }
  sim::Op<void> write_f32(arch::Addr a, float v) {
    auto ph = phase(trace::Phase::Comm, "store");
    if (m_->mem().map().is_external(a)) {
      co_await m_->elink_write().txn(coord_, 4);
    } else {
      co_await compute(store_cost(a));
    }
    m_->mem().write_value<float>(a, v, coord_);
  }

  /// CPU store stream into external DRAM (the Table II/III benchmark writes
  /// 2 KB blocks as sequences of 4-byte stores). Modelled as one eLink
  /// write transaction of `bytes`; the issuing core blocks until the xMesh
  /// drains it, which is what the measured starvation reflects.
  sim::Op<void> external_write_block(arch::Addr dst, arch::Addr src, std::uint32_t bytes) {
    if (!m_->mem().map().is_external(dst)) {
      throw std::invalid_argument("external_write_block requires an external destination");
    }
    auto ph = phase(trace::Phase::Comm, "elink-write");
    co_await m_->elink_write().txn(coord_, bytes);
    m_->mem().copy(dst, src, bytes, coord_);
    // With corruption faults armed, the block is CRC-checked end to end and
    // resent with exponential backoff on mismatch (bounded, like the
    // scheduler's launch retry policy).
    if (auto* inj = m_->faults(); inj != nullptr && inj->any_corruption()) {
      inj->corrupt_elink(0, dst, bytes, coord_);
      for (unsigned attempt = 1; !crc_matches(dst, src, bytes); ++attempt) {
        if (attempt > kTransferRetries) {
          throw fault::TransferError("eLink write from core " + arch::to_string(coord_) +
                                     " failed CRC after " +
                                     std::to_string(kTransferRetries) + " retries");
        }
        inj->note_transfer_retry(coord_);
        co_await sim::delay(m_->engine(), kRetryBackoff << (attempt - 1));
        co_await m_->elink_write().txn(coord_, bytes);
        m_->mem().copy(dst, src, bytes, coord_);
        inj->corrupt_elink(0, dst, bytes, coord_);
      }
    }
  }

  /// Word load; remote loads pay the read-network round trip.
  sim::Op<std::uint32_t> read_u32(arch::Addr a) {
    auto ph = phase(owner_of(a) == coord_ ? trace::Phase::Compute : trace::Phase::Comm,
                    "load");
    co_await compute(load_cost(a));
    co_return m_->mem().read_value<std::uint32_t>(a, coord_);
  }

  /// CPU bulk copy from this core's scratchpad to a remote core (the
  /// Listing 1 "direct writes" idiom: fully unrolled load/store pairs).
  /// Cost follows the Table I calibration; data commits on completion.
  sim::Op<void> direct_write_block(arch::Addr dst, arch::Addr src, std::uint32_t bytes) {
    auto ph = phase(trace::Phase::Comm, "direct-write");
    const arch::CoreCoord target = owner_of(dst);
    const std::uint32_t words = (bytes + 3) / 4;
    co_await compute(m_->mesh().direct_copy_cycles(coord_, target, words));
    m_->mem().copy(dst, src, bytes, coord_);
  }

  /// Spin until the word at `a` satisfies `pred` (event-driven; models the
  /// flag-polling loops in the paper's listings).
  template <typename Pred>
  sim::Op<void> wait_u32(arch::Addr a, Pred pred) {
    auto ph = phase(trace::Phase::Sync, "flag-wait");
    co_await m_->mem().wait_u32(a, coord_, pred);
  }
  sim::Op<void> wait_u32_ge(arch::Addr a, std::uint32_t v) {
    return wait_u32(a, [v](std::uint32_t x) { return x >= v; });
  }
  sim::Op<void> wait_u32_eq(arch::Addr a, std::uint32_t v) {
    return wait_u32(a, [v](std::uint32_t x) { return x == v; });
  }

  // ---- DMA ----------------------------------------------------------------
  /// e_dma_set_desc: charge the descriptor-construction cost. The C++
  /// descriptor object is built by the caller (dma::DmaDescriptor helpers).
  [[nodiscard]] fault::TimedOp dma_set_desc() {
    return timed(trace::Phase::Comm, "dma-setup", timing().dma_set_desc_cycles);
  }
  /// e_dma_start: charge the start cost, then kick the channel.
  sim::Op<void> dma_start(unsigned chan, const dma::DmaDescriptor& d) {
    check_chan(chan);
    auto ph = phase(trace::Phase::Comm, "dma-start");
    co_await compute(timing().dma_start_cycles);
    m_->core(coord_).dma[chan].start(d);
  }
  /// e_dma_wait: block until the channel is idle. (check_chan stays in the
  /// non-coroutine wrapper so a bad channel throws at the call, not at the
  /// co_await.)
  sim::Op<void> dma_wait(unsigned chan) {
    check_chan(chan);
    return dma_wait_impl(chan);
  }
  [[nodiscard]] bool dma_busy(unsigned chan) {
    check_chan(chan);
    return m_->core(coord_).dma[chan].busy();
  }

  // ---- event timers -------------------------------------------------------
  [[nodiscard]] machine::CTimer& ctimer(unsigned idx) {
    if (idx > 1) throw std::out_of_range("eCores have two ctimers");
    return m_->core(coord_).ctimer[idx];
  }

  // ---- synchronisation ----------------------------------------------------
  /// Workgroup barrier (e_barrier): members post arrival to the group root;
  /// the root releases everyone by bumping their release generation.
  sim::Op<void> barrier() {
    auto ph = phase(trace::Phase::Sync, "barrier");
    const arch::CoreCoord root = group_.origin;
    const std::uint32_t gen = ++barrier_gen_;
    const unsigned n = group_.size();
    if (coord_ == root) {
      // Wait for every member's arrival word to reach this generation.
      for (unsigned i = 1; i < n; ++i) {
        co_await wait_u32_ge(slot_addr(root, i), gen);
      }
      // Release all members (posted stores), then self.
      for (unsigned i = 1; i < n; ++i) {
        const arch::CoreCoord member{group_.origin.row + i / group_.cols,
                                     group_.origin.col + i % group_.cols};
        co_await write_u32(global(member, kBarrierReleaseOffset), gen);
      }
    } else {
      co_await write_u32(slot_addr(root, group_index()), gen);
      co_await wait_u32_ge(my_global(kBarrierReleaseOffset), gen);
    }
  }

  /// Hardware mutex: atomic TESTSET round trip on the word at `a`
  /// (which lives in some core's scratchpad, per the SDK's workgroup mutex).
  sim::Op<void> mutex_lock(arch::Addr a) {
    auto ph = phase(trace::Phase::Sync, "mutex-lock");
    const arch::CoreCoord owner = owner_of(a);
    const sim::Cycles cost =
        timing().mutex_testset_base_cycles +
        static_cast<sim::Cycles>(timing().mutex_testset_cycles_per_hop *
                                 arch::manhattan_distance(coord_, owner));
    for (;;) {
      co_await compute(cost);
      // DES commit points are atomic: read-modify-write cannot interleave.
      // The TESTSET probe is an acquire, not a data read: on success the
      // sanitizer must treat prior remote writes as ordered.
      if (m_->mem().read_u32_acquire(a, coord_) == 0) {
        m_->mem().write_value<std::uint32_t>(a, lock_token(), coord_);
        co_return;
      }
      co_await wait_u32_eq(a, 0);  // spin until the holder releases
    }
  }
  sim::Op<void> mutex_unlock(arch::Addr a) {
    auto ph = phase(trace::Phase::Sync, "mutex-unlock");
    co_await compute(timing().remote_store_issue_cycles);
    m_->mem().write_value<std::uint32_t>(a, 0, coord_);
  }

private:
  /// Bounded retry for CRC-failed eLink block writes.
  static constexpr unsigned kTransferRetries = 4;
  static constexpr sim::Cycles kRetryBackoff = 64;

  /// A fixed-span delay, recorded as a phase span at issue time (safe: the
  /// issuing core resumes exactly at the span's end).
  [[nodiscard]] fault::TimedOp timed(trace::Phase p, std::string_view name, sim::Cycles c) {
    if (trace_depth_ == 0 && c > 0) {
      if (auto* t = m_->tracer()) t->core_span(coord_, p, name, now(), now() + c);
    }
    return fault::TimedOp{m_->engine(), c, m_->faults(), coord_};
  }

  [[nodiscard]] bool crc_matches(arch::Addr dst, arch::Addr src, std::uint32_t bytes) {
    return fault::crc32(m_->mem().resolve(src, bytes, coord_)) ==
           fault::crc32(m_->mem().resolve(dst, bytes, coord_));
  }

  sim::Op<void> dma_wait_impl(unsigned chan) {
    auto ph = phase(trace::Phase::DmaWait, "dma-wait");
    co_await m_->core(coord_).dma[chan].wait();
  }

  [[nodiscard]] arch::CoreCoord owner_of(arch::Addr a) const {
    if (arch::AddressMap::is_local_alias(a)) return coord_;
    if (auto c = m_->mem().map().core_of(a)) return *c;
    return coord_;  // external: distance model not used for eLink traffic
  }
  [[nodiscard]] sim::Cycles store_cost(arch::Addr a) const {
    const arch::CoreCoord o = owner_of(a);
    if (o != coord_) return timing().remote_store_issue_cycles;
    return timing().local_access_cycles + bank_penalty(a);
  }
  /// Extra cycles for a local access whose bank a DMA stream currently
  /// occupies (only when MachineConfig::model_bank_conflicts is set).
  [[nodiscard]] sim::Cycles bank_penalty(arch::Addr a) const {
    if (!m_->config().model_bank_conflicts) return 0;
    return m_->mem().local(coord_).bank_conflict_penalty(
        arch::AddressMap::local_offset(a), m_->engine().now());
  }
  [[nodiscard]] sim::Cycles load_cost(arch::Addr a) const {
    const arch::CoreCoord o = owner_of(a);
    if (o == coord_) return timing().local_access_cycles + bank_penalty(a);
    sim::Cycles c = m_->mesh().remote_load_cycles(coord_, o);
    // E64G401 Errata #0 "Duplicate IO Transaction" (paper section V-B):
    // eCores in mesh row 2 and column 2 issue every data read (and
    // instruction fetch) twice -- DMA and writes are unaffected.
    if (m_->config().model_errata_duplicate_io && (coord_.row == 2 || coord_.col == 2)) {
      c *= 2;
    }
    return c;
  }
  [[nodiscard]] arch::Addr slot_addr(arch::CoreCoord root, unsigned index) const noexcept {
    return global(root, kBarrierSlotsOffset + 4 * index);
  }
  [[nodiscard]] std::uint32_t lock_token() const noexcept {
    return 0x80000000u | m_->mem().map().core_id(coord_);
  }
  static void check_chan(unsigned chan) {
    if (chan > 1) throw std::out_of_range("eCores have two DMA channels (0 and 1)");
  }

  machine::Machine* m_;
  arch::CoreCoord coord_;
  GroupInfo group_;
  std::uint32_t barrier_gen_ = 0;
  int trace_depth_ = 0;
};

/// A device kernel: one coroutine per eCore in the workgroup.
using KernelFn = std::function<sim::Op<void>(CoreCtx&)>;

}  // namespace epi::device
