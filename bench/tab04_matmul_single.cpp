// Table IV: single-eCore matmul floating-point performance by operand size.
// Paper: 0.85 GFLOPS (70.5%) at 8x8 rising to 1.15 GFLOPS (95.9%) at 32x32.

#include <iostream>

#include "core/matmul.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Table IV: Matmul single-core floating-point performance\n\n";
  util::Table t({"Matrix dimensions", "GFLOPS", "% of peak", "Verified"});
  for (unsigned n : {8u, 16u, 20u, 24u, 32u}) {
    host::System sys;
    const auto r = core::run_matmul_single(sys, n, n, n, core::Codegen::TunedAsm, 42, true);
    t.add_row({std::to_string(n) + " x " + std::to_string(n), util::fmt(r.gflops, 2),
               util::fmt(100.0 * r.gflops / 1.2, 1), r.verified ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nPaper: 8x8=0.85 (70.5%), 16x16=1.07 (89.5%), 20x20=1.11 (92.5%),\n"
               "24x24=1.12 (93.4%), 32x32=1.15 (95.9%).\n";
  return 0;
}
