// Figure 7: stencil weak scaling. The per-core problem stays 60x60 while
// the grid grows from 60x60 (1 eCore) to 480x480 (64 eCores). Paper: time
// rises when communication first appears, then levels out after 8 eCores
// (2x4) as independent neighbour pairs overlap.

#include <iostream>

#include "core/stencil.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 7: Stencil weak scaling (60x60 per core, 50 iterations)\n\n";
  const std::pair<unsigned, unsigned> groups[] = {{1, 1}, {1, 2}, {2, 2}, {2, 4},
                                                  {4, 4}, {4, 8}, {8, 8}};
  util::Table t({"eCores (rows x cols)", "Global grid", "Time (ms)", "GFLOPS"});
  for (auto [gr, gc] : groups) {
    host::System sys;
    core::StencilConfig cfg;
    cfg.rows = 60;
    cfg.cols = 60;
    cfg.iters = 50;
    const auto ex = core::run_stencil_experiment(sys, gr, gc, cfg, 42, false);
    t.add_row({std::to_string(gr * gc) + " (" + std::to_string(gr) + "x" +
                   std::to_string(gc) + ")",
               std::to_string(gr * 60) + " x " + std::to_string(gc * 60),
               util::fmt(sys.seconds(ex.result.cycles) * 1e3, 3),
               util::fmt(ex.result.gflops, 2)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: time increases from 1 eCore as communication appears, then\n"
               "levels out after 8 eCores (2x4).\n";
  return 0;
}
