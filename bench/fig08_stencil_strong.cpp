// Figure 8: stencil strong scaling. Fixed global grids run on 1 to 64
// eCores; speedup relative to the single-core run. Paper: each doubling of
// eCores yields close to 2x, slightly better for larger problems.
//
// (The paper does not list its three grid sizes; we use 32x32, 48x48 and
// 64x64 -- the largest square grids that still fit a single eCore's
// scratchpad at every decomposition, documented in EXPERIMENTS.md.)

#include <iostream>

#include "core/stencil.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 8: Stencil strong scaling (speedup vs 1 eCore, 50 iterations)\n\n";
  const unsigned sizes[] = {32, 48, 64};
  const std::pair<unsigned, unsigned> groups[] = {{1, 1}, {2, 2}, {4, 4}, {8, 8}};
  util::Table t({"Global grid", "eCores", "Time (ms)", "Speedup"});
  for (unsigned n : sizes) {
    double t1 = 0.0;
    for (auto [gr, gc] : groups) {
      if (n % gr != 0 || n % gc != 0) continue;
      host::System sys;
      core::StencilConfig cfg;
      cfg.rows = n / gr;
      cfg.cols = n / gc;
      cfg.iters = 50;
      const auto ex = core::run_stencil_experiment(sys, gr, gc, cfg, 42, false);
      const double secs = sys.seconds(ex.result.cycles);
      if (gr * gc == 1) t1 = secs;
      t.add_row({std::to_string(n) + " x " + std::to_string(n),
                 std::to_string(gr * gc) + " (" + std::to_string(gr) + "x" +
                     std::to_string(gc) + ")",
                 util::fmt(secs * 1e3, 3), util::fmt(t1 / secs, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: first doubling gives close to 2x; larger problems scale\n"
               "slightly better; later doublings gain slightly less.\n";
  return 0;
}
