// Ablation: pipeline (job-graph) serving policies. One seeded all-pipeline
// stream is replayed against a fresh machine under three scheduler policies:
//
//   serial  -- pipeline_overlap=false: whole graphs run one at a time in id
//              order (the no-pipelining baseline; stage handoffs may still
//              use the scratchpad path);
//   piped   -- pipeline_overlap=true, scratch_handoff=true: stages of
//              different graphs are co-resident, and adjacent producer ->
//              consumer handoffs pull scratchpad-to-scratchpad over the mesh;
//   dram    -- pipeline_overlap=true, scratch_handoff=false: same overlap,
//              but every handoff goes through the shared-DRAM spill buffer
//              and back over the contended eLink.
//
// The headline comparisons: piped vs serial on end-to-end graph throughput
// (what stage pipelining buys), and piped vs dram on e2e latency (what the
// scratchpad handoff path buys when co-placement makes stages adjacent).
//
// Results go to BENCH_dag.json; the committed copy at the repository root is
// the baseline scripts/bench.sh compares new runs against.
//
// Usage: abl_dag [jobs_per_point] [--smoke] [--trace=FILE] [--csv=FILE]
//                [--metrics=FILE] [--no-metrics]
//
// --smoke: shrink the stream, run every policy twice asserting the
// scheduler's decision log is byte-identical run over run, and validate the
// metrics file's schema (the ctest entry); non-zero exit on any mismatch.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "host/system.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

namespace {

using namespace epi;

struct Policy {
  const char* name;
  bool overlap;
  bool scratch;
};

constexpr Policy kPolicies[] = {
    {"serial", false, true},
    {"piped", true, true},
    {"dram", true, false},
};

struct PointResult {
  sched::RunStats stats;
  std::vector<std::string> event_log;
};

PointResult run_policy(host::System& sys, const Policy& p, unsigned jobs) {
  sched::TrafficConfig tc;
  tc.jobs = jobs;
  tc.seed = 42;
  tc.mean_interarrival = 20'000;
  tc.pipeline_frac = 1.0;  // every request is a 2-3 stage graph
  tc.fail_prob = 0.0;      // isolate the handoff/overlap policies under test
  tc.timeout = 0;

  sched::SchedConfig cfg;
  cfg.pipeline_overlap = p.overlap;
  cfg.scratch_handoff = p.scratch;

  sched::Scheduler sc(sys, cfg);
  for (auto& spec : sched::generate(tc)) sc.submit(std::move(spec));
  sc.run();

  PointResult pr;
  pr.stats = sched::summarise(sc);
  pr.event_log = sc.event_log();
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = util::BenchArgs::parse(argc, argv, "abl_dag");
  bool smoke = false;
  for (auto it = args.positional.begin(); it != args.positional.end();) {
    if (*it == "--smoke") {
      smoke = true;
      it = args.positional.erase(it);
    } else {
      ++it;
    }
  }
  if (args.metrics_path == "abl_dag_trace.json") {
    args.metrics_path = smoke ? "BENCH_dag_smoke.json" : "BENCH_dag.json";
  }
  const unsigned jobs =
      static_cast<unsigned>(args.positional_double(0, smoke ? 24 : 60));

  std::cout << "epi-dag policy ablation: " << jobs
            << " stage-jobs/point, seed 42, all-pipeline traffic\n\n";
  util::Table t({"policy", "graphs", "done", "g/Mcyc", "e2e p50", "e2e p99",
                 "overlap", "scratch B", "dram B", "util %"});

  util::BenchReport report("abl_dag");
  bool ok = true;
  std::unique_ptr<host::System> traced_sys;  // kept alive for finish_bench
  double serial_tput = 0.0, piped_tput = 0.0;
  sim::Cycles piped_p50 = 0, dram_p50 = 0;
  for (const Policy& p : kPolicies) {
    // Tracing is only attached to the fully-enabled policy: one timeline of
    // the regime of record, instead of three files overwriting one another.
    const bool trace_this = args.tracing() && std::string(p.name) == "piped";
    auto sys = std::make_unique<host::System>();
    if (trace_this) sys->machine().enable_tracing();
    PointResult pr = run_policy(*sys, p, jobs);
    if (trace_this) traced_sys = std::move(sys);
    if (smoke) {
      host::System sys2;
      const PointResult again = run_policy(sys2, p, jobs);
      if (again.event_log != pr.event_log) {
        std::fprintf(stderr,
                     "abl_dag: FAIL: scheduler event order diverged between "
                     "two identical runs under policy %s\n",
                     p.name);
        ok = false;
      }
    }
    const sched::RunStats& rs = pr.stats;
    t.add_row({p.name, std::to_string(rs.graphs),
               std::to_string(rs.graphs_completed),
               util::fmt(rs.graph_throughput, 3),
               std::to_string(rs.graph_e2e_p50),
               std::to_string(rs.graph_e2e_p99), util::fmt(rs.stage_overlap, 2),
               std::to_string(rs.handoff_scratch_bytes),
               std::to_string(rs.handoff_dram_bytes),
               util::fmt(100 * rs.utilisation, 1)});

    const std::string pfx = std::string(p.name) + "_";
    report.metric(pfx + "graphs", rs.graphs);
    report.metric(pfx + "graphs_completed", rs.graphs_completed);
    report.metric(pfx + "graph_throughput_per_mcycle", rs.graph_throughput);
    report.metric(pfx + "e2e_p50_cycles", static_cast<double>(rs.graph_e2e_p50));
    report.metric(pfx + "e2e_p99_cycles", static_cast<double>(rs.graph_e2e_p99));
    report.metric(pfx + "stage_overlap", rs.stage_overlap);
    report.metric(pfx + "handoff_scratch_bytes",
                  static_cast<double>(rs.handoff_scratch_bytes));
    report.metric(pfx + "handoff_dram_bytes",
                  static_cast<double>(rs.handoff_dram_bytes));
    report.metric(pfx + "makespan_cycles", static_cast<double>(rs.makespan));
    report.metric(pfx + "utilisation", rs.utilisation);

    if (std::string(p.name) == "serial") serial_tput = rs.graph_throughput;
    if (std::string(p.name) == "piped") {
      piped_tput = rs.graph_throughput;
      piped_p50 = rs.graph_e2e_p50;
    }
    if (std::string(p.name) == "dram") dram_p50 = rs.graph_e2e_p50;
    if (rs.graphs_completed != rs.graphs) {
      std::fprintf(stderr, "abl_dag: FAIL: policy %s completed %u/%u graphs\n",
                   p.name, rs.graphs_completed, rs.graphs);
      ok = false;
    }
  }
  t.print(std::cout);
  std::cout << "\n(e2e = first stage arrival -> last stage finish per graph; "
               "cycles at 600 MHz)\n";

  // The two claims of record: overlap buys end-to-end throughput, and the
  // scratchpad handoff path buys latency over the DRAM spill. Checked here
  // so a policy regression fails the bench itself, not just the JSON diff.
  if (piped_tput <= serial_tput) {
    std::fprintf(stderr,
                 "abl_dag: FAIL: pipelined throughput %.3f g/Mcyc does not "
                 "beat serialized %.3f\n",
                 piped_tput, serial_tput);
    ok = false;
  }
  if (piped_p50 >= dram_p50) {
    std::fprintf(stderr,
                 "abl_dag: FAIL: scratchpad-handoff e2e p50 %llu does not "
                 "beat DRAM-handoff %llu\n",
                 static_cast<unsigned long long>(piped_p50),
                 static_cast<unsigned long long>(dram_p50));
    ok = false;
  }

  util::finish_bench(args, traced_sys ? traced_sys->machine().tracer() : nullptr,
                     report);

  if (smoke && !args.metrics_path.empty()) {
    // Schema check: the metrics file must carry the headline metrics for
    // every policy, under the bench's own name.
    std::ifstream in(args.metrics_path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    if (json.find("\"bench\":\"abl_dag\"") == std::string::npos) {
      std::fprintf(stderr, "abl_dag: FAIL: %s missing bench name\n",
                   args.metrics_path.c_str());
      ok = false;
    }
    for (const Policy& p : kPolicies) {
      for (const char* key :
           {"graph_throughput_per_mcycle", "e2e_p50_cycles", "stage_overlap",
            "handoff_scratch_bytes", "handoff_dram_bytes"}) {
        const std::string want =
            "\"" + std::string(p.name) + "_" + key + "\":";
        if (json.find(want) == std::string::npos) {
          std::fprintf(stderr, "abl_dag: FAIL: %s missing metric %s\n",
                       args.metrics_path.c_str(), want.c_str());
          ok = false;
        }
      }
    }
    std::cout << (ok ? "\nsmoke: PASS (bit-identical event order across "
                       "reruns; metrics schema valid; policy ordering holds)\n"
                     : "\nsmoke: FAIL\n");
  }
  return ok ? 0 : 1;
}
