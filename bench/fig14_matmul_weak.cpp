// Figure 14: matmul weak scaling. Two problem ladders whose total flops
// grow proportionally to the core count; time rises when rotation
// communication first appears, then levels out as neighbour pairs overlap.
//
// (The paper's exact per-core shapes for its second ladder do not fit the
// published scratchpad layout; our ladders keep per-core work constant and
// fit the layout -- see EXPERIMENTS.md.)

#include <iostream>

#include "core/matmul.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 14: Matmul weak scaling (time vs number of eCores)\n\n";
  struct Step {
    unsigned g, m, n, k;  // group edge and GLOBAL dims
  };
  const Step ladder1[] = {{1, 16, 16, 32}, {2, 32, 32, 64}, {4, 32, 64, 64},
                          {8, 64, 128, 64}};
  const Step ladder2[] = {{1, 32, 32, 32}, {2, 64, 64, 32}, {4, 64, 128, 64},
                          {8, 128, 128, 128}};
  for (int which = 0; which < 2; ++which) {
    const auto& ladder = which == 0 ? ladder1 : ladder2;
    std::cout << "Configuration " << (which + 1) << " (problem size M x N x K):\n";
    util::Table t({"eCores", "Problem (M x N x K)", "Time (us)", "GFLOPS"});
    for (const auto& s : ladder) {
      host::System sys;
      const auto r = core::run_matmul_onchip_rect(sys, s.g, s.m / s.g, s.n / s.g, s.k / s.g,
                                                  core::Codegen::TunedAsm, 42, false);
      t.add_row({std::to_string(s.g * s.g),
                 std::to_string(s.m) + " x " + std::to_string(s.n) + " x " +
                     std::to_string(s.k),
                 util::fmt(sys.seconds(r.cycles) * 1e6, 1), util::fmt(r.gflops, 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Paper: time increases initially with communication, then levels out\n"
               "as communication between independent pairs of eCores overlaps.\n";
  return 0;
}
