// Figure 2: bandwidth of DMA vs CPU direct writes between adjacent eCores
// as a function of message length. Paper observations: direct writes are
// flat (~360 MB/s: 6.67 cycles per word regardless of size); DMA starts
// below them but climbs to ~2 GB/s for large messages.

#include <iostream>

#include "core/microbench.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 2: Bandwidth - DMA vs Direct Writes (adjacent cores (0,0)->(0,1))\n\n";
  util::Table t({"Message bytes", "Direct writes MB/s", "DMA MB/s", "Winner"});
  for (std::uint32_t bytes = 8; bytes <= 8192; bytes *= 2) {
    host::System sys_direct;
    const auto direct = core::measure_direct_write(sys_direct, {0, 0}, {0, 1}, bytes, 64);
    host::System sys_dma;
    const auto dma = core::measure_dma(sys_dma, {0, 0}, {0, 1}, bytes, 64);
    t.add_row({std::to_string(bytes), util::fmt(direct.mb_per_s, 1),
               util::fmt(dma.mb_per_s, 1),
               dma.mb_per_s > direct.mb_per_s ? "DMA" : "direct"});
  }
  t.print(std::cout);

  // The paper's Listing 1 actually relays the message through every mesh
  // node; confirm the pairwise numbers hold for the full ring.
  host::System ring_sys;
  const auto ring = core::measure_relay_ring(ring_sys, 8, 8, 2048, 8);
  std::cout << "\nListing-1 relay ring (64 nodes, 2 KB messages): "
            << util::fmt(ring.mb_per_s, 1) << " MB/s per hop, "
            << util::fmt(ring.us_per_msg, 2) << " us per transfer\n";
  std::cout << "\nPaper: DMA ~2 GB/s for large messages; direct writes flat; DMA wins for\n"
               "all but very small messages.\n";
  return 0;
}
