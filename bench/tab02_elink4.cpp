// Table II: four eCores (a 2x2 group at the origin) continuously writing
// 2 KB blocks to external DRAM; per-node iteration counts and eLink share.
// Paper: 0.41 / 0.33 / 0.17 / 0.08 -- highly position-dependent.
//
// Usage: tab02_elink4 [window_seconds]   (default 0.5; paper used 2.0)

#include <cstdlib>
#include <iostream>

#include "core/microbench.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const double window = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::cout << "Table II: 4 mesh nodes writing 2KB blocks to DRAM over "
            << util::fmt(window, 2) << " s (simulated)\n\n";
  host::System sys;
  const auto res = core::measure_elink_contention(sys, 2, 2, 2048, window);
  util::Table t({"Mesh node", "Iterations", "Utilization"});
  for (const auto& n : res.nodes) {
    t.add_row({std::to_string(n.coord.row) + "," + std::to_string(n.coord.col),
               std::to_string(n.iterations), util::fmt(n.utilization, 2)});
  }
  t.print(std::cout);
  std::cout << "\nAggregate: " << util::fmt(res.total_mb_per_s, 1)
            << " MB/s (paper cap: 150 MB/s, one quarter of the 600 MB/s eLink).\n"
            << "Paper shares: 0,0=0.41  0,1=0.33  1,0=0.17  1,1=0.08\n";
  return 0;
}
