// Table II: four eCores (a 2x2 group at the origin) continuously writing
// 2 KB blocks to external DRAM; per-node iteration counts and eLink share.
// Paper: 0.41 / 0.33 / 0.17 / 0.08 -- highly position-dependent.
//
// Usage: tab02_elink4 [window_seconds] [--trace=FILE] [--csv=FILE]
//                     [--metrics=FILE] [--no-metrics]
// (default window 0.5; paper used 2.0)

#include <iostream>

#include "core/microbench.hpp"
#include "trace/profile.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const auto args = util::BenchArgs::parse(argc, argv, "tab02_elink4");
  const double window = args.positional_double(0, 0.5);
  std::cout << "Table II: 4 mesh nodes writing 2KB blocks to DRAM over "
            << util::fmt(window, 2) << " s (simulated)\n\n";
  host::System sys;
  if (args.tracing()) sys.machine().enable_tracing();
  const auto res = core::measure_elink_contention(sys, 2, 2, 2048, window);
  util::Table t({"Mesh node", "Iterations", "Utilization"});
  for (const auto& n : res.nodes) {
    t.add_row({std::to_string(n.coord.row) + "," + std::to_string(n.coord.col),
               std::to_string(n.iterations), util::fmt(n.utilization, 2)});
  }
  t.print(std::cout);
  std::cout << "\nAggregate: " << util::fmt(res.total_mb_per_s, 1)
            << " MB/s (paper cap: 150 MB/s, one quarter of the 600 MB/s eLink).\n"
            << "Paper shares: 0,0=0.41  0,1=0.33  1,0=0.17  1,1=0.08\n";

  util::BenchReport report("tab02_elink4");
  report.metric("window_seconds", res.window_seconds);
  report.metric("aggregate_mb_per_s", res.total_mb_per_s);
  for (const auto& n : res.nodes) {
    report.metric("iterations_" + std::to_string(n.coord.row) + "_" +
                      std::to_string(n.coord.col),
                  static_cast<double>(n.iterations));
  }
  const trace::Tracer* tracer = sys.machine().tracer();
  if (tracer != nullptr) {
    const auto profile = trace::attribute(*tracer, 0, sys.engine().now());
    util::finish_bench(args, tracer, report, &profile);
  } else {
    util::finish_bench(args, nullptr, report);
  }
  return 0;
}
