// Ablation / projection: the paper closes by projecting future Epiphany
// parts with up to 4096 eCores, 5 TFLOPS peak and 70 GFLOPS/W -- and warns
// that "the relatively slow external shared memory interface becomes a
// bottleneck when scaling to large problem sizes". We scale the mesh
// configuration to 16x16, 32x32 and 64x64 cores and measure:
//   (a) the stencil, whose nearest-neighbour communication keeps scaling;
//   (b) the eLink, which saturates at the same 150 MB/s no matter how many
//       cores contend, so per-core off-chip bandwidth collapses.

#include <iostream>

#include "core/microbench.hpp"
#include "core/stencil.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Projection: scaling the mesh toward the 4096-core roadmap part\n\n";

  std::cout << "(a) Stencil weak scaling across chip generations (20x20 per core,\n"
               "    20 iterations, nearest-neighbour comms only):\n";
  util::Table st({"Mesh", "Cores", "GFLOPS", "% of peak", "Chip peak GFLOPS"});
  for (unsigned edge : {8u, 16u, 32u, 63u}) {
    arch::MachineConfig cfg;
    cfg.dims = {edge, edge};
    host::System sys(cfg);
    core::StencilConfig scfg;
    scfg.rows = 20;
    scfg.cols = 20;
    scfg.iters = 20;
    const auto ex = core::run_stencil_experiment(sys, edge, edge, scfg, 42, false);
    const double peak = 1.2 * edge * edge;
    st.add_row({std::to_string(edge) + " x " + std::to_string(edge),
                std::to_string(edge * edge), util::fmt(ex.result.gflops, 1),
                util::fmt(100.0 * ex.result.gflops / peak, 1), util::fmt(peak, 1)});
  }
  st.print(std::cout);
  std::cout << "\n(The 63x63 mesh is the closest 32-bit-addressable approximation of the\npaper's 4096-core projection: ~4.8 TFLOPS peak\n"
               "at 600 MHz; on-chip stencil efficiency holds because halo exchange is\n"
               "nearest-neighbour.)\n\n";

  std::cout << "(b) The off-chip wall: per-core share of the single eLink when every\n"
               "    core streams 2 KB blocks to DRAM (5 ms window):\n";
  util::Table el({"Mesh", "Cores", "Aggregate MB/s", "Mean KB/s per core", "Starved cores"});
  for (unsigned edge : {8u, 16u, 32u}) {
    arch::MachineConfig cfg;
    cfg.dims = {edge, edge};
    host::System sys(cfg);
    const auto res = core::measure_elink_contention(sys, edge, edge, 2048, 0.005);
    unsigned starved = 0;
    for (const auto& n : res.nodes) {
      if (n.iterations == 0) ++starved;
    }
    el.add_row({std::to_string(edge) + " x " + std::to_string(edge),
                std::to_string(edge * edge), util::fmt(res.total_mb_per_s, 1),
                util::fmt(res.total_mb_per_s * 1e3 / (edge * edge), 1),
                std::to_string(starved)});
  }
  el.print(std::cout);
  std::cout << "\nThe eLink stays pinned at ~150 MB/s regardless of core count: per-core\n"
               "off-chip bandwidth shrinks linearly and starvation spreads -- the\n"
               "bottleneck the paper says must be addressed before 4096-core parts\n"
               "deliver their promise.\n";
  return 0;
}
