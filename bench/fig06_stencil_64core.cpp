// Figure 6: 64-core stencil performance per per-core grid shape, with and
// without boundary communication. Paper: peak 72.83 GFLOPS without
// communication (80x20 per core); 63.6 GFLOPS (82.8% of chip peak) with
// communication -- a ~9 GFLOPS penalty for not overlapping communication
// with computation.
//
// Usage: fig06_stencil_64core [--trace=FILE] [--csv=FILE] [--metrics=FILE]
//                             [--no-metrics]
// Tracing instruments the with-communication run of the paper's peak shape
// (80x20), so the boundary-exchange phases are visible per core.

#include <iostream>
#include <optional>

#include "core/stencil.hpp"
#include "trace/profile.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const auto args = util::BenchArgs::parse(argc, argv, "fig06_stencil_64core");
  std::cout << "Figure 6: 64-core stencil performance, with vs without communication\n"
               "(50 iterations, per-core grid shapes, 8x8 workgroup)\n\n";
  const std::pair<unsigned, unsigned> shapes[] = {
      {20, 20}, {40, 20}, {20, 40}, {60, 20}, {80, 20}, {20, 80}, {40, 40}, {60, 60},
  };
  util::BenchReport report("fig06_stencil_64core");
  util::Table t({"Per-core grid", "GFLOPS (no comm)", "GFLOPS (with comm)", "Comm penalty %"});
  std::optional<host::System> traced_sys;
  for (auto [r, c] : shapes) {
    core::StencilConfig cfg;
    cfg.rows = r;
    cfg.cols = c;
    cfg.iters = 50;
    cfg.communicate = false;
    host::System sys_nc;
    const auto nc = core::run_stencil_experiment(sys_nc, 8, 8, cfg, 42, false);
    cfg.communicate = true;
    const bool traced = args.tracing() && r == 80 && c == 20;
    host::System local_sys;
    host::System& sys_c = traced ? traced_sys.emplace() : local_sys;
    if (traced) sys_c.machine().enable_tracing();
    const auto wc = core::run_stencil_experiment(sys_c, 8, 8, cfg, 42, false);
    t.add_row({std::to_string(r) + " x " + std::to_string(c),
               util::fmt(nc.result.gflops, 2), util::fmt(wc.result.gflops, 2),
               util::fmt(100.0 * (1.0 - wc.result.gflops / nc.result.gflops), 1)});
    const std::string suffix = "_" + std::to_string(r) + "x" + std::to_string(c);
    report.metric("gflops_nocomm" + suffix, nc.result.gflops);
    report.metric("gflops_comm" + suffix, wc.result.gflops);
  }
  t.print(std::cout);
  std::cout << "\nPaper: 72.83 GFLOPS no-comm peak at 80x20/core; 63.6 GFLOPS (82.8% of\n"
               "76.8 peak) with communication.\n";

  if (traced_sys) {
    const trace::Tracer* tracer = traced_sys->machine().tracer();
    const auto profile = trace::attribute(*tracer, 0, traced_sys->engine().now());
    util::finish_bench(args, tracer, report, &profile);
  } else {
    util::finish_bench(args, nullptr, report);
  }
  return 0;
}
