// Figure 6: 64-core stencil performance per per-core grid shape, with and
// without boundary communication. Paper: peak 72.83 GFLOPS without
// communication (80x20 per core); 63.6 GFLOPS (82.8% of chip peak) with
// communication -- a ~9 GFLOPS penalty for not overlapping communication
// with computation.

#include <iostream>

#include "core/stencil.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 6: 64-core stencil performance, with vs without communication\n"
               "(50 iterations, per-core grid shapes, 8x8 workgroup)\n\n";
  const std::pair<unsigned, unsigned> shapes[] = {
      {20, 20}, {40, 20}, {20, 40}, {60, 20}, {80, 20}, {20, 80}, {40, 40}, {60, 60},
  };
  util::Table t({"Per-core grid", "GFLOPS (no comm)", "GFLOPS (with comm)", "Comm penalty %"});
  for (auto [r, c] : shapes) {
    core::StencilConfig cfg;
    cfg.rows = r;
    cfg.cols = c;
    cfg.iters = 50;
    cfg.communicate = false;
    host::System sys_nc;
    const auto nc = core::run_stencil_experiment(sys_nc, 8, 8, cfg, 42, false);
    cfg.communicate = true;
    host::System sys_c;
    const auto wc = core::run_stencil_experiment(sys_c, 8, 8, cfg, 42, false);
    t.add_row({std::to_string(r) + " x " + std::to_string(c),
               util::fmt(nc.result.gflops, 2), util::fmt(wc.result.gflops, 2),
               util::fmt(100.0 * (1.0 - wc.result.gflops / nc.result.gflops), 1)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: 72.83 GFLOPS no-comm peak at 80x20/core; 63.6 GFLOPS (82.8% of\n"
               "76.8 peak) with communication.\n";
  return 0;
}
