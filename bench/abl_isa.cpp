// Validation: the schedule models used by every stencil/matmul experiment
// are reproduced by *executing* reconstructions of the paper's assembly on
// the eCore ISA model (dual-issue, 5-cycle FMADD result window, 3-cycle
// branches). Numerics are checked against host references elsewhere
// (tests/isa_kernels_test.cpp); this bench reports the cycle agreement.

#include <cstring>
#include <iostream>
#include <vector>

#include "core/matmul_schedule.hpp"
#include "core/stencil_schedule.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "isa/kernels.hpp"
#include "util/reference.hpp"
#include "util/table.hpp"

namespace {

using namespace epi;
using namespace epi::isa;

ExecStats run_stripe(unsigned pairs) {
  const unsigned in_rows = 2 * pairs + 2;
  const std::uint32_t out_offset = in_rows * 22 * 4;
  std::vector<float> in(static_cast<std::size_t>(in_rows) * 22);
  util::fill_random(in, 1);
  std::vector<std::byte> mem(stencil_stripe_memory_bytes(pairs, out_offset));
  std::memcpy(mem.data(), in.data(), in.size() * 4);
  const Program p = assemble(generate_stencil_stripe(pairs, {}, out_offset));
  RegFile regs;
  return execute(p, regs, mem);
}

ExecStats run_matmul(unsigned rows) {
  std::vector<float> a(1024), b(1024);
  util::fill_random(a, 2);
  util::fill_random(b, 3);
  std::vector<std::byte> mem(0x3000);
  std::memcpy(mem.data(), a.data(), 4096);
  std::memcpy(mem.data() + 0x1000, b.data(), 4096);
  const Program p = assemble(generate_matmul_rows(rows));
  RegFile regs;
  return execute(p, regs, mem);
}

}  // namespace

int main() {
  std::cout << "Schedule-model validation by ISA execution\n\n";
  util::Table t({"Kernel unit", "Schedule model (cycles)", "Executed (cycles)",
                 "FPU busy %", "Hazard stalls"});

  {
    const auto r4 = run_stripe(4);
    const auto r12 = run_stripe(12);
    const double per_pair = static_cast<double>(r12.cycles - r4.cycles) / 8.0;
    const double busy = 100.0 * static_cast<double>(r12.fpu_ops) /
                        static_cast<double>(r12.cycles);
    t.add_row({"stencil two-row pass (200 FMADD)",
               std::to_string(core::StencilSchedule::kPairCyclesFull),
               util::fmt(per_pair, 1), util::fmt(busy, 1),
               std::to_string(r12.hazard_stalls)});
  }
  {
    const auto r2 = run_matmul(2);
    const auto r8 = run_matmul(8);
    const double per_row = static_cast<double>(r8.cycles - r2.cycles) / 6.0;
    const double model = 32.0 * core::MatmulSchedule::macro_cycles(32) +
                         static_cast<double>(core::MatmulSchedule::row_overhead(32));
    const double busy =
        100.0 * static_cast<double>(r8.fpu_ops) / static_cast<double>(r8.cycles);
    t.add_row({"matmul C row (32 macros of 32x32)", util::fmt(model, 0),
               util::fmt(per_row, 1), util::fmt(busy, 1),
               std::to_string(r8.hazard_stalls)});
  }
  {
    const auto full = run_matmul(32);
    const double frac = 100.0 * static_cast<double>(full.flops) /
                        (2.0 * static_cast<double>(full.cycles));
    t.add_row({"matmul full 32x32 product", "95.9% of peak (Table IV)",
               util::fmt(frac, 1) + "% of peak", util::fmt(frac, 1),
               std::to_string(full.hazard_stalls)});
  }
  t.print(std::cout);
  std::cout << "\nThe paper's register choreography (five rotating accumulators, "
               "progressive\nB-row replacement, double-buffered accumulator sets) "
               "keeps the executed\nstreams free of pipeline stalls, exactly as "
               "section VI argues.\n";
  return 0;
}
