// Figure 15: matmul strong scaling. Fixed problems run on 2x2, 4x4 and 8x8
// workgroups (wherever the per-core blocks fit memory, as in the paper);
// speedup relative to the smallest feasible group, normalised to its core
// count. Paper: quadrupling eCores yields close to 4x, better for larger
// problems.

#include <iostream>

#include "core/matmul.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 15: Matmul strong scaling (speedup vs number of eCores)\n\n";
  const unsigned sizes[] = {64, 96, 128, 160};
  util::Table t({"Problem (M x N x K)", "eCores", "Time (us)", "Speedup vs smallest"});
  for (unsigned n : sizes) {
    double t_base = 0.0;
    unsigned base_cores = 0;
    for (unsigned g : {2u, 4u, 8u}) {
      if (n % g != 0) continue;
      const unsigned b = n / g;
      if (b > 32) continue;  // per-core block must fit the scratchpad
      host::System sys;
      const auto r = core::run_matmul_onchip(sys, g, b, core::Codegen::TunedAsm, 42, false);
      const double secs = sys.seconds(r.cycles);
      if (base_cores == 0) {
        t_base = secs;
        base_cores = g * g;
      }
      t.add_row({std::to_string(n) + " x " + std::to_string(n) + " x " + std::to_string(n),
                 std::to_string(g * g), util::fmt(secs * 1e6, 1),
                 util::fmt(t_base / secs, 2) + " (x" +
                     std::to_string(g * g / base_cores) + " cores)"});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: quadrupling the eCores achieves close to 4x speedup, with\n"
               "better results for larger problem sizes.\n";
  return 0;
}
