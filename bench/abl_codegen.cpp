// Ablation: compiler-generated vs hand-scheduled inner loops -- the paper's
// central programming-effort finding. The C stencil reached "a small
// fraction of peak" and the C matmul 60% of peak before the assembly
// rewrites (sections VI and VII).

#include <iostream>

#include "core/matmul.hpp"
#include "core/stencil.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Ablation: e-gcc code generation vs hand-tuned assembly schedules\n\n";

  util::Table st({"Stencil grid (1 core)", "tuned-asm GFLOPS", "c-compiler GFLOPS", "ratio"});
  for (auto [r, c] : {std::pair<unsigned, unsigned>{20, 20}, {80, 20}, {60, 60}}) {
    core::StencilConfig cfg;
    cfg.rows = r;
    cfg.cols = c;
    cfg.iters = 20;
    host::System a;
    const auto tuned = core::run_stencil_experiment(a, 1, 1, cfg, 1, false);
    cfg.codegen = core::Codegen::CCompiler;
    host::System b;
    const auto cc = core::run_stencil_experiment(b, 1, 1, cfg, 1, false);
    st.add_row({std::to_string(r) + " x " + std::to_string(c),
                util::fmt(tuned.result.gflops, 3), util::fmt(cc.result.gflops, 3),
                util::fmt(tuned.result.gflops / cc.result.gflops, 2) + "x"});
  }
  st.print(std::cout);

  std::cout << "\n";
  util::Table mm({"Matmul size (1 core)", "tuned-asm GFLOPS", "c-compiler GFLOPS", "ratio"});
  for (unsigned n : {16u, 32u}) {
    host::System a;
    const auto tuned = core::run_matmul_single(a, n, n, n, core::Codegen::TunedAsm, 1, false);
    host::System b;
    const auto cc = core::run_matmul_single(b, n, n, n, core::Codegen::CCompiler, 1, false);
    mm.add_row({std::to_string(n) + " x " + std::to_string(n), util::fmt(tuned.gflops, 3),
                util::fmt(cc.gflops, 3), util::fmt(tuned.gflops / cc.gflops, 2) + "x"});
  }
  mm.print(std::cout);

  std::cout << "\nAnd the end-to-end effect at 64 cores (with communication):\n";
  util::Table chip({"Kernel", "tuned-asm GFLOPS", "c-compiler GFLOPS"});
  {
    core::StencilConfig cfg;
    cfg.rows = 80;
    cfg.cols = 20;
    cfg.iters = 20;
    host::System a;
    const auto tuned = core::run_stencil_experiment(a, 8, 8, cfg, 1, false);
    cfg.codegen = core::Codegen::CCompiler;
    host::System b;
    const auto cc = core::run_stencil_experiment(b, 8, 8, cfg, 1, false);
    chip.add_row({"stencil 640x160", util::fmt(tuned.result.gflops, 1),
                  util::fmt(cc.result.gflops, 1)});
  }
  {
    host::System a;
    const auto tuned = core::run_matmul_onchip(a, 8, 32, core::Codegen::TunedAsm, 1, false);
    host::System b;
    const auto cc = core::run_matmul_onchip(b, 8, 32, core::Codegen::CCompiler, 1, false);
    chip.add_row({"matmul 256x256", util::fmt(tuned.gflops, 1), util::fmt(cc.gflops, 1)});
  }
  chip.print(std::cout);
  std::cout << "\nPaper: C stencil = a small fraction of peak; C matmul = 60% of peak.\n";
  return 0;
}
