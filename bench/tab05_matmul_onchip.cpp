// Table V: on-chip multi-core matmul (Cannon rotation) performance for
// per-core product blocks of 8..32 on 2x2, 4x4 and 8x8 workgroups.
// Paper: ~26% of peak at 8x8 blocks (communication-bound) rising to ~85%
// at 32x32 blocks, nearly independent of group size. Initial operand
// loading from shared memory is excluded, as in the paper.

#include <iostream>

#include "core/matmul.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Table V: Matmul multi-core on-chip floating-point performance\n\n";
  util::Table t({"Per-core C", "Group", "Overall C", "GFLOPS", "% of peak", "Verified"});
  for (unsigned b : {8u, 16u, 20u, 24u, 32u}) {
    for (unsigned g : {2u, 4u, 8u}) {
      host::System sys;
      // Verify the small/medium cases; skip host-side N^3 checks for the
      // largest grids to keep the harness fast (they are covered in tests).
      const bool verify = g * b <= 128;
      const auto r = core::run_matmul_onchip(sys, g, b, core::Codegen::TunedAsm, 42, verify);
      const double peak = 1.2 * g * g;
      t.add_row({std::to_string(b) + " x " + std::to_string(b),
                 std::to_string(g) + " x " + std::to_string(g),
                 std::to_string(g * b) + " x " + std::to_string(g * b),
                 util::fmt(r.gflops, 2), util::fmt(100.0 * r.gflops / peak, 1),
                 verify ? (r.verified ? "yes" : "NO") : "-"});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper (8x8 group): 8x8=20.30 (26.4%), 16x16=51.41 (66.9%),\n"
               "20x20=57.62 (75.0%), 24x24=62.17 (81.0%), 32x32=65.32 (85.1%).\n";
  return 0;
}
