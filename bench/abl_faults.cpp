// Ablation: serving behaviour of epi-serve as injected hardware fault rate
// rises. One fixed seeded traffic mix is replayed against a fresh machine
// per fault level; each level arms a seeded chaos plan (core kills/stalls,
// directed mesh-link outages, eLink outages and bit corruption, DRAM write
// flips) and the full detection/recovery stack (watchdog, CRC retries,
// result validation, quarantine + bounded re-execution).
//
// Reported per level: goodput (completed jobs per Mcycle -- throughput net
// of all fault losses), verdict mix, detection latency (fault strike ->
// FaultReport), retry amplification (kernel executions per completed job),
// and how much of the mesh ended the run quarantined.
//
// Results go to BENCH_faults.json; the committed copy at the repository
// root is the baseline scripts/bench.sh and CI compare new runs against.
//
// Usage: abl_faults [jobs_per_level] [--smoke] [--trace=FILE] [--csv=FILE]
//                   [--metrics=FILE] [--no-metrics]
//
// --smoke: shrink the stream, rerun every level twice asserting decision
// and fault logs are byte-identical run over run, and validate the metrics
// schema (the ctest entry); non-zero exit on any mismatch.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "host/system.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

namespace {

using namespace epi;

struct Level {
  const char* name;
  unsigned kills, stalls, links, elink_outages, elink_flips, mem_flips;
};

// Fault counts per serving run (~1.5 Mcycles of traffic). "none" is the
// clean baseline every degradation is measured against.
constexpr Level kLevels[] = {
    {"none", 0, 0, 0, 0, 0, 0},
    {"low", 0, 1, 4, 1, 1, 1},
    {"mid", 1, 2, 10, 2, 2, 2},
    {"high", 2, 4, 20, 3, 4, 4},
};

struct LevelResult {
  sched::RunStats stats;
  std::vector<std::string> decision_log;
  std::vector<std::string> fault_log;
  double mean_detect_latency = 0.0;  // cycles, fault strike -> report
  double retry_amplification = 1.0;  // kernel executions per completed job
  unsigned reexecs = 0;
};

fault::FaultPlan plan_for(const Level& lv, std::uint64_t seed) {
  fault::ChaosConfig cc;
  cc.seed = seed;
  cc.dims = {8, 8};
  cc.horizon = 1'200'000;
  cc.core_kills = lv.kills;
  cc.core_stalls = lv.stalls;
  cc.link_faults = lv.links;
  cc.elink_outages = lv.elink_outages;
  cc.elink_flips = lv.elink_flips;
  cc.mem_flips = lv.mem_flips;
  return fault::generate(cc);
}

LevelResult run_level(const Level& lv, unsigned jobs) {
  host::System sys;
  sys.machine().enable_faults(plan_for(lv, 1000 + static_cast<std::uint64_t>(&lv - kLevels)));

  sched::TrafficConfig tc;
  tc.jobs = jobs;
  tc.seed = 42;
  tc.mean_interarrival = 30'000;

  sched::SchedConfig cfg;
  cfg.watchdog_cycles = 400'000;
  sched::Scheduler sc(sys, cfg);
  for (auto& spec : sched::generate(tc)) sc.submit(std::move(spec));
  sc.run();

  LevelResult lr;
  lr.stats = sched::summarise(sc);
  lr.decision_log = sc.event_log();
  for (const auto& r : sc.fault_log()) lr.fault_log.push_back(fault::to_line(r));

  double latency_sum = 0.0;
  for (const auto& r : sc.fault_log()) {
    latency_sum += static_cast<double>(r.detected >= r.since ? r.detected - r.since : 0);
  }
  if (!sc.fault_log().empty()) {
    lr.mean_detect_latency = latency_sum / static_cast<double>(sc.fault_log().size());
  }

  unsigned executions = 0;
  for (const auto& rec : sc.records()) {
    if (rec.placed_once) executions += 1 + rec.reexecs;
    lr.reexecs += rec.reexecs;
  }
  if (lr.stats.completed > 0) {
    lr.retry_amplification =
        static_cast<double>(executions) / static_cast<double>(lr.stats.completed);
  }
  return lr;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = util::BenchArgs::parse(argc, argv, "abl_faults");
  bool smoke = false;
  for (auto it = args.positional.begin(); it != args.positional.end();) {
    if (*it == "--smoke") {
      smoke = true;
      it = args.positional.erase(it);
    } else {
      ++it;
    }
  }
  if (args.metrics_path == "abl_faults_trace.json") {
    // Default output name matches the committed baseline (override with
    // --metrics=...).
    args.metrics_path = smoke ? "BENCH_faults_smoke.json" : "BENCH_faults.json";
  }
  const unsigned jobs =
      static_cast<unsigned>(args.positional_double(0, smoke ? 24 : 48));

  std::cout << "epi-serve fault sweep: " << jobs
            << " jobs/level, traffic seed 42, watchdog 400000 cycles\n\n";
  util::Table t({"faults", "done", "fail", "to", "goodput", "detected",
                 "latency", "retry amp", "quarantined", "util %"});

  util::BenchReport report("abl_faults");
  bool ok = true;
  for (const Level& lv : kLevels) {
    const LevelResult lr = run_level(lv, jobs);
    if (smoke) {
      const LevelResult again = run_level(lv, jobs);
      if (again.decision_log != lr.decision_log ||
          again.fault_log != lr.fault_log) {
        std::fprintf(stderr,
                     "abl_faults: FAIL: run diverged between two identical "
                     "runs at level %s\n",
                     lv.name);
        ok = false;
      }
    }
    const sched::RunStats& rs = lr.stats;
    t.add_row({lv.name, std::to_string(rs.completed), std::to_string(rs.failed),
               std::to_string(rs.timed_out), util::fmt(rs.throughput, 3),
               std::to_string(rs.faults_detected),
               util::fmt(lr.mean_detect_latency, 0),
               util::fmt(lr.retry_amplification, 2),
               std::to_string(rs.cores_quarantined),
               util::fmt(100 * rs.utilisation, 1)});

    const std::string pfx = std::string("f_") + lv.name + "_";
    report.metric(pfx + "goodput_jobs_per_mcycle", rs.throughput);
    // Jobs/Mcycle alone can *rise* with fault rate (dropping a doomed 8x8
    // job shortens the makespan denominator more than it costs the
    // numerator), so the served fraction of the offered stream is the
    // headline degradation figure.
    report.metric(pfx + "completed_fraction",
                  rs.jobs > 0 ? static_cast<double>(rs.completed) / rs.jobs : 0.0);
    report.metric(pfx + "completed", rs.completed);
    report.metric(pfx + "failed", rs.failed);
    report.metric(pfx + "timed_out", rs.timed_out);
    report.metric(pfx + "faults_detected", rs.faults_detected);
    report.metric(pfx + "mean_detect_latency_cycles", lr.mean_detect_latency);
    report.metric(pfx + "retry_amplification", lr.retry_amplification);
    report.metric(pfx + "reexecutions", lr.reexecs);
    report.metric(pfx + "jobs_retried", rs.retried);
    report.metric(pfx + "jobs_relocated", rs.relocated);
    report.metric(pfx + "cores_quarantined", rs.cores_quarantined);
    report.metric(pfx + "utilisation", rs.utilisation);
  }
  t.print(std::cout);
  std::cout << "\n(goodput = completed jobs per Mcycle net of fault losses; "
               "latency = fault strike -> FaultReport,\n retry amp = kernel "
               "executions per completed job; cycles at 600 MHz)\n";

  util::finish_bench(args, nullptr, report);

  if (smoke && !args.metrics_path.empty()) {
    // Schema check: goodput and detection metrics must exist per level.
    std::ifstream in(args.metrics_path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    if (json.find("\"bench\":\"abl_faults\"") == std::string::npos) {
      std::fprintf(stderr, "abl_faults: FAIL: %s missing bench name\n",
                   args.metrics_path.c_str());
      ok = false;
    }
    for (const Level& lv : kLevels) {
      for (const char* key :
           {"goodput_jobs_per_mcycle", "faults_detected",
            "mean_detect_latency_cycles", "retry_amplification",
            "cores_quarantined"}) {
        const std::string want =
            std::string("\"f_") + lv.name + "_" + key + "\":";
        if (json.find(want) == std::string::npos) {
          std::fprintf(stderr, "abl_faults: FAIL: %s missing metric %s\n",
                       args.metrics_path.c_str(), want.c_str());
          ok = false;
        }
      }
    }
    std::cout << (ok ? "\nsmoke: PASS (bit-identical decision and fault logs "
                       "across reruns; metrics schema valid)\n"
                     : "\nsmoke: FAIL\n");
  }
  return ok ? 0 : 1;
}
