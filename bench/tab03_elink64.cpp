// Table III: all 64 eCores writing 2 KB blocks to DRAM simultaneously.
// Paper: nodes near the exit win almost everything; 24 nodes complete zero
// iterations ("the effects of starvation are clearly evident").
//
// Usage: tab03_elink64 [window_seconds] [--trace=FILE] [--csv=FILE]
//                      [--metrics=FILE] [--no-metrics]
// (default window 0.25; paper used 2.0)
//
// With --trace=FILE the starvation is directly visible in the Perfetto UI:
// the "eLink write" row shows which core each grant went to, and the starved
// cores' `elink.write.bytes@(r,c)` counters stay flat for the whole window.

#include <algorithm>
#include <iostream>

#include "core/microbench.hpp"
#include "trace/profile.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const auto args = util::BenchArgs::parse(argc, argv, "tab03_elink64");
  const double window = args.positional_double(0, 0.25);
  std::cout << "Table III: 64 mesh nodes writing 2KB blocks to DRAM over "
            << util::fmt(window, 2) << " s (simulated)\n\n";
  host::System sys;
  if (args.tracing()) sys.machine().enable_tracing();
  auto res = core::measure_elink_contention(sys, 8, 8, 2048, window);

  // Top writers, then a histogram of the rest (the paper groups them).
  auto sorted = res.nodes;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.iterations > b.iterations; });
  util::Table top({"Mesh node", "Iterations", "Utilization"});
  for (unsigned i = 0; i < 8; ++i) {
    const auto& n = sorted[i];
    top.add_row({std::to_string(n.coord.row) + "," + std::to_string(n.coord.col),
                 std::to_string(n.iterations), util::fmt(n.utilization, 3)});
  }
  top.print(std::cout);

  const std::uint64_t buckets[] = {1000, 100, 10, 1};
  util::Table hist({"Iteration bucket", "Node count"});
  std::uint64_t prev = ~std::uint64_t{0};
  for (auto b : buckets) {
    unsigned count = 0;
    for (const auto& n : res.nodes) {
      if (n.iterations >= b && n.iterations < prev) ++count;
    }
    hist.add_row({">= " + std::to_string(b), std::to_string(count)});
    prev = b;
  }
  unsigned zero = 0;
  for (const auto& n : res.nodes) {
    if (n.iterations == 0) ++zero;
  }
  hist.add_row({"0 (starved)", std::to_string(zero)});
  std::cout << "\n";
  hist.print(std::cout);
  std::cout << "\nAggregate: " << util::fmt(res.total_mb_per_s, 1)
            << " MB/s. Paper: top column-7 nodes dominate; 24 nodes starved at 0.\n"
            << "(Model note: our stationary arbitration starves strictly by cascade\n"
            << "depth; the measured near-equal split among the top four column-7\n"
            << "nodes is a burst-timing artefact we do not reproduce.)\n";

  util::BenchReport report("tab03_elink64");
  report.metric("window_seconds", res.window_seconds);
  report.metric("aggregate_mb_per_s", res.total_mb_per_s);
  report.metric("starved_nodes", static_cast<double>(zero));
  report.metric("top_iterations", static_cast<double>(sorted.front().iterations));
  const trace::Tracer* tracer = sys.machine().tracer();
  if (tracer != nullptr) {
    const auto profile = trace::attribute(*tracer, 0, sys.engine().now());
    util::finish_bench(args, tracer, report, &profile);
  } else {
    util::finish_bench(args, nullptr, report);
  }
  return 0;
}
