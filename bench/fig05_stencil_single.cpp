// Figure 5: single-eCore floating-point performance of the 5-point stencil
// across grid shapes (50 iterations, row stripes of 20). Paper band:
// 0.97-1.14 GFLOPS (81-95% of the 1.2 GFLOPS per-core peak), with
// rows>cols shapes slightly ahead of their transposes.

#include <iostream>

#include "core/stencil.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 5: Single-core stencil floating-point performance (50 iterations)\n\n";
  // Shapes bounded by the scratchpad layout: the halo-inclusive tile must
  // fit the 20 KB grid region (so e.g. 80x80 is impossible on real silicon
  // with the paper's code resident, too).
  const std::pair<unsigned, unsigned> shapes[] = {
      {20, 20}, {40, 20}, {20, 40}, {60, 20}, {20, 60}, {80, 20},
      {20, 80}, {40, 40}, {80, 40}, {40, 80}, {60, 60}, {64, 64},
  };
  util::Table t({"Grid (rows x cols)", "GFLOPS", "% of peak"});
  for (auto [r, c] : shapes) {
    host::System sys;
    core::StencilConfig cfg;
    cfg.rows = r;
    cfg.cols = c;
    cfg.iters = 50;
    const auto ex = core::run_stencil_experiment(sys, 1, 1, cfg, 42, false);
    t.add_row({std::to_string(r) + " x " + std::to_string(c),
               util::fmt(ex.result.gflops, 3),
               util::fmt(100.0 * ex.result.gflops / 1.2, 1)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: 0.97-1.14 GFLOPS (81-95% of peak); rows>cols shapes slightly\n"
               "better than their transposes for small grids.\n";
  return 0;
}
