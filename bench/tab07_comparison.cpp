// Table VII: comparison of the Epiphany with other many-core systems, plus
// the paper's headline efficiency claim (section VIII): ~32 GFLOPS/W for
// the measured stencil against ~10 GFLOPS/W for the Intel 80-core
// Terascale processor on the same kernel. The "our measured" rows are
// regenerated live from the simulator.

#include <iostream>

#include "core/matmul.hpp"
#include "core/stencil.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Table VII: Comparison of Epiphany with other systems\n\n";
  util::Table t({"System", "Chip power (W)", "Cores", "Max GFLOPS", "Clock (GHz)"});
  t.add_row({"TI C6678 Multicore DSP", "10", "8", "160", "1.5"});
  t.add_row({"Tilera 64-core chip", "35", "64", "192", "0.9"});
  t.add_row({"Intel 80-core Terascale", "97", "80", "1366.4", "4.27"});
  t.add_row({"Epiphany 64-core coprocessor", "2", "64", "76.8", "0.6"});
  t.print(std::cout);

  // Live measured numbers for the efficiency comparison.
  host::System s1;
  core::StencilConfig scfg;
  scfg.rows = 80;
  scfg.cols = 20;
  scfg.iters = 50;
  const auto st = core::run_stencil_experiment(s1, 8, 8, scfg, 42, false);
  host::System s2;
  const auto mm = core::run_matmul_onchip(s2, 8, 32, core::Codegen::TunedAsm, 42, false);

  std::cout << "\nMeasured on this model (assuming the paper's 2 W chip estimate):\n";
  util::Table m({"Kernel", "GFLOPS", "% of peak", "GFLOPS/W"});
  m.add_row({"5-point stencil, 64 cores, with comm", util::fmt(st.result.gflops, 1),
             util::fmt(100.0 * st.result.gflops / 76.8, 1),
             util::fmt(st.result.gflops / 2.0, 1)});
  m.add_row({"on-chip matmul 256x256, 64 cores", util::fmt(mm.gflops, 1),
             util::fmt(100.0 * mm.gflops / 76.8, 1), util::fmt(mm.gflops / 2.0, 1)});
  m.print(std::cout);
  std::cout << "\nPaper: stencil 63.6 GF -> ~32 GFLOPS/W; Intel Terascale ran the same\n"
               "stencil at 1 TFLOPS / 97 W -> ~10 GFLOPS/W.\n";
  return 0;
}
