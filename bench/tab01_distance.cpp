// Table I: effect of node distance on transfer latency. An 80-byte message
// is written from eCore (0,0) to targets across the 8x8 grid; the paper
// reports per-32-bit-transfer time of 11.12 ns at Manhattan distance 1,
// rising only to 12.57 ns at distance 14.

#include <iostream>

#include "core/microbench.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Table I: Effect of Node Distance on Transfer Latency (80-byte messages)\n\n";
  const arch::CoreCoord targets[] = {{0, 1}, {1, 0}, {0, 2}, {1, 1}, {1, 2}, {3, 0},
                                     {0, 4}, {1, 3}, {3, 3}, {4, 4}, {7, 7}};
  util::Table t({"Node 1", "Node 2", "Manhattan distance", "Time per transfer (ns)"});
  constexpr unsigned kReps = 200;
  constexpr unsigned kWordsPerMsg = 20;
  for (const auto dst : targets) {
    host::System sys;
    const auto m = core::measure_direct_write(sys, {0, 0}, dst, 80, kReps);
    const double flag_cycles = static_cast<double>(sys.timing().remote_store_issue_cycles);
    const double cycles_per_msg = static_cast<double>(m.cycles) / kReps - flag_cycles;
    const double ns_per_word =
        cycles_per_msg / kWordsPerMsg / sys.timing().clock_hz * 1e9;
    t.add_row({"0,0", std::to_string(dst.row) + "," + std::to_string(dst.col),
               std::to_string(arch::manhattan_distance({0, 0}, dst)),
               util::fmt(ns_per_word, 2)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: 11.12 ns at distance 1 -> 12.57 ns at distance 14\n"
               "(\"surprisingly little effect of distance\").\n";
  return 0;
}
