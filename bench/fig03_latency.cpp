// Figure 3: latency of small message transfers, DMA vs CPU direct writes.
// Paper observation: below ~500 bytes, writing directly into the adjacent
// core's memory beats DMA (whose fixed descriptor/start/spin-up overhead
// dominates); beyond that, DMA wins.

#include <iostream>

#include "core/microbench.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Figure 3: Latency - DMA vs Direct Writes (adjacent cores (0,0)->(0,1))\n\n";
  util::Table t({"Message bytes", "Direct us/msg", "DMA us/msg", "Faster"});
  std::uint32_t crossover = 0;
  for (std::uint32_t bytes : {8u, 16u, 32u, 64u, 128u, 256u, 384u, 512u, 768u, 1024u, 2048u}) {
    host::System sys_direct;
    const auto direct = core::measure_direct_write(sys_direct, {0, 0}, {0, 1}, bytes, 64);
    host::System sys_dma;
    const auto dma = core::measure_dma(sys_dma, {0, 0}, {0, 1}, bytes, 64);
    const bool dma_wins = dma.us_per_msg <= direct.us_per_msg;
    if (dma_wins && crossover == 0) crossover = bytes;
    t.add_row({std::to_string(bytes), util::fmt(direct.us_per_msg, 3),
               util::fmt(dma.us_per_msg, 3), dma_wins ? "DMA" : "direct"});
  }
  t.print(std::cout);
  std::cout << "\nMeasured crossover: ~" << crossover
            << " bytes (paper: \"less than about 500 bytes\" favours direct writes).\n";
  return 0;
}
