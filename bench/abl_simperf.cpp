// Simulator self-benchmark (google-benchmark): wall-clock throughput of the
// discrete-event engine and of representative end-to-end experiments. This
// is the one place where host wall-clock is the right metric -- it bounds
// how large a modelled experiment is practical.
//
// Unless the caller passes --benchmark_out=..., results are also written as
// machine-readable JSON to BENCH_simperf.json in the working directory
// (scripts/bench.sh runs this from the repository root; the committed
// BENCH_simperf.json is the regression baseline CI compares against).
//
// The binary refuses to run when built without NDEBUG: throughput numbers
// from unoptimised builds are meaningless and have polluted results before.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/matmul.hpp"
#include "core/stencil.hpp"
#include "host/system.hpp"
#include "mem/memory_system.hpp"
#include "sched/cluster.hpp"
#include "sim/frame_pool.hpp"
#include "sim/task.hpp"
#include "sim/wait.hpp"

namespace {

using namespace epi;

// ---- engine event queue ---------------------------------------------------

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 100; ++i) {
      sim::spawn(e, [](sim::Engine& eng) -> sim::Op<void> {
        for (int k = 0; k < 100; ++k) co_await sim::delay(eng, 3);
      }(e));
    }
    e.run();
    state.counters["events"] = static_cast<double>(e.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_EngineEventThroughput);

// Delays beyond the engine's near-future ring: every event takes the
// overflow-heap path, so this isolates the slow tier of the two-level queue.
void BM_EngineFarHorizon(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 100; ++i) {
      sim::spawn(e, [](sim::Engine& eng) -> sim::Op<void> {
        for (int k = 0; k < 50; ++k) co_await sim::delay(eng, 6000);
      }(e));
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 50);
}
BENCHMARK(BM_EngineFarHorizon);

// ---- wait/notify ----------------------------------------------------------

// FIFO churn on one WaitQueue: 64 parked processes, woken one per cycle.
// Exercises the head-indexed waiter list (notify_one used to erase from the
// front of a vector, making each wake O(waiters)).
void BM_WaitNotifyChurn(benchmark::State& state) {
  constexpr int kWaiters = 64;
  constexpr int kRounds = 50;
  for (auto _ : state) {
    sim::Engine e;
    sim::WaitQueue q(e);
    long woken = 0;
    for (int i = 0; i < kWaiters; ++i) {
      sim::spawn(e, [](sim::WaitQueue& wq, long& w) -> sim::Op<void> {
        for (int r = 0; r < kRounds; ++r) {
          co_await wq.wait();
          ++w;
        }
      }(q, woken));
    }
    sim::spawn(e, [](sim::Engine& eng, sim::WaitQueue& wq) -> sim::Op<void> {
      for (int n = 0; n < kWaiters * kRounds; ++n) {
        wq.notify_one();
        co_await sim::delay(eng, 1);
      }
    }(e, q));
    e.run();
    benchmark::DoNotOptimize(woken);
  }
  state.SetItemsProcessed(state.iterations() * kWaiters * kRounds);
}
BENCHMARK(BM_WaitNotifyChurn);

// ---- coroutine frame allocation -------------------------------------------

sim::Op<void> tick_child(sim::Engine& e) { co_await sim::delay(e, 1); }

// Frame churn: one driver awaiting thousands of short-lived child Ops. Each
// child is a fresh coroutine frame, so this measures FramePool's free-list
// recycling against the global allocator it replaced. The pool is trimmed
// first so the timed region includes the cold build-up.
void BM_FrameAllocation(benchmark::State& state) {
  sim::FramePool::trim();
  const auto before = sim::FramePool::stats();
  for (auto _ : state) {
    sim::Engine e;
    sim::spawn(e, [](sim::Engine& eng) -> sim::Op<void> {
      for (int k = 0; k < 1000; ++k) co_await tick_child(eng);
    }(e));
    e.run();
  }
  const auto after = sim::FramePool::stats();
  const double allocs = static_cast<double>(after.allocated - before.allocated);
  const double recycled = static_cast<double>(after.recycled - before.recycled);
  state.counters["recycle_rate"] = allocs > 0 ? recycled / allocs : 0.0;
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FrameAllocation);

// ---- memory watches --------------------------------------------------------

// Flag-spin wake-up: 64 watchers each on their own core's flag word, one
// writer bumping every flag once per generation. Exercises the
// address-interval watch index (waking a watcher used to scan every watch
// in the machine on every store).
void BM_MemoryWatchNotify(benchmark::State& state) {
  constexpr std::uint32_t kGens = 20;
  // Engine and memory live across iterations (constructing the 32 MB
  // external window would otherwise dominate); each iteration works on a
  // fresh generation band so every wait really parks on a watch.
  sim::Engine e;
  mem::MemorySystem mem(arch::MeshDims{8, 8}, e);
  std::uint32_t base = 0;
  for (auto _ : state) {
    for (unsigned idx = 0; idx < 64; ++idx) {
      const arch::CoreCoord c{idx / 8, idx % 8};
      const arch::Addr flag = mem.map().global(c, 0x100);
      sim::spawn(e, [](mem::MemorySystem& m, arch::CoreCoord cc, arch::Addr a,
                       std::uint32_t b) -> sim::Op<void> {
        for (std::uint32_t g = 1; g <= kGens; ++g) {
          co_await m.wait_u32(a, cc, [b, g](std::uint32_t v) { return v >= b + g; });
        }
      }(mem, c, flag, base));
    }
    sim::spawn(e, [](sim::Engine& eng, mem::MemorySystem& m,
                     std::uint32_t b) -> sim::Op<void> {
      for (std::uint32_t g = 1; g <= kGens; ++g) {
        for (unsigned idx = 0; idx < 64; ++idx) {
          const arch::CoreCoord c{idx / 8, idx % 8};
          m.write_value<std::uint32_t>(m.map().global(c, 0x100), b + g, {0, 0});
        }
        co_await sim::delay(eng, 2);
      }
    }(e, mem, base));
    e.run();
    base += kGens;
  }
  state.SetItemsProcessed(state.iterations() * 64 * kGens);
}
BENCHMARK(BM_MemoryWatchNotify);

// ---- end-to-end experiments ------------------------------------------------

void BM_Stencil64Core(benchmark::State& state) {
  for (auto _ : state) {
    host::System sys;
    core::StencilConfig cfg;
    cfg.rows = 20;
    cfg.cols = 20;
    cfg.iters = static_cast<unsigned>(state.range(0));
    auto ex = core::run_stencil_experiment(sys, 8, 8, cfg, 1, false);
    benchmark::DoNotOptimize(ex.result.cycles);
  }
}
BENCHMARK(BM_Stencil64Core)->Arg(5)->Arg(20);

void BM_MatmulOnChip(benchmark::State& state) {
  for (auto _ : state) {
    host::System sys;
    auto r = core::run_matmul_onchip(sys, static_cast<unsigned>(state.range(0)), 16,
                                     core::Codegen::TunedAsm, 1, false);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_MatmulOnChip)->Arg(2)->Arg(4)->Arg(8);

void BM_BarrierRound(benchmark::State& state) {
  for (auto _ : state) {
    host::System sys;
    auto wg = sys.open(0, 0, 8, 8);
    wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
      return [](device::CoreCtx& c) -> sim::Op<void> {
        for (int k = 0; k < 10; ++k) co_await c.barrier();
      }(ctx);
    });
    benchmark::DoNotOptimize(wg.run());
  }
}
BENCHMARK(BM_BarrierRound);

// ---- parallel PDES cluster serving ----------------------------------------

// Wall-clock cost of serving a chip grid through the conservative PDES
// executor, swept over worker counts {1, 2, 4, 8}. This is the speedup
// measurement for --parallel=N: simulated work and output bytes are
// identical for every worker count (the determinism goldens pin that), so
// real_time ratios between rows ARE the parallel speedup. UseRealTime is
// essential: the workers burn CPU time on other threads, so cpu_time of the
// benchmark thread would undercount a parallel run.
//
// The `workers` counter records the executor's actual thread count -- the
// per-benchmark "threads" field stays 1 because google-benchmark only
// counts its own harness threads, not the threads under test.
void BM_ClusterServe(benchmark::State& state) {
  const auto grid = static_cast<unsigned>(state.range(0));  // chips per side
  const auto workers = static_cast<unsigned>(state.range(1));
  sched::ClusterConfig cfg;
  cfg.chip_rows = cfg.chip_cols = grid;
  cfg.traffic.jobs = 12;
  cfg.traffic.seed = 3;
  cfg.traffic.mean_interarrival = 30'000;
  cfg.remote_frac = 0.25;
  std::uint64_t windows = 0;
  sim::Cycles makespan = 0;
  for (auto _ : state) {
    sched::ClusterScheduler cs(cfg);
    cs.run(workers);
    windows = cs.stats().windows;
    makespan = cs.stats().makespan;
    benchmark::DoNotOptimize(makespan);
  }
  state.counters["workers"] = workers;
  state.counters["chips"] = grid * grid;
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["sim_cycles"] = static_cast<double>(makespan);
  state.SetItemsProcessed(state.iterations() * grid * grid * cfg.traffic.jobs);
}
BENCHMARK(BM_ClusterServe)
    ->UseRealTime()
    ->ArgNames({"grid", "workers"})
    ->Args({2, 1})->Args({2, 2})->Args({2, 4})->Args({2, 8})
    ->Args({4, 1})->Args({4, 2})->Args({4, 4})->Args({4, 8});

}  // namespace

int main(int argc, char** argv) {
#ifndef NDEBUG
  (void)argc;
  (void)argv;
  std::fprintf(stderr,
               "abl_simperf: refusing to run: this binary was built without NDEBUG\n"
               "(Debug or unspecified build type). Simulator throughput numbers from\n"
               "unoptimised builds are meaningless; build with\n"
               "-DCMAKE_BUILD_TYPE=Release (scripts/bench.sh does this).\n");
  return 2;
#else
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_simperf.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int eff_argc = static_cast<int>(args.size());
  benchmark::Initialize(&eff_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(eff_argc, args.data())) return 1;
  // The per-benchmark "threads" field only counts google-benchmark harness
  // threads (always 1 here); record the machine's real parallelism and the
  // executor worker sweep in the context block so BENCH_simperf.json says
  // what hardware the BM_ClusterServe speedups were measured on.
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("cluster_worker_sweep", "1,2,4,8");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#endif
}
