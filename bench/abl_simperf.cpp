// Simulator self-benchmark (google-benchmark): wall-clock throughput of the
// discrete-event engine and of representative end-to-end experiments. This
// is the one place where host wall-clock is the right metric -- it bounds
// how large a modelled experiment is practical.

#include <benchmark/benchmark.h>

#include "core/matmul.hpp"
#include "core/stencil.hpp"
#include "host/system.hpp"
#include "sim/task.hpp"

namespace {

using namespace epi;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 100; ++i) {
      sim::spawn(e, [](sim::Engine& eng) -> sim::Op<void> {
        for (int k = 0; k < 100; ++k) co_await sim::delay(eng, 3);
      }(e));
    }
    e.run();
    state.counters["events"] = static_cast<double>(e.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_Stencil64Core(benchmark::State& state) {
  for (auto _ : state) {
    host::System sys;
    core::StencilConfig cfg;
    cfg.rows = 20;
    cfg.cols = 20;
    cfg.iters = static_cast<unsigned>(state.range(0));
    auto ex = core::run_stencil_experiment(sys, 8, 8, cfg, 1, false);
    benchmark::DoNotOptimize(ex.result.cycles);
  }
}
BENCHMARK(BM_Stencil64Core)->Arg(5)->Arg(20);

void BM_MatmulOnChip(benchmark::State& state) {
  for (auto _ : state) {
    host::System sys;
    auto r = core::run_matmul_onchip(sys, static_cast<unsigned>(state.range(0)), 16,
                                     core::Codegen::TunedAsm, 1, false);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_MatmulOnChip)->Arg(2)->Arg(4)->Arg(8);

void BM_BarrierRound(benchmark::State& state) {
  for (auto _ : state) {
    host::System sys;
    auto wg = sys.open(0, 0, 8, 8);
    wg.load([](device::CoreCtx& ctx) -> sim::Op<void> {
      return [](device::CoreCtx& c) -> sim::Op<void> {
        for (int k = 0; k < 10; ++k) co_await c.barrier();
      }(ctx);
    });
    benchmark::DoNotOptimize(wg.run());
  }
}
BENCHMARK(BM_BarrierRound);

}  // namespace

BENCHMARK_MAIN();
