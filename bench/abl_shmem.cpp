// Ablation: latency and bandwidth of the epi-shmem PGAS primitives across
// message size and workgroup shape. For every shape the sweep times
//   * blocking put / get between PE 0 and the farthest group member (the
//     worst-case on-chip distance for that shape), across the direct-store
//     -> DMA crossover (Config.dma_threshold = 256 B),
//   * barrier_all (dissemination, log2(n) rounds of flag generations),
//   * allreduce_i32 sum (binomial up-sweep + broadcast down-sweep),
// each amortised over several repetitions on a fresh machine, so the table
// separates the per-op protocol cost from the per-byte streaming cost --
// the Ross & Richie crossover the runtime's threshold encodes.
//
// Results go to BENCH_shmem.json; the committed copy at the repository root
// is the baseline scripts/bench.sh compares new runs against.
//
// Usage: abl_shmem [reps] [--smoke] [--trace=FILE] [--csv=FILE]
//                  [--metrics=FILE] [--no-metrics]
//
// --smoke: shrink the sweep, rerun every point asserting bit-identical
// cycle measurements, and validate the metrics schema (the ctest entry).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "host/system.hpp"
#include "shmem/shmem.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

namespace {

using namespace epi;

struct Shape {
  unsigned rows, cols;
};

enum class Prim { Put, Get, Barrier, Allreduce };

/// One measured point: `reps` repetitions of one primitive on a fresh
/// machine; returns total simulated cycles (deterministic). When `keep` is
/// given the System is traced and kept alive for finish_bench.
sim::Cycles run_point(Shape sh, Prim prim, std::uint32_t bytes, unsigned reps,
                      std::unique_ptr<host::System>* keep = nullptr) {
  auto sys_owned = std::make_unique<host::System>();
  host::System& sys = *sys_owned;
  if (keep) sys.machine().enable_tracing();
  auto wg = sys.open(0, 0, sh.rows, sh.cols);
  auto group = std::make_shared<shmem::Group>(sys.machine(), wg.info());
  const unsigned peer = group->n_pes() - 1;  // farthest member from PE 0
  const arch::Addr src = bytes ? group->heap().alloc(bytes) : 0;
  const arch::Addr dst = bytes ? group->heap().alloc(bytes) : 0;
  if (bytes) {
    // Host-initialise the transfer source so the runs are uninit-free under
    // any sanitizer; contents do not affect timing.
    std::vector<std::uint32_t> fill(bytes / 4, 0x5EED);
    const auto& map = sys.machine().mem().map();
    sys.write(map.global(group->coord_of(0), src), std::as_bytes(std::span(fill)));
    sys.write(map.global(group->coord_of(peer), src), std::as_bytes(std::span(fill)));
  }

  wg.load([group, prim, bytes, reps, peer, src, dst](device::CoreCtx& ctx)
              -> sim::Op<void> {
    return [](device::CoreCtx& c, std::shared_ptr<shmem::Group> g, Prim p,
              std::uint32_t nbytes, unsigned n, unsigned far, arch::Addr s,
              arch::Addr d) -> sim::Op<void> {
      shmem::Pe pe(c, *g);
      switch (p) {
        case Prim::Put:
          if (pe.my_pe() == 0) {
            for (unsigned r = 0; r < n; ++r) co_await pe.put(far, d, s, nbytes);
          }
          break;
        case Prim::Get:
          if (pe.my_pe() == 0) {
            for (unsigned r = 0; r < n; ++r) co_await pe.get(far, d, s, nbytes);
          }
          break;
        case Prim::Barrier:
          for (unsigned r = 0; r < n; ++r) co_await pe.barrier_all();
          break;
        case Prim::Allreduce:
          for (unsigned r = 0; r < n; ++r) {
            (void)co_await pe.allreduce_i32(
                shmem::ReduceOp::Sum, static_cast<std::int32_t>(pe.my_pe()));
          }
          break;
      }
    }(ctx, group, prim, bytes, reps, peer, src, dst);
  });
  wg.run();
  const sim::Cycles total = sys.machine().engine().now();
  if (keep) *keep = std::move(sys_owned);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = util::BenchArgs::parse(argc, argv, "abl_shmem");
  bool smoke = false;
  for (auto it = args.positional.begin(); it != args.positional.end();) {
    if (*it == "--smoke") {
      smoke = true;
      it = args.positional.erase(it);
    } else {
      ++it;
    }
  }
  if (args.metrics_path == "abl_shmem_trace.json") {
    args.metrics_path = smoke ? "BENCH_shmem_smoke.json" : "BENCH_shmem.json";
  }
  const unsigned reps =
      static_cast<unsigned>(args.positional_double(0, smoke ? 4 : 8));

  const std::vector<Shape> shapes = smoke
                                        ? std::vector<Shape>{{1, 2}, {2, 2}}
                                        : std::vector<Shape>{{1, 2}, {2, 2},
                                                             {4, 4}, {8, 8}};
  const std::vector<std::uint32_t> sizes =
      smoke ? std::vector<std::uint32_t>{16, 1024}
            : std::vector<std::uint32_t>{16, 64, 256, 1024, 4096};

  std::cout << "epi-shmem primitive sweep: " << reps
            << " reps/point, PE 0 <-> farthest member per shape\n\n";
  util::Table t({"shape", "bytes", "put cyc/op", "put B/cyc", "get cyc/op",
                 "get B/cyc", "barrier cyc", "allreduce cyc"});

  util::BenchReport report("abl_shmem");
  std::vector<std::string> log;  // smoke: rerun must reproduce bit-identically
  std::unique_ptr<host::System> traced_sys;  // kept alive for finish_bench

  for (const Shape sh : shapes) {
    const std::string sp =
        "s" + std::to_string(sh.rows) + "x" + std::to_string(sh.cols) + "_";
    // Collectives: one row per shape (message size does not apply).
    const sim::Cycles bar = run_point(sh, Prim::Barrier, 0, reps);
    // Attach the tracer to the largest shape's reduction: one timeline of
    // the deepest tree instead of one file per point.
    const bool trace_this = args.tracing() && &sh == &shapes.back();
    const sim::Cycles red = run_point(sh, Prim::Allreduce, 0, reps,
                                      trace_this ? &traced_sys : nullptr);
    const double bar_per = static_cast<double>(bar) / reps;
    const double red_per = static_cast<double>(red) / reps;
    report.metric(sp + "barrier_cycles_per_op", bar_per);
    report.metric(sp + "allreduce_cycles_per_op", red_per);
    log.push_back(sp + "bar=" + std::to_string(bar) + " red=" + std::to_string(red));

    for (const std::uint32_t bytes : sizes) {
      const sim::Cycles put = run_point(sh, Prim::Put, bytes, reps);
      const sim::Cycles get = run_point(sh, Prim::Get, bytes, reps);
      const double put_per = static_cast<double>(put) / reps;
      const double get_per = static_cast<double>(get) / reps;
      const double put_bw = static_cast<double>(bytes) * reps / put;
      const double get_bw = static_cast<double>(bytes) * reps / get;
      const std::string pfx = sp + "b" + std::to_string(bytes) + "_";
      report.metric(pfx + "put_cycles_per_op", put_per);
      report.metric(pfx + "put_bytes_per_cycle", put_bw);
      report.metric(pfx + "get_cycles_per_op", get_per);
      report.metric(pfx + "get_bytes_per_cycle", get_bw);
      log.push_back(pfx + "put=" + std::to_string(put) +
                    " get=" + std::to_string(get));
      t.add_row({std::to_string(sh.rows) + "x" + std::to_string(sh.cols),
                 std::to_string(bytes), util::fmt(put_per, 1),
                 util::fmt(put_bw, 3), util::fmt(get_per, 1),
                 util::fmt(get_bw, 3), util::fmt(bar_per, 1),
                 util::fmt(red_per, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\n(put/get between PE 0 and the farthest group member; "
               "crossover to DMA above 256 B; cycles at 600 MHz)\n";

  bool ok = true;
  if (smoke) {
    // Every point, rerun from scratch, must reproduce the same cycle counts.
    std::vector<std::string> again;
    for (const Shape sh : shapes) {
      const std::string sp =
          "s" + std::to_string(sh.rows) + "x" + std::to_string(sh.cols) + "_";
      const sim::Cycles bar = run_point(sh, Prim::Barrier, 0, reps);
      const sim::Cycles red = run_point(sh, Prim::Allreduce, 0, reps);
      again.push_back(sp + "bar=" + std::to_string(bar) +
                      " red=" + std::to_string(red));
      for (const std::uint32_t bytes : sizes) {
        const sim::Cycles put = run_point(sh, Prim::Put, bytes, reps);
        const sim::Cycles get = run_point(sh, Prim::Get, bytes, reps);
        again.push_back(sp + "b" + std::to_string(bytes) +
                        "_put=" + std::to_string(put) +
                        " get=" + std::to_string(get));
      }
    }
    if (again != log) {
      std::fprintf(stderr,
                   "abl_shmem: FAIL: cycle measurements diverged between two "
                   "identical sweeps\n");
      ok = false;
    }
  }

  util::finish_bench(args, traced_sys ? traced_sys->machine().tracer() : nullptr,
                     report);

  if (smoke && !args.metrics_path.empty()) {
    std::ifstream in(args.metrics_path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    if (json.find("\"bench\":\"abl_shmem\"") == std::string::npos) {
      std::fprintf(stderr, "abl_shmem: FAIL: %s missing bench name\n",
                   args.metrics_path.c_str());
      ok = false;
    }
    for (const Shape sh : shapes) {
      const std::string sp =
          "s" + std::to_string(sh.rows) + "x" + std::to_string(sh.cols) + "_";
      for (const std::string key :
           {sp + "barrier_cycles_per_op", sp + "allreduce_cycles_per_op",
            sp + "b" + std::to_string(sizes.front()) + "_put_cycles_per_op",
            sp + "b" + std::to_string(sizes.back()) + "_get_bytes_per_cycle"}) {
        if (json.find("\"" + key + "\":") == std::string::npos) {
          std::fprintf(stderr, "abl_shmem: FAIL: %s missing metric %s\n",
                       args.metrics_path.c_str(), key.c_str());
          ok = false;
        }
      }
    }
    std::cout << (ok ? "\nsmoke: PASS (bit-identical cycle counts across "
                       "reruns; metrics schema valid)\n"
                     : "\nsmoke: FAIL\n");
  }
  return ok ? 0 : 1;
}
