// Ablation: the communication-scheme design choices called out in the
// paper:
//   * stencil: in-place halo exchange (two sync rounds) vs double-buffered
//     boundaries ("Further Optimizations": gains "likely modest");
//   * matmul: Cannon nearest-neighbour rotation vs SUMMA broadcast
//     (section VIII names SUMMA as the lower-workspace alternative);
//   * DMA element width: DWORD vs WORD descriptors (the paper uses 64-bit
//     transfers for stencil rows and 32-bit for columns).

#include <iostream>

#include "core/matmul.hpp"
#include "core/microbench.hpp"
#include "core/stencil.hpp"
#include "core/summa.hpp"
#include "dma/descriptor.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Ablation: communication schemes\n\n";

  std::cout << "(a) Stencil boundary exchange, 8x8 workgroup, 50 iterations:\n";
  util::Table st({"Per-core grid", "in-place GFLOPS", "double-buffered GFLOPS", "gain %"});
  for (auto [r, c] : {std::pair<unsigned, unsigned>{20, 20}, {80, 20}, {40, 40}}) {
    core::StencilConfig cfg;
    cfg.rows = r;
    cfg.cols = c;
    cfg.iters = 50;
    host::System a;
    const auto inplace = core::run_stencil_experiment(a, 8, 8, cfg, 1, false);
    cfg.double_buffer_boundaries = true;
    host::System b;
    const auto dbuf = core::run_stencil_experiment(b, 8, 8, cfg, 1, false);
    st.add_row({std::to_string(r) + " x " + std::to_string(c),
                util::fmt(inplace.result.gflops, 2), util::fmt(dbuf.result.gflops, 2),
                util::fmt(100.0 * (dbuf.result.gflops / inplace.result.gflops - 1.0), 1)});
  }
  st.print(std::cout);
  std::cout << "Paper: \"performance gains are likely to be modest\".\n\n";

  std::cout << "(b) On-chip matmul: Cannon rotation vs SUMMA broadcast (4x4 group):\n";
  util::Table mm({"Block", "Cannon GFLOPS", "SUMMA GFLOPS", "Cannon advantage"});
  for (unsigned b : {8u, 16u, 24u}) {
    host::System x;
    const auto cannon = core::run_matmul_onchip(x, 4, b, core::Codegen::TunedAsm, 1, false);
    host::System y;
    const auto summa = core::run_matmul_summa(y, 4, b, core::Codegen::TunedAsm, 1, false);
    mm.add_row({std::to_string(b) + " x " + std::to_string(b), util::fmt(cannon.gflops, 2),
                util::fmt(summa.gflops, 2),
                util::fmt(cannon.gflops / summa.gflops, 2) + "x"});
  }
  mm.print(std::cout);
  std::cout << "Paper (sec. VIII): Cannon's nearest-neighbour transfers suit the 2D mesh;\n"
               "SUMMA trades bandwidth for lower workspace.\n\n";

  std::cout << "(c) DMA element width (4 KB transfer between adjacent cores):\n";
  util::Table dw({"Element", "MB/s"});
  {
    host::System sys;
    // DWORD-aligned destination.
    const auto d = core::measure_dma(sys, {0, 0}, {0, 1}, 4096, 32);
    dw.add_row({"DWORD (64-bit)", util::fmt(d.mb_per_s, 1)});
  }
  {
    host::System sys;
    // Odd word offset forces WORD descriptors in DmaDescriptor::linear.
    const auto d = core::measure_dma(sys, {0, 0}, {0, 1}, 4092, 32);
    dw.add_row({"WORD (32-bit)", util::fmt(d.mb_per_s, 1)});
  }
  dw.print(std::cout);
  std::cout << "Paper: doubleword transfers double the DMA rate (2.4 -> 4.8 GB/s\n"
               "theoretical; ~2 GB/s observed for large DWORD messages).\n";
  return 0;
}
