// Table VI: off-chip matmul for matrices too large for the chip: 512x512
// and 1024x1024 with 32x32 per-core blocks, 1536x1536 with 24x24 blocks.
// Paper: performance collapses to ~8-11% of peak; 86-90% of the time goes
// to block DMA transfers over the 150 MB/s shared-memory path.

#include <iostream>

#include "core/matmul.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  std::cout << "Table VI: Floating-point performance for larger (off-chip) matrices\n"
               "(8x8 workgroup; paging over the eLink)\n\n";
  struct Case {
    unsigned n, block;
  };
  const Case cases[] = {{512, 32}, {1024, 32}, {1536, 24}};
  util::Table t({"Matrix C", "Per-core block", "GFLOPS", "% of peak", "% computation",
                 "% shared-mem transfers"});
  for (const auto& c : cases) {
    host::System sys;
    const auto r =
        core::run_matmul_offchip(sys, c.n, 8, c.block, core::Codegen::TunedAsm, 42, false);
    t.add_row({std::to_string(c.n) + " x " + std::to_string(c.n),
               std::to_string(c.block) + " x " + std::to_string(c.block),
               util::fmt(r.gflops, 2), util::fmt(100.0 * r.gflops / 76.8, 1),
               util::fmt(100.0 * r.compute_fraction, 1),
               util::fmt(100.0 * r.transfer_fraction, 1)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: 512=8.32 GF (10.8%, 12.8/87.2), 1024=8.52 GF (11.1%, 13.1/86.9),\n"
               "1536=6.34 GF (8.2%, 10.9/89.1).\n";
  return 0;
}
