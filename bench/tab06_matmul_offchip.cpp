// Table VI: off-chip matmul for matrices too large for the chip: 512x512
// and 1024x1024 with 32x32 per-core blocks, 1536x1536 with 24x24 blocks.
// Paper: performance collapses to ~8-11% of peak; 86-90% of the time goes
// to block DMA transfers over the 150 MB/s shared-memory path.
//
// Usage: tab06_matmul_offchip [--trace=FILE] [--csv=FILE] [--metrics=FILE]
//                             [--no-metrics]
// Tracing instruments the 512x512 case (each case runs on a fresh System)
// and prints the epi-trace per-core cycle attribution, whose comm+DMA-wait
// share is the profiler's view of the paper's ~87% transfer fraction.

#include <iostream>
#include <optional>

#include "core/matmul.hpp"
#include "trace/profile.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace epi;
  const auto args = util::BenchArgs::parse(argc, argv, "tab06_matmul_offchip");
  std::cout << "Table VI: Floating-point performance for larger (off-chip) matrices\n"
               "(8x8 workgroup; paging over the eLink)\n\n";
  struct Case {
    unsigned n, block;
  };
  const Case cases[] = {{512, 32}, {1024, 32}, {1536, 24}};
  util::BenchReport report("tab06_matmul_offchip");
  util::Table t({"Matrix C", "Per-core block", "GFLOPS", "% of peak", "% computation",
                 "% shared-mem transfers"});
  std::optional<host::System> traced_sys;
  for (const auto& c : cases) {
    const bool traced = args.tracing() && c.n == 512;
    host::System local_sys;
    host::System& sys = traced ? traced_sys.emplace() : local_sys;
    if (traced) sys.machine().enable_tracing();
    const auto r =
        core::run_matmul_offchip(sys, c.n, 8, c.block, core::Codegen::TunedAsm, 42, false);
    t.add_row({std::to_string(c.n) + " x " + std::to_string(c.n),
               std::to_string(c.block) + " x " + std::to_string(c.block),
               util::fmt(r.gflops, 2), util::fmt(100.0 * r.gflops / 76.8, 1),
               util::fmt(100.0 * r.compute_fraction, 1),
               util::fmt(100.0 * r.transfer_fraction, 1)});
    const std::string suffix = "_" + std::to_string(c.n);
    report.metric("gflops" + suffix, r.gflops);
    report.metric("compute_fraction" + suffix, r.compute_fraction);
    report.metric("transfer_fraction" + suffix, r.transfer_fraction);
  }
  t.print(std::cout);
  std::cout << "\nPaper: 512=8.32 GF (10.8%, 12.8/87.2), 1024=8.52 GF (11.1%, 13.1/86.9),\n"
               "1536=6.34 GF (8.2%, 10.9/89.1).\n";

  if (traced_sys) {
    const trace::Tracer* tracer = traced_sys->machine().tracer();
    const auto profile = trace::attribute(*tracer, 0, traced_sys->engine().now());
    std::cout << "\nProfiler attribution (512x512 run): comm+dma-wait = "
              << util::fmt(100.0 * profile.comm_dma_fraction(), 1)
              << "% of core cycles (paper Table VI: ~87% shared-memory transfers)\n";
    report.metric("profile_comm_dma_fraction_512", profile.comm_dma_fraction());
    util::finish_bench(args, tracer, report, &profile);
  } else {
    util::finish_bench(args, nullptr, report);
  }
  return 0;
}
