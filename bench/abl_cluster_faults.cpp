// Ablation: cluster serving behaviour as the chip-level fault rate rises.
// One fixed seeded per-chip traffic mix is replayed against a fresh 2x2
// xMesh cluster per fault level; each level arms a seeded cluster chaos
// plan (whole-chip crashes and host stalls, directed bridge-link outages
// with flapping, dropped and CRC-corrupted completion notices) and the
// full failover stack (heartbeat watchdogs, peer quarantine, idempotent
// re-forwarding with bounded retries, DAG-aware re-homing).
//
// Reported per level: cluster goodput (completed jobs per Mcycle of the
// cluster makespan, net of everything the faults cost), the served fraction
// of the offered stream, recovery volume (re-forwards, quarantines, home-
// side dedups, CRC rejects), and the chips lost.
//
// Results go to BENCH_cluster_faults.json; the committed copy at the
// repository root is the baseline scripts/bench.sh and CI compare against.
//
// Usage: abl_cluster_faults [jobs_per_chip] [--smoke] [--csv=FILE]
//                           [--metrics=FILE] [--no-metrics]
//
// --smoke: shrink the stream, run every level with 1 and 2 workers
// asserting the observable cluster bytes (report + decision/fault/notice
// logs) are identical, and validate the metrics schema (the ctest entry);
// non-zero exit on any mismatch.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "sched/cluster.hpp"
#include "sched/report.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

namespace {

using namespace epi;

struct Level {
  const char* name;
  unsigned crashes, stalls, xmesh, drops, flips;
};

// Chip-fault counts per serving run. "none" leaves the plan without chip
// events, so the failover stack stays unarmed -- the clean baseline every
// degradation (and the instrumentation-is-free claim) is measured against.
constexpr Level kLevels[] = {
    {"none", 0, 0, 0, 0, 0},
    {"notices", 0, 0, 0, 3, 4},
    {"links", 0, 1, 3, 2, 2},
    {"crash", 1, 1, 2, 2, 2},
};

sched::ClusterConfig config_for(const Level& lv, unsigned jobs) {
  sched::ClusterConfig cc;
  cc.chip_rows = 2;
  cc.chip_cols = 2;
  cc.traffic.jobs = jobs;
  cc.traffic.seed = 42;
  cc.traffic.mean_interarrival = 40'000;
  cc.traffic.pipeline_frac = 0.3;
  cc.remote_frac = 0.35;
  cc.sched.watchdog_cycles = 400'000;

  fault::ChaosConfig ch;
  ch.seed = 2000 + static_cast<std::uint64_t>(&lv - kLevels);
  ch.dims = {8, 8};
  ch.chip_rows = 2;
  ch.chip_cols = 2;
  ch.horizon = 1'200'000;
  ch.chip_crashes = lv.crashes;
  ch.chip_stalls = lv.stalls;
  ch.xmesh_faults = lv.xmesh;
  ch.notice_drops = lv.drops;
  ch.notice_flips = lv.flips;
  cc.cluster_plan = fault::generate(ch);
  return cc;
}

struct LevelResult {
  sched::ClusterStats cstats;
  unsigned jobs_offered = 0;
  unsigned completed = 0;
  unsigned failed = 0;
  unsigned timed_out = 0;
  std::string bytes;  // report + per-chip logs, the determinism surface
};

LevelResult run_level(const Level& lv, unsigned jobs, unsigned workers) {
  sched::ClusterScheduler cs(config_for(lv, jobs));
  cs.run(workers);

  LevelResult lr;
  lr.cstats = cs.stats();
  lr.bytes = cs.report();
  for (unsigned c = 0; c < cs.stats().chips; ++c) {
    const sched::RunStats rs = sched::summarise(cs.chip_sched(c));
    lr.jobs_offered += rs.jobs;
    lr.completed += rs.completed;
    lr.failed += rs.failed;
    lr.timed_out += rs.timed_out;
    for (const auto& line : cs.chip_sched(c).event_log()) {
      lr.bytes += line + "\n";
    }
    for (const auto& r : cs.chip_sched(c).fault_log()) {
      lr.bytes += fault::to_line(r) + "\n";
    }
    for (const auto& line : cs.notices(c)) lr.bytes += line + "\n";
  }
  return lr;
}

double goodput(const LevelResult& lr) {
  if (lr.cstats.makespan == 0) return 0.0;
  return static_cast<double>(lr.completed) /
         (static_cast<double>(lr.cstats.makespan) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  auto args = util::BenchArgs::parse(argc, argv, "abl_cluster_faults");
  bool smoke = false;
  for (auto it = args.positional.begin(); it != args.positional.end();) {
    if (*it == "--smoke") {
      smoke = true;
      it = args.positional.erase(it);
    } else {
      ++it;
    }
  }
  if (args.metrics_path == "abl_cluster_faults_trace.json") {
    // Default output name matches the committed baseline (override with
    // --metrics=...).
    args.metrics_path =
        smoke ? "BENCH_cluster_faults_smoke.json" : "BENCH_cluster_faults.json";
  }
  const unsigned jobs =
      static_cast<unsigned>(args.positional_double(0, smoke ? 10 : 20));

  std::cout << "epi-serve cluster fault sweep: 2x2 chips, " << jobs
            << " jobs/chip/level, traffic seed 42, watchdog 400000 cycles\n\n";
  util::Table t({"faults", "done", "fail", "to", "goodput", "refwd", "quar",
                 "dup", "crc", "dead", "abandoned"});

  util::BenchReport report("abl_cluster_faults");
  bool ok = true;
  for (const Level& lv : kLevels) {
    const LevelResult lr = run_level(lv, jobs, 4);
    if (smoke) {
      // Worker-count invariance is the cluster determinism contract: the
      // sequential reference and a 2-worker run must produce the very same
      // observable bytes as the 4-worker measurement run.
      for (const unsigned w : {1u, 2u}) {
        const LevelResult again = run_level(lv, jobs, w);
        if (again.bytes != lr.bytes) {
          std::fprintf(stderr,
                       "abl_cluster_faults: FAIL: level %s diverged between "
                       "%u workers and 4 workers\n",
                       lv.name, w);
          ok = false;
        }
      }
    }
    const sched::ClusterStats& cs = lr.cstats;
    t.add_row({lv.name, std::to_string(lr.completed),
               std::to_string(lr.failed), std::to_string(lr.timed_out),
               util::fmt(goodput(lr), 3), std::to_string(cs.reforwarded),
               std::to_string(cs.quarantines), std::to_string(cs.dup_dropped),
               std::to_string(cs.crc_rejects), std::to_string(cs.dead_chips),
               std::to_string(cs.abandoned_jobs)});

    const std::string pfx = std::string("f_") + lv.name + "_";
    report.metric(pfx + "goodput_jobs_per_mcycle", goodput(lr));
    // Goodput alone can *rise* when a crash abandons slow jobs (the
    // makespan denominator shrinks faster than the completed numerator), so
    // the served fraction of the offered stream is the headline figure.
    report.metric(pfx + "completed_fraction",
                  lr.jobs_offered > 0
                      ? static_cast<double>(lr.completed) / lr.jobs_offered
                      : 0.0);
    report.metric(pfx + "completed", lr.completed);
    report.metric(pfx + "failed", lr.failed);
    report.metric(pfx + "timed_out", lr.timed_out);
    report.metric(pfx + "makespan_mcycles",
                  static_cast<double>(cs.makespan) / 1e6);
    report.metric(pfx + "forwards", cs.forwards);
    report.metric(pfx + "notices", cs.notices);
    report.metric(pfx + "reforwarded", cs.reforwarded);
    report.metric(pfx + "quarantines", cs.quarantines);
    report.metric(pfx + "abandoned_forwards", cs.abandoned);
    report.metric(pfx + "dup_dropped", cs.dup_dropped);
    report.metric(pfx + "crc_rejects", cs.crc_rejects);
    report.metric(pfx + "dead_chips", cs.dead_chips);
    report.metric(pfx + "abandoned_jobs", cs.abandoned_jobs);
  }
  t.print(std::cout);
  std::cout << "\n(goodput = completed jobs per Mcycle of cluster makespan; "
               "refwd/quar/dup/crc = failover\n re-forwards, peer "
               "quarantines, home-side dedups, rejected notices; cycles at "
               "600 MHz)\n";

  util::finish_bench(args, nullptr, report);

  if (smoke && !args.metrics_path.empty()) {
    // Schema check: goodput and recovery metrics must exist per level.
    std::ifstream in(args.metrics_path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    if (json.find("\"bench\":\"abl_cluster_faults\"") == std::string::npos) {
      std::fprintf(stderr, "abl_cluster_faults: FAIL: %s missing bench name\n",
                   args.metrics_path.c_str());
      ok = false;
    }
    for (const Level& lv : kLevels) {
      for (const char* key :
           {"goodput_jobs_per_mcycle", "completed_fraction", "reforwarded",
            "quarantines", "dead_chips"}) {
        const std::string want =
            std::string("\"f_") + lv.name + "_" + key + "\":";
        if (json.find(want) == std::string::npos) {
          std::fprintf(stderr,
                       "abl_cluster_faults: FAIL: %s missing metric %s\n",
                       args.metrics_path.c_str(), want.c_str());
          ok = false;
        }
      }
    }
    std::cout << (ok ? "\nsmoke: PASS (cluster bytes identical for 1/2/4 "
                       "workers at every level; metrics schema valid)\n"
                     : "\nsmoke: FAIL\n");
  }
  return ok ? 0 : 1;
}
