// Ablation: serving throughput and latency of the epi-serve scheduler as
// offered load rises. One seeded traffic mix is replayed at three (or more)
// interarrival scales against a fresh machine each time; jobs from different
// tenants are resident concurrently, so the mesh, eLink and DRAM window are
// genuinely shared -- queueing delay and contention, not kernel time alone,
// set the latency distribution.
//
// Results go to BENCH_sched.json (throughput, p50/p99 queue wait and
// turnaround, utilisation, deadline hit-rate per load point); the committed
// copy at the repository root is the baseline scripts/bench.sh compares new
// runs against.
//
// Usage: abl_sched [jobs_per_point] [--smoke] [--trace=FILE] [--csv=FILE]
//                  [--metrics=FILE] [--no-metrics]
//
// --smoke: shrink the sweep, run every load point twice asserting the
// scheduler's decision log is byte-identical run over run, and validate the
// metrics file's schema (the ctest entry); non-zero exit on any mismatch.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "host/system.hpp"
#include "sched/report.hpp"
#include "sched/scheduler.hpp"
#include "sched/workload.hpp"
#include "util/bench_report.hpp"
#include "util/table.hpp"

namespace {

using namespace epi;

struct PointResult {
  sched::RunStats stats;
  unsigned peak_resident = 0;
  std::vector<std::string> event_log;
};

PointResult run_point(host::System& sys, sim::Cycles mean_interarrival,
                      unsigned jobs) {
  sched::TrafficConfig tc;
  tc.jobs = jobs;
  tc.seed = 42;
  tc.mean_interarrival = mean_interarrival;

  sched::Scheduler sc(sys);
  for (auto& spec : sched::generate(tc)) sc.submit(std::move(spec));
  sc.run();

  PointResult pr;
  pr.stats = sched::summarise(sc);
  pr.peak_resident = sc.peak_resident();
  pr.event_log = sc.event_log();
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = util::BenchArgs::parse(argc, argv, "abl_sched");
  bool smoke = false;
  for (auto it = args.positional.begin(); it != args.positional.end();) {
    if (*it == "--smoke") {
      smoke = true;
      it = args.positional.erase(it);
    } else {
      ++it;
    }
  }
  if (args.metrics_path == "abl_sched_trace.json") {
    // Default output name matches the committed baseline, like abl_simperf's
    // BENCH_simperf.json (override with --metrics=...).
    args.metrics_path = smoke ? "BENCH_sched_smoke.json" : "BENCH_sched.json";
  }
  const unsigned jobs =
      static_cast<unsigned>(args.positional_double(0, smoke ? 24 : 48));
  // Offered load rises left to right: mean interarrival shrinks from "mesh
  // mostly idle" to "arrivals outpace drain".
  const std::vector<sim::Cycles> sweep = {120'000, 40'000, 12'000};

  std::cout << "epi-serve load sweep: " << jobs
            << " jobs/point, seed 42, mixed matmul/stencil/offload\n\n";
  util::Table t({"interarrival", "done", "to", "rej", "fail", "jobs/Mcyc",
                 "wait p50", "wait p99", "tat p99", "util %", "resident"});

  util::BenchReport report("abl_sched");
  bool ok = true;
  std::unique_ptr<host::System> traced_sys;  // kept alive for finish_bench
  for (const sim::Cycles mi : sweep) {
    // Tracing is only attached to the busiest point: one timeline of the most
    // contended regime, instead of three files overwriting one another.
    const bool trace_this = args.tracing() && mi == sweep.back();
    auto sys = std::make_unique<host::System>();
    if (trace_this) sys->machine().enable_tracing();
    PointResult pr = run_point(*sys, mi, jobs);
    if (trace_this) traced_sys = std::move(sys);
    if (smoke) {
      host::System sys2;
      const PointResult again = run_point(sys2, mi, jobs);
      if (again.event_log != pr.event_log) {
        std::fprintf(stderr,
                     "abl_sched: FAIL: scheduler event order diverged between "
                     "two identical runs at interarrival %llu\n",
                     static_cast<unsigned long long>(mi));
        ok = false;
      }
    }
    const sched::RunStats& rs = pr.stats;
    t.add_row({std::to_string(mi), std::to_string(rs.completed),
               std::to_string(rs.timed_out), std::to_string(rs.rejected),
               std::to_string(rs.failed), util::fmt(rs.throughput, 3),
               std::to_string(rs.wait_p50), std::to_string(rs.wait_p99),
               std::to_string(rs.turnaround_p99), util::fmt(100 * rs.utilisation, 1),
               std::to_string(pr.peak_resident)});

    const std::string pfx = "mi" + std::to_string(mi) + "_";
    report.metric(pfx + "completed", rs.completed);
    report.metric(pfx + "timed_out", rs.timed_out);
    report.metric(pfx + "rejected", rs.rejected);
    report.metric(pfx + "failed", rs.failed);
    report.metric(pfx + "throughput_jobs_per_mcycle", rs.throughput);
    report.metric(pfx + "p50_wait_cycles", static_cast<double>(rs.wait_p50));
    report.metric(pfx + "p99_wait_cycles", static_cast<double>(rs.wait_p99));
    report.metric(pfx + "p50_turnaround_cycles",
                  static_cast<double>(rs.turnaround_p50));
    report.metric(pfx + "p99_turnaround_cycles",
                  static_cast<double>(rs.turnaround_p99));
    report.metric(pfx + "utilisation", rs.utilisation);
    report.metric(pfx + "peak_resident_groups", pr.peak_resident);
    report.metric(pfx + "deadline_hit_rate",
                  rs.deadlines > 0
                      ? static_cast<double>(rs.deadlines_met) / rs.deadlines
                      : 1.0);
  }
  t.print(std::cout);
  std::cout << "\n(wait = admission->start queueing; tat = arrival->finish "
               "turnaround; cycles at 600 MHz)\n";

  util::finish_bench(args, traced_sys ? traced_sys->machine().tracer() : nullptr,
                     report);

  if (smoke && !args.metrics_path.empty()) {
    // Schema check: the metrics file must carry a populated p99 latency for
    // every load point, under the bench's own name.
    std::ifstream in(args.metrics_path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    if (json.find("\"bench\":\"abl_sched\"") == std::string::npos) {
      std::fprintf(stderr, "abl_sched: FAIL: %s missing bench name\n",
                   args.metrics_path.c_str());
      ok = false;
    }
    for (const sim::Cycles mi : sweep) {
      for (const char* key : {"p99_turnaround_cycles", "p99_wait_cycles",
                              "throughput_jobs_per_mcycle", "utilisation"}) {
        const std::string want =
            "\"mi" + std::to_string(mi) + "_" + key + "\":";
        if (json.find(want) == std::string::npos) {
          std::fprintf(stderr, "abl_sched: FAIL: %s missing metric %s\n",
                       args.metrics_path.c_str(), want.c_str());
          ok = false;
        }
      }
    }
    std::cout << (ok ? "\nsmoke: PASS (bit-identical event order across "
                       "reruns; metrics schema valid)\n"
                     : "\nsmoke: FAIL\n");
  }
  return ok ? 0 : 1;
}
