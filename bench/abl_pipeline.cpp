// Ablation / future-work reproduction: the temporal-blocking pipelined
// stencil of the paper's section IX, for grids far beyond the chip's 2 MB
// of scratchpad. Sweeping the temporal depth T shows the trade the paper
// anticipates: deeper blocking amortises the 150 MB/s eLink traffic over
// more updates per residency, at the price of redundant computation on the
// supertile overlap. T=1 is the naive page-per-iteration baseline.

#include <iostream>

#include "core/stencil_pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace epi;
  constexpr unsigned kN = 480;      // 480x480 floats = 900 KB per grid copy
  constexpr unsigned kIters = 24;
  constexpr unsigned kGroup = 8;
  constexpr unsigned kOut = 120;    // output edge S; 4x4 supertiles

  std::cout << "Pipelined stencil with temporal blocking (" << kN << "x" << kN << " grid, "
            << kIters << " iterations, 8x8 workgroup, S=" << kOut << ")\n\n";
  util::Table t({"Depth T", "Window L", "Time (ms)", "Useful GFLOPS", "Redundant compute",
                 "DRAM traffic (MB)", "vs naive traffic"});
  double naive_traffic = 0.0;
  for (unsigned depth : {1u, 5u, 9u, 13u}) {
    core::StencilPipelineConfig cfg;
    cfg.group = kGroup;
    cfg.depth = depth;
    cfg.iters = kIters;
    cfg.tile_interior = kOut + 2 * depth - 2;  // S + 2T - 2, divisible by 8
    host::System sys;
    const auto r = core::run_stencil_pipeline(sys, kN, cfg, 42, false);
    const double mb =
        static_cast<double>(r.dram_read_bytes + r.dram_write_bytes) / 1e6;
    if (depth == 1) naive_traffic = mb;
    t.add_row({std::to_string(depth), std::to_string(cfg.tile_interior + 2),
               util::fmt(sys.seconds(r.cycles) * 1e3, 2), util::fmt(r.useful_gflops, 2),
               util::fmt(100.0 * (r.redundancy - 1.0), 1) + "%", util::fmt(mb, 1),
               util::fmt(mb / naive_traffic, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nPaper (section IX): \"computation is performed for a number of\n"
               "iterations before the data is moved out of the local memory and new\n"
               "data is brought in\" -- the depth sweep shows why: each doubling of T\n"
               "roughly halves eLink traffic until redundant overlap compute bites.\n"
               "All depths produce bit-identical results (verified in tests).\n";
  return 0;
}
