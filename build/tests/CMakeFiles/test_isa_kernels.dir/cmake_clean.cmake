file(REMOVE_RECURSE
  "CMakeFiles/test_isa_kernels.dir/isa_kernels_test.cpp.o"
  "CMakeFiles/test_isa_kernels.dir/isa_kernels_test.cpp.o.d"
  "test_isa_kernels"
  "test_isa_kernels.pdb"
  "test_isa_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
