# Empty dependencies file for test_isa_kernels.
# This may be replaced when dependencies are built.
