file(REMOVE_RECURSE
  "CMakeFiles/test_esdk.dir/esdk_test.cpp.o"
  "CMakeFiles/test_esdk.dir/esdk_test.cpp.o.d"
  "test_esdk"
  "test_esdk.pdb"
  "test_esdk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
