# Empty dependencies file for test_esdk.
# This may be replaced when dependencies are built.
