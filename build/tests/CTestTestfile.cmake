# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_dma[1]_include.cmake")
include("/root/repo/build/tests/test_esdk[1]_include.cmake")
include("/root/repo/build/tests/test_stencil[1]_include.cmake")
include("/root/repo/build/tests/test_matmul[1]_include.cmake")
include("/root/repo/build/tests/test_microbench[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_isa_kernels[1]_include.cmake")
