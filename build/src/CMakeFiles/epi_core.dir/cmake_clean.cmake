file(REMOVE_RECURSE
  "CMakeFiles/epi_core.dir/core/matmul_kernels.cpp.o"
  "CMakeFiles/epi_core.dir/core/matmul_kernels.cpp.o.d"
  "CMakeFiles/epi_core.dir/core/matmul_schedule.cpp.o"
  "CMakeFiles/epi_core.dir/core/matmul_schedule.cpp.o.d"
  "CMakeFiles/epi_core.dir/core/microbench.cpp.o"
  "CMakeFiles/epi_core.dir/core/microbench.cpp.o.d"
  "CMakeFiles/epi_core.dir/core/stencil_kernels.cpp.o"
  "CMakeFiles/epi_core.dir/core/stencil_kernels.cpp.o.d"
  "CMakeFiles/epi_core.dir/core/stencil_pipeline.cpp.o"
  "CMakeFiles/epi_core.dir/core/stencil_pipeline.cpp.o.d"
  "CMakeFiles/epi_core.dir/core/stencil_schedule.cpp.o"
  "CMakeFiles/epi_core.dir/core/stencil_schedule.cpp.o.d"
  "CMakeFiles/epi_core.dir/core/summa.cpp.o"
  "CMakeFiles/epi_core.dir/core/summa.cpp.o.d"
  "CMakeFiles/epi_core.dir/isa/assembler.cpp.o"
  "CMakeFiles/epi_core.dir/isa/assembler.cpp.o.d"
  "CMakeFiles/epi_core.dir/isa/interpreter.cpp.o"
  "CMakeFiles/epi_core.dir/isa/interpreter.cpp.o.d"
  "CMakeFiles/epi_core.dir/isa/kernels.cpp.o"
  "CMakeFiles/epi_core.dir/isa/kernels.cpp.o.d"
  "CMakeFiles/epi_core.dir/offload/queue.cpp.o"
  "CMakeFiles/epi_core.dir/offload/queue.cpp.o.d"
  "CMakeFiles/epi_core.dir/util/reference.cpp.o"
  "CMakeFiles/epi_core.dir/util/reference.cpp.o.d"
  "CMakeFiles/epi_core.dir/util/table.cpp.o"
  "CMakeFiles/epi_core.dir/util/table.cpp.o.d"
  "libepi_core.a"
  "libepi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
